/**
 * @file
 * Figure 15: Delegated Replies on top of inter-core locality
 * optimizations — DC-L1 [30] and DynEB [29] shared L1s under
 * round-robin and distributed CTA scheduling. Paper: the optimizations
 * do not remove clogging, so DR still helps (+23.5% over DynEB with
 * round-robin scheduling, +9.9% with distributed scheduling).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

namespace
{

const std::vector<std::string> benchSet = {"2DCON", "SC", "HS", "NN",
                                           "LUD"};

double
gm(L1Organization org, CtaSchedule sched, Mechanism mech)
{
    std::vector<double> ipcs;
    for (const auto &gpu : benchSet) {
        SystemConfig cfg = benchConfig(mech);
        cfg.gpu.l1Org = org;
        cfg.gpu.ctaSchedule = sched;
        ipcs.push_back(
            runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]).gpuIpc);
    }
    return geomean(ipcs);
}

} // namespace

int
main()
{
    std::printf("=== Figure 15: DR on top of shared-L1 organizations "
                "===\n");
    std::printf("(geomean over %zu benchmarks, normalized to private L1 "
                "+ RR baseline)\n\n",
                benchSet.size());

    const double base = gm(L1Organization::Private,
                           CtaSchedule::RoundRobin, Mechanism::Baseline);

    std::printf("%-26s %10s %10s %10s\n", "config", "baseline", "+DR",
                "DR gain");
    for (const CtaSchedule sched :
         {CtaSchedule::RoundRobin, CtaSchedule::Distributed}) {
        for (const L1Organization org :
             {L1Organization::Private, L1Organization::DcL1,
              L1Organization::DynEB}) {
            const double plain = gm(org, sched, Mechanism::Baseline);
            const double dr = gm(org, sched, Mechanism::DelegatedReplies);
            char label[64];
            std::snprintf(label, sizeof(label), "%s + %s",
                          l1OrganizationName(org), ctaScheduleName(sched));
            std::printf("%-26s %10.3f %10.3f %10.3f\n", label,
                        plain / base, dr / base, dr / plain);
        }
    }
    std::printf("\npaper: DynEB >= DC-L1 >= private on average; DR adds "
                "+23.5%% (RR) / +9.9%% (distributed) over DynEB\n");
    return 0;
}

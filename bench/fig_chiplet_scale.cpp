/**
 * @file
 * Chiplet scale-out (ISSUE 9): Delegated Replies vs the tuned baseline
 * and Realistic Probing on the monolithic 8x8 paper chip and on a
 * 256-node chip of 4x4 chiplets (each a 4x4 sub-mesh) joined by
 * gateway-restricted interposer links. The few-memory-nodes/many-cores
 * imbalance sharpens as the chip grows — 4x the cores but only 2x the
 * memory nodes, so every reply funnels out of 16 exits and through two
 * gateways per chiplet edge — and the measured window sits in the
 * kernels' memory-bound phase, where that funnel is the bottleneck.
 * DR must stay ahead of both baseline and RP at 256 nodes.
 *
 * Not a paper figure: the paper stops at the 8x8 chip; this is the
 * scale-out projection the chiplet subsystem exists to measure.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

namespace
{

struct Scale
{
    const char *name;
    bool chiplet;
};

/** Bench config at one scale; DR rides the 4-VN layout as always. */
SystemConfig
scaleConfig(Mechanism mechanism, const Scale &scale)
{
    SystemConfig cfg = benchConfig(mechanism);
    cfg.simCycles = benchCycles(6000);
    cfg.warmupCycles = cfg.simCycles / 2;
    if (!scale.chiplet)
        return cfg;
    // 4x4 chiplets of 4x4 routers, gateway-restricted: two interposer
    // links per chiplet edge concentrate the cross-chiplet traffic the
    // reply funnel rides. Full-width interposer channels keep the
    // boundary from capping every mechanism equally (a half-width
    // interposer is bisection-bound and flattens the comparison).
    // Hierarchical routing needs >= 3 VCs per VN for phase escalation.
    cfg.noc.topology = TopologyKind::ChipletMesh;
    cfg.noc.chipletsX = 4;
    cfg.noc.chipletsY = 4;
    cfg.noc.chipletSubW = 4;
    cfg.noc.chipletSubH = 4;
    cfg.noc.chipletLinksPerEdge = 2;
    cfg.noc.interposerChannelBytes = 16;
    cfg.noc.meshWidth = 16;
    cfg.noc.meshHeight = 16;
    // The imbalance DR targets sharpens with scale: 4x the cores but
    // only 2x the memory nodes (12 cores per memory node, vs 7 on the
    // paper chip), so replies funnel through even fewer exits.
    cfg.gpu.numCores = 192;
    cfg.cpu.numCores = 48;
    cfg.mem.numNodes = 16;
    if (cfg.noc.vnets) {
        cfg.noc.vcsPerNet = 6;
        cfg.noc.vnetRequestVcs = 3;
        cfg.noc.vnetForwardVcs = 3;
        cfg.noc.vnetReplyVcs = 3;
        cfg.noc.vnetDelegatedVcs = 3;
    } else {
        cfg.noc.vcsPerNet = 3;
    }
    return cfg;
}

} // namespace

int
main()
{
    const std::vector<std::string> benchSet = {"HS", "SRAD"};
    const Scale scales[] = {{"8x8 mesh (64 nodes)", false},
                            {"4x4 chiplets x 4x4 (256)", true}};
    std::printf("=== Chiplet scale-out: DR vs baseline and RP ===\n");
    std::printf("%-26s %10s %10s %10s %12s\n", "chip", "mech",
                "geo IPC", "vs base", "mem block");
    for (const Scale &scale : scales) {
        double baseIpc = 0.0;
        for (const Mechanism mech :
             {Mechanism::Baseline, Mechanism::RealisticProbing,
              Mechanism::DelegatedReplies}) {
            const SystemConfig cfg = scaleConfig(mech, scale);
            std::vector<double> ipcs;
            std::vector<double> blocking;
            for (const auto &gpu : benchSet) {
                const RunResults r =
                    runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]);
                ipcs.push_back(r.gpuIpc);
                blocking.push_back(r.memBlockingRate);
            }
            const double ipc = geomean(ipcs);
            if (mech == Mechanism::Baseline)
                baseIpc = ipc;
            std::printf("%-26s %10s %10.3f %10.3f %12.3f\n", scale.name,
                        mechanismName(mech), ipc, ipc / baseIpc,
                        mean(blocking));
        }
    }
    std::printf("\nexpected: DR stays ahead of both the baseline and RP "
                "at 256 nodes (replies funnel out of 16 memory nodes "
                "while the interposer squeezes the reply paths)\n");
    return 0;
}

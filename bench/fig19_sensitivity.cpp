/**
 * @file
 * Figure 19: sensitivity analyses. DR's GPU gain across: L1 size, LLC
 * size, NoC channel width, virtual (shared) networks, mesh size, and
 * memory-node injection buffer size. Paper: gains grow with L1 size
 * (22.9% at 16 KB to 30.2% at 64 KB), are insensitive to LLC size and
 * injection buffer size, shrink with NoC bandwidth (but stay +13.9% at
 * 24 B channels), and hold in shared-network and larger-mesh systems.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

namespace
{

const std::vector<std::string> benchSet = {"2DCON", "HS"};

double
drGain(const SystemConfig &proto)
{
    std::vector<double> gains;
    for (const auto &gpu : benchSet) {
        SystemConfig cfg = proto;
        cfg.mechanism = Mechanism::Baseline;
        const double base =
            runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]).gpuIpc;
        cfg.mechanism = Mechanism::DelegatedReplies;
        const double dr =
            runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]).gpuIpc;
        gains.push_back(dr / base);
    }
    return geomean(gains);
}

} // namespace

int
main()
{
    std::printf("=== Figure 19: sensitivity of the DR gain ===\n");

    std::printf("-- L1 size (paper: 1.229 @16KB ... 1.302 @64KB) --\n");
    for (const int kb : {16, 48, 64}) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.gpu.l1SizeKB = kb;
        std::printf("  L1 %2d KB: %.3f\n", kb, drGain(cfg));
    }

    std::printf("-- LLC slice size (paper: insensitive, 1.25-1.26) --\n");
    for (const int kb : {512, 1024, 2048}) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.mem.llcSliceKB = kb;
        std::printf("  LLC %4d KB/slice: %.3f\n", kb, drGain(cfg));
    }

    std::printf("-- NoC channel width (paper: larger gains when "
                "constrained; 1.139 even at 24 B) --\n");
    for (const double scale : {0.5, 1.0, 1.5}) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.noc.bandwidthScale = scale;
        std::printf("  %2.0f B channels: %.3f\n", 16.0 * scale,
                    drGain(cfg));
    }

    std::printf("-- Virtual networks (paper: 1.234 with 1 VC, 1.269 "
                "with 2 VCs per vnet) --\n");
    for (const int vcs : {1, 2}) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.noc.sharedPhysical = true;
        cfg.noc.sharedReqVcs = vcs;
        cfg.noc.sharedReplyVcs = vcs;
        std::printf("  shared network, %d VC/vnet: %.3f\n", vcs,
                    drGain(cfg));
    }

    // The same sensitivity point with the first-class virtual-network
    // subsystem (noc.vnets): per-message-class reserved VC ranges and
    // (class, VN) arbitration on the split physical networks, instead
    // of the legacy request/reply VC split of the shared network above.
    // Closes the ROADMAP item "wire a VN-enabled configuration into
    // fig19_sensitivity"; EXPERIMENTS.md reports both layouts side by
    // side.
    std::printf("-- Virtual networks, first-class subsystem (noc.vnets; "
                "reserved VC ranges per message class) --\n");
    for (const int vcs : {1, 2}) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.noc.vnets = true;
        cfg.noc.vcsPerNet = 2 * vcs;  // request+forward / reply+delegated
        cfg.noc.vnetRequestVcs = vcs;
        cfg.noc.vnetForwardVcs = vcs;
        cfg.noc.vnetReplyVcs = vcs;
        cfg.noc.vnetDelegatedVcs = vcs;
        std::printf("  vnets on, %d VC/vnet: %.3f\n", vcs, drGain(cfg));
    }

    std::printf("-- Mesh size (paper: similar gains at 10x10 and "
                "12x12) --\n");
    for (const int dim : {8, 10, 12}) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.noc.meshWidth = dim;
        cfg.noc.meshHeight = dim;
        const int tiles = dim * dim;
        cfg.mem.numNodes = tiles / 8;
        cfg.cpu.numCores = tiles / 4;
        cfg.gpu.numCores = tiles - cfg.mem.numNodes - cfg.cpu.numCores;
        std::printf("  %dx%d mesh: %.3f\n", dim, dim, drGain(cfg));
    }

    std::printf("-- Memory-node injection buffer (paper: largely "
                "insensitive) --\n");
    for (const int flits : {18, 36, 72}) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.noc.memInjBufferFlits = flits;
        std::printf("  %2d flits: %.3f\n", flits, drGain(cfg));
    }
    return 0;
}

/**
 * @file
 * Figure 5: overprovisioned NoCs. (a) GPU performance with the
 * crossbar, flattened butterfly and dragonfly at nominal and doubled
 * bandwidth, normalized to the nominal mesh; (b) memory-node blocking
 * rates. Paper: changing topology hardly helps (all topologies keep a
 * single reply link per memory node); doubling bandwidth does.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

namespace
{

const std::vector<std::string> benchSet = {"2DCON", "HS", "MM", "LUD"};

double
gpuPerf(TopologyKind topo, double bwScale, double &blocking)
{
    std::vector<double> ipcs;
    std::vector<double> blocks;
    for (const auto &gpu : benchSet) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.noc.topology = topo;
        cfg.noc.bandwidthScale = bwScale;
        const RunResults r = runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]);
        ipcs.push_back(r.gpuIpc);
        blocks.push_back(r.memBlockingRate);
    }
    blocking = mean(blocks);
    return geomean(ipcs);
}

} // namespace

int
main()
{
    std::printf("=== Figure 5: topology and bandwidth overprovisioning "
                "===\n");
    double meshBlock = 0.0;
    const double mesh = gpuPerf(TopologyKind::Mesh, 1.0, meshBlock);

    std::printf("%-22s %10s %10s\n", "config", "GPUperf", "blocking");
    std::printf("%-22s %10.3f %10.3f\n", "mesh (baseline)", 1.0,
                meshBlock);
    for (const TopologyKind topo :
         {TopologyKind::Crossbar, TopologyKind::FlattenedButterfly,
          TopologyKind::Dragonfly}) {
        for (const double bw : {1.0, 2.0}) {
            double blocking = 0.0;
            const double perf = gpuPerf(topo, bw, blocking);
            char label[64];
            std::snprintf(label, sizeof(label), "%s %sx",
                          topologyName(topo), bw > 1.5 ? "2" : "1");
            std::printf("%-22s %10.3f %10.3f\n", label, perf / mesh,
                        blocking);
        }
    }
    double blocking2x = 0.0;
    const double mesh2x = gpuPerf(TopologyKind::Mesh, 2.0, blocking2x);
    std::printf("%-22s %10.3f %10.3f\n", "mesh 2x", mesh2x / mesh,
                blocking2x);

    std::printf("\npaper: topology changes ~1.0x, doubled bandwidth "
                "clearly above; baseline blocking 72-79%%\n");
    return 0;
}

/**
 * @file
 * Figures 17/18: Delegated Replies across chip layouts (each normalized
 * to the same layout without DR, under its best routing). Paper: GPU
 * gains are consistent (25.8/25.3/29.0/27.0% for Baseline/B/C/D); CPU
 * gains are largest for layouts B and D where CPU-GPU interference is
 * worst (13.4% and 20.9%).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

int
main()
{
    const std::vector<std::string> benchSet = {"2DCON", "HS", "MM",
                                               "SRAD"};
    std::printf("=== Figures 17/18: DR gain per chip layout ===\n");
    std::printf("%-12s %10s %10s\n", "layout", "GPU gain", "CPU gain");
    for (const ChipLayout layout :
         {ChipLayout::Baseline, ChipLayout::LayoutB, ChipLayout::LayoutC,
          ChipLayout::LayoutD}) {
        std::vector<double> gpuGain, cpuGain;
        for (const auto &gpu : benchSet) {
            SystemConfig cfg = benchConfig(Mechanism::Baseline);
            cfg.layout = layout;
            applyDefaultRouting(cfg);
            const RunResults base =
                runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]);
            cfg.mechanism = Mechanism::DelegatedReplies;
            const RunResults dr =
                runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]);
            gpuGain.push_back(dr.gpuIpc / base.gpuIpc);
            cpuGain.push_back(dr.cpuIpc / base.cpuIpc);
        }
        std::printf("%-12s %10.3f %10.3f\n", layoutName(layout),
                    geomean(gpuGain), geomean(cpuGain));
    }
    std::printf("\npaper: GPU 1.258/1.253/1.290/1.270; CPU "
                "1.038/1.134/1.022/1.209 (B and D suffer the most "
                "interference)\n");
    return 0;
}

/**
 * @file
 * Figure 16: Delegated Replies across NoC topologies, each normalized
 * to the same topology without DR. Paper: +21.9% (flattened
 * butterfly), +23.9% (dragonfly), +28.3% (crossbar), +25.8% (mesh) —
 * the benefit is topology-independent because every memory node keeps a
 * single reply link.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

int
main()
{
    const std::vector<std::string> benchSet = {"2DCON", "HS", "MM",
                                               "SRAD"};
    std::printf("=== Figure 16: DR gain per topology ===\n");
    std::printf("%-22s %10s\n", "topology", "DR gain");
    for (const TopologyKind topo :
         {TopologyKind::Mesh, TopologyKind::FlattenedButterfly,
          TopologyKind::Dragonfly, TopologyKind::Crossbar}) {
        std::vector<double> gains;
        for (const auto &gpu : benchSet) {
            SystemConfig cfg = benchConfig(Mechanism::Baseline);
            cfg.noc.topology = topo;
            const double base =
                runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]).gpuIpc;
            cfg.mechanism = Mechanism::DelegatedReplies;
            const double dr =
                runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]).gpuIpc;
            gains.push_back(dr / base);
        }
        std::printf("%-22s %10.3f\n", topologyName(topo), geomean(gains));
    }
    std::printf("\npaper: mesh 1.258, flattened butterfly 1.219, "
                "dragonfly 1.239, crossbar 1.283\n");
    return 0;
}

/**
 * @file
 * Ablation of the Delegated Replies design choices (DESIGN.md §5):
 *  - reactive delegation (only when the reply NI is blocked, the
 *    paper's policy) versus delegating every delegatable reply;
 *  - FRQ remote-over-local priority (the paper's deadlock-avoidance
 *    choice) versus local-first;
 *  - the first-class 4-VN layout (the headline configuration) versus
 *    the legacy two-class VC split without reserved delegated-traffic
 *    ranges.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

int
main()
{
    const std::vector<std::string> benchSet = {"2DCON", "HS", "BT"};
    std::printf("=== Delegated Replies ablations ===\n");
    std::printf("%-8s %12s %12s %12s %14s %12s\n", "bench", "baseline",
                "DR", "DR-always", "DR-localFirst", "DR-legacyVC");
    for (const auto &gpu : benchSet) {
        const std::string cpu = cpuCoRunnersFor(gpu)[0];
        const double base =
            runWorkload(benchConfig(Mechanism::Baseline), gpu, cpu)
                .gpuIpc;

        SystemConfig drCfg = benchConfig(Mechanism::DelegatedReplies);
        const double dr = runWorkload(drCfg, gpu, cpu).gpuIpc;

        drCfg.dr.delegateAlways = true;
        const double always = runWorkload(drCfg, gpu, cpu).gpuIpc;
        drCfg.dr.delegateAlways = false;

        drCfg.dr.frqRemotePriority = false;
        const double localFirst = runWorkload(drCfg, gpu, cpu).gpuIpc;
        drCfg.dr.frqRemotePriority = true;

        // Legacy layout: DR without the reserved per-class VC ranges,
        // at the Table I budget (benchConfig turns noc.vnets on for DR
        // and adds one VC per side for the DR-only VNs; undo both).
        drCfg.noc.vnets = false;
        drCfg.noc.vcsPerNet = 2;
        const double legacy = runWorkload(drCfg, gpu, cpu).gpuIpc;

        std::printf("%-8s %12.3f %12.3f %12.3f %14.3f %12.3f\n",
                    gpu.c_str(), 1.0, dr / base, always / base,
                    localFirst / base, legacy / base);
    }
    std::printf("\nexpected: reactive DR comparable to delegate-always "
                "on the 4-VN fabric (the reserved delegated VN absorbs "
                "gratuitous delegation; on the legacy split it erases "
                "most of the gain); remote priority comparable to "
                "local-first (paper found both safe variants perform "
                "similarly); 4-VN layout >= legacy Table I split (one "
                "extra reserved VC per side, priced by the area "
                "model)\n");
    return 0;
}

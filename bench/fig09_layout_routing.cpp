/**
 * @file
 * Figure 9: chip layouts (Figure 1) x CDR routing orders. Average GPU
 * and CPU performance normalized to Baseline YX-XY. Paper: only the
 * baseline layout provides both high CPU and GPU performance; layout B
 * needs XY-YX ordering; layout C favours CPUs; layout D favours GPUs.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

namespace
{

const std::vector<std::string> benchSet = {"2DCON", "HS", "MM"};

struct Point
{
    double gpu;
    double cpu;
};

Point
run(ChipLayout layout, RoutingKind req, RoutingKind reply)
{
    std::vector<double> gpu, cpu;
    for (const auto &g : benchSet) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.layout = layout;
        cfg.noc.requestRouting = req;
        cfg.noc.replyRouting = reply;
        const RunResults r = runWorkload(cfg, g, cpuCoRunnersFor(g)[0]);
        gpu.push_back(r.gpuIpc);
        cpu.push_back(r.cpuIpc);
    }
    return {geomean(gpu), geomean(cpu)};
}

} // namespace

int
main()
{
    std::printf("=== Figure 9: layouts x routing (normalized to "
                "Baseline YX-XY) ===\n");
    const Point base =
        run(ChipLayout::Baseline, RoutingKind::DimOrderYX,
            RoutingKind::DimOrderXY);

    struct Config
    {
        const char *name;
        ChipLayout layout;
        RoutingKind req;
        RoutingKind reply;
    };
    const std::vector<Config> configs = {
        {"Base YX-XY", ChipLayout::Baseline, RoutingKind::DimOrderYX,
         RoutingKind::DimOrderXY},
        {"Base XY-XY", ChipLayout::Baseline, RoutingKind::DimOrderXY,
         RoutingKind::DimOrderXY},
        {"B XY-YX", ChipLayout::LayoutB, RoutingKind::DimOrderXY,
         RoutingKind::DimOrderYX},
        {"B XY-XY", ChipLayout::LayoutB, RoutingKind::DimOrderXY,
         RoutingKind::DimOrderXY},
        {"C XY-YX", ChipLayout::LayoutC, RoutingKind::DimOrderXY,
         RoutingKind::DimOrderYX},
        {"C XY-XY", ChipLayout::LayoutC, RoutingKind::DimOrderXY,
         RoutingKind::DimOrderXY},
        {"D XY-XY", ChipLayout::LayoutD, RoutingKind::DimOrderXY,
         RoutingKind::DimOrderXY},
    };

    std::printf("%-12s %10s %10s\n", "config", "GPUperf", "CPUperf");
    for (const auto &c : configs) {
        const Point p = run(c.layout, c.req, c.reply);
        std::printf("%-12s %10.3f %10.3f\n", c.name, p.gpu / base.gpu,
                    p.cpu / base.cpu);
    }
    std::printf("\npaper: Baseline YX-XY best overall; B loses GPU perf; "
                "C favours CPUs; D favours GPUs\n");
    return 0;
}

/**
 * @file
 * Area and energy analysis (Sections III.B, IV, VII). Area: DSENT-like
 * model — baseline mesh 2.27 mm^2, double-bandwidth mesh 5.76 mm^2
 * (2.5x), Delegated Replies hardware 0.172 mm^2 (~5% of the extra
 * double-bandwidth area). Energy: DR slightly reduces dynamic NoC
 * energy (fewer data hops) while RP increases it (5.9x request
 * inflation, probe misses).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "power/noc_power.hpp"
#include "power/sram_area.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

int
main()
{
    std::printf("=== NoC area (DSENT-like, 22 nm) ===\n");
    SystemConfig cfg = SystemConfig::makePaper();
    const double nominal = nocAreaMm2(cfg);
    cfg.noc.bandwidthScale = 2.0;
    const double doubled = nocAreaMm2(cfg);
    cfg.noc.bandwidthScale = 1.0;
    std::printf("baseline mesh:          %6.2f mm^2 (paper 2.27)\n",
                nominal);
    std::printf("double-bandwidth mesh:  %6.2f mm^2 (paper 5.76, "
                "%.2fx)\n",
                doubled, doubled / nominal);
    std::printf("DR core pointers:       %6.3f mm^2 (paper 0.080)\n",
                drPointerAreaMm2(cfg));
    std::printf("DR FRQs:                %6.3f mm^2 (paper 0.092)\n",
                drFrqAreaMm2(cfg));
    std::printf("DR total:               %6.3f mm^2 (paper 0.172, ~5%% "
                "of the 2x-BW extra area)\n",
                drTotalAreaMm2(cfg));
    std::printf("DR / (2xBW extra):      %6.1f %%\n",
                100.0 * drTotalAreaMm2(cfg) / (doubled - nominal));
    // The headline DR configuration (core/experiment.cpp) runs the
    // first-class 4-VN layout with one extra reserved VC per side
    // (vcsPerNet 2 -> 3) on top of the paper's pointer+FRQ hardware;
    // price that buffer growth the same way.
    cfg.noc.vcsPerNet = 3;
    const double drFabric = nocAreaMm2(cfg);
    cfg.noc.vcsPerNet = 2;
    std::printf("DR 4-VN fabric (+1 VC/side): %.2f mm^2 (+%.2f over "
                "baseline)\n",
                drFabric, drFabric - nominal);
    std::printf("DR total incl. fabric / (2xBW extra): %.1f %%\n\n",
                100.0 * (drTotalAreaMm2(cfg) + drFabric - nominal) /
                    (doubled - nominal));

    std::printf("=== NoC dynamic energy and request inflation ===\n");
    const std::vector<std::string> benchSet = {"2DCON", "HS", "MM"};
    const NocEnergyModel model;
    std::printf("%-8s %12s %12s %12s %12s\n", "bench", "RP energy",
                "DR energy", "RPreq/base", "DRreq/base");
    std::vector<double> rpE, drE, rpReq;
    for (const auto &gpu : benchSet) {
        RunResults r[3];
        int i = 0;
        for (const Mechanism m :
             {Mechanism::Baseline, Mechanism::RealisticProbing,
              Mechanism::DelegatedReplies}) {
            r[i++] = runWorkload(benchConfig(m), gpu,
                                 cpuCoRunnersFor(gpu)[0]);
        }
        // Energy per unit of work (per GPU instruction): mechanisms
        // execute different amounts of work per cycle.
        auto perInstr = [&](const RunResults &x) {
            const double uj = model.dynamicUj(
                x.bufferWrites, x.switchTraversals, x.linkTraversals);
            return uj / (x.gpuIpc * static_cast<double>(x.cycles));
        };
        const double rpRatio = perInstr(r[1]) / perInstr(r[0]);
        const double drRatio = perInstr(r[2]) / perInstr(r[0]);
        const double rpInflate =
            (static_cast<double>(r[1].requestsInjected) /
             (r[1].gpuIpc * r[1].cycles)) /
            (static_cast<double>(r[0].requestsInjected) /
             (r[0].gpuIpc * r[0].cycles));
        const double drInflate =
            (static_cast<double>(r[2].requestsInjected) /
             (r[2].gpuIpc * r[2].cycles)) /
            (static_cast<double>(r[0].requestsInjected) /
             (r[0].gpuIpc * r[0].cycles));
        std::printf("%-8s %12.3f %12.3f %12.2f %12.2f\n", gpu.c_str(),
                    rpRatio, drRatio, rpInflate, drInflate);
        rpE.push_back(rpRatio);
        drE.push_back(drRatio);
        rpReq.push_back(rpInflate);
    }
    std::printf("%-8s %12.3f %12.3f %12.2f\n", "GM", geomean(rpE),
                geomean(drE), geomean(rpReq));
    std::printf("\npaper: RP +9.4%% dynamic NoC energy and 5.9x NoC "
                "requests; DR -1.1%% energy\n");
    return 0;
}

/**
 * @file
 * Figures 10-14, the paper's headline evaluation, from one set of runs:
 * all Table II workloads (11 GPU benchmarks x 3 CPU co-runners) under
 * Baseline, RP and Delegated Replies.
 *
 *  Fig 10: GPU performance improvement (DR +25.7% avg vs baseline,
 *          +14.2% vs RP; whiskers = min/max across CPU co-runners)
 *  Fig 11: received data rate (flits/cycle per GPU core, +26.5% avg)
 *  Fig 12: CPU network latency (DR -44.2% avg)
 *  Fig 13: CPU performance (+8.8% avg on clogged workloads)
 *  Fig 14: L1 miss breakdown (54.8% forwarded, 74.4% remote hits)
 *
 * Set DR_BENCH_CPUS=1 to run one CPU co-runner per GPU benchmark.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/experiment.hpp"
#include "workloads/gpu_benchmarks.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

int
main()
{
    int cpusPer = 3;
    if (const char *env = std::getenv("DR_BENCH_CPUS"))
        cpusPer = std::clamp(std::atoi(env), 1, 3);

    struct Cell
    {
        RunResults r[3];  //!< Baseline, RP, DR
    };
    std::vector<std::vector<Cell>> results;  // [gpu][cpu]

    const auto gpuNames = gpuBenchmarkNames();
    for (const auto &gpu : gpuNames) {
        results.emplace_back();
        const auto &cpus = cpuCoRunnersFor(gpu);
        for (int c = 0; c < cpusPer; ++c) {
            Cell cell;
            int m = 0;
            for (const Mechanism mech :
                 {Mechanism::Baseline, Mechanism::RealisticProbing,
                  Mechanism::DelegatedReplies}) {
                cell.r[m++] = runWorkload(benchConfig(mech), gpu, cpus[c]);
            }
            results.back().push_back(cell);
        }
    }

    // ---- Figure 10: GPU performance ----
    std::printf("=== Figure 10: GPU performance improvement ===\n");
    std::printf("%-8s %9s %9s %9s %9s %9s\n", "bench", "RP/base",
                "DR/base", "DR/RP", "min", "max");
    std::vector<double> rpG, drG, drRpG;
    for (std::size_t g = 0; g < results.size(); ++g) {
        std::vector<double> rp, dr, drrp;
        for (const auto &cell : results[g]) {
            rp.push_back(cell.r[1].gpuIpc / cell.r[0].gpuIpc);
            dr.push_back(cell.r[2].gpuIpc / cell.r[0].gpuIpc);
            drrp.push_back(cell.r[2].gpuIpc / cell.r[1].gpuIpc);
        }
        std::printf("%-8s %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                    gpuNames[g].c_str(), mean(rp), mean(dr), mean(drrp),
                    *std::min_element(dr.begin(), dr.end()),
                    *std::max_element(dr.begin(), dr.end()));
        rpG.push_back(mean(rp));
        drG.push_back(mean(dr));
        drRpG.push_back(mean(drrp));
    }
    std::printf("%-8s %9.3f %9.3f %9.3f\n", "AVG", mean(rpG), mean(drG),
                mean(drRpG));
    std::printf("paper: RP 1.101, DR 1.257 (up to 1.659 vs baseline), "
                "DR/RP 1.142 (up to 1.306)\n\n");

    // ---- Figure 11: received data rate ----
    std::printf("=== Figure 11: received data rate (flits/cycle per GPU "
                "core) ===\n");
    std::printf("%-8s %9s %9s %9s %9s %9s\n", "bench", "base", "RP", "DR",
                "RP/base", "DR/base");
    std::vector<double> drRate, rpRate;
    for (std::size_t g = 0; g < results.size(); ++g) {
        std::vector<double> base, rp, dr;
        for (const auto &cell : results[g]) {
            base.push_back(cell.r[0].gpuDataRate);
            rp.push_back(cell.r[1].gpuDataRate);
            dr.push_back(cell.r[2].gpuDataRate);
        }
        std::printf("%-8s %9.3f %9.3f %9.3f %9.3f %9.3f\n",
                    gpuNames[g].c_str(), mean(base), mean(rp), mean(dr),
                    mean(rp) / mean(base), mean(dr) / mean(base));
        rpRate.push_back(mean(rp) / mean(base));
        drRate.push_back(mean(dr) / mean(base));
    }
    std::printf("%-8s %39.3f %9.3f\n", "AVG", mean(rpRate), mean(drRate));
    std::printf("paper: DR +26.5%% avg (up to +70.9%%), RP +11.9%%\n\n");

    // ---- Figure 12: CPU network latency ----
    std::printf("=== Figure 12: CPU request latency (normalized to "
                "baseline) ===\n");
    std::printf("%-8s %9s %9s\n", "bench", "RP", "DR");
    std::vector<double> drLat;
    for (std::size_t g = 0; g < results.size(); ++g) {
        std::vector<double> rp, dr;
        for (const auto &cell : results[g]) {
            rp.push_back(cell.r[1].cpuLatency / cell.r[0].cpuLatency);
            dr.push_back(cell.r[2].cpuLatency / cell.r[0].cpuLatency);
        }
        std::printf("%-8s %9.3f %9.3f\n", gpuNames[g].c_str(), mean(rp),
                    mean(dr));
        drLat.push_back(mean(dr));
    }
    std::printf("%-8s %19.3f\n", "AVG", mean(drLat));
    std::printf("paper: DR reduces CPU packet latency 44.2%% avg (to "
                "~0.56x)\n\n");

    // ---- Figure 13: CPU performance ----
    std::printf("=== Figure 13: CPU performance improvement ===\n");
    std::printf("%-8s %9s %9s %9s\n", "bench", "RP/base", "DR/base",
                "blocked?");
    std::vector<double> drCpuAll, drCpuClogged;
    for (std::size_t g = 0; g < results.size(); ++g) {
        std::vector<double> rp, dr;
        double blocking = 0.0;
        for (const auto &cell : results[g]) {
            rp.push_back(cell.r[1].cpuIpc / cell.r[0].cpuIpc);
            dr.push_back(cell.r[2].cpuIpc / cell.r[0].cpuIpc);
            blocking += cell.r[0].memBlockingRate;
        }
        blocking /= static_cast<double>(results[g].size());
        const bool clogged = blocking > 0.3;
        std::printf("%-8s %9.3f %9.3f %9s\n", gpuNames[g].c_str(),
                    mean(rp), mean(dr), clogged ? "yes" : "no");
        drCpuAll.push_back(mean(dr));
        if (clogged)
            drCpuClogged.push_back(mean(dr));
    }
    std::printf("%-8s %19.3f  (clogged-only: %.3f)\n", "AVG",
                mean(drCpuAll), mean(drCpuClogged));
    std::printf("paper: +3.8%% avg over all workloads, +8.8%% over "
                "clogged ones (up to +19.8%%)\n\n");

    // ---- Figure 14: L1 miss breakdown under DR ----
    std::printf("=== Figure 14: L1 miss breakdown (Delegated Replies) "
                "===\n");
    std::printf("%-8s %10s %10s %10s %10s\n", "bench", "fwd%", "rHit%",
                "rDelay%", "rMiss%");
    std::vector<double> fwd, rhr;
    for (std::size_t g = 0; g < results.size(); ++g) {
        std::uint64_t misses = 0, dlg = 0, rh = 0, rd = 0, rm = 0;
        for (const auto &cell : results[g]) {
            misses += cell.r[2].l1Misses;
            dlg += cell.r[2].delegations;
            rh += cell.r[2].frqRemoteHits;
            rd += cell.r[2].frqDelayedHits;
            rm += cell.r[2].frqRemoteMisses;
        }
        const double resolved =
            static_cast<double>(rh + rd + rm) + 1e-9;
        std::printf("%-8s %10.1f %10.1f %10.1f %10.1f\n",
                    gpuNames[g].c_str(),
                    100.0 * static_cast<double>(dlg) /
                        static_cast<double>(misses ? misses : 1),
                    100.0 * static_cast<double>(rh) / resolved,
                    100.0 * static_cast<double>(rd) / resolved,
                    100.0 * static_cast<double>(rm) / resolved);
        fwd.push_back(static_cast<double>(dlg) /
                      static_cast<double>(misses ? misses : 1));
        rhr.push_back(static_cast<double>(rh + rd) / resolved);
    }
    std::printf("%-8s %10.1f %10.1f (remote hits incl. delayed)\n", "AVG",
                100.0 * mean(fwd), 100.0 * mean(rhr));
    std::printf("paper: 54.8%% of misses forwarded; 74.4%% of those are "
                "remote hits\n");
    return 0;
}

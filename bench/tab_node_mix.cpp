/**
 * @file
 * Section VII "Node mix": DR's GPU gain while varying the CPU/GPU core
 * ratio (8 MCs fixed) and the memory-node count (8 CPUs fixed) on the
 * 64-tile chip. Paper: 30.5/25.8/22.6% with 8/16/24 CPU cores, and
 * 38.2/30.5/10.7% with 4/8/16 memory nodes — clogging (and DR's win)
 * grows as compute outnumbers memory.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

namespace
{

const std::vector<std::string> benchSet = {"2DCON", "HS"};

double
drGain(int cpus, int mems)
{
    std::vector<double> gains;
    for (const auto &gpu : benchSet) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        cfg.cpu.numCores = cpus;
        cfg.mem.numNodes = mems;
        cfg.gpu.numCores = 64 - cpus - mems;
        const double base =
            runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]).gpuIpc;
        cfg.mechanism = Mechanism::DelegatedReplies;
        const double dr =
            runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]).gpuIpc;
        gains.push_back(dr / base);
    }
    return geomean(gains);
}

} // namespace

int
main()
{
    std::printf("=== Node mix (64 tiles) ===\n");
    std::printf("-- varying CPU cores, 8 memory nodes (paper: "
                "1.305/1.258/1.226) --\n");
    for (const int cpus : {8, 16, 24}) {
        std::printf("  %2d CPUs / %2d GPUs: DR gain %.3f\n", cpus,
                    64 - cpus - 8, drGain(cpus, 8));
    }
    std::printf("-- varying memory nodes, 8 CPU cores (paper: "
                "1.382/1.305/1.107) --\n");
    for (const int mems : {4, 8, 16}) {
        std::printf("  %2d MCs / %2d GPUs: DR gain %.3f\n", mems,
                    64 - 8 - mems, drGain(8, mems));
    }
    std::printf("\npaper: fewer memory nodes or more GPU cores -> more "
                "clogging -> larger DR gains\n");
    return 0;
}

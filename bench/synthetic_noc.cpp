/**
 * @file
 * Standalone NoC characterization (BookSim/Garnet-standalone style):
 * latency-throughput curves for each topology under the classic
 * synthetic patterns. The hotspot pattern is the abstract form of the
 * paper's clogging problem: all nodes target a few receivers, and the
 * receivers' ejection links saturate long before the bisection does —
 * which is why no topology change fixes clogging (Figure 5).
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "noc/synthetic_traffic.hpp"

using namespace dr;

int
main()
{
    const Cycle cycles = benchCycles(8000);
    const double rates[] = {0.01, 0.03, 0.06, 0.10};

    for (const TopologyKind topo :
         {TopologyKind::Mesh, TopologyKind::FlattenedButterfly,
          TopologyKind::Dragonfly, TopologyKind::Crossbar}) {
        std::printf("=== %s ===\n", topologyName(topo));
        std::printf("%-14s", "pattern");
        for (const double r : rates)
            std::printf("   @%.2f lat/thru", r);
        std::printf("\n");
        for (const TrafficPattern pattern :
             {TrafficPattern::UniformRandom, TrafficPattern::Transpose,
              TrafficPattern::BitComplement, TrafficPattern::Hotspot}) {
            std::printf("%-14s", trafficPatternName(pattern));
            for (const double rate : rates) {
                const SyntheticResult res = runSyntheticLoad(
                    topo, 64, 8, 8, pattern, rate, 5, cycles);
                std::printf("   %6.0f/%5.2f", res.avgLatency,
                            res.acceptedFlitsPerNode);
            }
            std::printf("\n");
        }
        std::printf("\n");
    }
    std::printf("note: hotspot accepted throughput is pinned by the two "
                "receivers' ejection links on every topology — the "
                "topology-independence of endpoint clogging\n");
    return 0;
}

/**
 * @file
 * Figure 7: adaptive routing (DyXY [45], Footprint [22], HARE [37])
 * versus the baseline's CDR. Paper: adaptive routing does not help —
 * the clogged links are the bottleneck and cannot be routed around —
 * and typically costs a little performance.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

int
main()
{
    const std::vector<std::string> benchSet = {"2DCON", "HS", "MM", "LUD",
                                               "SRAD"};
    std::printf("=== Figure 7: adaptive routing vs CDR baseline ===\n");
    std::printf("%-8s %10s %10s %10s %10s\n", "bench", "DyXY",
                "Footprint", "HARE", "DyXY-4VC");

    std::vector<double> dyxy, fp, hare, dyxy4;
    for (const auto &gpu : benchSet) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        const double base =
            runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]).gpuIpc;

        auto measure = [&](RoutingKind kind, int vcs) {
            SystemConfig c = benchConfig(Mechanism::Baseline);
            c.noc.requestRouting = kind;
            c.noc.replyRouting = kind;
            c.noc.vcsPerNet = vcs;
            return runWorkload(c, gpu, cpuCoRunnersFor(gpu)[0]).gpuIpc /
                   base;
        };
        const double d = measure(RoutingKind::DyXY, 2);
        const double f = measure(RoutingKind::Footprint, 2);
        const double h = measure(RoutingKind::Hare, 2);
        const double d4 = measure(RoutingKind::DyXY, 4);
        std::printf("%-8s %10.3f %10.3f %10.3f %10.3f\n", gpu.c_str(), d,
                    f, h, d4);
        dyxy.push_back(d);
        fp.push_back(f);
        hare.push_back(h);
        dyxy4.push_back(d4);
    }
    std::printf("%-8s %10.3f %10.3f %10.3f %10.3f\n", "GM", geomean(dyxy),
                geomean(fp), geomean(hare), geomean(dyxy4));
    std::printf("\npaper: all adaptive schemes at or slightly below "
                "1.0x; the footnote reports that extra VCs (DyXY-4VC "
                "column) partially close the gap but never beat the "
                "baseline\n");
    return 0;
}

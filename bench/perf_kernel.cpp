/**
 * @file
 * Kernel-performance benchmark for the cycle-level NoC engine itself
 * (not a paper figure): how many simulated cycles per wall-clock second
 * the Network kernel sustains under synthetic uniform-random and
 * hotspot traffic at several injection rates. Emits a single JSON
 * object on stdout; `tools/run_perf_kernel.sh` wraps it into
 * `BENCH_noc_kernel.json` and the CI perf smoke job diffs the summary
 * against the committed baseline.
 *
 * Simulated-cycles/sec is the figure of merit: it bounds how large a
 * `DR_BENCH_CYCLES` horizon the paper benches can afford (EXPERIMENTS.md
 * "kernel performance").
 */

#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "noc/network.hpp"
#include "noc/synthetic_traffic.hpp"

using namespace dr;

namespace
{

struct WorkloadResult
{
    const char *pattern;
    double rate;
    int threads;
    Cycle cycles;
    double wallSeconds;
    double cyclesPerSec;
    double flitHopsPerSec;
    std::uint64_t packetsDelivered;
};

/**
 * One timed run of the raw Network kernel (no memory system). With
 * `vnets` on the network runs the virtual-network partition (4 VCs, one
 * per VN, (class, VN) arbitration) and the traffic mixes all four
 * message classes — the configurations the CI perf gate tracks as
 * `vnet_uniform_cycles_per_sec` / `vnet_hotspot_cycles_per_sec`.
 * `threads` pins the parallel tick engine's domain count; results are
 * bit-identical across values, only wall-clock changes (DESIGN.md §11).
 */
WorkloadResult
timeWorkload(TrafficPattern pattern, double rate, Cycle cycles,
             std::uint64_t seed, bool vnets = false, int threads = 1)
{
    const int nodes = 64;
    const int width = 8;
    const int packetFlits = 5;

    const Topology topo = Topology::makeMesh(width, width);
    NetworkParams params;
    params.routing = RoutingKind::DimOrderXY;
    params.injBufferFlits.assign(nodes, 36);
    params.seed = seed;
    params.threads = threads;
    if (vnets) {
        params.numVcs = numVnets;
        params.vnPriority = true;
        params.layout.numVcs = numVnets;
        for (int vn = 0; vn < numVnets; ++vn)
            params.layout.range[vn] = {static_cast<std::uint8_t>(vn), 1};
    }
    Network net(params, topo);

    SyntheticTraffic traffic(
        pattern, nodes, width,
        pattern == TrafficPattern::Hotspot
            ? std::vector<NodeId>{0, static_cast<NodeId>(nodes / 2)}
            : std::vector<NodeId>{});
    Rng rng(seed * 31 + 7);

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t id = 1;
    for (Cycle now = 0; now < cycles; ++now) {
        for (NodeId src = 0; src < nodes; ++src) {
            if (!rng.chance(rate))
                continue;
            if (!net.canInject(src, packetFlits))
                continue;
            Message m;
            m.type = MsgType::ReadReply;
            m.cls = TrafficClass::Gpu;
            m.src = src;
            m.dst = traffic.dest(src, rng);
            m.id = id++;
            if (vnets) {
                // Spread over all four VNs: request-side classes carry
                // 1-flit requests, reply-side classes 5-flit replies.
                const VirtualNet vn =
                    static_cast<VirtualNet>(rng.next() % numVnets);
                const bool reqSide =
                    vn == VirtualNet::Request ||
                    vn == VirtualNet::ForwardedRequest;
                m.type = reqSide ? MsgType::ReadReq : MsgType::ReadReply;
                net.inject(m, reqSide ? 1 : packetFlits, now, vn);
            } else {
                net.inject(m, packetFlits, now);
            }
        }
        net.tick(now);
        for (NodeId n = 0; n < nodes; ++n) {
            while (net.hasMessage(n, NetKind::Reply))
                net.popMessage(n, NetKind::Reply);
            while (net.hasMessage(n, NetKind::Request))
                net.popMessage(n, NetKind::Request);
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(stop - start).count();

    WorkloadResult r;
    r.pattern = !vnets ? trafficPatternName(pattern)
                       : (pattern == TrafficPattern::Hotspot
                              ? "vnet_hotspot"
                              : "vnet_uniform");
    r.rate = rate;
    r.threads = threads;
    r.cycles = cycles;
    r.wallSeconds = wall;
    r.cyclesPerSec = wall > 0.0 ? static_cast<double>(cycles) / wall : 0.0;
    r.flitHopsPerSec =
        wall > 0.0
            ? static_cast<double>(net.totalLinkTraversals()) / wall
            : 0.0;
    r.packetsDelivered = net.stats().packetsDelivered.value();
    return r;
}

/**
 * One timed run of the raw Network kernel on the chiplet mesh: 2x2
 * chiplets of 4x4 routers (the same 64 nodes as the plain-mesh
 * columns), gateway-restricted interposer links with half-width
 * serialization, and 3-phase hierarchical routing with its 3-VC
 * escalation. Uniform-random traffic, so a fixed share of packets
 * crosses the interposer and the gateway/serialization hot path is
 * what the CI perf gate tracks as `chiplet_uniform_cycles_per_sec`.
 */
WorkloadResult
timeChipletWorkload(double rate, Cycle cycles, std::uint64_t seed)
{
    const int nodes = 64;
    const int width = 8;
    const int packetFlits = 5;

    const Topology topo = Topology::makeChipletMesh(2, 2, 4, 4, 2);
    NetworkParams params;
    params.routing = RoutingKind::ChipletHierarchical;
    params.numVcs = 3;
    params.injBufferFlits.assign(nodes, 36);
    params.seed = seed;
    params.interposerSerialization = 2;
    Network net(params, topo);

    SyntheticTraffic traffic(TrafficPattern::UniformRandom, nodes, width,
                             {});
    Rng rng(seed * 31 + 7);

    const auto start = std::chrono::steady_clock::now();
    std::uint64_t id = 1;
    for (Cycle now = 0; now < cycles; ++now) {
        for (NodeId src = 0; src < nodes; ++src) {
            if (!rng.chance(rate) || !net.canInject(src, packetFlits))
                continue;
            Message m;
            m.type = MsgType::ReadReply;
            m.cls = TrafficClass::Gpu;
            m.src = src;
            m.dst = traffic.dest(src, rng);
            m.id = id++;
            net.inject(m, packetFlits, now);
        }
        net.tick(now);
        for (NodeId n = 0; n < nodes; ++n) {
            while (net.hasMessage(n, NetKind::Reply))
                net.popMessage(n, NetKind::Reply);
            while (net.hasMessage(n, NetKind::Request))
                net.popMessage(n, NetKind::Request);
        }
    }
    const auto stop = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(stop - start).count();

    WorkloadResult r;
    r.pattern = "chiplet_uniform";
    r.rate = rate;
    r.threads = 1;
    r.cycles = cycles;
    r.wallSeconds = wall;
    r.cyclesPerSec = wall > 0.0 ? static_cast<double>(cycles) / wall : 0.0;
    r.flitHopsPerSec =
        wall > 0.0
            ? static_cast<double>(net.totalLinkTraversals()) / wall
            : 0.0;
    r.packetsDelivered = net.stats().packetsDelivered.value();
    return r;
}

/**
 * One timed end-to-end run of the full heterogeneous system (SM cores,
 * CPU cores, memory nodes, coherence — not just the NoC kernel) under
 * the paper configuration. `threads` drives both the NoC domain
 * workers and the endpoint compute phase (DESIGN.md §13); results are
 * bit-identical across values, so the threads1/threads4 column pair
 * measures parallel-engine scaling over the whole simulator. `l1Org`
 * selects the GPU L1 organization: the shared DC-L1 column exercises
 * the staged slice-port path (DESIGN.md §14), whose per-core banking
 * is what lets the endpoint phase stay parallel under sharing.
 */
WorkloadResult
timeE2eHetero(int threads, Cycle cycles,
              L1Organization l1Org = L1Organization::Private)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.gpu.l1Org = l1Org;
    cfg.noc.threads = threads;
    cfg.warmupCycles = cycles / 10;
    cfg.simCycles = cycles;

    const auto start = std::chrono::steady_clock::now();
    const RunResults res = runWorkload(cfg, "HS", "blackscholes");
    const auto stop = std::chrono::steady_clock::now();
    const double wall =
        std::chrono::duration<double>(stop - start).count();
    const Cycle total = cfg.warmupCycles + cfg.simCycles;

    WorkloadResult r;
    r.pattern = l1Org == L1Organization::DcL1 ? "e2e_hetero_sharedL1"
                                              : "e2e_hetero";
    r.rate = 0.0;
    r.threads = threads;
    r.cycles = total;
    r.wallSeconds = wall;
    r.cyclesPerSec = wall > 0.0 ? static_cast<double>(total) / wall : 0.0;
    r.flitHopsPerSec =
        wall > 0.0 ? static_cast<double>(res.linkTraversals) / wall : 0.0;
    r.packetsDelivered = res.requestsInjected;
    return r;
}

long
peakRssKb()
{
    struct rusage usage;
    if (getrusage(RUSAGE_SELF, &usage) != 0)
        return 0;
    return usage.ru_maxrss;  // kilobytes on Linux
}

} // namespace

int
main()
{
    // Long enough that per-run timing noise stays in the low percent
    // range on a loaded machine; DR_BENCH_CYCLES scales it.
    const Cycle cycles = benchCycles(300000);

    struct Load
    {
        TrafficPattern pattern;
        double rate;
    };
    const Load loads[] = {
        {TrafficPattern::UniformRandom, 0.02},
        {TrafficPattern::UniformRandom, 0.05},
        {TrafficPattern::UniformRandom, 0.10},
        {TrafficPattern::Hotspot, 0.02},
        {TrafficPattern::Hotspot, 0.05},
    };

    std::vector<WorkloadResult> results;
    for (const Load &load : loads)
        results.push_back(timeWorkload(load.pattern, load.rate, cycles, 1));
    // VN-enabled runs so the perf gate tracks the partitioned hot path
    // (VC-range allocation + (class, VN) arbitration) under both
    // spread and concentrated traffic.
    results.push_back(timeWorkload(TrafficPattern::UniformRandom, 0.05,
                                   cycles, 1, /*vnets=*/true));
    results.push_back(timeWorkload(TrafficPattern::Hotspot, 0.05, cycles,
                                   1, /*vnets=*/true));
    // Chiplet-mesh runs: hierarchical routing, gateway restriction and
    // interposer serialization on the raw kernel hot path.
    results.push_back(timeChipletWorkload(0.02, cycles, 1));
    results.push_back(timeChipletWorkload(0.05, cycles, 1));
    // Parallel tick engine scaling: uniform rate 0.10 at 2 and 4
    // domains (threads=1 is loads[2] above). Statistics are
    // bit-identical across the column; only wall-clock moves.
    const std::size_t uniformR10Idx = 2;
    const std::size_t threads2Idx = results.size();
    results.push_back(timeWorkload(TrafficPattern::UniformRandom, 0.10,
                                   cycles, 1, /*vnets=*/false,
                                   /*threads=*/2));
    const std::size_t threads4Idx = results.size();
    results.push_back(timeWorkload(TrafficPattern::UniformRandom, 0.10,
                                   cycles, 1, /*vnets=*/false,
                                   /*threads=*/4));
    // End-to-end scaling over the whole simulator (endpoint compute
    // phase + NoC domains). A shorter horizon than the raw kernel: the
    // full system simulates far fewer cycles per second.
    const Cycle e2eCycles = std::max<Cycle>(cycles / 10, 5000);
    const std::size_t e2eThreads1Idx = results.size();
    results.push_back(timeE2eHetero(/*threads=*/1, e2eCycles));
    const std::size_t e2eThreads4Idx = results.size();
    results.push_back(timeE2eHetero(/*threads=*/4, e2eCycles));
    // Same end-to-end pair under the shared DC-L1 organization: the
    // staged lookup path adds per-core banking plus a commit drain, so
    // its scaling is tracked as its own column pair (excluded from the
    // geomeans like the private-L1 e2e columns).
    const std::size_t e2eSharedThreads1Idx = results.size();
    results.push_back(
        timeE2eHetero(/*threads=*/1, e2eCycles, L1Organization::DcL1));
    const std::size_t e2eSharedThreads4Idx = results.size();
    results.push_back(
        timeE2eHetero(/*threads=*/4, e2eCycles, L1Organization::DcL1));

    std::vector<double> uniformCps;
    std::vector<double> hotspotCps;
    std::vector<double> vnetUniformCps;
    std::vector<double> vnetHotspotCps;
    std::vector<double> chipletCps;
    for (const WorkloadResult &r : results) {
        if (r.threads != 1)
            continue;  // summary geomeans stay a single-thread metric
        if (std::string(r.pattern).rfind("e2e_hetero", 0) == 0)
            continue;  // reported via their own summary columns below
        if (r.pattern == std::string("uniform"))
            uniformCps.push_back(r.cyclesPerSec);
        else if (r.pattern == std::string("vnet_uniform"))
            vnetUniformCps.push_back(r.cyclesPerSec);
        else if (r.pattern == std::string("vnet_hotspot"))
            vnetHotspotCps.push_back(r.cyclesPerSec);
        else if (r.pattern == std::string("chiplet_uniform"))
            chipletCps.push_back(r.cyclesPerSec);
        else
            hotspotCps.push_back(r.cyclesPerSec);
    }

    std::printf("{\n");
    std::printf("  \"bench\": \"noc_kernel\",\n");
    std::printf("  \"config\": {\"topology\": \"mesh8x8\", \"nodes\": 64, "
                "\"packet_flits\": 5, \"cycles\": %llu, "
                "\"host_cores\": %u},\n",
                static_cast<unsigned long long>(cycles),
                std::thread::hardware_concurrency());
    std::printf("  \"workloads\": [\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
        const WorkloadResult &r = results[i];
        std::printf("    {\"pattern\": \"%s\", \"rate\": %.3f, "
                    "\"threads\": %d, "
                    "\"wall_s\": %.3f, \"cycles_per_sec\": %.0f, "
                    "\"flit_hops_per_sec\": %.0f, "
                    "\"packets_delivered\": %llu}%s\n",
                    r.pattern, r.rate, r.threads, r.wallSeconds,
                    r.cyclesPerSec, r.flitHopsPerSec,
                    static_cast<unsigned long long>(r.packetsDelivered),
                    i + 1 < results.size() ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"summary\": {\n");
    std::printf("    \"uniform_cycles_per_sec\": %.0f,\n",
                geomean(uniformCps));
    std::printf("    \"hotspot_cycles_per_sec\": %.0f,\n",
                geomean(hotspotCps));
    std::printf("    \"vnet_uniform_cycles_per_sec\": %.0f,\n",
                geomean(vnetUniformCps));
    std::printf("    \"vnet_hotspot_cycles_per_sec\": %.0f,\n",
                geomean(vnetHotspotCps));
    std::printf("    \"chiplet_uniform_cycles_per_sec\": %.0f,\n",
                geomean(chipletCps));
    std::printf("    \"uniform_r10_threads1_cycles_per_sec\": %.0f,\n",
                results[uniformR10Idx].cyclesPerSec);
    std::printf("    \"uniform_r10_threads2_cycles_per_sec\": %.0f,\n",
                results[threads2Idx].cyclesPerSec);
    std::printf("    \"uniform_r10_threads4_cycles_per_sec\": %.0f,\n",
                results[threads4Idx].cyclesPerSec);
    std::printf("    \"e2e_hetero_threads1_cycles_per_sec\": %.0f,\n",
                results[e2eThreads1Idx].cyclesPerSec);
    std::printf("    \"e2e_hetero_threads4_cycles_per_sec\": %.0f,\n",
                results[e2eThreads4Idx].cyclesPerSec);
    std::printf(
        "    \"e2e_hetero_sharedL1_threads1_cycles_per_sec\": %.0f,\n",
        results[e2eSharedThreads1Idx].cyclesPerSec);
    std::printf(
        "    \"e2e_hetero_sharedL1_threads4_cycles_per_sec\": %.0f,\n",
        results[e2eSharedThreads4Idx].cyclesPerSec);
    std::printf("    \"peak_rss_kb\": %ld\n", peakRssKb());
    std::printf("  }\n");
    std::printf("}\n");
    return 0;
}

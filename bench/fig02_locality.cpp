/**
 * @file
 * Figure 2: inter-core locality. For each GPU benchmark, the fraction
 * of L1 cache misses whose line is present in at least one remote L1 at
 * miss time. Paper: more than 57% on average, with 2DCON/HS/NN highest.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/gpu_benchmarks.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

int
main()
{
    std::printf("=== Figure 2: inter-core locality "
                "(%% of L1 misses in >=1 remote L1) ===\n");
    std::printf("%-8s %12s %12s\n", "bench", "remoteCopy%", "l1Miss%");
    std::vector<double> fractions;
    for (const auto &name : gpuBenchmarkNames()) {
        SystemConfig cfg = benchConfig(Mechanism::Baseline);
        const RunResults r =
            runWorkload(cfg, name, cpuCoRunnersFor(name)[0]);
        std::printf("%-8s %12.1f %12.1f\n", name.c_str(),
                    100.0 * r.remoteCopyFraction(),
                    100.0 * r.gpuL1MissRate);
        fractions.push_back(r.remoteCopyFraction());
    }
    std::printf("%-8s %12.1f\n", "AVG", 100.0 * mean(fractions));
    std::printf("\npaper: >57%% average; 2DCON, HS and NN above 60%%\n");
    return 0;
}

/**
 * @file
 * google-benchmark microbenchmarks for the simulator's hot components:
 * cache lookups, MSHR operations, DRAM scheduling, router switch
 * allocation, network ticks, and full-system cycles. These guard the
 * simulator's own performance (it runs on one host core).
 */

#include <benchmark/benchmark.h>

#include "common/config.hpp"
#include "core/hetero_system.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/mshr.hpp"
#include "noc/network.hpp"
#include "workloads/gpu_benchmarks.hpp"

namespace
{

using namespace dr;

void
BM_CacheAccess(benchmark::State &state)
{
    struct NoMeta
    {};
    SetAssocCache<NoMeta> cache({48 * 1024, 4, 128});
    for (Addr a = 0; a < 48 * 1024; a += 128)
        cache.insert(a, {});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addr));
        addr = (addr + 128) % (48 * 1024);
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    struct NoMeta
    {};
    SetAssocCache<NoMeta> cache({48 * 1024, 4, 128});
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.insert(addr, {}));
        addr += 128;
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_MshrAllocateRelease(benchmark::State &state)
{
    MshrFile mshrs(64, 8);
    Addr addr = 0;
    for (auto _ : state) {
        mshrs.allocate(addr, {1, 0, TrafficClass::Gpu, false, false});
        benchmark::DoNotOptimize(mshrs.release(addr));
        addr += 128;
    }
}
BENCHMARK(BM_MshrAllocateRelease);

void
BM_DramStreamTick(benchmark::State &state)
{
    const MemConfig cfg = SystemConfig::makePaper().mem;
    DramChannel dram(cfg);
    Cycle now = 0;
    Addr addr = 0;
    for (auto _ : state) {
        if (!dram.queueFull()) {
            dram.enqueue({addr, false, 1, now}, now);
            addr += 128;
        }
        dram.tick(now);
        while (dram.hasCompletion(now))
            dram.popCompletion();
        ++now;
    }
}
BENCHMARK(BM_DramStreamTick);

void
BM_NetworkTickLoaded(benchmark::State &state)
{
    const Topology topo = Topology::makeMesh(8, 8);
    NetworkParams params;
    params.injBufferFlits.assign(64, 36);
    Network net(params, topo);
    Cycle now = 0;
    std::uint64_t id = 1;
    for (auto _ : state) {
        for (NodeId src = 0; src < 64; src += 7) {
            if (net.canInject(src, 9)) {
                Message m;
                m.type = MsgType::ReadReply;
                m.src = src;
                m.dst = static_cast<NodeId>((src + 31) % 64);
                m.id = id++;
                net.inject(m, 9, now);
            }
        }
        net.tick(now);
        for (NodeId n = 0; n < 64; ++n) {
            while (net.hasMessage(n, NetKind::Reply))
                net.popMessage(n, NetKind::Reply);
        }
        ++now;
    }
}
BENCHMARK(BM_NetworkTickLoaded);

void
BM_KernelAccessGen(benchmark::State &state)
{
    const auto kernel = makeGpuBenchmark("2DCON");
    int idx = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernel->access(idx % kernel->ctaCount(), idx % 8,
                           idx % kernel->accessesPerWarp()));
        ++idx;
    }
}
BENCHMARK(BM_KernelAccessGen);

void
BM_FullSystemCycle(benchmark::State &state)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    HeteroSystem sys(cfg, "HS", "blackscholes");
    sys.advance(2000);  // reach a loaded steady-ish state
    for (auto _ : state)
        sys.advance(1);
}
BENCHMARK(BM_FullSystemCycle);

} // namespace

BENCHMARK_MAIN();

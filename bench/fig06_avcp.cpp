/**
 * @file
 * Figure 6: Asymmetric VC Partitioning (AVCP) [33] on a shared physical
 * network with the same aggregate bandwidth as the baseline. Paper:
 * AVCP is ineffective (<3% best case, HM flat) and *hurts* write-heavy
 * BP because it steals (virtual) request-network capacity.
 */

#include <cstdio>

#include "core/experiment.hpp"
#include "workloads/workload_table.hpp"

using namespace dr;

int
main()
{
    const std::vector<std::string> benchSet = {"2DCON", "HS", "MM", "NN",
                                               "BP"};
    struct Split
    {
        int req;
        int reply;
    };
    const std::vector<Split> splits = {{2, 2}, {1, 3}, {3, 1}};

    std::printf("=== Figure 6: asymmetric VC partitioning (shared "
                "network) ===\n");
    std::printf("%-8s", "bench");
    for (const auto &s : splits)
        std::printf("   req%d:rep%d", s.req, s.reply);
    std::printf("   (normalized to the 2:2 split)\n");

    std::vector<std::vector<double>> perSplit(splits.size());
    for (const auto &gpu : benchSet) {
        std::vector<double> ipcs;
        for (const auto &s : splits) {
            SystemConfig cfg = benchConfig(Mechanism::Baseline);
            cfg.noc.sharedPhysical = true;
            cfg.noc.sharedReqVcs = s.req;
            cfg.noc.sharedReplyVcs = s.reply;
            const RunResults r =
                runWorkload(cfg, gpu, cpuCoRunnersFor(gpu)[0]);
            ipcs.push_back(r.gpuIpc);
        }
        std::printf("%-8s", gpu.c_str());
        for (std::size_t i = 0; i < splits.size(); ++i) {
            std::printf("   %9.3f", ipcs[i] / ipcs[0]);
            perSplit[i].push_back(ipcs[i] / ipcs[0]);
        }
        std::printf("\n");
    }
    std::printf("%-8s", "HM");
    for (auto &column : perSplit)
        std::printf("   %9.3f", harmonicMean(column));
    std::printf("\n\npaper: best case +3%%, harmonic mean flat, BP hurt "
                "by fewer request VCs\n");
    return 0;
}

# Empty dependencies file for drsim.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/drsim.dir/drsim.cpp.o"
  "CMakeFiles/drsim.dir/drsim.cpp.o.d"
  "drsim"
  "drsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_config_io.cpp.o"
  "CMakeFiles/test_core.dir/core/test_config_io.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_invariants.cpp.o"
  "CMakeFiles/test_core.dir/core/test_invariants.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_layout.cpp.o"
  "CMakeFiles/test_core.dir/core/test_layout.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_stats_report.cpp.o"
  "CMakeFiles/test_core.dir/core/test_stats_report.cpp.o.d"
  "CMakeFiles/test_core.dir/core/test_system.cpp.o"
  "CMakeFiles/test_core.dir/core/test_system.cpp.o.d"
  "test_core"
  "test_core.pdb"
  "test_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_mem.dir/mem/test_address_map.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_address_map.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_cache.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_cache.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_dram.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_dram.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_llc.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_llc.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_mem_node.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_mem_node.cpp.o.d"
  "CMakeFiles/test_mem.dir/mem/test_mshr.cpp.o"
  "CMakeFiles/test_mem.dir/mem/test_mshr.cpp.o.d"
  "test_mem"
  "test_mem.pdb"
  "test_mem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

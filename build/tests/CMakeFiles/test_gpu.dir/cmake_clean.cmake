file(REMOVE_RECURSE
  "CMakeFiles/test_gpu.dir/gpu/test_cta_scheduler.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_cta_scheduler.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_l1_orgs.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_l1_orgs.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_realistic_probing.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_realistic_probing.cpp.o.d"
  "CMakeFiles/test_gpu.dir/gpu/test_sm_core.cpp.o"
  "CMakeFiles/test_gpu.dir/gpu/test_sm_core.cpp.o.d"
  "test_gpu"
  "test_gpu.pdb"
  "test_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

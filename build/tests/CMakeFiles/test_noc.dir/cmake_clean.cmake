file(REMOVE_RECURSE
  "CMakeFiles/test_noc.dir/noc/test_interconnect.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_interconnect.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/test_network.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_network.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/test_router_unit.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_router_unit.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/test_routing.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_routing.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/test_synthetic_traffic.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_synthetic_traffic.cpp.o.d"
  "CMakeFiles/test_noc.dir/noc/test_topology.cpp.o"
  "CMakeFiles/test_noc.dir/noc/test_topology.cpp.o.d"
  "test_noc"
  "test_noc.pdb"
  "test_noc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

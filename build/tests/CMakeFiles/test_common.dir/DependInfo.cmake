
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_config.cpp" "tests/CMakeFiles/test_common.dir/common/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_config.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_stats.cpp" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o" "gcc" "tests/CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dr_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/dr_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dr_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dr_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

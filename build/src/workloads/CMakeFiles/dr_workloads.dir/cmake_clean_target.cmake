file(REMOVE_RECURSE
  "libdr_workloads.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/gpu_benchmarks.cpp" "src/workloads/CMakeFiles/dr_workloads.dir/gpu_benchmarks.cpp.o" "gcc" "src/workloads/CMakeFiles/dr_workloads.dir/gpu_benchmarks.cpp.o.d"
  "/root/repo/src/workloads/trace_kernel.cpp" "src/workloads/CMakeFiles/dr_workloads.dir/trace_kernel.cpp.o" "gcc" "src/workloads/CMakeFiles/dr_workloads.dir/trace_kernel.cpp.o.d"
  "/root/repo/src/workloads/workload_table.cpp" "src/workloads/CMakeFiles/dr_workloads.dir/workload_table.cpp.o" "gcc" "src/workloads/CMakeFiles/dr_workloads.dir/workload_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/dr_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dr_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dr_coherence.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for dr_workloads.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dr_workloads.dir/gpu_benchmarks.cpp.o"
  "CMakeFiles/dr_workloads.dir/gpu_benchmarks.cpp.o.d"
  "CMakeFiles/dr_workloads.dir/trace_kernel.cpp.o"
  "CMakeFiles/dr_workloads.dir/trace_kernel.cpp.o.d"
  "CMakeFiles/dr_workloads.dir/workload_table.cpp.o"
  "CMakeFiles/dr_workloads.dir/workload_table.cpp.o.d"
  "libdr_workloads.a"
  "libdr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

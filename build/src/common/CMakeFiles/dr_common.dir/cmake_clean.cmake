file(REMOVE_RECURSE
  "CMakeFiles/dr_common.dir/config.cpp.o"
  "CMakeFiles/dr_common.dir/config.cpp.o.d"
  "CMakeFiles/dr_common.dir/log.cpp.o"
  "CMakeFiles/dr_common.dir/log.cpp.o.d"
  "CMakeFiles/dr_common.dir/stats.cpp.o"
  "CMakeFiles/dr_common.dir/stats.cpp.o.d"
  "CMakeFiles/dr_common.dir/types.cpp.o"
  "CMakeFiles/dr_common.dir/types.cpp.o.d"
  "libdr_common.a"
  "libdr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdr_common.a"
)

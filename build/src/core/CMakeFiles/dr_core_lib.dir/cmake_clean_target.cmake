file(REMOVE_RECURSE
  "libdr_core_lib.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dr_core_lib.dir/config_io.cpp.o"
  "CMakeFiles/dr_core_lib.dir/config_io.cpp.o.d"
  "CMakeFiles/dr_core_lib.dir/experiment.cpp.o"
  "CMakeFiles/dr_core_lib.dir/experiment.cpp.o.d"
  "CMakeFiles/dr_core_lib.dir/hetero_system.cpp.o"
  "CMakeFiles/dr_core_lib.dir/hetero_system.cpp.o.d"
  "CMakeFiles/dr_core_lib.dir/layout.cpp.o"
  "CMakeFiles/dr_core_lib.dir/layout.cpp.o.d"
  "CMakeFiles/dr_core_lib.dir/stats_report.cpp.o"
  "CMakeFiles/dr_core_lib.dir/stats_report.cpp.o.d"
  "libdr_core_lib.a"
  "libdr_core_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_core_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

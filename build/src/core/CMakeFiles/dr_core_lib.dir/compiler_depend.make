# Empty compiler generated dependencies file for dr_core_lib.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/config_io.cpp" "src/core/CMakeFiles/dr_core_lib.dir/config_io.cpp.o" "gcc" "src/core/CMakeFiles/dr_core_lib.dir/config_io.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/dr_core_lib.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/dr_core_lib.dir/experiment.cpp.o.d"
  "/root/repo/src/core/hetero_system.cpp" "src/core/CMakeFiles/dr_core_lib.dir/hetero_system.cpp.o" "gcc" "src/core/CMakeFiles/dr_core_lib.dir/hetero_system.cpp.o.d"
  "/root/repo/src/core/layout.cpp" "src/core/CMakeFiles/dr_core_lib.dir/layout.cpp.o" "gcc" "src/core/CMakeFiles/dr_core_lib.dir/layout.cpp.o.d"
  "/root/repo/src/core/stats_report.cpp" "src/core/CMakeFiles/dr_core_lib.dir/stats_report.cpp.o" "gcc" "src/core/CMakeFiles/dr_core_lib.dir/stats_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dr_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dr_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/dr_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dr_power.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

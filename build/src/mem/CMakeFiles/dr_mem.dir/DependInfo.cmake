
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/address_map.cpp" "src/mem/CMakeFiles/dr_mem.dir/address_map.cpp.o" "gcc" "src/mem/CMakeFiles/dr_mem.dir/address_map.cpp.o.d"
  "/root/repo/src/mem/dram.cpp" "src/mem/CMakeFiles/dr_mem.dir/dram.cpp.o" "gcc" "src/mem/CMakeFiles/dr_mem.dir/dram.cpp.o.d"
  "/root/repo/src/mem/llc.cpp" "src/mem/CMakeFiles/dr_mem.dir/llc.cpp.o" "gcc" "src/mem/CMakeFiles/dr_mem.dir/llc.cpp.o.d"
  "/root/repo/src/mem/mem_node.cpp" "src/mem/CMakeFiles/dr_mem.dir/mem_node.cpp.o" "gcc" "src/mem/CMakeFiles/dr_mem.dir/mem_node.cpp.o.d"
  "/root/repo/src/mem/mshr.cpp" "src/mem/CMakeFiles/dr_mem.dir/mshr.cpp.o" "gcc" "src/mem/CMakeFiles/dr_mem.dir/mshr.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dr_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dr_coherence.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/dr_mem.dir/address_map.cpp.o"
  "CMakeFiles/dr_mem.dir/address_map.cpp.o.d"
  "CMakeFiles/dr_mem.dir/dram.cpp.o"
  "CMakeFiles/dr_mem.dir/dram.cpp.o.d"
  "CMakeFiles/dr_mem.dir/llc.cpp.o"
  "CMakeFiles/dr_mem.dir/llc.cpp.o.d"
  "CMakeFiles/dr_mem.dir/mem_node.cpp.o"
  "CMakeFiles/dr_mem.dir/mem_node.cpp.o.d"
  "CMakeFiles/dr_mem.dir/mshr.cpp.o"
  "CMakeFiles/dr_mem.dir/mshr.cpp.o.d"
  "libdr_mem.a"
  "libdr_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libdr_mem.a"
)

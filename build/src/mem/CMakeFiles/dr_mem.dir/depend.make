# Empty dependencies file for dr_mem.
# This may be replaced when dependencies are built.

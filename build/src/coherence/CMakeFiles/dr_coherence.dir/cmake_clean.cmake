file(REMOVE_RECURSE
  "CMakeFiles/dr_coherence.dir/gpu_coherence.cpp.o"
  "CMakeFiles/dr_coherence.dir/gpu_coherence.cpp.o.d"
  "CMakeFiles/dr_coherence.dir/mesi.cpp.o"
  "CMakeFiles/dr_coherence.dir/mesi.cpp.o.d"
  "libdr_coherence.a"
  "libdr_coherence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_coherence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

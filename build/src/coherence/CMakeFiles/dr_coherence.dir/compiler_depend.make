# Empty compiler generated dependencies file for dr_coherence.
# This may be replaced when dependencies are built.

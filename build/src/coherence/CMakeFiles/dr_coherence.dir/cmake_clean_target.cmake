file(REMOVE_RECURSE
  "libdr_coherence.a"
)

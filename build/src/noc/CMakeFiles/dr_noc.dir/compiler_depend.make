# Empty compiler generated dependencies file for dr_noc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dr_noc.dir/interconnect.cpp.o"
  "CMakeFiles/dr_noc.dir/interconnect.cpp.o.d"
  "CMakeFiles/dr_noc.dir/network.cpp.o"
  "CMakeFiles/dr_noc.dir/network.cpp.o.d"
  "CMakeFiles/dr_noc.dir/router.cpp.o"
  "CMakeFiles/dr_noc.dir/router.cpp.o.d"
  "CMakeFiles/dr_noc.dir/routing.cpp.o"
  "CMakeFiles/dr_noc.dir/routing.cpp.o.d"
  "CMakeFiles/dr_noc.dir/synthetic_traffic.cpp.o"
  "CMakeFiles/dr_noc.dir/synthetic_traffic.cpp.o.d"
  "CMakeFiles/dr_noc.dir/topology.cpp.o"
  "CMakeFiles/dr_noc.dir/topology.cpp.o.d"
  "libdr_noc.a"
  "libdr_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

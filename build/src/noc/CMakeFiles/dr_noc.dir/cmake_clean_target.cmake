file(REMOVE_RECURSE
  "libdr_noc.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/noc_power.cpp" "src/power/CMakeFiles/dr_power.dir/noc_power.cpp.o" "gcc" "src/power/CMakeFiles/dr_power.dir/noc_power.cpp.o.d"
  "/root/repo/src/power/sram_area.cpp" "src/power/CMakeFiles/dr_power.dir/sram_area.cpp.o" "gcc" "src/power/CMakeFiles/dr_power.dir/sram_area.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dr_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

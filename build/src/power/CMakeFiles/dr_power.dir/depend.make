# Empty dependencies file for dr_power.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dr_power.dir/noc_power.cpp.o"
  "CMakeFiles/dr_power.dir/noc_power.cpp.o.d"
  "CMakeFiles/dr_power.dir/sram_area.cpp.o"
  "CMakeFiles/dr_power.dir/sram_area.cpp.o.d"
  "libdr_power.a"
  "libdr_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

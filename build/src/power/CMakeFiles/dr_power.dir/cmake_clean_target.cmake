file(REMOVE_RECURSE
  "libdr_power.a"
)

# Empty dependencies file for dr_cpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libdr_cpu.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dr_cpu.dir/cpu_node.cpp.o"
  "CMakeFiles/dr_cpu.dir/cpu_node.cpp.o.d"
  "CMakeFiles/dr_cpu.dir/cpu_profile.cpp.o"
  "CMakeFiles/dr_cpu.dir/cpu_profile.cpp.o.d"
  "libdr_cpu.a"
  "libdr_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

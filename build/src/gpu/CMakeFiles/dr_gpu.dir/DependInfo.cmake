
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cta_scheduler.cpp" "src/gpu/CMakeFiles/dr_gpu.dir/cta_scheduler.cpp.o" "gcc" "src/gpu/CMakeFiles/dr_gpu.dir/cta_scheduler.cpp.o.d"
  "/root/repo/src/gpu/l1_cache.cpp" "src/gpu/CMakeFiles/dr_gpu.dir/l1_cache.cpp.o" "gcc" "src/gpu/CMakeFiles/dr_gpu.dir/l1_cache.cpp.o.d"
  "/root/repo/src/gpu/realistic_probing.cpp" "src/gpu/CMakeFiles/dr_gpu.dir/realistic_probing.cpp.o" "gcc" "src/gpu/CMakeFiles/dr_gpu.dir/realistic_probing.cpp.o.d"
  "/root/repo/src/gpu/shared_l1.cpp" "src/gpu/CMakeFiles/dr_gpu.dir/shared_l1.cpp.o" "gcc" "src/gpu/CMakeFiles/dr_gpu.dir/shared_l1.cpp.o.d"
  "/root/repo/src/gpu/sm_core.cpp" "src/gpu/CMakeFiles/dr_gpu.dir/sm_core.cpp.o" "gcc" "src/gpu/CMakeFiles/dr_gpu.dir/sm_core.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dr_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dr_coherence.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

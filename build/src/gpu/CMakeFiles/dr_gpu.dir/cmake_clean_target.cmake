file(REMOVE_RECURSE
  "libdr_gpu.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/dr_gpu.dir/cta_scheduler.cpp.o"
  "CMakeFiles/dr_gpu.dir/cta_scheduler.cpp.o.d"
  "CMakeFiles/dr_gpu.dir/l1_cache.cpp.o"
  "CMakeFiles/dr_gpu.dir/l1_cache.cpp.o.d"
  "CMakeFiles/dr_gpu.dir/realistic_probing.cpp.o"
  "CMakeFiles/dr_gpu.dir/realistic_probing.cpp.o.d"
  "CMakeFiles/dr_gpu.dir/shared_l1.cpp.o"
  "CMakeFiles/dr_gpu.dir/shared_l1.cpp.o.d"
  "CMakeFiles/dr_gpu.dir/sm_core.cpp.o"
  "CMakeFiles/dr_gpu.dir/sm_core.cpp.o.d"
  "libdr_gpu.a"
  "libdr_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dr_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for dr_gpu.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig05_topology_bw.dir/fig05_topology_bw.cpp.o"
  "CMakeFiles/fig05_topology_bw.dir/fig05_topology_bw.cpp.o.d"
  "fig05_topology_bw"
  "fig05_topology_bw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_topology_bw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

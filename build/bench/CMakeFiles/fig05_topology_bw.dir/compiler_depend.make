# Empty compiler generated dependencies file for fig05_topology_bw.
# This may be replaced when dependencies are built.

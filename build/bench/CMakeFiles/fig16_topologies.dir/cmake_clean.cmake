file(REMOVE_RECURSE
  "CMakeFiles/fig16_topologies.dir/fig16_topologies.cpp.o"
  "CMakeFiles/fig16_topologies.dir/fig16_topologies.cpp.o.d"
  "fig16_topologies"
  "fig16_topologies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

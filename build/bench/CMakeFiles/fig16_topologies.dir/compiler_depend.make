# Empty compiler generated dependencies file for fig16_topologies.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig17_18_layouts.
# This may be replaced when dependencies are built.

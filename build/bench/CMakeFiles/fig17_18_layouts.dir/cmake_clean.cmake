file(REMOVE_RECURSE
  "CMakeFiles/fig17_18_layouts.dir/fig17_18_layouts.cpp.o"
  "CMakeFiles/fig17_18_layouts.dir/fig17_18_layouts.cpp.o.d"
  "fig17_18_layouts"
  "fig17_18_layouts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_18_layouts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig09_layout_routing.dir/fig09_layout_routing.cpp.o"
  "CMakeFiles/fig09_layout_routing.dir/fig09_layout_routing.cpp.o.d"
  "fig09_layout_routing"
  "fig09_layout_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_layout_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

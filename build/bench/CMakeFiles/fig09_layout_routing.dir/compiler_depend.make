# Empty compiler generated dependencies file for fig09_layout_routing.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig06_avcp.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig06_avcp.dir/fig06_avcp.cpp.o"
  "CMakeFiles/fig06_avcp.dir/fig06_avcp.cpp.o.d"
  "fig06_avcp"
  "fig06_avcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_avcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

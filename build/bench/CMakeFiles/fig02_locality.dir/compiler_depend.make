# Empty compiler generated dependencies file for fig02_locality.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig02_locality.dir/fig02_locality.cpp.o"
  "CMakeFiles/fig02_locality.dir/fig02_locality.cpp.o.d"
  "fig02_locality"
  "fig02_locality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_locality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

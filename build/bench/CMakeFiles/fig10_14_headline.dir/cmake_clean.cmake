file(REMOVE_RECURSE
  "CMakeFiles/fig10_14_headline.dir/fig10_14_headline.cpp.o"
  "CMakeFiles/fig10_14_headline.dir/fig10_14_headline.cpp.o.d"
  "fig10_14_headline"
  "fig10_14_headline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_14_headline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig10_14_headline.cpp" "bench/CMakeFiles/fig10_14_headline.dir/fig10_14_headline.cpp.o" "gcc" "bench/CMakeFiles/fig10_14_headline.dir/fig10_14_headline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dr_core_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/dr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/dr_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dr_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dr_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/coherence/CMakeFiles/dr_coherence.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/dr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/dr_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for fig10_14_headline.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig19_sensitivity.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for fig07_adaptive.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/fig07_adaptive.dir/fig07_adaptive.cpp.o"
  "CMakeFiles/fig07_adaptive.dir/fig07_adaptive.cpp.o.d"
  "fig07_adaptive"
  "fig07_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

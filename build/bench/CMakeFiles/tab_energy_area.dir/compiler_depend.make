# Empty compiler generated dependencies file for tab_energy_area.
# This may be replaced when dependencies are built.

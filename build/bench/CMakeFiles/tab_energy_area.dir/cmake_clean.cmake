file(REMOVE_RECURSE
  "CMakeFiles/tab_energy_area.dir/tab_energy_area.cpp.o"
  "CMakeFiles/tab_energy_area.dir/tab_energy_area.cpp.o.d"
  "tab_energy_area"
  "tab_energy_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_energy_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/fig15_locality_opts.dir/fig15_locality_opts.cpp.o"
  "CMakeFiles/fig15_locality_opts.dir/fig15_locality_opts.cpp.o.d"
  "fig15_locality_opts"
  "fig15_locality_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_locality_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig15_locality_opts.
# This may be replaced when dependencies are built.

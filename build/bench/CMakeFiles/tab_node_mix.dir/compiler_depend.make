# Empty compiler generated dependencies file for tab_node_mix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/tab_node_mix.dir/tab_node_mix.cpp.o"
  "CMakeFiles/tab_node_mix.dir/tab_node_mix.cpp.o.d"
  "tab_node_mix"
  "tab_node_mix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_node_mix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for synthetic_noc.
# This may be replaced when dependencies are built.

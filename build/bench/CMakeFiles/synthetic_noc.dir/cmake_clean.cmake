file(REMOVE_RECURSE
  "CMakeFiles/synthetic_noc.dir/synthetic_noc.cpp.o"
  "CMakeFiles/synthetic_noc.dir/synthetic_noc.cpp.o.d"
  "synthetic_noc"
  "synthetic_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

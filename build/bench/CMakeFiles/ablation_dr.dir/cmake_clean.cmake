file(REMOVE_RECURSE
  "CMakeFiles/ablation_dr.dir/ablation_dr.cpp.o"
  "CMakeFiles/ablation_dr.dir/ablation_dr.cpp.o.d"
  "ablation_dr"
  "ablation_dr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/clogging_analysis.dir/clogging_analysis.cpp.o"
  "CMakeFiles/clogging_analysis.dir/clogging_analysis.cpp.o.d"
  "clogging_analysis"
  "clogging_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clogging_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

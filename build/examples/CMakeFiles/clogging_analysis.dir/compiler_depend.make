# Empty compiler generated dependencies file for clogging_analysis.
# This may be replaced when dependencies are built.

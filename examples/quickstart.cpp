/**
 * @file
 * Quickstart: build the paper's 64-node CPU-GPU chip (Table I), run the
 * HS workload under the baseline and under Delegated Replies, and print
 * the headline metrics. Start here to see the library's public API.
 */

#include <cstdio>

#include "core/hetero_system.hpp"
#include "core/layout.hpp"

using namespace dr;

int
main()
{
    // 1. Configure the system. Defaults reproduce Table I of the paper:
    //    40 GPU cores, 16 CPU cores, 8 memory nodes on an 8x8 mesh with
    //    separate 128-bit request/reply networks.
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.warmupCycles = 15000;
    cfg.simCycles = 30000;

    // 2. Show the chip floorplan (Figure 1a).
    std::printf("Chip layout (C = CPU, M = memory node, G = GPU):\n%s\n",
                renderLayout(cfg, buildLayout(cfg)).c_str());

    // 3. Run the same workload under both mechanisms.
    for (const Mechanism mech :
         {Mechanism::Baseline, Mechanism::DelegatedReplies}) {
        cfg.mechanism = mech;
        HeteroSystem system(cfg, /*gpuBenchmark=*/"HS",
                            /*cpuBenchmark=*/"bodytrack");
        const RunResults r = system.run();
        std::printf("--- %s ---\n", mechanismName(mech));
        std::printf("GPU IPC (chip):            %8.2f\n", r.gpuIpc);
        std::printf("CPU IPC (per core):        %8.3f\n", r.cpuIpc);
        std::printf("CPU request latency:       %8.1f cycles\n",
                    r.cpuLatency);
        std::printf("GPU received data rate:    %8.3f flits/cycle/core\n",
                    r.gpuDataRate);
        std::printf("memory-node blocking rate: %8.1f %%\n",
                    100.0 * r.memBlockingRate);
        std::printf("L1 misses forwarded:       %8.1f %%\n",
                    100.0 * r.forwardedFraction());
        if (mech == Mechanism::DelegatedReplies) {
            std::printf("remote hit rate:           %8.1f %%\n",
                        100.0 * r.remoteHitRate());
        }
        std::printf("\n");
    }
    std::printf("Delegated Replies should show a higher GPU IPC and data "
                "rate and a\nlower blocking rate than the baseline "
                "(paper: +25.8%% GPU on average).\n");
    return 0;
}

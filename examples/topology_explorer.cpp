/**
 * @file
 * NoC playground: drive the network substrate directly (without the
 * full chip) to measure zero-load latency and saturation throughput of
 * every topology under uniform-random traffic — the classic
 * interconnection-network characterization, built from this library's
 * Network/Topology API.
 */

#include <cstdio>

#include "common/rng.hpp"
#include "noc/network.hpp"

using namespace dr;

namespace
{

struct Sample
{
    double offeredFlitsPerNode;
    double latency;
    double throughput;  //!< delivered flits/cycle/node
};

Sample
measure(TopologyKind kind, double injectProb)
{
    const Topology topo = Topology::make(kind, 64, 8, 8);
    NetworkParams params;
    params.routing = kind == TopologyKind::Mesh
                         ? RoutingKind::DimOrderXY
                         : RoutingKind::TableMinimal;
    params.injBufferFlits.assign(64, 36);
    Network net(params, topo);
    Rng rng(7);
    std::uint64_t id = 1;
    const Cycle horizon = 20000;
    for (Cycle now = 0; now < horizon; ++now) {
        for (NodeId src = 0; src < 64; ++src) {
            if (rng.chance(injectProb) && net.canInject(src, 5)) {
                Message m;
                m.type = MsgType::ReadReply;
                m.src = src;
                m.dst = static_cast<NodeId>(rng.below(64));
                if (m.dst == src)
                    m.dst = static_cast<NodeId>((src + 1) % 64);
                m.id = id++;
                net.inject(m, 5, now);
            }
        }
        net.tick(now);
        for (NodeId n = 0; n < 64; ++n) {
            while (net.hasMessage(n, NetKind::Reply))
                net.popMessage(n, NetKind::Reply);
        }
    }
    return {injectProb * 5.0, net.stats().packetLatency.mean(),
            static_cast<double>(net.stats().flitsDelivered.value()) /
                horizon / 64.0};
}

} // namespace

int
main()
{
    for (const TopologyKind kind :
         {TopologyKind::Mesh, TopologyKind::FlattenedButterfly,
          TopologyKind::Dragonfly, TopologyKind::Crossbar}) {
        std::printf("=== %s (uniform random, 5-flit packets) ===\n",
                    topologyName(kind));
        std::printf("%10s %12s %14s\n", "offered", "latency",
                    "throughput");
        for (const double p : {0.005, 0.02, 0.05, 0.08, 0.12}) {
            const Sample s = measure(kind, p);
            std::printf("%10.3f %12.1f %14.3f\n", s.offeredFlitsPerNode,
                        s.latency, s.throughput);
        }
        std::printf("\n");
    }
    std::printf("Low-radix topologies (mesh) saturate earlier and with "
                "higher latency\nthan the high-radix ones — but none of "
                "this helps memory-node clogging,\nwhich is an endpoint-"
                "link property (Figure 5 of the paper).\n");
    return 0;
}

/**
 * @file
 * Visualize clogging: run a workload and print an ASCII heatmap of the
 * reply-network link utilizations on the mesh — the picture behind
 * Figure 3 of the paper. Under the baseline, the horizontal links
 * leaving the memory column toward the GPU half glow; under Delegated
 * Replies the load spreads across the inter-GPU links.
 */

#include <cstdio>

#include "core/hetero_system.hpp"
#include "noc/topology.hpp"

using namespace dr;

namespace
{

char
shade(double utilization)
{
    if (utilization < 0.05)
        return '.';
    if (utilization < 0.15)
        return '-';
    if (utilization < 0.30)
        return '=';
    if (utilization < 0.50)
        return '*';
    if (utilization < 0.70)
        return '#';
    return '@';
}

void
heatmap(HeteroSystem &sys, Cycle cycles)
{
    const Network &net = sys.interconnect().net(NetKind::Reply);
    const Topology &topo = net.topology();
    const int w = sys.config().noc.meshWidth;
    const int h = sys.config().noc.meshHeight;

    auto util = [&](int router, int port) {
        const RouterStats &s = net.routerStats(router);
        if (s.portFlitsSent.empty())
            return 0.0;
        return static_cast<double>(s.portFlitsSent[port]) /
               static_cast<double>(cycles);
    };

    std::printf("  east-bound links (router -> right neighbour):\n");
    for (int y = 0; y < h; ++y) {
        std::printf("    ");
        for (int x = 0; x + 1 < w; ++x)
            std::printf("%c ", shade(util(y * w + x, meshEast)));
        std::printf("\n");
    }
    std::printf("  south-bound links (router -> lower neighbour):\n");
    for (int y = 0; y + 1 < h; ++y) {
        std::printf("    ");
        for (int x = 0; x < w; ++x)
            std::printf("%c ", shade(util(y * w + x, meshSouth)));
        std::printf("\n");
    }
    (void)topo;
}

} // namespace

int
main()
{
    for (const Mechanism mech :
         {Mechanism::Baseline, Mechanism::DelegatedReplies}) {
        SystemConfig cfg = SystemConfig::makePaper();
        cfg.mechanism = mech;
        cfg.warmupCycles = 8000;
        cfg.simCycles = 16000;
        HeteroSystem sys(cfg, "2DCON", "canneal");
        const RunResults r = sys.run();
        std::printf("=== %s (2DCON + canneal) ===\n",
                    mechanismName(mech));
        std::printf("  legend: . <5%%  - <15%%  = <30%%  * <50%%  # <70%%  "
                    "@ >=70%%   (memory column is x=2)\n");
        heatmap(sys, cfg.simCycles);
        std::printf("  blocking %.1f%%, GPU IPC %.2f, delegations %llu\n\n",
                    100.0 * r.memBlockingRate, r.gpuIpc,
                    static_cast<unsigned long long>(r.delegations));
    }
    std::printf("Expected: the baseline concentrates load on the "
                "east-bound links at the\nmemory column (x=2); Delegated "
                "Replies spreads it over the GPU half.\n");
    return 0;
}

/**
 * @file
 * Bring your own kernel: implement KernelAccessPattern (here via the
 * parameterized stencil front-end and via a from-scratch pointer-chase
 * kernel) and run it through the full system. This is the extension
 * point for studying new GPU workloads under Delegated Replies.
 */

#include <cstdio>

#include <memory>

#include "core/hetero_system.hpp"
#include "workloads/gpu_benchmarks.hpp"

using namespace dr;

namespace
{

/**
 * A graph-walk kernel written directly against the KernelAccessPattern
 * interface: each warp chases hashed pointers through a node table that
 * all CTAs share — plenty of inter-core locality in the hot upper
 * community structure, misses everywhere else.
 */
class PointerChaseKernel : public KernelAccessPattern
{
  public:
    std::string name() const override { return "graph-walk"; }
    int ctaCount() const override { return 512; }
    int warpsPerCta() const override { return 8; }
    int accessesPerWarp() const override { return 256; }
    int computePerMem() const override { return 2; }

    MemAccess
    access(int cta, int warp, int idx) const override
    {
        // A warp walks from a hashed start; every 4th hop touches the
        // hot community table shared by all CTAs.
        std::uint64_t x = static_cast<std::uint64_t>(cta) * 2654435761u +
                          warp * 40503u + idx / 4;
        x ^= x >> 15;
        x *= 0x2545f4914f6cdd1dull;
        x ^= x >> 32;
        constexpr Addr base = 0x200000000ull;
        if (idx % 4 == 3) {
            // Hot community structure: 512 lines, chip-wide sharing.
            return {base + (x % 512) * 128, false};
        }
        // Cold graph nodes: 64K lines.
        return {base + 0x1000000ull + (x % 65536) * 128, false};
    }
};

double
runWith(Mechanism mech)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = mech;
    cfg.warmupCycles = 8000;
    cfg.simCycles = 16000;
    HeteroSystem system(cfg, std::make_unique<PointerChaseKernel>(),
                        "ferret");
    return system.run().gpuIpc;
}

} // namespace

int
main()
{
    // Variant 1: a custom stencil through the parameterized front-end.
    StencilSpec spec;
    spec.name = "my-7point-stencil";
    spec.ctas = 512;
    spec.warpsPerCta = 8;
    spec.rowsPerCta = 1;
    spec.halo = 3;  // 7-point stencil: deep halos, heavy sharing
    spec.rowLines = 32;
    spec.colsPerWarp = 4;
    spec.writeEvery = 8;
    spec.warpsPerGroup = 4;
    const auto stencil = makeStencil(spec);
    std::printf("custom stencil '%s': %d CTAs x %d warps x %d accesses\n",
                stencil->name().c_str(), stencil->ctaCount(),
                stencil->warpsPerCta(), stencil->accessesPerWarp());
    std::printf("  first reads of CTA 10/warp 0: ");
    for (int i = 0; i < 4; ++i)
        std::printf("0x%llx ",
                    static_cast<unsigned long long>(
                        stencil->access(10, 0, i).addr));
    std::printf("\n\n");

    // Variant 2: a from-scratch kernel class.
    PointerChaseKernel chase;
    std::printf("custom kernel '%s' defined against the public "
                "interface;\nsample accesses: 0x%llx -> 0x%llx -> "
                "0x%llx\n\n",
                chase.name().c_str(),
                static_cast<unsigned long long>(chase.access(0, 0, 0).addr),
                static_cast<unsigned long long>(chase.access(0, 0, 1).addr),
                static_cast<unsigned long long>(chase.access(0, 0, 3).addr));

    // And run the custom kernel through the full system under both
    // mechanisms.
    const double base = runWith(Mechanism::Baseline);
    const double dr = runWith(Mechanism::DelegatedReplies);
    std::printf("graph-walk full-system run: baseline %.2f IPC, DR %.2f "
                "IPC (%.2fx)\n",
                base, dr, dr / base);
    return 0;
}

/**
 * @file
 * Network-clogging anatomy (Section II of the paper): sweep the GPU
 * core count and watch the memory nodes' reply links saturate, the
 * injection buffers block, and CPU latency explode — then show how
 * Delegated Replies drains the buffers.
 */

#include <cstdio>

#include "core/hetero_system.hpp"

using namespace dr;

namespace
{

RunResults
runMix(int gpuCores, Mechanism mech)
{
    SystemConfig cfg = SystemConfig::makePaper();
    // Keep 8 memory nodes; trade CPU tiles for GPU tiles.
    cfg.gpu.numCores = gpuCores;
    cfg.cpu.numCores = 64 - 8 - gpuCores;
    cfg.mechanism = mech;
    cfg.warmupCycles = 10000;
    cfg.simCycles = 20000;
    HeteroSystem system(cfg, "2DCON", "vips");
    return system.run();
}

} // namespace

int
main()
{
    std::printf("How clogging builds up: more bandwidth-hungry GPU "
                "cores\nagainst the same 8 memory nodes (baseline "
                "mechanism).\n\n");
    std::printf("%8s %12s %12s %12s %12s\n", "GPUs", "blocking%",
                "dataRate", "cpuLatency", "gpuIPC");
    for (const int gpus : {24, 32, 40, 48}) {
        const RunResults r = runMix(gpus, Mechanism::Baseline);
        std::printf("%8d %12.1f %12.3f %12.1f %12.2f\n", gpus,
                    100.0 * r.memBlockingRate, r.gpuDataRate,
                    r.cpuLatency, r.gpuIpc);
    }

    std::printf("\nSame sweep with Delegated Replies: the delegations "
                "drain the\nmemory-node injection buffers.\n\n");
    std::printf("%8s %12s %12s %12s %12s %12s\n", "GPUs", "blocking%",
                "dataRate", "cpuLatency", "gpuIPC", "delegations");
    for (const int gpus : {24, 32, 40, 48}) {
        const RunResults r = runMix(gpus, Mechanism::DelegatedReplies);
        std::printf("%8d %12.1f %12.3f %12.1f %12.2f %12llu\n", gpus,
                    100.0 * r.memBlockingRate, r.gpuDataRate,
                    r.cpuLatency, r.gpuIpc,
                    static_cast<unsigned long long>(r.delegations));
    }
    std::printf("\nExpected: blocking and CPU latency grow with the GPU "
                "count under the\nbaseline; Delegated Replies keeps the "
                "data rate higher at every point.\n");
    return 0;
}

#ifndef DR_GPU_L1_CACHE_HPP
#define DR_GPU_L1_CACHE_HPP

/**
 * @file
 * GPU L1 data-cache organizations behind one interface. The baseline is
 * a private write-through, allocate-on-read-miss L1 per SM; DC-L1 [30]
 * shares a sliced L1 across a cluster of SMs (higher effective capacity,
 * serialized slice ports); DynEB [29] switches between the two per
 * kernel based on achieved throughput. Tag state only — no data.
 */

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/ownership.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"

namespace dr
{

/** Outcome of an L1 load lookup. */
enum class L1Result : std::uint8_t
{
    Hit,
    Miss,
    PortBusy,  //!< shared-slice port already used this cycle
};

/** L1 statistics per organization instance. */
struct L1OrgStats
{
    Counter loads;
    Counter loadHits;
    Counter writes;
    Counter writeHits;
    Counter portConflicts;
    Counter flushes;
};

/**
 * L1 organization interface. `core` is the *GPU core index* (not NoC
 * node id). Lookups are per-cycle operations: shared organizations may
 * return PortBusy, and the caller retries next cycle.
 */
class L1Organizer
{
  public:
    virtual ~L1Organizer() = default;

    /** Load lookup (updates LRU on hit). */
    virtual L1Result load(int core, Addr lineAddr, Cycle now) = 0;

    /** Probe without side effects (used for FRQ remote lookups). */
    virtual bool contains(int core, Addr lineAddr) const = 0;

    /** Write-through store: updates the line if present. */
    virtual void write(int core, Addr lineAddr, Cycle now) = 0;

    /** Install a line on fill; true if a valid line was evicted. */
    virtual bool fill(int core, Addr lineAddr) = 0;

    /** Kernel-boundary invalidation of a core's L1 (or its cluster). */
    virtual void flush(int core) = 0;

    /** Extra hit latency of this organization (cluster interconnect). */
    virtual int hitLatency() const = 0;

    virtual const L1OrgStats &stats() const = 0;

    /** Advance per-cycle port bookkeeping. */
    virtual void tick(Cycle now) = 0;

    /**
     * Earliest future cycle at which ticking the organization could
     * change its state without any new lookup arriving (idle-skip
     * watermark, DESIGN.md §13). Stateless-per-cycle organizations
     * never self-advance; DynEB's probe-phase clock does.
     */
    virtual Cycle nextEventCycle(Cycle now) const
    {
        (void)now;
        return kNeverCycle;
    }

    /**
     * Whether the per-core entry points above touch only state of the
     * named core (tags and stats alike), so distinct cores may be
     * ticked concurrently from different endpoint domains (DESIGN.md
     * §13). Shared organizations mutate cross-core slice/port state on
     * every lookup and must keep the endpoint phase serial.
     */
    virtual bool concurrentSafe() const { return false; }
};

/** The baseline private L1 per SM. */
class PrivateL1 : public L1Organizer
{
  public:
    PrivateL1(const GpuConfig &cfg);

    L1Result load(int core, Addr lineAddr, Cycle now) override;
    bool contains(int core, Addr lineAddr) const override;
    void write(int core, Addr lineAddr, Cycle now) override;
    bool fill(int core, Addr lineAddr) override;
    void flush(int core) override;
    int hitLatency() const override;
    const L1OrgStats &stats() const override;
    void tick(Cycle now) override;
    bool concurrentSafe() const override { return true; }

  private:
    struct NoMeta
    {};

    GpuConfig cfg_;
    std::vector<SetAssocCache<NoMeta>> tags_;
    /**
     * Stats are banked per core so concurrent same-cycle lookups from
     * different endpoint domains never share a counter; stats() sums
     * the banks (serial reporting path only).
     */
    std::vector<L1OrgStats> coreStats_;
    mutable L1OrgStats aggregate_ DR_SERIAL_ONLY;
};

/** Factory for the configured organization. */
std::unique_ptr<L1Organizer> makeL1Organizer(const GpuConfig &cfg);

} // namespace dr

#endif // DR_GPU_L1_CACHE_HPP

#ifndef DR_GPU_L1_CACHE_HPP
#define DR_GPU_L1_CACHE_HPP

/**
 * @file
 * GPU L1 data-cache organizations behind one interface. The baseline is
 * a private write-through, allocate-on-read-miss L1 per SM; DC-L1 [30]
 * shares a sliced L1 across a cluster of SMs (higher effective capacity,
 * serialized slice ports); DynEB [29] switches between the two per
 * kernel based on achieved throughput. Tag state only — no data.
 */

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/ownership.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"

namespace dr
{

/** Outcome of an L1 load lookup. */
enum class L1Result : std::uint8_t
{
    Hit,
    Miss,
    PortBusy,  //!< shared-slice port already used this cycle
};

/** L1 statistics per organization instance. */
struct L1OrgStats
{
    Counter loads;
    Counter loadHits;
    Counter writes;
    Counter writeHits;
    Counter portConflicts;
    Counter flushes;
};

/**
 * Sum per-core stat banks into `aggregate` (cleared first) and return
 * it. Banked organizations keep one L1OrgStats per core so concurrent
 * same-cycle lookups from different endpoint domains never share a
 * counter; every one of them reports through this single helper so the
 * summing cannot drift between organizations.
 */
inline const L1OrgStats &
sumL1StatBanks(const std::vector<L1OrgStats> &banks, L1OrgStats &aggregate)
{
    aggregate = L1OrgStats{};
    for (const L1OrgStats &s : banks) {
        aggregate.loads += s.loads.value();
        aggregate.loadHits += s.loadHits.value();
        aggregate.writes += s.writes.value();
        aggregate.writeHits += s.writeHits.value();
        aggregate.portConflicts += s.portConflicts.value();
        aggregate.flushes += s.flushes.value();
    }
    return aggregate;
}

/**
 * L1 organization interface. `core` is the *GPU core index* (not NoC
 * node id). Lookups are per-cycle operations: shared organizations may
 * return PortBusy, and the caller retries next cycle.
 *
 * Phase contract (DESIGN.md §13/§14): the per-core entry points
 * (load/write/fill/contains) run inside the endpoint compute phase and
 * must confine their writes to state banked by the calling core;
 * cross-core effects (shared tags, slice ports, DynEB's phase clock)
 * are staged per core and drained by commitCycle() in the serial
 * merge, in ascending core order.
 */
class L1Organizer
{
  public:
    virtual ~L1Organizer() = default;

    /** Load lookup (stages the LRU touch on hit). */
    virtual L1Result load(int core, Addr lineAddr,
                          Cycle now) DR_ENDPOINT_PHASE = 0;

    /** Probe without side effects (used for FRQ remote lookups). */
    virtual bool contains(int core, Addr lineAddr) const = 0;

    /** Write-through store: touches the line if present. */
    virtual void write(int core, Addr lineAddr,
                      Cycle now) DR_ENDPOINT_PHASE = 0;

    /** Install a line on fill; true if a valid line is evicted (staged
     *  organizations predict this from the frozen pre-cycle tags). */
    virtual bool fill(int core, Addr lineAddr) DR_ENDPOINT_PHASE = 0;

    /** Kernel-boundary invalidation of a core's L1 (or its cluster). */
    virtual void flush(int core) DR_COMMIT_PHASE = 0;

    /** Extra hit latency of this organization (cluster interconnect). */
    virtual int hitLatency() const = 0;

    virtual const L1OrgStats &stats() const = 0;

    /** Advance per-cycle port bookkeeping (serial, start of cycle). */
    virtual void tick(Cycle now) = 0;

    /**
     * Serial-merge half of the cycle: drain the per-core staged
     * effects (slice-port claims, LRU touches, fills, phase-clock
     * updates) in ascending core order — the canonical endpoint order,
     * independent of the thread count. Organizations with nothing
     * staged inherit the no-op.
     */
    virtual void commitCycle(Cycle now) DR_COMMIT_PHASE { (void)now; }

    /**
     * Partition-time wiring: the endpoint domain that owns `core`'s
     * lookups (assigns writer-domain stamp owners in staged
     * organizations; DR_CHECKED builds panic on a cross-domain write).
     */
    virtual void setCoreDomain(int core, int domain)
    {
        (void)core;
        (void)domain;
    }

    /** DR_CHECKED invariant sweep: audit writer-domain stamps. */
    virtual void auditStamps() const {}

    /**
     * Earliest future cycle at which ticking the organization could
     * change its state without any new lookup arriving (idle-skip
     * watermark, DESIGN.md §13). Stateless-per-cycle organizations
     * never self-advance; DynEB's probe-phase clock does.
     */
    virtual Cycle nextEventCycle(Cycle now) const
    {
        (void)now;
        return kNeverCycle;
    }

    /**
     * Whether the per-core entry points above confine their writes to
     * the calling core's bank (staging any cross-core effect for the
     * serial merge), so distinct cores may be ticked concurrently from
     * different endpoint domains (DESIGN.md §13). tools/drreach.py
     * computes this confinement verdict statically and fails the lint
     * if a class's return here contradicts it.
     */
    virtual bool concurrentSafe() const { return false; }
};

/** The baseline private L1 per SM. */
class PrivateL1 : public L1Organizer
{
  public:
    PrivateL1(const GpuConfig &cfg);

    L1Result load(int core, Addr lineAddr, Cycle now) override
        DR_ENDPOINT_PHASE;
    bool contains(int core, Addr lineAddr) const override;
    void write(int core, Addr lineAddr, Cycle now) override
        DR_ENDPOINT_PHASE;
    bool fill(int core, Addr lineAddr) override DR_ENDPOINT_PHASE;
    void flush(int core) override DR_COMMIT_PHASE;
    int hitLatency() const override;
    const L1OrgStats &stats() const override;
    void tick(Cycle now) override;
    bool concurrentSafe() const override { return true; }

  private:
    struct NoMeta
    {};

    GpuConfig cfg_ DR_SERIAL_ONLY;
    /** One tag store per core: lookups touch only the caller's. */
    std::vector<SetAssocCache<NoMeta>> tags_ DR_DOMAIN_OWNED;
    /**
     * Stats are banked per core so concurrent same-cycle lookups from
     * different endpoint domains never share a counter; stats() sums
     * the banks via sumL1StatBanks (serial reporting path only).
     */
    std::vector<L1OrgStats> coreStats_ DR_DOMAIN_OWNED;
    mutable L1OrgStats aggregate_ DR_SERIAL_ONLY;
};

/** Factory for the configured organization. */
std::unique_ptr<L1Organizer> makeL1Organizer(const GpuConfig &cfg);

} // namespace dr

#endif // DR_GPU_L1_CACHE_HPP

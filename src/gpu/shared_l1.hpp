#ifndef DR_GPU_SHARED_L1_HPP
#define DR_GPU_SHARED_L1_HPP

/**
 * @file
 * Shared GPU L1 organizations (Figure 15).
 *
 * SharedL1 models DC-L1 [30]: clusters of `dcl1CoresPerCluster` SMs
 * share one L1 whose capacity equals the sum of the private L1s, split
 * into `dcl1Slices` address-interleaved slices. Sharing removes
 * replication (capacity benefit) but each slice sustains one access per
 * cycle, so bursts to shared data serialize (bandwidth cost) — the
 * effect that slows NN and 2DCON in the paper.
 *
 * DynEbL1 models DynEB [29]: it starts each kernel instance with short
 * probing epochs in shared and private mode, measures achieved load
 * throughput, and commits to the better organization until the next
 * kernel launch.
 *
 * Staged concurrency model (DESIGN.md §14): both organizations are
 * concurrentSafe. During the endpoint compute phase every lookup reads
 * only frozen cross-core state (tags via probe(), the slice-port
 * backlog watermark) and appends its effects — port claims, LRU
 * touches, fills, probe-phase counters — to the calling core's staged
 * bank (stamped DR_DOMAIN_OWNED, like PrivateL1::coreStats_).
 * commitCycle() drains the banks in ascending core order in the serial
 * merge, so the shared tags and the port backlog advance in the
 * canonical endpoint order at any thread count. The slice port is
 * modeled as a pipeline: the k same-cycle claims a slice admits all
 * succeed, and the port then stays busy for k cycles (1 access/cycle
 * sustained throughput), which keeps the admit decision independent of
 * the in-cycle lookup order.
 */

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "gpu/l1_cache.hpp"

namespace dr
{

/** DC-L1 style statically shared, sliced cluster L1. */
class SharedL1 : public L1Organizer
{
  public:
    explicit SharedL1(const GpuConfig &cfg);

    L1Result load(int core, Addr lineAddr, Cycle now) override
        DR_ENDPOINT_PHASE;
    bool contains(int core, Addr lineAddr) const override;
    void write(int core, Addr lineAddr, Cycle now) override
        DR_ENDPOINT_PHASE;
    bool fill(int core, Addr lineAddr) override DR_ENDPOINT_PHASE;
    void flush(int core) override DR_COMMIT_PHASE;
    int hitLatency() const override;
    const L1OrgStats &stats() const override;
    void tick(Cycle now) override;
    void commitCycle(Cycle now) override DR_COMMIT_PHASE;
    void setCoreDomain(int core, int domain) override;
    void auditStamps() const override;
    bool concurrentSafe() const override { return true; }

    int clusters() const { return static_cast<int>(tags_.size()); }
    int clusterOf(int core) const { return core / coresPerCluster_; }
    int sliceOf(Addr lineAddr) const;
    /** Address with the slice-select bits removed (set indexing). */
    Addr sliceLocal(Addr lineAddr) const;

  private:
    struct NoMeta
    {};

    /**
     * One core's staged effects for the cycle in flight. Written only
     * by the endpoint domain that owns the core (stamp-checked in
     * DR_CHECKED builds), drained and cleared by commitCycle().
     */
    struct DR_DOMAIN_OWNED CoreStage
    {
        DR_DOMAIN_STAMP;

        /** A staged tag-array effect against one slice. */
        struct Op
        {
            std::int32_t slot;  //!< cluster * slices + slice
            Addr local;         //!< slice-local line address
            bool isFill;        //!< insert (else LRU touch)
        };

        std::vector<Op> ops;
        /** Slice-port claims (slot per admitted load) this cycle. */
        std::vector<std::int32_t> claims;
    };

    int slotOf(int cluster, int slice) const
    {
        return cluster * slices_ + slice;
    }

    GpuConfig cfg_ DR_SERIAL_ONLY;
    int coresPerCluster_ DR_SERIAL_ONLY;
    int slices_ DR_SERIAL_ONLY;
    /** One tag store per (cluster, slice): probed (frozen) during the
     *  endpoint phase, mutated only by commitCycle()/flush(). */
    std::vector<std::vector<SetAssocCache<NoMeta>>> tags_ DR_SERIAL_ONLY;
    /**
     * Per (cluster, slice): first cycle at which the pipelined port is
     * free again. Advanced only at commit (k claims at cycle N leave
     * the port busy until N + k); lookups compare it against `now`.
     */
    std::vector<std::vector<Cycle>> portBusyUntil_ DR_SERIAL_ONLY;
    std::vector<CoreStage> perCore_ DR_DOMAIN_OWNED;
    /** Stats banked per core, exactly like PrivateL1::coreStats_. */
    std::vector<L1OrgStats> coreStats_ DR_DOMAIN_OWNED;
    mutable L1OrgStats aggregate_ DR_SERIAL_ONLY;
};

/** DynEB: per-kernel dynamic selection between shared and private. */
class DynEbL1 : public L1Organizer
{
  public:
    explicit DynEbL1(const GpuConfig &cfg);

    L1Result load(int core, Addr lineAddr, Cycle now) override
        DR_ENDPOINT_PHASE;
    bool contains(int core, Addr lineAddr) const override;
    void write(int core, Addr lineAddr, Cycle now) override
        DR_ENDPOINT_PHASE;
    bool fill(int core, Addr lineAddr) override DR_ENDPOINT_PHASE;
    void flush(int core) override DR_COMMIT_PHASE;
    int hitLatency() const override;
    const L1OrgStats &stats() const override;
    void tick(Cycle now) override;
    void commitCycle(Cycle now) override DR_COMMIT_PHASE;
    void setCoreDomain(int core, int domain) override;
    void auditStamps() const override;
    bool concurrentSafe() const override { return true; }

    /**
     * DynEB's probe-phase clock advances in the serial merge, so an
     * idle skip must not jump a phase boundary: a fresh phase re-bases
     * its window at the next commit, and a probe phase scores itself
     * at the commit of cycle phaseStart_ + probeLen_. Committed phases
     * only change at kernel boundaries (flush), which the endpoint
     * watermarks cover.
     */
    Cycle nextEventCycle(Cycle now) const override
    {
        if (phaseFresh_)
            return now + 1;
        if (phase_ == Phase::CommitShared || phase_ == Phase::CommitPrivate)
            return kNeverCycle;
        return std::max(phaseStart_ + probeLen_, now + 1);
    }

    /** Whether the shared organization is currently active. */
    bool sharedActive() const { return phase_ != Phase::CommitPrivate; }

  private:
    enum class Phase : std::uint8_t
    {
        ProbeShared,
        ProbePrivate,
        CommitShared,
        CommitPrivate,
    };

    /**
     * One core's probe-window counters, banked like the stats so
     * same-cycle loads from different endpoint domains never share a
     * word; maybeAdvancePhase() sums them at scoring time.
     */
    struct DR_DOMAIN_OWNED ProbeBank
    {
        DR_DOMAIN_STAMP;

        std::uint64_t loads = 0;
        std::uint64_t hits = 0;
        std::uint64_t conflicts = 0;
    };

    L1Organizer &active();
    const L1Organizer &active() const;
    void maybeAdvancePhase(Cycle now) DR_COMMIT_PHASE;
    void clearProbeBanks();

    GpuConfig cfg_ DR_SERIAL_ONLY;
    /** Confinement of the nested organizers is their own (both are
     *  concurrentSafe; drreach verifies the delegation chain). */
    SharedL1 shared_ DR_DOMAIN_OWNED;
    PrivateL1 private_ DR_DOMAIN_OWNED;
    /** The phase selector and its clock mutate only in commitCycle()
     *  (and flush), so active() reads frozen state during the phase. */
    Phase phase_ DR_SERIAL_ONLY = Phase::ProbeShared;
    bool phaseFresh_ DR_SERIAL_ONLY = false;
    Cycle phaseStart_ DR_SERIAL_ONLY = 0;
    Cycle probeLen_ DR_SERIAL_ONLY = 2000;
    std::uint64_t sharedScore_ DR_SERIAL_ONLY = 0;  //!< hits - conflicts
    std::uint64_t privateScore_ DR_SERIAL_ONLY = 0;
    std::vector<ProbeBank> perCore_ DR_DOMAIN_OWNED;
};

} // namespace dr

#endif // DR_GPU_SHARED_L1_HPP

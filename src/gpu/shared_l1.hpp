#ifndef DR_GPU_SHARED_L1_HPP
#define DR_GPU_SHARED_L1_HPP

/**
 * @file
 * Shared GPU L1 organizations (Figure 15).
 *
 * SharedL1 models DC-L1 [30]: clusters of `dcl1CoresPerCluster` SMs
 * share one L1 whose capacity equals the sum of the private L1s, split
 * into `dcl1Slices` address-interleaved slices. Sharing removes
 * replication (capacity benefit) but each slice serves one access per
 * cycle, so bursts to shared data serialize (bandwidth cost) — the
 * effect that slows NN and 2DCON in the paper.
 *
 * DynEbL1 models DynEB [29]: it starts each kernel instance with short
 * probing epochs in shared and private mode, measures achieved load
 * throughput, and commits to the better organization until the next
 * kernel launch.
 */

#include <algorithm>
#include <memory>
#include <vector>

#include "gpu/l1_cache.hpp"

namespace dr
{

/** DC-L1 style statically shared, sliced cluster L1. */
class SharedL1 : public L1Organizer
{
  public:
    explicit SharedL1(const GpuConfig &cfg);

    L1Result load(int core, Addr lineAddr, Cycle now) override;
    bool contains(int core, Addr lineAddr) const override;
    void write(int core, Addr lineAddr, Cycle now) override;
    bool fill(int core, Addr lineAddr) override;
    void flush(int core) override;
    int hitLatency() const override;
    const L1OrgStats &stats() const override { return stats_; }
    void tick(Cycle now) override;

    int clusters() const { return static_cast<int>(tags_.size()); }
    int clusterOf(int core) const { return core / coresPerCluster_; }
    int sliceOf(Addr lineAddr) const;
    /** Address with the slice-select bits removed (set indexing). */
    Addr sliceLocal(Addr lineAddr) const;

  private:
    struct NoMeta
    {};

    GpuConfig cfg_;
    int coresPerCluster_;
    int slices_;
    /** One tag store per (cluster, slice). */
    std::vector<std::vector<SetAssocCache<NoMeta>>> tags_;
    /** Per (cluster, slice): whether the single port was used this cycle. */
    std::vector<std::vector<std::uint8_t>> portUsed_;
    L1OrgStats stats_;
};

/** DynEB: per-kernel dynamic selection between shared and private. */
class DynEbL1 : public L1Organizer
{
  public:
    explicit DynEbL1(const GpuConfig &cfg);

    L1Result load(int core, Addr lineAddr, Cycle now) override;
    bool contains(int core, Addr lineAddr) const override;
    void write(int core, Addr lineAddr, Cycle now) override;
    bool fill(int core, Addr lineAddr) override;
    void flush(int core) override;
    int hitLatency() const override;
    const L1OrgStats &stats() const override;
    void tick(Cycle now) override;

    /**
     * DynEB's probe-phase clock advances with wall cycles, so an idle
     * skip must not jump a phase boundary: a fresh phase re-bases its
     * window on the next tick, and a probe phase scores itself at
     * phaseStart_ + probeLen_. Committed phases only change at kernel
     * boundaries (flush), which the endpoint watermarks cover.
     */
    Cycle nextEventCycle(Cycle now) const override
    {
        if (phaseFresh_)
            return now + 1;
        if (phase_ == Phase::CommitShared || phase_ == Phase::CommitPrivate)
            return kNeverCycle;
        return std::max(phaseStart_ + probeLen_, now + 1);
    }

    /** Whether the shared organization is currently active. */
    bool sharedActive() const { return phase_ != Phase::CommitPrivate; }

  private:
    enum class Phase : std::uint8_t
    {
        ProbeShared,
        ProbePrivate,
        CommitShared,
        CommitPrivate,
    };

    L1Organizer &active();
    const L1Organizer &active() const;
    void maybeAdvancePhase(Cycle now);

    GpuConfig cfg_;
    SharedL1 shared_;
    PrivateL1 private_;
    Phase phase_ = Phase::ProbeShared;
    bool phaseFresh_ = false;
    Cycle phaseStart_ = 0;
    Cycle probeLen_ = 2000;
    std::uint64_t sharedScore_ = 0;   //!< hits minus port conflicts
    std::uint64_t privateScore_ = 0;
    std::uint64_t phaseHits_ = 0;
    std::uint64_t phaseConflicts_ = 0;
    std::uint64_t phaseLoads_ = 0;
};

} // namespace dr

#endif // DR_GPU_SHARED_L1_HPP

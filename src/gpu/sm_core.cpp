#include "gpu/sm_core.hpp"

#include <algorithm>

#include "common/invariant.hpp"
#include "common/log.hpp"

namespace dr
{

SmCore::SmCore(NodeId nodeId, int coreIdx, const SystemConfig &cfg,
               Interconnect &ic, const AddressMap &map,
               GpuCoherence &coherence, CtaScheduler &ctaSched,
               const KernelAccessPattern &kernel, L1Organizer &l1,
               const std::vector<NodeId> &gpuCoreIds)
    : nodeId_(nodeId), coreIdx_(coreIdx), cfg_(cfg), ic_(ic), map_(map),
      coherence_(coherence), ctaSched_(ctaSched), kernel_(kernel), l1_(l1),
      gpuCoreIds_(gpuCoreIds),
      warps_(static_cast<std::size_t>(cfg.gpu.warpsPerCore)),
      mshrs_(cfg.gpu.l1Mshrs, cfg.gpu.mshrTargets),
      predictor_(cfg.rp.predictorEntries),
      nextReqId_((static_cast<std::uint64_t>(nodeId) << 48) | 1u)
{
    // Warp slots are grouped into CTA slots of warpsPerCta warps (the
    // per-core CTA concurrency limit). Kernels with more warps per CTA
    // than warp slots are clamped.
    const int perCta = std::min(kernel.warpsPerCta(), cfg.gpu.warpsPerCore);
    const int slots = std::max(1, cfg.gpu.warpsPerCore / perCta);
    ctaSlots_.resize(slots);
    int warpId = 0;
    for (auto &slot : ctaSlots_) {
        for (int i = 0; i < perCta; ++i)
            slot.warpIds.push_back(warpId++);
    }
    for (std::size_t s = 0; s < ctaSlots_.size(); ++s) {
        for (const int w : ctaSlots_[s].warpIds)
            warps_[w].slot = static_cast<int>(s);
        assignCta(ctaSlots_[s], 0);
    }
}

Message
SmCore::makeRequest(MsgType type, Addr line, Cycle now) const
{
    Message m;
    m.type = type;
    m.cls = TrafficClass::Gpu;
    m.addr = line;
    m.src = nodeId_;
    m.dst = map_.nodeOf(line);
    m.requester = nodeId_;
    m.id = nextReqId_;
    m.created = now;
    return m;
}

void
SmCore::tick(Cycle now)
{
    DR_PHASE_ASSERT_DOMAIN(domain_);
    DR_CHECKED_ONLY(frqServicedThisTick_ = false);
    receiveReplies(now);
    receiveRequests(now);
    if (cfg_.dr.frqRemotePriority)
        processFrq(now);
    drainOutbound(now);
    issueWarps(now);
    if (!cfg_.dr.frqRemotePriority)
        processFrq(now);
}

void
SmCore::receiveReplies(Cycle now)
{
    while (ic_.hasMessage(nodeId_, NetKind::Reply)) {
        const Message msg = ic_.popMessage(nodeId_, NetKind::Reply);
        const Addr line = msg.addr;
        switch (msg.type) {
          case MsgType::ReadReply: {
            ++stats_.repliesReceived;
            auto probe = probes_.find(line);
            if (probe != probes_.end()) {
                // A probe was answered (by a remote L1 or, after
                // fallback, by the LLC). Train on who replied.
                const bool fromCore =
                    msg.src != invalidNode && !isMemNode(msg.src);
                predictor_.train(line, fromCore);
                probes_.erase(probe);
            }
            wakeTargets(line, now);
            break;
          }
          case MsgType::WriteAck:
            if (outstandingWrites_ > 0)
                --outstandingWrites_;
            break;
          case MsgType::ProbeNack: {
            auto probe = probes_.find(line);
            if (probe == probes_.end())
                break;  // already resolved by a data reply
            if (--probe->second.nacksLeft <= 0) {
                // Every probed cache missed: fall back to the LLC.
                predictor_.train(line, false);
                probes_.erase(probe);
                if (mshrs_.outstanding(line)) {
                    probeFallbacks_.push_back(line);
                    ++stats_.probeFallbacks;
                }
            }
            break;
          }
          default:
            panic("SM core received unexpected reply type ",
                  msgTypeName(msg.type));
        }
    }
}

bool
SmCore::isMemNode(NodeId node) const
{
    for (const NodeId g : gpuCoreIds_) {
        if (g == node)
            return false;
    }
    return true;
}

void
SmCore::receiveRequests(Cycle now)
{
    (void)now;
    while (ic_.hasMessage(nodeId_, NetKind::Request)) {
        const Message &head = ic_.peekMessage(nodeId_, NetKind::Request);
        if (head.type == MsgType::DelegatedReq) {
            if (static_cast<int>(frq_.size()) >= cfg_.gpu.frqEntries)
                break;  // FRQ full: back-pressure the request network
            for (const Message &queued : frq_) {
                if (queued.addr == head.addr) {
                    ++stats_.frqSameBlock;
                    break;
                }
            }
            // The delegate is always a third party: a memory node never
            // forwards a core its own request (mem_node asserts the
            // sending side of the same law).
            DR_INVARIANT(head.requester != nodeId_,
                         "core ", coreIdx_, " received a delegated "
                         "request for its own miss");
            frq_.push_back(ic_.popMessage(nodeId_, NetKind::Request));
            ++stats_.frqReceived;
            DR_INVARIANT(static_cast<int>(frq_.size()) <=
                             cfg_.gpu.frqEntries,
                         "core ", coreIdx_, " FRQ overran its ",
                         cfg_.gpu.frqEntries, " entries");
        } else if (head.type == MsgType::ProbeReq) {
            if (probeQueue_.size() >= 8)
                break;
            probeQueue_.push_back(ic_.popMessage(nodeId_, NetKind::Request));
        } else {
            panic("SM core received unexpected request type ",
                  msgTypeName(head.type));
        }
    }
}

bool
SmCore::sendOrQueueReply(const Message &msg, Cycle now)
{
    if (static_cast<int>(outboundReplies_.size()) >= maxOutboundReplies_)
        return false;
    (void)now;
    outboundReplies_.push_back(msg);
    return true;
}

void
SmCore::processFrq(Cycle now)
{
    DR_CHECKED_ONLY(frqServicedThisTick_ = true);
    // One forwarded request per cycle, with priority over local accesses
    // (deadlock avoidance, Section IV).
    if (!frq_.empty()) {
        const Message &msg = frq_.front();
        const Addr line = msg.addr;
        if (l1_.contains(coreIdx_, line)) {
            Message reply;
            reply.type = MsgType::ReadReply;
            reply.cls = TrafficClass::Gpu;
            reply.addr = line;
            reply.src = nodeId_;
            reply.dst = msg.requester;
            reply.requester = msg.requester;
            reply.id = msg.id;
            reply.created = msg.created;
            if (sendOrQueueReply(reply, now)) {
                ++stats_.frqRemoteHits;
                frq_.pop_front();
            }
        } else if (mshrs_.outstanding(line) &&
                   mshrs_.addTarget(line, {msg.id, msg.requester,
                                           TrafficClass::Gpu, true,
                                           false})) {
            // Delayed hit: the data arrives shortly; forward it then.
            ++stats_.frqDelayedHits;
            frq_.pop_front();
        } else {
            // Remote miss: re-send to the LLC with the DNF bit; no MSHR
            // is allocated here (Section IV) and the LLC will reply to
            // the original requester and re-point the line.
            Message resend = makeRequest(MsgType::ReadReq, line, now);
            resend.dnf = true;
            resend.requester = msg.requester;
            resend.id = msg.id;
            // The re-send rides the Request VN, not ForwardedRequest:
            // sharing buffering with the delegation fan-in that produced
            // it would re-create the DESIGN.md §10 cycle (noc/vnet.hpp).
            DR_ASSERT_MSG(ic_.vnetFor(resend) == VirtualNet::Request,
                          "core ", coreIdx_,
                          " DNF re-send classified off the Request VN");
            // The DNF re-send goes back to the line's home LLC slice on
            // behalf of the original requester — never to another core
            // (no delegation chains, Section IV).
            DR_ASSERT_MSG(isMemNode(resend.dst),
                          "core ", coreIdx_,
                          " DNF re-send addressed to a core");
            if (ic_.canSend(resend)) {
                ic_.send(resend, now);
                ++stats_.frqRemoteMisses;
                ++stats_.dnfRequests;
                frq_.pop_front();
            }
        }
    }

    // Serve one incoming RP probe per cycle.
    if (!probeQueue_.empty()) {
        const Message &msg = probeQueue_.front();
        const Addr line = msg.addr;
        Message reply;
        reply.cls = TrafficClass::Gpu;
        reply.addr = line;
        reply.src = nodeId_;
        reply.dst = msg.requester;
        reply.requester = msg.requester;
        reply.id = msg.id;
        reply.created = msg.created;
        reply.type = l1_.contains(coreIdx_, line) ? MsgType::ReadReply
                                                  : MsgType::ProbeNack;
        if (sendOrQueueReply(reply, now)) {
            if (reply.type == MsgType::ReadReply)
                ++stats_.probeHitsServed;
            else
                ++stats_.probeNacksServed;
            probeQueue_.pop_front();
        }
    }
}

void
SmCore::drainOutbound(Cycle now)
{
    while (!outboundReplies_.empty() &&
           ic_.canSend(outboundReplies_.front())) {
        ic_.send(outboundReplies_.front(), now);
        outboundReplies_.pop_front();
    }

    // Probe fallbacks re-enter the LLC path as ordinary requests.
    while (!probeFallbacks_.empty()) {
        const Addr line = probeFallbacks_.front();
        if (!mshrs_.outstanding(line)) {
            probeFallbacks_.pop_front();  // resolved by a late data reply
            continue;
        }
        Message req = makeRequest(MsgType::ReadReq, line, now);
        if (!ic_.canSend(req))
            break;
        ic_.send(req, now);
        ++nextReqId_;
        ++stats_.llcRequests;
        probeFallbacks_.pop_front();
    }
}

void
SmCore::issueWarps(Cycle now)
{
    // Deadlock avoidance (Section IV): with remote priority enabled the
    // FRQ must have been offered service before any local issue.
    DR_INVARIANT(!cfg_.dr.frqRemotePriority || frqServicedThisTick_,
                 "core ", coreIdx_,
                 " FRQ-priority ordering violated: local issue before "
                 "forwarded-request service");
    const int n = static_cast<int>(warps_.size());
    int issued = 0;
    for (int k = 0; k < n && issued < cfg_.gpu.issueWidth; ++k) {
        const int w = (greedyWarp_ + k) % n;
        Warp &warp = warps_[w];
        if (warp.state == Warp::State::NeedWork ||
            warp.state == Warp::State::WaitMem) {
            continue;
        }
        if (warp.readyAt > now)
            continue;
        if (warp.state == Warp::State::Ready && warp.computeLeft > 0) {
            --warp.computeLeft;
            ++stats_.instructions;
            ++issued;
            greedyWarp_ = w;  // GTO: stick with the issuing warp
            continue;
        }
        // Memory access due (or a stalled one being retried).
        if (!warp.hasPending) {
            warp.pending =
                kernel_.access(warp.cta, warp.warpInCta, warp.accessIdx);
            warp.hasPending = true;
        }
        if (executeMemAccess(warp, w, now)) {
            ++stats_.instructions;
            ++stats_.memAccesses;
            ++issued;
            greedyWarp_ = w;
        } else {
            warp.state = Warp::State::Stalled;
        }
    }
}

void
SmCore::advanceWarp(Warp &warp, Cycle now, Cycle extraLatency)
{
    warp.hasPending = false;
    ++warp.accessIdx;
    if (warp.accessIdx >= kernel_.accessesPerWarp()) {
        finishWarp(warp, now);
        return;
    }
    warp.computeLeft = kernel_.computePerMem();
    warp.state = Warp::State::Ready;
    warp.readyAt = now + extraLatency;
}

bool
SmCore::executeMemAccess(Warp &warp, int warpId, Cycle now)
{
    const Addr line =
        warp.pending.addr & ~static_cast<Addr>(cfg_.gpu.l1LineBytes - 1);

    if (warp.pending.write) {
        // Write-through: the store goes to the LLC; the warp continues
        // once the request is accepted (bounded by outstanding writes).
        if (outstandingWrites_ >= maxOutstandingWrites_) {
            ++stats_.stallInject;
            return false;
        }
        Message req = makeRequest(MsgType::WriteReq, line, now);
        if (!ic_.canSend(req)) {
            ++stats_.stallInject;
            return false;
        }
        ++stats_.stores;
        l1_.write(coreIdx_, line, now);
        ic_.send(req, now);
        ++nextReqId_;
        ++outstandingWrites_;
        advanceWarp(warp, now, 1);
        return true;
    }

    // Load path. Decide miss handling before touching the tags so a
    // structural stall has no side effects.
    const bool present = l1_.contains(coreIdx_, line);
    if (!present) {
        if (mshrs_.outstanding(line)) {
            if (!mshrs_.addTarget(line, {static_cast<std::uint64_t>(warpId),
                                         nodeId_, TrafficClass::Gpu, false,
                                         false})) {
                ++stats_.stallNoMshr;
                return false;
            }
            ++stats_.loads;
            ++stats_.l1Misses;
            ++stats_.mshrMerges;
            if (localityOracle_)
                oracleQueries_.push_back(line);
            warp.state = Warp::State::WaitMem;
            warp.issueCycle = now;
            return true;
        }
        return startMiss(warp, warpId, line, now);
    }

    const L1Result res = l1_.load(coreIdx_, line, now);
    if (res == L1Result::PortBusy) {
        ++stats_.stallPort;
        return false;
    }
    if (res == L1Result::Hit) {
        ++stats_.loads;
        ++stats_.l1Hits;
        advanceWarp(warp, now, static_cast<Cycle>(l1_.hitLatency()));
        return true;
    }
    // The line vanished between contains() and load() — impossible in
    // this single-threaded model.
    panic("L1 contains/load disagree");
}

bool
SmCore::startMiss(Warp &warp, int warpId, Addr line, Cycle now)
{
    if (mshrs_.full()) {
        ++stats_.stallNoMshr;
        return false;
    }

    const bool probing = cfg_.mechanism == Mechanism::RealisticProbing &&
                         cfg_.gpu.numCores > 1 &&
                         predictor_.shouldProbe(line);
    if (probing) {
        const std::vector<NodeId> targets =
            probeCandidates(coreIdx_, line, cfg_.rp.probeCount,
                            gpuCoreIds_);
        // All probes must be injectable at once (they share one id and
        // one MSHR entry).
        const int count = static_cast<int>(targets.size());
        if (count == 0 ||
            ic_.injectFree(nodeId_, NetKind::Request) < count) {
            ++stats_.stallInject;
            return false;
        }
        // Port/tag access for the miss.
        const L1Result res = l1_.load(coreIdx_, line, now);
        if (res == L1Result::PortBusy) {
            ++stats_.stallPort;
            return false;
        }
        ++stats_.loads;
        ++stats_.l1Misses;
        if (localityOracle_)
            oracleQueries_.push_back(line);
        mshrs_.allocate(line, {static_cast<std::uint64_t>(warpId), nodeId_,
                               TrafficClass::Gpu, false, false},
                        now);
        Message probe = makeRequest(MsgType::ProbeReq, line, now);
        ++nextReqId_;
        for (const NodeId target : targets) {
            probe.dst = target;
            ic_.send(probe, now);
            ++stats_.probesSent;
        }
        probes_[line] = {count, false, now};
        warp.state = Warp::State::WaitMem;
        warp.issueCycle = now;
        return true;
    }

    Message req = makeRequest(MsgType::ReadReq, line, now);
    if (!ic_.canSend(req)) {
        ++stats_.stallInject;
        return false;
    }
    const L1Result res = l1_.load(coreIdx_, line, now);
    if (res == L1Result::PortBusy) {
        ++stats_.stallPort;
        return false;
    }
    ++stats_.loads;
    ++stats_.l1Misses;
    if (localityOracle_)
        oracleQueries_.push_back(line);
    mshrs_.allocate(line, {static_cast<std::uint64_t>(warpId), nodeId_,
                           TrafficClass::Gpu, false, false},
                    now);
    ic_.send(req, now);
    ++nextReqId_;
    ++stats_.llcRequests;
    warp.state = Warp::State::WaitMem;
    warp.issueCycle = now;
    return true;
}

void
SmCore::wakeTargets(Addr line, Cycle now)
{
    if (!mshrs_.outstanding(line))
        return;  // duplicate reply (e.g., two probe hits); drop
    const auto targets = mshrs_.release(line);
    l1_.fill(coreIdx_, line);
    for (const auto &t : targets) {
        if (t.remote) {
            // A delayed hit whose data just arrived: forward it.
            Message reply;
            reply.type = MsgType::ReadReply;
            reply.cls = t.cls;
            reply.addr = line;
            reply.src = nodeId_;
            reply.dst = t.replyTo;
            reply.requester = t.replyTo;
            reply.id = t.reqId;
            reply.created = now;
            outboundReplies_.push_back(reply);
            continue;
        }
        Warp &warp = warps_[t.reqId];
        if (warp.state != Warp::State::WaitMem)
            continue;  // warp was re-assigned at a kernel boundary
        stats_.loadLatency.sample(static_cast<double>(now - warp.issueCycle));
        advanceWarp(warp, now, 1);
    }
}

void
SmCore::finishWarp(Warp &warp, Cycle now)
{
    (void)now;
    warp.state = Warp::State::NeedWork;
    CtaSlot &slot = ctaSlots_[warp.slot];
    if (--slot.warpsLeft <= 0) {
        ++stats_.ctasCompleted;
        // CTA refill pulls from the *shared* scheduler cursor and may
        // flush L1/coherence state at a kernel boundary — cross-core
        // effects, so it runs in the serial merge (refillCtas). The
        // refilled warps only become ready at now + 1 either way.
        pendingCtaRefills_.push_back(warp.slot);
    }
}

void
SmCore::resolveOracleQueries(Cycle now)
{
    (void)now;
    DR_PHASE_ASSERT_COMMIT();
    if (localityOracle_) {
        for (const Addr line : oracleQueries_)
            if (localityOracle_(coreIdx_, line))
                ++stats_.missesWithRemoteCopy;
    }
    oracleQueries_.clear();
}

void
SmCore::refillCtas(Cycle now)
{
    DR_PHASE_ASSERT_COMMIT();
    for (const int s : pendingCtaRefills_)
        assignCta(ctaSlots_[s], now);
    pendingCtaRefills_.clear();
}

Cycle
SmCore::nextEventCycle(Cycle now) const
{
    // Anything queued — incoming messages, forwarded requests, probes,
    // outbound replies, fallback re-sends, pending CTA refills — can
    // make progress next cycle. (Retry loops deliberately report
    // now + 1 rather than modelling when the retry will succeed, so a
    // stuck send is re-attempted every cycle and deadlock is never
    // concealed by the idle-skip fast path.)
    if (ic_.hasMessage(nodeId_, NetKind::Reply) ||
        ic_.hasMessage(nodeId_, NetKind::Request) || !frq_.empty() ||
        !probeQueue_.empty() || !outboundReplies_.empty() ||
        !probeFallbacks_.empty() || !pendingCtaRefills_.empty())
        return now + 1;
    Cycle next = kNeverCycle;
    for (const Warp &warp : warps_) {
        switch (warp.state) {
          case Warp::State::NeedWork:  // waits on a CTA refill
          case Warp::State::WaitMem:   // waits on a reply arrival
            break;
          case Warp::State::Ready:
            next = std::min(next, std::max(warp.readyAt, now + 1));
            break;
          case Warp::State::Stalled:   // structural retry every cycle
            return now + 1;
        }
    }
    return next;
}

void
SmCore::assignCta(CtaSlot &slot, Cycle now)
{
    const CtaAssignment a = ctaSched_.next(coreIdx_);
    if (a.kernelInstance > coreInstance_) {
        // Kernel boundary: software coherence flushes the L1 and the
        // LLC core pointers naming this core become stale.
        coreInstance_ = a.kernelInstance;
        l1_.flush(coreIdx_);
        coherence_.flush(coreIdx_);
    }
    slot.cta = a.cta;
    slot.instance = a.kernelInstance;
    slot.warpsLeft = static_cast<int>(slot.warpIds.size());
    int lane = 0;
    for (const int w : slot.warpIds) {
        Warp &warp = warps_[w];
        warp.state = Warp::State::Ready;
        warp.cta = a.cta;
        warp.warpInCta = lane++;
        warp.instance = a.kernelInstance;
        warp.accessIdx = 0;
        warp.computeLeft = kernel_.computePerMem();
        warp.readyAt = now + 1;
        warp.hasPending = false;
    }
}

} // namespace dr

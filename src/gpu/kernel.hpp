#ifndef DR_GPU_KERNEL_HPP
#define DR_GPU_KERNEL_HPP

/**
 * @file
 * Kernel access-pattern interface. A kernel is described by its grid
 * (CTA count), the warps per CTA, and a *pure function* from
 * (cta, warp, access index) to a memory access — deterministic by
 * construction, so simulations are exactly reproducible. The workload
 * library implements the 11 GPU benchmarks of Table II against this
 * interface (stencil halos, tiled GEMM, tree traversals, ...), which is
 * what produces inter-core locality organically.
 */

#include <memory>
#include <string>

#include "common/types.hpp"

namespace dr
{

/** One memory instruction issued by a warp (coalesced to a line). */
struct MemAccess
{
    Addr addr = 0;
    bool write = false;
};

/** A GPU kernel's structure and access pattern. */
class KernelAccessPattern
{
  public:
    virtual ~KernelAccessPattern() = default;

    virtual std::string name() const = 0;

    /** Number of CTAs in the grid. */
    virtual int ctaCount() const = 0;

    /** Warps per CTA. */
    virtual int warpsPerCta() const = 0;

    /** Memory accesses a warp performs over its lifetime. */
    virtual int accessesPerWarp() const = 0;

    /** Compute instructions between consecutive memory accesses. */
    virtual int computePerMem() const = 0;

    /**
     * The idx-th access of warp `warp` in CTA `cta`.
     * @pre 0 <= idx < accessesPerWarp()
     */
    virtual MemAccess access(int cta, int warp, int idx) const = 0;
};

} // namespace dr

#endif // DR_GPU_KERNEL_HPP

#ifndef DR_GPU_CTA_SCHEDULER_HPP
#define DR_GPU_CTA_SCHEDULER_HPP

/**
 * @file
 * CTA (thread-block) scheduling. Round-robin hands out CTAs in launch
 * order to whichever core asks next — adjacent CTAs land on different
 * cores, which is what creates *inter-core* locality for halo-sharing
 * kernels. Distributed scheduling gives each core a contiguous chunk of
 * the grid, trading inter-core locality for intra-core locality
 * (Figure 15). When the grid is exhausted the kernel relaunches
 * (iterative kernels), which is a software-coherence flush boundary.
 */

#include <cstdint>
#include <vector>

#include "common/ownership.hpp"
#include "common/types.hpp"

namespace dr
{

/** A CTA handed to a core, tagged with the kernel launch it belongs to. */
struct CtaAssignment
{
    int cta = -1;
    std::uint32_t kernelInstance = 0;
};

/**
 * Grid-wide CTA scheduler shared by all SM cores.
 *
 * Pre-classified for the ROADMAP's endpoint partitioning (DESIGN.md
 * §12): one scheduler is shared by every SM core, so its cursors are
 * DR_SERIAL_ONLY — next() may only run in serial sections until CTA
 * hand-out is staged per domain.
 */
class CtaScheduler
{
  public:
    CtaScheduler(CtaSchedule policy, int ctaCount, int numCores);

    /** Next CTA for `core`; kernels relaunch indefinitely. */
    CtaAssignment next(int core) DR_COMMIT_PHASE;

    CtaSchedule policy() const DR_PHASE_READ { return policy_; }
    std::uint32_t launches() const DR_PHASE_READ { return globalInstance_; }

  private:
    CtaSchedule policy_ DR_SERIAL_ONLY;
    int ctaCount_ DR_SERIAL_ONLY;
    int numCores_ DR_SERIAL_ONLY;

    // Round-robin state.
    int rrNext_ DR_SERIAL_ONLY = 0;
    std::uint32_t globalInstance_ DR_SERIAL_ONLY = 0;

    // Distributed state: per-core cursor and instance.
    std::vector<int> cursor_ DR_SERIAL_ONLY;
    std::vector<std::uint32_t> instance_ DR_SERIAL_ONLY;
};

} // namespace dr

#endif // DR_GPU_CTA_SCHEDULER_HPP

#ifndef DR_GPU_CTA_SCHEDULER_HPP
#define DR_GPU_CTA_SCHEDULER_HPP

/**
 * @file
 * CTA (thread-block) scheduling. Round-robin hands out CTAs in launch
 * order to whichever core asks next — adjacent CTAs land on different
 * cores, which is what creates *inter-core* locality for halo-sharing
 * kernels. Distributed scheduling gives each core a contiguous chunk of
 * the grid, trading inter-core locality for intra-core locality
 * (Figure 15). When the grid is exhausted the kernel relaunches
 * (iterative kernels), which is a software-coherence flush boundary.
 */

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dr
{

/** A CTA handed to a core, tagged with the kernel launch it belongs to. */
struct CtaAssignment
{
    int cta = -1;
    std::uint32_t kernelInstance = 0;
};

/** Grid-wide CTA scheduler shared by all SM cores. */
class CtaScheduler
{
  public:
    CtaScheduler(CtaSchedule policy, int ctaCount, int numCores);

    /** Next CTA for `core`; kernels relaunch indefinitely. */
    CtaAssignment next(int core);

    CtaSchedule policy() const { return policy_; }
    std::uint32_t launches() const { return globalInstance_; }

  private:
    CtaSchedule policy_;
    int ctaCount_;
    int numCores_;

    // Round-robin state.
    int rrNext_ = 0;
    std::uint32_t globalInstance_ = 0;

    // Distributed state: per-core cursor and instance.
    std::vector<int> cursor_;
    std::vector<std::uint32_t> instance_;
};

} // namespace dr

#endif // DR_GPU_CTA_SCHEDULER_HPP

#include "gpu/l1_cache.hpp"

#include "common/log.hpp"
#include "gpu/shared_l1.hpp"

namespace dr
{

PrivateL1::PrivateL1(const GpuConfig &cfg) : cfg_(cfg)
{
    const CacheParams params{cfg.l1SizeKB * 1024, cfg.l1Assoc,
                             cfg.l1LineBytes};
    tags_.reserve(cfg.numCores);
    for (int c = 0; c < cfg.numCores; ++c)
        tags_.emplace_back(params);
    coreStats_.resize(static_cast<std::size_t>(cfg.numCores));
}

L1Result
PrivateL1::load(int core, Addr lineAddr, Cycle now)
{
    (void)now;
    ++coreStats_[core].loads;
    if (tags_[core].access(lineAddr)) {
        ++coreStats_[core].loadHits;
        return L1Result::Hit;
    }
    return L1Result::Miss;
}

bool
PrivateL1::contains(int core, Addr lineAddr) const
{
    return tags_[core].probe(lineAddr) != nullptr;
}

void
PrivateL1::write(int core, Addr lineAddr, Cycle now)
{
    (void)now;
    ++coreStats_[core].writes;
    // Write-through, no-allocate: the line stays valid if present (it
    // now holds the latest data) and is not installed on a write miss.
    if (tags_[core].access(lineAddr))
        ++coreStats_[core].writeHits;
}

bool
PrivateL1::fill(int core, Addr lineAddr)
{
    return tags_[core].insert(lineAddr, {}).has_value();
}

void
PrivateL1::flush(int core)
{
    ++coreStats_[core].flushes;
    tags_[core].flushAll();
}

const L1OrgStats &
PrivateL1::stats() const
{
    return sumL1StatBanks(coreStats_, aggregate_);
}

int
PrivateL1::hitLatency() const
{
    return cfg_.l1HitLatency;
}

void
PrivateL1::tick(Cycle now)
{
    (void)now;
}

std::unique_ptr<L1Organizer>
makeL1Organizer(const GpuConfig &cfg)
{
    switch (cfg.l1Org) {
      case L1Organization::Private:
        return std::make_unique<PrivateL1>(cfg);
      case L1Organization::DcL1:
        return std::make_unique<SharedL1>(cfg);
      case L1Organization::DynEB:
        return std::make_unique<DynEbL1>(cfg);
    }
    panic("unknown L1 organization");
}

} // namespace dr

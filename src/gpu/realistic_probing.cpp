#include "gpu/realistic_probing.hpp"

#include "common/log.hpp"

namespace dr
{

SharingPredictor::SharingPredictor(int entries)
    : table_(static_cast<std::size_t>(entries), 2)
{
    if (entries < 1)
        fatal("sharing predictor needs at least one entry");
}

std::size_t
SharingPredictor::indexOf(Addr lineAddr) const
{
    std::uint64_t x = lineAddr >> 7;
    x ^= x >> 17;
    x *= 0xed5ad4bbu;
    x ^= x >> 11;
    return static_cast<std::size_t>(x % table_.size());
}

bool
SharingPredictor::shouldProbe(Addr lineAddr) const
{
    return table_[indexOf(lineAddr)] >= 2;
}

void
SharingPredictor::train(Addr lineAddr, bool remoteHit)
{
    std::uint8_t &ctr = table_[indexOf(lineAddr)];
    if (remoteHit) {
        if (ctr < 3)
            ++ctr;
    } else if (ctr > 0) {
        --ctr;
    }
}

std::vector<NodeId>
probeCandidates(int coreIdx, Addr lineAddr, int probeCount,
                const std::vector<NodeId> &gpuCoreIds)
{
    // RP has no sharer directory — it must *search*. Candidates are a
    // per-line pseudo-random subset of the other cores (deterministic
    // per line so retries are consistent), reflecting that RP cannot
    // know where a copy lives without probing (Section III.A).
    const int n = static_cast<int>(gpuCoreIds.size());
    std::vector<NodeId> out;
    out.reserve(probeCount);
    std::uint64_t h = (lineAddr >> 7) * 0x9e3779b97f4a7c15ull + 0x1234;
    int guard = 0;
    while (static_cast<int>(out.size()) < probeCount && guard++ < 8 * n) {
        h ^= h >> 27;
        h *= 0x94d049bb133111ebull;
        h ^= h >> 31;
        const int candidate = static_cast<int>(h % n);
        if (candidate == coreIdx)
            continue;
        const NodeId node = gpuCoreIds[candidate];
        bool duplicate = false;
        for (const NodeId existing : out)
            duplicate |= existing == node;
        if (!duplicate)
            out.push_back(node);
    }
    return out;
}

} // namespace dr

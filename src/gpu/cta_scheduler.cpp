#include "gpu/cta_scheduler.hpp"

#include "common/log.hpp"

namespace dr
{

CtaScheduler::CtaScheduler(CtaSchedule policy, int ctaCount, int numCores)
    : policy_(policy), ctaCount_(ctaCount), numCores_(numCores),
      cursor_(static_cast<std::size_t>(numCores), 0),
      instance_(static_cast<std::size_t>(numCores), 0)
{
    if (ctaCount < 1 || numCores < 1)
        fatal("CTA scheduler needs a non-empty grid and at least one core");
}

CtaAssignment
CtaScheduler::next(int core)
{
    if (policy_ == CtaSchedule::RoundRobin) {
        // True round-robin launch order: CTA i runs on core (i mod N),
        // so consecutive (halo-sharing) CTAs land on different cores —
        // the source of inter-core locality (Figure 2).
        const int perCore = (ctaCount_ + numCores_ - 1) / numCores_;
        int cta = core + cursor_[core] * numCores_;
        if (cta >= ctaCount_)
            cta = cta % ctaCount_;
        const CtaAssignment a{cta, instance_[core]};
        if (++cursor_[core] >= perCore) {
            cursor_[core] = 0;
            ++instance_[core];
        }
        return a;
    }

    // Distributed: core c owns the contiguous chunk
    // [c * chunk, min((c+1) * chunk, ctaCount)).
    const int chunk = (ctaCount_ + numCores_ - 1) / numCores_;
    const int begin = core * chunk;
    const int end = std::min(begin + chunk, ctaCount_);
    if (begin >= end) {
        // More cores than CTAs: wrap onto the grid round-robin so no
        // core idles forever.
        const CtaAssignment a{core % ctaCount_, instance_[core]};
        ++instance_[core];
        return a;
    }
    const CtaAssignment a{begin + cursor_[core], instance_[core]};
    if (++cursor_[core] >= end - begin) {
        cursor_[core] = 0;
        ++instance_[core];
    }
    return a;
}

} // namespace dr

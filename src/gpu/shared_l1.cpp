#include "gpu/shared_l1.hpp"

#include "common/log.hpp"

namespace dr
{

SharedL1::SharedL1(const GpuConfig &cfg)
    : cfg_(cfg), coresPerCluster_(cfg.dcl1CoresPerCluster),
      slices_(cfg.dcl1Slices)
{
    const int clusters =
        (cfg.numCores + coresPerCluster_ - 1) / coresPerCluster_;
    // Cluster capacity = sum of the private L1s it replaces, divided
    // over address-interleaved slices.
    const int sliceBytes =
        cfg.l1SizeKB * 1024 * coresPerCluster_ / slices_;
    const CacheParams params{sliceBytes, cfg.l1Assoc, cfg.l1LineBytes};
    tags_.resize(clusters);
    portBusyUntil_.resize(clusters);
    for (int c = 0; c < clusters; ++c) {
        for (int s = 0; s < slices_; ++s)
            tags_[c].emplace_back(params);
        portBusyUntil_[c].assign(slices_, 0);
    }
    perCore_.resize(static_cast<std::size_t>(cfg.numCores));
    coreStats_.resize(static_cast<std::size_t>(cfg.numCores));
}

int
SharedL1::sliceOf(Addr lineAddr) const
{
    return static_cast<int>((lineAddr / cfg_.l1LineBytes) % slices_);
}

Addr
SharedL1::sliceLocal(Addr lineAddr) const
{
    // Drop the slice-select bits so each slice indexes its sets with
    // the full remaining address (as a physically sliced cache does).
    return (lineAddr / cfg_.l1LineBytes / slices_) * cfg_.l1LineBytes;
}

L1Result
SharedL1::load(int core, Addr lineAddr, Cycle now)
{
    const int cluster = clusterOf(core);
    const int slice = sliceOf(lineAddr);
    DR_STAMP_WRITE(perCore_[core]);
    if (portBusyUntil_[cluster][slice] > now) {
        // The pipelined slice port is still draining earlier claims:
        // concurrent SMs serialize — the shared-L1 bandwidth loss the
        // paper describes.
        ++coreStats_[core].portConflicts;
        return L1Result::PortBusy;
    }
    perCore_[core].claims.push_back(slotOf(cluster, slice));
    ++coreStats_[core].loads;
    // Probe the frozen pre-cycle tags; the LRU touch is staged and
    // lands at commit, so the hit decision is independent of the
    // in-cycle lookup order across cores.
    if (tags_[cluster][slice].probe(sliceLocal(lineAddr))) {
        ++coreStats_[core].loadHits;
        perCore_[core].ops.push_back(
            {slotOf(cluster, slice), sliceLocal(lineAddr), false});
        return L1Result::Hit;
    }
    return L1Result::Miss;
}

bool
SharedL1::contains(int core, Addr lineAddr) const
{
    const int cluster = clusterOf(core);
    return tags_[cluster][sliceOf(lineAddr)].probe(
               sliceLocal(lineAddr)) != nullptr;
}

void
SharedL1::write(int core, Addr lineAddr, Cycle now)
{
    (void)now;
    const int cluster = clusterOf(core);
    const int slice = sliceOf(lineAddr);
    DR_STAMP_WRITE(perCore_[core]);
    ++coreStats_[core].writes;
    if (tags_[cluster][slice].probe(sliceLocal(lineAddr))) {
        ++coreStats_[core].writeHits;
        perCore_[core].ops.push_back(
            {slotOf(cluster, slice), sliceLocal(lineAddr), false});
    }
}

bool
SharedL1::fill(int core, Addr lineAddr)
{
    const int cluster = clusterOf(core);
    const int slice = sliceOf(lineAddr);
    DR_STAMP_WRITE(perCore_[core]);
    perCore_[core].ops.push_back(
        {slotOf(cluster, slice), sliceLocal(lineAddr), true});
    // Predict the eviction signal from the frozen tags. Staged fills
    // from the same cycle could land in the same set first, so this is
    // an approximation — but a deterministic one (it depends only on
    // the committed pre-cycle state, never on in-cycle ordering).
    return tags_[cluster][slice].wouldEvict(sliceLocal(lineAddr));
}

void
SharedL1::flush(int core)
{
    DR_PHASE_ASSERT_COMMIT();
    // Flushing any member of the cluster invalidates the cluster cache;
    // kernel boundaries are cluster-wide events.
    const int cluster = clusterOf(core);
    ++coreStats_[core].flushes;
    for (auto &slice : tags_[cluster])
        slice.flushAll();
    // Drop staged effects aimed at the flushed cluster so a flush
    // between stage and commit cannot resurrect invalidated lines.
    const int lo = cluster * slices_;
    const int hi = lo + slices_;
    for (CoreStage &stage : perCore_) {
        auto drop = [&](std::int32_t slot) {
            return slot >= lo && slot < hi;
        };
        stage.ops.erase(std::remove_if(stage.ops.begin(), stage.ops.end(),
                                       [&](const CoreStage::Op &op) {
                                           return drop(op.slot);
                                       }),
                        stage.ops.end());
        stage.claims.erase(std::remove_if(stage.claims.begin(),
                                          stage.claims.end(), drop),
                           stage.claims.end());
    }
}

int
SharedL1::hitLatency() const
{
    // Private hit latency plus the intra-cluster interconnect.
    return cfg_.l1HitLatency + 2;
}

const L1OrgStats &
SharedL1::stats() const
{
    return sumL1StatBanks(coreStats_, aggregate_);
}

void
SharedL1::tick(Cycle now)
{
    (void)now;
}

void
SharedL1::commitCycle(Cycle now)
{
    DR_PHASE_ASSERT_COMMIT();
    // Ascending core order is the canonical endpoint order: the merged
    // tag/port state is bit-identical at any thread count.
    for (CoreStage &stage : perCore_) {
        for (const CoreStage::Op &op : stage.ops) {
            auto &slice = tags_[op.slot / slices_][op.slot % slices_];
            if (op.isFill)
                slice.insert(op.local, {});
            else
                slice.access(op.local);
        }
        stage.ops.clear();
        for (std::int32_t slot : stage.claims) {
            // k same-cycle claims leave the port busy until now + k:
            // one access served this cycle, k-1 follow-up cycles
            // blocked (1 access/cycle sustained throughput).
            Cycle &busy = portBusyUntil_[slot / slices_][slot % slices_];
            busy = std::max(busy, now) + 1;
        }
        stage.claims.clear();
    }
}

void
SharedL1::setCoreDomain(int core, int domain)
{
    DR_STAMP_SET_OWNER(perCore_[core], domain);
}

void
SharedL1::auditStamps() const
{
    for (const CoreStage &stage : perCore_)
        DR_STAMP_AUDIT(stage);
}

DynEbL1::DynEbL1(const GpuConfig &cfg)
    : cfg_(cfg), shared_(cfg), private_(cfg)
{
    perCore_.resize(static_cast<std::size_t>(cfg.numCores));
}

L1Organizer &
DynEbL1::active()
{
    return phase_ == Phase::ProbePrivate || phase_ == Phase::CommitPrivate
               ? static_cast<L1Organizer &>(private_)
               : static_cast<L1Organizer &>(shared_);
}

const L1Organizer &
DynEbL1::active() const
{
    return phase_ == Phase::ProbePrivate || phase_ == Phase::CommitPrivate
               ? static_cast<const L1Organizer &>(private_)
               : static_cast<const L1Organizer &>(shared_);
}

L1Result
DynEbL1::load(int core, Addr lineAddr, Cycle now)
{
    const L1Result result = active().load(core, lineAddr, now);
    DR_STAMP_WRITE(perCore_[core]);
    ++perCore_[core].loads;
    if (result == L1Result::Hit)
        ++perCore_[core].hits;
    else if (result == L1Result::PortBusy)
        ++perCore_[core].conflicts;
    return result;
}

bool
DynEbL1::contains(int core, Addr lineAddr) const
{
    return active().contains(core, lineAddr);
}

void
DynEbL1::write(int core, Addr lineAddr, Cycle now)
{
    active().write(core, lineAddr, now);
}

bool
DynEbL1::fill(int core, Addr lineAddr)
{
    return active().fill(core, lineAddr);
}

void
DynEbL1::flush(int core)
{
    DR_PHASE_ASSERT_COMMIT();
    // A kernel boundary: invalidate and restart the probing cycle —
    // DynEB decides per kernel.
    shared_.flush(core);
    private_.flush(core);
    phase_ = Phase::ProbeShared;
    phaseFresh_ = true;
}

int
DynEbL1::hitLatency() const
{
    return active().hitLatency();
}

const L1OrgStats &
DynEbL1::stats() const
{
    return active().stats();
}

void
DynEbL1::clearProbeBanks()
{
    for (ProbeBank &bank : perCore_) {
        bank.loads = 0;
        bank.hits = 0;
        bank.conflicts = 0;
    }
}

void
DynEbL1::maybeAdvancePhase(Cycle now)
{
    if (phaseFresh_) {
        phaseFresh_ = false;
        phaseStart_ = now;
        clearProbeBanks();
        return;
    }
    if (phase_ == Phase::CommitShared || phase_ == Phase::CommitPrivate)
        return;
    if (now - phaseStart_ < probeLen_)
        return;
    std::uint64_t hits = 0;
    std::uint64_t conflicts = 0;
    for (const ProbeBank &bank : perCore_) {
        hits += bank.hits;
        conflicts += bank.conflicts;
    }
    // Effective bandwidth proxy: completed hits minus serialization.
    const std::uint64_t score = hits > conflicts ? hits - conflicts : 0;
    if (phase_ == Phase::ProbeShared) {
        sharedScore_ = score;
        phase_ = Phase::ProbePrivate;
    } else {
        privateScore_ = score;
        phase_ = privateScore_ > sharedScore_ ? Phase::CommitPrivate
                                              : Phase::CommitShared;
    }
    phaseStart_ = now;
    clearProbeBanks();
}

void
DynEbL1::tick(Cycle now)
{
    shared_.tick(now);
    private_.tick(now);
}

void
DynEbL1::commitCycle(Cycle now)
{
    DR_PHASE_ASSERT_COMMIT();
    shared_.commitCycle(now);
    private_.commitCycle(now);
    // Phase transitions happen in the serial merge so that contains()
    // and load() agree within a cycle and every lookup of the cycle has
    // been scored before a probe window closes.
    maybeAdvancePhase(now);
}

void
DynEbL1::setCoreDomain(int core, int domain)
{
    shared_.setCoreDomain(core, domain);
    private_.setCoreDomain(core, domain);
    DR_STAMP_SET_OWNER(perCore_[core], domain);
}

void
DynEbL1::auditStamps() const
{
    for (const ProbeBank &bank : perCore_)
        DR_STAMP_AUDIT(bank);
    shared_.auditStamps();
    private_.auditStamps();
}

} // namespace dr

#include "gpu/shared_l1.hpp"

#include "common/log.hpp"

namespace dr
{

SharedL1::SharedL1(const GpuConfig &cfg)
    : cfg_(cfg), coresPerCluster_(cfg.dcl1CoresPerCluster),
      slices_(cfg.dcl1Slices)
{
    const int clusters =
        (cfg.numCores + coresPerCluster_ - 1) / coresPerCluster_;
    // Cluster capacity = sum of the private L1s it replaces, divided
    // over address-interleaved slices.
    const int sliceBytes =
        cfg.l1SizeKB * 1024 * coresPerCluster_ / slices_;
    const CacheParams params{sliceBytes, cfg.l1Assoc, cfg.l1LineBytes};
    tags_.resize(clusters);
    portUsed_.resize(clusters);
    for (int c = 0; c < clusters; ++c) {
        for (int s = 0; s < slices_; ++s)
            tags_[c].emplace_back(params);
        portUsed_[c].assign(slices_, 0);
    }
}

int
SharedL1::sliceOf(Addr lineAddr) const
{
    return static_cast<int>((lineAddr / cfg_.l1LineBytes) % slices_);
}

Addr
SharedL1::sliceLocal(Addr lineAddr) const
{
    // Drop the slice-select bits so each slice indexes its sets with
    // the full remaining address (as a physically sliced cache does).
    return (lineAddr / cfg_.l1LineBytes / slices_) * cfg_.l1LineBytes;
}

L1Result
SharedL1::load(int core, Addr lineAddr, Cycle now)
{
    (void)now;
    const int cluster = clusterOf(core);
    const int slice = sliceOf(lineAddr);
    if (portUsed_[cluster][slice]) {
        // One access per slice per cycle: concurrent SMs serialize —
        // the shared-L1 bandwidth loss the paper describes.
        ++stats_.portConflicts;
        return L1Result::PortBusy;
    }
    portUsed_[cluster][slice] = 1;
    ++stats_.loads;
    if (tags_[cluster][slice].access(sliceLocal(lineAddr))) {
        ++stats_.loadHits;
        return L1Result::Hit;
    }
    return L1Result::Miss;
}

bool
SharedL1::contains(int core, Addr lineAddr) const
{
    const int cluster = clusterOf(core);
    return tags_[cluster][sliceOf(lineAddr)].probe(
               sliceLocal(lineAddr)) != nullptr;
}

void
SharedL1::write(int core, Addr lineAddr, Cycle now)
{
    (void)now;
    const int cluster = clusterOf(core);
    ++stats_.writes;
    if (tags_[cluster][sliceOf(lineAddr)].access(sliceLocal(lineAddr)))
        ++stats_.writeHits;
}

bool
SharedL1::fill(int core, Addr lineAddr)
{
    const int cluster = clusterOf(core);
    return tags_[cluster][sliceOf(lineAddr)]
        .insert(sliceLocal(lineAddr), {})
        .has_value();
}

void
SharedL1::flush(int core)
{
    // Flushing any member of the cluster invalidates the cluster cache;
    // kernel boundaries are cluster-wide events.
    const int cluster = clusterOf(core);
    ++stats_.flushes;
    for (auto &slice : tags_[cluster])
        slice.flushAll();
}

int
SharedL1::hitLatency() const
{
    // Private hit latency plus the intra-cluster interconnect.
    return cfg_.l1HitLatency + 2;
}

void
SharedL1::tick(Cycle now)
{
    (void)now;
    for (auto &cluster : portUsed_)
        std::fill(cluster.begin(), cluster.end(), 0);
}

DynEbL1::DynEbL1(const GpuConfig &cfg)
    : cfg_(cfg), shared_(cfg), private_(cfg)
{
}

L1Organizer &
DynEbL1::active()
{
    return phase_ == Phase::ProbePrivate || phase_ == Phase::CommitPrivate
               ? static_cast<L1Organizer &>(private_)
               : static_cast<L1Organizer &>(shared_);
}

const L1Organizer &
DynEbL1::active() const
{
    return phase_ == Phase::ProbePrivate || phase_ == Phase::CommitPrivate
               ? static_cast<const L1Organizer &>(private_)
               : static_cast<const L1Organizer &>(shared_);
}

L1Result
DynEbL1::load(int core, Addr lineAddr, Cycle now)
{
    const L1Result result = active().load(core, lineAddr, now);
    ++phaseLoads_;
    if (result == L1Result::Hit)
        ++phaseHits_;
    else if (result == L1Result::PortBusy)
        ++phaseConflicts_;
    return result;
}

bool
DynEbL1::contains(int core, Addr lineAddr) const
{
    return active().contains(core, lineAddr);
}

void
DynEbL1::write(int core, Addr lineAddr, Cycle now)
{
    active().write(core, lineAddr, now);
}

bool
DynEbL1::fill(int core, Addr lineAddr)
{
    return active().fill(core, lineAddr);
}

void
DynEbL1::flush(int core)
{
    // A kernel boundary: invalidate and restart the probing cycle —
    // DynEB decides per kernel.
    shared_.flush(core);
    private_.flush(core);
    phase_ = Phase::ProbeShared;
    phaseFresh_ = true;
}

int
DynEbL1::hitLatency() const
{
    return active().hitLatency();
}

const L1OrgStats &
DynEbL1::stats() const
{
    return active().stats();
}

void
DynEbL1::maybeAdvancePhase(Cycle now)
{
    if (phaseFresh_) {
        phaseFresh_ = false;
        phaseStart_ = now;
        phaseHits_ = 0;
        phaseConflicts_ = 0;
        phaseLoads_ = 0;
        return;
    }
    if (phase_ == Phase::CommitShared || phase_ == Phase::CommitPrivate)
        return;
    if (now - phaseStart_ < probeLen_)
        return;
    // Effective bandwidth proxy: completed hits minus serialization.
    const std::uint64_t score =
        phaseHits_ > phaseConflicts_ ? phaseHits_ - phaseConflicts_ : 0;
    if (phase_ == Phase::ProbeShared) {
        sharedScore_ = score;
        phase_ = Phase::ProbePrivate;
    } else {
        privateScore_ = score;
        phase_ = privateScore_ > sharedScore_ ? Phase::CommitPrivate
                                              : Phase::CommitShared;
    }
    phaseStart_ = now;
    phaseHits_ = 0;
    phaseConflicts_ = 0;
    phaseLoads_ = 0;
}

void
DynEbL1::tick(Cycle now)
{
    // Phase transitions happen at cycle boundaries so that contains()
    // and load() agree within a cycle.
    maybeAdvancePhase(now);
    shared_.tick(now);
    private_.tick(now);
}

} // namespace dr

#ifndef DR_GPU_REALISTIC_PROBING_HPP
#define DR_GPU_REALISTIC_PROBING_HPP

/**
 * @file
 * Realistic Probing (RP) [31], the state-of-the-art comparison point.
 * On an L1 miss the core first predicts whether the line is likely held
 * by a remote L1 and, if so, probes a fixed set of candidate cores
 * before (on failure) falling back to the LLC. RP's fundamental
 * weakness — it must search — is what Delegated Replies removes.
 */

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dr
{

/**
 * Per-core sharing predictor: a table of 2-bit saturating counters
 * indexed by a hash of the line address. Counters start at the probing
 * threshold (RP probes aggressively — the paper reports RP multiplies
 * NoC requests by 5.9x).
 */
class SharingPredictor
{
  public:
    explicit SharingPredictor(int entries);

    /** Whether a miss to this line should probe remote L1s. */
    bool shouldProbe(Addr lineAddr) const;

    /** Train with the probe outcome for a line. */
    void train(Addr lineAddr, bool remoteHit);

    int entries() const { return static_cast<int>(table_.size()); }

  private:
    std::size_t indexOf(Addr lineAddr) const;

    std::vector<std::uint8_t> table_;
};

/**
 * Candidate selection: `probeCount` distinct cores chosen by a per-line
 * hash (RP has no sharer directory, so it cannot aim its probes).
 */
std::vector<NodeId> probeCandidates(int coreIdx, Addr lineAddr,
                                    int probeCount,
                                    const std::vector<NodeId> &gpuCoreIds);

} // namespace dr

#endif // DR_GPU_REALISTIC_PROBING_HPP

#ifndef DR_GPU_SM_CORE_HPP
#define DR_GPU_SM_CORE_HPP

/**
 * @file
 * A GPU streaming multiprocessor modelled at warp granularity: 48 warps
 * per core issue compute instructions and periodically memory accesses
 * drawn from the kernel's access pattern; warps block on outstanding
 * loads (MSHR-tracked), which yields the latency-tolerant,
 * bandwidth-hungry, bursty injection behaviour that clogs the memory
 * nodes. The core also implements the receiver side of Delegated
 * Replies (the Forwarded Request Queue of Figure 8, with remote-over-
 * local priority to avoid deadlock) and the probe protocol of RP [31].
 */

#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "coherence/gpu_coherence.hpp"
#include "common/config.hpp"
#include "common/ownership.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "gpu/cta_scheduler.hpp"
#include "gpu/kernel.hpp"
#include "gpu/l1_cache.hpp"
#include "gpu/realistic_probing.hpp"
#include "mem/address_map.hpp"
#include "mem/mshr.hpp"
#include "noc/interconnect.hpp"

namespace dr
{

/** Per-SM statistics. */
struct SmCoreStats
{
    Counter instructions;   //!< issued instructions (compute + memory)
    Counter memAccesses;
    Counter loads;
    Counter stores;
    Counter l1Hits;
    Counter l1Misses;
    Counter mshrMerges;
    Counter llcRequests;    //!< ReadReqs sent to memory nodes (non-DNF)
    Counter dnfRequests;    //!< remote-miss re-sends with DNF set
    Counter repliesReceived;

    // FRQ / Delegated Replies receiver side (Figure 14 numerator).
    Counter frqReceived;
    Counter frqSameBlock;  //!< FRQ arrivals matching a queued entry
                           //!< (paper Section IV: only 4.8%, so no
                           //!< merging hardware is provided)
    Counter frqRemoteHits;
    Counter frqDelayedHits;
    Counter frqRemoteMisses;

    // RP protocol.
    Counter probesSent;
    Counter probeHitsServed;   //!< this core answered a probe with data
    Counter probeNacksServed;
    Counter probeFallbacks;    //!< all probes nacked -> LLC request

    Counter missesWithRemoteCopy;  //!< Fig. 2: miss found in a remote L1

    Counter stallNoMshr;
    Counter stallInject;
    Counter stallPort;
    Counter ctasCompleted;

    Average loadLatency;  //!< issue to wake (cycles)
};

/**
 * One SM core endpoint. Ticked once per cycle by the HeteroSystem.
 *
 * Every mutable member below is state of this one core, so the whole
 * object is DR_DOMAIN_OWNED: tick() runs in the endpoint compute
 * phase, pinned to the domain of the node's attach router, and only
 * that domain's worker may call the mutating entry points. The two
 * cross-core interactions — CTA refill (shared scheduler cursor +
 * kernel-boundary flushes) and the Figure 2 locality oracle (remote
 * L1 reads) — are staged during the compute phase and resolved by
 * commitCycle() in the serial merge (DESIGN.md §13).
 */
class DR_DOMAIN_OWNED SmCore
{
  public:
    SmCore(NodeId nodeId, int coreIdx, const SystemConfig &cfg,
           Interconnect &ic, const AddressMap &map,
           GpuCoherence &coherence, CtaScheduler &ctaSched,
           const KernelAccessPattern &kernel, L1Organizer &l1,
           const std::vector<NodeId> &gpuCoreIds);

    void tick(Cycle now) DR_ENDPOINT_PHASE;

    /** Endpoint compute domain (engine partition time; -1 = any). */
    void setDomain(int domain) { domain_ = domain; }
    int domain() const { return domain_; }

    /**
     * Serial-merge half of the cycle (commit phase): resolve staged
     * locality-oracle queries against the now-stable L1 state, then
     * refill completed CTA slots from the shared scheduler. Called by
     * the HeteroSystem in canonical core order so the scheduler cursor
     * advances exactly as the old serial tick did.
     */
    void resolveOracleQueries(Cycle now) DR_COMMIT_PHASE;
    void refillCtas(Cycle now) DR_COMMIT_PHASE;

    /**
     * Earliest future cycle at which ticking this core could have any
     * effect, assuming no new message arrives (idle-skip watermark,
     * DESIGN.md §13): conservative — any queued work or retrying warp
     * means "next cycle", and an all-WaitMem core only wakes on
     * replies, which the quiescence vote plus NI check cover.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** A provably idle SM tick has no per-cycle stat effects. */
    void onSkip(Cycle) {}

    /**
     * Optional oracle for the Figure 2 characterization: queried on
     * each L1 miss with (coreIdx, line); returns whether any *remote*
     * L1 currently holds the line. Invoked only from the serial merge
     * (resolveOracleQueries) — it reads other cores' L1 state, which
     * is mid-mutation during the compute phase.
     */
    void
    setLocalityOracle(std::function<bool(int, Addr)> oracle)
    {
        localityOracle_ = std::move(oracle);
    }

    NodeId nodeId() const { return nodeId_; }
    int coreIdx() const { return coreIdx_; }
    const SmCoreStats &stats() const { return stats_; }
    void resetStats() { stats_ = SmCoreStats{}; }

    /** Instantaneous occupancy diagnostics. */
    int frqOccupancy() const { return static_cast<int>(frq_.size()); }
    int outstandingMisses() const { return mshrs_.used(); }

    /** Age of the longest-outstanding L1 MSHR entry. */
    Cycle mshrOldestAge(Cycle now) const { return mshrs_.oldestAge(now); }

    /** panic() if any MSHR entry has been outstanding beyond `maxAge`. */
    void checkMshrLeaks(Cycle now, Cycle maxAge) const
    {
        mshrs_.checkNoLeaks(now, maxAge, "SM L1");
    }

  private:
    struct Warp
    {
        enum class State : std::uint8_t
        {
            NeedWork,  //!< waiting for a CTA
            Ready,     //!< can issue this cycle
            WaitMem,   //!< blocked on an outstanding load
            Stalled,   //!< structural stall, retry the memory access
        };

        State state = State::NeedWork;
        int slot = 0;
        int cta = -1;
        int warpInCta = 0;
        std::uint32_t instance = 0;
        int accessIdx = 0;
        int computeLeft = 0;
        Cycle readyAt = 0;
        MemAccess pending{};  //!< the access being (re)tried
        bool hasPending = false;
        Cycle issueCycle = 0; //!< when the pending load was first issued
    };

    struct CtaSlot
    {
        int cta = -1;
        std::uint32_t instance = 0;
        int warpsLeft = 0;
        std::vector<int> warpIds;
    };

    struct ProbeState
    {
        int nacksLeft = 0;
        bool resolved = false;
        Cycle issued = 0;
    };

    void receiveReplies(Cycle now) DR_ENDPOINT_PHASE;
    void receiveRequests(Cycle now) DR_ENDPOINT_PHASE;
    void processFrq(Cycle now) DR_ENDPOINT_PHASE;
    void drainOutbound(Cycle now) DR_ENDPOINT_PHASE;
    void issueWarps(Cycle now) DR_ENDPOINT_PHASE;
    bool executeMemAccess(Warp &warp, int warpId, Cycle now)
        DR_ENDPOINT_PHASE;
    bool startMiss(Warp &warp, int warpId, Addr line, Cycle now)
        DR_ENDPOINT_PHASE;
    void wakeTargets(Addr line, Cycle now) DR_ENDPOINT_PHASE;
    void assignCta(CtaSlot &slot, Cycle now) DR_COMMIT_PHASE;
    void finishWarp(Warp &warp, Cycle now) DR_ENDPOINT_PHASE;
    void advanceWarp(Warp &warp, Cycle now, Cycle extraLatency)
        DR_ENDPOINT_PHASE;
    Message makeRequest(MsgType type, Addr line, Cycle now) const;
    bool sendOrQueueReply(const Message &msg, Cycle now)
        DR_ENDPOINT_PHASE;
    bool isMemNode(NodeId node) const;

    NodeId nodeId_;
    int coreIdx_;
    const SystemConfig &cfg_;
    Interconnect &ic_;
    const AddressMap &map_;
    GpuCoherence &coherence_;
    CtaScheduler &ctaSched_;
    const KernelAccessPattern &kernel_;
    L1Organizer &l1_;
    const std::vector<NodeId> &gpuCoreIds_;

    std::vector<Warp> warps_ DR_DOMAIN_OWNED;
    std::vector<CtaSlot> ctaSlots_ DR_DOMAIN_OWNED;
    std::uint32_t coreInstance_ = 0;
    int greedyWarp_ = 0;

    MshrFile mshrs_ DR_DOMAIN_OWNED;
    std::deque<Message> frq_ DR_DOMAIN_OWNED;   //!< Forwarded Request Queue
    std::deque<Message> probeQueue_ DR_DOMAIN_OWNED;  //!< incoming RP probes
    //!< core-to-core data replies
    std::deque<Message> outboundReplies_ DR_DOMAIN_OWNED;
    // drlint-allow(unordered-container): lookup by line only;
    // probe completion is driven by message arrival order.
    std::unordered_map<Addr, ProbeState> probes_ DR_DOMAIN_OWNED;
    //!< lines awaiting LLC re-send
    std::deque<Addr> probeFallbacks_ DR_DOMAIN_OWNED;
    SharingPredictor predictor_ DR_DOMAIN_OWNED;

    int outstandingWrites_ DR_DOMAIN_OWNED = 0;
    bool frqServicedThisTick_ DR_DOMAIN_OWNED = false;
    std::uint64_t nextReqId_ DR_DOMAIN_OWNED;
    /** Reads other cores' L1s: serial-merge only (DESIGN.md §13). */
    std::function<bool(int, Addr)> localityOracle_ DR_SERIAL_ONLY;
    /** L1-miss lines staged for the oracle, resolved at the merge. */
    std::vector<Addr> oracleQueries_ DR_DOMAIN_OWNED;
    /** CTA slots that completed this cycle, refilled at the merge. */
    std::vector<int> pendingCtaRefills_ DR_DOMAIN_OWNED;

    SmCoreStats stats_ DR_DOMAIN_OWNED;
    int domain_ = -1;

    static constexpr int maxOutboundReplies_ = 8;
    static constexpr int maxOutstandingWrites_ = 16;
};

} // namespace dr

#endif // DR_GPU_SM_CORE_HPP

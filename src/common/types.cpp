#include "common/types.hpp"

#include <sstream>

namespace dr
{

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::ReadReq: return "ReadReq";
      case MsgType::WriteReq: return "WriteReq";
      case MsgType::ReadReply: return "ReadReply";
      case MsgType::WriteAck: return "WriteAck";
      case MsgType::DelegatedReq: return "DelegatedReq";
      case MsgType::ProbeReq: return "ProbeReq";
      case MsgType::ProbeNack: return "ProbeNack";
    }
    return "Unknown";
}

const char *
topologyName(TopologyKind t)
{
    switch (t) {
      case TopologyKind::Mesh: return "mesh";
      case TopologyKind::Crossbar: return "crossbar";
      case TopologyKind::FlattenedButterfly: return "flattened-butterfly";
      case TopologyKind::Dragonfly: return "dragonfly";
      case TopologyKind::ChipletMesh: return "chiplet-mesh";
    }
    return "unknown";
}

const char *
routingName(RoutingKind r)
{
    switch (r) {
      case RoutingKind::DimOrderXY: return "XY";
      case RoutingKind::DimOrderYX: return "YX";
      case RoutingKind::DyXY: return "DyXY";
      case RoutingKind::Footprint: return "Footprint";
      case RoutingKind::Hare: return "HARE";
      case RoutingKind::TableMinimal: return "table-minimal";
      case RoutingKind::ChipletHierarchical: return "chiplet";
    }
    return "unknown";
}

const char *
layoutName(ChipLayout l)
{
    switch (l) {
      case ChipLayout::Baseline: return "Baseline";
      case ChipLayout::LayoutB: return "B";
      case ChipLayout::LayoutC: return "C";
      case ChipLayout::LayoutD: return "D";
    }
    return "unknown";
}

const char *
mechanismName(Mechanism m)
{
    switch (m) {
      case Mechanism::Baseline: return "Baseline";
      case Mechanism::RealisticProbing: return "RP";
      case Mechanism::DelegatedReplies: return "DelegatedReplies";
    }
    return "unknown";
}

const char *
l1OrganizationName(L1Organization o)
{
    switch (o) {
      case L1Organization::Private: return "private";
      case L1Organization::DcL1: return "DC-L1";
      case L1Organization::DynEB: return "DynEB";
    }
    return "unknown";
}

const char *
ctaScheduleName(CtaSchedule c)
{
    switch (c) {
      case CtaSchedule::RoundRobin: return "round-robin";
      case CtaSchedule::Distributed: return "distributed";
    }
    return "unknown";
}

std::string
Message::toString() const
{
    std::ostringstream os;
    os << msgTypeName(type) << " id=" << id << " addr=0x" << std::hex << addr
       << std::dec << " " << src << "->" << dst << " req=" << requester
       << (cls == TrafficClass::Cpu ? " CPU" : " GPU")
       << (dnf ? " DNF" : "");
    return os.str();
}

} // namespace dr

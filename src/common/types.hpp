#ifndef DR_COMMON_TYPES_HPP
#define DR_COMMON_TYPES_HPP

/**
 * @file
 * Fundamental types shared by every module of the Delegated Replies
 * simulator: cycle/address integers, node identifiers, traffic classes,
 * and the memory-system message vocabulary.
 */

#include <cstdint>
#include <string>

namespace dr
{

/** Simulation time in core/NoC clock cycles. */
using Cycle = std::uint64_t;

/** Physical byte address (48-bit address space per the paper). */
using Addr = std::uint64_t;

/**
 * Sentinel for "no scheduled event": an endpoint whose next-event
 * watermark (DESIGN.md §13) is kNeverCycle generates no effect on any
 * future cycle without new input arriving first.
 */
constexpr Cycle kNeverCycle = ~static_cast<Cycle>(0);

/** Flat node identifier within the chip (0 .. nodeCount-1). */
using NodeId = std::int16_t;

/** Sentinel for "no node". */
constexpr NodeId invalidNode = -1;

/** What a chip tile contains. */
enum class NodeType : std::uint8_t
{
    GpuCore,
    CpuCore,
    MemNode,
};

/** Traffic class: CPU traffic is prioritized end-to-end over GPU traffic. */
enum class TrafficClass : std::uint8_t
{
    Cpu,
    Gpu,
};

/** The two logical networks (physically separate in the baseline). */
enum class NetKind : std::uint8_t
{
    Request,
    Reply,
};

/**
 * Memory-system message vocabulary.
 *
 * DelegatedReq is a delegated reply: encoded as a normal request whose
 * sender ID is the *original requester* (Section IV of the paper), sent by
 * a memory node to the likely-sharer GPU core over the request network.
 * ProbeReq/ProbeNack implement Realistic Probing (RP).
 */
enum class MsgType : std::uint8_t
{
    ReadReq,       //!< 1-flit read request (core -> memory node)
    WriteReq,      //!< write-through request (carries data)
    ReadReply,     //!< data reply (memory node or remote L1 -> core)
    WriteAck,      //!< 1-flit write acknowledgement
    DelegatedReq,  //!< delegated reply (memory node -> likely sharer)
    ProbeReq,      //!< RP: probe a remote L1 for a line
    ProbeNack,     //!< RP: probed L1 does not hold the line
};

/** True for message types that travel on the request network. */
constexpr bool
onRequestNetwork(MsgType t)
{
    return t == MsgType::ReadReq || t == MsgType::WriteReq ||
           t == MsgType::DelegatedReq || t == MsgType::ProbeReq;
}

/** Printable name of a message type. */
const char *msgTypeName(MsgType t);

/** Supported NoC topologies (Section VII). */
enum class TopologyKind : std::uint8_t
{
    Mesh,
    Crossbar,
    FlattenedButterfly,
    Dragonfly,
    ChipletMesh,  //!< chiplet sub-meshes joined by interposer links
};

const char *topologyName(TopologyKind t);

/** Dimension order used by CDR routing within one network. */
enum class DimOrder : std::uint8_t
{
    XY,
    YX,
};

/** Routing algorithm selector for one network. */
enum class RoutingKind : std::uint8_t
{
    DimOrderXY,     //!< deterministic X-then-Y
    DimOrderYX,     //!< deterministic Y-then-X
    DyXY,           //!< congestion-aware adaptive [45]
    Footprint,      //!< adaptiveness-regulated [22]
    Hare,           //!< history-aware adaptive [37]
    TableMinimal,   //!< precomputed minimal paths (non-mesh topologies)
    ChipletHierarchical,  //!< intra-chiplet XY + gateway transit phases
};

const char *routingName(RoutingKind r);

/** Chip layouts from Figure 1 of the paper. */
enum class ChipLayout : std::uint8_t
{
    Baseline,  //!< memory column between CPU and GPU cores (Fig. 1a)
    LayoutB,   //!< memory nodes at die edge (top row, Fig. 1b)
    LayoutC,   //!< clustered CPU cores (Fig. 1c)
    LayoutD,   //!< distributed core types (Fig. 1d)
};

const char *layoutName(ChipLayout l);

/** The mechanism under evaluation. */
enum class Mechanism : std::uint8_t
{
    Baseline,          //!< carefully tuned baseline (Section V)
    RealisticProbing,  //!< state-of-the-art RP [31]
    DelegatedReplies,  //!< this paper's contribution
};

const char *mechanismName(Mechanism m);

/** L1 organisation among GPU cores (Figure 15). */
enum class L1Organization : std::uint8_t
{
    Private,  //!< baseline private L1 per SM
    DcL1,     //!< DC-L1: 8 cores statically share a 4-slice L1 [30]
    DynEB,    //!< dynamic shared/private selection [29]
};

const char *l1OrganizationName(L1Organization o);

/** CTA (thread block) scheduling policy (Figure 15). */
enum class CtaSchedule : std::uint8_t
{
    RoundRobin,
    Distributed,
};

const char *ctaScheduleName(CtaSchedule c);

/**
 * A memory-system message as carried end-to-end by the interconnect.
 *
 * @note `src`/`dst` are the *network* endpoints of the current transfer;
 *       `requester` is the core that originated the transaction and is
 *       preserved across delegation (it is the sender ID delegated
 *       replies carry, Section IV).
 */
struct Message
{
    MsgType type = MsgType::ReadReq;
    TrafficClass cls = TrafficClass::Gpu;
    Addr addr = 0;                 //!< line-aligned address
    NodeId src = invalidNode;      //!< injecting endpoint
    NodeId dst = invalidNode;      //!< receiving endpoint
    NodeId requester = invalidNode;//!< original requesting core
    std::uint64_t id = 0;          //!< unique transaction id
    bool dnf = false;              //!< Do-Not-Forward bit (Section IV)
    Cycle created = 0;             //!< cycle the transaction was created
    Cycle injected = 0;            //!< cycle the message entered the NoC

    /** One-line description for debugging. */
    std::string toString() const;
};

} // namespace dr

#endif // DR_COMMON_TYPES_HPP

#ifndef DR_COMMON_INVARIANT_HPP
#define DR_COMMON_INVARIANT_HPP

/**
 * @file
 * Machine-checked simulator invariants. The macros below compile to a
 * panic() (with file/line and the failing expression) in DR_CHECKED
 * builds (-DDR_CHECKED=ON) and to nothing in Release, so conservation
 * laws can be asserted on hot paths without taxing measurement runs.
 *
 * Conventions:
 *  - DR_ASSERT(cond)            — local sanity check on a hot path.
 *  - DR_ASSERT_MSG(cond, ...)   — same, with extra diagnostic operands.
 *  - DR_INVARIANT(cond, ...)    — a simulator-wide conservation law
 *                                 (flit/credit/MSHR accounting); reads
 *                                 as documentation of the law itself.
 *  - DR_CHECKED_ONLY(stmt)      — bookkeeping needed only by checks.
 *
 * Explicit checker *functions* (Network::checkCreditConservation() and
 * friends) are compiled unconditionally — they run only when called, so
 * tests and the watchdog can use them in any build type.
 */

#include "common/log.hpp"

namespace dr
{

/** True when the build carries invariant checks (-DDR_CHECKED=ON). */
constexpr bool
checkedBuild()
{
#ifdef DR_CHECKED
    return true;
#else
    return false;
#endif
}

} // namespace dr

#ifdef DR_CHECKED

#define DR_ASSERT(cond)                                                    \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::dr::panic("assertion failed: ", #cond, " at ", __FILE__,     \
                        ":", __LINE__);                                    \
        }                                                                  \
    } while (0)

#define DR_ASSERT_MSG(cond, ...)                                           \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::dr::panic("assertion failed: ", #cond, " at ", __FILE__,     \
                        ":", __LINE__, ": ", __VA_ARGS__);                 \
        }                                                                  \
    } while (0)

#define DR_INVARIANT(cond, ...)                                            \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::dr::panic("invariant violated: ", #cond, " at ", __FILE__,   \
                        ":", __LINE__, ": ", __VA_ARGS__);                 \
        }                                                                  \
    } while (0)

#define DR_CHECKED_ONLY(stmt)                                              \
    do {                                                                   \
        stmt;                                                              \
    } while (0)

#else

#define DR_ASSERT(cond)                                                    \
    do {                                                                   \
    } while (0)

#define DR_ASSERT_MSG(cond, ...)                                           \
    do {                                                                   \
    } while (0)

#define DR_INVARIANT(cond, ...)                                            \
    do {                                                                   \
    } while (0)

#define DR_CHECKED_ONLY(stmt)                                              \
    do {                                                                   \
    } while (0)

#endif // DR_CHECKED

#endif // DR_COMMON_INVARIANT_HPP

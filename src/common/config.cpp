#include "common/config.hpp"

#include <algorithm>
#include <cmath>

#include "common/log.hpp"

namespace dr
{

int
NocConfig::effectiveChannelBytes() const
{
    int base = sharedPhysical ? 2 * channelBytes : channelBytes;
    auto scaled = static_cast<int>(std::lround(base * bandwidthScale));
    if (scaled <= 0)
        fatal("channel width scaled to zero bytes");
    return scaled;
}

int
NocConfig::interposerSerializationCycles() const
{
    if (interposerChannelBytes <= 0)
        return 1;  // full-width interposer channels
    const int channel = effectiveChannelBytes();
    return (channel + interposerChannelBytes - 1) / interposerChannelBytes;
}

void
SystemConfig::validate() const
{
    const int tiles = nodeCount();
    const int used = gpu.numCores + cpu.numCores + mem.numNodes;
    if (used != tiles) {
        fatal("node mix (", gpu.numCores, " GPU + ", cpu.numCores,
              " CPU + ", mem.numNodes, " MEM = ", used,
              ") does not fill the ", noc.meshWidth, "x", noc.meshHeight,
              " chip (", tiles, " tiles)");
    }
    if (mem.lineBytes != gpu.l1LineBytes)
        fatal("LLC and GPU L1 line sizes must match");
    if (noc.vcsPerNet < 1 || noc.vcDepthFlits < 1)
        fatal("need at least one VC with at least one flit of buffering");
    if (noc.threads < 0)
        fatal("noc.threads must be >= 0 (0 = auto via DR_NOC_THREADS)");
    if (noc.memInjBufferFlits < flitsFor(MsgType::ReadReply,
                                         TrafficClass::Gpu)) {
        fatal("memory-node injection buffer smaller than one reply; "
              "replies could never inject");
    }
    if (noc.sharedPhysical && (noc.sharedReqVcs < 1 || noc.sharedReplyVcs < 1))
        fatal("shared network needs at least one VC per traffic type");
    if (noc.vnets) {
        // Per-VN VC counts must exactly cover the owning network's VCs;
        // anything else used to be silently clamped away by the old
        // classMask plumbing, which left a virtual network with no
        // buffering at all (and a guaranteed injection panic).
        if (noc.vnetRequestVcs < 1 || noc.vnetForwardVcs < 1 ||
            noc.vnetReplyVcs < 1 || noc.vnetDelegatedVcs < 1) {
            fatal("every virtual network needs at least one VC "
                  "(noc.vnet*Vcs)");
        }
        const int reqSide = noc.vnetRequestVcs + noc.vnetForwardVcs;
        const int repSide = noc.vnetReplyVcs + noc.vnetDelegatedVcs;
        const int reqVcs =
            noc.sharedPhysical ? noc.sharedReqVcs : noc.vcsPerNet;
        const int repVcs =
            noc.sharedPhysical ? noc.sharedReplyVcs : noc.vcsPerNet;
        if (reqSide != reqVcs) {
            fatal("virtual-network VC counts must sum to the request "
                  "network's VCs: vnetRequestVcs + vnetForwardVcs = ",
                  reqSide, " but the network has ", reqVcs);
        }
        if (repSide != repVcs) {
            fatal("virtual-network VC counts must sum to the reply "
                  "network's VCs: vnetReplyVcs + vnetDelegatedVcs = ",
                  repSide, " but the network has ", repVcs);
        }
    }
    if (gpu.frqEntries < 1)
        fatal("FRQ needs at least one entry");
    if (rp.probeCount < 1)
        fatal("RP must probe at least one remote cache");
    if (noc.topology == TopologyKind::Mesh &&
        noc.meshWidth * noc.meshHeight != tiles) {
        fatal("mesh dimensions inconsistent");
    }
    if (noc.topology == TopologyKind::ChipletMesh) {
        if (noc.chipletsX < 1 || noc.chipletsY < 1 ||
            noc.chipletSubW < 1 || noc.chipletSubH < 1)
            fatal("every chiplet dimension must be at least 1");
        if (noc.chipletsX * noc.chipletsY < 2)
            fatal("a chiplet mesh needs at least 2 chiplets "
                  "(use topology=mesh otherwise)");
        // Never derive one set of dimensions from the other: an
        // inconsistent pair is a configuration bug, not a preference.
        if (noc.meshWidth != noc.chipletsX * noc.chipletSubW ||
            noc.meshHeight != noc.chipletsY * noc.chipletSubH) {
            fatal("chiplet grid (", noc.chipletsX, "x", noc.chipletSubW,
                  " by ", noc.chipletsY, "x", noc.chipletSubH,
                  ") does not compose to the configured ", noc.meshWidth,
                  "x", noc.meshHeight, " mesh");
        }
        const int maxLinks = std::min(noc.chipletSubW, noc.chipletSubH);
        if (noc.chipletLinksPerEdge < 0 ||
            noc.chipletLinksPerEdge > maxLinks) {
            fatal("noc.chipletLinksPerEdge must be in [0, ", maxLinks,
                  "], got ", noc.chipletLinksPerEdge);
        }
    }
    if (noc.interposerChannelBytes < 0)
        fatal("noc.interposerChannelBytes must be >= 0 (0 = full width)");
    if (noc.interposerLatency < 0)
        fatal("noc.interposerLatency must be >= 0");
    if (!mem.placement.empty()) {
        if (static_cast<int>(mem.placement.size()) != mem.numNodes) {
            fatal("mem.placement lists ", mem.placement.size(),
                  " tiles but the system has ", mem.numNodes,
                  " memory nodes");
        }
        std::vector<bool> seen(static_cast<std::size_t>(tiles), false);
        for (const int tile : mem.placement) {
            if (tile < 0 || tile >= tiles)
                fatal("mem.placement tile ", tile, " outside the chip (",
                      tiles, " tiles)");
            if (seen[static_cast<std::size_t>(tile)])
                fatal("mem.placement tile ", tile, " listed twice");
            seen[static_cast<std::size_t>(tile)] = true;
        }
    }
}

namespace
{

int
ceilDiv(int a, int b)
{
    return (a + b - 1) / b;
}

} // namespace

int
SystemConfig::flitsFor(MsgType type, TrafficClass cls) const
{
    const int channel = noc.effectiveChannelBytes();
    const int line =
        cls == TrafficClass::Cpu ? cpu.lineBytes : mem.lineBytes;
    // Write-through stores carry a coalesced 32 B payload; loads and
    // control messages are metadata-only (8 B <= one flit).
    constexpr int writePayloadBytes = 32;
    switch (type) {
      case MsgType::ReadReq:
      case MsgType::DelegatedReq:
      case MsgType::ProbeReq:
      case MsgType::ProbeNack:
      case MsgType::WriteAck:
        return 1;
      case MsgType::WriteReq:
        return 1 + ceilDiv(writePayloadBytes, channel);
      case MsgType::ReadReply:
        return 1 + ceilDiv(line, channel);
    }
    panic("unreachable message type");
}

SystemConfig
SystemConfig::makeSmall()
{
    SystemConfig cfg;
    cfg.noc.meshWidth = 4;
    cfg.noc.meshHeight = 4;
    cfg.gpu.numCores = 10;
    cfg.cpu.numCores = 4;
    cfg.mem.numNodes = 2;
    cfg.gpu.l1SizeKB = 4;
    cfg.gpu.warpsPerCore = 8;
    cfg.gpu.l1Mshrs = 8;
    cfg.mem.llcSliceKB = 32;
    cfg.mem.banksPerMc = 4;
    cfg.warmupCycles = 500;
    cfg.simCycles = 5000;
    return cfg;
}

SystemConfig
SystemConfig::makePaper()
{
    return SystemConfig{};  // defaults are Table I
}

} // namespace dr

#ifndef DR_COMMON_LOG_HPP
#define DR_COMMON_LOG_HPP

/**
 * @file
 * Error and status reporting in the gem5 tradition: panic() for simulator
 * bugs (aborts), fatal() for user/configuration errors (exit(1)), warn()
 * and inform() for status messages.
 */

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace dr
{

namespace detail
{

/** Fold a variadic argument pack into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

/** Whether warn()/inform() output is suppressed (used by tests). */
bool &quiet();

} // namespace detail

/**
 * Report an internal simulator bug and abort. Use when a condition can
 * only arise from a defect in the simulator itself.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::cerr << "panic: " << detail::concat(std::forward<Args>(args)...)
              << std::endl;
    std::abort();
}

/**
 * Report an unrecoverable user error (bad configuration, invalid
 * arguments) and exit with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::cerr << "fatal: " << detail::concat(std::forward<Args>(args)...)
              << std::endl;
    std::exit(1);
}

/** Warn about suspicious but survivable conditions. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (!detail::quiet()) {
        std::cerr << "warn: " << detail::concat(std::forward<Args>(args)...)
                  << std::endl;
    }
}

/** Informative status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (!detail::quiet()) {
        std::cout << "info: " << detail::concat(std::forward<Args>(args)...)
                  << std::endl;
    }
}

/** Suppress or re-enable warn()/inform() output. */
void setQuiet(bool quiet);

} // namespace dr

#endif // DR_COMMON_LOG_HPP

#include "common/stats.hpp"

#include <algorithm>
#include <ostream>

#include "common/log.hpp"

namespace dr
{

Histogram::Histogram(std::uint64_t max, std::size_t bins)
    : limit_(max), binWidth_(static_cast<double>(max) / bins), bins_(bins, 0)
{
    if (max == 0 || bins == 0)
        panic("Histogram requires max > 0 and bins > 0");
}

void
Histogram::sample(std::uint64_t v)
{
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += static_cast<double>(v);
    if (v >= limit_) {
        ++overflow_;
    } else {
        auto bin = static_cast<std::size_t>(v / binWidth_);
        bin = std::min(bin, bins_.size() - 1);
        ++bins_[bin];
    }
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    const double target = p / 100.0 * static_cast<double>(count_);
    double cumulative = 0.0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        cumulative += static_cast<double>(bins_[i]);
        if (cumulative >= target)
            return (static_cast<double>(i) + 0.5) * binWidth_;
    }
    return static_cast<double>(max_);
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    count_ = 0;
    sum_ = 0.0;
    min_ = 0;
    max_ = 0;
}

void
StatGroup::add(const std::string &name, const Counter &c)
{
    entries_.push_back({name, Kind::CounterStat, &c});
}

void
StatGroup::add(const std::string &name, const Average &a)
{
    entries_.push_back({name, Kind::AverageStat, &a});
}

void
StatGroup::addScalar(const std::string &name, const double *v)
{
    entries_.push_back({name, Kind::ScalarStat, v});
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &e : entries_) {
        os << name_ << "." << e.name << " ";
        switch (e.kind) {
          case Kind::CounterStat:
            os << static_cast<const Counter *>(e.ptr)->value();
            break;
          case Kind::AverageStat:
            os << static_cast<const Average *>(e.ptr)->mean();
            break;
          case Kind::ScalarStat:
            os << *static_cast<const double *>(e.ptr);
            break;
        }
        os << "\n";
    }
}

} // namespace dr

#ifndef DR_COMMON_STATS_HPP
#define DR_COMMON_STATS_HPP

/**
 * @file
 * Lightweight statistics package. Components own plain stat objects
 * (Counter, Average, Histogram) and may register them with a StatGroup
 * for uniform dumping.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace dr
{

/** Monotonic event counter. */
class Counter
{
  public:
    Counter &operator++() { ++value_; return *this; }
    Counter &operator+=(std::uint64_t n) { value_ += n; return *this; }
    std::uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    std::uint64_t value_ = 0;
};

/** Running mean over observed samples. */
class Average
{
  public:
    void
    sample(double v)
    {
        sum_ += v;
        ++count_;
    }

    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double sum() const { return sum_; }
    std::uint64_t count() const { return count_; }

    void
    reset()
    {
        sum_ = 0.0;
        count_ = 0;
    }

  private:
    double sum_ = 0.0;
    std::uint64_t count_ = 0;
};

/**
 * Fixed-bin histogram over [0, max); samples at or above max land in the
 * overflow bin. Also tracks min/max/mean.
 */
class Histogram
{
  public:
    Histogram(std::uint64_t max, std::size_t bins);

    void sample(std::uint64_t v);

    std::uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    std::uint64_t minValue() const { return count_ ? min_ : 0; }
    std::uint64_t maxValue() const { return count_ ? max_ : 0; }
    /** Approximate p-th percentile (p in [0, 100]) from bin midpoints. */
    double percentile(double p) const;
    const std::vector<std::uint64_t> &bins() const { return bins_; }
    std::uint64_t overflow() const { return overflow_; }

    void reset();

  private:
    std::uint64_t limit_;
    double binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
};

/**
 * A named collection of scalar statistics for dumping. Values are pulled
 * through std::function-free lightweight accessors at dump time.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    void add(const std::string &name, const Counter &c);
    void add(const std::string &name, const Average &a);
    void addScalar(const std::string &name, const double *v);

    /** Print "group.stat value" lines. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }

  private:
    enum class Kind { CounterStat, AverageStat, ScalarStat };

    struct Entry
    {
        std::string name;
        Kind kind;
        const void *ptr;
    };

    std::string name_;
    std::vector<Entry> entries_;
};

} // namespace dr

#endif // DR_COMMON_STATS_HPP

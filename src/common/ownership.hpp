#ifndef DR_COMMON_OWNERSHIP_HPP
#define DR_COMMON_OWNERSHIP_HPP

/**
 * @file
 * Phase/domain ownership annotations for the deterministic parallel
 * tick engine (DESIGN.md §12). The engine's bit-identical guarantee
 * rests on a discipline that used to be tribal knowledge: compute-phase
 * code touches only state owned by its spatial domain, every
 * cross-domain effect rides an SPSC staging queue, and the serial
 * commit/merge sections own everything else. The macros below make that
 * discipline *declared in the source* so it can be checked three ways:
 *
 *  1. statically by tools/drphase.py (token-level, no compiler needed),
 *  2. by clang's -Wthread-safety when building with -DDR_THREAD_SAFETY
 *     (the macros expand to capability/guarded_by/requires_capability
 *     attributes; they are no-ops under gcc and in release builds),
 *  3. dynamically in DR_CHECKED builds via writer-domain stamping
 *     (DR_DOMAIN_STAMP and the DR_STAMP_* helpers), which panics on a
 *     cross-domain compute-phase write at runtime.
 *
 * Vocabulary (see DESIGN.md §12 for the full model):
 *
 *  DR_DOMAIN_OWNED   member/struct: written during the parallel phases
 *                    only by the owning domain's worker; serial code may
 *                    also touch it (it holds exclusive access between
 *                    barriers).
 *  DR_SHARED_SPSC    member: an SPSC staging structure — one producer
 *                    appends during phase 1, one consumer drains during
 *                    phase 2, the barrier between them is the
 *                    synchronization.
 *  DR_SERIAL_ONLY    member: written only from serial (commit-phase)
 *                    code; the parallel phases may read it (it is frozen
 *                    while workers run).
 *  DR_COMPUTE_PHASE  method: runs inside a parallel phase, confined to
 *                    its domain; may write only DR_DOMAIN_OWNED and
 *                    DR_SHARED_SPSC state.
 *  DR_COMMIT_PHASE   method: runs only in the serial sections (between
 *                    ticks, or the merge after the second barrier); may
 *                    write anything.
 *
 * Public API boundaries don't carry DR_COMMIT_PHASE (that would force
 * annotations onto every caller in the simulator); they instead open
 * with DR_PHASE_ASSERT_COMMIT(), which asserts the capability for
 * clang's analysis and, in DR_CHECKED builds, panics if called from a
 * parallel phase.
 */

#include <cstdint>

#include "common/log.hpp"

// Thread-safety attribute plumbing: real attributes only under clang
// with -DDR_THREAD_SAFETY (the opt-in -Wthread-safety configuration);
// empty everywhere else so gcc and release builds see plain C++.
#if defined(__clang__) && defined(DR_THREAD_SAFETY)
#define DR_TS_ATTR(x) __attribute__((x))
#else
#define DR_TS_ATTR(x)
#endif

namespace dr
{

/**
 * A phase capability: a token clang's analysis tracks instead of a
 * lock. `computePhaseCap` is "I am a worker inside a parallel phase";
 * `serialPhaseCap` is "I am the serial section". Compute-phase code
 * holds computePhaseCap exclusively and serialPhaseCap shared (serial
 * state is frozen while workers run, so reading it is legal); serial
 * code holds serialPhaseCap exclusively.
 */
class DR_TS_ATTR(capability("phase")) PhaseCapability
{
  public:
    explicit constexpr PhaseCapability(const char *name) : name_(name) {}
    const char *name() const { return name_; }

  private:
    const char *name_;
};

inline constexpr PhaseCapability computePhaseCap{"compute-phase"};
inline constexpr PhaseCapability serialPhaseCap{"serial-phase"};

namespace phase
{

/** Which kind of code the current thread is executing. */
enum class Kind : std::uint8_t
{
    Serial,   //!< between ticks / merge: the default
    Compute,  //!< inside a parallel phase, pinned to one domain
};

struct State
{
    Kind kind = Kind::Serial;
    std::int16_t domain = -1;
};

inline State &
tls()
{
    thread_local State state;
    return state;
}

/**
 * RAII: enter a parallel phase as `domain`'s worker. The engine wraps
 * tickDomain()/commitStaged() in one of these; the stamp checks below
 * read the scope's domain to validate every write. Free outside
 * DR_CHECKED builds.
 */
class ComputeScope
{
  public:
#ifdef DR_CHECKED
    explicit ComputeScope(int domain)
    {
        State &t = tls();
        prev_ = t;
        t.kind = Kind::Compute;
        t.domain = static_cast<std::int16_t>(domain);
    }

    ~ComputeScope() { tls() = prev_; }

  private:
    State prev_;
#else
    explicit ComputeScope(int) {}
#endif

  public:
    ComputeScope(const ComputeScope &) = delete;
    ComputeScope &operator=(const ComputeScope &) = delete;
};

/** Clang: establish the serial capability; DR_CHECKED: panic if this
 *  thread is inside a parallel phase. */
inline void
assertCommitPhase(const char *what)
    DR_TS_ATTR(assert_capability(::dr::serialPhaseCap))
{
#ifdef DR_CHECKED
    const State &t = tls();
    if (t.kind == Kind::Compute) {
        panic("phase violation: ", what, " entered from compute phase "
              "(domain ", t.domain, "); it is serial-only");
    }
#else
    (void)what;
#endif
}

/** Clang: establish the compute capability (plus shared serial, for
 *  reads of frozen serial state); DR_CHECKED: panic unless this thread
 *  is inside a ComputeScope. */
inline void
assertComputePhase(const char *what)
    DR_TS_ATTR(assert_capability(::dr::computePhaseCap))
    DR_TS_ATTR(assert_shared_capability(::dr::serialPhaseCap))
{
#ifdef DR_CHECKED
    if (tls().kind != Kind::Compute) {
        panic("phase violation: ", what,
              " entered outside a compute scope");
    }
#else
    (void)what;
#endif
}

/**
 * Entry assert for endpoint tick paths (DESIGN.md §13): legal from
 * serial code (which holds exclusive access between barriers) or from
 * the compute worker that owns `domain`; panics on a compute-phase
 * call from any other domain. `domain < 0` means "not partitioned"
 * (unit tests driving an endpoint directly) and accepts any caller.
 */
inline void
assertPhaseDomain(int domain, const char *what)
    DR_TS_ATTR(assert_shared_capability(::dr::serialPhaseCap))
{
#ifdef DR_CHECKED
    const State &t = tls();
    if (t.kind == Kind::Compute && domain >= 0 && t.domain != domain) {
        panic("phase violation: ", what, " owned by endpoint domain ",
              domain, " entered from compute domain ", t.domain);
    }
#else
    (void)domain;
    (void)what;
#endif
}

} // namespace phase

/**
 * Writer-domain stamp carried by every domain-owned structure
 * (DR_DOMAIN_STAMP). `owner` is assigned at partition time; `writer`
 * records the domain of the last checked write (DR_CHECKED builds), so
 * an audit can spot a write path that dodged the checking entry points.
 */
struct DomainStamp
{
    std::int16_t owner = -1;
    std::int16_t writer = -1;
};

namespace phase
{

/** Hot-path write check: a compute-phase write must come from the
 *  owning domain's worker. Serial writes are always legal. */
inline void
checkStampedWrite(DomainStamp &stamp, const char *what)
{
#ifdef DR_CHECKED
    State &t = tls();
    if (t.kind == Kind::Compute && stamp.owner != t.domain) {
        panic("phase violation: compute-phase write to ", what,
              " owned by domain ", stamp.owner, " from domain ",
              t.domain);
    }
    stamp.writer = t.kind == Kind::Compute ? t.domain : stamp.owner;
#else
    (void)stamp;
    (void)what;
#endif
}

/** Audit (invariant sweeps): the last recorded writer must be the
 *  owner — anything else is a write path that bypassed the checks. */
inline void
auditStamp(const DomainStamp &stamp, const char *what)
{
#ifdef DR_CHECKED
    if (stamp.writer >= 0 && stamp.writer != stamp.owner) {
        panic("phase stamp audit: ", what, " owned by domain ",
              stamp.owner, " was last written by domain ", stamp.writer);
    }
#else
    (void)stamp;
    (void)what;
#endif
}

} // namespace phase
} // namespace dr

// --- member / struct classification ---------------------------------------
// Trailing position on a member declaration (like clang's guarded_by):
//   NetworkStats stats_ DR_SERIAL_ONLY;
// or between the struct keyword and the name to classify a whole type:
//   struct DR_DOMAIN_OWNED Ni { ... };

#define DR_DOMAIN_OWNED /* per-domain ownership: checked by drphase */
#define DR_SHARED_SPSC  /* staged cross-domain hand-off: checked by drphase */
#define DR_SERIAL_ONLY DR_TS_ATTR(guarded_by(::dr::serialPhaseCap))

// --- method phase classification ------------------------------------------
// Trailing position on a method declaration:
//   void tickDomain(Domain &d, Cycle now) DR_COMPUTE_PHASE;

#define DR_COMPUTE_PHASE                                                   \
    DR_TS_ATTR(requires_capability(::dr::computePhaseCap))                 \
    DR_TS_ATTR(requires_shared_capability(::dr::serialPhaseCap))
#define DR_COMMIT_PHASE DR_TS_ATTR(requires_capability(::dr::serialPhaseCap))

/**
 * Read-only accessor of serial state callable from either phase:
 * serial code holds the capability exclusively, compute-phase code
 * holds it shared (the state is frozen while workers run).
 */
#define DR_PHASE_READ DR_TS_ATTR(requires_shared_capability(::dr::serialPhaseCap))

/** Opt a function out of clang's analysis (mutant-injection hooks). */
#define DR_PHASE_UNCHECKED DR_TS_ATTR(no_thread_safety_analysis)

/**
 * Endpoint tick path (DESIGN.md §13): runs inside the endpoint compute
 * phase when the system-level engine is active, confined to the
 * endpoint's domain, or from plain serial code (unit tests drive
 * endpoints directly; serial code holds exclusive access). drphase
 * checks these bodies under the same rules as DR_COMPUTE_PHASE ones;
 * clang's analysis treats them as shared readers of frozen serial
 * state. Entry points open with DR_PHASE_ASSERT_DOMAIN(domain_).
 */
#define DR_ENDPOINT_PHASE                                                  \
    DR_TS_ATTR(requires_shared_capability(::dr::serialPhaseCap))

// --- phase assertions at API boundaries -----------------------------------

#define DR_PHASE_ASSERT_COMMIT()                                           \
    ::dr::phase::assertCommitPhase(__func__)
#define DR_PHASE_ASSERT_COMPUTE()                                          \
    ::dr::phase::assertComputePhase(__func__)
#define DR_PHASE_ASSERT_DOMAIN(dom)                                        \
    ::dr::phase::assertPhaseDomain((dom), __func__)

// --- writer-domain stamping (dynamic truth-checking) ----------------------

/** Declare the stamp member inside an annotated structure. */
#define DR_DOMAIN_STAMP ::dr::DomainStamp drStamp_

/** Assign the owning domain (partition time; any build type). */
#define DR_STAMP_SET_OWNER(obj, dom)                                       \
    ((obj).drStamp_.owner = static_cast<std::int16_t>(dom))

/** Validate + record a write to a stamped structure (DR_CHECKED). */
#define DR_STAMP_WRITE(obj)                                                \
    ::dr::phase::checkStampedWrite((obj).drStamp_, #obj)

/** Audit a stamped structure from an invariant sweep (DR_CHECKED). */
#define DR_STAMP_AUDIT(obj)                                                \
    ::dr::phase::auditStamp((obj).drStamp_, #obj)

#endif // DR_COMMON_OWNERSHIP_HPP

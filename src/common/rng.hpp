#ifndef DR_COMMON_RNG_HPP
#define DR_COMMON_RNG_HPP

/**
 * @file
 * Deterministic pseudo-random number generation. Every stochastic choice
 * in the simulator draws from a component-owned Rng so that runs are
 * exactly reproducible for a given configuration and seed.
 */

#include <cstdint>

namespace dr
{

/**
 * xoshiro256** generator: fast, high quality, and fully deterministic.
 */
class Rng
{
  public:
    /** Construct with a seed; equal seeds yield equal streams. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi]. */
    std::int64_t
    range(std::int64_t lo, std::int64_t hi)
    {
        return lo + static_cast<std::int64_t>(below(
            static_cast<std::uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Bernoulli draw with probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace dr

#endif // DR_COMMON_RNG_HPP

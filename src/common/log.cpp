#include "common/log.hpp"

namespace dr
{

namespace detail
{

bool &
quiet()
{
    static bool value = false;
    return value;
}

} // namespace detail

void
setQuiet(bool quiet)
{
    detail::quiet() = quiet;
}

} // namespace dr

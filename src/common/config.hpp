#ifndef DR_COMMON_CONFIG_HPP
#define DR_COMMON_CONFIG_HPP

/**
 * @file
 * Simulated-system configuration. Defaults reproduce Table I of the paper:
 * a 64-node chip with 40 GPU cores, 16 CPU cores and 8 memory nodes on an
 * 8x8 mesh with separate 128-bit request/reply networks.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace dr
{

/** Network-on-chip parameters. */
struct NocConfig
{
    TopologyKind topology = TopologyKind::Mesh;
    int meshWidth = 8;   //!< columns
    int meshHeight = 8;  //!< rows

    /**
     * Chiplet-mesh topology (topology == ChipletMesh): a chipletsX x
     * chipletsY grid of chipletSubW x chipletSubH sub-meshes joined by
     * interposer links. meshWidth/meshHeight must equal the composed
     * grid (chipletsX*chipletSubW by chipletsY*chipletSubH) — validate()
     * fatals on any mismatch rather than silently deriving one from the
     * other. chipletLinksPerEdge restricts how many boundary rows/
     * columns carry an interposer link (0 = every boundary router is a
     * gateway); restricted gateways require chiplet routing.
     */
    int chipletsX = 1;
    int chipletsY = 1;
    int chipletSubW = 4;
    int chipletSubH = 4;
    int chipletLinksPerEdge = 0;

    /**
     * Interposer link class. interposerChannelBytes is the physical
     * width of an interposer channel (0 = same as channelBytes); a
     * narrower channel serializes each flit over
     * ceil(effectiveChannelBytes / interposerChannelBytes) cycles.
     * interposerLatency is added to every flit hop and credit return
     * crossing an interposer link.
     */
    int interposerChannelBytes = 0;
    int interposerLatency = 4;

    int channelBytes = 16;  //!< 128-bit channels
    int vcsPerNet = 2;      //!< VCs per physical network
    int vcDepthFlits = 4;   //!< buffer depth per VC
    int routerStages = 4;   //!< router pipeline depth (cycles)

    /**
     * Worker threads ticking each physical network (spatial-domain
     * parallel engine, DESIGN.md §11). Schedules and statistics are
     * bit-identical for every value by construction. 0 = auto: take
     * DR_NOC_THREADS from the environment, else single-threaded.
     */
    int threads = 0;

    /**
     * AVCP mode: a single physical network whose aggregate bandwidth
     * matches the two baseline networks; request and reply traffic are
     * segregated onto disjoint VC sets.
     */
    bool sharedPhysical = false;
    int sharedReqVcs = 2;    //!< VCs dedicated to requests when shared
    int sharedReplyVcs = 2;  //!< VCs dedicated to replies when shared

    /**
     * Virtual networks: partition each physical network's VCs into
     * reserved per-message-class ranges (Request, ForwardedRequest,
     * Reply, DelegatedReply — see noc/vnet.hpp) and arbitrate by
     * (class, VN) rank. Off by default: the legacy two-class split is
     * schedule-preserving. The per-VN counts must exactly cover the
     * owning network's VCs: request+forward == vcsPerNet and
     * reply+delegated == vcsPerNet for split networks, or ==
     * sharedReqVcs / sharedReplyVcs respectively in AVCP shared mode
     * (validate() enforces this; no silent clamping).
     */
    bool vnets = false;
    int vnetRequestVcs = 1;    //!< VCs reserved for ordinary requests
    int vnetForwardVcs = 1;    //!< VCs reserved for delegated forwards
    int vnetReplyVcs = 1;      //!< VCs reserved for memory replies
    int vnetDelegatedVcs = 1;  //!< VCs reserved for core-to-core replies

    RoutingKind requestRouting = RoutingKind::DimOrderYX;  //!< CDR: YX req
    RoutingKind replyRouting = RoutingKind::DimOrderXY;    //!< CDR: XY rep

    /**
     * Memory-node reply injection buffer in flits. The paper's clogging
     * mechanism hinges on this buffer filling (Figure 3); ~4 complete
     * GPU replies with the default channel width.
     */
    int memInjBufferFlits = 36;
    int coreInjBufferFlits = 36;  //!< per-core injection buffer
    int ejBufferFlits = 18;       //!< finite ejection buffer (back-pressure)

    /** Channel width multiplier; 2.0 models the double-bandwidth NoC. */
    double bandwidthScale = 1.0;

    /** Effective channel width in bytes after scaling. */
    int effectiveChannelBytes() const;

    /** Cycles one flit occupies an interposer channel (>= 1). */
    int interposerSerializationCycles() const;
};

/** GPU core (SM) parameters. */
struct GpuConfig
{
    int numCores = 40;
    int warpsPerCore = 48;
    int threadsPerWarp = 32;
    int issueWidth = 2;         //!< 2 GTO schedulers per core
    int computePerMem = 4;      //!< compute instructions per memory access

    int l1SizeKB = 48;
    int l1Assoc = 4;
    int l1LineBytes = 128;
    int l1HitLatency = 2;
    int l1Mshrs = 32;
    int mshrTargets = 8;        //!< merged requests per MSHR entry

    int frqEntries = 8;         //!< Forwarded Request Queue (Section IV)

    L1Organization l1Org = L1Organization::Private;
    int dcl1CoresPerCluster = 8;  //!< DC-L1: 8 cores share one L1
    int dcl1Slices = 4;           //!< ... with 4 address-interleaved slices
    CtaSchedule ctaSchedule = CtaSchedule::RoundRobin;
};

/** CPU core parameters. */
struct CpuConfig
{
    int numCores = 16;
    int l1SizeKB = 32;
    int l1Assoc = 4;
    int lineBytes = 64;
    int maxOutstanding = 8;  //!< upper bound on per-core MLP
};

/** Memory-node (LLC slice + memory controller) parameters. */
struct MemConfig
{
    int numNodes = 8;

    int llcSliceKB = 1024;  //!< 1 MB per memory controller, 8 MB total
    int llcAssoc = 16;
    int lineBytes = 128;
    int llcLatency = 20;    //!< tag+data access latency (cycles)
    int llcMshrs = 64;

    int banksPerMc = 16;
    // GDDR5 timing parameters (in memory cycles ~ core cycles)
    int tCL = 12;
    int tRP = 12;
    int tRC = 40;
    int tRAS = 28;
    int tRCD = 12;
    int tRRD = 6;
    int tCCD = 2;
    int tWR = 12;
    /** Core cycles the shared per-MC data bus is busy per line burst. */
    int burstCycles = 6;

    /** Randomized (PAE-like [43]) address-to-MC mapping seed. */
    std::uint64_t mapSeed = 0x5eedu;

    /**
     * Explicit memory-node tile placement: `placement[i]` is the tile
     * index of the i-th memory node. Empty keeps the ChipLayout
     * default; non-empty must list exactly numNodes distinct in-range
     * tiles (validate() fatals otherwise). This is the knob the
     * deterministic placement search (tools/run_placement.py) sweeps.
     */
    std::vector<int> placement;
};

/** Delegated Replies policy knobs. */
struct DrConfig
{
    /** Delegate even when the reply network could accept (ablation). */
    bool delegateAlways = false;
    /** FRQ remote requests beat local accesses (deadlock avoidance). */
    bool frqRemotePriority = true;
};

/** Realistic Probing configuration (best-performing per the authors). */
struct RpConfig
{
    int probeCount = 2;        //!< remote L1s probed per predicted miss
    int predictorEntries = 512;//!< per-core sharing predictor table
};

/** Correctness-toolkit knobs: progress watchdog + checked-build sweeps. */
struct DebugConfig
{
    /** No-forward-progress window before the watchdog fires (0 = off). */
    Cycle watchdogCycles = 0;
    /** panic() on a detected stall; false reports, counts, re-arms. */
    bool watchdogAbort = true;
    /** Max cycles an MSHR entry may stay outstanding (leak bound). */
    Cycle mshrLeakCycles = 200000;
    /**
     * DR_CHECKED builds: cycles between full conservation sweeps
     * (flit/credit conservation, MSHR leak check). 0 disables sweeps;
     * ignored entirely in non-checked builds.
     */
    Cycle sweepCycles = 4096;
};

/** Complete system configuration. */
struct SystemConfig
{
    NocConfig noc;
    GpuConfig gpu;
    CpuConfig cpu;
    MemConfig mem;
    DrConfig dr;
    RpConfig rp;
    DebugConfig debug;

    Mechanism mechanism = Mechanism::Baseline;
    ChipLayout layout = ChipLayout::Baseline;

    std::uint64_t seed = 42;

    Cycle warmupCycles = 5000;
    Cycle simCycles = 50000;  //!< measured cycles after warmup

    /**
     * Event-driven idle skipping (DESIGN.md §13): when every network
     * domain is quiescent and every endpoint's next-event watermark
     * lies in the future, HeteroSystem::advance() jumps now_ to the
     * earliest watermark instead of ticking dead cycles. Results are
     * bit-identical either way; the flag exists so the equivalence
     * stays testable.
     */
    bool idleSkip = true;

    /** Total tile count. */
    int nodeCount() const { return noc.meshWidth * noc.meshHeight; }

    /** Abort with fatal() if the configuration is inconsistent. */
    void validate() const;

    /** Flits occupied by a message of the given type/class. */
    int flitsFor(MsgType type, TrafficClass cls) const;

    /**
     * A reduced configuration for unit tests: 4x4 mesh, 2 memory nodes,
     * 10 GPU cores, 4 CPU cores, small caches.
     */
    static SystemConfig makeSmall();

    /** The full Table I configuration. */
    static SystemConfig makePaper();
};

} // namespace dr

#endif // DR_COMMON_CONFIG_HPP

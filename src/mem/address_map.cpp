#include "mem/address_map.hpp"

#include "common/log.hpp"

namespace dr
{

AddressMap::AddressMap(int numMcs, int lineBytes,
                       std::vector<NodeId> memNodeIds, std::uint64_t seed)
    : numMcs_(numMcs), lineBytes_(lineBytes),
      memNodeIds_(std::move(memNodeIds)), seed_(seed)
{
    if (numMcs_ < 1)
        fatal("address map needs at least one memory controller");
    if (static_cast<int>(memNodeIds_.size()) != numMcs_)
        fatal("address map: one node ID per memory controller required");
}

int
AddressMap::mcOf(Addr addr) const
{
    // SplitMix-style finalizer over the line address: cheap, high
    // quality, and immune to power-of-two strides.
    std::uint64_t x = (addr / lineBytes_) ^ seed_;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x = x ^ (x >> 31);
    return static_cast<int>(x % static_cast<std::uint64_t>(numMcs_));
}

} // namespace dr

#ifndef DR_MEM_ADDRESS_MAP_HPP
#define DR_MEM_ADDRESS_MAP_HPP

/**
 * @file
 * Randomized address-to-memory-controller mapping in the spirit of
 * PAE [43]: a hash of the line address picks the controller so that
 * strided access patterns spread evenly over the 8 memory nodes instead
 * of camping on one ("get out of the valley").
 */

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace dr
{

/** Maps line addresses to memory-controller indices and node IDs. */
class AddressMap
{
  public:
    /**
     * @param numMcs number of memory controllers
     * @param lineBytes cache-line size used for alignment
     * @param memNodeIds NoC node ID of each controller, indexed by MC
     * @param seed hash seed (PAE-style randomization)
     */
    AddressMap(int numMcs, int lineBytes, std::vector<NodeId> memNodeIds,
               std::uint64_t seed);

    int numMcs() const { return numMcs_; }

    /** Line-aligned address. */
    Addr lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(lineBytes_ - 1);
    }

    /** Memory-controller index owning an address. */
    int mcOf(Addr addr) const;

    /** NoC node of the controller owning an address. */
    NodeId nodeOf(Addr addr) const { return memNodeIds_[mcOf(addr)]; }

    /** NoC node of a controller by index. */
    NodeId nodeOfMc(int mc) const { return memNodeIds_[mc]; }

  private:
    int numMcs_;
    int lineBytes_;
    std::vector<NodeId> memNodeIds_;
    std::uint64_t seed_;
};

} // namespace dr

#endif // DR_MEM_ADDRESS_MAP_HPP

#include "mem/mem_node.hpp"

#include <algorithm>

#include "common/invariant.hpp"
#include "common/log.hpp"

namespace dr
{

MemNode::MemNode(NodeId nodeId, const SystemConfig &cfg, Interconnect &ic,
                 const GpuCoherence &coherence,
                 const std::vector<NodeId> &gpuCoreIds,
                 const std::vector<NodeId> &cpuCoreIds)
    : nodeId_(nodeId), cfg_(cfg), ic_(ic),
      mesi_(cfg.cpu.numCores, kMesiInvalidationPenalty), dram_(cfg.mem),
      llc_(nodeId, cfg, coherence, dram_, gpuCoreIds),
      cpuIndexOfNode_(static_cast<std::size_t>(cfg.nodeCount()), -1)
{
    for (std::size_t i = 0; i < cpuCoreIds.size(); ++i)
        cpuIndexOfNode_[cpuCoreIds[i]] = static_cast<int>(i);
}

void
MemNode::tick(Cycle now)
{
    DR_PHASE_ASSERT_DOMAIN(domain_);
    ++stats_.activeCycles;
    dram_.tick(now);
    llc_.tick(now);
    drainReplies(now);
    acceptRequests(now);
}

Cycle
MemNode::nextEventCycle(Cycle now) const
{
    // A pending request in the NI keeps the node live next cycle; so
    // do any LLC pipeline/reply/writeback work and any DRAM activity.
    if (ic_.hasMessage(nodeId_, NetKind::Request))
        return now + 1;
    Cycle next = dram_.nextEventCycle(now);
    next = std::min(next, llc_.nextEventCycle(now));
    return next;
}

void
MemNode::drainReplies(Cycle now)
{
    while (llc_.hasReply()) {
        const LlcReply &reply = llc_.peekReply();

        // Delegated Replies: only when the reply network cannot take
        // the reply (the paper never delegates gratuitously — delegation
        // costs latency); delegateAlways is an ablation knob.
        const bool wantDelegate =
            cfg_.mechanism == Mechanism::DelegatedReplies &&
            reply.delegatable &&
            (cfg_.dr.delegateAlways || !ic_.canSend(reply.msg));
        if (wantDelegate) {
            // DR protocol: delegation only applies to read replies, and
            // the delegate must be a third party — forwarding back to
            // the requester (or to nobody) would be a protocol bug.
            DR_INVARIANT(reply.msg.type == MsgType::ReadReply,
                         "mem node ", nodeId_, ": delegating a ",
                         msgTypeName(reply.msg.type));
            DR_INVARIANT(reply.delegateTo != invalidNode,
                         "mem node ", nodeId_,
                         ": delegatable reply without a core pointer");
            DR_INVARIANT(reply.delegateTo != reply.msg.requester,
                         "mem node ", nodeId_, ": delegation pointer "
                         "equals requester node ", reply.msg.requester);
            Message delegated;
            delegated.type = MsgType::DelegatedReq;
            delegated.cls = TrafficClass::Gpu;
            delegated.addr = reply.msg.addr;
            delegated.src = nodeId_;
            delegated.dst = reply.delegateTo;
            // Encoded as a normal request carrying the *requesting*
            // core's identifier so the recipient knows where to send
            // the data (Section IV, "NoC modifications").
            delegated.requester = reply.msg.requester;
            delegated.id = reply.msg.id;
            delegated.created = reply.msg.created;
            // The forward rides the ForwardedRequest VN (reserved VCs,
            // noc/vnet.hpp); when the network cannot take it we fall
            // through to the normal reply below, so delegation never
            // hard-blocks the reply drain on forward buffering.
            DR_ASSERT_MSG(ic_.vnetFor(delegated) ==
                              VirtualNet::ForwardedRequest,
                          "mem node ", nodeId_, ": delegation classified "
                          "off the ForwardedRequest VN");
            if (ic_.canSend(delegated)) {
                ic_.send(delegated, now);
                ++stats_.delegations;
                llc_.popReply();
                continue;
            }
        }

        if (ic_.canSend(reply.msg)) {
            ic_.send(reply.msg, now);
            ++stats_.repliesSent;
            llc_.popReply();
            continue;
        }
        ++stats_.blockedCycles;
        break;
    }
}

void
MemNode::acceptRequests(Cycle now)
{
    while (llc_.canAccept() && ic_.hasMessage(nodeId_, NetKind::Request)) {
        Message req = ic_.popMessage(nodeId_, NetKind::Request);
        ++stats_.requestsAccepted;
        Cycle penalty = 0;
        if (req.cls == TrafficClass::Cpu) {
            const int cpuIdx = cpuIndexOfNode_[req.requester];
            if (cpuIdx >= 0) {
                const Addr cpuLine =
                    req.addr & ~static_cast<Addr>(cfg_.cpu.lineBytes - 1);
                penalty = mesi_.access(cpuIdx, cpuLine,
                                       req.type == MsgType::WriteReq);
                stats_.cpuPenaltyCycles += penalty;
            }
        }
        llc_.accept(req, now + penalty);
    }
}

double
MemNode::blockingRate() const
{
    if (stats_.activeCycles.value() == 0)
        return 0.0;
    return static_cast<double>(stats_.blockedCycles.value()) /
           static_cast<double>(stats_.activeCycles.value());
}

void
MemNode::resetStats()
{
    stats_ = MemNodeStats{};
}

} // namespace dr

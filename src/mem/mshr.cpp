#include "mem/mshr.hpp"

#include "common/log.hpp"

namespace dr
{

MshrFile::MshrFile(int entries, int targetsPerEntry)
    : entries_(entries), targetsPerEntry_(targetsPerEntry)
{
    if (entries < 1 || targetsPerEntry < 1)
        fatal("MSHR file needs at least one entry and one target");
}

bool
MshrFile::outstanding(Addr lineAddr) const
{
    return map_.contains(lineAddr);
}

void
MshrFile::allocate(Addr lineAddr, const MshrTarget &first)
{
    if (full())
        panic("MSHR allocate on full file");
    if (outstanding(lineAddr))
        panic("MSHR allocate on already-outstanding line");
    map_[lineAddr] = {first};
}

bool
MshrFile::addTarget(Addr lineAddr, const MshrTarget &target)
{
    auto it = map_.find(lineAddr);
    if (it == map_.end())
        panic("MSHR addTarget on non-outstanding line");
    if (static_cast<int>(it->second.size()) >= targetsPerEntry_)
        return false;
    it->second.push_back(target);
    return true;
}

const std::vector<MshrTarget> &
MshrFile::targets(Addr lineAddr) const
{
    const auto it = map_.find(lineAddr);
    if (it == map_.end())
        panic("MSHR targets on non-outstanding line");
    return it->second;
}

std::vector<MshrTarget>
MshrFile::release(Addr lineAddr)
{
    auto it = map_.find(lineAddr);
    if (it == map_.end())
        panic("MSHR release on non-outstanding line");
    std::vector<MshrTarget> targets = std::move(it->second);
    map_.erase(it);
    return targets;
}

} // namespace dr

#include "mem/mshr.hpp"

#include <algorithm>
#include <sstream>

#include "common/log.hpp"

namespace dr
{

MshrFile::MshrFile(int entries, int targetsPerEntry)
    : entries_(entries), targetsPerEntry_(targetsPerEntry)
{
    if (entries < 1 || targetsPerEntry < 1)
        fatal("MSHR file needs at least one entry and one target");
}

bool
MshrFile::outstanding(Addr lineAddr) const
{
    return map_.contains(lineAddr);
}

void
MshrFile::allocate(Addr lineAddr, const MshrTarget &first, Cycle now)
{
    if (full())
        panic("MSHR allocate on full file");
    if (outstanding(lineAddr))
        panic("MSHR allocate on already-outstanding line");
    map_[lineAddr] = {{first}, now};
}

bool
MshrFile::addTarget(Addr lineAddr, const MshrTarget &target)
{
    auto it = map_.find(lineAddr);
    if (it == map_.end())
        panic("MSHR addTarget on non-outstanding line");
    if (static_cast<int>(it->second.targets.size()) >= targetsPerEntry_)
        return false;
    it->second.targets.push_back(target);
    return true;
}

const std::vector<MshrTarget> &
MshrFile::targets(Addr lineAddr) const
{
    const auto it = map_.find(lineAddr);
    if (it == map_.end())
        panic("MSHR targets on non-outstanding line");
    return it->second.targets;
}

std::vector<MshrTarget>
MshrFile::release(Addr lineAddr)
{
    auto it = map_.find(lineAddr);
    if (it == map_.end())
        panic("MSHR release on non-outstanding line");
    std::vector<MshrTarget> targets = std::move(it->second.targets);
    map_.erase(it);
    return targets;
}

std::vector<Addr>
MshrFile::sortedLines() const
{
    std::vector<Addr> lines;
    lines.reserve(map_.size());
    // drlint-allow(unordered-iteration): key collection only; the sort
    // below erases the hash order before anyone observes it.
    for (const auto &[addr, entry] : map_)
        lines.push_back(addr);
    std::sort(lines.begin(), lines.end());
    return lines;
}

Cycle
MshrFile::oldestAge(Cycle now) const
{
    Cycle oldest = 0;
    for (const Addr addr : sortedLines()) {
        const Entry &entry = map_.at(addr);
        if (now >= entry.allocatedAt)
            oldest = std::max(oldest, now - entry.allocatedAt);
    }
    return oldest;
}

void
MshrFile::checkDrained(const char *owner) const
{
    if (map_.empty())
        return;
    std::ostringstream lines;
    for (const Addr addr : sortedLines()) {
        lines << " 0x" << std::hex << addr << std::dec << "("
              << map_.at(addr).targets.size() << " targets)";
    }
    panic(owner, ": MSHR leak: ", map_.size(),
          " entries still outstanding at drain:", lines.str());
}

void
MshrFile::checkNoLeaks(Cycle now, Cycle maxAge, const char *owner) const
{
    for (const Addr addr : sortedLines()) {
        const Entry &entry = map_.at(addr);
        if (now >= entry.allocatedAt && now - entry.allocatedAt > maxAge) {
            panic(owner, ": MSHR leak: line 0x", std::hex, addr, std::dec,
                  " outstanding for ", now - entry.allocatedAt,
                  " cycles (bound ", maxAge, "); its fill was lost");
        }
    }
}

} // namespace dr

#ifndef DR_MEM_MSHR_HPP
#define DR_MEM_MSHR_HPP

/**
 * @file
 * Miss Status Holding Registers. An entry tracks one outstanding line
 * fill and merges up to `targetsPerEntry` requesters. Delegated Replies
 * additionally records, per target, whether the reply must be forwarded
 * to a remote core (a delayed hit serviced on fill, Section IV).
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace dr
{

/** One merged requester waiting on an outstanding fill. */
struct MshrTarget
{
    std::uint64_t reqId = 0;
    NodeId replyTo = invalidNode;  //!< core the data must be sent to
    TrafficClass cls = TrafficClass::Gpu;
    bool remote = false;           //!< target came in via the FRQ
    bool write = false;
};

/** MSHR file keyed by line address. */
class MshrFile
{
  public:
    MshrFile(int entries, int targetsPerEntry);

    bool full() const { return static_cast<int>(map_.size()) >= entries_; }
    int used() const { return static_cast<int>(map_.size()); }
    int entries() const { return entries_; }

    /** Whether a miss to this line is already outstanding. */
    bool outstanding(Addr lineAddr) const;

    /**
     * Allocate an entry for a new outstanding miss.
     * @pre !full() && !outstanding(lineAddr)
     */
    void allocate(Addr lineAddr, const MshrTarget &first);

    /**
     * Merge a target into an outstanding entry.
     * @return false if the entry already has the maximum target count.
     */
    bool addTarget(Addr lineAddr, const MshrTarget &target);

    /** Targets waiting on a line (valid only while outstanding). */
    const std::vector<MshrTarget> &targets(Addr lineAddr) const;

    /** Release an entry on fill, returning its targets. */
    std::vector<MshrTarget> release(Addr lineAddr);

  private:
    int entries_;
    int targetsPerEntry_;
    std::unordered_map<Addr, std::vector<MshrTarget>> map_;
};

} // namespace dr

#endif // DR_MEM_MSHR_HPP

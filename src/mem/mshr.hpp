#ifndef DR_MEM_MSHR_HPP
#define DR_MEM_MSHR_HPP

/**
 * @file
 * Miss Status Holding Registers. An entry tracks one outstanding line
 * fill and merges up to `targetsPerEntry` requesters. Delegated Replies
 * additionally records, per target, whether the reply must be forwarded
 * to a remote core (a delayed hit serviced on fill, Section IV).
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace dr
{

/** One merged requester waiting on an outstanding fill. */
struct MshrTarget
{
    std::uint64_t reqId = 0;
    NodeId replyTo = invalidNode;  //!< core the data must be sent to
    TrafficClass cls = TrafficClass::Gpu;
    bool remote = false;           //!< target came in via the FRQ
    bool write = false;
};

/** MSHR file keyed by line address. */
class MshrFile
{
  public:
    MshrFile(int entries, int targetsPerEntry);

    bool full() const { return static_cast<int>(map_.size()) >= entries_; }
    int used() const { return static_cast<int>(map_.size()); }
    int entries() const { return entries_; }

    /** Whether a miss to this line is already outstanding. */
    bool outstanding(Addr lineAddr) const;

    /**
     * Allocate an entry for a new outstanding miss. `now` stamps the
     * allocation so the leak checker can age entries.
     * @pre !full() && !outstanding(lineAddr)
     */
    void allocate(Addr lineAddr, const MshrTarget &first, Cycle now = 0);

    /**
     * Merge a target into an outstanding entry.
     * @return false if the entry already has the maximum target count.
     */
    bool addTarget(Addr lineAddr, const MshrTarget &target);

    /** Targets waiting on a line (valid only while outstanding). */
    const std::vector<MshrTarget> &targets(Addr lineAddr) const;

    /** Release an entry on fill, returning its targets. */
    std::vector<MshrTarget> release(Addr lineAddr);

    // --- leak detection -------------------------------------------------

    /** Age in cycles of the longest-outstanding entry (0 when empty). */
    Cycle oldestAge(Cycle now) const;

    /**
     * Leak check at a drain point (end of kernel / quiesced system):
     * panic()s listing the stuck lines if any entry is still held.
     */
    void checkDrained(const char *owner) const;

    /**
     * Liveness form of the leak check for use mid-run: an entry older
     * than `maxAge` cycles can no longer be explained by DRAM service
     * or network latency — its fill was lost. panic()s naming the line.
     */
    void checkNoLeaks(Cycle now, Cycle maxAge, const char *owner) const;

  private:
    struct Entry
    {
        std::vector<MshrTarget> targets;
        Cycle allocatedAt = 0;
    };

    /** Outstanding lines in a deterministic (sorted) order; every
     *  iteration over the file goes through this so that reports and
     *  panics never expose hash order. */
    std::vector<Addr> sortedLines() const;

    int entries_;
    int targetsPerEntry_;
    // drlint-allow(unordered-container): lookup by line address only;
    // all iteration goes through sortedLines().
    std::unordered_map<Addr, Entry> map_;
};

} // namespace dr

#endif // DR_MEM_MSHR_HPP

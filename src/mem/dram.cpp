#include "mem/dram.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dr
{

namespace
{

/** Row-buffer size in line-sized columns. */
constexpr int columnsPerRow = 16;  // 2 KB rows with 128 B lines

} // namespace

DramChannel::DramChannel(const MemConfig &cfg)
    : cfg_(cfg), maxQueue_(64), banks_(cfg.banksPerMc)
{
    if (cfg.banksPerMc < 1)
        fatal("DRAM channel needs at least one bank");
}

int
DramChannel::bankOf(Addr lineAddr) const
{
    // Consecutive lines interleave across banks for parallelism.
    return static_cast<int>((lineAddr / cfg_.lineBytes) %
                            banks_.size());
}

Addr
DramChannel::rowOf(Addr lineAddr) const
{
    return lineAddr / cfg_.lineBytes / banks_.size() / columnsPerRow;
}

void
DramChannel::enqueue(const DramRequest &req, Cycle now)
{
    if (queueFull())
        panic("DRAM enqueue on full queue");
    DramRequest queued = req;
    queued.arrived = now;
    queue_.push_back(queued);
}

void
DramChannel::tick(Cycle now)
{
    // One command per cycle. The shared data bus only serializes the
    // bursts themselves; banks pipeline their accesses behind it, so we
    // allow a small burst backlog instead of gating command issue on
    // bus availability.
    if (queue_.empty() ||
        busFreeAt_ > now + static_cast<Cycle>(2 * cfg_.burstCycles)) {
        return;
    }

    // FR-FCFS: oldest row hit to a ready bank first, else oldest request
    // to a ready bank.
    auto ready = [&](const DramRequest &req) {
        const Bank &bank = banks_[bankOf(req.lineAddr)];
        return bank.readyAt <= now;
    };
    auto isRowHit = [&](const DramRequest &req) {
        const Bank &bank = banks_[bankOf(req.lineAddr)];
        return bank.rowOpen && bank.openRow == rowOf(req.lineAddr);
    };

    auto pick = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        if (ready(*it) && isRowHit(*it)) {
            pick = it;
            break;
        }
    }
    if (pick == queue_.end()) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
            const Bank &bank = banks_[bankOf(it->lineAddr)];
            // Activating a closed/other row additionally respects tRRD
            // (activate-to-activate across banks) and tRC (same bank).
            if (!ready(*it))
                continue;
            if (!isRowHit(*it)) {
                if (lastActivateAny_ >= 0 &&
                    lastActivateAny_ + cfg_.tRRD >
                        static_cast<std::int64_t>(now)) {
                    continue;
                }
                if (bank.lastActivate >= 0 &&
                    bank.lastActivate + cfg_.tRC >
                        static_cast<std::int64_t>(now)) {
                    continue;
                }
            }
            pick = it;
            break;
        }
    }
    if (pick == queue_.end())
        return;

    Bank &bank = banks_[bankOf(pick->lineAddr)];
    const Addr row = rowOf(pick->lineAddr);
    Cycle accessDone = now;
    if (bank.rowOpen && bank.openRow == row) {
        ++stats_.rowHits;
        accessDone += cfg_.tCL;
    } else if (!bank.rowOpen) {
        ++stats_.rowMisses;
        accessDone += cfg_.tRCD + cfg_.tCL;
        bank.lastActivate = static_cast<std::int64_t>(now);
        lastActivateAny_ = static_cast<std::int64_t>(now);
    } else {
        ++stats_.rowConflicts;
        accessDone += cfg_.tRP + cfg_.tRCD + cfg_.tCL;
        bank.lastActivate = static_cast<std::int64_t>(now);
        lastActivateAny_ = static_cast<std::int64_t>(now);
    }
    bank.rowOpen = true;
    bank.openRow = row;
    // Writes occupy the bank tWR longer before precharge is possible.
    bank.readyAt = accessDone + (pick->write ? cfg_.tWR : cfg_.tCCD);

    // The shared data bus enforces the channel's aggregate bandwidth
    // (one line burst per burstCycles) but does not serialize bank
    // accesses: bank latencies overlap behind reserved bus slots.
    const Cycle burstStart = std::max(busFreeAt_, now);
    busFreeAt_ = burstStart + cfg_.burstCycles;
    const Cycle finished =
        std::max(accessDone, burstStart) + cfg_.burstCycles;

    if (pick->write)
        ++stats_.writes;
    else
        ++stats_.reads;
    stats_.queueLatency.sample(static_cast<double>(now - pick->arrived));
    stats_.serviceLatency.sample(
        static_cast<double>(finished - pick->arrived));

    // Keep completions sorted: row hits can finish before an earlier
    // row conflict.
    DramCompletion done{pick->lineAddr, pick->write, pick->token,
                        finished};
    auto pos = completions_.end();
    while (pos != completions_.begin() &&
           std::prev(pos)->finished > finished) {
        --pos;
    }
    completions_.insert(pos, done);
    queue_.erase(pick);
}

bool
DramChannel::hasCompletion(Cycle now) const
{
    return !completions_.empty() && completions_.front().finished <= now;
}

DramCompletion
DramChannel::popCompletion()
{
    if (completions_.empty())
        panic("DRAM popCompletion on empty queue");
    DramCompletion done = completions_.front();
    completions_.pop_front();
    return done;
}

int
DramChannel::openRows() const
{
    int count = 0;
    for (const auto &bank : banks_)
        count += bank.rowOpen;
    return count;
}

} // namespace dr

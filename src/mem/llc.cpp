#include "mem/llc.hpp"

#include "common/invariant.hpp"
#include "common/log.hpp"

namespace dr
{

LlcSlice::LlcSlice(NodeId nodeId, const SystemConfig &cfg,
                   const GpuCoherence &coherence, DramChannel &dram,
                   const std::vector<NodeId> &gpuCoreIds)
    : nodeId_(nodeId), cfg_(cfg), coherence_(coherence), dram_(dram),
      gpuIndexOfNode_(static_cast<std::size_t>(cfg.nodeCount()), -1),
      cache_({cfg.mem.llcSliceKB * 1024, cfg.mem.llcAssoc,
              cfg.mem.lineBytes}),
      mshrs_(cfg.mem.llcMshrs, 16)
{
    for (std::size_t i = 0; i < gpuCoreIds.size(); ++i)
        gpuIndexOfNode_[gpuCoreIds[i]] = static_cast<int>(i);
}

bool
LlcSlice::canAccept() const
{
    return static_cast<int>(pipe_.size()) < maxPipe_;
}

void
LlcSlice::accept(const Message &req, Cycle now)
{
    if (!canAccept())
        panic("LLC accept() without canAccept()");
    pipe_.push_back({req, now + static_cast<Cycle>(cfg_.mem.llcLatency)});
}

int
LlcSlice::gpuIndexOf(NodeId core) const
{
    return core == invalidNode ? -1 : gpuIndexOfNode_[core];
}

bool
LlcSlice::pointerValid(const LineMeta &meta) const
{
    const int idx = gpuIndexOf(meta.lastCore);
    return idx >= 0 && coherence_.pointerValid(idx, meta.epoch);
}

Message
LlcSlice::makeReply(const Message &req) const
{
    Message reply;
    reply.type = req.type == MsgType::WriteReq ? MsgType::WriteAck
                                               : MsgType::ReadReply;
    reply.cls = req.cls;
    reply.addr = req.addr;
    reply.src = nodeId_;
    reply.dst = req.requester;
    reply.requester = req.requester;
    reply.id = req.id;
    reply.created = req.created;
    return reply;
}

void
LlcSlice::tick(Cycle now)
{
    // Retry dirty-eviction writebacks that found DRAM full earlier.
    while (!pendingWritebacks_.empty() && !dram_.queueFull()) {
        dram_.enqueue({pendingWritebacks_.front(), true, 0, now}, now);
        pendingWritebacks_.pop_front();
    }

    // Drain DRAM completions into fills and replies.
    while (dram_.hasCompletion(now))
        handleFill(dram_.popCompletion(), now);

    // Process ready pipeline entries; a request that cannot proceed
    // stalls the (in-order) pipeline. The tag pipeline retires one
    // access per cycle.
    int processed = 0;
    while (!pipe_.empty() && pipe_.front().readyAt <= now &&
           processed < 1) {
        ++processed;
        // Gate on reply-queue space: when the memory node cannot drain
        // replies (clogged reply network), the pipeline stalls and the
        // node stops accepting requests — the paper's blocking effect.
        if (static_cast<int>(replies_.size()) >= maxReplies_) {
            ++stats_.stallCycles;
            break;
        }
        const Message req = pipe_.front().msg;
        const Addr line = cache_.lineAddr(req.addr);
        // Probe first and only commit (LRU update, statistics, queue
        // entries) once the access is guaranteed to complete; a stalled
        // head must have no side effects.
        const bool present = cache_.probe(line) != nullptr;

        if (req.type == MsgType::WriteReq) {
            ++stats_.writes;
            if (present) {
                auto *hit = cache_.access(line);
                ++stats_.hits;
                hit->meta.dirty = true;
                if (hit->meta.lastCore != invalidNode) {
                    hit->meta.lastCore = invalidNode;
                    ++stats_.pointerInvalidates;
                }
                replies_.push_back({makeReply(req), false, invalidNode});
                pipe_.pop_front();
                continue;
            }
            // Write-allocate: fetch the line, dirty it on fill, and ack
            // the writer then (GPU L2 behaviour; dirty lines write back
            // on eviction).
            ++stats_.misses;
            MshrTarget target{req.id, req.requester, req.cls, false,
                              true};
            if (mshrs_.outstanding(line)) {
                if (!mshrs_.addTarget(line, target)) {
                    ++stats_.stallCycles;
                    break;
                }
                ++stats_.mshrMerges;
                pipe_.pop_front();
                continue;
            }
            if (mshrs_.full() || dram_.queueFull()) {
                ++stats_.stallCycles;
                break;
            }
            mshrs_.allocate(line, target, now);
            dram_.enqueue({line, false, req.id, now}, now);
            pipe_.pop_front();
            continue;
        }

        // Read path.
        if (present) {
            ++stats_.reads;
            if (req.dnf)
                ++stats_.dnfRequests;
            auto *hit = cache_.access(line);
            ++stats_.hits;
            LlcReply reply{makeReply(req), false, invalidNode};
            const int requesterIdx = gpuIndexOf(req.requester);
            if (requesterIdx >= 0 && !req.dnf && pointerValid(hit->meta) &&
                hit->meta.lastCore != req.requester) {
                reply.delegatable = true;
                reply.delegateTo = hit->meta.lastCore;
                ++stats_.delegatableHits;
            }
            // DR protocol (Section IV): a request that already bounced
            // off a remote L1 carries the Do-Not-Forward bit and must
            // never be re-delegated (that could ping-pong forever), and
            // a delegation pointer naming the requester itself would be
            // a self-forward.
            DR_INVARIANT(!(reply.delegatable && req.dnf),
                         "LLC ", nodeId_, ": DNF request re-delegated for "
                         "line 0x", std::hex, line, std::dec);
            DR_INVARIANT(!reply.delegatable ||
                             reply.delegateTo != req.requester,
                         "LLC ", nodeId_, ": delegation pointer equals "
                         "requester node ", req.requester);
            if (requesterIdx >= 0 && !reply.delegatable) {
                // Track the most recent *directly served* GPU reader
                // (6-bit pointer). A delegatable reply may be converted
                // into a delegation downstream, leaving the requester
                // waiting on another core; repointing at such a waiter
                // lets delayed-hit attachments form a cyclic wait
                // (three cores each holding the next one's forwarded
                // request in their MSHRs — found by drverify, see
                // DESIGN.md §10). Keeping the pointer on the last
                // direct reader means every delegation chain ends at a
                // core whose fill the LLC itself guaranteed.
                hit->meta.lastCore = req.requester;
                hit->meta.epoch = coherence_.epochOf(requesterIdx);
            }
            replies_.push_back(reply);
            pipe_.pop_front();
            continue;
        }

        MshrTarget target{req.id, req.requester, req.cls, false, false};
        if (mshrs_.outstanding(line)) {
            if (!mshrs_.addTarget(line, target)) {
                ++stats_.stallCycles;
                break;  // entry full; retry next cycle
            }
            ++stats_.reads;
            if (req.dnf)
                ++stats_.dnfRequests;
            ++stats_.misses;
            ++stats_.mshrMerges;
            pipe_.pop_front();
            continue;
        }
        if (mshrs_.full() || dram_.queueFull()) {
            ++stats_.stallCycles;
            break;
        }
        ++stats_.reads;
        if (req.dnf)
            ++stats_.dnfRequests;
        ++stats_.misses;
        mshrs_.allocate(line, target, now);
        dram_.enqueue({line, false, req.id, now}, now);
        pipe_.pop_front();
    }
}

void
LlcSlice::handleFill(const DramCompletion &fill, Cycle now)
{
    (void)now;
    if (fill.write)
        return;  // stores and writebacks complete silently
    if (!mshrs_.outstanding(fill.lineAddr))
        return;  // stale fill after a flush; drop

    auto targets = mshrs_.release(fill.lineAddr);

    LineMeta meta;
    for (const auto &t : targets) {
        if (t.write) {
            // A write to the freshly filled line: dirty it and clear
            // the pointer (other cores must re-fetch the latest copy).
            meta.dirty = true;
            meta.lastCore = invalidNode;
            continue;
        }
        const int idx = gpuIndexOf(t.replyTo);
        if (idx >= 0) {
            meta.lastCore = t.replyTo;
            meta.epoch = coherence_.epochOf(idx);
        }
    }
    const auto evicted = cache_.insert(fill.lineAddr, meta);
    if (evicted && evicted->meta.dirty) {
        ++stats_.writebacks;
        if (!dram_.queueFull())
            dram_.enqueue({evicted->addr, true, 0, now}, now);
        else
            pendingWritebacks_.push_back(evicted->addr);
    }

    for (const auto &t : targets) {
        Message reply;
        reply.type = t.write ? MsgType::WriteAck : MsgType::ReadReply;
        reply.cls = t.cls;
        reply.addr = fill.lineAddr;
        reply.src = nodeId_;
        reply.dst = t.replyTo;
        reply.requester = t.replyTo;
        reply.id = t.reqId;
        replies_.push_back({reply, false, invalidNode});
    }
}

LlcReply
LlcSlice::popReply()
{
    if (replies_.empty())
        panic("LLC popReply on empty queue");
    LlcReply reply = replies_.front();
    replies_.pop_front();
    return reply;
}

NodeId
LlcSlice::pointerOf(Addr addr) const
{
    const auto *line = cache_.probe(cache_.lineAddr(addr));
    if (!line || !pointerValid(line->meta))
        return invalidNode;
    return line->meta.lastCore;
}

} // namespace dr

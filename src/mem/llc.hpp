#ifndef DR_MEM_LLC_HPP
#define DR_MEM_LLC_HPP

/**
 * @file
 * One shared-LLC slice (1 MB per memory controller, Table I). Besides a
 * conventional non-inclusive cache with MSHRs in front of DRAM, the
 * slice stores the Delegated Replies *core pointer*: the GPU core that
 * most recently read each line (6 bits for 40 cores). Pointer validity
 * is epoch-checked against the GPU software-coherence state so that L1
 * flushes bulk-invalidate stale pointers, and writes clear the pointer
 * so readers always get the most recent copy (Section IV).
 */

#include <algorithm>
#include <deque>

#include "coherence/gpu_coherence.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/mshr.hpp"

namespace dr
{

/** A reply the slice wants to send, plus its delegation eligibility. */
struct LlcReply
{
    Message msg;
    bool delegatable = false;
    NodeId delegateTo = invalidNode;  //!< GPU core named by the pointer
};

/** LLC slice statistics. */
struct LlcStats
{
    Counter reads;
    Counter writes;
    Counter hits;
    Counter misses;
    Counter mshrMerges;
    Counter stallCycles;        //!< head-of-pipe could not proceed
    Counter delegatableHits;    //!< GPU read hits with a valid pointer
    Counter dnfRequests;        //!< remote misses returned with DNF set
    Counter pointerInvalidates; //!< pointers cleared by writes
    Counter writebacks;         //!< dirty evictions sent to DRAM
};

/**
 * The LLC slice pipeline. The owner (MemNode) pushes ejected requests
 * in via accept(), ticks the slice, and drains replies from the output
 * queue; a full output queue stalls the pipeline, which is how reply-
 * network clogging back-pressures into the request network.
 */
class LlcSlice
{
  public:
    LlcSlice(NodeId nodeId, const SystemConfig &cfg,
             const GpuCoherence &coherence, DramChannel &dram,
             const std::vector<NodeId> &gpuCoreIds);

    /** Whether the input pipeline can take one more request. */
    bool canAccept() const;

    /** Push an ejected request into the pipeline. @pre canAccept() */
    void accept(const Message &req, Cycle now);

    /** Advance one cycle: drain DRAM fills, process ready requests. */
    void tick(Cycle now);

    bool hasReply() const { return !replies_.empty(); }
    const LlcReply &peekReply() const { return replies_.front(); }
    LlcReply popReply();

    /**
     * Earliest future cycle at which ticking the slice could have any
     * effect, given no new accept() arrives (idle-skip watermark,
     * DESIGN.md §13). Queued replies and retried writebacks are
     * per-cycle work; the in-order pipeline's next event is its head's
     * readyAt; DRAM fills are covered by the channel's own watermark.
     */
    Cycle nextEventCycle(Cycle now) const
    {
        if (!replies_.empty() || !pendingWritebacks_.empty())
            return now + 1;
        if (!pipe_.empty())
            return std::max(pipe_.front().readyAt, now + 1);
        return kNeverCycle;
    }

    const LlcStats &stats() const { return stats_; }

    /** Core-pointer of a line (invalidNode when absent/stale). */
    NodeId pointerOf(Addr addr) const;

    /** Valid lines in the tag store (diagnostics). */
    int validLines() const { return cache_.validLines(); }

    /** Outstanding MSHR entries (diagnostics / leak detection). */
    int mshrUsed() const { return mshrs_.used(); }

    /** Age of the longest-outstanding MSHR entry. */
    Cycle mshrOldestAge(Cycle now) const { return mshrs_.oldestAge(now); }

    /** panic() if any MSHR entry has been outstanding beyond `maxAge`. */
    void checkMshrLeaks(Cycle now, Cycle maxAge) const
    {
        mshrs_.checkNoLeaks(now, maxAge, "LLC");
    }

  private:
    struct LineMeta
    {
        NodeId lastCore = invalidNode;  //!< GPU core of the last read
        std::uint32_t epoch = 0;        //!< flush epoch at pointer write
        bool dirty = false;
    };

    struct PipeEntry
    {
        Message msg;
        Cycle readyAt;
    };

    void processRequest(const Message &req, Cycle now);
    void handleFill(const DramCompletion &fill, Cycle now);
    bool pointerValid(const LineMeta &meta) const;
    int gpuIndexOf(NodeId core) const;
    Message makeReply(const Message &req) const;

    NodeId nodeId_;
    const SystemConfig &cfg_;
    const GpuCoherence &coherence_;
    DramChannel &dram_;
    /** Maps NoC node id -> GPU core index (or -1). */
    std::vector<int> gpuIndexOfNode_;

    SetAssocCache<LineMeta> cache_;
    MshrFile mshrs_;
    std::deque<PipeEntry> pipe_;
    std::deque<LlcReply> replies_;
    std::deque<Addr> pendingWritebacks_;

    static constexpr int maxPipe_ = 8;
    static constexpr int maxReplies_ = 4;

    LlcStats stats_;
};

} // namespace dr

#endif // DR_MEM_LLC_HPP

#ifndef DR_MEM_MEM_NODE_HPP
#define DR_MEM_MEM_NODE_HPP

/**
 * @file
 * A memory node: LLC slice + memory controller + network endpoint. This
 * is where Delegated Replies acts: when a delegatable GPU reply cannot
 * enter the clogged reply-network injection buffer, the node instead
 * sends a one-flit delegated reply over the under-utilized request
 * network to the core named by the LLC core pointer (Section II).
 */

#include "coherence/mesi.hpp"
#include "common/config.hpp"
#include "common/ownership.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/dram.hpp"
#include "mem/llc.hpp"
#include "noc/interconnect.hpp"

namespace dr
{

/** Memory-node statistics. */
struct MemNodeStats
{
    Counter requestsAccepted;
    Counter repliesSent;
    Counter delegations;       //!< replies converted to delegated replies
    Counter blockedCycles;     //!< cycles the head reply could not inject
    Counter cpuPenaltyCycles;  //!< MESI invalidation/downgrade latency
    Counter activeCycles;      //!< tick() calls (blocking-rate denominator)
};

/**
 * One memory node endpoint. The HeteroSystem ticks every memory node
 * each cycle after the interconnect.
 *
 * Pre-classified for the ROADMAP's memory-node partitioning (DESIGN.md
 * §12): the DRAM channel, LLC slice, and stats are private to this
 * node, so the object is DR_DOMAIN_OWNED. The MesiDirectory reference
 * is shared across nodes and stays DR_SERIAL_ONLY at its definition.
 */
class DR_DOMAIN_OWNED MemNode
{
  public:
    MemNode(NodeId nodeId, const SystemConfig &cfg, Interconnect &ic,
            const GpuCoherence &coherence, MesiDirectory &mesi,
            const std::vector<NodeId> &gpuCoreIds,
            const std::vector<NodeId> &cpuCoreIds);

    void tick(Cycle now);

    NodeId nodeId() const { return nodeId_; }
    const MemNodeStats &stats() const { return stats_; }
    const LlcStats &llcStats() const { return llc_.stats(); }
    const DramStats &dramStats() const { return dram_.stats(); }
    LlcSlice &llc() { return llc_; }
    const LlcSlice &llc() const { return llc_; }
    DramChannel &dram() { return dram_; }

    /** Fraction of cycles the node could not inject its head reply. */
    double blockingRate() const;

    void resetStats();

  private:
    void drainReplies(Cycle now);
    void acceptRequests(Cycle now);

    NodeId nodeId_;
    const SystemConfig &cfg_;
    Interconnect &ic_;
    MesiDirectory &mesi_;
    DramChannel dram_ DR_DOMAIN_OWNED;
    LlcSlice llc_ DR_DOMAIN_OWNED;
    std::vector<int> cpuIndexOfNode_;
    MemNodeStats stats_ DR_DOMAIN_OWNED;
};

} // namespace dr

#endif // DR_MEM_MEM_NODE_HPP

#ifndef DR_MEM_MEM_NODE_HPP
#define DR_MEM_MEM_NODE_HPP

/**
 * @file
 * A memory node: LLC slice + memory controller + network endpoint. This
 * is where Delegated Replies acts: when a delegatable GPU reply cannot
 * enter the clogged reply-network injection buffer, the node instead
 * sends a one-flit delegated reply over the under-utilized request
 * network to the core named by the LLC core pointer (Section II).
 */

#include "coherence/mesi.hpp"
#include "common/config.hpp"
#include "common/ownership.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/dram.hpp"
#include "mem/llc.hpp"
#include "noc/interconnect.hpp"

namespace dr
{

/** Memory-node statistics. */
struct MemNodeStats
{
    Counter requestsAccepted;
    Counter repliesSent;
    Counter delegations;       //!< replies converted to delegated replies
    Counter blockedCycles;     //!< cycles the head reply could not inject
    Counter cpuPenaltyCycles;  //!< MESI invalidation/downgrade latency
    Counter activeCycles;      //!< ticked + skipped cycles (blocking-rate
                               //!< denominator; see onSkip())
};

/**
 * One memory node endpoint. The HeteroSystem ticks every memory node
 * each cycle after the interconnect — in the endpoint compute phase,
 * pinned to the domain of the node's attach router (DESIGN.md §13).
 *
 * The DRAM channel, LLC slice, stats and the node's MESI directory
 * bank are private to this node, so the object is DR_DOMAIN_OWNED.
 * The bank partitioning is exact: CPU requests are CPU-line-aligned,
 * so each line has a single home memory node and banks never overlap.
 */
class DR_DOMAIN_OWNED MemNode
{
  public:
    /** Cycles one MESI invalidation/downgrade round trip costs. */
    static constexpr Cycle kMesiInvalidationPenalty = 20;

    MemNode(NodeId nodeId, const SystemConfig &cfg, Interconnect &ic,
            const GpuCoherence &coherence,
            const std::vector<NodeId> &gpuCoreIds,
            const std::vector<NodeId> &cpuCoreIds);

    void tick(Cycle now) DR_ENDPOINT_PHASE;

    /** Endpoint compute domain (engine partition time; -1 = any). */
    void setDomain(int domain) { domain_ = domain; }

    /**
     * Earliest future cycle at which ticking this node could have any
     * effect, assuming no new network input arrives (the caller proves
     * that separately via the all-domains quiescence vote). Used by
     * the idle-skip fast path; must be conservative (DESIGN.md §13).
     */
    Cycle nextEventCycle(Cycle now) const;

    /**
     * Account for `cycles` skipped idle cycles: the only per-cycle
     * effect a provably idle tick has is the activeCycles counter
     * (the blocking-rate denominator), so compensate it here to keep
     * skip on/off bit-identical.
     */
    void onSkip(Cycle cycles) { stats_.activeCycles += cycles; }

    NodeId nodeId() const { return nodeId_; }
    const MemNodeStats &stats() const { return stats_; }
    const LlcStats &llcStats() const { return llc_.stats(); }
    const DramStats &dramStats() const { return dram_.stats(); }
    LlcSlice &llc() { return llc_; }
    const LlcSlice &llc() const { return llc_; }
    DramChannel &dram() { return dram_; }
    const MesiDirectory &mesi() const { return mesi_; }

    /** Fraction of cycles the node could not inject its head reply. */
    double blockingRate() const;

    void resetStats();

  private:
    void drainReplies(Cycle now) DR_ENDPOINT_PHASE;
    void acceptRequests(Cycle now) DR_ENDPOINT_PHASE;

    NodeId nodeId_;
    const SystemConfig &cfg_;
    Interconnect &ic_;
    MesiDirectory mesi_ DR_DOMAIN_OWNED;  //!< this node's directory bank
    DramChannel dram_ DR_DOMAIN_OWNED;
    LlcSlice llc_ DR_DOMAIN_OWNED;
    std::vector<int> cpuIndexOfNode_;
    MemNodeStats stats_ DR_DOMAIN_OWNED;
    int domain_ = -1;
};

} // namespace dr

#endif // DR_MEM_MEM_NODE_HPP

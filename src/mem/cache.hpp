#ifndef DR_MEM_CACHE_HPP
#define DR_MEM_CACHE_HPP

/**
 * @file
 * Generic set-associative tag store with true-LRU replacement. Used for
 * GPU L1 caches (with write-through metadata) and LLC slices (with the
 * Delegated Replies core pointer as per-line metadata).
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/types.hpp"

namespace dr
{

/** Geometry of a set-associative cache. */
struct CacheParams
{
    int sizeBytes = 0;
    int assoc = 0;
    int lineBytes = 0;

    int sets() const { return sizeBytes / (assoc * lineBytes); }
};

/**
 * Set-associative tag store. `MetaT` attaches per-line metadata (e.g.,
 * the LLC core pointer). The cache tracks tags only — the simulator
 * never models data contents.
 */
template <typename MetaT>
class SetAssocCache
{
  public:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        MetaT meta{};
    };

    explicit SetAssocCache(const CacheParams &params)
        : params_(params), sets_(params.sets()),
          lines_(static_cast<std::size_t>(sets_) * params.assoc),
          lru_(lines_.size(), 0)
    {
        if (params.sizeBytes <= 0 || params.assoc <= 0 ||
            params.lineBytes <= 0) {
            fatal("cache: all geometry parameters must be positive");
        }
        if (params.sizeBytes % (params.assoc * params.lineBytes) != 0)
            fatal("cache: size must be a whole number of sets");
        // Division/modulo indexing supports non-power-of-two set counts
        // (e.g., the 48 KB GPU L1 has 96 sets).
    }

    int sets() const { return sets_; }
    int assoc() const { return params_.assoc; }
    int lineBytes() const { return params_.lineBytes; }

    /** Line-aligned address. */
    Addr lineAddr(Addr addr) const
    {
        return addr & ~static_cast<Addr>(params_.lineBytes - 1);
    }

    /**
     * Look up a line and update LRU on hit.
     * @return the hit line or nullptr.
     */
    Line *
    access(Addr addr)
    {
        const int set = setOf(addr);
        const Addr tag = tagOf(addr);
        for (int w = 0; w < params_.assoc; ++w) {
            Line &line = lines_[index(set, w)];
            if (line.valid && line.tag == tag) {
                touch(set, w);
                return &line;
            }
        }
        return nullptr;
    }

    /** Look up without disturbing LRU state. */
    const Line *
    probe(Addr addr) const
    {
        const int set = setOf(addr);
        const Addr tag = tagOf(addr);
        for (int w = 0; w < params_.assoc; ++w) {
            const Line &line = lines_[index(set, w)];
            if (line.valid && line.tag == tag)
                return &line;
        }
        return nullptr;
    }

    /** An evicted line: address plus its metadata at eviction time. */
    struct Evicted
    {
        Addr addr;
        MetaT meta;
    };

    /**
     * Insert a line (allocate-on-miss), evicting the LRU way.
     * @return the victim (address + metadata) if a valid line was evicted.
     */
    std::optional<Evicted>
    insert(Addr addr, const MetaT &meta)
    {
        const int set = setOf(addr);
        const Addr tag = tagOf(addr);
        int victim = 0;
        std::uint64_t oldest = UINT64_MAX;
        for (int w = 0; w < params_.assoc; ++w) {
            Line &line = lines_[index(set, w)];
            if (line.valid && line.tag == tag) {
                // Re-insert over an existing line: refresh metadata.
                line.meta = meta;
                touch(set, w);
                return std::nullopt;
            }
            if (!line.valid) {
                victim = w;
                oldest = 0;
            } else if (lru_[index(set, w)] < oldest) {
                victim = w;
                oldest = lru_[index(set, w)];
            }
        }
        Line &line = lines_[index(set, victim)];
        std::optional<Evicted> evicted;
        if (line.valid)
            evicted = Evicted{reconstruct(set, line.tag), line.meta};
        line.valid = true;
        line.tag = tag;
        line.meta = meta;
        touch(set, victim);
        return evicted;
    }

    /**
     * Whether insert(addr) would evict a valid line, judged against the
     * current contents without mutating anything: the line is absent
     * and its set has no free way. Staged L1 organizations predict a
     * fill's eviction signal from the frozen pre-cycle tags with this.
     */
    bool
    wouldEvict(Addr addr) const
    {
        const int set = setOf(addr);
        const Addr tag = tagOf(addr);
        for (int w = 0; w < params_.assoc; ++w) {
            const Line &line = lines_[index(set, w)];
            if (!line.valid || line.tag == tag)
                return false;
        }
        return true;
    }

    /** Invalidate one line if present. @return true if it was present. */
    bool
    invalidate(Addr addr)
    {
        const int set = setOf(addr);
        const Addr tag = tagOf(addr);
        for (int w = 0; w < params_.assoc; ++w) {
            Line &line = lines_[index(set, w)];
            if (line.valid && line.tag == tag) {
                line.valid = false;
                return true;
            }
        }
        return false;
    }

    /** Invalidate everything (kernel-boundary flush). */
    void
    flushAll()
    {
        for (auto &line : lines_)
            line.valid = false;
    }

    /** Apply `fn` to every valid line. */
    void
    forEachLine(const std::function<void(Addr, MetaT &)> &fn)
    {
        for (int set = 0; set < sets_; ++set) {
            for (int w = 0; w < params_.assoc; ++w) {
                Line &line = lines_[index(set, w)];
                if (line.valid)
                    fn(reconstruct(set, line.tag), line.meta);
            }
        }
    }

    /** Number of valid lines (diagnostics). */
    int
    validLines() const
    {
        int count = 0;
        for (const auto &line : lines_)
            count += line.valid;
        return count;
    }

  private:
    int setOf(Addr addr) const
    {
        return static_cast<int>((addr / params_.lineBytes) % sets_);
    }

    Addr tagOf(Addr addr) const
    {
        return addr / params_.lineBytes / sets_;
    }

    Addr reconstruct(int set, Addr tag) const
    {
        return (tag * sets_ + set) * params_.lineBytes;
    }

    std::size_t index(int set, int way) const
    {
        return static_cast<std::size_t>(set) * params_.assoc + way;
    }

    void touch(int set, int way) { lru_[index(set, way)] = ++clock_; }

    CacheParams params_;
    int sets_;
    std::vector<Line> lines_;
    std::vector<std::uint64_t> lru_;
    std::uint64_t clock_ = 0;
};

} // namespace dr

#endif // DR_MEM_CACHE_HPP

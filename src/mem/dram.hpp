#ifndef DR_MEM_DRAM_HPP
#define DR_MEM_DRAM_HPP

/**
 * @file
 * One GDDR5 memory channel behind a memory controller: banked row
 * buffers with tRCD/tCL/tRP/tRC timing, an FR-FCFS scheduler (row hits
 * first, then oldest), and a shared data bus occupied for `burstCycles`
 * per line transfer. Timing parameters follow Table I of the paper.
 */

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/ownership.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace dr
{

/** A request queued at the memory controller. */
struct DramRequest
{
    Addr lineAddr = 0;
    bool write = false;
    std::uint64_t token = 0;  //!< caller's tag, returned on completion
    Cycle arrived = 0;
};

/** A finished access ready for pickup. */
struct DramCompletion
{
    Addr lineAddr = 0;
    bool write = false;
    std::uint64_t token = 0;
    Cycle finished = 0;
};

/** DRAM channel statistics. */
struct DramStats
{
    Counter reads;
    Counter writes;
    Counter rowHits;
    Counter rowMisses;
    Counter rowConflicts;
    Average queueLatency;    //!< arrival to issue
    Average serviceLatency;  //!< arrival to completion
};

/**
 * One memory channel (one per memory node). Cycle-driven: the owner
 * calls tick() every core cycle and drains completions.
 */
class DramChannel
{
  public:
    explicit DramChannel(const MemConfig &cfg);

    bool queueFull() const
    {
        return static_cast<int>(queue_.size()) >= maxQueue_;
    }
    int queued() const { return static_cast<int>(queue_.size()); }

    /** Enqueue a line access. @pre !queueFull() */
    void enqueue(const DramRequest &req, Cycle now);

    /** Advance one cycle; issues at most one command per cycle. */
    void tick(Cycle now);

    bool hasCompletion(Cycle now) const;
    DramCompletion popCompletion();

    /**
     * Earliest future cycle at which ticking the channel could have
     * any effect, given no new enqueue() arrives (idle-skip watermark,
     * DESIGN.md §13). Queued commands may issue every cycle; with the
     * queue empty the next event is the earliest completion maturing
     * (completions_ is kept sorted by finish time at insertion).
     */
    Cycle nextEventCycle(Cycle now) const
    {
        if (!queue_.empty())
            return now + 1;
        if (!completions_.empty())
            return std::max(completions_.front().finished, now + 1);
        return kNeverCycle;
    }

    const DramStats &stats() const { return stats_; }

    /** Rows currently open (diagnostics). */
    int openRows() const;

  private:
    struct Bank
    {
        bool rowOpen = false;
        Addr openRow = 0;
        Cycle readyAt = 0;            //!< bank free for a new command
        std::int64_t lastActivate = -1;  //!< enforce tRC between activates
    };

    int bankOf(Addr lineAddr) const;
    Addr rowOf(Addr lineAddr) const;

    // One DRAM channel belongs to one MemNode, so its queues and bank
    // state are owned by that endpoint's compute domain (DESIGN.md
    // §14 reachability: LlcSlice reaches the channel through a
    // reference, so the classification must be explicit).
    MemConfig cfg_ DR_SERIAL_ONLY;
    int maxQueue_ DR_SERIAL_ONLY;
    std::vector<Bank> banks_ DR_DOMAIN_OWNED;
    std::deque<DramRequest> queue_ DR_DOMAIN_OWNED;
    std::deque<DramCompletion> completions_ DR_DOMAIN_OWNED;
    Cycle busFreeAt_ DR_DOMAIN_OWNED = 0;
    std::int64_t lastActivateAny_ DR_DOMAIN_OWNED = -1;  //!< tRRD
    DramStats stats_ DR_DOMAIN_OWNED;
};

} // namespace dr

#endif // DR_MEM_DRAM_HPP

#include "core/stats_report.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/log.hpp"

namespace dr
{

void
StatsReport::add(std::string path, double value)
{
    entries_.push_back({std::move(path), value});
}

StatsReport
StatsReport::capture(const HeteroSystem &system, Cycle measuredCycles)
{
    StatsReport report;
    const RunResults r = system.collect(measuredCycles);

    report.add("sim.cycles", static_cast<double>(measuredCycles));
    report.add("sim.gpuIpc", r.gpuIpc);
    report.add("sim.cpuIpc", r.cpuIpc);
    report.add("sim.cpuLatency", r.cpuLatency);
    report.add("sim.gpuDataRate", r.gpuDataRate);
    report.add("sim.memBlockingRate", r.memBlockingRate);
    report.add("sim.gpuL1MissRate", r.gpuL1MissRate);
    report.add("sim.llcHitRate", r.llcHitRate);
    report.add("sim.remoteCopyFraction", r.remoteCopyFraction());
    report.add("sim.forwardedFraction", r.forwardedFraction());
    report.add("sim.remoteHitRate", r.remoteHitRate());

    for (int i = 0; i < system.gpuCoreCount(); ++i) {
        const SmCoreStats &s = system.gpuCore(i).stats();
        std::ostringstream prefix;
        prefix << "gpu" << i << ".";
        const std::string p = prefix.str();
        report.add(p + "instructions",
                   static_cast<double>(s.instructions.value()));
        report.add(p + "loads", static_cast<double>(s.loads.value()));
        report.add(p + "stores", static_cast<double>(s.stores.value()));
        report.add(p + "l1Hits", static_cast<double>(s.l1Hits.value()));
        report.add(p + "l1Misses",
                   static_cast<double>(s.l1Misses.value()));
        report.add(p + "mshrMerges",
                   static_cast<double>(s.mshrMerges.value()));
        report.add(p + "llcRequests",
                   static_cast<double>(s.llcRequests.value()));
        report.add(p + "frqReceived",
                   static_cast<double>(s.frqReceived.value()));
        report.add(p + "frqRemoteHits",
                   static_cast<double>(s.frqRemoteHits.value()));
        report.add(p + "frqDelayedHits",
                   static_cast<double>(s.frqDelayedHits.value()));
        report.add(p + "frqRemoteMisses",
                   static_cast<double>(s.frqRemoteMisses.value()));
        report.add(p + "probesSent",
                   static_cast<double>(s.probesSent.value()));
        report.add(p + "stallNoMshr",
                   static_cast<double>(s.stallNoMshr.value()));
        report.add(p + "stallInject",
                   static_cast<double>(s.stallInject.value()));
        report.add(p + "loadLatency", s.loadLatency.mean());
    }

    for (int i = 0; i < system.cpuCoreCount(); ++i) {
        const CpuNodeStats &s = system.cpuCore(i).stats();
        std::ostringstream prefix;
        prefix << "cpu" << i << ".";
        const std::string p = prefix.str();
        report.add(p + "retired", static_cast<double>(s.retired.value()));
        report.add(p + "accesses",
                   static_cast<double>(s.accesses.value()));
        report.add(p + "l1Hits", static_cast<double>(s.l1Hits.value()));
        report.add(p + "requestsSent",
                   static_cast<double>(s.requestsSent.value()));
        report.add(p + "blockedCycles",
                   static_cast<double>(s.blockedCycles.value()));
        report.add(p + "requestLatency", s.requestLatency.mean());
    }

    for (int i = 0; i < system.memNodeCount(); ++i) {
        const MemNode &node = system.memNode(i);
        std::ostringstream prefix;
        prefix << "mem" << i << ".";
        const std::string p = prefix.str();
        report.add(p + "requestsAccepted",
                   static_cast<double>(
                       node.stats().requestsAccepted.value()));
        report.add(p + "repliesSent",
                   static_cast<double>(node.stats().repliesSent.value()));
        report.add(p + "delegations",
                   static_cast<double>(node.stats().delegations.value()));
        report.add(p + "blockedCycles",
                   static_cast<double>(
                       node.stats().blockedCycles.value()));
        report.add(p + "blockingRate", node.blockingRate());
        report.add(p + "llcHits",
                   static_cast<double>(node.llcStats().hits.value()));
        report.add(p + "llcMisses",
                   static_cast<double>(node.llcStats().misses.value()));
        report.add(p + "llcStallCycles",
                   static_cast<double>(
                       node.llcStats().stallCycles.value()));
        report.add(p + "dramReads",
                   static_cast<double>(node.dramStats().reads.value()));
        report.add(p + "dramWrites",
                   static_cast<double>(node.dramStats().writes.value()));
        report.add(p + "dramRowHits",
                   static_cast<double>(node.dramStats().rowHits.value()));
    }

    for (const NetKind kind : {NetKind::Request, NetKind::Reply}) {
        const Network &net = system.interconnect().net(kind);
        const std::string p =
            kind == NetKind::Request ? "net.request." : "net.reply.";
        report.add(p + "packetsInjected",
                   static_cast<double>(
                       net.stats().packetsInjected.value()));
        report.add(p + "packetsDelivered",
                   static_cast<double>(
                       net.stats().packetsDelivered.value()));
        report.add(p + "flitsDelivered",
                   static_cast<double>(net.stats().flitsDelivered.value()));
        report.add(p + "packetLatency", net.stats().packetLatency.mean());
        report.add(p + "cpuPacketLatency",
                   net.stats().cpuPacketLatency.mean());
        report.add(p + "gpuPacketLatency",
                   net.stats().gpuPacketLatency.mean());
        for (int vn = 0; vn < numVnets; ++vn) {
            const std::string vp =
                p + "vnet." + vnetName(static_cast<VirtualNet>(vn)) + ".";
            report.add(vp + "packetsInjected",
                       static_cast<double>(
                           net.stats().vnPacketsInjected[vn].value()));
            report.add(vp + "flitsDelivered",
                       static_cast<double>(
                           net.stats().vnFlitsDelivered[vn].value()));
            report.add(vp + "injectionStalls",
                       static_cast<double>(
                           net.stats().vnInjectionStalls[vn].value()));
            report.add(vp + "peakFlits",
                       static_cast<double>(net.stats().vnPeakFlits[vn]));
            report.add(vp + "flitsPerCycle",
                       measuredCycles > 0
                           ? static_cast<double>(
                                 net.stats().vnFlitsDelivered[vn].value()) /
                                 static_cast<double>(measuredCycles)
                           : 0.0);
        }
        if (net.topology().kind() == TopologyKind::ChipletMesh) {
            // Interposer link class (chiplet meshes): hop count, peak
            // occupancy of the narrow links' downstream buffers, and
            // mean utilization per interposer link over the window.
            const std::string ip = p + "interposer.";
            const auto flits = net.stats().interposerFlits.value();
            report.add(ip + "flits", static_cast<double>(flits));
            report.add(ip + "peakFlits",
                       static_cast<double>(
                           net.stats().interposerPeakFlits));
            const int links = net.topology().interposerLinkCount();
            report.add(ip + "links", static_cast<double>(links));
            report.add(ip + "linkUtilization",
                       measuredCycles > 0 && links > 0
                           ? static_cast<double>(flits) /
                                 (static_cast<double>(links) *
                                  static_cast<double>(measuredCycles))
                           : 0.0);
        }
        if (system.interconnect().shared())
            break;  // one physical network
    }
    return report;
}

double
StatsReport::value(const std::string &path) const
{
    for (const auto &e : entries_) {
        if (e.path == path)
            return e.value;
    }
    fatal("stats: unknown path '", path, "'");
}

bool
StatsReport::has(const std::string &path) const
{
    return std::any_of(entries_.begin(), entries_.end(),
                       [&](const StatEntry &e) { return e.path == path; });
}

double
StatsReport::sum(const std::string &prefix) const
{
    double total = 0.0;
    for (const auto &e : entries_) {
        if (e.path.rfind(prefix, 0) == 0)
            total += e.value;
    }
    return total;
}

void
StatsReport::writeText(std::ostream &out) const
{
    for (const auto &e : entries_)
        out << e.path << " " << e.value << "\n";
}

void
StatsReport::writeCsv(std::ostream &out) const
{
    out << "stat,value\n";
    for (const auto &e : entries_)
        out << e.path << "," << e.value << "\n";
}

void
StatsReport::writeJson(std::ostream &out) const
{
    out << "{\n";
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        out << "  \"" << entries_[i].path << "\": " << entries_[i].value;
        out << (i + 1 < entries_.size() ? ",\n" : "\n");
    }
    out << "}\n";
}

} // namespace dr

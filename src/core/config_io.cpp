#include "core/config_io.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <ostream>
#include <sstream>

#include "common/log.hpp"

namespace dr
{

namespace
{

std::string
trim(const std::string &s)
{
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos)
        return "";
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

// Malformed input is a user error, not a simulator bug: report through
// fatal() like every other configuration problem instead of throwing.
// std::from_chars / strtod never throw, so no try/catch is needed.
int
parseInt(const std::string &key, const std::string &value)
{
    int parsed = 0;
    const char *first = value.data();
    const char *last = first + value.size();
    const auto [ptr, ec] = std::from_chars(first, last, parsed);
    if (ec != std::errc{} || ptr != last || value.empty())
        fatal("config: '", key, "' expects an integer, got '", value, "'");
    return parsed;
}

/** Cycle counts are unsigned: reject negatives instead of wrapping. */
Cycle
parseCycles(const std::string &key, const std::string &value)
{
    const int parsed = parseInt(key, value);
    if (parsed < 0)
        fatal("config: '", key, "' expects a non-negative cycle count, ",
              "got '", value, "'");
    return static_cast<Cycle>(parsed);
}

double
parseDouble(const std::string &key, const std::string &value)
{
    errno = 0;
    char *parseEnd = nullptr;
    const double parsed = std::strtod(value.c_str(), &parseEnd);
    if (errno != 0 || value.empty() ||
        parseEnd != value.c_str() + value.size()) {
        fatal("config: '", key, "' expects a number, got '", value, "'");
    }
    return parsed;
}

/** Comma-separated integer list; an empty value is an empty list. */
std::vector<int>
parseIntList(const std::string &key, const std::string &value)
{
    std::vector<int> out;
    if (value.empty())
        return out;
    std::stringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ','))
        out.push_back(parseInt(key, trim(item)));
    return out;
}

bool
parseBool(const std::string &key, const std::string &value)
{
    if (value == "true" || value == "1")
        return true;
    if (value == "false" || value == "0")
        return false;
    fatal("config: '", key, "' expects true/false, got '", value, "'");
}

Mechanism
parseMechanism(const std::string &value)
{
    if (value == "baseline")
        return Mechanism::Baseline;
    if (value == "rp" || value == "realistic-probing")
        return Mechanism::RealisticProbing;
    if (value == "dr" || value == "delegated-replies")
        return Mechanism::DelegatedReplies;
    fatal("config: unknown mechanism '", value, "'");
}

ChipLayout
parseLayout(const std::string &value)
{
    if (value == "baseline" || value == "A")
        return ChipLayout::Baseline;
    if (value == "B")
        return ChipLayout::LayoutB;
    if (value == "C")
        return ChipLayout::LayoutC;
    if (value == "D")
        return ChipLayout::LayoutD;
    fatal("config: unknown layout '", value, "'");
}

TopologyKind
parseTopology(const std::string &value)
{
    if (value == "mesh")
        return TopologyKind::Mesh;
    if (value == "crossbar")
        return TopologyKind::Crossbar;
    if (value == "flattened-butterfly" || value == "flatfly")
        return TopologyKind::FlattenedButterfly;
    if (value == "dragonfly")
        return TopologyKind::Dragonfly;
    if (value == "chiplet-mesh" || value == "chiplet")
        return TopologyKind::ChipletMesh;
    fatal("config: unknown topology '", value, "'");
}

RoutingKind
parseRouting(const std::string &value)
{
    if (value == "XY" || value == "xy")
        return RoutingKind::DimOrderXY;
    if (value == "YX" || value == "yx")
        return RoutingKind::DimOrderYX;
    if (value == "DyXY" || value == "dyxy")
        return RoutingKind::DyXY;
    if (value == "footprint" || value == "Footprint")
        return RoutingKind::Footprint;
    if (value == "HARE" || value == "hare")
        return RoutingKind::Hare;
    if (value == "table" || value == "table-minimal")
        return RoutingKind::TableMinimal;
    if (value == "chiplet" || value == "chiplet-hierarchical")
        return RoutingKind::ChipletHierarchical;
    fatal("config: unknown routing '", value, "'");
}

L1Organization
parseL1Org(const std::string &value)
{
    if (value == "private")
        return L1Organization::Private;
    if (value == "dc-l1" || value == "DC-L1")
        return L1Organization::DcL1;
    if (value == "dyneb" || value == "DynEB")
        return L1Organization::DynEB;
    fatal("config: unknown L1 organization '", value, "'");
}

CtaSchedule
parseCta(const std::string &value)
{
    if (value == "round-robin" || value == "rr")
        return CtaSchedule::RoundRobin;
    if (value == "distributed")
        return CtaSchedule::Distributed;
    fatal("config: unknown CTA schedule '", value, "'");
}

} // namespace

void
applyConfigOption(SystemConfig &cfg, const std::string &rawKey,
                  const std::string &rawValue)
{
    const std::string key = trim(rawKey);
    const std::string value = trim(rawValue);
    using Handler = std::function<void()>;
    const std::map<std::string, Handler> handlers = {
        {"mechanism", [&] { cfg.mechanism = parseMechanism(value); }},
        {"layout", [&] { cfg.layout = parseLayout(value); }},
        {"seed", [&] { cfg.seed = parseInt(key, value); }},
        {"sim.cycles", [&] { cfg.simCycles = parseCycles(key, value); }},
        {"sim.warmup", [&] { cfg.warmupCycles = parseCycles(key, value); }},
        {"sim.idleSkip", [&] { cfg.idleSkip = parseBool(key, value); }},

        {"noc.topology", [&] { cfg.noc.topology = parseTopology(value); }},
        {"noc.meshWidth", [&] { cfg.noc.meshWidth = parseInt(key, value); }},
        {"noc.meshHeight",
         [&] { cfg.noc.meshHeight = parseInt(key, value); }},
        {"noc.chipletsX", [&] { cfg.noc.chipletsX = parseInt(key, value); }},
        {"noc.chipletsY", [&] { cfg.noc.chipletsY = parseInt(key, value); }},
        {"noc.chipletSubW",
         [&] { cfg.noc.chipletSubW = parseInt(key, value); }},
        {"noc.chipletSubH",
         [&] { cfg.noc.chipletSubH = parseInt(key, value); }},
        {"noc.chipletLinksPerEdge",
         [&] { cfg.noc.chipletLinksPerEdge = parseInt(key, value); }},
        {"noc.interposerChannelBytes",
         [&] { cfg.noc.interposerChannelBytes = parseInt(key, value); }},
        {"noc.interposerLatency",
         [&] { cfg.noc.interposerLatency = parseInt(key, value); }},
        {"noc.channelBytes",
         [&] { cfg.noc.channelBytes = parseInt(key, value); }},
        {"noc.vcsPerNet", [&] { cfg.noc.vcsPerNet = parseInt(key, value); }},
        {"noc.vcDepthFlits",
         [&] { cfg.noc.vcDepthFlits = parseInt(key, value); }},
        {"noc.routerStages",
         [&] { cfg.noc.routerStages = parseInt(key, value); }},
        {"noc.threads", [&] { cfg.noc.threads = parseInt(key, value); }},
        {"noc.sharedPhysical",
         [&] { cfg.noc.sharedPhysical = parseBool(key, value); }},
        {"noc.sharedReqVcs",
         [&] { cfg.noc.sharedReqVcs = parseInt(key, value); }},
        {"noc.sharedReplyVcs",
         [&] { cfg.noc.sharedReplyVcs = parseInt(key, value); }},
        {"noc.vnets", [&] { cfg.noc.vnets = parseBool(key, value); }},
        {"noc.vnetRequestVcs",
         [&] { cfg.noc.vnetRequestVcs = parseInt(key, value); }},
        {"noc.vnetForwardVcs",
         [&] { cfg.noc.vnetForwardVcs = parseInt(key, value); }},
        {"noc.vnetReplyVcs",
         [&] { cfg.noc.vnetReplyVcs = parseInt(key, value); }},
        {"noc.vnetDelegatedVcs",
         [&] { cfg.noc.vnetDelegatedVcs = parseInt(key, value); }},
        {"noc.requestRouting",
         [&] { cfg.noc.requestRouting = parseRouting(value); }},
        {"noc.replyRouting",
         [&] { cfg.noc.replyRouting = parseRouting(value); }},
        {"noc.memInjBufferFlits",
         [&] { cfg.noc.memInjBufferFlits = parseInt(key, value); }},
        {"noc.coreInjBufferFlits",
         [&] { cfg.noc.coreInjBufferFlits = parseInt(key, value); }},
        {"noc.ejBufferFlits",
         [&] { cfg.noc.ejBufferFlits = parseInt(key, value); }},
        {"noc.bandwidthScale",
         [&] { cfg.noc.bandwidthScale = parseDouble(key, value); }},

        {"gpu.numCores", [&] { cfg.gpu.numCores = parseInt(key, value); }},
        {"gpu.warpsPerCore",
         [&] { cfg.gpu.warpsPerCore = parseInt(key, value); }},
        {"gpu.issueWidth",
         [&] { cfg.gpu.issueWidth = parseInt(key, value); }},
        {"gpu.l1SizeKB", [&] { cfg.gpu.l1SizeKB = parseInt(key, value); }},
        {"gpu.l1Assoc", [&] { cfg.gpu.l1Assoc = parseInt(key, value); }},
        {"gpu.l1Mshrs", [&] { cfg.gpu.l1Mshrs = parseInt(key, value); }},
        {"gpu.frqEntries",
         [&] { cfg.gpu.frqEntries = parseInt(key, value); }},
        {"gpu.l1Org", [&] { cfg.gpu.l1Org = parseL1Org(value); }},
        {"gpu.ctaSchedule", [&] { cfg.gpu.ctaSchedule = parseCta(value); }},

        {"cpu.numCores", [&] { cfg.cpu.numCores = parseInt(key, value); }},
        {"cpu.l1SizeKB", [&] { cfg.cpu.l1SizeKB = parseInt(key, value); }},

        {"mem.numNodes", [&] { cfg.mem.numNodes = parseInt(key, value); }},
        {"mem.llcSliceKB",
         [&] { cfg.mem.llcSliceKB = parseInt(key, value); }},
        {"mem.llcAssoc", [&] { cfg.mem.llcAssoc = parseInt(key, value); }},
        {"mem.llcLatency",
         [&] { cfg.mem.llcLatency = parseInt(key, value); }},
        {"mem.llcMshrs", [&] { cfg.mem.llcMshrs = parseInt(key, value); }},
        {"mem.banksPerMc",
         [&] { cfg.mem.banksPerMc = parseInt(key, value); }},
        {"mem.burstCycles",
         [&] { cfg.mem.burstCycles = parseInt(key, value); }},
        {"mem.placement",
         [&] { cfg.mem.placement = parseIntList(key, value); }},

        {"dr.delegateAlways",
         [&] { cfg.dr.delegateAlways = parseBool(key, value); }},
        {"dr.frqRemotePriority",
         [&] { cfg.dr.frqRemotePriority = parseBool(key, value); }},

        {"rp.probeCount", [&] { cfg.rp.probeCount = parseInt(key, value); }},
        {"rp.predictorEntries",
         [&] { cfg.rp.predictorEntries = parseInt(key, value); }},

        {"debug.watchdogCycles",
         [&] { cfg.debug.watchdogCycles = parseCycles(key, value); }},
        {"debug.watchdogAbort",
         [&] { cfg.debug.watchdogAbort = parseBool(key, value); }},
        {"debug.mshrLeakCycles",
         [&] { cfg.debug.mshrLeakCycles = parseCycles(key, value); }},
        {"debug.sweepCycles",
         [&] { cfg.debug.sweepCycles = parseCycles(key, value); }},
    };
    const auto it = handlers.find(key);
    if (it == handlers.end())
        fatal("config: unknown option '", key, "'");
    it->second();
}

void
parseConfig(SystemConfig &cfg, std::istream &in)
{
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config: line ", lineNo, " has no '=': '", line, "'");
        applyConfigOption(cfg, line.substr(0, eq), line.substr(eq + 1));
    }
}

void
parseConfigFile(SystemConfig &cfg, const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("config: cannot open '", path, "'");
    parseConfig(cfg, in);
}

void
writeConfig(const SystemConfig &cfg, std::ostream &out)
{
    const char *mech =
        cfg.mechanism == Mechanism::Baseline
            ? "baseline"
            : cfg.mechanism == Mechanism::RealisticProbing
                  ? "realistic-probing"
                  : "delegated-replies";
    const char *layout = cfg.layout == ChipLayout::Baseline ? "baseline"
                         : cfg.layout == ChipLayout::LayoutB ? "B"
                         : cfg.layout == ChipLayout::LayoutC ? "C"
                                                             : "D";
    auto routingStr = [](RoutingKind k) {
        switch (k) {
          case RoutingKind::DimOrderXY: return "XY";
          case RoutingKind::DimOrderYX: return "YX";
          case RoutingKind::DyXY: return "DyXY";
          case RoutingKind::Footprint: return "footprint";
          case RoutingKind::Hare: return "HARE";
          case RoutingKind::TableMinimal: return "table";
          case RoutingKind::ChipletHierarchical: return "chiplet";
        }
        return "XY";
    };
    const char *topo =
        cfg.noc.topology == TopologyKind::Mesh ? "mesh"
        : cfg.noc.topology == TopologyKind::Crossbar ? "crossbar"
        : cfg.noc.topology == TopologyKind::FlattenedButterfly
              ? "flattened-butterfly"
        : cfg.noc.topology == TopologyKind::ChipletMesh ? "chiplet-mesh"
                                                        : "dragonfly";
    const char *l1org =
        cfg.gpu.l1Org == L1Organization::Private ? "private"
        : cfg.gpu.l1Org == L1Organization::DcL1 ? "dc-l1"
                                                : "dyneb";

    out << "mechanism = " << mech << "\n";
    out << "layout = " << layout << "\n";
    out << "seed = " << cfg.seed << "\n";
    out << "sim.cycles = " << cfg.simCycles << "\n";
    out << "sim.warmup = " << cfg.warmupCycles << "\n";
    out << "sim.idleSkip = " << (cfg.idleSkip ? "true" : "false") << "\n";
    out << "noc.topology = " << topo << "\n";
    out << "noc.meshWidth = " << cfg.noc.meshWidth << "\n";
    out << "noc.meshHeight = " << cfg.noc.meshHeight << "\n";
    out << "noc.chipletsX = " << cfg.noc.chipletsX << "\n";
    out << "noc.chipletsY = " << cfg.noc.chipletsY << "\n";
    out << "noc.chipletSubW = " << cfg.noc.chipletSubW << "\n";
    out << "noc.chipletSubH = " << cfg.noc.chipletSubH << "\n";
    out << "noc.chipletLinksPerEdge = " << cfg.noc.chipletLinksPerEdge
        << "\n";
    out << "noc.interposerChannelBytes = "
        << cfg.noc.interposerChannelBytes << "\n";
    out << "noc.interposerLatency = " << cfg.noc.interposerLatency << "\n";
    out << "noc.channelBytes = " << cfg.noc.channelBytes << "\n";
    out << "noc.vcsPerNet = " << cfg.noc.vcsPerNet << "\n";
    out << "noc.vcDepthFlits = " << cfg.noc.vcDepthFlits << "\n";
    out << "noc.routerStages = " << cfg.noc.routerStages << "\n";
    out << "noc.threads = " << cfg.noc.threads << "\n";
    out << "noc.sharedPhysical = "
        << (cfg.noc.sharedPhysical ? "true" : "false") << "\n";
    out << "noc.sharedReqVcs = " << cfg.noc.sharedReqVcs << "\n";
    out << "noc.sharedReplyVcs = " << cfg.noc.sharedReplyVcs << "\n";
    out << "noc.vnets = " << (cfg.noc.vnets ? "true" : "false") << "\n";
    out << "noc.vnetRequestVcs = " << cfg.noc.vnetRequestVcs << "\n";
    out << "noc.vnetForwardVcs = " << cfg.noc.vnetForwardVcs << "\n";
    out << "noc.vnetReplyVcs = " << cfg.noc.vnetReplyVcs << "\n";
    out << "noc.vnetDelegatedVcs = " << cfg.noc.vnetDelegatedVcs << "\n";
    out << "noc.requestRouting = " << routingStr(cfg.noc.requestRouting)
        << "\n";
    out << "noc.replyRouting = " << routingStr(cfg.noc.replyRouting)
        << "\n";
    out << "noc.memInjBufferFlits = " << cfg.noc.memInjBufferFlits << "\n";
    out << "noc.coreInjBufferFlits = " << cfg.noc.coreInjBufferFlits
        << "\n";
    out << "noc.ejBufferFlits = " << cfg.noc.ejBufferFlits << "\n";
    out << "noc.bandwidthScale = " << cfg.noc.bandwidthScale << "\n";
    out << "gpu.numCores = " << cfg.gpu.numCores << "\n";
    out << "gpu.warpsPerCore = " << cfg.gpu.warpsPerCore << "\n";
    out << "gpu.issueWidth = " << cfg.gpu.issueWidth << "\n";
    out << "gpu.l1SizeKB = " << cfg.gpu.l1SizeKB << "\n";
    out << "gpu.l1Assoc = " << cfg.gpu.l1Assoc << "\n";
    out << "gpu.l1Mshrs = " << cfg.gpu.l1Mshrs << "\n";
    out << "gpu.frqEntries = " << cfg.gpu.frqEntries << "\n";
    out << "gpu.l1Org = " << l1org << "\n";
    out << "gpu.ctaSchedule = "
        << (cfg.gpu.ctaSchedule == CtaSchedule::RoundRobin ? "round-robin"
                                                           : "distributed")
        << "\n";
    out << "cpu.numCores = " << cfg.cpu.numCores << "\n";
    out << "cpu.l1SizeKB = " << cfg.cpu.l1SizeKB << "\n";
    out << "mem.numNodes = " << cfg.mem.numNodes << "\n";
    out << "mem.llcSliceKB = " << cfg.mem.llcSliceKB << "\n";
    out << "mem.llcAssoc = " << cfg.mem.llcAssoc << "\n";
    out << "mem.llcLatency = " << cfg.mem.llcLatency << "\n";
    out << "mem.llcMshrs = " << cfg.mem.llcMshrs << "\n";
    out << "mem.banksPerMc = " << cfg.mem.banksPerMc << "\n";
    out << "mem.burstCycles = " << cfg.mem.burstCycles << "\n";
    out << "mem.placement = ";
    for (std::size_t i = 0; i < cfg.mem.placement.size(); ++i)
        out << (i ? "," : "") << cfg.mem.placement[i];
    out << "\n";
    out << "dr.delegateAlways = "
        << (cfg.dr.delegateAlways ? "true" : "false") << "\n";
    out << "dr.frqRemotePriority = "
        << (cfg.dr.frqRemotePriority ? "true" : "false") << "\n";
    out << "rp.probeCount = " << cfg.rp.probeCount << "\n";
    out << "rp.predictorEntries = " << cfg.rp.predictorEntries << "\n";
    out << "debug.watchdogCycles = " << cfg.debug.watchdogCycles << "\n";
    out << "debug.watchdogAbort = "
        << (cfg.debug.watchdogAbort ? "true" : "false") << "\n";
    out << "debug.mshrLeakCycles = " << cfg.debug.mshrLeakCycles << "\n";
    out << "debug.sweepCycles = " << cfg.debug.sweepCycles << "\n";
}

} // namespace dr

#ifndef DR_CORE_EXPERIMENT_HPP
#define DR_CORE_EXPERIMENT_HPP

/**
 * @file
 * Experiment-harness helpers shared by the bench binaries: configured
 * runs, mechanism sweeps, and the small statistics (geometric/harmonic
 * means) the paper reports.
 */

#include <string>
#include <vector>

#include "core/hetero_system.hpp"

namespace dr
{

/** Run one CPU-GPU workload under the given configuration. */
RunResults runWorkload(const SystemConfig &cfg, const std::string &gpu,
                       const std::string &cpu);

/** Geometric mean (ignores non-positive values). */
double geomean(const std::vector<double> &values);

/** Harmonic mean (ignores non-positive values). */
double harmonicMean(const std::vector<double> &values);

/** Arithmetic mean. */
double mean(const std::vector<double> &values);

/**
 * Bench-wide scale factor from the DR_BENCH_CYCLES environment variable
 * (measured cycles per run; default `fallback`). Lets users trade
 * precision for runtime without recompiling.
 */
Cycle benchCycles(Cycle fallback);

/** A paper-default config scaled to the bench cycle budget. */
SystemConfig benchConfig(Mechanism mechanism);

/** Print a markdown-style table row. */
void printRow(const std::string &label,
              const std::vector<double> &values, int width = 10);

} // namespace dr

#endif // DR_CORE_EXPERIMENT_HPP

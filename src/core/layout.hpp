#ifndef DR_CORE_LAYOUT_HPP
#define DR_CORE_LAYOUT_HPP

/**
 * @file
 * Chip layouts (Figure 1 of the paper) generalized to arbitrary mesh
 * sizes and node mixes:
 *
 *  - Baseline: CPU columns, then a memory column between CPUs and GPUs
 *    (traffic isolation; CDR YX-XY).
 *  - Layout B: memory nodes along the die edge (top row; CDR XY-YX).
 *  - Layout C: CPU cores clustered in the top-left block (CDR XY-YX).
 *  - Layout D: all node types distributed over the chip (XY-XY).
 */

#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace dr
{

/** Node placement plus derived index lists. */
struct LayoutMap
{
    std::vector<NodeType> types;    //!< per NoC node
    std::vector<NodeId> gpuCores;   //!< GPU core index -> node id
    std::vector<NodeId> cpuCores;   //!< CPU core index -> node id
    std::vector<NodeId> memNodes;   //!< MC index -> node id
};

/** Build the node placement for cfg.layout. */
LayoutMap buildLayout(const SystemConfig &cfg);

/**
 * The per-layout CDR routing orders the paper identifies as best
 * (Figure 9): request-network order and reply-network order.
 */
void applyDefaultRouting(SystemConfig &cfg);

/** ASCII rendering of a layout (examples and debugging). */
std::string renderLayout(const SystemConfig &cfg, const LayoutMap &map);

} // namespace dr

#endif // DR_CORE_LAYOUT_HPP

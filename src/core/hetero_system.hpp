#ifndef DR_CORE_HETERO_SYSTEM_HPP
#define DR_CORE_HETERO_SYSTEM_HPP

/**
 * @file
 * Full-system assembly: the heterogeneous chip of Figure 1 — GPU cores,
 * CPU cores and memory nodes on the interconnect, driven by one GPU
 * kernel (Table II) and one CPU benchmark profile. The HeteroSystem
 * owns everything, runs warmup + measurement, and reports the metrics
 * that the paper's figures are built from.
 */

#include <memory>
#include <string>
#include <vector>

#include "coherence/gpu_coherence.hpp"
#include "coherence/mesi.hpp"
#include "common/config.hpp"
#include "core/endpoint_engine.hpp"
#include "core/layout.hpp"
#include "cpu/cpu_node.hpp"
#include "debug/progress_watchdog.hpp"
#include "gpu/cta_scheduler.hpp"
#include "gpu/kernel.hpp"
#include "gpu/l1_cache.hpp"
#include "gpu/sm_core.hpp"
#include "mem/address_map.hpp"
#include "mem/mem_node.hpp"
#include "noc/interconnect.hpp"

namespace dr
{

/** Measured results of one run (over the measurement window). */
struct RunResults
{
    Cycle cycles = 0;

    // Headline metrics.
    double gpuIpc = 0.0;        //!< GPU instructions per cycle (chip)
    double cpuIpc = 0.0;        //!< mean CPU instructions per cycle/core
    double cpuLatency = 0.0;    //!< mean CPU request latency (cycles)
    double gpuDataRate = 0.0;   //!< reply flits/cycle per GPU core (Fig 11)
    double memBlockingRate = 0.0;  //!< Fig 5b

    // L1 miss breakdown (Figure 14).
    std::uint64_t l1Misses = 0;
    std::uint64_t missesWithRemoteCopy = 0;  //!< Figure 2
    std::uint64_t delegations = 0;
    std::uint64_t frqRemoteHits = 0;
    std::uint64_t frqDelayedHits = 0;
    std::uint64_t frqRemoteMisses = 0;

    // RP accounting.
    std::uint64_t probesSent = 0;
    std::uint64_t probeHits = 0;
    std::uint64_t requestsInjected = 0;  //!< request-network packets

    // Energy-model inputs.
    std::uint64_t switchTraversals = 0;
    std::uint64_t bufferWrites = 0;
    std::uint64_t linkTraversals = 0;

    double gpuL1MissRate = 0.0;
    double llcHitRate = 0.0;

    /** Fraction of L1 misses with a copy in a remote L1 (Figure 2). */
    double remoteCopyFraction() const;
    /** Fraction of misses forwarded as delegated replies (Figure 14). */
    double forwardedFraction() const;
    /** Remote-hit rate among delegated replies (Figure 14). */
    double remoteHitRate() const;
};

/**
 * The simulated chip. Construct with a (validated) configuration plus
 * workload names, then call run().
 */
class HeteroSystem
{
  public:
    HeteroSystem(const SystemConfig &cfg, const std::string &gpuBenchmark,
                 const std::string &cpuBenchmark);

    /** Run a caller-supplied kernel (trace-driven or custom). */
    HeteroSystem(const SystemConfig &cfg,
                 std::unique_ptr<KernelAccessPattern> kernel,
                 const std::string &cpuBenchmark);

    ~HeteroSystem();

    HeteroSystem(const HeteroSystem &) = delete;
    HeteroSystem &operator=(const HeteroSystem &) = delete;

    /** Run cfg.warmupCycles then cfg.simCycles; returns measurements. */
    RunResults run();

    /** Advance the system by `cycles` without resetting statistics. */
    void advance(Cycle cycles);

    /** Collect results for the cycles since the last stats reset. */
    RunResults collect(Cycle measuredCycles) const;

    void resetAllStats();

    // Component access for tests and examples.
    Interconnect &interconnect() { return *ic_; }
    const LayoutMap &layout() const { return layout_; }
    SmCore &gpuCore(int idx) { return *gpuCores_[idx]; }
    CpuNode &cpuCore(int idx) { return *cpuNodes_[idx]; }
    MemNode &memNode(int idx) { return *memNodes_[idx]; }
    const SmCore &gpuCore(int idx) const { return *gpuCores_[idx]; }
    const CpuNode &cpuCore(int idx) const { return *cpuNodes_[idx]; }
    const MemNode &memNode(int idx) const { return *memNodes_[idx]; }
    const Interconnect &interconnect() const { return *ic_; }
    int gpuCoreCount() const { return static_cast<int>(gpuCores_.size()); }
    int cpuCoreCount() const { return static_cast<int>(cpuNodes_.size()); }
    int memNodeCount() const { return static_cast<int>(memNodes_.size()); }
    const SystemConfig &config() const { return cfg_; }
    Cycle now() const { return now_; }
    GpuCoherence &coherence() { return *coherence_; }

    /**
     * Aggregate MESI directory statistics across the per-memory-node
     * banks (DESIGN.md §13: the directory is banked by home node, one
     * DR_DOMAIN_OWNED bank per MemNode — see MemNode::mesi() for the
     * per-bank view).
     */
    MesiStats mesiStats() const;

    /** Endpoint tick domains in use (1 = serial endpoint phase). */
    int endpointDomains() const { return engine_->numDomains(); }

    /** Cycles elided by the idle-skip fast path since construction. */
    Cycle idleSkippedCycles() const { return skippedCycles_; }

    /**
     * Monotone progress signature: advances whenever any network moves
     * a flit or any core retires an instruction. The watchdog flags a
     * stall when this stops changing for debug.watchdogCycles cycles.
     */
    std::uint64_t progressSignature() const;

    /** The progress watchdog, or nullptr when debug.watchdogCycles==0. */
    ProgressWatchdog *watchdog() { return watchdog_.get(); }

    /**
     * Run every registered invariant sweep once: network flit/credit
     * conservation plus LLC and L1 MSHR leak bounds. Called
     * automatically every debug.sweepCycles in DR_CHECKED builds;
     * callable from any build (tests, post-mortem triage).
     */
    void checkInvariants() const;

  private:
    /** Watchdog observation interval: fine enough to bound detection
     *  latency, coarse enough to keep the signature walk off the
     *  per-cycle path. The idle-skip fast path clamps to the next due
     *  observation so skipping never changes watchdog behaviour. */
    static constexpr Cycle kObserveEvery = 64;

    bool anyRemoteL1Has(int coreIdx, Addr line) const;
    void stepCycle();
    void commitEndpoints();
    Cycle idleSkipTarget(Cycle end) const;

    SystemConfig cfg_;
    LayoutMap layout_;
    std::unique_ptr<Interconnect> ic_;
    std::unique_ptr<GpuCoherence> coherence_;
    std::unique_ptr<AddressMap> map_;
    std::unique_ptr<KernelAccessPattern> kernel_;
    std::unique_ptr<CtaScheduler> ctaSched_;
    std::unique_ptr<L1Organizer> l1Org_;
    std::vector<std::unique_ptr<SmCore>> gpuCores_;
    std::vector<std::unique_ptr<CpuNode>> cpuNodes_;
    std::vector<std::unique_ptr<MemNode>> memNodes_;
    std::unique_ptr<EndpointEngine> engine_;
    std::unique_ptr<ProgressWatchdog> watchdog_;
    Cycle now_ = 0;
    Cycle skippedCycles_ = 0;
    /** Next cycle a watchdog observation is due (multiples of
     *  kObserveEvery, matching the historical modulo schedule). */
    Cycle watchdogDue_ = 0;
    /** Next cycle a checked-build invariant sweep is due. */
    Cycle sweepDue_ = kNeverCycle;
};

} // namespace dr

#endif // DR_CORE_HETERO_SYSTEM_HPP

#include "core/hetero_system.hpp"

#include <algorithm>
#include <ostream>

#include "common/invariant.hpp"
#include "common/log.hpp"
#include "cpu/cpu_profile.hpp"
#include "workloads/gpu_benchmarks.hpp"

namespace dr
{

double
RunResults::remoteCopyFraction() const
{
    return l1Misses ? static_cast<double>(missesWithRemoteCopy) /
                          static_cast<double>(l1Misses)
                    : 0.0;
}

double
RunResults::forwardedFraction() const
{
    return l1Misses ? static_cast<double>(delegations) /
                          static_cast<double>(l1Misses)
                    : 0.0;
}

double
RunResults::remoteHitRate() const
{
    const std::uint64_t resolved =
        frqRemoteHits + frqDelayedHits + frqRemoteMisses;
    return resolved ? static_cast<double>(frqRemoteHits + frqDelayedHits) /
                          static_cast<double>(resolved)
                    : 0.0;
}

HeteroSystem::HeteroSystem(const SystemConfig &cfg,
                           const std::string &gpuBenchmark,
                           const std::string &cpuBenchmark)
    : HeteroSystem(cfg, makeGpuBenchmark(gpuBenchmark), cpuBenchmark)
{
}

HeteroSystem::HeteroSystem(const SystemConfig &cfg,
                           std::unique_ptr<KernelAccessPattern> kernel,
                           const std::string &cpuBenchmark)
    : cfg_(cfg), layout_(buildLayout(cfg_))
{
    cfg_.validate();
    ic_ = std::make_unique<Interconnect>(cfg_, layout_.types);
    coherence_ = std::make_unique<GpuCoherence>(cfg_.gpu.numCores);
    map_ = std::make_unique<AddressMap>(cfg_.mem.numNodes,
                                        cfg_.mem.lineBytes,
                                        layout_.memNodes, cfg_.mem.mapSeed);
    kernel_ = std::move(kernel);
    ctaSched_ = std::make_unique<CtaScheduler>(cfg_.gpu.ctaSchedule,
                                               kernel_->ctaCount(),
                                               cfg_.gpu.numCores);
    l1Org_ = makeL1Organizer(cfg_.gpu);

    const CpuProfile &profile = cpuProfileFor(cpuBenchmark);

    gpuCores_.reserve(layout_.gpuCores.size());
    for (std::size_t i = 0; i < layout_.gpuCores.size(); ++i) {
        gpuCores_.push_back(std::make_unique<SmCore>(
            layout_.gpuCores[i], static_cast<int>(i), cfg_, *ic_, *map_,
            *coherence_, *ctaSched_, *kernel_, *l1Org_,
            layout_.gpuCores));
        gpuCores_.back()->setLocalityOracle(
            [this](int coreIdx, Addr line) {
                return anyRemoteL1Has(coreIdx, line);
            });
    }
    cpuNodes_.reserve(layout_.cpuCores.size());
    for (std::size_t i = 0; i < layout_.cpuCores.size(); ++i) {
        cpuNodes_.push_back(std::make_unique<CpuNode>(
            layout_.cpuCores[i], static_cast<int>(i), cfg_, profile, *ic_,
            *map_));
    }
    memNodes_.reserve(layout_.memNodes.size());
    for (const NodeId node : layout_.memNodes) {
        memNodes_.push_back(std::make_unique<MemNode>(
            node, cfg_, *ic_, *coherence_, layout_.gpuCores,
            layout_.cpuCores));
    }

    // Endpoint tick engine (DESIGN.md §13): partition the endpoints
    // over the request network's spatial domains. Every L1
    // organization now stages its cross-core effects per calling core
    // (DESIGN.md §14), so shared organizations parallelize too;
    // concurrentSafe() stays as an escape hatch for organizations
    // whose lookup paths cannot be confined.
    {
        std::vector<MemNode *> mems;
        std::vector<SmCore *> gpus;
        std::vector<CpuNode *> cpus;
        for (auto &m : memNodes_)
            mems.push_back(m.get());
        for (auto &g : gpuCores_)
            gpus.push_back(g.get());
        for (auto &c : cpuNodes_)
            cpus.push_back(c.get());
        engine_ = std::make_unique<EndpointEngine>(
            ic_->net(NetKind::Request), l1Org_->concurrentSafe(), mems,
            gpus, cpus);
        // The engine assigned each SM its endpoint domain; hand the
        // mapping to the L1 organization so its per-core staged banks
        // carry the right writer-domain stamp owners.
        for (auto &g : gpuCores_)
            l1Org_->setCoreDomain(g->coreIdx(), g->domain());
    }

    if (cfg_.debug.sweepCycles > 0)
        sweepDue_ = cfg_.debug.sweepCycles;

    if (cfg_.debug.watchdogCycles > 0) {
        WatchdogParams wp;
        wp.stallCycles = cfg_.debug.watchdogCycles;
        wp.abortOnStall = cfg_.debug.watchdogAbort;
        watchdog_ = std::make_unique<ProgressWatchdog>(*ic_, wp);
        watchdog_->setExtraDump([this](std::ostream &os) {
            os << "endpoint state:\n";
            for (const auto &mem : memNodes_) {
                os << "  mem node " << mem->nodeId() << ": "
                   << mem->llc().mshrUsed() << " LLC MSHRs in use, oldest "
                   << mem->llc().mshrOldestAge(now_) << " cycles\n";
            }
            for (const auto &gpu : gpuCores_) {
                os << "  gpu core " << gpu->coreIdx() << " (node "
                   << gpu->nodeId() << "): FRQ " << gpu->frqOccupancy()
                   << " entries, oldest MSHR "
                   << gpu->mshrOldestAge(now_) << " cycles\n";
            }
        });
    }
}

HeteroSystem::~HeteroSystem() = default;

bool
HeteroSystem::anyRemoteL1Has(int coreIdx, Addr line) const
{
    // Reads every other core's L1 tags, which are mid-mutation during
    // the endpoint compute phase — legal only from the serial merge.
    // SmCore stages its miss lines and resolves them through here via
    // resolveOracleQueries() (DESIGN.md §13).
    DR_PHASE_ASSERT_COMMIT();
    for (int c = 0; c < static_cast<int>(gpuCores_.size()); ++c) {
        if (c != coreIdx && l1Org_->contains(c, line))
            return true;
    }
    return false;
}

void
HeteroSystem::advance(Cycle cycles)
{
    const Cycle end = now_ + cycles;
    while (now_ < end) {
        stepCycle();

        // Hybrid event-driven fast path (DESIGN.md §13): after the
        // cycle's merge, if the networks are quiescent and every
        // endpoint watermark proves the next stretch of ticks dead,
        // jump straight to the earliest future event. The jump clamps
        // to the next due watchdog observation and invariant sweep, so
        // both keep their exact historical schedule; onSkip()
        // compensates the per-cycle counters an idle tick would have
        // bumped, keeping skip on/off bit-identical.
        Cycle next = now_ + 1;
        if (cfg_.idleSkip) {
            const Cycle target = idleSkipTarget(end);
            if (target > next) {
                const Cycle skipped = target - next;
                for (auto &mem : memNodes_)
                    mem->onSkip(skipped);
                for (auto &gpu : gpuCores_)
                    gpu->onSkip(skipped);
                for (auto &cpu : cpuNodes_)
                    cpu->onSkip(skipped);
                skippedCycles_ += skipped;
                next = target;
            }
        }
        now_ = next;
    }
}

void
HeteroSystem::stepCycle()
{
    ic_->tick(now_);
    l1Org_->tick(now_);

    // Endpoint compute phase: every send is staged in the per-node
    // outboxes; the serial merge below drains them in the canonical
    // order (memory nodes, GPU cores, CPU nodes — the historical
    // serial tick order), so pool slots, packet ids and routing RNG
    // draws replay the exact serial sequence at any thread count.
    ic_->beginStaging();
    engine_->tick(now_);
    commitEndpoints();

    if (watchdog_ && now_ >= watchdogDue_) {
        watchdog_->observe(now_, progressSignature());
        while (watchdogDue_ <= now_)
            watchdogDue_ += kObserveEvery;
    }

    if constexpr (checkedBuild()) {
        if (cfg_.debug.sweepCycles > 0 && now_ >= sweepDue_) {
            checkInvariants();
            while (sweepDue_ <= now_)
                sweepDue_ += cfg_.debug.sweepCycles;
        }
    }
}

void
HeteroSystem::commitEndpoints()
{
    for (auto &mem : memNodes_)
        ic_->drainOutbox(mem->nodeId(), now_);
    for (auto &gpu : gpuCores_)
        ic_->drainOutbox(gpu->nodeId(), now_);
    for (auto &cpu : cpuNodes_)
        ic_->drainOutbox(cpu->nodeId(), now_);
    ic_->endStaging();
    // Drain the L1 organization's per-core staged effects (slice-port
    // claims, LRU touches, fills, DynEB's phase clock) in ascending
    // core order before anything below reads the tags (DESIGN.md §14).
    l1Org_->commitCycle(now_);

    // Staged cross-endpoint effects, in a fixed order: the locality-
    // oracle queries read every core's L1 before the CTA refills flush
    // any of them, and the refills advance the shared scheduler cursor
    // in core order — the same order the serial schedule used.
    for (auto &gpu : gpuCores_)
        gpu->resolveOracleQueries(now_);
    for (auto &gpu : gpuCores_)
        gpu->refillCtas(now_);
}

Cycle
HeteroSystem::idleSkipTarget(Cycle end) const
{
    // Quiescence vote: no flit, credit or unassembled packet anywhere
    // in either network. Anything still queued *at* an endpoint (NI
    // ready queues included) is covered by that endpoint's watermark.
    if (!ic_->quiescent())
        return now_;

    Cycle target = end;
    if (watchdog_)
        target = std::min(target, watchdogDue_);
    if constexpr (checkedBuild()) {
        target = std::min(target, sweepDue_);
    }
    target = std::min(target, l1Org_->nextEventCycle(now_));
    for (const auto &mem : memNodes_)
        target = std::min(target, mem->nextEventCycle(now_));
    for (const auto &gpu : gpuCores_)
        target = std::min(target, gpu->nextEventCycle(now_));
    for (const auto &cpu : cpuNodes_)
        target = std::min(target, cpu->nextEventCycle(now_));
    return std::max(target, now_);
}

MesiStats
HeteroSystem::mesiStats() const
{
    MesiStats agg;
    for (const auto &mem : memNodes_) {
        const MesiStats &s = mem->mesi().stats();
        agg.reads += s.reads.value();
        agg.writes += s.writes.value();
        agg.invalidations += s.invalidations.value();
        agg.downgrades += s.downgrades.value();
        agg.writebacks += s.writebacks.value();
    }
    return agg;
}

std::uint64_t
HeteroSystem::progressSignature() const
{
    // Built from monotone counters that resetAllStats() does not touch
    // (network conservation counters) plus instruction counts; any
    // change means the chip did useful work.
    std::uint64_t sig = 0;
    const Network &req = ic_->net(NetKind::Request);
    sig += req.conservedFlitsInjected() + req.conservedFlitsEjected();
    if (!ic_->shared()) {
        const Network &rep = ic_->net(NetKind::Reply);
        sig += rep.conservedFlitsInjected() + rep.conservedFlitsEjected();
    }
    for (const auto &gpu : gpuCores_)
        sig += gpu->stats().instructions.value();
    for (const auto &cpu : cpuNodes_)
        sig += cpu->stats().retired.value();
    return sig;
}

void
HeteroSystem::checkInvariants() const
{
    ic_->checkInvariants();
    l1Org_->auditStamps();
    for (const auto &mem : memNodes_)
        mem->llc().checkMshrLeaks(now_, cfg_.debug.mshrLeakCycles);
    for (const auto &gpu : gpuCores_)
        gpu->checkMshrLeaks(now_, cfg_.debug.mshrLeakCycles);
}

void
HeteroSystem::resetAllStats()
{
    ic_->resetStats();
    for (auto &gpu : gpuCores_)
        gpu->resetStats();
    for (auto &cpu : cpuNodes_)
        cpu->resetStats();
    for (auto &mem : memNodes_)
        mem->resetStats();
}

RunResults
HeteroSystem::collect(Cycle measuredCycles) const
{
    RunResults r;
    r.cycles = measuredCycles;

    std::uint64_t gpuInstr = 0;
    std::uint64_t dataFlits = 0;
    for (const auto &gpu : gpuCores_) {
        const SmCoreStats &s = gpu->stats();
        gpuInstr += s.instructions.value();
        r.l1Misses += s.l1Misses.value();
        r.missesWithRemoteCopy += s.missesWithRemoteCopy.value();
        r.frqRemoteHits += s.frqRemoteHits.value();
        r.frqDelayedHits += s.frqDelayedHits.value();
        r.frqRemoteMisses += s.frqRemoteMisses.value();
        r.probesSent += s.probesSent.value();
        r.probeHits += s.probeHitsServed.value();
        dataFlits +=
            ic_->net(NetKind::Reply).flitsEjectedAt(gpu->nodeId());
    }
    r.gpuIpc = measuredCycles
                   ? static_cast<double>(gpuInstr) /
                         static_cast<double>(measuredCycles)
                   : 0.0;
    r.gpuDataRate =
        measuredCycles && !gpuCores_.empty()
            ? static_cast<double>(dataFlits) /
                  static_cast<double>(measuredCycles) /
                  static_cast<double>(gpuCores_.size())
            : 0.0;

    std::uint64_t gpuLoads = 0;
    for (const auto &gpu : gpuCores_)
        gpuLoads += gpu->stats().loads.value();
    r.gpuL1MissRate =
        gpuLoads ? static_cast<double>(r.l1Misses) /
                       static_cast<double>(gpuLoads)
                 : 0.0;

    double cpuIpcSum = 0.0;
    double cpuLatSum = 0.0;
    int cpuLatCount = 0;
    for (const auto &cpu : cpuNodes_) {
        cpuIpcSum += cpu->ipc(measuredCycles);
        if (cpu->stats().requestLatency.count() > 0) {
            cpuLatSum += cpu->stats().requestLatency.mean();
            ++cpuLatCount;
        }
    }
    r.cpuIpc = cpuNodes_.empty()
                   ? 0.0
                   : cpuIpcSum / static_cast<double>(cpuNodes_.size());
    r.cpuLatency =
        cpuLatCount ? cpuLatSum / static_cast<double>(cpuLatCount) : 0.0;

    double blockSum = 0.0;
    std::uint64_t llcHits = 0, llcReads = 0;
    for (const auto &mem : memNodes_) {
        blockSum += mem->blockingRate();
        r.delegations += mem->stats().delegations.value();
        llcHits += mem->llcStats().hits.value();
        llcReads += mem->llcStats().reads.value() +
                    mem->llcStats().writes.value();
    }
    r.memBlockingRate =
        memNodes_.empty()
            ? 0.0
            : blockSum / static_cast<double>(memNodes_.size());
    r.llcHitRate = llcReads ? static_cast<double>(llcHits) /
                                  static_cast<double>(llcReads)
                            : 0.0;

    r.requestsInjected =
        ic_->net(NetKind::Request).stats().packetsInjected.value();
    r.switchTraversals = ic_->totalSwitchTraversals();
    r.bufferWrites = ic_->totalBufferWrites();
    r.linkTraversals = ic_->totalLinkTraversals();
    return r;
}

RunResults
HeteroSystem::run()
{
    advance(cfg_.warmupCycles);
    resetAllStats();
    advance(cfg_.simCycles);
    return collect(cfg_.simCycles);
}

} // namespace dr

#include "core/layout.hpp"

#include <sstream>

#include "common/log.hpp"

namespace dr
{

namespace
{

LayoutMap
finalize(std::vector<NodeType> types)
{
    LayoutMap map;
    map.types = std::move(types);
    for (NodeId n = 0; n < static_cast<NodeId>(map.types.size()); ++n) {
        switch (map.types[n]) {
          case NodeType::GpuCore:
            map.gpuCores.push_back(n);
            break;
          case NodeType::CpuCore:
            map.cpuCores.push_back(n);
            break;
          case NodeType::MemNode:
            map.memNodes.push_back(n);
            break;
        }
    }
    return map;
}

/** Column-major tile order: (0,0), (0,1)... down column 0, then col 1. */
int
columnMajor(int idx, int width, int height)
{
    const int col = idx / height;
    const int row = idx % height;
    return row * width + col;
}

LayoutMap
baselineLayout(const SystemConfig &cfg)
{
    // CPUs fill the left columns, the memory column comes next, GPUs
    // fill the right — CPU and GPU traffic only mix at memory-node
    // routers (Figure 1a).
    const int w = cfg.noc.meshWidth;
    const int h = cfg.noc.meshHeight;
    std::vector<NodeType> types(static_cast<std::size_t>(w) * h,
                                NodeType::GpuCore);
    int idx = 0;
    for (int i = 0; i < cfg.cpu.numCores; ++i)
        types[columnMajor(idx++, w, h)] = NodeType::CpuCore;
    for (int i = 0; i < cfg.mem.numNodes; ++i)
        types[columnMajor(idx++, w, h)] = NodeType::MemNode;
    return finalize(std::move(types));
}

LayoutMap
layoutB(const SystemConfig &cfg)
{
    // Memory nodes at the die edge (the top row), CPU columns on the
    // left below them, GPUs elsewhere (Figure 1b).
    const int w = cfg.noc.meshWidth;
    const int h = cfg.noc.meshHeight;
    std::vector<NodeType> types(static_cast<std::size_t>(w) * h,
                                NodeType::GpuCore);
    if (cfg.mem.numNodes > w * h)
        fatal("layout B: more memory nodes than tiles");
    for (int i = 0; i < cfg.mem.numNodes; ++i)
        types[i] = NodeType::MemNode;  // top row(s), row-major
    int placed = 0;
    for (int col = 0; col < w && placed < cfg.cpu.numCores; ++col) {
        for (int row = 1; row < h && placed < cfg.cpu.numCores; ++row) {
            if (types[row * w + col] != NodeType::GpuCore)
                continue;  // memory nodes may spill into row 1
            types[row * w + col] = NodeType::CpuCore;
            ++placed;
        }
    }
    return finalize(std::move(types));
}

LayoutMap
layoutC(const SystemConfig &cfg)
{
    // CPUs clustered in the top-left block (minimal CPU-to-CPU hops),
    // memory nodes in the rows right below the cluster (Figure 1c).
    const int w = cfg.noc.meshWidth;
    const int h = cfg.noc.meshHeight;
    std::vector<NodeType> types(static_cast<std::size_t>(w) * h,
                                NodeType::GpuCore);
    const int blockW = std::max(1, w / 2);
    int placed = 0;
    int row = 0;
    for (; row < h && placed < cfg.cpu.numCores; ++row) {
        for (int col = 0; col < blockW && placed < cfg.cpu.numCores;
             ++col) {
            types[row * w + col] = NodeType::CpuCore;
            ++placed;
        }
    }
    placed = 0;
    for (; row < h && placed < cfg.mem.numNodes; ++row) {
        for (int col = 0; col < blockW && placed < cfg.mem.numNodes;
             ++col) {
            types[row * w + col] = NodeType::MemNode;
            ++placed;
        }
    }
    if (placed < cfg.mem.numNodes)
        fatal("layout C cannot place all memory nodes");
    return finalize(std::move(types));
}

LayoutMap
layoutD(const SystemConfig &cfg)
{
    // Distribute every node type across the chip (Figure 1d): memory
    // nodes and CPUs at evenly spaced tile strides, GPUs in the rest.
    const int w = cfg.noc.meshWidth;
    const int h = cfg.noc.meshHeight;
    const int tiles = cfg.nodeCount();
    std::vector<NodeType> types(static_cast<std::size_t>(tiles),
                                NodeType::GpuCore);
    // Memory nodes: distinct rows, columns striding across the die.
    for (int i = 0; i < cfg.mem.numNodes; ++i) {
        const int row = (i * h) / cfg.mem.numNodes;
        const int col = (3 * i + 1) % w;
        types[row * w + col] = NodeType::MemNode;
    }
    // CPUs: Bresenham walk over the remaining tiles so they interleave
    // evenly with the GPU cores.
    int placed = 0;
    int acc = 0;
    for (int pos = 0; pos < tiles && placed < cfg.cpu.numCores; ++pos) {
        acc += cfg.cpu.numCores;
        if (acc >= tiles && types[pos] == NodeType::GpuCore) {
            acc -= tiles;
            types[pos] = NodeType::CpuCore;
            ++placed;
        }
    }
    for (int pos = 0; pos < tiles && placed < cfg.cpu.numCores; ++pos) {
        if (types[pos] == NodeType::GpuCore) {
            types[pos] = NodeType::CpuCore;
            ++placed;
        }
    }
    return finalize(std::move(types));
}

} // namespace

LayoutMap
buildLayout(const SystemConfig &cfg)
{
    cfg.validate();
    LayoutMap map;
    switch (cfg.layout) {
      case ChipLayout::Baseline:
        map = baselineLayout(cfg);
        break;
      case ChipLayout::LayoutB:
        map = layoutB(cfg);
        break;
      case ChipLayout::LayoutC:
        map = layoutC(cfg);
        break;
      case ChipLayout::LayoutD:
        map = layoutD(cfg);
        break;
    }
    if (!cfg.mem.placement.empty()) {
        // Explicit memory-node placement (the placement-search knob):
        // move the memory nodes to the listed tiles and let the cores
        // they displace take over the vacated tiles, in ascending tile
        // order — fully deterministic and node-mix preserving.
        std::vector<NodeType> types = std::move(map.types);
        std::vector<char> vacated(types.size(), 0);
        for (std::size_t n = 0; n < types.size(); ++n)
            if (types[n] == NodeType::MemNode)
                vacated[n] = 1;
        std::vector<NodeType> displaced;
        for (const int tile : cfg.mem.placement) {
            const auto t = static_cast<std::size_t>(tile);
            if (vacated[t])
                vacated[t] = 0;  // already a memory node; stays one
            else
                displaced.push_back(types[t]);
            types[t] = NodeType::MemNode;
        }
        std::size_t next = 0;
        for (std::size_t n = 0; n < types.size(); ++n) {
            if (vacated[n])
                types[n] = displaced[next++];
        }
        if (next != displaced.size())
            panic("mem.placement displaced-core accounting broken");
        map = finalize(std::move(types));
    }
    if (static_cast<int>(map.gpuCores.size()) != cfg.gpu.numCores ||
        static_cast<int>(map.cpuCores.size()) != cfg.cpu.numCores ||
        static_cast<int>(map.memNodes.size()) != cfg.mem.numNodes) {
        panic("layout ", layoutName(cfg.layout),
              " produced a wrong node mix");
    }
    return map;
}

void
applyDefaultRouting(SystemConfig &cfg)
{
    switch (cfg.layout) {
      case ChipLayout::Baseline:
        cfg.noc.requestRouting = RoutingKind::DimOrderYX;
        cfg.noc.replyRouting = RoutingKind::DimOrderXY;
        break;
      case ChipLayout::LayoutB:
      case ChipLayout::LayoutC:
        cfg.noc.requestRouting = RoutingKind::DimOrderXY;
        cfg.noc.replyRouting = RoutingKind::DimOrderYX;
        break;
      case ChipLayout::LayoutD:
        cfg.noc.requestRouting = RoutingKind::DimOrderXY;
        cfg.noc.replyRouting = RoutingKind::DimOrderXY;
        break;
    }
}

std::string
renderLayout(const SystemConfig &cfg, const LayoutMap &map)
{
    std::ostringstream os;
    for (int y = 0; y < cfg.noc.meshHeight; ++y) {
        for (int x = 0; x < cfg.noc.meshWidth; ++x) {
            switch (map.types[y * cfg.noc.meshWidth + x]) {
              case NodeType::GpuCore:
                os << "G ";
                break;
              case NodeType::CpuCore:
                os << "C ";
                break;
              case NodeType::MemNode:
                os << "M ";
                break;
            }
        }
        os << "\n";
    }
    return os.str();
}

} // namespace dr

#ifndef DR_CORE_STATS_REPORT_HPP
#define DR_CORE_STATS_REPORT_HPP

/**
 * @file
 * Full-system statistics reporting. Collects every component's counters
 * into a flat `path value` map (gem5 stats.txt style) that can be
 * dumped as text, CSV, or JSON — the output surface a released
 * simulator needs for scripted analysis.
 */

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "core/hetero_system.hpp"

namespace dr
{

/** One named statistic. */
struct StatEntry
{
    std::string path;
    double value = 0.0;
};

/** A flat snapshot of every statistic in the system. */
class StatsReport
{
  public:
    /** Snapshot a system after run()/advance(). */
    static StatsReport capture(const HeteroSystem &system,
                               Cycle measuredCycles);

    const std::vector<StatEntry> &entries() const { return entries_; }

    /** Value lookup by exact path; fatal() if absent. */
    double value(const std::string &path) const;

    /** Whether a path exists. */
    bool has(const std::string &path) const;

    /** Sum over all paths with the given prefix. */
    double sum(const std::string &prefix) const;

    /** `path value` lines (gem5 stats.txt style). */
    void writeText(std::ostream &out) const;

    /** Two-column CSV with a header. */
    void writeCsv(std::ostream &out) const;

    /** A flat JSON object. */
    void writeJson(std::ostream &out) const;

  private:
    void add(std::string path, double value);

    std::vector<StatEntry> entries_;
};

} // namespace dr

#endif // DR_CORE_STATS_REPORT_HPP

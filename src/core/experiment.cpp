#include "core/experiment.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/log.hpp"

namespace dr
{

RunResults
runWorkload(const SystemConfig &cfg, const std::string &gpu,
            const std::string &cpu)
{
    HeteroSystem system(cfg, gpu, cpu);
    return system.run();
}

double
geomean(const std::vector<double> &values)
{
    double logSum = 0.0;
    int count = 0;
    for (const double v : values) {
        if (v > 0.0) {
            logSum += std::log(v);
            ++count;
        }
    }
    return count ? std::exp(logSum / count) : 0.0;
}

double
harmonicMean(const std::vector<double> &values)
{
    double invSum = 0.0;
    int count = 0;
    for (const double v : values) {
        if (v > 0.0) {
            invSum += 1.0 / v;
            ++count;
        }
    }
    return count && invSum > 0.0 ? count / invSum : 0.0;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

Cycle
benchCycles(Cycle fallback)
{
    if (const char *env = std::getenv("DR_BENCH_CYCLES")) {
        const long long parsed = std::atoll(env);
        if (parsed > 0)
            return static_cast<Cycle>(parsed);
    }
    return fallback;
}

SystemConfig
benchConfig(Mechanism mechanism)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = mechanism;
    // Delegated Replies runs on the first-class 4-VN layout (reserved
    // per-message-class VC ranges, noc/vnet.hpp): delegated forwards
    // and core-to-core replies get their own virtual networks, as in
    // the paper's design. The ordinary request/reply classes keep the
    // legacy Table I capacity (2 VCs each) and the two DR-only VNs add
    // one reserved VC per side — starving replies down to 1 VC to fit
    // vcsPerNet=2 inverts the headline (replies are the clogging
    // traffic). The extra VC per port is DR hardware, priced by the
    // area model. The legacy two-class VC split remains available as
    // an ablation row (bench/ablation_dr.cpp) and for sweeps that flip
    // cfg.mechanism on a fixed fabric.
    if (mechanism == Mechanism::DelegatedReplies) {
        cfg.noc.vnets = true;
        cfg.noc.vcsPerNet = 3;
        cfg.noc.vnetRequestVcs = 2;
        cfg.noc.vnetForwardVcs = 1;
        cfg.noc.vnetReplyVcs = 2;
        cfg.noc.vnetDelegatedVcs = 1;
    }
    cfg.simCycles = benchCycles(30000);
    // The LLC needs to warm before the clogging regime is reached.
    cfg.warmupCycles = cfg.simCycles / 2;
    // DR_BENCH_THREADS pins the NoC tick engine's thread count for a
    // whole bench sweep (results are bit-identical for every value;
    // only wall-clock changes). Leaving it unset keeps the network's
    // own auto default (DR_NOC_THREADS, else 1).
    if (const char *env = std::getenv("DR_BENCH_THREADS")) {
        const int parsed = std::atoi(env);
        if (parsed > 0)
            cfg.noc.threads = parsed;
    }
    return cfg;
}

void
printRow(const std::string &label, const std::vector<double> &values,
         int width)
{
    std::printf("%-14s", label.c_str());
    for (const double v : values)
        std::printf(" %*.3f", width, v);
    std::printf("\n");
}

} // namespace dr

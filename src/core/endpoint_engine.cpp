#include "core/endpoint_engine.hpp"

#include "cpu/cpu_node.hpp"
#include "gpu/sm_core.hpp"
#include "mem/mem_node.hpp"
#include "noc/network.hpp"

namespace dr
{

EndpointEngine::EndpointEngine(const Network &net, bool concurrentSafe,
                               const std::vector<MemNode *> &mems,
                               const std::vector<SmCore *> &gpus,
                               const std::vector<CpuNode *> &cpus)
{
    numDomains_ = concurrentSafe ? net.numDomains() : 1;
    domains_.resize(static_cast<std::size_t>(numDomains_));
    const auto domainOf = [&](NodeId node) {
        return numDomains_ > 1 ? net.domainOfNode(node) : 0;
    };
    for (MemNode *m : mems) {
        const int d = domainOf(m->nodeId());
        m->setDomain(d);
        domains_[d].mems.push_back(m);
    }
    for (SmCore *g : gpus) {
        const int d = domainOf(g->nodeId());
        g->setDomain(d);
        domains_[d].gpus.push_back(g);
    }
    for (CpuNode *c : cpus) {
        const int d = domainOf(c->nodeId());
        c->setDomain(d);
        domains_[d].cpus.push_back(c);
    }

    if (numDomains_ > 1) {
        barrier_.reset(numDomains_);
        workers_.reserve(static_cast<std::size_t>(numDomains_ - 1));
        for (int d = 1; d < numDomains_; ++d)
            workers_.emplace_back(&EndpointEngine::workerLoop, this, d);
    }
}

EndpointEngine::~EndpointEngine()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lk(epochMutex_);
            stop_.store(true, std::memory_order_release);
        }
        epochCv_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }
}

void
EndpointEngine::tickDomain(int domainIdx, Cycle now)
{
    // Canonical order within a domain mirrors the serial schedule
    // (memory nodes, then GPU cores, then CPU nodes); endpoints in one
    // domain are mutually independent during the compute phase, but
    // keeping the order makes serial and parallel traces line up.
    Partition &p = domains_[domainIdx];
    for (MemNode *m : p.mems)
        m->tick(now);
    for (SmCore *g : p.gpus)
        g->tick(now);
    for (CpuNode *c : p.cpus)
        c->tick(now);
}

void
EndpointEngine::tick(Cycle now)
{
    DR_PHASE_ASSERT_COMMIT();
    if (numDomains_ == 1) {
        // Serial mode (noc.threads == 1 or a non-concurrency-safe L1
        // organization): same staging and merge, no compute scope, so
        // unit tests and shared-L1 configs keep plain serial
        // semantics.
        tickDomain(0, now);
        return;
    }

    now_ = now;
    {
        std::lock_guard<std::mutex> lk(epochMutex_);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    epochCv_.notify_all();
    {
        // The main thread acts as domain 0's worker.
        phase::ComputeScope cs(0);
        DR_PHASE_ASSERT_COMPUTE();
        tickDomain(0, now);
    }
    barrier_.arriveAndWait();  // endpoint compute -> serial merge
}

void
EndpointEngine::workerLoop(int domainIdx)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Spin briefly for the next tick (it usually follows
        // immediately), then sleep on the condition variable so idle
        // stretches don't burn a core.
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (stop_.load(std::memory_order_acquire))
                return;
            if (spins < 1024) {
                cpuRelax(spins);
            } else {
                std::unique_lock<std::mutex> lk(epochMutex_);
                epochCv_.wait(lk, [&] {
                    return epoch_.load(std::memory_order_relaxed) !=
                               seen ||
                           stop_.load(std::memory_order_relaxed);
                });
            }
        }
        ++seen;
        {
            phase::ComputeScope cs(domainIdx);
            DR_PHASE_ASSERT_COMPUTE();
            tickDomain(domainIdx, now_);
        }
        barrier_.arriveAndWait();  // endpoint compute -> serial merge
    }
}

} // namespace dr

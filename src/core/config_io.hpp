#ifndef DR_CORE_CONFIG_IO_HPP
#define DR_CORE_CONFIG_IO_HPP

/**
 * @file
 * Textual configuration I/O for SystemConfig: a flat `section.key =
 * value` format (gem5-style) so experiments are reproducible from a
 * file instead of code. Every knob of every subsystem is addressable;
 * unknown keys are fatal (catching typos), and serialization
 * round-trips exactly.
 *
 * Example:
 * ```
 * mechanism = delegated-replies
 * layout = B
 * noc.topology = dragonfly
 * noc.bandwidthScale = 2.0
 * gpu.l1SizeKB = 64
 * sim.cycles = 50000
 * ```
 */

#include <iosfwd>
#include <string>

#include "common/config.hpp"

namespace dr
{

/** Apply one `key = value` assignment. fatal() on unknown keys/values. */
void applyConfigOption(SystemConfig &cfg, const std::string &key,
                       const std::string &value);

/**
 * Parse a configuration stream (one `key = value` per line; `#` starts
 * a comment; blank lines ignored) onto an existing config.
 */
void parseConfig(SystemConfig &cfg, std::istream &in);

/** Parse a configuration file. fatal() if unreadable. */
void parseConfigFile(SystemConfig &cfg, const std::string &path);

/** Serialize every knob (inverse of parseConfig). */
void writeConfig(const SystemConfig &cfg, std::ostream &out);

} // namespace dr

#endif // DR_CORE_CONFIG_IO_HPP

#ifndef DR_CORE_ENDPOINT_ENGINE_HPP
#define DR_CORE_ENDPOINT_ENGINE_HPP

/**
 * @file
 * Parallel endpoint tick engine (DESIGN.md §13). Extends the NoC's
 * spatial tick domains to the chip's endpoints: every SM core, CPU node
 * and memory node is assigned to the domain of its attach router and
 * ticked in an *endpoint compute phase* that runs after the network's
 * own two-phase cycle. During the phase each endpoint touches only its
 * own state plus its own network interface, and every send is staged in
 * the interconnect's per-node outbox (Interconnect::beginStaging); the
 * enclosing HeteroSystem then drains the outboxes and resolves the
 * staged cross-endpoint effects (locality-oracle queries, CTA refills)
 * in one canonical serial merge, so every thread count replays the
 * exact serial schedule — bit-identical by construction.
 *
 * When the configured L1 organization is not concurrency-safe (the
 * shared DC-L1 slices and DynEB mutate cross-core state on every
 * lookup), the engine collapses to a single domain ticked serially,
 * with the same staging and merge so the semantics stay uniform.
 */

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "common/ownership.hpp"
#include "common/types.hpp"
#include "noc/parallel.hpp"

namespace dr
{

class CpuNode;
class MemNode;
class Network;
class SmCore;

/** Ticks the chip's endpoints, in parallel across NoC domains. */
class EndpointEngine
{
  public:
    /**
     * Partition the endpoints over `net`'s spatial domains (attach-
     * router domain, Network::domainOfNode). `concurrentSafe` false
     * forces one serially-ticked domain. Calls setDomain() on every
     * endpoint with its partition domain.
     */
    EndpointEngine(const Network &net, bool concurrentSafe,
                   const std::vector<MemNode *> &mems,
                   const std::vector<SmCore *> &gpus,
                   const std::vector<CpuNode *> &cpus);
    ~EndpointEngine();

    EndpointEngine(const EndpointEngine &) = delete;
    EndpointEngine &operator=(const EndpointEngine &) = delete;

    /**
     * Run the endpoint compute phase for one cycle. The caller must
     * have staging active on the interconnect; on return every
     * endpoint has ticked and its sends sit in the per-node outboxes.
     */
    void tick(Cycle now);

    int numDomains() const { return numDomains_; }
    bool parallel() const { return numDomains_ > 1; }

  private:
    /** One domain's slice of the endpoints, in canonical tick order. */
    struct Partition
    {
        std::vector<MemNode *> mems;
        std::vector<SmCore *> gpus;
        std::vector<CpuNode *> cpus;
    };

    void tickDomain(int domainIdx, Cycle now) DR_ENDPOINT_PHASE;
    void workerLoop(int domainIdx);

    int numDomains_ DR_SERIAL_ONLY = 1;
    std::vector<Partition> domains_ DR_SERIAL_ONLY;

    // Worker rendezvous: identical protocol to Network's pool — an
    // epoch bump (under the mutex, so sleepers can't miss it) starts a
    // tick, the barrier ends the compute phase, and the atomics are
    // their own synchronization.
    SpinBarrier barrier_;
    std::atomic<std::uint64_t> epoch_{0};
    std::atomic<bool> stop_{false};
    std::mutex epochMutex_;
    std::condition_variable epochCv_;
    std::vector<std::thread> workers_;
    Cycle now_ DR_SERIAL_ONLY = 0;
};

} // namespace dr

#endif // DR_CORE_ENDPOINT_ENGINE_HPP

#ifndef DR_WORKLOADS_GPU_BENCHMARKS_HPP
#define DR_WORKLOADS_GPU_BENCHMARKS_HPP

/**
 * @file
 * The 11 GPU benchmarks of Table II, rebuilt as synthetic kernels whose
 * access *structure* matches the original CUDA codes: stencils read
 * overlapping halo rows (2DCON, 3DCON, HS, LPS, SRAD), tiled GEMM
 * re-reads row/column tiles across the grid (MM, LUD), B+tree search
 * shares the upper tree levels (BT), streaming kernels share read-only
 * record/center sets (NN, SC), and backprop is write-heavy (BP). These
 * structures — not tuned probabilities — produce the inter-core
 * locality of Figure 2 and the miss-breakdown of Figure 14.
 */

#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hpp"

namespace dr
{

/** All GPU benchmark names, in the paper's order. */
std::vector<std::string> gpuBenchmarkNames();

/** Instantiate a benchmark by name; fatal() on unknown names. */
std::unique_ptr<KernelAccessPattern> makeGpuBenchmark(
    const std::string &name);

/**
 * A fully parameterized stencil kernel, exposed for tests and custom
 * workloads (examples/custom_workload).
 */
struct StencilSpec
{
    std::string name = "stencil";
    int ctas = 128;           //!< row-tiles in the grid
    int warpsPerCta = 4;
    int rowsPerCta = 2;       //!< output rows computed per CTA
    int halo = 2;             //!< extra input rows read on each side
    int rowLines = 64;        //!< cache lines per matrix row
    int colsPerWarp = 16;     //!< lines of each row a warp reads
    int writeEvery = 5;       //!< every n-th access is an output store
    int computePerMem = 4;
    int sweeps = 2;           //!< input re-reads per warp lifetime
    int warpsPerGroup = 1;    //!< warps sharing one column slice
};

std::unique_ptr<KernelAccessPattern> makeStencil(const StencilSpec &spec);

} // namespace dr

#endif // DR_WORKLOADS_GPU_BENCHMARKS_HPP

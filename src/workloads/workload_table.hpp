#ifndef DR_WORKLOADS_WORKLOAD_TABLE_HPP
#define DR_WORKLOADS_WORKLOAD_TABLE_HPP

/**
 * @file
 * Table II: the 33 heterogeneous CPU-GPU workloads. Each GPU benchmark
 * co-runs with three CPU benchmarks; in every run all CPU cores execute
 * one CPU benchmark.
 */

#include <string>
#include <vector>

namespace dr
{

/** One row of Table II. */
struct WorkloadMix
{
    std::string gpu;
    std::vector<std::string> cpuOptions;  //!< the three CPU co-runners
};

/** The full Table II. */
const std::vector<WorkloadMix> &workloadTable();

/** The CPU co-runners for a GPU benchmark (fatal on unknown names). */
const std::vector<std::string> &cpuCoRunnersFor(const std::string &gpu);

} // namespace dr

#endif // DR_WORKLOADS_WORKLOAD_TABLE_HPP

#ifndef DR_WORKLOADS_TRACE_KERNEL_HPP
#define DR_WORKLOADS_TRACE_KERNEL_HPP

/**
 * @file
 * Trace-driven GPU workloads: run a recorded (or externally generated)
 * address trace through the full system instead of a synthetic
 * generator — the "bring your own application" path of the library.
 *
 * Trace format (text): one access per line, `R <hex-addr>` or
 * `W <hex-addr>`, with `#` comments. The trace is partitioned over
 * warps: warp w of CTA c plays the slice starting at
 * (c * warpsPerCta + w) * accessesPerWarp, wrapping around the trace.
 */

#include <memory>
#include <string>
#include <vector>

#include "gpu/kernel.hpp"

namespace dr
{

/** One parsed trace record. */
struct TraceRecord
{
    Addr addr = 0;
    bool write = false;
};

/** Parse a trace stream. fatal() on malformed lines. */
std::vector<TraceRecord> parseTrace(std::istream &in);

/** Parse a trace file. fatal() if unreadable. */
std::vector<TraceRecord> loadTraceFile(const std::string &path);

/** Write records in the canonical text format. */
void writeTrace(const std::vector<TraceRecord> &records,
                std::ostream &out);

/** A kernel that replays a trace, partitioned over CTAs and warps. */
class TraceKernel : public KernelAccessPattern
{
  public:
    /**
     * @param records the trace (must be non-empty)
     * @param ctas grid size to expose
     * @param warpsPerCta warps per CTA
     * @param accessesPerWarp slice length per warp
     * @param computePerMem compute instructions between accesses
     */
    TraceKernel(std::string name, std::vector<TraceRecord> records,
                int ctas, int warpsPerCta, int accessesPerWarp,
                int computePerMem);

    std::string name() const override { return name_; }
    int ctaCount() const override { return ctas_; }
    int warpsPerCta() const override { return warpsPerCta_; }
    int accessesPerWarp() const override { return accessesPerWarp_; }
    int computePerMem() const override { return computePerMem_; }
    MemAccess access(int cta, int warp, int idx) const override;

    std::size_t traceLength() const { return records_.size(); }

  private:
    std::string name_;
    std::vector<TraceRecord> records_;
    int ctas_;
    int warpsPerCta_;
    int accessesPerWarp_;
    int computePerMem_;
};

/**
 * Generate a sample trace with tunable sharing: `sharedFraction` of the
 * accesses target a `sharedLines`-line region that all warps revisit
 * (inter-core locality), the rest stream privately. Useful for testing
 * and as a template for external trace producers.
 */
std::vector<TraceRecord> makeSampleTrace(int records, int sharedLines,
                                         double sharedFraction,
                                         double writeFraction,
                                         std::uint64_t seed);

} // namespace dr

#endif // DR_WORKLOADS_TRACE_KERNEL_HPP

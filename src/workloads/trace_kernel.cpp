#include "workloads/trace_kernel.hpp"

#include <fstream>
#include <sstream>

#include "common/log.hpp"
#include "common/rng.hpp"

namespace dr
{

std::vector<TraceRecord>
parseTrace(std::istream &in)
{
    std::vector<TraceRecord> records;
    std::string line;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        std::istringstream fields(line);
        std::string op, addrStr;
        if (!(fields >> op))
            continue;  // blank line
        if (!(fields >> addrStr))
            fatal("trace: line ", lineNo, " is missing an address");
        if (op != "R" && op != "W")
            fatal("trace: line ", lineNo, " has op '", op,
                  "' (expected R or W)");
        TraceRecord record;
        record.write = op == "W";
        try {
            record.addr = std::stoull(addrStr, nullptr, 16);
        } catch (const std::exception &) {
            fatal("trace: line ", lineNo, " has a bad address '", addrStr,
                  "'");
        }
        records.push_back(record);
    }
    return records;
}

std::vector<TraceRecord>
loadTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("trace: cannot open '", path, "'");
    return parseTrace(in);
}

void
writeTrace(const std::vector<TraceRecord> &records, std::ostream &out)
{
    for (const auto &r : records)
        out << (r.write ? "W " : "R ") << std::hex << r.addr << std::dec
            << "\n";
}

TraceKernel::TraceKernel(std::string name,
                         std::vector<TraceRecord> records, int ctas,
                         int warpsPerCta, int accessesPerWarp,
                         int computePerMem)
    : name_(std::move(name)), records_(std::move(records)), ctas_(ctas),
      warpsPerCta_(warpsPerCta), accessesPerWarp_(accessesPerWarp),
      computePerMem_(computePerMem)
{
    if (records_.empty())
        fatal("trace kernel '", name_, "' has an empty trace");
    if (ctas_ < 1 || warpsPerCta_ < 1 || accessesPerWarp_ < 1)
        fatal("trace kernel '", name_, "' has an empty geometry");
}

MemAccess
TraceKernel::access(int cta, int warp, int idx) const
{
    const std::size_t slice =
        (static_cast<std::size_t>(cta) * warpsPerCta_ + warp) *
        accessesPerWarp_;
    const TraceRecord &record =
        records_[(slice + static_cast<std::size_t>(idx)) %
                 records_.size()];
    return {record.addr, record.write};
}

std::vector<TraceRecord>
makeSampleTrace(int records, int sharedLines, double sharedFraction,
                double writeFraction, std::uint64_t seed)
{
    constexpr Addr sharedBase = 0x300000000ull;
    constexpr Addr privateBase = 0x310000000ull;
    constexpr Addr lineBytes = 128;
    Rng rng(seed);
    std::vector<TraceRecord> out;
    out.reserve(records);
    Addr streamCursor = 0;
    for (int i = 0; i < records; ++i) {
        TraceRecord r;
        r.write = rng.chance(writeFraction);
        if (rng.chance(sharedFraction)) {
            r.addr = sharedBase + rng.below(sharedLines) * lineBytes;
        } else {
            streamCursor += lineBytes;
            r.addr = privateBase + streamCursor;
        }
        out.push_back(r);
    }
    return out;
}

} // namespace dr

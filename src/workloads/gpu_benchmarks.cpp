#include "workloads/gpu_benchmarks.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace dr
{

namespace
{

constexpr Addr lineBytes = 128;

/** Disjoint 256 MB address regions per benchmark. */
Addr
regionBase(int slot)
{
    return 0x100000000ull + static_cast<Addr>(slot) * 0x10000000ull;
}

/** Deterministic mixing for irregular patterns (B+tree). */
std::uint64_t
mix(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t x = a * 0x9e3779b97f4a7c15ull + b * 0xbf58476d1ce4e5b9ull +
                      c * 0x94d049bb133111ebull;
    x ^= x >> 29;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 32;
    return x;
}

/**
 * Row-tiled stencil: CTA c computes rows [c*R, (c+1)*R) and reads halo
 * rows on both sides, so each input row is read by 1 + 2*halo/R CTAs —
 * inter-core locality by construction under round-robin scheduling.
 */
class StencilPattern : public KernelAccessPattern
{
  public:
    StencilPattern(const StencilSpec &spec, int regionSlot)
        : spec_(spec), inBase_(regionBase(regionSlot)),
          outBase_(regionBase(regionSlot) + 0x8000000ull)
    {
        colsPerWarp_ = spec_.colsPerWarp > 0
                           ? spec_.colsPerWarp
                           : std::max(1, spec_.rowLines / spec_.warpsPerCta);
        readRows_ = spec_.rowsPerCta + 2 * spec_.halo;
        readsPerSweep_ = readRows_ * colsPerWarp_;
        const int reads = spec_.sweeps * readsPerSweep_;
        accesses_ = reads + reads / std::max(1, spec_.writeEvery - 1);
    }

    std::string name() const override { return spec_.name; }
    int ctaCount() const override { return spec_.ctas; }
    int warpsPerCta() const override { return spec_.warpsPerCta; }
    int accessesPerWarp() const override { return accesses_; }
    int computePerMem() const override { return spec_.computePerMem; }

    MemAccess
    access(int cta, int warp, int idx) const override
    {
        const int totalRows = spec_.ctas * spec_.rowsPerCta;
        // Warps in one group read the same column slice (coalesced
        // overlapping loads), bounding the CTA's L1 footprint.
        const int group = warp / std::max(1, spec_.warpsPerGroup);
        const int warpCol =
            (group * colsPerWarp_) % std::max(1, spec_.rowLines);
        if (spec_.writeEvery > 0 &&
            idx % spec_.writeEvery == spec_.writeEvery - 1) {
            const int w = idx / spec_.writeEvery;
            const int outRow =
                cta * spec_.rowsPerCta + w % spec_.rowsPerCta;
            const int col = (w / spec_.rowsPerCta) % colsPerWarp_;
            const Addr line =
                static_cast<Addr>(outRow) * spec_.rowLines + warpCol + col;
            return {outBase_ + line * lineBytes, true};
        }
        const int k =
            (idx - (spec_.writeEvery > 0 ? idx / spec_.writeEvery : 0)) %
            std::max(1, spec_.sweeps * readsPerSweep_);
        const int within = k % readsPerSweep_;
        const int r = within / colsPerWarp_;
        const int col = within % colsPerWarp_;
        int row = cta * spec_.rowsPerCta - spec_.halo + r;
        row = ((row % totalRows) + totalRows) % totalRows;
        const Addr line =
            static_cast<Addr>(row) * spec_.rowLines + warpCol + col;
        return {inBase_ + line * lineBytes, false};
    }

  private:
    StencilSpec spec_;
    Addr inBase_;
    Addr outBase_;
    int colsPerWarp_;
    int readRows_;
    int readsPerSweep_;
    int accesses_;
};

/**
 * Tiled GEMM: CTA (i, j) reads row tiles of A (shared with every CTA of
 * row i) and column tiles of B (shared down column j), then writes its
 * C tile.
 */
class MatMulPattern : public KernelAccessPattern
{
  public:
    MatMulPattern(std::string name, int gridX, int gridY, int kSteps,
                  int tileLines, int tileRows, int warpsPerCta,
                  int computePerMem, int regionSlot)
        : name_(std::move(name)), gridX_(gridX), gridY_(gridY),
          kSteps_(kSteps), tileLines_(tileLines), tileRows_(tileRows),
          warps_(warpsPerCta), compute_(computePerMem),
          aBase_(regionBase(regionSlot)),
          bBase_(regionBase(regionSlot) + 0x4000000ull),
          cBase_(regionBase(regionSlot) + 0x8000000ull)
    {
        accesses_ = kSteps_ * 2 * tileLines_ + tileLines_;  // A+B, then C
    }

    std::string name() const override { return name_; }
    int ctaCount() const override { return gridX_ * gridY_; }
    int warpsPerCta() const override { return warps_; }
    int accessesPerWarp() const override { return accesses_; }
    int computePerMem() const override { return compute_; }

    MemAccess
    access(int cta, int warp, int idx) const override
    {
        const int i = cta / gridX_;
        const int j = cta % gridX_;
        const int row = warp % tileRows_;
        const int aRowLines = kSteps_ * tileLines_;
        const int bRowLines = gridX_ * tileLines_;
        if (idx >= kSteps_ * 2 * tileLines_) {
            // Write the C tile.
            const int col = idx - kSteps_ * 2 * tileLines_;
            const Addr line = static_cast<Addr>(i * tileRows_ + row) *
                                  bRowLines +
                              j * tileLines_ + col;
            return {cBase_ + line * lineBytes, true};
        }
        const int k = idx / (2 * tileLines_);
        const int within = idx % (2 * tileLines_);
        if (within < tileLines_) {
            const Addr line = static_cast<Addr>(i * tileRows_ + row) *
                                  aRowLines +
                              k * tileLines_ + within;
            return {aBase_ + line * lineBytes, false};
        }
        const int col = within - tileLines_;
        const Addr line = static_cast<Addr>(k * tileRows_ + row) *
                              bRowLines +
                          j * tileLines_ + col;
        return {bBase_ + line * lineBytes, false};
    }

  private:
    std::string name_;
    int gridX_, gridY_, kSteps_, tileLines_, tileRows_, warps_, compute_;
    Addr aBase_, bBase_, cBase_;
    int accesses_;
};

/**
 * B+tree search (BT): every query walks the levels; the small upper
 * levels are shared chip-wide while the large leaf level replaces
 * frequently — producing BT's mix of remote hits and remote misses.
 */
class TreePattern : public KernelAccessPattern
{
  public:
    TreePattern(std::string name, int ctas, int warpsPerCta, int queries,
                int levels, int fanout, int leafCapLines,
                int computePerMem, int regionSlot)
        : name_(std::move(name)), ctas_(ctas), warps_(warpsPerCta),
          queries_(queries), levels_(levels), fanout_(fanout),
          compute_(computePerMem), base_(regionBase(regionSlot))
    {
        levelLines_.resize(levels_);
        levelOffset_.resize(levels_);
        Addr offset = 0;
        std::int64_t lines = 1;
        for (int l = 0; l < levels_; ++l) {
            levelLines_[l] = static_cast<int>(
                std::min<std::int64_t>(lines, leafCapLines));
            levelOffset_[l] = offset;
            offset += static_cast<Addr>(levelLines_[l]) * lineBytes;
            lines *= fanout_;
        }
    }

    std::string name() const override { return name_; }
    int ctaCount() const override { return ctas_; }
    int warpsPerCta() const override { return warps_; }
    int accessesPerWarp() const override { return queries_ * levels_; }
    int computePerMem() const override { return compute_; }

    MemAccess
    access(int cta, int warp, int idx) const override
    {
        const int q = idx / levels_;
        const int l = idx % levels_;
        const std::uint64_t h = mix(static_cast<std::uint64_t>(cta), warp,
                                    static_cast<std::uint64_t>(q) * 31 + l);
        const int node =
            static_cast<int>(h % static_cast<std::uint64_t>(
                                     std::max(1, levelLines_[l])));
        return {base_ + levelOffset_[l] +
                    static_cast<Addr>(node) * lineBytes,
                false};
    }

  private:
    std::string name_;
    int ctas_, warps_, queries_, levels_, fanout_, compute_;
    Addr base_;
    std::vector<int> levelLines_;
    std::vector<Addr> levelOffset_;
};

/**
 * NN-style streaming: most accesses hit a warp-private record buffer
 * (low L1 miss rate, 4.3% in the paper); the misses stream a shared
 * record window that overlapping CTAs also read, so a large fraction of
 * the few misses find a remote copy.
 */
class StreamSharedPattern : public KernelAccessPattern
{
  public:
    StreamSharedPattern(std::string name, int ctas, int warpsPerCta,
                        int accesses, int privLines, int sharedLines,
                        int sharedEvery, int computePerMem, int regionSlot)
        : name_(std::move(name)), ctas_(ctas), warps_(warpsPerCta),
          accesses_(accesses), privLines_(privLines),
          sharedLines_(sharedLines), sharedEvery_(sharedEvery),
          compute_(computePerMem), base_(regionBase(regionSlot)),
          privBase_(regionBase(regionSlot) + 0x8000000ull)
    {
    }

    std::string name() const override { return name_; }
    int ctaCount() const override { return ctas_; }
    int warpsPerCta() const override { return warps_; }
    int accessesPerWarp() const override { return accesses_; }
    int computePerMem() const override { return compute_; }

    MemAccess
    access(int cta, int warp, int idx) const override
    {
        if (idx % sharedEvery_ == sharedEvery_ - 1) {
            // Shared stream: all CTAs of one launch wave (consecutive
            // CTA ids, spread across cores by round-robin scheduling)
            // stream the same record window -> the few misses usually
            // find a copy in a remote L1 (Figure 2's NN behaviour).
            const int t = idx / sharedEvery_;
            const int wave = cta / 40;
            // Stagger the per-CTA window inside the wave so sharers
            // re-read a line a few hundred cycles apart: the LLC then
            // serves them as (delegatable) hits rather than merging
            // them into one in-flight fill.
            const int start =
                (wave * 83 + (cta % 40) * 5) % sharedLines_;
            const int line = (start + t) % sharedLines_;
            return {base_ + static_cast<Addr>(line) * lineBytes, false};
        }
        const int slot = (static_cast<long>(cta) * warps_ + warp) %
                         (64 * 1024);
        const int line = idx % privLines_;
        return {privBase_ +
                    (static_cast<Addr>(slot) * privLines_ + line) *
                        lineBytes,
                false};
    }

  private:
    std::string name_;
    int ctas_, warps_, accesses_, privLines_, sharedLines_, sharedEvery_,
        compute_;
    Addr base_;
    Addr privBase_;
};

/**
 * Streamcluster (SC): half the accesses read a small chip-wide center
 * set (cache-resident), the rest stream CTA-private points that live in
 * the LLC — few delegatable replies, modest DR benefit (the paper's
 * explanation for SC/LUD/BP).
 */
class CenterStreamPattern : public KernelAccessPattern
{
  public:
    CenterStreamPattern(std::string name, int ctas, int warpsPerCta,
                        int accesses, int centerLines, int pointLines,
                        int sweeps, double writeFraction,
                        int computePerMem, int regionSlot)
        : name_(std::move(name)), ctas_(ctas), warps_(warpsPerCta),
          accesses_(accesses), centerLines_(centerLines),
          pointLines_(pointLines), sweeps_(sweeps),
          writeEvery_(writeFraction > 0
                          ? std::max(2, static_cast<int>(1.0 / writeFraction))
                          : 0),
          compute_(computePerMem), centerBase_(regionBase(regionSlot)),
          pointBase_(regionBase(regionSlot) + 0x8000000ull)
    {
    }

    std::string name() const override { return name_; }
    int ctaCount() const override { return ctas_; }
    int warpsPerCta() const override { return warps_; }
    int accessesPerWarp() const override { return accesses_; }
    int computePerMem() const override { return compute_; }

    MemAccess
    access(int cta, int warp, int idx) const override
    {
        const bool write =
            writeEvery_ > 0 && idx % writeEvery_ == writeEvery_ - 1;
        if (write && (idx / writeEvery_) % 2 == 0) {
            // Periodic center *updates* (cluster re-centering): these
            // write-through stores invalidate the LLC core pointers, so
            // the hot shared lines are rarely delegatable -- the reason
            // SC sees few delegated replies in the paper.
            const std::uint64_t h = mix(cta, warp, idx);
            const int line =
                static_cast<int>(h % static_cast<std::uint64_t>(
                                         centerLines_));
            return {centerBase_ + static_cast<Addr>(line) * lineBytes,
                    true};
        }
        if (!write && idx % 2 == 0) {
            // Center set: tiny, read by every CTA.
            const std::uint64_t h = mix(cta, warp, idx);
            const int line =
                static_cast<int>(h % static_cast<std::uint64_t>(
                                         centerLines_));
            return {centerBase_ + static_cast<Addr>(line) * lineBytes,
                    false};
        }
        // CTA-private points, swept `sweeps_` times.
        const int t = idx / 2;
        const int line = (t + warp * 3) % (pointLines_ * sweeps_) %
                         pointLines_;
        const Addr addr = pointBase_ +
                          (static_cast<Addr>(cta) * pointLines_ + line) *
                              lineBytes;
        return {addr, write};
    }

  private:
    std::string name_;
    int ctas_, warps_, accesses_, centerLines_, pointLines_, sweeps_,
        writeEvery_, compute_;
    Addr centerBase_;
    Addr pointBase_;
};

/**
 * Backprop (BP): write-heavy weight updates (private, streaming) with
 * reads of the shared input/hidden layers. Stresses the *request*
 * network — the reason asymmetric VC partitioning hurts BP (Figure 6).
 */
class BackpropPattern : public KernelAccessPattern
{
  public:
    BackpropPattern(int ctas, int warpsPerCta, int accesses,
                    int layerLines, int weightLines, int computePerMem,
                    int regionSlot)
        : ctas_(ctas), warps_(warpsPerCta), accesses_(accesses),
          layerLines_(layerLines), weightLines_(weightLines),
          compute_(computePerMem), layerBase_(regionBase(regionSlot)),
          weightBase_(regionBase(regionSlot) + 0x8000000ull)
    {
    }

    std::string name() const override { return "BP"; }
    int ctaCount() const override { return ctas_; }
    int warpsPerCta() const override { return warps_; }
    int accessesPerWarp() const override { return accesses_; }
    int computePerMem() const override { return compute_; }

    MemAccess
    access(int cta, int warp, int idx) const override
    {
        // Alternate read (layer) / write (weight): ~45% stores.
        if (idx % 9 >= 5) {
            const int t = idx / 2;
            const Addr line =
                (static_cast<Addr>(cta) * warps_ + warp) * weightLines_ +
                t % weightLines_;
            return {weightBase_ + line * lineBytes, true};
        }
        const int line = (idx / 2 + warp * 5) % layerLines_;
        return {layerBase_ + static_cast<Addr>(line) * lineBytes, false};
    }

  private:
    int ctas_, warps_, accesses_, layerLines_, weightLines_, compute_;
    Addr layerBase_;
    Addr weightBase_;
};

} // namespace

std::vector<std::string>
gpuBenchmarkNames()
{
    return {"2DCON", "3DCON", "BT", "SC", "HS", "LPS", "LUD", "MM", "NN",
            "SRAD", "BP"};
}

std::unique_ptr<KernelAccessPattern>
makeStencil(const StencilSpec &spec)
{
    return std::make_unique<StencilPattern>(spec, 15);
}

std::unique_ptr<KernelAccessPattern>
makeGpuBenchmark(const std::string &name)
{
    if (name == "2DCON") {
        // 5x5 convolution over single-row tiles: each input row is read
        // by 5 CTAs -> very high inter-core locality.
        StencilSpec s;
        s.name = "2DCON";
        s.ctas = 512;
        s.warpsPerCta = 8;
        s.rowsPerCta = 1;
        s.halo = 2;
        s.rowLines = 32;
        s.colsPerWarp = 4;
        s.writeEvery = 6;
        s.computePerMem = 4;
        s.sweeps = 2;
        s.warpsPerGroup = 4;
        return std::make_unique<StencilPattern>(s, 0);
    }
    if (name == "3DCON") {
        // 3D stencil: wider rows and single sweep -> frequent L1
        // replacement of recently shared lines (remote misses).
        StencilSpec s;
        s.name = "3DCON";
        s.ctas = 512;
        s.warpsPerCta = 8;
        s.rowsPerCta = 2;
        s.halo = 2;
        s.rowLines = 32;
        s.colsPerWarp = 4;
        s.writeEvery = 6;
        s.computePerMem = 3;
        s.sweeps = 2;
        s.warpsPerGroup = 4;
        return std::make_unique<StencilPattern>(s, 1);
    }
    if (name == "BT") {
        return std::make_unique<TreePattern>("BT", 1024, 8, 64, 4, 64,
                                             6144, 6, 2);
    }
    if (name == "SC") {
        return std::make_unique<CenterStreamPattern>(
            "SC", 512, 8, 384, 96, 24, 2, 0.08, 4, 3);
    }
    if (name == "HS") {
        // Iterative 3x3 stencil (hotspot): highest locality and reuse.
        StencilSpec s;
        s.name = "HS";
        s.ctas = 512;
        s.warpsPerCta = 8;
        s.rowsPerCta = 1;
        s.halo = 1;
        s.rowLines = 24;
        s.colsPerWarp = 3;
        s.writeEvery = 5;
        s.computePerMem = 3;
        s.sweeps = 4;
        s.warpsPerGroup = 3;
        return std::make_unique<StencilPattern>(s, 4);
    }
    if (name == "LPS") {
        StencilSpec s;
        s.name = "LPS";
        s.ctas = 512;
        s.warpsPerCta = 8;
        s.rowsPerCta = 2;
        s.halo = 1;
        s.rowLines = 32;
        s.colsPerWarp = 4;
        s.writeEvery = 5;
        s.computePerMem = 3;
        s.sweeps = 1;
        s.warpsPerGroup = 4;
        return std::make_unique<StencilPattern>(s, 5);
    }
    if (name == "LUD") {
        // Small tiled factorization: fits the LLC, strong tile reuse.
        return std::make_unique<MatMulPattern>("LUD", 8, 8, 8, 4, 8, 8, 20,
                                               6);
    }
    if (name == "MM") {
        return std::make_unique<MatMulPattern>("MM", 16, 16, 12, 6, 8, 8,
                                               6, 7);
    }
    if (name == "NN") {
        return std::make_unique<StreamSharedPattern>("NN", 1024, 8, 400, 5,
                                                     4096, 10, 1, 8);
    }
    if (name == "SRAD") {
        StencilSpec s;
        s.name = "SRAD";
        s.ctas = 512;
        s.warpsPerCta = 8;
        s.rowsPerCta = 2;
        s.halo = 1;
        s.rowLines = 24;
        s.colsPerWarp = 3;
        s.writeEvery = 4;
        s.computePerMem = 5;
        s.sweeps = 2;
        s.warpsPerGroup = 8;
        return std::make_unique<StencilPattern>(s, 9);
    }
    if (name == "BP") {
        return std::make_unique<BackpropPattern>(512, 8, 360, 256, 32, 3,
                                                 10);
    }
    fatal("unknown GPU benchmark '", name, "'");
}

} // namespace dr

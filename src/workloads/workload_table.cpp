#include "workloads/workload_table.hpp"

#include "common/log.hpp"

namespace dr
{

const std::vector<WorkloadMix> &
workloadTable()
{
    // Verbatim from Table II of the paper.
    static const std::vector<WorkloadMix> table = {
        {"2DCON", {"blackscholes", "canneal", "dedup"}},
        {"3DCON", {"bodytrack", "dedup", "fluidanimate"}},
        {"BT", {"dedup", "fluidanimate", "vips"}},
        {"SC", {"bodytrack", "ferret", "swaptions"}},
        {"HS", {"bodytrack", "ferret", "x264"}},
        {"LPS", {"fluidanimate", "vips", "x264"}},
        {"LUD", {"ferret", "blackscholes", "swaptions"}},
        {"MM", {"canneal", "fluidanimate", "vips"}},
        {"NN", {"blackscholes", "fluidanimate", "swaptions"}},
        {"SRAD", {"fluidanimate", "ferret", "x264"}},
        {"BP", {"blackscholes", "bodytrack", "ferret"}},
    };
    return table;
}

const std::vector<std::string> &
cpuCoRunnersFor(const std::string &gpu)
{
    for (const auto &mix : workloadTable()) {
        if (mix.gpu == gpu)
            return mix.cpuOptions;
    }
    fatal("no workload mix for GPU benchmark '", gpu, "'");
}

} // namespace dr

#include "power/sram_area.hpp"

namespace dr
{

namespace
{

// Dense SRAM arrays (pointer storage inside LLC tag arrays): calibrated
// so the Table I configuration — (65536 LLC lines + 512 LLC MSHRs) x
// 6-bit pointers — comes out at the paper's 0.08 mm^2.
constexpr double denseAreaPerBit = 0.08 / ((65536.0 + 512.0) * 6.0);

// Small standalone queues (FRQs) have far lower density; calibrated so
// 40 cores x 8 entries x 64 bits equals the paper's 0.092 mm^2.
constexpr double queueAreaPerBit = 0.092 / (40.0 * 8.0 * 64.0);
constexpr int frqEntryBits = 64;

} // namespace

int
bitsFor(int n)
{
    int bits = 0;
    while ((1 << bits) < n)
        ++bits;
    return bits;
}

double
sramAreaMm2(double bits)
{
    return denseAreaPerBit * bits;
}

double
drPointerAreaMm2(const SystemConfig &cfg)
{
    const int pointerBits = bitsFor(cfg.gpu.numCores);
    const double llcLines =
        static_cast<double>(cfg.mem.numNodes) * cfg.mem.llcSliceKB *
        1024.0 / cfg.mem.lineBytes;
    const double mshrEntries =
        static_cast<double>(cfg.mem.numNodes) * cfg.mem.llcMshrs;
    return sramAreaMm2((llcLines + mshrEntries) * pointerBits);
}

double
drFrqAreaMm2(const SystemConfig &cfg)
{
    return queueAreaPerBit * cfg.gpu.numCores * cfg.gpu.frqEntries *
           frqEntryBits;
}

double
drTotalAreaMm2(const SystemConfig &cfg)
{
    return drPointerAreaMm2(cfg) + drFrqAreaMm2(cfg);
}

} // namespace dr

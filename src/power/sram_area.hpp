#ifndef DR_POWER_SRAM_AREA_HPP
#define DR_POWER_SRAM_AREA_HPP

/**
 * @file
 * CACTI-like SRAM area estimates (22 nm) for the Delegated Replies
 * hardware additions (Section IV): per-line core pointers in the LLC
 * and MSHRs, and the per-core Forwarded Request Queues. Calibrated to
 * the paper's CACTI 6.5 / DSENT numbers: 0.08 mm^2 of pointer storage
 * and 0.092 mm^2 of FRQs, 0.172 mm^2 in total.
 */

#include "common/config.hpp"

namespace dr
{

/** Area of an SRAM structure of `bits` bits at 22 nm (mm^2). */
double sramAreaMm2(double bits);

/** Bits needed to name one of `n` items. */
int bitsFor(int n);

/** Core-pointer storage: LLC lines + MSHR entries (mm^2). */
double drPointerAreaMm2(const SystemConfig &cfg);

/** Forwarded Request Queues across all GPU cores (mm^2). */
double drFrqAreaMm2(const SystemConfig &cfg);

/** Total Delegated Replies area overhead (mm^2). */
double drTotalAreaMm2(const SystemConfig &cfg);

} // namespace dr

#endif // DR_POWER_SRAM_AREA_HPP

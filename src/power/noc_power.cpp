#include "power/noc_power.hpp"

#include "noc/topology.hpp"

namespace dr
{

namespace
{

// Calibration (see header): with the Table I mesh — 64 routers x 2
// physical networks, 5 ports, 2 VCs x 4 flits, 16 B channels — total
// router+link area must be 2.27 mm^2, and 5.76 mm^2 at 32 B channels.
// Buffer/allocator area ~ width; crossbar ~ width^2 * ports^2.
constexpr double bufferCoef = 1.611e-5;   // mm^2 per byte per VC-flit
constexpr double crossbarCoef = 7.446e-7; // mm^2 per (byte*port)^2
constexpr double linkCoef = 4.74e-5;      // mm^2 per byte per link

} // namespace

double
routerAreaMm2(int ports, int channelBytes, int vcs, int vcDepth)
{
    const double buffers =
        bufferCoef * channelBytes * vcs * vcDepth * ports;
    const double crossbar = crossbarCoef *
                            static_cast<double>(channelBytes) *
                            channelBytes * ports * ports;
    return buffers + crossbar;
}

double
linkAreaMm2(int channelBytes)
{
    return linkCoef * channelBytes;
}

double
nocAreaMm2(const SystemConfig &cfg)
{
    const Topology topo = Topology::make(
        cfg.noc.topology, cfg.nodeCount(), cfg.noc.meshWidth,
        cfg.noc.meshHeight);
    const int channel = cfg.noc.effectiveChannelBytes();
    const int networks = cfg.noc.sharedPhysical ? 1 : 2;
    const int vcs = cfg.noc.sharedPhysical
                        ? cfg.noc.sharedReqVcs + cfg.noc.sharedReplyVcs
                        : cfg.noc.vcsPerNet;

    double area = 0.0;
    for (int r = 0; r < topo.routers(); ++r) {
        area += networks * routerAreaMm2(topo.radix(r), channel, vcs,
                                         cfg.noc.vcDepthFlits);
    }
    area += networks * topo.channelCount() * linkAreaMm2(channel);
    return area;
}

double
NocEnergyModel::dynamicUj(std::uint64_t bufferWrites,
                          std::uint64_t switchTraversals,
                          std::uint64_t linkTraversals) const
{
    return (bufferWritePj * static_cast<double>(bufferWrites) +
            switchTraversalPj * static_cast<double>(switchTraversals) +
            linkTraversalPj * static_cast<double>(linkTraversals)) *
           1e-6;
}

double
NocEnergyModel::staticUj(int routers, std::uint64_t cycles,
                         double clockGhz) const
{
    const double seconds = static_cast<double>(cycles) / (clockGhz * 1e9);
    return staticPerRouterMw * routers * seconds * 1e3;
}

} // namespace dr

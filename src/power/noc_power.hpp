#ifndef DR_POWER_NOC_POWER_HPP
#define DR_POWER_NOC_POWER_HPP

/**
 * @file
 * DSENT-like analytical NoC area and energy model (22 nm). Following
 * DSENT's structure: input-buffer and allocator area grow linearly with
 * channel width, while the router-internal crossbar grows quadratically
 * with channel width and port count (Section III.B of the paper). The
 * linear/quadratic coefficients are calibrated so the Table I baseline
 * mesh comes out at 2.27 mm^2 and the double-bandwidth mesh at
 * 5.76 mm^2, as the paper reports from DSENT 0.91.
 */

#include <cstdint>

#include "common/config.hpp"

namespace dr
{

/** Area (mm^2) of one router. */
double routerAreaMm2(int ports, int channelBytes, int vcs, int vcDepth);

/** Area (mm^2) of one unidirectional link (4.3 mm at 22 nm). */
double linkAreaMm2(int channelBytes);

/**
 * Total NoC area for a configuration: all routers and channels of all
 * physical networks.
 */
double nocAreaMm2(const SystemConfig &cfg);

/** Per-event dynamic energies (pJ) at 22 nm. */
struct NocEnergyModel
{
    double bufferWritePj = 0.6;   //!< per flit buffered
    double switchTraversalPj = 1.1;  //!< per flit through the crossbar
    double linkTraversalPj = 1.8;    //!< per flit per 4.3 mm link
    double staticPerRouterMw = 0.35;

    /** Dynamic NoC energy in microjoules. */
    double dynamicUj(std::uint64_t bufferWrites,
                     std::uint64_t switchTraversals,
                     std::uint64_t linkTraversals) const;

    /** Static energy over a cycle count at a clock (GHz), microjoules. */
    double staticUj(int routers, std::uint64_t cycles,
                    double clockGhz) const;
};

} // namespace dr

#endif // DR_POWER_NOC_POWER_HPP

#ifndef DR_DEBUG_PROGRESS_WATCHDOG_HPP
#define DR_DEBUG_PROGRESS_WATCHDOG_HPP

/**
 * @file
 * Forward-progress watchdog for deadlock triage. The enclosing system
 * feeds it a monotonic progress signature (packets delivered +
 * instructions retired); if the signature stops changing for a
 * configured window the watchdog dumps per-router occupancy and credit
 * state plus the blocked-flit dependency chain — the wait-for graph a
 * credit leak or protocol cycle shows up in — and then panics (or, in
 * keep-going mode, counts the stall and re-arms).
 */

#include <cstdint>
#include <functional>
#include <iosfwd>

#include "common/types.hpp"

namespace dr
{

class Interconnect;
class Network;

/** Watchdog configuration. */
struct WatchdogParams
{
    /** Cycles without progress before the watchdog fires. */
    Cycle stallCycles = 50000;
    /** panic() on stall (default); false reports, counts, and re-arms. */
    bool abortOnStall = true;
};

/**
 * Detects no-forward-progress and dumps deadlock triage state. Owned by
 * the HeteroSystem (or any harness driving an Interconnect) and fed via
 * observe(); stateless with respect to the simulation proper.
 */
class ProgressWatchdog
{
  public:
    ProgressWatchdog(const Interconnect &ic, const WatchdogParams &params);

    /**
     * Feed one observation. `signature` is any value that changes when
     * the system makes forward progress. Returns true when a stall was
     * detected this call (only possible in keep-going mode — with
     * abortOnStall the call panics instead).
     */
    bool observe(Cycle now, std::uint64_t signature);

    /** Write the triage dump (router state + blocked chains) to `os`. */
    void reportStall(Cycle now, std::ostream &os) const;

    /** Extra owner-supplied state appended to the dump (MSHRs, FRQs). */
    void setExtraDump(std::function<void(std::ostream &)> dump);

    /** Cycle of the last observed progress. */
    Cycle lastProgressCycle() const { return lastProgress_; }

    /** Stalls detected so far (keep-going mode). */
    int stallsDetected() const { return stalls_; }

    /**
     * observe() calls made so far. Regression hook for the idle-skip
     * fast path: skipping must clamp to the next due observation, so
     * the count matches the no-skip schedule exactly.
     */
    std::uint64_t observations() const { return observations_; }

  private:
    void dumpNetwork(const Network &net, std::ostream &os) const;
    void dumpBlockedChain(const Network &net, std::ostream &os) const;

    const Interconnect &ic_;
    WatchdogParams params_;
    std::function<void(std::ostream &)> extraDump_;
    std::uint64_t lastSignature_ = 0;
    bool seeded_ = false;
    Cycle lastProgress_ = 0;
    int stalls_ = 0;
    std::uint64_t observations_ = 0;
};

} // namespace dr

#endif // DR_DEBUG_PROGRESS_WATCHDOG_HPP

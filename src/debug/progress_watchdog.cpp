#include "debug/progress_watchdog.hpp"

#include <iostream>
#include <ostream>
#include <set>
#include <sstream>

#include "common/log.hpp"
#include "noc/interconnect.hpp"
#include "noc/network.hpp"

namespace dr
{

ProgressWatchdog::ProgressWatchdog(const Interconnect &ic,
                                   const WatchdogParams &params)
    : ic_(ic), params_(params)
{
    if (params_.stallCycles == 0)
        fatal("watchdog: stallCycles must be positive");
}

void
ProgressWatchdog::setExtraDump(std::function<void(std::ostream &)> dump)
{
    extraDump_ = std::move(dump);
}

bool
ProgressWatchdog::observe(Cycle now, std::uint64_t signature)
{
    ++observations_;
    if (!seeded_ || signature != lastSignature_) {
        seeded_ = true;
        lastSignature_ = signature;
        lastProgress_ = now;
        return false;
    }
    if (now - lastProgress_ < params_.stallCycles)
        return false;

    ++stalls_;
    reportStall(now, std::cerr);
    if (params_.abortOnStall) {
        panic("watchdog: no forward progress for ", now - lastProgress_,
              " cycles (since cycle ", lastProgress_,
              "); router state dumped above");
    }
    lastProgress_ = now;  // re-arm so the next window is measured afresh
    return true;
}

void
ProgressWatchdog::dumpBlockedChain(const Network &net,
                                   std::ostream &os) const
{
    const Topology &topo = net.topology();

    // Start from the most congested router and follow each blocked head
    // to the router (or ejection buffer) it waits on. A revisited router
    // closes the wait-for cycle — the signature of a true deadlock.
    int start = -1;
    int worst = 0;
    for (int r = 0; r < topo.routers(); ++r) {
        const auto heads = net.blockedHeads(r);
        int buffered = 0;
        for (const auto &head : heads)
            buffered += head.buffered;
        if (buffered > worst) {
            worst = buffered;
            start = r;
        }
    }
    if (start < 0) {
        os << "  no blocked flits in network '" << net.name() << "'\n";
        return;
    }

    os << "  blocked-flit dependency chain (network '" << net.name()
       << "'):\n";
    std::set<int> visited;
    int router = start;
    for (int hop = 0; hop <= topo.routers(); ++hop) {
        const auto heads = net.blockedHeads(router);
        if (heads.empty()) {
            os << "    R" << router << ": no blocked heads (waiting on "
               << "arrivals in flight)\n";
            return;
        }
        // Follow the fullest VC — the one most likely on the deadlock
        // cycle.
        const BlockedHead *pick = &heads.front();
        for (const auto &head : heads) {
            if (head.buffered > pick->buffered)
                pick = &head;
        }
        // The producing domain id localizes a stuck chain to a tick
        // worker: a wait-for edge that crosses domains goes through the
        // SPSC staging, one that stays inside a domain commits directly
        // (DESIGN.md §12).
        os << "    R" << router << "/d" << net.domainOfRouter(router)
           << " in[" << pick->inPort << "][" << pick->inVc
           << "] pkt=" << pick->pkt << " (" << pick->buffered
           << " flits) -> ";
        if (pick->outPort < 0) {
            os << "unrouted\n";
            return;
        }
        const PortConn &conn = topo.port(router, pick->outPort);
        if (conn.kind == PortConn::Kind::Node) {
            os << "ejection at node " << conn.node << " (ejFree="
               << net.nodeEjectFree(conn.node) << ")\n";
            return;
        }
        if (conn.kind == PortConn::Kind::None) {
            os << "unconnected port " << pick->outPort << "\n";
            return;
        }
        os << "R" << conn.peerRouter << "/d"
           << net.domainOfRouter(conn.peerRouter) << " port "
           << conn.peerPort << " vc " << pick->outVc << "\n";
        if (!visited.insert(router).second) {
            os << "    cycle closed at R" << router
               << " — wait-for loop (credit leak or protocol deadlock)\n";
            return;
        }
        router = conn.peerRouter;
    }
}

void
ProgressWatchdog::dumpNetwork(const Network &net, std::ostream &os) const
{
    os << "network '" << net.name() << "': " << net.routerOccupancy()
       << " flits buffered in routers, "
       << net.conservedFlitsInjected() - net.conservedFlitsEjected()
       << " flits in flight\n";
    net.debugDump(os);
    dumpBlockedChain(net, os);
}

void
ProgressWatchdog::reportStall(Cycle now, std::ostream &os) const
{
    os << "=== watchdog: no forward progress at cycle " << now
       << " (last progress at " << lastProgress_ << ") ===\n";
    dumpNetwork(ic_.net(NetKind::Request), os);
    if (!ic_.shared())
        dumpNetwork(ic_.net(NetKind::Reply), os);
    if (extraDump_)
        extraDump_(os);
    os << "=== end watchdog dump ===" << std::endl;
}

} // namespace dr

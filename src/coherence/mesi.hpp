#ifndef DR_COHERENCE_MESI_HPP
#define DR_COHERENCE_MESI_HPP

/**
 * @file
 * MESI directory for the CPU coherence domain (Table I: the CPU cores
 * use a MESI protocol; Delegated Replies never crosses the CPU-GPU
 * coherence boundary). The directory lives alongside the LLC slices and
 * tracks, per CPU line, the stable state and sharer set. Invalidation
 * and downgrade round-trips are charged as a latency penalty at the
 * memory node rather than as explicit NoC messages — CPU coherence
 * traffic is not the phenomenon under study, but its latency effect on
 * CPU requests is modelled.
 */

#include <cstdint>
#include <unordered_map>

#include "common/ownership.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace dr
{

/** Stable MESI states as seen by the directory. */
enum class MesiState : std::uint8_t
{
    Invalid,
    Shared,     //!< one or more sharers, clean
    Exclusive,  //!< single owner, clean
    Modified,   //!< single owner, dirty
};

/** Directory statistics. */
struct MesiStats
{
    Counter reads;
    Counter writes;
    Counter invalidations;   //!< sharer copies invalidated
    Counter downgrades;      //!< M/E owner downgraded to S
    Counter writebacks;      //!< dirty data pulled from an owner
};

/**
 * Directory-side MESI protocol for up to 64 CPU cores.
 *
 * Banked per memory node (DESIGN.md §13): CPU requests are issued
 * CPU-line-aligned, so every line has exactly one home memory node and
 * the per-node banks partition the directory exactly — no bank ever
 * sees another bank's lines. Each bank is therefore DR_DOMAIN_OWNED by
 * its memory node's endpoint domain and access()/evict() run in the
 * endpoint compute phase; HeteroSystem aggregates stats across banks.
 */
class DR_DOMAIN_OWNED MesiDirectory
{
  public:
    /**
     * @param numCores CPU core count (sharer bitmask width)
     * @param invalidationPenalty cycles per invalidation round trip
     */
    MesiDirectory(int numCores, Cycle invalidationPenalty);

    /**
     * Process a CPU access and transition the directory.
     * @param core requesting CPU core index
     * @param lineAddr CPU-line-aligned address
     * @param write true for stores
     * @return extra latency cycles due to invalidations/downgrades
     */
    Cycle access(int core, Addr lineAddr, bool write) DR_ENDPOINT_PHASE;

    /** Evict a line from a core's cache (silent for S, writeback for M). */
    void evict(int core, Addr lineAddr) DR_ENDPOINT_PHASE;

    /** Directory state of a line (Invalid if untracked). */
    MesiState stateOf(Addr lineAddr) const DR_PHASE_READ;

    /** Number of sharers of a line. */
    int sharerCount(Addr lineAddr) const DR_PHASE_READ;

    /** Whether a given core holds the line. */
    bool isSharer(int core, Addr lineAddr) const DR_PHASE_READ;

    const MesiStats &stats() const DR_PHASE_READ { return stats_; }

    /** Tracked (non-invalid) lines. */
    std::size_t trackedLines() const DR_PHASE_READ { return dir_.size(); }

  private:
    struct Entry
    {
        MesiState state = MesiState::Invalid;
        std::uint64_t sharers = 0;
    };

    int numCores_ DR_DOMAIN_OWNED;
    Cycle invalidationPenalty_ DR_DOMAIN_OWNED;
    // drlint-allow(unordered-container): lookup by line address
    // only; the directory is never iterated.
    std::unordered_map<Addr, Entry> dir_ DR_DOMAIN_OWNED;
    MesiStats stats_ DR_DOMAIN_OWNED;
};

} // namespace dr

#endif // DR_COHERENCE_MESI_HPP

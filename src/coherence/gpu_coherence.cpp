#include "coherence/gpu_coherence.hpp"

#include "common/log.hpp"

namespace dr
{

GpuCoherence::GpuCoherence(int numGpuCores)
    : epochs_(static_cast<std::size_t>(numGpuCores), 0)
{
    if (numGpuCores < 1)
        fatal("GPU coherence needs at least one core");
}

void
GpuCoherence::flush(int gpuCoreIdx)
{
    ++epochs_[gpuCoreIdx];
    ++flushes_;
}

} // namespace dr

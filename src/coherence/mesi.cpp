#include "coherence/mesi.hpp"

#include <bit>

#include "common/log.hpp"

namespace dr
{

MesiDirectory::MesiDirectory(int numCores, Cycle invalidationPenalty)
    : numCores_(numCores), invalidationPenalty_(invalidationPenalty)
{
    if (numCores < 1 || numCores > 64)
        fatal("MESI directory supports 1..64 cores");
}

Cycle
MesiDirectory::access(int core, Addr lineAddr, bool write)
{
    if (core < 0 || core >= numCores_)
        panic("MESI access from out-of-range core ", core);
    Entry &e = dir_[lineAddr];
    const std::uint64_t bit = 1ull << core;
    Cycle penalty = 0;

    if (write) {
        ++stats_.writes;
        switch (e.state) {
          case MesiState::Invalid:
            break;
          case MesiState::Shared:
          case MesiState::Exclusive: {
            // Invalidate all other sharers.
            const std::uint64_t others = e.sharers & ~bit;
            const int count = std::popcount(others);
            stats_.invalidations += static_cast<std::uint64_t>(count);
            if (count > 0)
                penalty += invalidationPenalty_;
            break;
          }
          case MesiState::Modified:
            if (!(e.sharers & bit)) {
                // Pull dirty data from the current owner.
                ++stats_.writebacks;
                ++stats_.invalidations;
                penalty += invalidationPenalty_;
            }
            break;
        }
        e.state = MesiState::Modified;
        e.sharers = bit;
        return penalty;
    }

    ++stats_.reads;
    switch (e.state) {
      case MesiState::Invalid:
        e.state = MesiState::Exclusive;
        e.sharers = bit;
        break;
      case MesiState::Exclusive:
      case MesiState::Shared:
        e.state = (e.sharers | bit) == bit ? e.state : MesiState::Shared;
        if (e.state == MesiState::Exclusive && !(e.sharers & bit))
            e.state = MesiState::Shared;
        e.sharers |= bit;
        break;
      case MesiState::Modified:
        if (!(e.sharers & bit)) {
            // Downgrade the owner; dirty data written back.
            ++stats_.downgrades;
            ++stats_.writebacks;
            penalty += invalidationPenalty_;
            e.state = MesiState::Shared;
            e.sharers |= bit;
        }
        break;
    }
    return penalty;
}

void
MesiDirectory::evict(int core, Addr lineAddr)
{
    auto it = dir_.find(lineAddr);
    if (it == dir_.end())
        return;
    Entry &e = it->second;
    const std::uint64_t bit = 1ull << core;
    if (!(e.sharers & bit))
        return;
    if (e.state == MesiState::Modified)
        ++stats_.writebacks;
    e.sharers &= ~bit;
    if (e.sharers == 0) {
        dir_.erase(it);
    } else if (e.state == MesiState::Modified ||
               e.state == MesiState::Exclusive) {
        // Remaining copies are clean and shared.
        e.state = MesiState::Shared;
    }
}

MesiState
MesiDirectory::stateOf(Addr lineAddr) const
{
    const auto it = dir_.find(lineAddr);
    return it == dir_.end() ? MesiState::Invalid : it->second.state;
}

int
MesiDirectory::sharerCount(Addr lineAddr) const
{
    const auto it = dir_.find(lineAddr);
    return it == dir_.end() ? 0 : std::popcount(it->second.sharers);
}

bool
MesiDirectory::isSharer(int core, Addr lineAddr) const
{
    const auto it = dir_.find(lineAddr);
    return it != dir_.end() && (it->second.sharers & (1ull << core));
}

} // namespace dr

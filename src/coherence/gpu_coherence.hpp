#ifndef DR_COHERENCE_GPU_COHERENCE_HPP
#define DR_COHERENCE_GPU_COHERENCE_HPP

/**
 * @file
 * Software-managed GPU coherence (Section IV, "Coherence implications").
 * GPU L1 caches are write-through and are flushed (invalidated) at
 * kernel boundaries via compiler-inserted cache control operations.
 *
 * Delegated Replies interacts with this scheme in two ways:
 *  - A write invalidates the LLC core pointer for that line, so later
 *    requesters always receive the most recent copy from the LLC.
 *  - An L1 flush must invalidate every LLC core pointer naming that
 *    core. We implement this with per-core epochs: a pointer stores the
 *    epoch at which it was written and is only valid while the core's
 *    epoch is unchanged — an O(1) bulk invalidation.
 */

#include <cstdint>
#include <vector>

#include "common/ownership.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace dr
{

/**
 * Chip-wide software-coherence state for the GPU domain.
 *
 * Pre-classified for the ROADMAP's endpoint partitioning (DESIGN.md
 * §12): the epoch table is shared by every SM core and memory node, so
 * it is DR_SERIAL_ONLY — mutations (flush) may only run in serial
 * sections; the parallel phases may read it (frozen while workers run).
 */
class GpuCoherence
{
  public:
    explicit GpuCoherence(int numGpuCores);

    int numCores() const DR_PHASE_READ
    {
        return static_cast<int>(epochs_.size());
    }

    /** Current flush epoch of a core. */
    std::uint32_t epochOf(int gpuCoreIdx) const DR_PHASE_READ
    {
        return epochs_[gpuCoreIdx];
    }

    /**
     * Record an L1 flush (kernel boundary). All core pointers naming
     * this core become stale instantly.
     */
    void flush(int gpuCoreIdx) DR_COMMIT_PHASE;

    /** Whether a pointer written at `epoch` for this core is current. */
    bool
    pointerValid(int gpuCoreIdx, std::uint32_t epoch) const DR_PHASE_READ
    {
        return epochs_[gpuCoreIdx] == epoch;
    }

    const Counter &flushes() const DR_PHASE_READ { return flushes_; }

  private:
    std::vector<std::uint32_t> epochs_ DR_SERIAL_ONLY;
    Counter flushes_ DR_SERIAL_ONLY;
};

} // namespace dr

#endif // DR_COHERENCE_GPU_COHERENCE_HPP

#include "verify/model.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/log.hpp"

namespace dr
{
namespace verify
{

namespace
{

constexpr std::uint8_t
bit(int line)
{
    return static_cast<std::uint8_t>(1u << line);
}

int
count(std::uint8_t mask)
{
    return std::popcount(static_cast<unsigned>(mask));
}

/** Insert preserving sorted order (bag semantics for the networks). */
template <typename T>
void
insertSorted(std::vector<T> &v, const T &x)
{
    v.insert(std::upper_bound(v.begin(), v.end(), x), x);
}

template <typename T>
void
put8(std::string &out, T v)
{
    out.push_back(static_cast<char>(static_cast<std::uint8_t>(v)));
}

std::uint8_t
get8(const std::string &in, std::size_t &pos)
{
    return static_cast<std::uint8_t>(in.at(pos++));
}

} // namespace

const char *
msgKindName(MsgKind k)
{
    switch (k) {
      case MsgKind::ReadReq:
        return "ReadReq";
      case MsgKind::DelegatedReq:
        return "DelegatedReq";
      case MsgKind::ReadReply:
        return "ReadReply";
    }
    return "?";
}

Model::Model(const ModelConfig &cfg) : cfg_(cfg)
{
    if (cfg_.numCores < 2 || cfg_.numCores > maxCores)
        fatal("drverify: numCores must be in [2, ", maxCores, "]");
    if (cfg_.numLines < 1 || cfg_.numLines > maxLines)
        fatal("drverify: numLines must be in [1, ", maxLines, "]");
    if (cfg_.maxReadsPerCore < 1 || cfg_.maxReadsPerCore > maxReads)
        fatal("drverify: maxReadsPerCore must be in [1, ", maxReads, "]");
    if (cfg_.frqEntries < 1 || cfg_.reqNetCapacity < 1 ||
        cfg_.replyNetCapacity < 1 || cfg_.llcReplyQueue < 1 ||
        cfg_.outboundEntries < 1 || cfg_.coreMshrs < 1 ||
        cfg_.llcMshrs < 1 || cfg_.mshrTargets < 1 ||
        cfg_.fwdNetCapacity < 1 || cfg_.dlgNetCapacity < 1) {
        fatal("drverify: every capacity must be at least 1");
    }
    if (cfg_.interposerCredits < 0 || cfg_.interposerCredits > 255)
        fatal("drverify: interposerCredits must be in [0, 255]");
    cfg_.chipletCores = static_cast<std::uint8_t>(
        cfg_.chipletCores & ((1u << cfg_.numCores) - 1u));
    if (cfg_.interposerCredits > 0 && cfg_.chipletCores == 0)
        fatal("drverify: the chiplet model needs at least one core on "
              "the remote chiplet (chipletCores)");
    if (cfg_.chipletCores != 0 && cfg_.interposerCredits == 0)
        fatal("drverify: a chiplet split needs interposerCredits >= 1");

    if (cfg_.initialPointer.empty())
        cfg_.initialPointer.assign(static_cast<std::size_t>(cfg_.numLines),
                                   -1);
    if (static_cast<int>(cfg_.initialPointer.size()) != cfg_.numLines)
        fatal("drverify: initialPointer must name every line");
    for (const int p : cfg_.initialPointer) {
        if (p < -1 || p >= cfg_.numCores)
            fatal("drverify: initialPointer entry ", p, " out of range");
    }

    if (cfg_.initialL1.empty())
        cfg_.initialL1.assign(static_cast<std::size_t>(cfg_.numCores), 0);
    if (static_cast<int>(cfg_.initialL1.size()) != cfg_.numCores)
        fatal("drverify: initialL1 must cover every core");
    const std::uint8_t lineMask =
        static_cast<std::uint8_t>((1u << cfg_.numLines) - 1u);
    for (auto &m : cfg_.initialL1)
        m = static_cast<std::uint8_t>(m & lineMask);
    cfg_.llcPresent = static_cast<std::uint8_t>(cfg_.llcPresent & lineMask);
}

State
Model::initialState() const
{
    State s;
    s.cores.resize(static_cast<std::size_t>(cfg_.numCores));
    for (int c = 0; c < cfg_.numCores; ++c)
        s.cores[c].l1 = cfg_.initialL1[c];
    s.llc.present = cfg_.llcPresent;
    s.llc.ptr.fill(-1);
    for (int l = 0; l < cfg_.numLines; ++l)
        s.llc.ptr[l] = static_cast<std::int8_t>(cfg_.initialPointer[l]);
    s.ipCredits.fill(static_cast<std::uint8_t>(cfg_.interposerCredits));
    return s;
}

std::string
Model::coreName(int c) const
{
    return c == llcNode() ? std::string("LLC")
                          : "core " + std::to_string(c);
}

std::string
Model::msgName(const Msg &m) const
{
    std::ostringstream os;
    os << msgKindName(m.kind);
    if (m.dnf)
        os << "+DNF";
    os << "[line " << int(m.line) << ", txn " << int(m.requester) << "."
       << int(m.seq);
    if (chipletModel() && crossesInterposer(m))
        os << ", " << coreName(m.src) << " over the interposer";
    os << " -> " << coreName(m.dst) << "]";
    return os.str();
}

// --- transitions ---------------------------------------------------------

void
Model::issueTransitions(const State &s, std::vector<Succ> &out) const
{
    for (int c = 0; c < cfg_.numCores; ++c) {
        const CoreState &core = s.cores[c];
        if (core.issued >= cfg_.maxReadsPerCore)
            continue;
        const int seq = core.issued;
        for (int l = 0; l < cfg_.numLines; ++l) {
            const bool inL1 = (core.l1 & bit(l)) != 0;
            const bool outstanding = (core.mshr & bit(l)) != 0;
            const Msg req{MsgKind::ReadReq, static_cast<std::uint8_t>(l),
                          static_cast<std::uint8_t>(c),
                          static_cast<std::uint8_t>(seq),
                          static_cast<std::uint8_t>(llcNode()), 0,
                          static_cast<std::uint8_t>(c)};
            if (!inL1 && !outstanding &&
                (count(core.mshr) >= cfg_.coreMshrs ||
                 static_cast<int>(s.reqNet.size()) >=
                     cfg_.reqNetCapacity ||
                 !creditAvailable(s, req, &State::reqNet))) {
                continue;  // structural stall: MSHRs, injection, or
                           // interposer credits exhausted
            }
            Succ succ;
            succ.state = s;
            CoreState &nc = succ.state.cores[c];
            nc.readLine[seq] = static_cast<std::uint8_t>(l);
            ++nc.issued;
            std::ostringstream os;
            os << "core " << c << ": read line " << l;
            if (inL1) {
                nc.readStatus[seq] = readDone;
                os << " hits the L1";
            } else if (outstanding) {
                nc.readStatus[seq] = readWaiting;
                os << " merges into the outstanding miss";
            } else {
                nc.readStatus[seq] = readWaiting;
                nc.mshr |= bit(l);
                chargeCredit(succ.state, req, &State::reqNet);
                insertSorted(succ.state.reqNet, req);
                os << " misses; ReadReq sent to the LLC";
            }
            succ.action = os.str();
            out.push_back(std::move(succ));
        }
    }
}

void
Model::frqTransitions(const State &s, std::vector<Succ> &out) const
{
    for (int c = 0; c < cfg_.numCores; ++c) {
        const CoreState &core = s.cores[c];
        if (core.frq.empty())
            continue;
        // Remote-over-local priority (Section IV): with priority on, the
        // FRQ is always offered service. Without it, forwarded requests
        // compete with local accesses for the L1 port, so a core whose
        // local pipeline is blocked on its own outstanding miss starves
        // its FRQ — which is the deadlock the paper's rule prevents.
        if (!cfg_.frqRemotePriority && core.mshr != 0)
            continue;
        const Msg m = core.frq.front();
        if (m.kind != MsgKind::DelegatedReq)
            panic("drverify: FRQ holds a ", msgKindName(m.kind));
        const std::uint8_t l = m.line;

        if ((core.l1 & bit(l)) != 0) {
            // Remote hit: serve the line from this L1.
            if (static_cast<int>(core.outbound.size()) >=
                cfg_.outboundEntries) {
                continue;  // outbound queue full: head blocks
            }
            Succ succ;
            succ.state = s;
            CoreState &nc = succ.state.cores[c];
            nc.frq.erase(nc.frq.begin());
            nc.outbound.push_back(Msg{MsgKind::ReadReply, l, m.requester,
                                      m.seq, m.requester, 0,
                                      static_cast<std::uint8_t>(c)});
            succ.action = "core " + std::to_string(c) +
                          ": FRQ remote hit on line " + std::to_string(l) +
                          "; reply queued for core " +
                          std::to_string(m.requester);
            out.push_back(std::move(succ));
            continue;
        }

        const bool delayed =
            (core.mshr & bit(l)) != 0 &&
            static_cast<int>(std::count_if(
                core.remote.begin(), core.remote.end(),
                [l](const Target &t) { return t.line == l; })) <
                cfg_.mshrTargets;
        if (delayed) {
            // Delayed hit: the fill is on its way; attach the remote
            // requester to this core's MSHR entry.
            Succ succ;
            succ.state = s;
            CoreState &nc = succ.state.cores[c];
            nc.frq.erase(nc.frq.begin());
            insertSorted(nc.remote, Target{l, m.requester, m.seq});
            succ.action = "core " + std::to_string(c) +
                          ": FRQ delayed hit on line " + std::to_string(l) +
                          "; remote target attached to the MSHR";
            out.push_back(std::move(succ));
            continue;
        }

        if (cfg_.bugFrqRequeue) {
            // Seeded bug: a remote miss is put back at the FRQ tail to
            // "retry later" instead of re-sending with DNF — the retry
            // path never terminates.
            Succ succ;
            succ.state = s;
            CoreState &nc = succ.state.cores[c];
            nc.frq.erase(nc.frq.begin());
            nc.frq.push_back(m);
            succ.action = "core " + std::to_string(c) +
                          ": FRQ remote miss on line " + std::to_string(l) +
                          "; BUG: request re-queued for retry";
            out.push_back(std::move(succ));
            continue;
        }

        // Remote miss: re-send to the LLC with the Do-Not-Forward bit on
        // behalf of the original requester.
        const Msg dnfReq{MsgKind::ReadReq, l, m.requester, m.seq,
                         static_cast<std::uint8_t>(llcNode()), 1,
                         static_cast<std::uint8_t>(c)};
        if (static_cast<int>(s.reqNet.size()) >= cfg_.reqNetCapacity ||
            !creditAvailable(s, dnfReq, &State::reqNet)) {
            continue;
        }
        Succ succ;
        succ.state = s;
        CoreState &nc = succ.state.cores[c];
        nc.frq.erase(nc.frq.begin());
        chargeCredit(succ.state, dnfReq, &State::reqNet);
        insertSorted(succ.state.reqNet, dnfReq);
        succ.action = "core " + std::to_string(c) +
                      ": FRQ remote miss on line " + std::to_string(l) +
                      "; DNF re-send to the LLC for core " +
                      std::to_string(m.requester);
        out.push_back(std::move(succ));
    }
}

void
Model::outboundTransitions(const State &s, std::vector<Succ> &out) const
{
    // Core-to-core replies ride the DelegatedReply VN: a dedicated
    // network with splitVnets on, the shared reply network otherwise.
    for (int c = 0; c < cfg_.numCores; ++c) {
        const CoreState &core = s.cores[c];
        if (core.outbound.empty() ||
            static_cast<int>((s.*coreReplyNet()).size()) >=
                coreReplyCapacity() ||
            !creditAvailable(s, core.outbound.front(), coreReplyNet())) {
            continue;
        }
        Succ succ;
        succ.state = s;
        CoreState &nc = succ.state.cores[c];
        const Msg m = nc.outbound.front();
        nc.outbound.erase(nc.outbound.begin());
        chargeCredit(succ.state, m, coreReplyNet());
        insertSorted(succ.state.*coreReplyNet(), m);
        succ.action =
            "core " + std::to_string(c) + ": injects " + msgName(m);
        out.push_back(std::move(succ));
    }
}

void
Model::replyDeliveryTransitions(const State &s,
                                std::vector<Msg> State::*net,
                                std::vector<Succ> &out) const
{
    const std::vector<Msg> &msgs = s.*net;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
        if (i > 0 && msgs[i] == msgs[i - 1])
            continue;  // identical in-flight messages: one representative
        const Msg m = msgs[i];
        if (m.kind != MsgKind::ReadReply)
            panic("drverify: reply network holds a ", msgKindName(m.kind));
        const int c = m.dst;
        Succ succ;
        succ.state = s;
        (succ.state.*net).erase((succ.state.*net).begin() +
                                static_cast<std::ptrdiff_t>(i));
        returnCredit(succ.state, m, net);
        CoreState &nc = succ.state.cores[c];
        succ.action = "deliver " + msgName(m);

        if (nc.readStatus[m.seq] == readDone) {
            succ.violation =
                Violation{property::exactlyOneReply,
                          "transaction " + std::to_string(c) + "." +
                              std::to_string(m.seq) + " (line " +
                              std::to_string(m.line) +
                              ") received a second reply"};
        }
        nc.readStatus[m.seq] = readDone;

        if ((nc.mshr & bit(m.line)) != 0) {
            nc.mshr = static_cast<std::uint8_t>(nc.mshr & ~bit(m.line));
            nc.l1 |= bit(m.line);
            // Every local waiter merged on this line wakes on the fill.
            for (int q = 0; q < nc.issued; ++q) {
                if (nc.readStatus[q] == readWaiting &&
                    nc.readLine[q] == m.line) {
                    nc.readStatus[q] = readDone;
                }
            }
            // Delayed hits: forward the just-arrived line.
            for (auto it = nc.remote.begin(); it != nc.remote.end();) {
                if (it->line == m.line) {
                    nc.outbound.push_back(
                        Msg{MsgKind::ReadReply, it->line, it->requester,
                            it->seq, it->requester, 0,
                            static_cast<std::uint8_t>(c)});
                    it = nc.remote.erase(it);
                } else {
                    ++it;
                }
            }
        }
        out.push_back(std::move(succ));
    }
}

void
Model::deliverToLlc(const State &s, const Msg &m, std::size_t netIdx,
                    std::vector<Msg> State::*net,
                    std::vector<Succ> &out) const
{
    const std::uint8_t l = m.line;
    const bool present = (s.llc.present & bit(l)) != 0;

    if (present) {
        if (static_cast<int>(s.llc.replyQ.size()) >= cfg_.llcReplyQueue) {
            if (!cfg_.bugDropWhenBusy)
                return;  // back-pressure: the request waits in the net
            Succ succ;
            succ.state = s;
            (succ.state.*net).erase((succ.state.*net).begin() +
                                    static_cast<std::ptrdiff_t>(netIdx));
            returnCredit(succ.state, m, net);
            succ.action = "LLC: BUG: drops " + msgName(m) +
                          " because the reply queue is full";
            out.push_back(std::move(succ));
            return;
        }
        Succ succ;
        succ.state = s;
        (succ.state.*net).erase((succ.state.*net).begin() +
                                static_cast<std::ptrdiff_t>(netIdx));
        returnCredit(succ.state, m, net);
        LlcState &nl = succ.state.llc;
        const std::int8_t ptr = nl.ptr[l];
        // Delegation eligibility, mirroring LlcSlice::tick: a valid
        // third-party pointer on a non-DNF GPU read. The bug knobs
        // reintroduce the failure modes the two guards prevent.
        const bool third =
            ptr >= 0 && (cfg_.bugDelegateToRequester ||
                         ptr != static_cast<std::int8_t>(m.requester));
        const bool dnfOk = cfg_.bugIgnoreDnf || m.dnf == 0;
        const bool delegatable = third && dnfOk;
        nl.replyQ.push_back(ReplyEntry{l, m.requester, m.seq,
                                       static_cast<std::uint8_t>(delegatable),
                                       ptr, m.dnf});
        // The pointer tracks the most recent *directly served* reader
        // (mirrors LlcSlice::tick). Moving it to a requester whose
        // reply may be delegated lets delayed-hit attachments form a
        // cyclic wait — the checker found exactly that three-core
        // deadlock before the guard existed (DESIGN.md §10).
        if (!delegatable)
            nl.ptr[l] = static_cast<std::int8_t>(m.requester);
        succ.action = "LLC: " + msgName(m) + " hits; reply queued" +
                      (delegatable ? " (delegatable)" : "");
        out.push_back(std::move(succ));
        return;
    }

    // Miss path: merge into or allocate an MSHR; the fill is in flight.
    if ((s.llc.mshr & bit(l)) != 0) {
        const auto onLine = std::count_if(
            s.llc.targets.begin(), s.llc.targets.end(),
            [l](const Target &t) { return t.line == l; });
        if (static_cast<int>(onLine) >= cfg_.mshrTargets)
            return;  // entry full: the request waits in the net
        Succ succ;
        succ.state = s;
        (succ.state.*net).erase((succ.state.*net).begin() +
                                static_cast<std::ptrdiff_t>(netIdx));
        returnCredit(succ.state, m, net);
        insertSorted(succ.state.llc.targets,
                     Target{l, m.requester, m.seq});
        succ.action = "LLC: " + msgName(m) + " misses; merged into MSHR";
        out.push_back(std::move(succ));
        return;
    }
    if (count(s.llc.mshr) >= cfg_.llcMshrs)
        return;  // MSHRs full: the request waits in the net
    Succ succ;
    succ.state = s;
    (succ.state.*net).erase((succ.state.*net).begin() +
                            static_cast<std::ptrdiff_t>(netIdx));
    returnCredit(succ.state, m, net);
    succ.state.llc.mshr |= bit(l);
    insertSorted(succ.state.llc.targets, Target{l, m.requester, m.seq});
    succ.action = "LLC: " + msgName(m) + " misses; MSHR allocated, "
                  "DRAM fill started";
    out.push_back(std::move(succ));
}

void
Model::deliverToCore(const State &s, const Msg &m, std::size_t netIdx,
                     std::vector<Msg> State::*net,
                     std::vector<Succ> &out) const
{
    const int c = m.dst;
    if (static_cast<int>(s.cores[c].frq.size()) >= cfg_.frqEntries)
        return;  // FRQ full: back-pressure into the carrying network
    Succ succ;
    succ.state = s;
    (succ.state.*net).erase((succ.state.*net).begin() +
                            static_cast<std::ptrdiff_t>(netIdx));
    returnCredit(succ.state, m, net);
    succ.state.cores[c].frq.push_back(m);
    succ.action = "deliver " + msgName(m) + " into the FRQ";
    if (m.requester == m.dst) {
        // Receiver side of the third-party law (sm_core receiveRequests
        // asserts the same): a core must never be delegated its own miss.
        succ.violation =
            Violation{property::delegateNotRequester,
                      "core " + std::to_string(c) +
                          " received a delegated request for its own "
                          "transaction " + std::to_string(m.requester) +
                          "." + std::to_string(m.seq)};
    }
    out.push_back(std::move(succ));
}

void
Model::requestDeliveryTransitions(const State &s,
                                  std::vector<Msg> State::*net,
                                  std::vector<Succ> &out) const
{
    const std::vector<Msg> &msgs = s.*net;
    for (std::size_t i = 0; i < msgs.size(); ++i) {
        if (i > 0 && msgs[i] == msgs[i - 1])
            continue;
        const Msg &m = msgs[i];
        if (m.dst == llcNode()) {
            // Only the Request VN carries LLC-bound traffic; DNF
            // re-sends deliberately stay off the forward network
            // (see sm_core.cpp and noc/vnet.hpp).
            if (net == &State::fwdNet)
                panic("drverify: forward network holds a ",
                      msgKindName(m.kind), " addressed to the LLC");
            deliverToLlc(s, m, i, net, out);
        } else if (m.kind == MsgKind::DelegatedReq) {
            deliverToCore(s, m, i, net, out);
        } else {
            panic("drverify: request network holds a ",
                  msgKindName(m.kind), " addressed to a core");
        }
    }
}

void
Model::llcInjectTransitions(const State &s, std::vector<Succ> &out) const
{
    if (s.llc.replyQ.empty())
        return;
    const ReplyEntry e = s.llc.replyQ.front();
    const bool replyNetFull =
        static_cast<int>(s.replyNet.size()) >= cfg_.replyNetCapacity;
    // Mirrors MemNode::drainReplies: delegate when the reply cannot be
    // injected (or always, under the ablation knob); fall back to a
    // normal injection when the delegation network (the ForwardedRequest
    // VN with splitVnets on, else the shared request network) has no
    // room either.
    const bool wantDelegate =
        e.delegatable != 0 && (cfg_.delegateAlways || replyNetFull);
    const Msg delegation{MsgKind::DelegatedReq, e.line, e.requester,
                         e.seq, static_cast<std::uint8_t>(e.delegateTo), 0,
                         static_cast<std::uint8_t>(llcNode())};
    const Msg reply{MsgKind::ReadReply, e.line, e.requester, e.seq,
                    e.requester, 0, static_cast<std::uint8_t>(llcNode())};

    if (wantDelegate &&
        static_cast<int>((s.*delegationNet()).size()) <
            delegationCapacity() &&
        creditAvailable(s, delegation, delegationNet())) {
        Succ succ;
        succ.state = s;
        LlcState &nl = succ.state.llc;
        nl.replyQ.erase(nl.replyQ.begin());
        chargeCredit(succ.state, delegation, delegationNet());
        insertSorted(succ.state.*delegationNet(), delegation);
        std::ostringstream os;
        os << "LLC: delegates reply for txn " << int(e.requester) << "."
           << int(e.seq) << " (line " << int(e.line) << ") to core "
           << int(e.delegateTo);
        if (cfg_.bugDuplicateReply &&
            static_cast<int>(s.replyNet.size()) < cfg_.replyNetCapacity &&
            creditAvailable(succ.state, reply, &State::replyNet)) {
            chargeCredit(succ.state, reply, &State::replyNet);
            insertSorted(succ.state.replyNet, reply);
            os << " AND injects the reply (BUG)";
        }
        succ.action = os.str();
        // Sender side of the protocol laws (mem_node.cpp asserts the
        // same two before sending a delegated reply).
        if (e.dnfOrigin != 0) {
            succ.violation = Violation{
                property::dnfNoRedelegate,
                "a Do-Not-Forward request for line " +
                    std::to_string(e.line) + " (txn " +
                    std::to_string(e.requester) + "." +
                    std::to_string(e.seq) + ") was delegated again"};
        } else if (e.delegateTo < 0 ||
                   e.delegateTo == static_cast<std::int8_t>(e.requester)) {
            succ.violation = Violation{
                property::delegateNotRequester,
                "delegation of txn " + std::to_string(e.requester) + "." +
                    std::to_string(e.seq) + " names " +
                    (e.delegateTo < 0 ? std::string("no core")
                                      : "the requester itself")};
        }
        out.push_back(std::move(succ));
        return;
    }

    if (!replyNetFull && creditAvailable(s, reply, &State::replyNet)) {
        Succ succ;
        succ.state = s;
        LlcState &nl = succ.state.llc;
        nl.replyQ.erase(nl.replyQ.begin());
        chargeCredit(succ.state, reply, &State::replyNet);
        insertSorted(succ.state.replyNet, reply);
        succ.action = "LLC: injects reply for txn " +
                      std::to_string(e.requester) + "." +
                      std::to_string(e.seq) + " (line " +
                      std::to_string(e.line) + ")";
        out.push_back(std::move(succ));
    }
    // Both networks full: the head blocks (back-pressure).
}

void
Model::fillTransitions(const State &s, std::vector<Succ> &out) const
{
    for (int l = 0; l < cfg_.numLines; ++l) {
        if ((s.llc.mshr & bit(l)) == 0)
            continue;
        Succ succ;
        succ.state = s;
        LlcState &nl = succ.state.llc;
        nl.present |= bit(l);
        nl.mshr = static_cast<std::uint8_t>(nl.mshr & ~bit(l));
        int released = 0;
        // Fill replies are never delegatable (LlcSlice::handleFill); the
        // pointer tracks the last merged reader.
        for (auto it = nl.targets.begin(); it != nl.targets.end();) {
            if (it->line == l) {
                nl.replyQ.push_back(ReplyEntry{it->line, it->requester,
                                               it->seq, 0, -1, 0});
                nl.ptr[l] = static_cast<std::int8_t>(it->requester);
                ++released;
                it = nl.targets.erase(it);
            } else {
                ++it;
            }
        }
        succ.action = "DRAM: fill of line " + std::to_string(l) +
                      " completes (" + std::to_string(released) +
                      " replies queued)";
        out.push_back(std::move(succ));
    }
}

void
Model::evictTransitions(const State &s, std::vector<Succ> &out) const
{
    if (!cfg_.allowEvict)
        return;
    for (int c = 0; c < cfg_.numCores; ++c) {
        for (int l = 0; l < cfg_.numLines; ++l) {
            if ((s.cores[c].l1 & bit(l)) == 0)
                continue;
            Succ succ;
            succ.state = s;
            succ.state.cores[c].l1 = static_cast<std::uint8_t>(
                succ.state.cores[c].l1 & ~bit(l));
            succ.action = "core " + std::to_string(c) + ": evicts line " +
                          std::to_string(l);
            out.push_back(std::move(succ));
        }
    }
}

void
Model::successors(const State &s, std::vector<Succ> &out) const
{
    out.clear();
    issueTransitions(s, out);
    frqTransitions(s, out);
    outboundTransitions(s, out);
    replyDeliveryTransitions(s, &State::replyNet, out);
    replyDeliveryTransitions(s, &State::dlgNet, out);
    requestDeliveryTransitions(s, &State::reqNet, out);
    requestDeliveryTransitions(s, &State::fwdNet, out);
    llcInjectTransitions(s, out);
    fillTransitions(s, out);
    evictTransitions(s, out);
}

bool
Model::terminal(const State &s) const
{
    if (!s.reqNet.empty() || !s.replyNet.empty() || !s.fwdNet.empty() ||
        !s.dlgNet.empty()) {
        return false;
    }
    if (s.llc.mshr != 0 || !s.llc.targets.empty() || !s.llc.replyQ.empty())
        return false;
    for (const CoreState &core : s.cores) {
        if (core.issued < cfg_.maxReadsPerCore || core.mshr != 0 ||
            !core.frq.empty() || !core.outbound.empty() ||
            !core.remote.empty()) {
            return false;
        }
        for (int q = 0; q < core.issued; ++q) {
            if (core.readStatus[q] != readDone)
                return false;
        }
    }
    return true;
}

std::optional<Violation>
Model::quiescenceViolation(const State &s) const
{
    if (!s.reqNet.empty() || !s.replyNet.empty() || !s.fwdNet.empty() ||
        !s.dlgNet.empty() || s.llc.mshr != 0 || !s.llc.targets.empty() ||
        !s.llc.replyQ.empty()) {
        return std::nullopt;
    }
    // Establish quiescence across every core before blaming a waiting
    // read: a message parked in any FRQ/outbound/delayed queue means
    // the system is blocked, not quiet, and that is a deadlock story.
    for (const CoreState &core : s.cores) {
        if (!core.frq.empty() || !core.outbound.empty() ||
            !core.remote.empty()) {
            return std::nullopt;
        }
    }
    for (int c = 0; c < cfg_.numCores; ++c) {
        const CoreState &core = s.cores[c];
        for (int q = 0; q < core.issued; ++q) {
            if (core.readStatus[q] == readWaiting) {
                return Violation{
                    property::replyDelivery,
                    "system is quiescent but transaction " +
                        std::to_string(c) + "." + std::to_string(q) +
                        " (line " + std::to_string(core.readLine[q]) +
                        ") never received a reply"};
            }
        }
    }
    return std::nullopt;
}

// --- canonical encoding --------------------------------------------------

std::string
Model::encode(const State &s) const
{
    std::string out;
    auto putMsg = [&out](const Msg &m) {
        put8(out, m.kind);
        put8(out, m.line);
        put8(out, m.requester);
        put8(out, m.seq);
        put8(out, m.dst);
        put8(out, m.dnf);
        put8(out, m.src);
    };
    auto putTarget = [&out](const Target &t) {
        put8(out, t.line);
        put8(out, t.requester);
        put8(out, t.seq);
    };
    for (const CoreState &core : s.cores) {
        put8(out, core.l1);
        put8(out, core.issued);
        put8(out, core.mshr);
        for (int q = 0; q < cfg_.maxReadsPerCore; ++q) {
            put8(out, core.readLine[q]);
            put8(out, core.readStatus[q]);
        }
        put8(out, core.frq.size());
        for (const Msg &m : core.frq)
            putMsg(m);
        put8(out, core.outbound.size());
        for (const Msg &m : core.outbound)
            putMsg(m);
        put8(out, core.remote.size());
        for (const Target &t : core.remote)
            putTarget(t);
    }
    put8(out, s.llc.present);
    put8(out, s.llc.mshr);
    for (int l = 0; l < cfg_.numLines; ++l)
        put8(out, s.llc.ptr[l]);
    put8(out, s.llc.targets.size());
    for (const Target &t : s.llc.targets)
        putTarget(t);
    put8(out, s.llc.replyQ.size());
    for (const ReplyEntry &e : s.llc.replyQ) {
        put8(out, e.line);
        put8(out, e.requester);
        put8(out, e.seq);
        put8(out, e.delegatable);
        put8(out, e.delegateTo);
        put8(out, e.dnfOrigin);
    }
    put8(out, s.reqNet.size());
    for (const Msg &m : s.reqNet)
        putMsg(m);
    put8(out, s.replyNet.size());
    for (const Msg &m : s.replyNet)
        putMsg(m);
    put8(out, s.fwdNet.size());
    for (const Msg &m : s.fwdNet)
        putMsg(m);
    put8(out, s.dlgNet.size());
    for (const Msg &m : s.dlgNet)
        putMsg(m);
    for (const std::uint8_t credits : s.ipCredits)
        put8(out, credits);
    return out;
}

State
Model::decode(const std::string &bytes) const
{
    State s;
    std::size_t pos = 0;
    auto getMsg = [&bytes, &pos]() {
        Msg m;
        m.kind = static_cast<MsgKind>(get8(bytes, pos));
        m.line = get8(bytes, pos);
        m.requester = get8(bytes, pos);
        m.seq = get8(bytes, pos);
        m.dst = get8(bytes, pos);
        m.dnf = get8(bytes, pos);
        m.src = get8(bytes, pos);
        return m;
    };
    auto getTarget = [&bytes, &pos]() {
        Target t;
        t.line = get8(bytes, pos);
        t.requester = get8(bytes, pos);
        t.seq = get8(bytes, pos);
        return t;
    };
    s.cores.resize(static_cast<std::size_t>(cfg_.numCores));
    for (CoreState &core : s.cores) {
        core.l1 = get8(bytes, pos);
        core.issued = get8(bytes, pos);
        core.mshr = get8(bytes, pos);
        for (int q = 0; q < cfg_.maxReadsPerCore; ++q) {
            core.readLine[q] = get8(bytes, pos);
            core.readStatus[q] = get8(bytes, pos);
        }
        core.frq.resize(get8(bytes, pos));
        for (Msg &m : core.frq)
            m = getMsg();
        core.outbound.resize(get8(bytes, pos));
        for (Msg &m : core.outbound)
            m = getMsg();
        core.remote.resize(get8(bytes, pos));
        for (Target &t : core.remote)
            t = getTarget();
    }
    s.llc.present = get8(bytes, pos);
    s.llc.mshr = get8(bytes, pos);
    s.llc.ptr.fill(-1);
    for (int l = 0; l < cfg_.numLines; ++l)
        s.llc.ptr[l] = static_cast<std::int8_t>(get8(bytes, pos));
    s.llc.targets.resize(get8(bytes, pos));
    for (Target &t : s.llc.targets)
        t = getTarget();
    s.llc.replyQ.resize(get8(bytes, pos));
    for (ReplyEntry &e : s.llc.replyQ) {
        e.line = get8(bytes, pos);
        e.requester = get8(bytes, pos);
        e.seq = get8(bytes, pos);
        e.delegatable = get8(bytes, pos);
        e.delegateTo = static_cast<std::int8_t>(get8(bytes, pos));
        e.dnfOrigin = get8(bytes, pos);
    }
    s.reqNet.resize(get8(bytes, pos));
    for (Msg &m : s.reqNet)
        m = getMsg();
    s.replyNet.resize(get8(bytes, pos));
    for (Msg &m : s.replyNet)
        m = getMsg();
    s.fwdNet.resize(get8(bytes, pos));
    for (Msg &m : s.fwdNet)
        m = getMsg();
    s.dlgNet.resize(get8(bytes, pos));
    for (Msg &m : s.dlgNet)
        m = getMsg();
    for (std::uint8_t &credits : s.ipCredits)
        credits = get8(bytes, pos);
    if (pos != bytes.size())
        panic("drverify: state decode consumed ", pos, " of ",
              bytes.size(), " bytes");
    return s;
}

std::string
Model::describe(const State &s) const
{
    std::ostringstream os;
    for (int c = 0; c < cfg_.numCores; ++c) {
        const CoreState &core = s.cores[c];
        os << "  core " << c << ": l1=";
        for (int l = 0; l < cfg_.numLines; ++l)
            os << (((core.l1 >> l) & 1) != 0 ? std::to_string(l) : "-");
        os << " mshr=";
        for (int l = 0; l < cfg_.numLines; ++l)
            os << (((core.mshr >> l) & 1) != 0 ? std::to_string(l) : "-");
        os << " reads=[";
        for (int q = 0; q < core.issued; ++q) {
            os << (q != 0 ? " " : "") << "line" << int(core.readLine[q])
               << (core.readStatus[q] == readDone ? ":done" : ":waiting");
        }
        os << "] frq=" << core.frq.size()
           << " outbound=" << core.outbound.size()
           << " delayed=" << core.remote.size() << "\n";
        for (const Msg &m : core.frq)
            os << "    frq: " << msgName(m) << "\n";
    }
    os << "  LLC: present=";
    for (int l = 0; l < cfg_.numLines; ++l)
        os << (((s.llc.present >> l) & 1) != 0 ? std::to_string(l) : "-");
    os << " ptr=[";
    for (int l = 0; l < cfg_.numLines; ++l) {
        os << (l != 0 ? " " : "");
        if (s.llc.ptr[l] < 0)
            os << "-";
        else
            os << int(s.llc.ptr[l]);
    }
    os << "] fills=" << count(s.llc.mshr)
       << " replyQ=" << s.llc.replyQ.size() << "\n";
    os << "  reqNet=" << s.reqNet.size()
       << " replyNet=" << s.replyNet.size();
    if (cfg_.splitVnets) {
        os << " fwdNet=" << s.fwdNet.size()
           << " dlgNet=" << s.dlgNet.size();
    }
    if (chipletModel()) {
        os << " ipCredits=[";
        for (std::size_t n = 0; n < s.ipCredits.size(); ++n)
            os << (n != 0 ? " " : "") << int(s.ipCredits[n]);
        os << "]/" << cfg_.interposerCredits;
    }
    os << "\n";
    for (const Msg &m : s.reqNet)
        os << "    reqNet: " << msgName(m) << "\n";
    for (const Msg &m : s.replyNet)
        os << "    replyNet: " << msgName(m) << "\n";
    for (const Msg &m : s.fwdNet)
        os << "    fwdNet: " << msgName(m) << "\n";
    for (const Msg &m : s.dlgNet)
        os << "    dlgNet: " << msgName(m) << "\n";
    return os.str();
}

} // namespace verify
} // namespace dr

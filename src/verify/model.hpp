#ifndef DR_VERIFY_MODEL_HPP
#define DR_VERIFY_MODEL_HPP

/**
 * @file
 * Abstract message-passing model of the Delegated Replies protocol
 * (Section IV of the paper) for exhaustive explicit-state checking.
 *
 * The model deliberately abstracts away timing: every architectural
 * event (issuing a miss, delivering one message, servicing the FRQ
 * head, a DRAM fill completing, ...) is one atomic transition, and the
 * checker explores all interleavings. Networks are bounded *bags* — a
 * delivery may pick any in-flight message — which over-approximates
 * every ordering a real NoC (any topology, any routing) can produce.
 * Queue capacities are small so that back-pressure, the mechanism that
 * makes delegation fire at all, is part of the state.
 *
 * What is modelled (mirroring mem_node.cpp / llc.cpp / sm_core.cpp):
 *  - GPU cores: L1 line set, MSHR file with local merge + remote
 *    (delayed-hit) targets, the Forwarded Request Queue with
 *    remote-over-local priority, and the outbound core-to-core reply
 *    queue.
 *  - One LLC/memory node: line presence, the per-line core pointer,
 *    MSHRs with target merging, nondeterministic DRAM fills, and the
 *    bounded reply queue whose head is either injected into the reply
 *    network or converted into a one-flit delegated reply.
 *  - Do-Not-Forward re-sends on remote misses, delayed-hit attachment,
 *    and remote hits serviced from the delegate's L1.
 *
 * What is abstracted away (see DESIGN.md §10 for soundness limits):
 *  - Writes, flush epochs and the CPU MESI domain. Pointer staleness is
 *    modelled instead by nondeterministic L1 eviction, which produces
 *    the same observable protocol event: a delegate that misses.
 *  - Flit-level wormhole flow control. Clogging appears only as "the
 *    bounded reply network is full".
 *
 * Seeded-bug knobs (`bug*` fields) let the mutation tests prove the
 * checker actually detects the paper's failure modes.
 */

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace dr
{
namespace verify
{

/** Model limits: fields below are sized for these bounds. */
constexpr int maxCores = 6;
constexpr int maxLines = 8;
constexpr int maxReads = 4;

/** Configuration of one model-checking run. */
struct ModelConfig
{
    int numCores = 3;         //!< SM cores (the LLC is one extra node)
    int numLines = 2;         //!< distinct cache lines
    int maxReadsPerCore = 1;  //!< read-transaction budget per core

    // Queue/structure bounds (small: back-pressure must be reachable).
    int frqEntries = 1;        //!< Forwarded Request Queue depth
    int reqNetCapacity = 2;    //!< request-network in-flight bound
    int replyNetCapacity = 1;  //!< reply-network in-flight bound
    int llcReplyQueue = 1;     //!< LLC reply/injection queue depth
    int outboundEntries = 1;   //!< core-to-core reply queue depth
    int coreMshrs = 2;         //!< per-core MSHR entries
    int llcMshrs = 2;          //!< LLC MSHR entries
    int mshrTargets = 4;       //!< merged targets per MSHR entry

    // Protocol knobs (same meaning as SystemConfig's dr.* keys).
    bool delegateAlways = true;     //!< delegate whenever delegatable
    bool frqRemotePriority = true;  //!< remote-over-local FRQ priority
    bool allowEvict = true;         //!< nondeterministic L1 eviction

    /**
     * Virtual-network split (`noc.vnets`, noc/vnet.hpp): LLC->core
     * delegations travel on a dedicated forwarded-request network and
     * core-to-core replies on a dedicated delegated-reply network, each
     * with its own in-flight bound, instead of sharing reqNet/replyNet.
     * Off (the default) models the collapsed layout whose fan-in clog
     * DESIGN.md §10 documents, and leaves every legacy config's state
     * space untouched.
     */
    bool splitVnets = false;
    int fwdNetCapacity = 1;  //!< forwarded-request network bound
    int dlgNetCapacity = 1;  //!< delegated-reply network bound

    /**
     * Chiplet split (`noc.chiplet*`, noc/topology.hpp): cores whose bit
     * is set in `chipletCores` live on a remote chiplet; the LLC and
     * the remaining cores share the home chiplet. Every message between
     * the two chiplets holds one interposer credit from injection to
     * delivery — the abstract image of the bounded buffering behind the
     * narrow interposer links, over-approximating any gateway count and
     * serialization width. Credits are per logical network (each
     * physical network's interposer links carry their own VC buffers,
     * and the VN split partitions them further), never shared across
     * message classes: a single shared pool would couple e.g. DNF
     * re-sends to reply injection and deadlock protocols the real
     * per-VC buffering keeps live. `interposerCredits == 0` (the
     * default) disables the chiplet model and leaves every legacy
     * config's state space untouched.
     */
    std::uint8_t chipletCores = 0;
    int interposerCredits = 0;  //!< credits per logical network

    // Seeded bugs for mutation testing. Each reintroduces one failure
    // mode the paper's protocol rules exist to prevent.
    bool bugIgnoreDnf = false;            //!< LLC re-delegates DNF reqs
    bool bugDelegateToRequester = false;  //!< skip third-party check
    bool bugDuplicateReply = false;       //!< delegate AND inject reply
    bool bugFrqRequeue = false;           //!< remote miss re-queues
    bool bugDropWhenBusy = false;         //!< LLC drops req if queue full
    /** A cross-chiplet delivery keeps its interposer credit — the leak
     *  the router credit-return path must never have. */
    bool bugInterposerCreditLeak = false;

    // Warm initial state: per-line LLC core pointer (core index or -1)
    // and per-core L1 contents (bitmask of lines). Both are resized or
    // defaulted by Model's constructor when left empty.
    std::vector<int> initialPointer;
    std::vector<std::uint8_t> initialL1;
    std::uint8_t llcPresent = 0xFF;  //!< initial LLC line bitmask
};

/** Message kinds carried by the abstract networks. */
enum class MsgKind : std::uint8_t
{
    ReadReq,       //!< core -> LLC (dnf flag distinguishes re-sends)
    DelegatedReq,  //!< LLC -> delegate core, over the request network
    ReadReply,     //!< LLC or remote L1 -> requesting core
};

const char *msgKindName(MsgKind k);

/** One in-flight message. `seq` identifies the requester transaction. */
struct Msg
{
    MsgKind kind = MsgKind::ReadReq;
    std::uint8_t line = 0;
    std::uint8_t requester = 0;  //!< originating core (survives delegation)
    std::uint8_t seq = 0;        //!< transaction index within requester
    std::uint8_t dst = 0;        //!< core index, or numCores for the LLC
    std::uint8_t dnf = 0;        //!< Do-Not-Forward bit
    /** Sending node (core index or numCores for the LLC): decides
     *  whether the hop crosses the interposer. Constant 0 when the
     *  chiplet model is off, so legacy state spaces are unchanged. */
    std::uint8_t src = 0;

    auto operator<=>(const Msg &) const = default;
};

/** A merged MSHR target awaiting a fill. */
struct Target
{
    std::uint8_t line = 0;
    std::uint8_t requester = 0;
    std::uint8_t seq = 0;

    auto operator<=>(const Target &) const = default;
};

/** One entry of the LLC reply queue (mirrors LlcReply). */
struct ReplyEntry
{
    std::uint8_t line = 0;
    std::uint8_t requester = 0;
    std::uint8_t seq = 0;
    std::uint8_t delegatable = 0;
    std::int8_t delegateTo = -1;
    std::uint8_t dnfOrigin = 0;  //!< the request carried the DNF bit

    auto operator<=>(const ReplyEntry &) const = default;
};

/** Read-transaction status. */
enum : std::uint8_t
{
    readUnissued = 0,
    readWaiting = 1,
    readDone = 2,
};

/** Architectural state of one SM core. */
struct CoreState
{
    std::uint8_t l1 = 0;      //!< bitmask of lines present in the L1
    std::uint8_t issued = 0;  //!< reads issued so far
    std::uint8_t mshr = 0;    //!< bitmask of lines with an outstanding miss
    std::array<std::uint8_t, maxReads> readLine{};    //!< per-seq line
    std::array<std::uint8_t, maxReads> readStatus{};  //!< per-seq status
    std::vector<Msg> frq;       //!< Forwarded Request Queue (FIFO)
    std::vector<Msg> outbound;  //!< core-to-core replies (FIFO)
    std::vector<Target> remote; //!< delayed-hit targets (sorted set)

    auto operator<=>(const CoreState &) const = default;
};

/** Architectural state of the LLC/memory node. */
struct LlcState
{
    std::uint8_t present = 0;  //!< bitmask of lines in the cache
    std::uint8_t mshr = 0;     //!< bitmask of lines being filled
    std::array<std::int8_t, maxLines> ptr{};  //!< core pointer or -1
    std::vector<Target> targets;      //!< merged fill targets (sorted)
    std::vector<ReplyEntry> replyQ;   //!< reply/injection queue (FIFO)

    auto operator<=>(const LlcState &) const = default;
};

/** A complete protocol state. Networks are kept sorted (bag semantics). */
struct State
{
    std::vector<CoreState> cores;
    LlcState llc;
    std::vector<Msg> reqNet;
    std::vector<Msg> replyNet;
    std::vector<Msg> fwdNet;  //!< delegations (splitVnets only, else empty)
    std::vector<Msg> dlgNet;  //!< core replies (splitVnets only, else empty)
    /** Free interposer credits per logical network, indexed like the
     *  members above (chiplet model; constant zeros otherwise). */
    std::array<std::uint8_t, 4> ipCredits{};

    auto operator<=>(const State &) const = default;
};

/** Identifiers of the machine-checked protocol properties. */
namespace property
{
constexpr const char *deadlockFreedom = "deadlock-freedom";
constexpr const char *livelockFreedom = "livelock-freedom";
constexpr const char *delegateNotRequester = "delegate-not-requester";
constexpr const char *dnfNoRedelegate = "dnf-no-redelegate";
constexpr const char *exactlyOneReply = "exactly-one-reply";
constexpr const char *replyDelivery = "reply-delivery";
} // namespace property

/** A detected property violation. */
struct Violation
{
    std::string property;
    std::string detail;
};

/** One successor state with the action that produced it. */
struct Succ
{
    State state;
    std::string action;
    std::optional<Violation> violation;
};

/**
 * The transition system. Stateless apart from the configuration; the
 * checker owns the search.
 */
class Model
{
  public:
    /** Validates and normalizes the configuration (fatal() on misuse). */
    explicit Model(const ModelConfig &cfg);

    const ModelConfig &config() const { return cfg_; }

    State initialState() const;

    /**
     * All enabled transitions from `s`, in a deterministic order.
     * Successors whose transition violated a safety property carry the
     * violation; their states are still well-formed.
     */
    void successors(const State &s, std::vector<Succ> &out) const;

    /** Whether `s` is a legal quiescent end state (all reads done). */
    bool terminal(const State &s) const;

    /**
     * If `s` is quiescent (no queues, no messages, no outstanding
     * misses) but some transaction never completed, name it. Used to
     * distinguish a lost reply from a resource deadlock.
     */
    std::optional<Violation> quiescenceViolation(const State &s) const;

    /** Canonical byte encoding (decode() inverts it). */
    std::string encode(const State &s) const;
    State decode(const std::string &bytes) const;

    /** Multi-line human dump of a state (deadlock reports). */
    std::string describe(const State &s) const;

  private:
    int llcNode() const { return cfg_.numCores; }
    std::string coreName(int c) const;
    std::string msgName(const Msg &m) const;

    bool chipletModel() const { return cfg_.interposerCredits > 0; }
    /** Chiplet of a node: the LLC shares chiplet 0 with the home cores. */
    int chipletOf(int node) const
    {
        return node == llcNode() ? 0 : (cfg_.chipletCores >> node) & 1;
    }
    bool crossesInterposer(const Msg &m) const
    {
        return chipletModel() && chipletOf(m.src) != chipletOf(m.dst);
    }
    /** Credit-pool index of a logical network (State::ipCredits). */
    int netPool(std::vector<Msg> State::*net) const
    {
        if (net == &State::reqNet)
            return 0;
        if (net == &State::replyNet)
            return 1;
        return net == &State::fwdNet ? 2 : 3;
    }
    /** Whether `s` has the credit injecting `m` into `net` needs. */
    bool creditAvailable(const State &s, const Msg &m,
                         std::vector<Msg> State::*net) const
    {
        return !crossesInterposer(m) || s.ipCredits[netPool(net)] > 0;
    }
    /** Consume the credit a crossing injection holds in flight. */
    void chargeCredit(State &s, const Msg &m,
                      std::vector<Msg> State::*net) const
    {
        if (crossesInterposer(m))
            --s.ipCredits[netPool(net)];
    }
    /** Return the credit at delivery (the seeded leak keeps it). */
    void returnCredit(State &s, const Msg &m,
                      std::vector<Msg> State::*net) const
    {
        if (crossesInterposer(m) && !cfg_.bugInterposerCreditLeak)
            ++s.ipCredits[netPool(net)];
    }

    /** The network a delegation rides (fwdNet under splitVnets). */
    std::vector<Msg> State::*delegationNet() const
    {
        return cfg_.splitVnets ? &State::fwdNet : &State::reqNet;
    }
    int delegationCapacity() const
    {
        return cfg_.splitVnets ? cfg_.fwdNetCapacity : cfg_.reqNetCapacity;
    }
    /** The network a core-to-core reply rides (dlgNet under splitVnets). */
    std::vector<Msg> State::*coreReplyNet() const
    {
        return cfg_.splitVnets ? &State::dlgNet : &State::replyNet;
    }
    int coreReplyCapacity() const
    {
        return cfg_.splitVnets ? cfg_.dlgNetCapacity
                               : cfg_.replyNetCapacity;
    }

    void issueTransitions(const State &s, std::vector<Succ> &out) const;
    void frqTransitions(const State &s, std::vector<Succ> &out) const;
    void outboundTransitions(const State &s, std::vector<Succ> &out) const;
    void replyDeliveryTransitions(const State &s,
                                  std::vector<Msg> State::*net,
                                  std::vector<Succ> &out) const;
    void requestDeliveryTransitions(const State &s,
                                    std::vector<Msg> State::*net,
                                    std::vector<Succ> &out) const;
    void llcInjectTransitions(const State &s, std::vector<Succ> &out) const;
    void fillTransitions(const State &s, std::vector<Succ> &out) const;
    void evictTransitions(const State &s, std::vector<Succ> &out) const;

    void deliverToLlc(const State &s, const Msg &m, std::size_t netIdx,
                      std::vector<Msg> State::*net,
                      std::vector<Succ> &out) const;
    void deliverToCore(const State &s, const Msg &m, std::size_t netIdx,
                       std::vector<Msg> State::*net,
                       std::vector<Succ> &out) const;

    ModelConfig cfg_;
};

} // namespace verify
} // namespace dr

#endif // DR_VERIFY_MODEL_HPP

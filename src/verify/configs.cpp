#include "verify/configs.hpp"

namespace dr
{
namespace verify
{

namespace
{

/**
 * Base state shared by every named config: 3 SM cores, 2 lines, one
 * read per core. Line 0 is warm in the LLC with the pointer naming
 * core 1 (whose L1 holds it), so delegation is reachable in a handful
 * of steps; line 1 is absent, exercising the LLC MSHR / DRAM-fill /
 * target-merge path. All queue bounds are 1–2 so that back-pressure —
 * the condition delegation exists to relieve — is part of the explored
 * space.
 */
ModelConfig
baseConfig()
{
    ModelConfig cfg;
    cfg.numCores = 3;
    cfg.numLines = 2;
    cfg.maxReadsPerCore = 1;
    cfg.llcPresent = 0b01;
    cfg.initialPointer = {1, -1};
    cfg.initialL1 = {0b00, 0b01, 0b00};
    return cfg;
}

std::vector<NamedConfig>
makeConfigs()
{
    std::vector<NamedConfig> out;

    out.push_back(NamedConfig{
        "standard",
        "correct protocol, 3 cores / 2 lines / 1 read each, warm pointer",
        "", baseConfig()});

    {
        NamedConfig c{"no-frq-priority",
                      "FRQ loses remote-over-local priority: a core "
                      "with an outstanding local miss starves its FRQ",
                      property::deadlockFreedom, baseConfig()};
        c.config.frqRemotePriority = false;
        // Two warm delegatable lines so that two cores can end up
        // holding each other's forwarded request while both wait on
        // their own local miss — the circular wait the priority rule
        // prevents.
        c.config.llcPresent = 0b11;
        c.config.initialPointer = {1, 2};
        c.config.initialL1 = {0b00, 0b01, 0b10};
        out.push_back(std::move(c));
    }
    {
        NamedConfig c{"dnf-redelegate",
                      "LLC ignores the Do-Not-Forward bit and delegates "
                      "a re-sent request again",
                      property::dnfNoRedelegate, baseConfig()};
        c.config.bugIgnoreDnf = true;
        out.push_back(std::move(c));
    }
    {
        NamedConfig c{"delegate-self",
                      "LLC skips the third-party check and delegates a "
                      "reply to the requester itself",
                      property::delegateNotRequester, baseConfig()};
        c.config.bugDelegateToRequester = true;
        out.push_back(std::move(c));
    }
    {
        NamedConfig c{"duplicate-reply",
                      "LLC both delegates and injects the same reply",
                      property::exactlyOneReply, baseConfig()};
        c.config.bugDuplicateReply = true;
        out.push_back(std::move(c));
    }
    {
        NamedConfig c{"dnf-retry-loop",
                      "a remote miss re-queues the forwarded request "
                      "instead of re-sending it with DNF",
                      property::livelockFreedom, baseConfig()};
        c.config.bugFrqRequeue = true;
        out.push_back(std::move(c));
    }
    {
        // The historical fan-in hazard, now with the structural fix:
        // with the virtual-network split (noc.vnets) delegations ride a
        // dedicated ForwardedRequest network and core-to-core replies a
        // dedicated DelegatedReply network, so delegation fan-in toward
        // one core can no longer consume the buffering its FRQ head's
        // DNF re-send needs. The checker proves the 4-core / 1-line
        // configuration that deadlocked under the collapsed layout
        // (see `shared-vnet` below) deadlock- and livelock-free.
        NamedConfig c{"shared-net-clog",
                      "4 cores / 1 line, VN split: delegation fan-in no "
                      "longer blocks the DNF re-send",
                      "", baseConfig()};
        c.config.numCores = 4;
        c.config.numLines = 1;
        c.config.llcPresent = 0b0;
        c.config.initialPointer = {-1};
        c.config.initialL1 = {0, 0, 0, 0};
        c.config.splitVnets = true;
        out.push_back(std::move(c));
    }
    {
        // Not a seeded bug: the collapsed-VN layout the split replaces.
        // First-time/DNF requests and delegated requests share the
        // request network; when the delegations in flight toward one
        // core exceed its FRQ depth plus the network headroom, the core
        // can no longer inject the DNF re-send its FRQ head needs — a
        // message-class cycle the checker finds with a fourth core.
        // Kept as a mutant to prove the checker still detects the
        // hazard the virtual-network split removes. See DESIGN.md §10.
        NamedConfig c{"shared-vnet",
                      "4 cores / 1 line, VNs collapsed: delegation "
                      "fan-in exceeds FRQ + request-network headroom",
                      property::deadlockFreedom, baseConfig()};
        c.config.numCores = 4;
        c.config.numLines = 1;
        c.config.llcPresent = 0b0;
        c.config.initialPointer = {-1};
        c.config.initialL1 = {0, 0, 0, 0};
        c.config.splitVnets = false;
        out.push_back(std::move(c));
    }
    {
        NamedConfig c{"lost-reply",
                      "LLC drops a request when its reply queue is full",
                      property::replyDelivery, baseConfig()};
        c.config.bugDropWhenBusy = true;
        out.push_back(std::move(c));
    }
    {
        // Chiplet split (noc.chiplet*): the delegate core sits on a
        // remote chiplet, so every delegation, DNF re-send, and
        // core-to-core reply on its transactions holds one of the
        // bounded interposer credits from injection to delivery. With
        // the credit-return discipline intact the protocol must stay
        // deadlock-free across the narrow boundary.
        NamedConfig c{"chiplet-split",
                      "delegate core on a remote chiplet, 2 interposer "
                      "credits: crossing traffic is bounded but sound",
                      "", baseConfig()};
        c.config.splitVnets = true;
        c.config.chipletCores = 0b010;  // core 1, the warm delegate
        c.config.interposerCredits = 2;
        out.push_back(std::move(c));
    }
    {
        // Same split, but every cross-chiplet delivery keeps its
        // credit — the leak a router's credit-return path must never
        // have. Each per-network pool drains as its traffic crosses;
        // once the delegated-reply pool is empty the delegate's next
        // core-to-core reply blocks forever: a resource deadlock the
        // checker must find.
        NamedConfig c{"interposer-credit-leak",
                      "cross-chiplet deliveries leak their interposer "
                      "credit; the pools drain into a deadlock",
                      property::deadlockFreedom, baseConfig()};
        c.config.splitVnets = true;
        c.config.chipletCores = 0b010;
        c.config.interposerCredits = 1;
        c.config.bugInterposerCreditLeak = true;
        out.push_back(std::move(c));
    }
    return out;
}

} // namespace

NamedConfig
standardConfig()
{
    return allConfigs().front();
}

const std::vector<NamedConfig> &
allConfigs()
{
    static const std::vector<NamedConfig> configs = makeConfigs();
    return configs;
}

const NamedConfig *
findConfig(const std::string &name)
{
    for (const NamedConfig &c : allConfigs()) {
        if (c.name == name)
            return &c;
    }
    return nullptr;
}

} // namespace verify
} // namespace dr

#ifndef DR_VERIFY_CHECKER_HPP
#define DR_VERIFY_CHECKER_HPP

/**
 * @file
 * Exhaustive explicit-state search over the abstract DR protocol model.
 *
 * Breadth-first search over canonically-encoded states with an exact
 * visited map (keyed on the full encoding, so hash collisions cannot
 * hide states). BFS order makes the first counterexample found minimal
 * in transition count. After a clean safety sweep an iterative
 * three-colour depth-first pass looks for cycles among non-terminal
 * states, which — because every transition is weakly fair in the
 * interleaving semantics — witness livelock (e.g. a DNF retry path
 * that never terminates).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "verify/model.hpp"

namespace dr
{
namespace verify
{

struct CheckOptions
{
    std::uint64_t maxStates = 1'000'000;  //!< abort bound on |visited|
    bool checkLivelock = true;            //!< run the cycle pass
};

/** One step of a counterexample trace. */
struct TraceStep
{
    std::string action;  //!< transition taken to reach `state`
    State state;
};

struct CheckResult
{
    bool passed = false;
    bool hitStateLimit = false;
    std::uint64_t statesExplored = 0;
    std::uint64_t transitions = 0;

    // On failure: which property, what happened, and a minimal trace
    // from the initial state (trace.front() is the initial state with
    // an empty action).
    std::string violatedProperty;
    std::string violationDetail;
    std::vector<TraceStep> trace;
};

/** Exhaustively check `model`; see CheckResult for the verdict. */
CheckResult check(const Model &model, const CheckOptions &opts = {});

/** Render a counterexample (or PASS summary) for humans. */
std::string formatResult(const Model &model, const CheckResult &result,
                         bool verbose);

} // namespace verify
} // namespace dr

#endif // DR_VERIFY_CHECKER_HPP

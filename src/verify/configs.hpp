#ifndef DR_VERIFY_CONFIGS_HPP
#define DR_VERIFY_CONFIGS_HPP

/**
 * @file
 * Named model-checking configurations: the standard (correct) protocol
 * plus one mutant per seeded bug. Each mutant records the property the
 * checker is expected to report, so the mutation tests and the CLI's
 * --all mode can assert that drverify actually detects the paper's
 * failure modes.
 */

#include <string>
#include <vector>

#include "verify/model.hpp"

namespace dr
{
namespace verify
{

struct NamedConfig
{
    std::string name;
    std::string summary;
    /** Property the checker must report; empty means "must pass". */
    std::string expectation;
    ModelConfig config;
};

/** The correct-protocol configuration (3 cores, warm pointers). */
NamedConfig standardConfig();

/** All named configurations: standard first, then every mutant. */
const std::vector<NamedConfig> &allConfigs();

/** Lookup by name; nullptr when unknown. */
const NamedConfig *findConfig(const std::string &name);

} // namespace verify
} // namespace dr

#endif // DR_VERIFY_CONFIGS_HPP

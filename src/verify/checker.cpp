#include "verify/checker.hpp"

#include <deque>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/log.hpp"

namespace dr
{
namespace verify
{

namespace
{

constexpr std::uint32_t noParent = 0xFFFFFFFFu;

struct NodeInfo
{
    std::uint32_t parent = noParent;
    std::string action;  //!< transition taken from parent to this node
};

struct Search
{
    // Exact visited map: keyed on the full canonical encoding, so a
    // hash collision can only slow the lookup down, never merge two
    // distinct states. Search-time only, never a sim-tick path, and
    // never iterated: trace order comes from `info`.
    // drlint-allow(unordered-container)
    std::unordered_map<std::string, std::uint32_t> ids;
    std::vector<const std::string *> encodings;  //!< id -> canonical bytes
    std::vector<NodeInfo> info;                  //!< id -> BFS tree node

    std::uint32_t intern(const std::string &bytes, std::uint32_t parent,
                         std::string action, bool &inserted)
    {
        auto [it, fresh] = ids.emplace(bytes, 0);
        inserted = fresh;
        if (!fresh)
            return it->second;
        const auto id = static_cast<std::uint32_t>(encodings.size());
        it->second = id;
        encodings.push_back(&it->first);
        info.push_back(NodeInfo{parent, std::move(action)});
        return id;
    }
};

/** Rebuild the minimal trace from the initial state to `id`. */
std::vector<TraceStep>
tracePath(const Model &model, const Search &search, std::uint32_t id)
{
    std::vector<std::uint32_t> chain;
    for (std::uint32_t cur = id; cur != noParent;
         cur = search.info[cur].parent) {
        chain.push_back(cur);
    }
    std::vector<TraceStep> trace;
    trace.reserve(chain.size());
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
        trace.push_back(TraceStep{search.info[*it].action,
                                  model.decode(*search.encodings[*it])});
    }
    return trace;
}

/**
 * Iterative three-colour DFS for a cycle among reachable states. The
 * safety sweep has already visited every reachable state, so each
 * successor resolves to a known id. Terminal states can only evict
 * their way down a DAG, so any cycle found involves pending work and
 * witnesses livelock under weak fairness.
 */
struct CyclePass
{
    const Model &model;
    const Search &search;

    struct Frame
    {
        std::uint32_t id = 0;
        std::vector<std::pair<std::uint32_t, std::string>> succs;
        std::size_t next = 0;
    };

    std::vector<std::uint8_t> color;  // 0 white, 1 gray, 2 black
    std::vector<Frame> stack;

    explicit CyclePass(const Model &m, const Search &s)
        : model(m), search(s), color(s.encodings.size(), 0)
    {
    }

    Frame makeFrame(std::uint32_t id)
    {
        Frame f;
        f.id = id;
        const State state = model.decode(*search.encodings[id]);
        std::vector<Succ> succs;
        model.successors(state, succs);
        f.succs.reserve(succs.size());
        for (Succ &succ : succs) {
            const auto it = search.ids.find(model.encode(succ.state));
            if (it == search.ids.end())
                panic("drverify: cycle pass found an unvisited state");
            f.succs.emplace_back(it->second, std::move(succ.action));
        }
        return f;
    }

    /** Returns the cycle as trace steps (closing state repeated last),
     *  or an empty vector when the reachable graph is acyclic. */
    std::vector<TraceStep> run()
    {
        color[0] = 1;
        stack.push_back(makeFrame(0));
        while (!stack.empty()) {
            Frame &f = stack.back();
            if (f.next >= f.succs.size()) {
                color[f.id] = 2;
                stack.pop_back();
                continue;
            }
            const auto [childId, action] = f.succs[f.next];
            ++f.next;
            if (color[childId] == 1)
                return buildCycle(childId, action);
            if (color[childId] == 0) {
                color[childId] = 1;
                stack.push_back(makeFrame(childId));
            }
        }
        return {};
    }

    std::vector<TraceStep> buildCycle(std::uint32_t entryId,
                                      const std::string &closingAction)
    {
        // Prefix: minimal path to the cycle entry, then the gray stack
        // segment from the entry to the current state, then the back
        // edge that closes the loop.
        std::vector<TraceStep> trace =
            tracePath(model, search, entryId);
        std::size_t k = 0;
        while (k < stack.size() && stack[k].id != entryId)
            ++k;
        if (k == stack.size())
            panic("drverify: cycle entry not on the DFS stack");
        for (std::size_t i = k + 1; i < stack.size(); ++i) {
            const Frame &f = stack[i];
            const std::string &action = stack[i - 1]
                .succs[stack[i - 1].next - 1].second;
            trace.push_back(TraceStep{
                action, model.decode(*search.encodings[f.id])});
        }
        trace.push_back(TraceStep{
            closingAction + "  [returns to the state of step " +
                std::to_string(tracePath(model, search, entryId).size()) +
                "]",
            model.decode(*search.encodings[entryId])});
        return trace;
    }
};

} // namespace

CheckResult
check(const Model &model, const CheckOptions &opts)
{
    CheckResult result;
    Search search;

    const State init = model.initialState();
    bool inserted = false;
    search.intern(model.encode(init), noParent, "(initial state)",
                  inserted);

    std::deque<std::uint32_t> frontier;
    frontier.push_back(0);
    std::vector<Succ> succs;

    auto fail = [&](std::uint32_t id, const Violation &v,
                    const Succ *extra) {
        result.passed = false;
        result.violatedProperty = v.property;
        result.violationDetail = v.detail;
        result.trace = tracePath(model, search, id);
        if (extra != nullptr)
            result.trace.push_back(TraceStep{extra->action, extra->state});
    };

    while (!frontier.empty()) {
        const std::uint32_t id = frontier.front();
        frontier.pop_front();
        const State state = model.decode(*search.encodings[id]);
        model.successors(state, succs);
        result.transitions += succs.size();

        if (succs.empty() && !model.terminal(state)) {
            // No enabled transition and pending work: either a reply
            // was lost (quiescent) or resources deadlocked.
            if (const auto quiet = model.quiescenceViolation(state)) {
                fail(id, *quiet, nullptr);
            } else {
                fail(id,
                     Violation{property::deadlockFreedom,
                               "no transition is enabled but work is "
                               "pending (every queue blocked)"},
                     nullptr);
            }
            result.statesExplored = search.encodings.size();
            return result;
        }

        for (Succ &succ : succs) {
            if (succ.violation) {
                fail(id, *succ.violation, &succ);
                result.statesExplored = search.encodings.size();
                return result;
            }
            const std::uint32_t childId =
                search.intern(model.encode(succ.state), id,
                              std::move(succ.action), inserted);
            if (inserted) {
                if (search.encodings.size() > opts.maxStates) {
                    result.hitStateLimit = true;
                    result.statesExplored = search.encodings.size();
                    return result;
                }
                frontier.push_back(childId);
            }
        }
    }

    result.statesExplored = search.encodings.size();

    if (opts.checkLivelock) {
        CyclePass pass(model, search);
        std::vector<TraceStep> cycle = pass.run();
        if (!cycle.empty()) {
            result.passed = false;
            result.violatedProperty = property::livelockFreedom;
            result.violationDetail =
                "a reachable cycle never completes pending work";
            result.trace = std::move(cycle);
            return result;
        }
    }

    result.passed = true;
    return result;
}

std::string
formatResult(const Model &model, const CheckResult &result, bool verbose)
{
    std::ostringstream os;
    if (result.hitStateLimit) {
        os << "INCONCLUSIVE: state limit reached after "
           << result.statesExplored << " states ("
           << result.transitions << " transitions); raise --max-states\n";
        return os.str();
    }
    if (result.passed) {
        os << "PASS: explored " << result.statesExplored
           << " states, " << result.transitions
           << " transitions to fixed point\n"
           << "  holds: " << property::deadlockFreedom << ", "
           << property::livelockFreedom << ", "
           << property::delegateNotRequester << ", "
           << property::dnfNoRedelegate << ", "
           << property::exactlyOneReply << ", "
           << property::replyDelivery << "\n";
        return os.str();
    }
    os << "VIOLATION: " << result.violatedProperty << "\n"
       << "  " << result.violationDetail << "\n"
       << "  counterexample (" << (result.trace.empty()
                                       ? 0
                                       : result.trace.size() - 1)
       << " steps):\n";
    for (std::size_t i = 0; i < result.trace.size(); ++i) {
        os << "  " << i << ". " << result.trace[i].action << "\n";
        if (verbose ||
            (i + 1 == result.trace.size() && !result.trace.empty())) {
            os << model.describe(result.trace[i].state);
        }
    }
    return os.str();
}

} // namespace verify
} // namespace dr

#ifndef DR_NOC_PARALLEL_HPP
#define DR_NOC_PARALLEL_HPP

/**
 * @file
 * Threading primitives for the deterministic parallel tick engine
 * (DESIGN.md §11). The barrier is a counter + generation pair: every
 * arrival is one atomic RMW, the last arrival resets the counter and
 * bumps the generation, releasing the spinners. Waiters spin with a
 * CPU-relax hint and escalate to yield; there is no futex sleep
 * because a barrier wait spans at most one domain's worth of tick
 * work. The release/acquire pair on the generation (and the RMW chain
 * on the arrival counter) makes every write before any party's arrival
 * visible to every party after the barrier — which is the whole
 * correctness contract between the compute and commit phases.
 *
 * Ownership (DESIGN.md §12): the atomics are their own synchronization
 * and carry no phase annotation; parties_ is plain data reconfigured
 * only between ticks, hence DR_SERIAL_ONLY.
 */

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/ownership.hpp"

namespace dr
{

/**
 * One bounded-spin step: CPU-relax while `spins` climbs toward the
 * saturation point, then yield on every further call. The counter
 * saturates (no overflow), so callers can also use `spins >= 1024` as
 * an "escalate further" signal.
 */
inline void
cpuRelax(int &spins)
{
    if (spins < 1024) {
        ++spins;
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#elif defined(__aarch64__)
        asm volatile("yield" ::: "memory");
#endif
    } else {
        std::this_thread::yield();
    }
}

/** Reusable generation barrier for a fixed set of parties. */
class SpinBarrier
{
  public:
    explicit SpinBarrier(int parties = 1) : parties_(parties) {}

    /** Set the party count. Only valid while no thread is waiting. */
    void
    reset(int parties) DR_COMMIT_PHASE
    {
        parties_ = parties;
    }

    // The barrier *is* the synchronization between phases, so it sits
    // outside the phase model clang is asked to check.
    void
    arriveAndWait() DR_PHASE_UNCHECKED
    {
        // Reading the generation before arriving is race-free: no new
        // round can complete until this party arrives too.
        const std::uint64_t gen = gen_.load(std::memory_order_acquire);
        if (arrived_.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            parties_) {
            // Reset before the release bump so re-arrivals of the next
            // round (which synchronize on the bump) see a zero counter.
            arrived_.store(0, std::memory_order_relaxed);
            gen_.fetch_add(1, std::memory_order_release);
        } else {
            int spins = 0;
            while (gen_.load(std::memory_order_acquire) == gen)
                cpuRelax(spins);
        }
    }

  private:
    int parties_ DR_SERIAL_ONLY;
    std::atomic<int> arrived_{0};
    std::atomic<std::uint64_t> gen_{0};
};

} // namespace dr

#endif // DR_NOC_PARALLEL_HPP

#ifndef DR_NOC_ROUTER_HPP
#define DR_NOC_ROUTER_HPP

/**
 * @file
 * Wormhole virtual-channel router with credit-based flow control and a
 * configurable pipeline depth. The micro-architecture follows the paper's
 * baseline (Section VI): per-input VC buffers, route computation at the
 * head flit, VC allocation, and iSLIP-style separable switch allocation
 * in which CPU-class flits always beat GPU-class flits — the end-to-end
 * CPU priority of the baseline design.
 */

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/ownership.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"
#include "noc/ring_buffer.hpp"

namespace dr
{

/**
 * Services a router needs from its enclosing network: topology-aware
 * routing, flit/credit delivery, and ejection-buffer accounting.
 */
class RouterEnv
{
  public:
    virtual ~RouterEnv() = default;

    /** Output port for the flit's next hop at this router. */
    virtual int routeOutput(int router, const Flit &flit) const
        DR_COMPUTE_PHASE = 0;
    /** VC mask allowed on the channel leaving `router` via `port`. */
    virtual std::uint8_t vcMaskForOutput(int router, int port,
                                         const Flit &flit) const
        DR_COMPUTE_PHASE = 0;
    /** Deliver a flit into a peer router's input port at `when`. */
    virtual void deliverToRouter(int router, int port, const Flit &flit,
                                 Cycle when) DR_COMPUTE_PHASE = 0;
    /** Deliver a flit into a node's ejection buffer at `when`. */
    virtual void deliverToNode(NodeId node, const Flit &flit,
                               Cycle when) DR_COMPUTE_PHASE = 0;
    /** Free flit slots in a node's ejection buffer. */
    virtual int nodeEjectFree(NodeId node) const DR_COMPUTE_PHASE = 0;
    /** Reserve one ejection slot (called at switch traversal). */
    virtual void nodeEjectReserve(NodeId node) DR_COMPUTE_PHASE = 0;
    /** Return one credit to the feeder of (router, inputPort, vc). */
    virtual void creditToFeeder(int router, int inputPort, int vc,
                                Cycle when) DR_COMPUTE_PHASE = 0;
};

/** Per-router statistics (drive link-utilization and energy figures). */
struct RouterStats
{
    std::uint64_t bufferWrites = 0;   //!< flits written into input VCs
    std::uint64_t switchTraversals = 0;
    std::vector<std::uint64_t> portFlitsSent;  //!< per output port
};

/**
 * Snapshot of one input VC whose head flit is waiting for resources —
 * the unit of the watchdog's blocked-flit dependency chains.
 */
struct BlockedHead
{
    int router = -1;
    int inPort = -1;
    int inVc = -1;
    int outPort = -1;   //!< -1 before route computation
    int outVc = -1;     //!< -1 before VC allocation
    PacketId pkt = 0;
    std::int16_t destRouter = -1;
    int buffered = 0;   //!< flits queued behind (and including) the head
};

/**
 * A single router. The enclosing Network calls tick() once per cycle
 * after scheduling all arrivals for that cycle.
 *
 * The whole object is owned by one spatial domain of the parallel tick
 * engine (DESIGN.md §12): during the parallel phases only that domain's
 * worker may call the mutating entry points (validated by the
 * DR_CHECKED stamp), while serial code between barriers has exclusive
 * access by construction.
 */
class DR_DOMAIN_OWNED Router
{
  public:
    /**
     * `vnPriority` switches the allocators from the legacy two-level
     * CPU>GPU priority to the (class, virtual-network) rank of
     * vnet.hpp; off reproduces the legacy arbitration bit-for-bit.
     */
    Router(int id, int numPorts, int numVcs, int vcDepth, int stages,
           RouterEnv &env,
           const std::vector<std::uint8_t> &portIsLink,
           const std::vector<NodeId> &portNode, bool vnPriority = false);

    /** Queue a flit arriving at an input port (takes effect at `when`). */
    void acceptFlit(int port, const Flit &flit, Cycle when)
        DR_COMPUTE_PHASE;

    /** Queue a credit for an output VC (takes effect at `when`). */
    void acceptCredit(int port, int vc, Cycle when) DR_COMPUTE_PHASE;

    /** One simulation cycle: route computation, VC and switch alloc. */
    void tick(Cycle now) DR_COMPUTE_PHASE;

    /** Record the owning spatial domain (partition time). */
    void setDomain(int domain) { DR_STAMP_SET_OWNER(*this, domain); }

    /** Owning domain id (watchdog attribution; -1 before partition). */
    int domain() const { return drStamp_.owner; }

    /** Writer-domain stamp (phase-discipline audits). */
    const DomainStamp &domainStamp() const { return drStamp_; }

    /**
     * External wake: ejection space at an attached node grew (the
     * endpoint popped a message). Clears the stalled fast path — the
     * only allocation input that can change without a flit or credit
     * arriving at this router.
     */
    void wakeEjectSpace() { quiescent_ = false; }

    /**
     * Serialize switch traversals on an output port: at most one grant
     * every `interval` cycles. Models narrow link classes (interposer
     * channels whose width is a fraction of the on-chiplet channel):
     * each flit occupies the link for `interval` cycles. Interval 1 is
     * the default full-width channel and leaves schedules untouched.
     * Call once at wiring time, before the first tick.
     */
    void setPortSerialization(int port, int interval);

    /** Free downstream credits summed over an output port's VCs. */
    int freeCredits(int port) const;

    /** Flits buffered across all input VCs (occupancy diagnostics). */
    int bufferedFlits() const;

    const RouterStats &stats() const { return stats_; }
    int id() const { return id_; }
    int numPorts() const { return numPorts_; }

    /** Human-readable state dump for debugging stalls. */
    void debugDump(std::ostream &os) const;

    /** Clear statistics without touching router state. */
    void resetStats() { stats_ = RouterStats{}; }

    // --- invariant-checker and watchdog accessors -----------------------

    /** Configured buffer depth per VC (the credit-conservation bound). */
    int vcDepth() const { return vcDepth_; }

    /** Downstream credits currently held for one output VC. */
    int outVcCredits(int port, int vc) const
    {
        return out_[port * numVcs_ + vc].credits;
    }

    /** Flits occupying one input VC, including undelivered arrivals. */
    int inVcOccupancy(int port, int vc) const;

    /** Credit returns queued on `port` for `vc` not yet applied. */
    int pendingCreditsFor(int port, int vc) const;

    /** Flits in arrival queues not yet written into input VCs. */
    int pendingArrivalFlits() const { return pendingArrivals_; }

    /** Whether the router holds no work at all (active-set scheduling:
     *  idle routers leave the Network's work list and skip tick()). */
    bool
    idle() const
    {
        return pendingArrivals_ == 0 && pendingCredits_ == 0 &&
               bufferedCount_ == 0;
    }

    /** Input VCs whose head flit is waiting on a downstream resource. */
    std::vector<BlockedHead> blockedHeads() const;

    /**
     * Fault injection (tests only): discard one downstream credit of an
     * output VC, as a buggy allocator double-decrement would. The credit
     * conservation checker must detect the resulting leak.
     */
    void debugLeakCredit(int port, int vc);

  private:
    struct InVc
    {
        RingBuffer<Flit> buf;
        bool routed = false;   //!< head has an output port
        bool active = false;   //!< head has an output VC
        int outPort = -1;
        int outVc = -1;
    };

    struct TimedFlit
    {
        Cycle when;
        Flit flit;
    };

    struct TimedCredit
    {
        Cycle when;
        std::uint8_t vc;
    };

    struct OutVc
    {
        int credits = 0;
        int ownerIn = -1;  //!< encoded input (port * numVcs + vc) or -1
    };

    //!< returns whether anything applied
    bool applyArrivals(Cycle now) DR_COMPUTE_PHASE;
    //!< returns whether any head routed
    bool routeCompute() DR_COMPUTE_PHASE;
    //!< returns whether any VC allocated
    bool vcAllocate() DR_COMPUTE_PHASE;
    //!< returns whether any flit granted
    bool switchAllocate(Cycle now) DR_COMPUTE_PHASE;
    bool outVcHasSpace(int port, int vc, NodeId node) const
        DR_COMPUTE_PHASE;

    // Fallbacks for routers with more than 64 input VCs (e.g. a full
    // crossbar), where the occupancy bitmasks don't fit one word: the
    // allocation passes scan every VC as the original kernel did.
    bool routeComputeWide() DR_COMPUTE_PHASE;
    bool vcAllocateWide() DR_COMPUTE_PHASE;
    bool switchAllocateWide(Cycle now) DR_COMPUTE_PHASE;

    /** Grant one switch traversal to input VC `key` toward `outPort`. */
    void grantTraversal(int key, int outPort, Cycle now) DR_COMPUTE_PHASE;

    DR_DOMAIN_STAMP;

    int id_;
    int numPorts_;
    int numVcs_;
    int vcDepth_;
    int stages_;
    bool vnPriority_;
    RouterEnv &env_;

    std::vector<std::uint8_t> portIsLink_;  //!< per port: link vs node/none
    std::vector<NodeId> portNode_;          //!< per port: attached node

    // Input and output VC state is stored flat, indexed by the VC key
    // `port * numVcs + vc` — the same encoding OutVc::ownerIn and the
    // switch-allocation rotation already use.
    std::vector<InVc> in_;                   //!< [port * numVcs + vc]
    std::vector<RingBuffer<TimedFlit>> arrivals_;    //!< per input port
    std::vector<OutVc> out_;                 //!< [port * numVcs + vc]
    std::vector<RingBuffer<TimedCredit>> creditArrivals_;  //!< per out port

    // One bit per input VC key. The allocation passes iterate set bits
    // instead of scanning every port x VC pair; with a handful of flits
    // in a 5-port router that cuts each pass from dozens of probes to
    // one or two. Ascending bit order equals the old loop order, so
    // arbitration outcomes are unchanged.
    std::uint64_t occ_ = 0;     //!< input VCs with buffered flits
    std::uint64_t routed_ = 0;  //!< heads holding an output port
    std::uint64_t active_ = 0;  //!< heads holding an output VC
    bool wide_ = false;         //!< > 64 input VCs: masks unusable

    int saOffset_ = 0;                 //!< rotating output iteration start
    std::vector<int> rrPtr_;           //!< per output, input rotation
    std::vector<std::uint8_t> saInUsed_; //!< switch-allocation scratch
    std::vector<std::uint64_t> saReq_;   //!< per output, requesting VC keys

    /**
     * Stalled fast path: the last allocation pass routed, allocated and
     * granted nothing, and no flit/credit has arrived since — every
     * allocation input (buffers, credits, pure routing functions) is
     * unchanged, so the pass is skipped wholesale. Cleared by arrivals
     * and by wakeEjectSpace(); the arbitration rotation still advances
     * exactly as a run of switchAllocate would, keeping schedules
     * bit-identical with the non-skipping kernel.
     */
    bool quiescent_ = false;

    /**
     * Output-port serialization (narrow link classes). `hasThrottle_`
     * gates every hot-path check so the default all-ones configuration
     * pays nothing and keeps legacy schedules bit-identical.
     * `throttledWait_` records that the last allocation pass skipped a
     * throttled output that had requesters — such a pass must not latch
     * `quiescent_`, because the port becoming free again is a pure
     * function of time and would never produce a wake-up event.
     */
    bool hasThrottle_ = false;
    bool throttledWait_ = false;
    std::vector<int> portInterval_;    //!< per output port, cycles/flit
    std::vector<Cycle> portNextFree_;  //!< per output port

    // Activity tracking so idle routers can skip their tick entirely.
    int bufferedCount_ = 0;
    int pendingArrivals_ = 0;
    int pendingCredits_ = 0;

    /**
     * Earliest cycle at which any queued flit or credit matures. Every
     * arrival queue is FIFO-ordered by maturity time (each has a single
     * feeder with a fixed latency), so the minimum over queue fronts is
     * exact; applyArrivals() skips its scan while now is below it.
     * Pushes lower the watermark, scans recompute it from the fronts.
     */
    Cycle nextApplyCycle_ = 0;

    RouterStats stats_;
};

} // namespace dr

#endif // DR_NOC_ROUTER_HPP

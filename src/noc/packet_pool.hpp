#ifndef DR_NOC_PACKET_POOL_HPP
#define DR_NOC_PACKET_POOL_HPP

/**
 * @file
 * Slab allocator for in-flight packets. The Network previously kept
 * packets in a std::unordered_map<PacketId, Packet>, paying a hash
 * lookup on every NI injection, ejection, and scheduling decision; the
 * pool replaces the map with a flat slab indexed by a stable handle
 * that flits carry alongside the (debug-facing) PacketId. Released
 * slots go onto a free list and are reused, so steady-state traffic
 * allocates nothing.
 *
 * Ownership under the parallel tick engine (DESIGN.md §12): the pool's
 * *structure* (slab, free list, live map) is serial-only — slots are
 * claimed and released exclusively by serial code (NI injection runs in
 * the serial pre-tick, release in the serial merge). The *contents* of
 * an allocated slot are owned by whichever domain currently holds the
 * packet's flits, which is why slots_ is DR_DOMAIN_OWNED at slot
 * granularity while the bookkeeping is DR_SERIAL_ONLY.
 */

#include <cstddef>
#include <vector>

#include "common/invariant.hpp"
#include "common/ownership.hpp"
#include "noc/flit.hpp"

namespace dr
{

class PacketPool
{
  public:
    /** Claim a slot. The returned packet holds stale contents; the
     *  caller overwrites every field. */
    PacketHandle
    alloc() DR_COMMIT_PHASE
    {
        DR_PHASE_ASSERT_COMMIT();
        PacketHandle h;
        if (!free_.empty()) {
            h = free_.back();
            free_.pop_back();
        } else {
            h = static_cast<PacketHandle>(slots_.size());
            slots_.emplace_back();
            live_.push_back(0);
        }
        live_[static_cast<std::size_t>(h)] = 1;
        ++liveCount_;
        return h;
    }

    void
    release(PacketHandle h) DR_COMMIT_PHASE
    {
        DR_PHASE_ASSERT_COMMIT();
        DR_ASSERT(isLive(h));
        live_[static_cast<std::size_t>(h)] = 0;
        --liveCount_;
        free_.push_back(h);
    }

    Packet &operator[](PacketHandle h) DR_PHASE_READ
    {
        DR_ASSERT(isLive(h));
        return slots_[static_cast<std::size_t>(h)];
    }

    const Packet &operator[](PacketHandle h) const DR_PHASE_READ
    {
        DR_ASSERT(isLive(h));
        return slots_[static_cast<std::size_t>(h)];
    }

    /** Whether `h` names an allocated slot (cheap; any build type). */
    bool
    isLive(PacketHandle h) const DR_PHASE_READ
    {
        return h >= 0 && static_cast<std::size_t>(h) < live_.size() &&
               live_[static_cast<std::size_t>(h)];
    }

    /** Packets currently allocated. */
    std::size_t liveCount() const DR_PHASE_READ { return liveCount_; }

    /** Slab capacity high-water mark (diagnostics). */
    std::size_t slotCount() const { return slots_.size(); }

  private:
    std::vector<Packet> slots_ DR_DOMAIN_OWNED;  //!< slot-granular (see @file)
    std::vector<std::uint8_t> live_ DR_SERIAL_ONLY;
    std::vector<PacketHandle> free_ DR_SERIAL_ONLY;
    std::size_t liveCount_ DR_SERIAL_ONLY = 0;
};

} // namespace dr

#endif // DR_NOC_PACKET_POOL_HPP

#ifndef DR_NOC_RING_BUFFER_HPP
#define DR_NOC_RING_BUFFER_HPP

/**
 * @file
 * Bounded ring buffer (FIFO) over a contiguous power-of-two array. The
 * NoC hot paths (NI arrival/credit queues, router input VCs) previously
 * used std::deque, whose segmented storage costs an indirection per
 * access and an allocation every few pushes; these queues all have
 * small static bounds (buffer depths, credit counts), so a ring over
 * one flat array never reallocates in steady state. Growth is kept as
 * a safety valve: if a queue exceeds its reserved capacity the ring
 * doubles, preserving FIFO order.
 *
 * Ownership (DESIGN.md §12): a RingBuffer carries no annotation of its
 * own — every instance is embedded in an annotated structure (router
 * input VCs and arrival queues inside DR_DOMAIN_OWNED Router, NI queues
 * inside DR_DOMAIN_OWNED Ni) and inherits that structure's phase/domain
 * classification.
 */

#include <cstddef>
#include <vector>

namespace dr
{

template <typename T>
class RingBuffer
{
  public:
    RingBuffer() = default;

    /** Pre-size to at least `n` slots (rounded up to a power of two). */
    void
    reserve(std::size_t n)
    {
        if (n > buf_.size())
            rebuild(roundUpPow2(n));
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    /** i-th element from the front (0 == front()). */
    T &operator[](std::size_t i) { return buf_[(head_ + i) & mask_]; }
    const T &operator[](std::size_t i) const
    {
        return buf_[(head_ + i) & mask_];
    }

    void
    push_back(const T &v)
    {
        if (size_ == buf_.size())
            rebuild(buf_.empty() ? 8 : buf_.size() * 2);
        buf_[(head_ + size_) & mask_] = v;
        ++size_;
    }

    void
    pop_front()
    {
        head_ = (head_ + 1) & mask_;
        --size_;
    }

    void
    clear()
    {
        head_ = 0;
        size_ = 0;
    }

  private:
    static std::size_t
    roundUpPow2(std::size_t n)
    {
        std::size_t p = 1;
        while (p < n)
            p <<= 1;
        return p;
    }

    /** Reallocate to `cap` slots, linearizing the live range. */
    void
    rebuild(std::size_t cap)
    {
        std::vector<T> next(cap);
        for (std::size_t i = 0; i < size_; ++i)
            next[i] = buf_[(head_ + i) & mask_];
        buf_ = std::move(next);
        head_ = 0;
        mask_ = cap - 1;
    }

    std::vector<T> buf_;
    std::size_t head_ = 0;
    std::size_t size_ = 0;
    std::size_t mask_ = 0;
};

} // namespace dr

#endif // DR_NOC_RING_BUFFER_HPP

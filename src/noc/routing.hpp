#ifndef DR_NOC_ROUTING_HPP
#define DR_NOC_ROUTING_HPP

/**
 * @file
 * Routing policies. Deterministic dimension-order routing (XY/YX) on the
 * mesh implements CDR [3] when the request and reply networks use
 * different orders. The adaptive schemes (DyXY [45], Footprint [22],
 * HARE [37]) are modelled O1TURN-style: the dimension order of a packet
 * is chosen at injection from congestion/history state and each order
 * owns a disjoint VC class, which keeps wormhole routing deadlock-free.
 * Non-mesh topologies use deterministic minimal table routing; the
 * dragonfly additionally escalates the VC class after the global hop.
 * Chiplet meshes route hierarchically (ChipletHierarchical): east/west
 * chiplet transit along a destination-hashed gateway row, north/south
 * transit along a gateway column, then intra-chiplet XY — three
 * monotone phases, each owning a third of the packet's VN VC range.
 */

#include <cstdint>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/flit.hpp"
#include "noc/topology.hpp"

namespace dr
{

/** Congestion visibility the adaptive policies get at injection time. */
class CongestionProbe
{
  public:
    virtual ~CongestionProbe() = default;
    /** Free downstream credits summed over the VCs of an output port. */
    virtual int freeCredits(int router, int port) const = 0;
};

/**
 * Per-network routing policy. Stateless for deterministic kinds; the
 * adaptive kinds carry congestion/history state.
 */
class RoutingPolicy
{
  public:
    /**
     * `layout` partitions the VCs among virtual networks; an empty
     * layout means every VN may use every VC (the legacy behaviour).
     * VC-class escapes (O1TURN order classes, dragonfly phase
     * escalation) are computed *within* the packet's VN range so VN
     * isolation and escape deadlock-freedom compose — which also means
     * adaptive routing and the dragonfly need every VN range to hold
     * at least two VCs (fatal at construction otherwise).
     */
    RoutingPolicy(RoutingKind kind, const Topology &topo, int numVcs,
                  std::uint64_t seed, const VnetLayout &layout = {});

    RoutingKind kind() const { return kind_; }
    bool adaptive() const;
    const VnetLayout &layout() const { return layout_; }

    /**
     * Choose the dimension order for a packet at injection. Deterministic
     * kinds return their fixed order; adaptive kinds consult congestion
     * or history.
     */
    DimOrder chooseOrder(int srcRouter, int destRouter,
                         const CongestionProbe &net);

    /**
     * VC mask a packet of the given order and virtual network may use:
     * the VN's reserved range, halved per dimension order under
     * adaptive (O1TURN) routing.
     */
    std::uint8_t packetMask(DimOrder order,
                            VirtualNet vn = VirtualNet::Request) const;

    /** Output port at `router` for the flit's next hop. */
    int outputPort(int router, const Flit &flit) const;

    /**
     * Additional VC-mask constraint for the link into `downstreamRouter`
     * (dragonfly phase escalation; all-ones elsewhere).
     */
    std::uint8_t vcMaskForLink(int downstreamRouter,
                               const Flit &flit) const;

    /** Delivery feedback for history-based adaptivity (HARE). */
    void onDelivered(int srcRouter, int destRouter, DimOrder order,
                     Cycle latency);

  private:
    int meshPortToward(int router, int destRouter, DimOrder order) const;
    int firstHopPort(int router, int destRouter, DimOrder order) const;
    /** Hierarchical routing phase of `router` on the way to `destRouter`:
     *  0 = east/west chiplet transit, 1 = north/south transit, 2 =
     *  intra-chiplet XY. Monotone non-decreasing along any route. */
    int chipletPhase(int router, int destRouter) const;
    int chipletPortToward(int router, int destRouter) const;

    RoutingKind kind_;
    const Topology &topo_;
    int numVcs_;
    VnetLayout layout_;
    Rng rng_;

    /** HARE history: EWMA latency per (src, dest) per order. */
    struct History
    {
        double lat[2] = {0.0, 0.0};
        bool seen[2] = {false, false};
    };
    // drlint-allow(unordered-container): lookup by (src,dst) key
    // only; route choice reads one entry, never iterates.
    std::unordered_map<std::uint32_t, History> history_;
};

} // namespace dr

#endif // DR_NOC_ROUTING_HPP

#include "noc/vnet.hpp"

#include "common/config.hpp"
#include "common/log.hpp"

namespace dr
{

const char *
vnetName(VirtualNet vn)
{
    switch (vn) {
      case VirtualNet::Request: return "request";
      case VirtualNet::ForwardedRequest: return "forward";
      case VirtualNet::Reply: return "reply";
      case VirtualNet::DelegatedReply: return "delegated";
    }
    return "?";
}

VirtualNet
classifyMessage(const Message &msg, bool srcIsMemNode)
{
    switch (msg.type) {
      case MsgType::ReadReq:
      case MsgType::WriteReq:
      case MsgType::ProbeReq:
        // DNF re-sends (msg.dnf) ride the ordinary Request VN on
        // purpose: see the dependency-order discussion in vnet.hpp.
        return VirtualNet::Request;
      case MsgType::DelegatedReq:
        return VirtualNet::ForwardedRequest;
      case MsgType::ReadReply:
      case MsgType::WriteAck:
        return srcIsMemNode ? VirtualNet::Reply
                            : VirtualNet::DelegatedReply;
      case MsgType::ProbeNack:
        return VirtualNet::DelegatedReply; // always core-to-core
    }
    panic("unreachable message type in classifyMessage");
}

VnetLayout
VnetLayout::uniform(int numVcs)
{
    VnetLayout l;
    l.numVcs = numVcs;
    for (int vn = 0; vn < numVnets; ++vn)
        l.range[vn] = {0, static_cast<std::uint8_t>(numVcs)};
    return l;
}

namespace
{

void
setRange(VnetLayout &l, VirtualNet vn, int base, int count)
{
    l.range[static_cast<int>(vn)] = {static_cast<std::uint8_t>(base),
                                     static_cast<std::uint8_t>(count)};
}

} // namespace

VnetLayout
requestNetLayout(const NocConfig &noc)
{
    if (!noc.vnets)
        return VnetLayout::uniform(noc.vcsPerNet);
    VnetLayout l;
    l.numVcs = noc.vcsPerNet;
    setRange(l, VirtualNet::Request, 0, noc.vnetRequestVcs);
    setRange(l, VirtualNet::ForwardedRequest, noc.vnetRequestVcs,
             noc.vnetForwardVcs);
    // Reply-side VNs never travel on the request network; give them the
    // full range so a (checked-build-caught) misrouted packet still has
    // a legal mask instead of tripping the empty-mask panic.
    setRange(l, VirtualNet::Reply, 0, noc.vcsPerNet);
    setRange(l, VirtualNet::DelegatedReply, 0, noc.vcsPerNet);
    return l;
}

VnetLayout
replyNetLayout(const NocConfig &noc)
{
    if (!noc.vnets)
        return VnetLayout::uniform(noc.vcsPerNet);
    VnetLayout l;
    l.numVcs = noc.vcsPerNet;
    setRange(l, VirtualNet::Reply, 0, noc.vnetReplyVcs);
    setRange(l, VirtualNet::DelegatedReply, noc.vnetReplyVcs,
             noc.vnetDelegatedVcs);
    setRange(l, VirtualNet::Request, 0, noc.vcsPerNet);
    setRange(l, VirtualNet::ForwardedRequest, 0, noc.vcsPerNet);
    return l;
}

VnetLayout
sharedNetLayout(const NocConfig &noc)
{
    const int total = noc.sharedReqVcs + noc.sharedReplyVcs;
    VnetLayout l;
    l.numVcs = total;
    if (!noc.vnets) {
        // Legacy AVCP split: request-side classes on the first
        // sharedReqVcs VCs, reply-side classes on the rest (what
        // Interconnect::classMask used to express).
        setRange(l, VirtualNet::Request, 0, noc.sharedReqVcs);
        setRange(l, VirtualNet::ForwardedRequest, 0, noc.sharedReqVcs);
        setRange(l, VirtualNet::Reply, noc.sharedReqVcs,
                 noc.sharedReplyVcs);
        setRange(l, VirtualNet::DelegatedReply, noc.sharedReqVcs,
                 noc.sharedReplyVcs);
        return l;
    }
    setRange(l, VirtualNet::Request, 0, noc.vnetRequestVcs);
    setRange(l, VirtualNet::ForwardedRequest, noc.vnetRequestVcs,
             noc.vnetForwardVcs);
    setRange(l, VirtualNet::Reply, noc.sharedReqVcs, noc.vnetReplyVcs);
    setRange(l, VirtualNet::DelegatedReply,
             noc.sharedReqVcs + noc.vnetReplyVcs, noc.vnetDelegatedVcs);
    return l;
}

} // namespace dr

#ifndef DR_NOC_VNET_HPP
#define DR_NOC_VNET_HPP

/**
 * @file
 * Virtual-network (message-class) subsystem. Every protocol message
 * belongs to exactly one virtual network; each VN owns a reserved,
 * contiguous range of the physical VCs so that one class can never
 * starve another of buffering — the structural fix for the
 * shared-request-network fan-in clog of DESIGN.md §10 (delegations
 * filling a core's FRQ plus the request network and starving the FRQ
 * head's DNF re-send).
 *
 * The four VNs and their message-dependency order (an edge means "may
 * have to wait for"):
 *
 *   ForwardedRequest  -> Request, DelegatedReply
 *   Request           -> Reply, DelegatedReply
 *   Reply             -> (sink)
 *   DelegatedReply    -> (sink)
 *
 * ForwardedRequest carries LLC->core delegations (DelegatedReq); a
 * stalled forward waits only on the target core's FRQ, whose head
 * drains into Request (DNF re-send) or DelegatedReply (remote-hit
 * reply). Request carries ordinary reads/writes/probes *and* DNF
 * re-sends — deliberately NOT the ForwardedRequest VN: a DNF re-send
 * sharing buffering with the delegation fan-in that caused it
 * re-creates the §10 cycle. Request drains into Reply or, when the LLC
 * converts a reply into a delegation, falls back to the normal reply
 * path when the forward VN is full (mem_node.cpp), so Request never
 * hard-blocks on ForwardedRequest. Reply and DelegatedReply are
 * consumed unconditionally at the endpoints. The order is acyclic,
 * which with per-VN VC reservation makes the message-class dependency
 * graph deadlock-free; drverify proves it on the `shared-net-clog`
 * config and re-finds the hazard when the VNs are collapsed
 * (`shared-vnet` mutant).
 */

#include <array>
#include <cstdint>

#include "common/types.hpp"

namespace dr
{

struct NocConfig;

/** The protocol's virtual networks (message classes). */
enum class VirtualNet : std::uint8_t
{
    Request = 0,          //!< reads/writes/probes, incl. DNF re-sends
    ForwardedRequest = 1, //!< LLC->core delegations (DelegatedReq)
    Reply = 2,            //!< memory/LLC replies and write acks
    DelegatedReply = 3,   //!< core-to-core replies (remote hits, nacks)
};

constexpr int numVnets = 4;

const char *vnetName(VirtualNet vn);

/**
 * Registry: the VN a message travels on. Replies need the sender kind
 * because a ReadReply from a memory node is an ordinary Reply while the
 * same type sent core-to-core (a delegated remote hit) rides the
 * DelegatedReply VN.
 */
VirtualNet classifyMessage(const Message &msg, bool srcIsMemNode);

/**
 * Classification when the sender kind is unknown (raw Network kernel
 * users: benches, synthetic traffic). Replies default to the Reply VN.
 */
inline VirtualNet
defaultVnet(const Message &msg)
{
    return classifyMessage(msg, /*srcIsMemNode=*/true);
}

/** A contiguous range of VCs reserved for one VN. */
struct VcRange
{
    std::uint8_t base = 0;
    std::uint8_t count = 0;
};

/**
 * Per-network VC partition: which VC range each VN may use. Ranges may
 * alias (VNs collapsed onto the same VCs) — the legacy shared-network
 * request/reply split is expressed as two aliased pairs. An empty
 * layout (numVcs == 0) means "uniform": every VN may use every VC.
 */
struct VnetLayout
{
    std::array<VcRange, numVnets> range{};
    int numVcs = 0;

    bool empty() const { return numVcs == 0; }

    /** Bitmask of the VCs the given VN may use. */
    std::uint8_t mask(VirtualNet vn) const
    {
        const VcRange &r = range[static_cast<int>(vn)];
        return static_cast<std::uint8_t>(((1u << r.count) - 1u) << r.base);
    }

    /** All VNs share all `numVcs` VCs. */
    static VnetLayout uniform(int numVcs);
};

/**
 * Layout builders from the system NoC config. With `noc.vnets` off they
 * reproduce the legacy behaviour exactly (schedule-preserving): the
 * split physical networks give every VN the full VC range and the
 * shared network aliases Request/ForwardedRequest onto the first
 * `sharedReqVcs` VCs and Reply/DelegatedReply onto the rest. With
 * `noc.vnets` on each VN gets its own disjoint range from the
 * `noc.vnet*Vcs` keys (validated in NocConfig::validate).
 */
VnetLayout requestNetLayout(const NocConfig &noc);
VnetLayout replyNetLayout(const NocConfig &noc);
VnetLayout sharedNetLayout(const NocConfig &noc);

/**
 * Arbitration rank of a (class, VN) pair; lower wins. With vnPriority
 * off the rank is the traffic class alone (CPU beats GPU — the legacy
 * order, bit-identical schedules). With it on, ties within a class
 * break by VN: replies and delegated replies (sinks) first, then
 * forwards, then fresh requests — draining downstream classes first
 * frees buffering the upstream classes are waiting on.
 */
inline int
vnetRank(VirtualNet vn)
{
    switch (vn) {
      case VirtualNet::Reply: return 0;
      case VirtualNet::DelegatedReply: return 1;
      case VirtualNet::ForwardedRequest: return 2;
      case VirtualNet::Request: return 3;
    }
    return 3;
}

inline int
arbRank(TrafficClass cls, VirtualNet vn, bool vnPriority)
{
    const int clsIdx = cls == TrafficClass::Cpu ? 0 : 1;
    return vnPriority ? clsIdx * numVnets + vnetRank(vn) : clsIdx;
}

/** Number of distinct arbitration ranks for the given mode. */
inline int
arbRankCount(bool vnPriority)
{
    return vnPriority ? 2 * numVnets : 2;
}

} // namespace dr

#endif // DR_NOC_VNET_HPP

#include "noc/network.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>

#include "common/invariant.hpp"
#include "common/log.hpp"

namespace dr
{

namespace
{

/** Resolve a params.threads value: 0 = auto (DR_NOC_THREADS or 1). */
int
resolveThreads(int configured)
{
    if (configured > 0)
        return configured;
    if (const char *env = std::getenv("DR_NOC_THREADS")) {
        const int parsed = std::atoi(env);
        if (parsed > 0)
            return parsed;
    }
    return 1;
}

} // namespace

Network::Network(const NetworkParams &params, const Topology &topo)
    : topo_(topo), params_(params),
      routing_(params.routing, topo, params.numVcs, params.seed,
               params.layout)
{
    if (static_cast<int>(params_.injBufferFlits.size()) != topo_.nodes())
        fatal("network ", params_.name, ": injBufferFlits must have one "
              "entry per node");

    routers_.reserve(topo_.routers());
    for (int r = 0; r < topo_.routers(); ++r) {
        const int radix = topo_.radix(r);
        std::vector<std::uint8_t> isLink(radix, 0);
        std::vector<NodeId> node(radix, invalidNode);
        for (int p = 0; p < radix; ++p) {
            const auto &conn = topo_.port(r, p);
            isLink[p] = conn.kind == PortConn::Kind::Link;
            node[p] = conn.node;
        }
        routers_.push_back(std::make_unique<Router>(
            r, radix, params_.numVcs, params_.vcDepthFlits,
            params_.routerStages, *this, isLink, node,
            params_.vnPriority));
    }

    // Interposer link class: narrow channels serialize each flit over
    // several cycles. Wired per output port before the first tick; the
    // default interval of 1 leaves the routers on the untouched fast
    // path (hasThrottle_ stays false).
    if (params_.interposerSerialization > 1) {
        for (int r = 0; r < topo_.routers(); ++r) {
            for (int p = 0; p < topo_.radix(r); ++p) {
                if (topo_.isInterposer(r, p))
                    routers_[r]->setPortSerialization(
                        p, params_.interposerSerialization);
            }
        }
    }

    nis_.resize(topo_.nodes());
    for (NodeId n = 0; n < topo_.nodes(); ++n) {
        Ni &ni = nis_[n];
        ni.capacity = params_.injBufferFlits[n];
        ni.vcSend.resize(params_.numVcs);
        ni.vcFlitsSent.assign(params_.numVcs, 0);
        ni.credits.assign(params_.numVcs, params_.vcDepthFlits);
        ni.ejFree = params_.ejBufferFlits;
        ni.assembling.assign(params_.numVcs, 0);
        ni.assembledFlits.assign(params_.numVcs, 0);
        // Ring capacities sized to the structural bounds so the queues
        // never grow in steady state: credits outstanding are bounded
        // by the attach link's VC buffers, staged ejections by the
        // ejection buffer, queued packets by the injection buffer
        // (every packet is at least one flit).
        ni.creditArrivals.reserve(
            static_cast<std::size_t>(params_.numVcs) *
            static_cast<std::size_t>(params_.vcDepthFlits));
        ni.ejArrivals.reserve(
            static_cast<std::size_t>(params_.ejBufferFlits));
        ni.queue[0].reserve(static_cast<std::size_t>(ni.capacity));
        ni.queue[1].reserve(static_cast<std::size_t>(ni.capacity));
    }

    // --- spatial-domain partition (DESIGN.md §11) ----------------------
    // Contiguous, balanced router ranges; a node lives in its attach
    // router's domain, so every NI<->router attach link and every
    // router<->ejection interaction stays domain-local. Node attach
    // order is monotone in every built-in topology, which makes the
    // node ranges contiguous too — the serial merge depends on that to
    // replay delivery events in global NI order. If a future topology
    // breaks monotonicity we fall back to one domain rather than give
    // up bit-equality.
    numDomains_ = std::min(resolveThreads(params_.threads),
                           topo_.routers());
    routerDomain_.resize(static_cast<std::size_t>(topo_.routers()));
    if (topo_.kind() == TopologyKind::ChipletMesh) {
        // Chiplet-aligned partition: domain boundaries snap to whole
        // chiplet rows, so an interposer row-crossing is the only kind
        // of cross-domain link and every chiplet is owned by exactly
        // one domain. Blocks (chiplet rows) are assigned to domains
        // with the same balanced formula as routers below — contiguous
        // and monotone in the router index, so the monotone-attach
        // check keeps passing.
        const int blocks = topo_.chipletsY();
        numDomains_ = std::min(numDomains_, blocks);
        for (int r = 0; r < topo_.routers(); ++r) {
            const int block = topo_.yOf(r) / topo_.chipletSubH();
            routerDomain_[r] = static_cast<std::int16_t>(
                (static_cast<long>(block) * numDomains_) / blocks);
        }
    } else {
        for (int r = 0; r < topo_.routers(); ++r) {
            routerDomain_[r] = static_cast<std::int16_t>(
                (static_cast<long>(r) * numDomains_) / topo_.routers());
        }
    }
    nodeDomain_.resize(static_cast<std::size_t>(topo_.nodes()));
    bool monotone = true;
    for (NodeId n = 0; n < topo_.nodes(); ++n) {
        nodeDomain_[n] = routerDomain_[topo_.attachRouter(n)];
        if (n > 0 && nodeDomain_[n] < nodeDomain_[n - 1])
            monotone = false;
    }
    if (!monotone) {
        numDomains_ = 1;
        std::fill(routerDomain_.begin(), routerDomain_.end(),
                  std::int16_t{0});
        std::fill(nodeDomain_.begin(), nodeDomain_.end(), std::int16_t{0});
    }

    domains_.resize(static_cast<std::size_t>(numDomains_));
    for (Domain &d : domains_) {
        d.activeNis = ActiveSet(topo_.nodes());
        d.activeRouters = ActiveSet(topo_.routers());
    }
    stagedFlits_.resize(
        static_cast<std::size_t>(numDomains_) * numDomains_);
    stagedCredits_.resize(
        static_cast<std::size_t>(numDomains_) * numDomains_);

    // Writer-domain stamps: record each structure's owning domain so the
    // DR_CHECKED phase checks can validate every compute-phase write.
    for (int r = 0; r < topo_.routers(); ++r)
        routers_[r]->setDomain(routerDomain_[r]);
    for (NodeId n = 0; n < topo_.nodes(); ++n)
        DR_STAMP_SET_OWNER(nis_[n], nodeDomain_[n]);
    for (int d = 0; d < numDomains_; ++d)
        DR_STAMP_SET_OWNER(domains_[d], d);

    barrier_.reset(numDomains_);
    workers_.reserve(static_cast<std::size_t>(numDomains_ - 1));
    for (int d = 1; d < numDomains_; ++d)
        workers_.emplace_back(&Network::workerLoop, this, d);
}

Network::~Network()
{
    if (!workers_.empty()) {
        {
            std::lock_guard<std::mutex> lk(epochMutex_);
            stop_.store(true, std::memory_order_release);
        }
        epochCv_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }
}

int
Network::injectFree(NodeId node) const
{
    const Ni &ni = nis_[node];
    return ni.capacity - ni.queuedFlits;
}

bool
Network::canInject(NodeId node, int flits) const
{
    return injectFree(node) >= flits;
}

void
Network::inject(const Message &msg, int flits, Cycle now, VirtualNet vn)
{
    DR_PHASE_ASSERT_COMMIT();
    const int clsIdx = msg.cls == TrafficClass::Cpu ? 0 : 1;
    const int vnIdx = static_cast<int>(vn);
    ++stats_.packetsInjected;
    ++stats_.vnPacketsInjected[vnIdx];

    // Local delivery: the message loops back inside the NI without
    // entering the fabric. It completes in zero cycles — the minimum —
    // and that is sampled into the latency averages so local traffic is
    // not invisible to latency figures; flit, link, and router counters
    // are untouched because no flit ever exists (DESIGN.md).
    if (msg.src == msg.dst) {
        const int kindIdx = onRequestNetwork(msg.type) ? 0 : 1;
        nis_[msg.dst].ready[kindIdx].push_back({msg, 0});
        ++stats_.packetsDelivered;
        ++stats_.localDeliveries;
        stats_.packetLatency.sample(0.0);
        if (msg.cls == TrafficClass::Cpu)
            stats_.cpuPacketLatency.sample(0.0);
        else
            stats_.gpuPacketLatency.sample(0.0);
        return;
    }

    const PacketHandle handle = pool_.alloc();
    Packet &pkt = pool_[handle];
    pkt.msg = msg;
    pkt.id = nextPktId_++;
    pkt.flits = flits;
    pkt.srcRouter = static_cast<std::int16_t>(topo_.attachRouter(msg.src));
    pkt.destRouter = static_cast<std::int16_t>(topo_.attachRouter(msg.dst));
    pkt.destPort = static_cast<std::int16_t>(topo_.attachPort(msg.dst));
    pkt.cls = msg.cls;
    pkt.vnet = vn;
    pkt.order = routing_.chooseOrder(pkt.srcRouter, pkt.destRouter, *this);
    pkt.vcMask = routing_.packetMask(pkt.order, vn);
    if (!pkt.vcMask)
        panic("network ", params_.name, ": empty VC mask at injection");
    // VN isolation starts here: the packet's mask is carved from its
    // VN's reserved range, and every downstream mask (router VC
    // allocation, escape escalation) only ever intersects it.
    DR_ASSERT_MSG((pkt.vcMask & ~routing_.layout().mask(vn)) == 0,
                  "network ", params_.name,
                  ": packet mask escapes its virtual network");
    pkt.queuedAt = now;
    pkt.injectedAt = 0;  // slot is recycled; set when the head flit leaves

    Ni &ni = nis_[msg.src];
    if (ni.capacity - ni.queuedFlits < flits)
        panic("network ", params_.name, ": inject() without canInject()");
    ni.queuedFlits += flits;
    ni.queue[clsIdx].push_back(handle);
    domains_[nodeDomain_[msg.src]].activeNis.add(msg.src);
}

bool
Network::hasMessage(NodeId node, NetKind kind) const
{
    return !nis_[node].ready[static_cast<int>(kind)].empty();
}

const Message &
Network::peekMessage(NodeId node, NetKind kind) const
{
    return nis_[node].ready[static_cast<int>(kind)].front().first;
}

Message
Network::popMessage(NodeId node, NetKind kind)
{
    // Legal from serial code (exclusive between barriers) and from the
    // endpoint compute phase when the caller is the worker owning this
    // node's domain (DESIGN.md §13): the pop touches only the node's
    // own NI and its attach router, both owned by that same domain.
    phase::assertPhaseDomain(nodeDomain_[node], "popMessage");
    Ni &ni = nis_[node];
    DR_STAMP_WRITE(ni);
    auto &queue = ni.ready[static_cast<int>(kind)];
    if (queue.empty())
        panic("popMessage on empty queue");
    Message msg = queue.front().first;
    const int freedSlots = queue.front().second;
    ni.ejFree += freedSlots;
    queue.pop_front();
    // Ejection space is the one allocation input that changes without a
    // flit or credit arriving at the attach router: wake its stalled
    // fast path so flits blocked on ejection re-arbitrate.
    if (freedSlots > 0)
        routers_[topo_.attachRouter(node)]->wakeEjectSpace();
    return msg;
}

void
Network::niInject(Domain &d, Ni &ni, NodeId node, Cycle now)
{
    DR_STAMP_WRITE(ni);
    while (!ni.creditArrivals.empty() &&
           ni.creditArrivals.front().when <= now) {
        ++ni.credits[ni.creditArrivals.front().vc];
        ni.creditArrivals.pop_front();
    }

    const int attachRouter = topo_.attachRouter(node);
    const int attachPort = topo_.attachPort(node);

    // Pick a VC with an in-flight packet, a pending flit, and a credit;
    // lowest (class, VN) arbitration rank wins — CPU-class packets
    // first (Figure 4: the scheduler prioritizes CPU replies inside the
    // injection buffer), then (vnPriority mode) downstream virtual
    // networks before upstream ones. Among equal-rank sends the scan
    // starts at a per-NI round-robin pointer — a fixed starting index
    // would let the lowest-index VC monopolize the attach link and
    // starve packets mid-flight on higher VCs under saturation.
    int sendVc = -1;
    int sendRank = 0;
    bool sendCpu = false;
    for (int i = 0; i < params_.numVcs; ++i) {
        const int v = (ni.sendRr + i) % params_.numVcs;
        const auto &ss = ni.vcSend[v];
        if (!ss.busy || ni.credits[v] <= 0)
            continue;
        const Packet &p = pool_[ss.pkt];
        const int rank = arbRank(p.cls, p.vnet, params_.vnPriority);
        if (sendVc < 0 || rank < sendRank) {
            sendVc = v;
            sendRank = rank;
            sendCpu = p.cls == TrafficClass::Cpu;
        }
    }

    // Try to start a new packet on a free VC. CPU packets may start (and
    // thus preempt the link) even while a GPU packet is mid-flight on
    // another VC; GPU packets only start when nothing else can send.
    if (sendVc < 0 || !sendCpu) {
        const bool gpuMayStart = sendVc < 0;
        for (int clsIdx = 0; clsIdx < 2; ++clsIdx) {
            if (clsIdx == 1 && !gpuMayStart)
                break;
            if (ni.queue[clsIdx].empty())
                continue;
            const Packet &pkt = pool_[ni.queue[clsIdx].front()];
            Flit probe;  // only routing fields matter for the mask hook
            probe.destRouter = pkt.destRouter;
            probe.order = pkt.order;
            probe.vnet = pkt.vnet;
            const std::uint8_t mask =
                pkt.vcMask & routing_.vcMaskForLink(attachRouter, probe);
            bool assigned = false;
            for (int v = 0; v < params_.numVcs; ++v) {
                if (!(mask & (1u << v)) || ni.vcSend[v].busy ||
                    ni.credits[v] <= 0) {
                    continue;
                }
                ni.vcSend[v].busy = true;
                ni.vcSend[v].pkt = ni.queue[clsIdx].front();
                ni.vcSend[v].sent = 0;
                ni.queue[clsIdx].pop_front();
                sendVc = v;
                assigned = true;
                break;
            }
            if (!assigned) {
                // Head-of-line packet found no free, credited VC in its
                // virtual network's range this cycle.
                ++d.vnInjectionStalls[static_cast<int>(pkt.vnet)];
            }
            if (assigned)
                break;
        }
    }

    if (sendVc < 0)
        return;

    auto &ss = ni.vcSend[sendVc];
    Packet &pkt = pool_[ss.pkt];
    Flit flit;
    flit.pkt = pkt.id;
    flit.slot = ss.pkt;
    flit.seq = static_cast<std::uint16_t>(ss.sent);
    flit.head = ss.sent == 0;
    flit.tail = ss.sent == pkt.flits - 1;
    flit.vc = static_cast<std::uint8_t>(sendVc);
    flit.destRouter = pkt.destRouter;
    flit.destPort = pkt.destPort;
    flit.cls = pkt.cls;
    flit.order = pkt.order;
    flit.vcMask = pkt.vcMask;
    flit.vnet = pkt.vnet;

    if (flit.head)
        pkt.injectedAt = now;
    DR_INVARIANT(ni.credits[sendVc] > 0, "network ", params_.name,
                 ": NI injection without a credit on VC ", sendVc);
    // Per-VN occupancy moves through domain-local (delta, max-prefix)
    // scratch; mergeTick() composes the domains in ascending order,
    // which reconstructs the exact sequential running occupancy and its
    // peak. Only increments can set a new peak, so tracking the max on
    // the increment side alone is exact.
    const int vnIdx = static_cast<int>(pkt.vnet);
    if (++d.vnDelta[vnIdx] > d.vnMaxPrefix[vnIdx])
        d.vnMaxPrefix[vnIdx] = d.vnDelta[vnIdx];
    routers_[attachRouter]->acceptFlit(attachPort, flit, now + 1);
    d.activeRouters.add(attachRouter);
    --ni.credits[sendVc];
    --ni.queuedFlits;
    DR_ASSERT(ni.queuedFlits >= 0);
    ++ni.flitsInjected;
    ++ni.vcFlitsSent[sendVc];
    ++d.conservInjected;
    ++ss.sent;
    if (flit.tail)
        ss.busy = false;
    ni.sendRr = (sendVc + 1) % params_.numVcs;
}

void
Network::niEject(Domain &d, Ni &ni, NodeId node, Cycle now)
{
    (void)node;
    DR_STAMP_WRITE(ni);
    while (!ni.ejArrivals.empty() && ni.ejArrivals.front().when <= now) {
        const Flit flit = ni.ejArrivals.front().flit;
        ni.ejArrivals.pop_front();
        ++ni.flitsEjected;
        ++d.conservEjected;
        ++d.flitsDelivered;
        ++d.vnFlitsDelivered[static_cast<int>(flit.vnet)];
        --d.vnDelta[static_cast<int>(flit.vnet)];

        const int v = flit.vc;
        if (flit.head) {
            ni.assembling[v] = flit.pkt;
            ni.assembledFlits[v] = 0;
        }
        if (ni.assembling[v] != flit.pkt)
            panic("network ", params_.name, ": interleaved packets on one "
                  "ejection VC");
        ++ni.assembledFlits[v];
        if (!flit.tail)
            continue;

        if (!pool_.isLive(flit.slot) || pool_[flit.slot].id != flit.pkt)
            panic("network ", params_.name, ": unknown packet ejected");
        const Packet &pkt = pool_[flit.slot];
        if (ni.assembledFlits[v] != pkt.flits)
            panic("network ", params_.name, ": flit count mismatch at "
                  "reassembly");

        // The order-sensitive completion effects — floating-point
        // latency sampling, the HARE history update, the packet-pool
        // release (free-list order decides future handle reuse) — are
        // recorded here and replayed serially by mergeTick() in global
        // NI order, so they happen in exactly the sequential schedule's
        // order no matter which worker ran this NI. A packet queued
        // before the warmup/measurement boundary straddles both phases;
        // its latency is dropped from the averages at merge time and
        // counted in warmupStraddlers instead.
        const Cycle latency = now - pkt.queuedAt;
        d.delivered.push_back({flit.slot, pkt.srcRouter, pkt.destRouter,
                               pkt.order, pkt.cls,
                               pkt.queuedAt < statsResetAt_, latency});

        const int kindIdx = onRequestNetwork(pkt.msg.type) ? 0 : 1;
        ni.ready[kindIdx].push_back({pkt.msg, pkt.flits});
        // The completed packet's ejection slots are now accounted
        // against the ready-queue entry (returned by popMessage).
        ni.assembledFlits[v] = 0;
    }
}

void
Network::tick(Cycle now)
{
    DR_PHASE_ASSERT_COMMIT();
    now_ = now;

    // Two-phase compute/commit cycle (DESIGN.md §11). Phase 1 ticks
    // every domain's NIs and routers in parallel: all inter-entity
    // effects are future-timestamped, so phase 1 reads only
    // previous-cycle state, and cross-domain flits/credits are staged
    // in SPSC buffers instead of delivered. Phase 2 — after a barrier —
    // commits the staged movements into the receiving domains' arrival
    // queues. A final serial merge replays the order-sensitive
    // completion effects so the result is bit-identical to
    // noc.threads=1 by construction.
    if (numDomains_ == 1) {
        Domain &d = domains_[0];
        if (!d.hasWork())
            return;
        {
            phase::ComputeScope cs(0);
            DR_PHASE_ASSERT_COMPUTE();
            tickDomain(d, now);
        }
        mergeTick();
        return;
    }

    // Quiescence vote: with every domain's active sets empty, nothing
    // in the network can change this cycle — skip the whole round
    // (including the barriers) instead of waking the workers.
    bool anyWork = false;
    for (const Domain &d : domains_) {
        if (d.hasWork()) {
            anyWork = true;
            break;
        }
    }
    if (!anyWork)
        return;

    {
        std::lock_guard<std::mutex> lk(epochMutex_);
        epoch_.fetch_add(1, std::memory_order_release);
    }
    epochCv_.notify_all();
    {
        // The main thread acts as domain 0's worker for the two
        // parallel phases, then drops back to serial for the merge.
        phase::ComputeScope cs(0);
        DR_PHASE_ASSERT_COMPUTE();
        tickDomain(domains_[0], now);
        barrier_.arriveAndWait();  // compute -> commit
        commitStaged(0);
    }
    barrier_.arriveAndWait();  // commit -> merge
    mergeTick();
}

void
Network::tickDomain(Domain &d, Cycle now)
{
    DR_STAMP_WRITE(d);
#ifdef DR_CHECKED
    if (debugPhaseMutant_ != PhaseMutant::None)
        applyPhaseMutant(d, now);
#endif
    // Active-set scheduling: only NIs and routers holding work are
    // visited; everything else is skipped outright. Members re-register
    // through the flit/credit delivery hooks, and sweep order is
    // ascending-index — identical to the old tick-everything loop, on
    // which the skipped entities were no-ops.
    d.activeNis.sweep([&](int n) {
        Ni &ni = nis_[n];
        const NodeId node = static_cast<NodeId>(n);
        niEject(d, ni, node, now);
        niInject(d, ni, node, now);
        return ni.busy();
    });
    d.activeRouters.sweep([&](int r) {
        routers_[r]->tick(now);
        return !routers_[r]->idle();
    });
}

void
Network::commitStaged(int consumer)
{
    // Drain producers in ascending order. Every router arrival queue
    // has exactly one feeder (the upstream router of that link), so the
    // relative order across queues is irrelevant and the order within a
    // queue equals the producer's deterministic push order — the same
    // sequence the sequential engine builds.
    Domain &d = domains_[consumer];
    DR_STAMP_WRITE(d);
#ifdef DR_CHECKED
    int lastDrained = -1;
#endif
    for (int i = 0; i < numDomains_; ++i) {
        int p = i;
#ifdef DR_CHECKED
        if (debugPhaseMutant_ == PhaseMutant::SpscOutOfOrder)
            // drphase-allow(spsc-drain-order): seeded mutant — the
            // ascending-order assertion below must trap this at runtime.
            p = numDomains_ - 1 - i;
        // Ascending producer order is part of the determinism contract:
        // it equals the order the sequential engine applies these
        // arrivals in, so a reordering bug shows up here, not as a
        // mysteriously different fingerprint.
        DR_ASSERT_MSG(p > lastDrained, "network ", params_.name,
                      ": SPSC staging drained out of order (producer ",
                      p, " after ", lastDrained, ")");
        lastDrained = p;
#endif
        auto &flits = stagedFlits_[static_cast<std::size_t>(p) *
                                       numDomains_ + consumer];
        for (const StagedFlit &s : flits) {
            routers_[s.router]->acceptFlit(s.port, s.flit, s.when);
            d.activeRouters.add(s.router);
        }
        flits.clear();
        auto &credits = stagedCredits_[static_cast<std::size_t>(p) *
                                           numDomains_ + consumer];
        for (const StagedCredit &s : credits) {
            routers_[s.router]->acceptCredit(s.port, s.vc, s.when);
            d.activeRouters.add(s.router);
        }
        credits.clear();
    }
}

void
Network::mergeTick()
{
    DR_PHASE_ASSERT_COMMIT();
    // Ascending domain order == ascending NI order (contiguous node
    // ranges), so the replay below is the exact sequential event order.
    for (Domain &d : domains_) {
        linkTraversals_ += d.linkTraversals;
        d.linkTraversals = 0;
        conservInjected_ += d.conservInjected;
        d.conservInjected = 0;
        conservEjected_ += d.conservEjected;
        d.conservEjected = 0;
        stats_.flitsDelivered += d.flitsDelivered;
        d.flitsDelivered = 0;
        for (int vn = 0; vn < numVnets; ++vn) {
            stats_.vnFlitsDelivered[vn] += d.vnFlitsDelivered[vn];
            d.vnFlitsDelivered[vn] = 0;
            stats_.vnInjectionStalls[vn] += d.vnInjectionStalls[vn];
            d.vnInjectionStalls[vn] = 0;
            // Parallel prefix-max: the peak within this domain's event
            // block is the running occupancy entering the block plus
            // the block's max prefix delta.
            if (d.vnMaxPrefix[vn] > 0) {
                const auto candidate = static_cast<std::uint64_t>(
                    vnInFabric_[vn] + d.vnMaxPrefix[vn]);
                if (candidate > stats_.vnPeakFlits[vn])
                    stats_.vnPeakFlits[vn] = candidate;
            }
            vnInFabric_[vn] += d.vnDelta[vn];
            d.vnDelta[vn] = 0;
            d.vnMaxPrefix[vn] = 0;
            DR_ASSERT(vnInFabric_[vn] >= 0);
        }
        stats_.interposerFlits += d.interposerFlits;
        d.interposerFlits = 0;
        if (d.ipMaxPrefix > 0) {
            const auto candidate =
                static_cast<std::uint64_t>(ipInFabric_ + d.ipMaxPrefix);
            if (candidate > stats_.interposerPeakFlits)
                stats_.interposerPeakFlits = candidate;
        }
        ipInFabric_ += d.ipDelta;
        d.ipDelta = 0;
        d.ipMaxPrefix = 0;
        DR_ASSERT(ipInFabric_ >= 0);
        for (const DeliveredRecord &rec : d.delivered) {
            if (rec.straddler) {
                ++stats_.warmupStraddlers;
            } else {
                stats_.packetLatency.sample(
                    static_cast<double>(rec.latency));
                if (rec.cls == TrafficClass::Cpu)
                    stats_.cpuPacketLatency.sample(
                        static_cast<double>(rec.latency));
                else
                    stats_.gpuPacketLatency.sample(
                        static_cast<double>(rec.latency));
            }
            routing_.onDelivered(rec.srcRouter, rec.destRouter, rec.order,
                                 rec.latency);
            ++stats_.packetsDelivered;
            pool_.release(rec.slot);
        }
        d.delivered.clear();
    }
}

void
Network::workerLoop(int domainIdx)
{
    std::uint64_t seen = 0;
    for (;;) {
        // Wait for the next tick's start signal: spin briefly (the next
        // tick usually follows immediately under load), then sleep on
        // the condition variable so idle stretches don't burn a core.
        int spins = 0;
        while (epoch_.load(std::memory_order_acquire) == seen) {
            if (stop_.load(std::memory_order_acquire))
                return;
            if (spins < 1024) {
                cpuRelax(spins);
            } else {
                std::unique_lock<std::mutex> lk(epochMutex_);
                epochCv_.wait(lk, [&] {
                    return epoch_.load(std::memory_order_relaxed) !=
                               seen ||
                           stop_.load(std::memory_order_relaxed);
                });
            }
        }
        // Lockstep: the main thread cannot start another tick until
        // every domain passes both barriers, so the epoch advances by
        // exactly one per observed change.
        ++seen;
        {
            phase::ComputeScope cs(domainIdx);
            DR_PHASE_ASSERT_COMPUTE();
            tickDomain(domains_[domainIdx], now_);
            barrier_.arriveAndWait();  // compute -> commit
            commitStaged(domainIdx);
        }
        barrier_.arriveAndWait();  // commit -> merge
    }
}

int
Network::routeOutput(int router, const Flit &flit) const
{
    return routing_.outputPort(router, flit);
}

std::uint8_t
Network::vcMaskForOutput(int router, int port, const Flit &flit) const
{
    const auto &conn = topo_.port(router, port);
    if (conn.kind == PortConn::Kind::Link)
        return routing_.vcMaskForLink(conn.peerRouter, flit);
    return 0xff;
}

void
Network::deliverToRouter(int router, int port, const Flit &flit, Cycle when)
{
    // Called from phase 1 on the sending router's worker. Same-domain
    // hops commit directly (the arrival is future-timestamped, so the
    // receiver cannot consume it this cycle either way); cross-domain
    // hops are staged and committed after the barrier.
    const auto &conn = topo_.port(router, port);
    const int producer = routerDomain_[router];
    ++domains_[producer].linkTraversals;
    if (conn.interposer) {
        // Interposer link class: extra hop latency, plus occupancy
        // tracking (a flit occupies the downstream interposer buffer
        // until its credit crosses back). Both touches are events of
        // the sending router's tick, so the per-domain delta/max-prefix
        // merge reconstructs the serial event order exactly.
        Domain &pd = domains_[producer];
        DR_STAMP_WRITE(pd);
        ++pd.interposerFlits;
        if (++pd.ipDelta > pd.ipMaxPrefix)
            pd.ipMaxPrefix = pd.ipDelta;
        when += static_cast<Cycle>(params_.interposerLatency);
    }
    const int consumer = routerDomain_[conn.peerRouter];
    if (producer == consumer) {
        routers_[conn.peerRouter]->acceptFlit(conn.peerPort, flit, when);
        domains_[consumer].activeRouters.add(conn.peerRouter);
    } else {
#ifdef DR_CHECKED
        if (debugPhaseMutant_ == PhaseMutant::UnstagedCross) {
            // Seeded mutant: commit the cross-domain hop directly from
            // the producer's worker instead of staging it. The receiving
            // router's stamp check must trap this.
            routers_[conn.peerRouter]->acceptFlit(conn.peerPort, flit,
                                                  when);
            domains_[consumer].activeRouters.add(conn.peerRouter);
            return;
        }
#endif
        stagedFlits_[static_cast<std::size_t>(producer) * numDomains_ +
                     consumer]
            .push_back({static_cast<std::int16_t>(conn.peerRouter),
                        static_cast<std::int16_t>(conn.peerPort), when,
                        flit});
    }
}

void
Network::deliverToNode(NodeId node, const Flit &flit, Cycle when)
{
    // An NI shares its attach router's domain, so ejection never
    // crosses a domain boundary.
    Domain &d = domains_[nodeDomain_[node]];
    Ni &ni = nis_[node];
    DR_STAMP_WRITE(ni);
    ni.ejArrivals.push_back({when, flit});
    d.activeNis.add(node);
    ++d.linkTraversals;
}

int
Network::nodeEjectFree(NodeId node) const
{
    return nis_[node].ejFree;
}

void
Network::nodeEjectReserve(NodeId node)
{
    Ni &ni = nis_[node];
    DR_STAMP_WRITE(ni);
    if (ni.ejFree <= 0)
        panic("ejection reservation without space");
    --ni.ejFree;
}

void
Network::creditToFeeder(int router, int inputPort, int vc, Cycle when)
{
    const auto &conn = topo_.port(router, inputPort);
    if (conn.kind == PortConn::Kind::Link) {
        const int producer = routerDomain_[router];
        const int consumer = routerDomain_[conn.peerRouter];
        if (conn.interposer) {
            // Credit return crosses the interposer too: same added
            // latency, and the freed buffer slot ends the flit's
            // interposer occupancy (an event of this router's tick).
            --domains_[producer].ipDelta;
            when += static_cast<Cycle>(params_.interposerLatency);
        }
        if (producer == consumer) {
            routers_[conn.peerRouter]->acceptCredit(conn.peerPort, vc,
                                                    when);
            domains_[consumer].activeRouters.add(conn.peerRouter);
        } else {
            stagedCredits_[static_cast<std::size_t>(producer) *
                               numDomains_ +
                           consumer]
                .push_back({static_cast<std::int16_t>(conn.peerRouter),
                            static_cast<std::int16_t>(conn.peerPort),
                            static_cast<std::uint8_t>(vc), when});
        }
    } else if (conn.kind == PortConn::Kind::Node) {
        // Attach links are domain-local by construction.
        Ni &ni = nis_[conn.node];
        DR_STAMP_WRITE(ni);
        ni.creditArrivals.push_back(
            {when, static_cast<std::uint8_t>(vc)});
        domains_[nodeDomain_[conn.node]].activeNis.add(conn.node);
    } else {
        panic("credit to unconnected port");
    }
}

int
Network::freeCredits(int router, int port) const
{
    return routers_[router]->freeCredits(port);
}

double
Network::injectionLinkUtilization(NodeId node, Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(nis_[node].flitsInjected) /
           static_cast<double>(cycles);
}

double
Network::ejectionLinkUtilization(NodeId node, Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(nis_[node].flitsEjected) /
           static_cast<double>(cycles);
}

std::uint64_t
Network::flitsEjectedAt(NodeId node) const
{
    return nis_[node].flitsEjected;
}

void
Network::applyPhaseMutant(Domain &d, Cycle now)
{
#ifdef DR_CHECKED
    // Mutants needing a foreign domain fire from domain 0's worker
    // against the last domain's state; they are inert on the serial
    // engine (numDomains_ == 1), where no ownership boundary exists.
    if (numDomains_ < 2 || &d != &domains_[0])
        return;
    const NodeId victim = static_cast<NodeId>(topo_.nodes() - 1);
    switch (debugPhaseMutant_) {
    case PhaseMutant::CrossDomainWrite:
        // drphase-allow(cross-domain-commit): seeded mutant — the NI
        // stamp check inside niEject must trap this foreign-domain call.
        niEject(d, nis_[victim], victim, now);
        break;
    case PhaseMutant::SerialInCompute:
        // drphase-allow(compute-calls-commit): seeded mutant — the
        // pool's commit-phase assertion must trap this.
        // drreach-allow(phase-escape): same mutant, transitive view.
        pool_.release(pool_.alloc());
        break;
    case PhaseMutant::StampBypass:
        // A write path that updates state without passing a checked
        // entry point leaves a writer record the audit rejects.
        nis_[victim].drStamp_.writer =
            static_cast<std::int16_t>(nodeDomain_[victim] + 1);
        break;
    default:
        break;
    }
#else
    (void)d;
    (void)now;
#endif
}

void
Network::checkPhaseStamps() const
{
    for (const Ni &ni : nis_)
        DR_STAMP_AUDIT(ni);
    for (const Domain &d : domains_)
        DR_STAMP_AUDIT(d);
    for (const auto &router : routers_)
        phase::auditStamp(router->domainStamp(), "router");
}

void
Network::resetStats()
{
    DR_PHASE_ASSERT_COMMIT();
    stats_ = NetworkStats{};
    // Peak per-VN occupancy restarts from the live occupancy, not from
    // zero — flits already in flight still occupy their VN's buffers.
    for (int vn = 0; vn < numVnets; ++vn)
        stats_.vnPeakFlits[vn] = static_cast<std::uint64_t>(
            std::max(vnInFabric_[vn], 0));
    stats_.interposerPeakFlits =
        static_cast<std::uint64_t>(std::max(ipInFabric_, 0));
    // Record the boundary: packets queued before this cycle must not
    // contribute latency samples to the fresh measurement window.
    statsResetAt_ = now_;
    linkTraversals_ = 0;
    for (auto &router : routers_)
        router->resetStats();
    for (auto &ni : nis_) {
        ni.flitsInjected = 0;
        ni.flitsEjected = 0;
    }
}

void
Network::debugDump(std::ostream &os) const
{
    DR_PHASE_ASSERT_COMMIT();
    for (const auto &router : routers_) {
        if (router->bufferedFlits() > 0)
            router->debugDump(os);
    }
    for (NodeId n = 0; n < static_cast<NodeId>(nis_.size()); ++n) {
        const Ni &ni = nis_[n];
        if (ni.queuedFlits == 0 && ni.ejFree == params_.ejBufferFlits)
            continue;
        os << "NI" << n << " queuedFlits=" << ni.queuedFlits
           << " ejFree=" << ni.ejFree << " credits:";
        for (int v = 0; v < params_.numVcs; ++v)
            os << " " << ni.credits[v] << (ni.vcSend[v].busy ? "B" : "-");
        os << " readyReq=" << ni.ready[0].size() << " readyRep="
           << ni.ready[1].size() << "\n";
    }
}

int
Network::routerOccupancy() const
{
    int total = 0;
    for (const auto &router : routers_)
        total += router->bufferedFlits();
    return total;
}

std::uint64_t
Network::totalSwitchTraversals() const
{
    std::uint64_t total = 0;
    for (const auto &router : routers_)
        total += router->stats().switchTraversals;
    return total;
}

std::uint64_t
Network::totalBufferWrites() const
{
    std::uint64_t total = 0;
    for (const auto &router : routers_)
        total += router->stats().bufferWrites;
    return total;
}

std::uint64_t
Network::totalLinkTraversals() const
{
    DR_PHASE_ASSERT_COMMIT();
    return linkTraversals_;
}

int
Network::flitsInFlight() const
{
    int total = 0;
    for (const auto &router : routers_)
        total += router->bufferedFlits() + router->pendingArrivalFlits();
    for (const auto &ni : nis_)
        total += static_cast<int>(ni.ejArrivals.size());
    return total;
}

void
Network::checkFlitConservation() const
{
    DR_PHASE_ASSERT_COMMIT();
    const std::uint64_t inFlight =
        static_cast<std::uint64_t>(flitsInFlight());
    if (conservInjected_ != conservEjected_ + inFlight) {
        panic("network ", params_.name, ": flit conservation violated: ",
              conservInjected_, " injected != ", conservEjected_,
              " ejected + ", inFlight, " in flight");
    }
}

void
Network::checkCreditConservation() const
{
    DR_PHASE_ASSERT_COMMIT();
    const int depth = params_.vcDepthFlits;

    // Router-to-router links: credits held upstream + flits occupying
    // (or in flight toward) the downstream buffer + credit returns in
    // flight must equal the buffer depth.
    for (int r = 0; r < topo_.routers(); ++r) {
        for (int p = 0; p < topo_.radix(r); ++p) {
            const auto &conn = topo_.port(r, p);
            if (conn.kind != PortConn::Kind::Link)
                continue;
            for (int v = 0; v < params_.numVcs; ++v) {
                const int held = routers_[r]->outVcCredits(p, v);
                const int downstream =
                    routers_[conn.peerRouter]->inVcOccupancy(conn.peerPort,
                                                             v);
                const int returning = routers_[r]->pendingCreditsFor(p, v);
                if (held + downstream + returning != depth) {
                    panic("network ", params_.name,
                          ": credit conservation violated on link R", r,
                          " port ", p, " vc ", v, ": ", held, " held + ",
                          downstream, " downstream + ", returning,
                          " returning != depth ", depth);
                }
                if (held < 0 || held > depth) {
                    panic("network ", params_.name, ": R", r, " port ", p,
                          " vc ", v, " credit count ", held,
                          " outside [0, ", depth, "]");
                }
            }
        }
    }

    // NI attach links (node -> router) and ejection-slot accounting.
    for (NodeId n = 0; n < static_cast<NodeId>(nis_.size()); ++n) {
        const Ni &ni = nis_[n];
        const int attachRouter = topo_.attachRouter(n);
        const int attachPort = topo_.attachPort(n);
        for (int v = 0; v < params_.numVcs; ++v) {
            const int held = ni.credits[v];
            const int downstream =
                routers_[attachRouter]->inVcOccupancy(attachPort, v);
            int returning = 0;
            for (std::size_t i = 0; i < ni.creditArrivals.size(); ++i) {
                if (ni.creditArrivals[i].vc == v)
                    ++returning;
            }
            if (held + downstream + returning != depth) {
                panic("network ", params_.name,
                      ": credit conservation violated on NI", n, " vc ", v,
                      ": ", held, " held + ", downstream, " downstream + ",
                      returning, " returning != depth ", depth);
            }
        }

        int staged = static_cast<int>(ni.ejArrivals.size());
        for (int v = 0; v < params_.numVcs; ++v)
            staged += ni.assembledFlits[v];
        for (const auto &kind : ni.ready) {
            for (const auto &entry : kind)
                staged += entry.second;
        }
        if (params_.ejBufferFlits - ni.ejFree != staged) {
            panic("network ", params_.name, ": NI", n,
                  " ejection-slot accounting violated: capacity ",
                  params_.ejBufferFlits, " - free ", ni.ejFree,
                  " != staged ", staged);
        }
    }
}

void
Network::checkAllInvariants() const
{
    checkFlitConservation();
    checkCreditConservation();
    checkPhaseStamps();
}

} // namespace dr

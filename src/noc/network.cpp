#include "noc/network.hpp"

#include <algorithm>
#include <ostream>

#include "common/invariant.hpp"
#include "common/log.hpp"

namespace dr
{

Network::Network(const NetworkParams &params, const Topology &topo)
    : topo_(topo), params_(params),
      routing_(params.routing, topo, params.numVcs, params.seed)
{
    if (static_cast<int>(params_.injBufferFlits.size()) != topo_.nodes())
        fatal("network ", params_.name, ": injBufferFlits must have one "
              "entry per node");

    routers_.reserve(topo_.routers());
    for (int r = 0; r < topo_.routers(); ++r) {
        const int radix = topo_.radix(r);
        std::vector<std::uint8_t> isLink(radix, 0);
        std::vector<NodeId> node(radix, invalidNode);
        for (int p = 0; p < radix; ++p) {
            const auto &conn = topo_.port(r, p);
            isLink[p] = conn.kind == PortConn::Kind::Link;
            node[p] = conn.node;
        }
        routers_.push_back(std::make_unique<Router>(
            r, radix, params_.numVcs, params_.vcDepthFlits,
            params_.routerStages, *this, isLink, node));
    }

    nis_.resize(topo_.nodes());
    for (NodeId n = 0; n < topo_.nodes(); ++n) {
        Ni &ni = nis_[n];
        ni.capacity = params_.injBufferFlits[n];
        ni.vcSend.resize(params_.numVcs);
        ni.credits.assign(params_.numVcs, params_.vcDepthFlits);
        ni.ejFree = params_.ejBufferFlits;
        ni.assembling.assign(params_.numVcs, 0);
        ni.assembledFlits.assign(params_.numVcs, 0);
    }
}

Network::~Network() = default;

int
Network::injectFree(NodeId node) const
{
    const Ni &ni = nis_[node];
    return ni.capacity - ni.queuedFlits;
}

bool
Network::canInject(NodeId node, int flits) const
{
    return injectFree(node) >= flits;
}

void
Network::inject(const Message &msg, int flits, Cycle now,
                std::uint8_t vcMask)
{
    const int clsIdx = msg.cls == TrafficClass::Cpu ? 0 : 1;
    ++stats_.packetsInjected;

    // Local delivery needs no network resources.
    if (msg.src == msg.dst) {
        const int kindIdx = onRequestNetwork(msg.type) ? 0 : 1;
        nis_[msg.dst].ready[kindIdx].push_back({msg, 0});
        ++stats_.packetsDelivered;
        return;
    }

    Packet pkt;
    pkt.msg = msg;
    pkt.id = nextPktId_++;
    pkt.flits = flits;
    pkt.srcRouter = static_cast<std::int16_t>(topo_.attachRouter(msg.src));
    pkt.destRouter = static_cast<std::int16_t>(topo_.attachRouter(msg.dst));
    pkt.destPort = static_cast<std::int16_t>(topo_.attachPort(msg.dst));
    pkt.cls = msg.cls;
    pkt.order = routing_.chooseOrder(pkt.srcRouter, pkt.destRouter, *this);
    const std::uint8_t all =
        static_cast<std::uint8_t>((1u << params_.numVcs) - 1u);
    pkt.vcMask = routing_.packetMask(pkt.order) & all;
    if (vcMask)
        pkt.vcMask &= vcMask;
    if (!pkt.vcMask)
        panic("network ", params_.name, ": empty VC mask at injection");
    pkt.queuedAt = now;

    Ni &ni = nis_[msg.src];
    if (ni.capacity - ni.queuedFlits < flits)
        panic("network ", params_.name, ": inject() without canInject()");
    ni.queuedFlits += flits;
    ni.queue[clsIdx].push_back(pkt.id);
    inFlight_.emplace(pkt.id, pkt);
}

bool
Network::hasMessage(NodeId node, NetKind kind) const
{
    return !nis_[node].ready[static_cast<int>(kind)].empty();
}

const Message &
Network::peekMessage(NodeId node, NetKind kind) const
{
    return nis_[node].ready[static_cast<int>(kind)].front().first;
}

Message
Network::popMessage(NodeId node, NetKind kind)
{
    Ni &ni = nis_[node];
    auto &queue = ni.ready[static_cast<int>(kind)];
    if (queue.empty())
        panic("popMessage on empty queue");
    Message msg = queue.front().first;
    ni.ejFree += queue.front().second;
    queue.pop_front();
    return msg;
}

void
Network::niInject(Ni &ni, NodeId node, Cycle now)
{
    while (!ni.creditArrivals.empty() &&
           ni.creditArrivals.front().first <= now) {
        ++ni.credits[ni.creditArrivals.front().second];
        ni.creditArrivals.pop_front();
    }

    const int attachRouter = topo_.attachRouter(node);
    const int attachPort = topo_.attachPort(node);

    // Pick a VC with an in-flight packet, a pending flit, and a credit;
    // CPU-class packets win (Figure 4: the scheduler prioritizes CPU
    // replies inside the injection buffer).
    int sendVc = -1;
    bool sendCpu = false;
    for (int v = 0; v < params_.numVcs; ++v) {
        const auto &ss = ni.vcSend[v];
        if (!ss.busy || ni.credits[v] <= 0)
            continue;
        const bool isCpu =
            inFlight_.at(ss.pkt).cls == TrafficClass::Cpu;
        if (sendVc < 0 || (isCpu && !sendCpu)) {
            sendVc = v;
            sendCpu = isCpu;
        }
    }

    // Try to start a new packet on a free VC. CPU packets may start (and
    // thus preempt the link) even while a GPU packet is mid-flight on
    // another VC; GPU packets only start when nothing else can send.
    if (sendVc < 0 || !sendCpu) {
        const bool gpuMayStart = sendVc < 0;
        for (int clsIdx = 0; clsIdx < 2; ++clsIdx) {
            if (clsIdx == 1 && !gpuMayStart)
                break;
            if (ni.queue[clsIdx].empty())
                continue;
            const Packet &pkt = inFlight_.at(ni.queue[clsIdx].front());
            Flit probe;  // only routing fields matter for the mask hook
            probe.destRouter = pkt.destRouter;
            probe.order = pkt.order;
            const std::uint8_t mask =
                pkt.vcMask & routing_.vcMaskForLink(attachRouter, probe);
            bool assigned = false;
            for (int v = 0; v < params_.numVcs; ++v) {
                if (!(mask & (1u << v)) || ni.vcSend[v].busy ||
                    ni.credits[v] <= 0) {
                    continue;
                }
                ni.vcSend[v].busy = true;
                ni.vcSend[v].pkt = ni.queue[clsIdx].front();
                ni.vcSend[v].sent = 0;
                ni.queue[clsIdx].pop_front();
                sendVc = v;
                assigned = true;
                break;
            }
            if (assigned)
                break;
        }
    }

    if (sendVc < 0)
        return;

    auto &ss = ni.vcSend[sendVc];
    Packet &pkt = inFlight_.at(ss.pkt);
    Flit flit;
    flit.pkt = pkt.id;
    flit.seq = static_cast<std::uint16_t>(ss.sent);
    flit.head = ss.sent == 0;
    flit.tail = ss.sent == pkt.flits - 1;
    flit.vc = static_cast<std::uint8_t>(sendVc);
    flit.destRouter = pkt.destRouter;
    flit.destPort = pkt.destPort;
    flit.cls = pkt.cls;
    flit.order = pkt.order;
    flit.vcMask = pkt.vcMask;

    if (flit.head)
        pkt.injectedAt = now;
    DR_INVARIANT(ni.credits[sendVc] > 0, "network ", params_.name,
                 ": NI injection without a credit on VC ", sendVc);
    routers_[attachRouter]->acceptFlit(attachPort, flit, now + 1);
    --ni.credits[sendVc];
    --ni.queuedFlits;
    DR_ASSERT(ni.queuedFlits >= 0);
    ++ni.flitsInjected;
    ++conservInjected_;
    ++ss.sent;
    if (flit.tail)
        ss.busy = false;
}

void
Network::niEject(Ni &ni, NodeId node, Cycle now)
{
    (void)node;
    while (!ni.ejArrivals.empty() && ni.ejArrivals.front().first <= now) {
        const Flit flit = ni.ejArrivals.front().second;
        ni.ejArrivals.pop_front();
        ++ni.flitsEjected;
        ++conservEjected_;
        ++stats_.flitsDelivered;

        const int v = flit.vc;
        if (flit.head) {
            ni.assembling[v] = flit.pkt;
            ni.assembledFlits[v] = 0;
        }
        if (ni.assembling[v] != flit.pkt)
            panic("network ", params_.name, ": interleaved packets on one "
                  "ejection VC");
        ++ni.assembledFlits[v];
        if (!flit.tail)
            continue;

        auto it = inFlight_.find(flit.pkt);
        if (it == inFlight_.end())
            panic("network ", params_.name, ": unknown packet ejected");
        const Packet &pkt = it->second;
        if (ni.assembledFlits[v] != pkt.flits)
            panic("network ", params_.name, ": flit count mismatch at "
                  "reassembly");

        const Cycle latency = now - pkt.queuedAt;
        stats_.packetLatency.sample(static_cast<double>(latency));
        if (pkt.cls == TrafficClass::Cpu)
            stats_.cpuPacketLatency.sample(static_cast<double>(latency));
        else
            stats_.gpuPacketLatency.sample(static_cast<double>(latency));
        routing_.onDelivered(pkt.srcRouter, pkt.destRouter, pkt.order,
                             latency);
        ++stats_.packetsDelivered;

        const int kindIdx = onRequestNetwork(pkt.msg.type) ? 0 : 1;
        ni.ready[kindIdx].push_back({pkt.msg, pkt.flits});
        // The completed packet's ejection slots are now accounted
        // against the ready-queue entry (returned by popMessage).
        ni.assembledFlits[v] = 0;
        inFlight_.erase(it);
    }
}

void
Network::tick(Cycle now)
{
    now_ = now;
    for (NodeId n = 0; n < static_cast<NodeId>(nis_.size()); ++n) {
        niEject(nis_[n], n, now);
        niInject(nis_[n], n, now);
    }
    for (auto &router : routers_)
        router->tick(now);
}

int
Network::routeOutput(int router, const Flit &flit) const
{
    return routing_.outputPort(router, flit);
}

std::uint8_t
Network::vcMaskForOutput(int router, int port, const Flit &flit) const
{
    const auto &conn = topo_.port(router, port);
    if (conn.kind == PortConn::Kind::Link)
        return routing_.vcMaskForLink(conn.peerRouter, flit);
    return 0xff;
}

void
Network::deliverToRouter(int router, int port, const Flit &flit, Cycle when)
{
    const auto &conn = topo_.port(router, port);
    routers_[conn.peerRouter]->acceptFlit(conn.peerPort, flit, when);
    ++linkTraversals_;
}

void
Network::deliverToNode(NodeId node, const Flit &flit, Cycle when)
{
    nis_[node].ejArrivals.push_back({when, flit});
    ++linkTraversals_;
}

int
Network::nodeEjectFree(NodeId node) const
{
    return nis_[node].ejFree;
}

void
Network::nodeEjectReserve(NodeId node)
{
    Ni &ni = nis_[node];
    if (ni.ejFree <= 0)
        panic("ejection reservation without space");
    --ni.ejFree;
}

void
Network::creditToFeeder(int router, int inputPort, int vc, Cycle when)
{
    const auto &conn = topo_.port(router, inputPort);
    if (conn.kind == PortConn::Kind::Link) {
        routers_[conn.peerRouter]->acceptCredit(conn.peerPort, vc, when);
    } else if (conn.kind == PortConn::Kind::Node) {
        nis_[conn.node].creditArrivals.push_back(
            {when, static_cast<std::uint8_t>(vc)});
    } else {
        panic("credit to unconnected port");
    }
}

int
Network::freeCredits(int router, int port) const
{
    return routers_[router]->freeCredits(port);
}

double
Network::injectionLinkUtilization(NodeId node, Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(nis_[node].flitsInjected) /
           static_cast<double>(cycles);
}

double
Network::ejectionLinkUtilization(NodeId node, Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(nis_[node].flitsEjected) /
           static_cast<double>(cycles);
}

std::uint64_t
Network::flitsEjectedAt(NodeId node) const
{
    return nis_[node].flitsEjected;
}

void
Network::resetStats()
{
    stats_ = NetworkStats{};
    linkTraversals_ = 0;
    for (auto &router : routers_)
        router->resetStats();
    for (auto &ni : nis_) {
        ni.flitsInjected = 0;
        ni.flitsEjected = 0;
    }
}

void
Network::debugDump(std::ostream &os) const
{
    for (const auto &router : routers_) {
        if (router->bufferedFlits() > 0)
            router->debugDump(os);
    }
    for (NodeId n = 0; n < static_cast<NodeId>(nis_.size()); ++n) {
        const Ni &ni = nis_[n];
        if (ni.queuedFlits == 0 && ni.ejFree == params_.ejBufferFlits)
            continue;
        os << "NI" << n << " queuedFlits=" << ni.queuedFlits
           << " ejFree=" << ni.ejFree << " credits:";
        for (int v = 0; v < params_.numVcs; ++v)
            os << " " << ni.credits[v] << (ni.vcSend[v].busy ? "B" : "-");
        os << " readyReq=" << ni.ready[0].size() << " readyRep="
           << ni.ready[1].size() << "\n";
    }
}

int
Network::routerOccupancy() const
{
    int total = 0;
    for (const auto &router : routers_)
        total += router->bufferedFlits();
    return total;
}

std::uint64_t
Network::totalSwitchTraversals() const
{
    std::uint64_t total = 0;
    for (const auto &router : routers_)
        total += router->stats().switchTraversals;
    return total;
}

std::uint64_t
Network::totalBufferWrites() const
{
    std::uint64_t total = 0;
    for (const auto &router : routers_)
        total += router->stats().bufferWrites;
    return total;
}

std::uint64_t
Network::totalLinkTraversals() const
{
    return linkTraversals_;
}

int
Network::flitsInFlight() const
{
    int total = 0;
    for (const auto &router : routers_)
        total += router->bufferedFlits() + router->pendingArrivalFlits();
    for (const auto &ni : nis_)
        total += static_cast<int>(ni.ejArrivals.size());
    return total;
}

void
Network::checkFlitConservation() const
{
    const std::uint64_t inFlight =
        static_cast<std::uint64_t>(flitsInFlight());
    if (conservInjected_ != conservEjected_ + inFlight) {
        panic("network ", params_.name, ": flit conservation violated: ",
              conservInjected_, " injected != ", conservEjected_,
              " ejected + ", inFlight, " in flight");
    }
}

void
Network::checkCreditConservation() const
{
    const int depth = params_.vcDepthFlits;

    // Router-to-router links: credits held upstream + flits occupying
    // (or in flight toward) the downstream buffer + credit returns in
    // flight must equal the buffer depth.
    for (int r = 0; r < topo_.routers(); ++r) {
        for (int p = 0; p < topo_.radix(r); ++p) {
            const auto &conn = topo_.port(r, p);
            if (conn.kind != PortConn::Kind::Link)
                continue;
            for (int v = 0; v < params_.numVcs; ++v) {
                const int held = routers_[r]->outVcCredits(p, v);
                const int downstream =
                    routers_[conn.peerRouter]->inVcOccupancy(conn.peerPort,
                                                             v);
                const int returning = routers_[r]->pendingCreditsFor(p, v);
                if (held + downstream + returning != depth) {
                    panic("network ", params_.name,
                          ": credit conservation violated on link R", r,
                          " port ", p, " vc ", v, ": ", held, " held + ",
                          downstream, " downstream + ", returning,
                          " returning != depth ", depth);
                }
                if (held < 0 || held > depth) {
                    panic("network ", params_.name, ": R", r, " port ", p,
                          " vc ", v, " credit count ", held,
                          " outside [0, ", depth, "]");
                }
            }
        }
    }

    // NI attach links (node -> router) and ejection-slot accounting.
    for (NodeId n = 0; n < static_cast<NodeId>(nis_.size()); ++n) {
        const Ni &ni = nis_[n];
        const int attachRouter = topo_.attachRouter(n);
        const int attachPort = topo_.attachPort(n);
        for (int v = 0; v < params_.numVcs; ++v) {
            const int held = ni.credits[v];
            const int downstream =
                routers_[attachRouter]->inVcOccupancy(attachPort, v);
            int returning = 0;
            for (const auto &timed : ni.creditArrivals) {
                if (timed.second == v)
                    ++returning;
            }
            if (held + downstream + returning != depth) {
                panic("network ", params_.name,
                      ": credit conservation violated on NI", n, " vc ", v,
                      ": ", held, " held + ", downstream, " downstream + ",
                      returning, " returning != depth ", depth);
            }
        }

        int staged = static_cast<int>(ni.ejArrivals.size());
        for (int v = 0; v < params_.numVcs; ++v)
            staged += ni.assembledFlits[v];
        for (const auto &kind : ni.ready) {
            for (const auto &entry : kind)
                staged += entry.second;
        }
        if (params_.ejBufferFlits - ni.ejFree != staged) {
            panic("network ", params_.name, ": NI", n,
                  " ejection-slot accounting violated: capacity ",
                  params_.ejBufferFlits, " - free ", ni.ejFree,
                  " != staged ", staged);
        }
    }
}

void
Network::checkAllInvariants() const
{
    checkFlitConservation();
    checkCreditConservation();
}

} // namespace dr

#include "noc/synthetic_traffic.hpp"

#include "common/log.hpp"

namespace dr
{

const char *
trafficPatternName(TrafficPattern p)
{
    switch (p) {
      case TrafficPattern::UniformRandom: return "uniform";
      case TrafficPattern::Transpose: return "transpose";
      case TrafficPattern::BitComplement: return "bit-complement";
      case TrafficPattern::Hotspot: return "hotspot";
      case TrafficPattern::Neighbor: return "neighbor";
    }
    return "unknown";
}

SyntheticTraffic::SyntheticTraffic(TrafficPattern pattern, int nodes,
                                   int meshWidth,
                                   std::vector<NodeId> hotspots)
    : pattern_(pattern), nodes_(nodes), meshWidth_(meshWidth),
      hotspots_(std::move(hotspots))
{
    if (pattern_ == TrafficPattern::Hotspot && hotspots_.empty())
        fatal("hotspot traffic needs at least one hotspot node");
}

NodeId
SyntheticTraffic::dest(NodeId src, Rng &rng) const
{
    NodeId d = src;
    switch (pattern_) {
      case TrafficPattern::UniformRandom:
        d = static_cast<NodeId>(rng.below(nodes_));
        break;
      case TrafficPattern::Transpose: {
        const int x = src % meshWidth_;
        const int y = src / meshWidth_;
        d = static_cast<NodeId>(x * meshWidth_ + y);
        break;
      }
      case TrafficPattern::BitComplement:
        d = static_cast<NodeId>(nodes_ - 1 - src);
        break;
      case TrafficPattern::Hotspot:
        d = hotspots_[rng.below(hotspots_.size())];
        break;
      case TrafficPattern::Neighbor:
        d = static_cast<NodeId>((src + 1) % nodes_);
        break;
    }
    if (d == src)
        d = static_cast<NodeId>((d + 1) % nodes_);
    return d;
}

SyntheticResult
runSyntheticLoad(TopologyKind topo, int nodes, int meshWidth,
                 int meshHeight, TrafficPattern pattern,
                 double injectionRate, int packetFlits, Cycle cycles,
                 std::uint64_t seed)
{
    const Topology topology =
        Topology::make(topo, nodes, meshWidth, meshHeight);
    NetworkParams params;
    params.routing = topo == TopologyKind::Mesh ? RoutingKind::DimOrderXY
                                                : RoutingKind::TableMinimal;
    params.injBufferFlits.assign(nodes, 36);
    params.seed = seed;
    Network net(params, topology);

    SyntheticTraffic traffic(
        pattern, nodes, meshWidth,
        pattern == TrafficPattern::Hotspot
            ? std::vector<NodeId>{0, static_cast<NodeId>(nodes / 2)}
            : std::vector<NodeId>{});
    Rng rng(seed * 31 + 7);

    std::uint64_t id = 1;
    std::uint64_t attempts = 0;
    for (Cycle now = 0; now < cycles; ++now) {
        for (NodeId src = 0; src < nodes; ++src) {
            if (!rng.chance(injectionRate))
                continue;
            ++attempts;
            if (!net.canInject(src, packetFlits))
                continue;  // offered load beyond acceptance
            Message m;
            m.type = MsgType::ReadReply;
            m.cls = TrafficClass::Gpu;
            m.src = src;
            m.dst = traffic.dest(src, rng);
            m.id = id++;
            net.inject(m, packetFlits, now);
        }
        net.tick(now);
        for (NodeId n = 0; n < nodes; ++n) {
            while (net.hasMessage(n, NetKind::Reply))
                net.popMessage(n, NetKind::Reply);
        }
    }

    SyntheticResult result;
    result.offeredFlitsPerNode = injectionRate * packetFlits;
    result.acceptedFlitsPerNode =
        static_cast<double>(net.stats().flitsDelivered.value()) /
        static_cast<double>(cycles) / nodes;
    result.avgLatency = net.stats().packetLatency.mean();
    result.packetsDelivered = net.stats().packetsDelivered.value();
    (void)attempts;
    return result;
}

} // namespace dr

#include "noc/topology.hpp"

#include <algorithm>
#include <deque>

#include "common/log.hpp"

namespace dr
{

void
Topology::link(int ra, int pa, int rb, int pb)
{
    if (ports_[ra][pa].kind != PortConn::Kind::None ||
        ports_[rb][pb].kind != PortConn::Kind::None) {
        panic("topology: double-connected port");
    }
    ports_[ra][pa] = {PortConn::Kind::Link, static_cast<std::int16_t>(rb),
                      static_cast<std::int16_t>(pb), invalidNode};
    ports_[rb][pb] = {PortConn::Kind::Link, static_cast<std::int16_t>(ra),
                      static_cast<std::int16_t>(pa), invalidNode};
}

void
Topology::attach(NodeId n, int router, int port)
{
    if (ports_[router][port].kind != PortConn::Kind::None)
        panic("topology: node port already connected");
    ports_[router][port] = {PortConn::Kind::Node, -1, -1, n};
    attachRouter_[n] = router;
    attachPort_[n] = port;
}

Topology
Topology::makeMesh(int width, int height)
{
    Topology t;
    t.kind_ = TopologyKind::Mesh;
    t.meshWidth_ = width;
    t.meshHeight_ = height;
    const int n = width * height;
    t.ports_.assign(n, std::vector<PortConn>(meshPorts));
    t.attachRouter_.assign(n, 0);
    t.attachPort_.assign(n, 0);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int r = y * width + x;
            t.attach(static_cast<NodeId>(r), r, meshLocal);
            if (x + 1 < width)
                t.link(r, meshEast, r + 1, meshWest);
            if (y + 1 < height)
                t.link(r, meshSouth, r + width, meshNorth);
        }
    }
    t.buildGridTable();
    return t;
}

Topology
Topology::makeCrossbar(int nodes)
{
    Topology t;
    t.kind_ = TopologyKind::Crossbar;
    t.ports_.assign(1, std::vector<PortConn>(nodes));
    t.attachRouter_.assign(nodes, 0);
    t.attachPort_.assign(nodes, 0);
    for (NodeId n = 0; n < nodes; ++n)
        t.attach(n, 0, n);
    t.buildTable();
    return t;
}

Topology
Topology::makeFlattenedButterfly(int nodes, int concentration)
{
    if (nodes % concentration != 0)
        fatal("flattened butterfly: nodes not divisible by concentration");
    const int routers = nodes / concentration;
    int gw = 1;
    while (gw * gw < routers)
        ++gw;
    if (gw * gw != routers)
        fatal("flattened butterfly: router count must be a square");

    Topology t;
    t.kind_ = TopologyKind::FlattenedButterfly;
    t.meshWidth_ = gw;
    t.meshHeight_ = gw;
    const int radix = concentration + 2 * (gw - 1);
    t.ports_.assign(routers, std::vector<PortConn>(radix));
    t.attachRouter_.assign(nodes, 0);
    t.attachPort_.assign(nodes, 0);

    for (NodeId n = 0; n < nodes; ++n)
        t.attach(n, n / concentration, n % concentration);

    // Row links: ports [c, c+gw-2]; column links: ports [c+gw-1, ...].
    // Port index within each range addresses peers in ascending order,
    // skipping self.
    auto rowPort = [&](int r, int peerX) {
        const int x = t.xOf(r);
        return concentration + (peerX < x ? peerX : peerX - 1);
    };
    auto colPort = [&](int r, int peerY) {
        const int y = t.yOf(r);
        return concentration + (gw - 1) + (peerY < y ? peerY : peerY - 1);
    };
    for (int y = 0; y < gw; ++y) {
        for (int x = 0; x < gw; ++x) {
            const int r = y * gw + x;
            for (int x2 = x + 1; x2 < gw; ++x2)
                t.link(r, rowPort(r, x2), y * gw + x2, rowPort(y * gw + x2, x));
            for (int y2 = y + 1; y2 < gw; ++y2)
                t.link(r, colPort(r, y2), y2 * gw + x, colPort(y2 * gw + x, y));
        }
    }
    t.buildGridTable();
    return t;
}

Topology
Topology::makeDragonfly(int nodes, int groups, int routersPerGroup)
{
    const int routers = groups * routersPerGroup;
    if (nodes % routers != 0)
        fatal("dragonfly: nodes not divisible by router count");
    const int concentration = nodes / routers;
    // Global link pairs each group must terminate (two parallel links
    // per group pair).
    const int pairsPerGroup = 2 * (groups - 1);
    const int globalsPerRouter =
        (pairsPerGroup + routersPerGroup - 1) / routersPerGroup;
    const int radix =
        concentration + (routersPerGroup - 1) + globalsPerRouter;

    Topology t;
    t.kind_ = TopologyKind::Dragonfly;
    t.ports_.assign(routers, std::vector<PortConn>(radix));
    t.attachRouter_.assign(nodes, 0);
    t.attachPort_.assign(nodes, 0);
    t.groups_.assign(routers, 0);
    for (int r = 0; r < routers; ++r)
        t.groups_[r] = r / routersPerGroup;

    for (NodeId n = 0; n < nodes; ++n)
        t.attach(n, n / concentration, n % concentration);

    // Intra-group full connectivity.
    auto localPort = [&](int r, int peerLocal) {
        const int self = r % routersPerGroup;
        return concentration + (peerLocal < self ? peerLocal : peerLocal - 1);
    };
    for (int g = 0; g < groups; ++g) {
        const int base = g * routersPerGroup;
        for (int a = 0; a < routersPerGroup; ++a) {
            for (int b = a + 1; b < routersPerGroup; ++b) {
                t.link(base + a, localPort(base + a, b), base + b,
                       localPort(base + b, a));
            }
        }
    }

    // Global links: two parallel links per group pair (so the global
    // channels are not the bisection bottleneck; the paper keeps
    // per-memory-node links the limiting resource), spread round-robin
    // over the group's routers.
    std::vector<int> nextGlobalPort(routers, concentration +
                                    routersPerGroup - 1);
    std::vector<int> nextRouterInGroup(groups, 0);
    for (int rep = 0; rep < 2; ++rep) {
        for (int g1 = 0; g1 < groups; ++g1) {
            for (int g2 = g1 + 1; g2 < groups; ++g2) {
                const int r1 =
                    g1 * routersPerGroup + nextRouterInGroup[g1]++ %
                    routersPerGroup;
                const int r2 =
                    g2 * routersPerGroup + nextRouterInGroup[g2]++ %
                    routersPerGroup;
                t.link(r1, nextGlobalPort[r1]++, r2,
                       nextGlobalPort[r2]++);
            }
        }
    }
    t.buildTable();
    return t;
}

Topology
Topology::makeChipletMesh(int chipletsX, int chipletsY, int subW, int subH,
                          int linksPerEdge)
{
    if (chipletsX < 1 || chipletsY < 1 || subW < 1 || subH < 1)
        fatal("chiplet mesh: every dimension must be at least 1");
    if (chipletsX * chipletsY < 2)
        fatal("chiplet mesh: need at least 2 chiplets (use mesh otherwise)");
    if (linksPerEdge < 0 || linksPerEdge > subW || linksPerEdge > subH)
        fatal("chiplet mesh: linksPerEdge must be in [0, min(subW, subH)]",
              ", got ", linksPerEdge);

    Topology t;
    t.kind_ = TopologyKind::ChipletMesh;
    const int width = chipletsX * subW;
    const int height = chipletsY * subH;
    t.meshWidth_ = width;
    t.meshHeight_ = height;
    t.chipletsX_ = chipletsX;
    t.chipletsY_ = chipletsY;
    t.chipletSubW_ = subW;
    t.chipletSubH_ = subH;
    t.chipletLinksPerEdge_ = linksPerEdge;

    // Gateway rows/columns: the local sub-mesh rows (for east/west
    // crossings) and columns (north/south) that carry interposer links,
    // evenly spread over the chiplet edge. linksPerEdge == 0 keeps every
    // boundary channel.
    const int rowGates = linksPerEdge == 0 ? subH : linksPerEdge;
    const int colGates = linksPerEdge == 0 ? subW : linksPerEdge;
    for (int i = 0; i < rowGates; ++i)
        t.gatewayRows_.push_back((i * subH) / rowGates);
    for (int i = 0; i < colGates; ++i)
        t.gatewayCols_.push_back((i * subW) / colGates);
    auto isGatewayRow = [&t](int localY) {
        return std::find(t.gatewayRows_.begin(), t.gatewayRows_.end(),
                         localY) != t.gatewayRows_.end();
    };
    auto isGatewayCol = [&t](int localX) {
        return std::find(t.gatewayCols_.begin(), t.gatewayCols_.end(),
                         localX) != t.gatewayCols_.end();
    };

    const int n = width * height;
    t.ports_.assign(n, std::vector<PortConn>(meshPorts));
    t.attachRouter_.assign(n, 0);
    t.attachPort_.assign(n, 0);
    for (int y = 0; y < height; ++y) {
        for (int x = 0; x < width; ++x) {
            const int r = y * width + x;
            t.attach(static_cast<NodeId>(r), r, meshLocal);
            if (x + 1 < width) {
                const bool boundary = (x + 1) % subW == 0;
                if (!boundary || isGatewayRow(y % subH)) {
                    t.link(r, meshEast, r + 1, meshWest);
                    if (boundary) {
                        t.ports_[r][meshEast].interposer = true;
                        t.ports_[r + 1][meshWest].interposer = true;
                    }
                }
            }
            if (y + 1 < height) {
                const bool boundary = (y + 1) % subH == 0;
                if (!boundary || isGatewayCol(x % subW)) {
                    t.link(r, meshSouth, r + width, meshNorth);
                    if (boundary) {
                        t.ports_[r][meshSouth].interposer = true;
                        t.ports_[r + width][meshNorth].interposer = true;
                    }
                }
            }
        }
    }
    // With every boundary channel present the grid is structurally a
    // plain mesh, so the dimension-ordered table applies; restricted
    // gateways leave holes the grid builder cannot route around, so the
    // table falls back to BFS-minimal paths (hierarchical routing
    // overrides it for deadlock freedom; the table still serves
    // hopCount and diagnostics).
    if (linksPerEdge == 0)
        t.buildGridTable();
    else
        t.buildTable();
    return t;
}

Topology
Topology::make(TopologyKind kind, int nodes, int meshWidth, int meshHeight)
{
    switch (kind) {
      case TopologyKind::Mesh:
        return makeMesh(meshWidth, meshHeight);
      case TopologyKind::Crossbar:
        return makeCrossbar(nodes);
      case TopologyKind::FlattenedButterfly:
        return makeFlattenedButterfly(nodes, 4);
      case TopologyKind::Dragonfly:
        return makeDragonfly(nodes, 4, 4);
      case TopologyKind::ChipletMesh:
        fatal("chiplet mesh needs its own parameters; call "
              "Topology::makeChipletMesh(chipletsX, chipletsY, subW, subH, "
              "linksPerEdge)");
    }
    panic("unknown topology kind");
}

void
Topology::buildTable()
{
    const int n = routers();
    table_.assign(n, std::vector<std::int16_t>(n, -1));
    // BFS from each destination over reversed channels (channels are
    // symmetric here, so the graph is its own reverse).
    for (int dest = 0; dest < n; ++dest) {
        std::vector<int> dist(n, -1);
        std::deque<int> queue{dest};
        dist[dest] = 0;
        while (!queue.empty()) {
            const int r = queue.front();
            queue.pop_front();
            for (int p = 0; p < radix(r); ++p) {
                const auto &conn = ports_[r][p];
                if (conn.kind != PortConn::Kind::Link)
                    continue;
                const int peer = conn.peerRouter;
                if (dist[peer] < 0) {
                    dist[peer] = dist[r] + 1;
                    queue.push_back(peer);
                }
            }
        }
        for (int r = 0; r < n; ++r) {
            if (r == dest)
                continue;
            for (int p = 0; p < radix(r); ++p) {
                const auto &conn = ports_[r][p];
                if (conn.kind == PortConn::Kind::Link &&
                    dist[conn.peerRouter] == dist[r] - 1) {
                    table_[r][dest] = static_cast<std::int16_t>(p);
                    break;
                }
            }
            if (table_[r][dest] < 0)
                panic("topology: disconnected router graph");
        }
    }
}

void
Topology::buildGridTable()
{
    // Dimension-ordered (X then Y) minimal table. Acyclic turns make
    // table-routed wormhole traffic deadlock-free on grid topologies.
    const int n = routers();
    table_.assign(n, std::vector<std::int16_t>(n, -1));
    auto portToward = [&](int r, int target) {
        for (int p = 0; p < radix(r); ++p) {
            const auto &conn = ports_[r][p];
            if (conn.kind == PortConn::Kind::Link &&
                conn.peerRouter == target) {
                return p;
            }
        }
        return -1;
    };
    // Meshes (including the full-gateway chiplet mesh, structurally a
    // plain mesh) step one hop per table entry; the flattened butterfly
    // has direct row/column links.
    const bool stepwise = kind_ != TopologyKind::FlattenedButterfly;
    for (int r = 0; r < n; ++r) {
        for (int dest = 0; dest < n; ++dest) {
            if (r == dest)
                continue;
            int next = -1;
            if (xOf(r) != xOf(dest)) {
                const int targetX =
                    stepwise ? xOf(r) + (xOf(dest) > xOf(r) ? 1 : -1)
                             : xOf(dest);
                next = portToward(r, yOf(r) * meshWidth_ + targetX);
            } else {
                const int targetY =
                    stepwise ? yOf(r) + (yOf(dest) > yOf(r) ? 1 : -1)
                             : yOf(dest);
                next = portToward(r, targetY * meshWidth_ + xOf(r));
            }
            if (next < 0)
                panic("topology: grid table construction failed");
            table_[r][dest] = static_cast<std::int16_t>(next);
        }
    }
}

int
Topology::hopCount(int srcRouter, int destRouter) const
{
    int hops = 0;
    int r = srcRouter;
    while (r != destRouter) {
        const int p = table_[r][destRouter];
        r = ports_[r][p].peerRouter;
        ++hops;
        if (hops > routers())
            panic("topology: routing loop in table");
    }
    return hops;
}

int
Topology::interposerLinkCount() const
{
    int count = 0;
    for (int r = 0; r < routers(); ++r) {
        for (int p = 0; p < radix(r); ++p) {
            if (ports_[r][p].kind == PortConn::Kind::Link &&
                ports_[r][p].interposer) {
                ++count;
            }
        }
    }
    return count;
}

int
Topology::channelCount() const
{
    int count = 0;
    for (int r = 0; r < routers(); ++r) {
        for (int p = 0; p < radix(r); ++p) {
            if (ports_[r][p].kind == PortConn::Kind::Link)
                ++count;
        }
    }
    return count;
}

} // namespace dr

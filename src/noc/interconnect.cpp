#include "noc/interconnect.hpp"

#include <algorithm>

#include "common/invariant.hpp"
#include "common/log.hpp"

namespace dr
{

namespace
{

/** Per-node injection buffer sizes: memory nodes get the (contended)
 *  memory injection buffer, cores the core buffer. */
std::vector<int>
injBuffers(const SystemConfig &cfg, const std::vector<NodeType> &types)
{
    std::vector<int> caps(types.size());
    for (std::size_t n = 0; n < types.size(); ++n) {
        caps[n] = types[n] == NodeType::MemNode
                      ? cfg.noc.memInjBufferFlits
                      : cfg.noc.coreInjBufferFlits;
    }
    return caps;
}

RoutingKind
effectiveRouting(const SystemConfig &cfg, RoutingKind wanted)
{
    if (cfg.noc.topology == TopologyKind::ChipletMesh) {
        // Gateway-restricted chiplet meshes have grid holes only the
        // hierarchical scheme routes deadlock-free; with every boundary
        // channel present the composed grid is structurally a plain
        // mesh, so any requested mesh routing (or chiplet routing
        // itself) applies unchanged.
        if (cfg.noc.chipletLinksPerEdge > 0)
            return RoutingKind::ChipletHierarchical;
        return wanted;
    }
    // Non-mesh topologies route over deterministic minimal tables.
    if (cfg.noc.topology != TopologyKind::Mesh)
        return RoutingKind::TableMinimal;
    return wanted;
}

/** Build the configured topology (chiplet meshes take extra shape). */
Topology
makeTopology(const SystemConfig &cfg)
{
    if (cfg.noc.topology == TopologyKind::ChipletMesh) {
        return Topology::makeChipletMesh(
            cfg.noc.chipletsX, cfg.noc.chipletsY, cfg.noc.chipletSubW,
            cfg.noc.chipletSubH, cfg.noc.chipletLinksPerEdge);
    }
    return Topology::make(cfg.noc.topology, cfg.nodeCount(),
                          cfg.noc.meshWidth, cfg.noc.meshHeight);
}

} // namespace

Interconnect::Interconnect(const SystemConfig &cfg,
                           const std::vector<NodeType> &nodeTypes)
    : cfg_(cfg), topo_(makeTopology(cfg)),
      shared_(cfg.noc.sharedPhysical), nodeTypes_(nodeTypes)
{
    if (static_cast<int>(nodeTypes.size()) != cfg.nodeCount())
        fatal("interconnect: node type map size mismatch");

    NetworkParams params;
    params.vcDepthFlits = cfg.noc.vcDepthFlits;
    params.routerStages = cfg.noc.routerStages;
    params.vnPriority = cfg.noc.vnets;
    params.threads = cfg.noc.threads;
    params.interposerSerialization =
        cfg.noc.interposerSerializationCycles();
    params.interposerLatency = cfg.noc.interposerLatency;
    // The ejection buffer must be able to complete one maximum-size
    // packet per VC: wormhole reassembly holds partial packets in the
    // buffer, and two interleaved replies that together exceed the
    // capacity would deadlock (neither tail can ever arrive). Size it
    // to whichever is larger: the configured value or VCs x reply size.
    const int maxReplyFlits =
        cfg.flitsFor(MsgType::ReadReply, TrafficClass::Gpu);
    const int vcs = cfg.noc.sharedPhysical
                        ? cfg.noc.sharedReqVcs + cfg.noc.sharedReplyVcs
                        : cfg.noc.vcsPerNet;
    params.ejBufferFlits =
        std::max(cfg.noc.ejBufferFlits, vcs * maxReplyFlits);
    params.injBufferFlits = injBuffers(cfg, nodeTypes);

    if (shared_) {
        params.name = "shared";
        params.numVcs = cfg.noc.sharedReqVcs + cfg.noc.sharedReplyVcs;
        params.layout = sharedNetLayout(cfg.noc);
        params.routing = effectiveRouting(cfg, cfg.noc.requestRouting);
        if (cfg.noc.requestRouting != cfg.noc.replyRouting &&
            cfg.noc.topology == TopologyKind::Mesh) {
            // CDR on a shared network would need per-class orders; the
            // AVCP experiments use a single order, as in the paper.
            params.routing = RoutingKind::DimOrderXY;
        }
        params.seed = cfg.seed * 7919 + 1;
        request_ = std::make_unique<Network>(params, topo_);
    } else {
        params.name = "request";
        params.numVcs = cfg.noc.vcsPerNet;
        params.layout = requestNetLayout(cfg.noc);
        params.routing = effectiveRouting(cfg, cfg.noc.requestRouting);
        params.seed = cfg.seed * 7919 + 1;
        request_ = std::make_unique<Network>(params, topo_);

        params.name = "reply";
        params.layout = replyNetLayout(cfg.noc);
        params.routing = effectiveRouting(cfg, cfg.noc.replyRouting);
        params.seed = cfg.seed * 7919 + 2;
        reply_ = std::make_unique<Network>(params, topo_);
    }

    outbox_.resize(nodeTypes_.size());
}

int
Interconnect::flitsFor(const Message &msg) const
{
    return cfg_.flitsFor(msg.type, msg.cls);
}

Network &
Interconnect::net(NetKind kind)
{
    if (shared_ || kind == NetKind::Request)
        return *request_;
    return *reply_;
}

const Network &
Interconnect::net(NetKind kind) const
{
    if (shared_ || kind == NetKind::Request)
        return *request_;
    return *reply_;
}

int
Interconnect::reservedFlits(NodeId node, NetKind kind) const
{
    if (!staging_)
        return 0;
    const NodeOutbox &box = outbox_[node];
    // In shared mode both kinds draw on the one physical injection
    // buffer, so every staged flit counts against either query.
    if (shared_)
        return box.reservedFlits[0] + box.reservedFlits[1];
    return box.reservedFlits[static_cast<int>(kind)];
}

bool
Interconnect::canSend(const Message &msg) const
{
    const NetKind kind = kindFor(msg);
    return net(kind).canInject(msg.src, flitsFor(msg) +
                                            reservedFlits(msg.src, kind));
}

void
Interconnect::sendNow(const Message &msg, Cycle now)
{
    const NetKind kind = kindFor(msg);
    const VirtualNet vn = vnetFor(msg);
    // The physical-network choice and the VN classification agree by
    // construction: request-side VNs ride the request network, the
    // reply-side VNs the reply network (one network in shared mode).
    DR_ASSERT_MSG((kind == NetKind::Request) ==
                      (vn == VirtualNet::Request ||
                       vn == VirtualNet::ForwardedRequest),
                  "message type ", static_cast<int>(msg.type),
                  " classified onto the wrong network");
    net(kind).inject(msg, flitsFor(msg), now, vn);
}

void
Interconnect::send(const Message &msg, Cycle now)
{
    if (!staging_) {
        // Outside a staging window the engine is serial by contract, so
        // the immediate-injection path never runs from a parallel
        // phase; the reachability analyzer cannot see the `staging_`
        // guard, hence the suppression.
        sendNow(msg, now);  // drreach-allow(phase-escape)
        return;
    }
    NodeOutbox &box = outbox_[msg.src];
    box.pending.push_back(msg);
    box.reservedFlits[static_cast<int>(kindFor(msg))] += flitsFor(msg);
}

void
Interconnect::beginStaging()
{
    DR_PHASE_ASSERT_COMMIT();
    staging_ = true;
}

void
Interconnect::drainOutbox(NodeId node, Cycle now)
{
    DR_PHASE_ASSERT_COMMIT();
    NodeOutbox &box = outbox_[node];
    for (const Message &msg : box.pending)
        sendNow(msg, now);
    box.pending.clear();
    box.reservedFlits[0] = 0;
    box.reservedFlits[1] = 0;
}

void
Interconnect::endStaging()
{
    DR_PHASE_ASSERT_COMMIT();
#ifdef DR_CHECKED
    for (const NodeOutbox &box : outbox_) {
        DR_ASSERT_MSG(box.pending.empty(),
                      "endStaging with undrained outbox");
    }
#endif
    staging_ = false;
}

int
Interconnect::injectFree(NodeId node, NetKind kind) const
{
    return net(kind).injectFree(node) - reservedFlits(node, kind);
}

bool
Interconnect::hasMessage(NodeId node, NetKind kind) const
{
    return net(kind).hasMessage(node, kind);
}

const Message &
Interconnect::peekMessage(NodeId node, NetKind kind) const
{
    return net(kind).peekMessage(node, kind);
}

Message
Interconnect::popMessage(NodeId node, NetKind kind)
{
    return net(kind).popMessage(node, kind);
}

void
Interconnect::tick(Cycle now)
{
    request_->tick(now);
    if (reply_)
        reply_->tick(now);
}

void
Interconnect::resetStats()
{
    request_->resetStats();
    if (reply_)
        reply_->resetStats();
}

void
Interconnect::checkInvariants() const
{
    request_->checkAllInvariants();
    if (reply_)
        reply_->checkAllInvariants();
}

std::uint64_t
Interconnect::totalSwitchTraversals() const
{
    std::uint64_t total = request_->totalSwitchTraversals();
    if (reply_)
        total += reply_->totalSwitchTraversals();
    return total;
}

std::uint64_t
Interconnect::totalBufferWrites() const
{
    std::uint64_t total = request_->totalBufferWrites();
    if (reply_)
        total += reply_->totalBufferWrites();
    return total;
}

std::uint64_t
Interconnect::totalLinkTraversals() const
{
    std::uint64_t total = request_->totalLinkTraversals();
    if (reply_)
        total += reply_->totalLinkTraversals();
    return total;
}

} // namespace dr

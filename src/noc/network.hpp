#ifndef DR_NOC_NETWORK_HPP
#define DR_NOC_NETWORK_HPP

/**
 * @file
 * One physical network: routers, channels, and per-node network
 * interfaces (NIs). NIs have finite injection buffers — the structure
 * whose saturation at the memory nodes constitutes network clogging —
 * and finite ejection buffers, so endpoints that stop consuming exert
 * back-pressure into the network (Figure 3 of the paper).
 */

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/active_set.hpp"
#include "noc/flit.hpp"
#include "noc/packet_pool.hpp"
#include "noc/parallel.hpp"
#include "noc/ring_buffer.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace dr
{

/** Construction parameters for one physical network. */
struct NetworkParams
{
    std::string name = "net";
    int numVcs = 2;
    int vcDepthFlits = 4;
    int routerStages = 4;
    int ejBufferFlits = 18;
    /** Injection buffer capacity per node (flits). */
    std::vector<int> injBufferFlits;
    RoutingKind routing = RoutingKind::DimOrderXY;
    std::uint64_t seed = 1;
    /**
     * Virtual-network partition of the VCs (noc/vnet.hpp). Empty means
     * uniform: every VN may use every VC (the legacy behaviour).
     */
    VnetLayout layout{};
    /** Arbitrate by (class, VN) rank instead of class alone. */
    bool vnPriority = false;
    /**
     * Worker threads for the parallel tick engine: routers and NIs are
     * partitioned into that many contiguous spatial domains, one thread
     * per domain (DESIGN.md §11). Schedules and statistics are
     * bit-identical for every value by construction. 0 = auto: take
     * DR_NOC_THREADS from the environment, else run single-threaded.
     */
    int threads = 0;
};

/** Aggregate network statistics. */
struct NetworkStats
{
    Counter packetsInjected;
    Counter packetsDelivered;
    Counter flitsDelivered;
    Average packetLatency;      //!< NI entry to tail ejection
    Average cpuPacketLatency;
    Average gpuPacketLatency;
    /**
     * Packets delivered in the measurement window but queued before the
     * last resetStats(). Their latency straddles the warmup boundary
     * and is dropped from the latency averages (it would mix warmup
     * queueing into measured samples); this counts the drops.
     */
    Counter warmupStraddlers;
    /**
     * src == dst messages, delivered NI-to-NI without entering the
     * fabric: a zero-cycle (minimum) latency sample, excluded from all
     * flit, link, and router counters (see DESIGN.md).
     */
    Counter localDeliveries;

    // --- per virtual network (indexed by VirtualNet) -------------------
    std::array<Counter, numVnets> vnPacketsInjected;
    std::array<Counter, numVnets> vnFlitsDelivered;
    /**
     * Cycles a head-of-line packet could not start sending because no
     * VC in its VN's reserved range was free with a credit.
     */
    std::array<Counter, numVnets> vnInjectionStalls;
    /** Peak flits simultaneously in the fabric, per VN, since reset. */
    std::array<std::uint64_t, numVnets> vnPeakFlits{};
};

/**
 * A physical network instance. The enclosing Interconnect decides which
 * messages travel on which network and with which VC mask.
 */
class Network : public RouterEnv, public CongestionProbe
{
  public:
    Network(const NetworkParams &params, const Topology &topo);
    ~Network() override;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Free injection-buffer flits at a node. */
    int injectFree(NodeId node) const;

    /** Whether a packet of `flits` flits can enter the injection buffer. */
    bool canInject(NodeId node, int flits) const;

    /**
     * Queue a message for injection on the given virtual network; the
     * packet is confined to the VN's reserved VC range for its whole
     * flight. The three-argument overload classifies the message itself
     * (defaultVnet — raw-kernel users: benches, synthetic traffic).
     * @pre canInject(msg.src, flits)
     */
    void inject(const Message &msg, int flits, Cycle now, VirtualNet vn);
    void inject(const Message &msg, int flits, Cycle now)
    {
        inject(msg, flits, now, defaultVnet(msg));
    }

    /** Messages fully reassembled at a node, per logical network. */
    bool hasMessage(NodeId node, NetKind kind) const;
    const Message &peekMessage(NodeId node, NetKind kind) const;
    Message popMessage(NodeId node, NetKind kind);

    /** Advance one cycle. */
    void tick(Cycle now);

    // RouterEnv interface
    int routeOutput(int router, const Flit &flit) const override;
    std::uint8_t vcMaskForOutput(int router, int port,
                                 const Flit &flit) const override;
    void deliverToRouter(int router, int port, const Flit &flit,
                         Cycle when) override;
    void deliverToNode(NodeId node, const Flit &flit, Cycle when) override;
    int nodeEjectFree(NodeId node) const override;
    void nodeEjectReserve(NodeId node) override;
    void creditToFeeder(int router, int inputPort, int vc,
                        Cycle when) override;

    // CongestionProbe interface
    int freeCredits(int router, int port) const override;

    const NetworkStats &stats() const { return stats_; }
    const Topology &topology() const { return topo_; }
    RoutingPolicy &routing() { return routing_; }

    /** The VC partition this network runs with (uniform if VNs off). */
    const VnetLayout &vnetLayout() const { return routing_.layout(); }

    /** Flits of one VN currently inside the fabric. */
    int vnFlitsInFabric(VirtualNet vn) const
    {
        return vnInFabric_[static_cast<int>(vn)];
    }

    /** Utilization of the node->router injection link over `cycles`. */
    double injectionLinkUtilization(NodeId node, Cycle cycles) const;
    /** Utilization of the router->node ejection link over `cycles`. */
    double ejectionLinkUtilization(NodeId node, Cycle cycles) const;
    /** Reply/data flits ejected at a node (received data rate). */
    std::uint64_t flitsEjectedAt(NodeId node) const;

    /** Flits a node's NI sent on one attach-link VC (fairness tests). */
    std::uint64_t niVcFlitsSent(NodeId node, int vc) const
    {
        return nis_[node].vcFlitsSent[vc];
    }

    /** Total buffered flits in all routers (debug/diagnostics). */
    int routerOccupancy() const;

    // --- correctness toolkit --------------------------------------------
    // Explicit conservation-law checkers. Available in every build type
    // (they only cost when called); DR_CHECKED builds additionally run
    // fine-grained assertions inline on the hot paths. Call between
    // ticks — mid-cycle the laws do not hold.

    /**
     * Flit conservation: every flit handed to a router by an NI is
     * either ejected or still in flight (router buffers, arrival queues,
     * or ejection staging). panic()s on mismatch.
     */
    void checkFlitConservation() const;

    /**
     * Credit conservation, per link and per VC: credits held upstream,
     * flits occupying the downstream buffer, and credit returns in
     * flight always sum to the configured buffer depth. Covers both
     * router-router links and NI attach links, plus ejection-buffer
     * slot accounting. panic()s on a leaked or duplicated credit.
     */
    void checkCreditConservation() const;

    /** Run every conservation checker. */
    void checkAllInvariants() const;

    /** Flits injected into / ejected from routers since construction
     *  (unaffected by resetStats — these feed the conservation law). */
    std::uint64_t conservedFlitsInjected() const { return conservInjected_; }
    std::uint64_t conservedFlitsEjected() const { return conservEjected_; }

    /** Flits currently inside the network fabric. */
    int flitsInFlight() const;

    /** Blocked input-VC heads of one router (watchdog triage). */
    std::vector<BlockedHead> blockedHeads(int router) const
    {
        return routers_[router]->blockedHeads();
    }

    /** Fault injection (tests only): leak one credit on a router link. */
    void debugLeakCredit(int router, int port, int vc)
    {
        routers_[router]->debugLeakCredit(port, vc);
    }

    const std::string &name() const { return params_.name; }

    /** Per-router statistics (switch/port counters). */
    const RouterStats &routerStats(int router) const
    {
        return routers_[router]->stats();
    }

    /** Dump router and NI state for stall debugging. */
    void debugDump(std::ostream &os) const;

    /**
     * Reset all statistics (packet/flit counters, latencies, per-router
     * and per-NI event counts) without touching simulation state. Used
     * at the warmup/measurement boundary.
     */
    void resetStats();

    /** Energy-model inputs. */
    std::uint64_t totalSwitchTraversals() const;
    std::uint64_t totalBufferWrites() const;
    std::uint64_t totalLinkTraversals() const;

  private:
    struct TimedCredit
    {
        Cycle when;
        std::uint8_t vc;
    };

    struct TimedFlit
    {
        Cycle when;
        Flit flit;
    };

    struct Ni
    {
        // --- injection side ---
        RingBuffer<PacketHandle> queue[2]; //!< per traffic class (Cpu, Gpu)
        int queuedFlits = 0;
        int capacity = 0;

        struct SendState
        {
            bool busy = false;
            PacketHandle pkt = invalidPacket;
            int sent = 0;
        };
        std::vector<SendState> vcSend;  //!< per VC of the attach link
        int sendRr = 0;  //!< round-robin start VC for send selection
        std::vector<std::uint64_t> vcFlitsSent;  //!< per VC, for fairness
        std::vector<int> credits;       //!< per VC downstream credits
        RingBuffer<TimedCredit> creditArrivals;
        std::uint64_t flitsInjected = 0;

        // --- ejection side ---
        int ejFree = 0;
        RingBuffer<TimedFlit> ejArrivals;
        std::vector<PacketId> assembling;     //!< per VC
        std::vector<int> assembledFlits;      //!< per VC
        std::deque<std::pair<Message, int>> ready[2];  //!< per NetKind
        std::uint64_t flitsEjected = 0;

        /** Whether the NI still needs per-cycle service. */
        bool
        busy() const
        {
            return queuedFlits > 0 || !creditArrivals.empty() ||
                   !ejArrivals.empty();
        }
    };

    // --- deterministic parallel tick engine (DESIGN.md §11) -----------

    /**
     * Tail-flit delivery recorded during the parallel phase and
     * replayed serially, in global NI order, by mergeTick(). Keeps the
     * order-sensitive effects — floating-point latency sums, the HARE
     * history EWMA, packet-pool free-list order — bit-identical to the
     * single-threaded schedule.
     */
    struct DeliveredRecord
    {
        PacketHandle slot;
        std::int16_t srcRouter;
        std::int16_t destRouter;
        DimOrder order;
        TrafficClass cls;
        bool straddler;  //!< queued before the last resetStats()
        Cycle latency;
    };

    /** Cross-domain flit hop staged for the commit phase. */
    struct StagedFlit
    {
        std::int16_t router;  //!< receiving router (global index)
        std::int16_t port;
        Cycle when;
        Flit flit;
    };

    /** Cross-domain credit return staged for the commit phase. */
    struct StagedCredit
    {
        std::int16_t router;
        std::int16_t port;
        std::uint8_t vc;
        Cycle when;
    };

    /**
     * One spatial domain: a contiguous range of routers plus the NIs
     * attached to them, ticked by one worker. Everything here is
     * written only by the owning worker during a tick; the scratch
     * counters and delivery records are drained serially, in ascending
     * domain order, by mergeTick() on the main thread.
     */
    struct alignas(64) Domain
    {
        ActiveSet activeNis;      //!< NIs with pending work (own nodes)
        ActiveSet activeRouters;  //!< routers with pending work (own)
        std::vector<DeliveredRecord> delivered;
        std::uint64_t linkTraversals = 0;
        std::uint64_t conservInjected = 0;
        std::uint64_t conservEjected = 0;
        std::uint64_t flitsDelivered = 0;
        std::array<std::uint64_t, numVnets> vnFlitsDelivered{};
        std::array<std::uint64_t, numVnets> vnInjectionStalls{};
        /** This tick's running VN-occupancy delta and its max prefix. */
        std::array<int, numVnets> vnDelta{};
        std::array<int, numVnets> vnMaxPrefix{};

        bool
        hasWork() const
        {
            return !activeNis.empty() || !activeRouters.empty();
        }
    };

    void niInject(Domain &d, Ni &ni, NodeId node, Cycle now);
    void niEject(Domain &d, Ni &ni, NodeId node, Cycle now);
    /** Phase 1: sweep one domain's NIs and routers (parallel). */
    void tickDomain(Domain &d, Cycle now);
    /** Phase 2: commit flits/credits staged for this domain (parallel). */
    void commitStaged(int consumer);
    /** Merge per-domain scratch into global stats (main thread only). */
    void mergeTick();
    void workerLoop(int domainIdx);

    const Topology &topo_;
    NetworkParams params_;
    RoutingPolicy routing_;
    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<Ni> nis_;
    PacketPool pool_;                    //!< slab of in-flight packets
    PacketId nextPktId_ = 1;
    NetworkStats stats_;
    /** Live per-VN flit occupancy of the fabric (survives resetStats). */
    std::array<int, numVnets> vnInFabric_{};
    std::uint64_t linkTraversals_ = 0;
    std::uint64_t conservInjected_ = 0;  //!< flits NIs handed to routers
    std::uint64_t conservEjected_ = 0;   //!< flits NIs drained from routers
    Cycle now_ = 0;
    Cycle statsResetAt_ = 0;  //!< cycle of the last resetStats()

    // --- parallel tick engine state -----------------------------------
    int numDomains_ = 1;
    std::vector<Domain> domains_;
    std::vector<std::int16_t> routerDomain_;  //!< router index -> domain
    std::vector<std::int16_t> nodeDomain_;    //!< node index -> domain
    /** SPSC staging buffers, indexed [producer * numDomains_ + consumer].
     *  The producer appends during phase 1, the consumer drains during
     *  phase 2; the barrier between the phases is the synchronization. */
    std::vector<std::vector<StagedFlit>> stagedFlits_;
    std::vector<std::vector<StagedCredit>> stagedCredits_;
    SpinBarrier barrier_;
    std::atomic<std::uint64_t> epoch_{0};  //!< tick-start signal
    std::atomic<bool> stop_{false};
    std::mutex epochMutex_;
    std::condition_variable epochCv_;
    std::vector<std::thread> workers_;  //!< one per domain beyond the first
};

} // namespace dr

#endif // DR_NOC_NETWORK_HPP

#ifndef DR_NOC_NETWORK_HPP
#define DR_NOC_NETWORK_HPP

/**
 * @file
 * One physical network: routers, channels, and per-node network
 * interfaces (NIs). NIs have finite injection buffers — the structure
 * whose saturation at the memory nodes constitutes network clogging —
 * and finite ejection buffers, so endpoints that stop consuming exert
 * back-pressure into the network (Figure 3 of the paper).
 */

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/ownership.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "noc/active_set.hpp"
#include "noc/flit.hpp"
#include "noc/packet_pool.hpp"
#include "noc/parallel.hpp"
#include "noc/ring_buffer.hpp"
#include "noc/router.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace dr
{

/** Construction parameters for one physical network. */
struct NetworkParams
{
    std::string name = "net";
    int numVcs = 2;
    int vcDepthFlits = 4;
    int routerStages = 4;
    int ejBufferFlits = 18;
    /** Injection buffer capacity per node (flits). */
    std::vector<int> injBufferFlits;
    RoutingKind routing = RoutingKind::DimOrderXY;
    std::uint64_t seed = 1;
    /**
     * Virtual-network partition of the VCs (noc/vnet.hpp). Empty means
     * uniform: every VN may use every VC (the legacy behaviour).
     */
    VnetLayout layout{};
    /** Arbitrate by (class, VN) rank instead of class alone. */
    bool vnPriority = false;
    /**
     * Worker threads for the parallel tick engine: routers and NIs are
     * partitioned into that many contiguous spatial domains, one thread
     * per domain (DESIGN.md §11). Schedules and statistics are
     * bit-identical for every value by construction. 0 = auto: take
     * DR_NOC_THREADS from the environment, else run single-threaded.
     */
    int threads = 0;
    /**
     * Interposer link class (chiplet meshes). Serialization is the
     * cycles one flit occupies an interposer channel (the channel-width
     * ratio: a half-width interposer link serializes every flit over 2
     * cycles); latency is added to every flit hop and credit return
     * crossing an interposer link. 1/0 leave non-chiplet schedules
     * bit-identical.
     */
    int interposerSerialization = 1;
    int interposerLatency = 0;
};

/** Aggregate network statistics. */
struct NetworkStats
{
    Counter packetsInjected;
    Counter packetsDelivered;
    Counter flitsDelivered;
    Average packetLatency;      //!< NI entry to tail ejection
    Average cpuPacketLatency;
    Average gpuPacketLatency;
    /**
     * Packets delivered in the measurement window but queued before the
     * last resetStats(). Their latency straddles the warmup boundary
     * and is dropped from the latency averages (it would mix warmup
     * queueing into measured samples); this counts the drops.
     */
    Counter warmupStraddlers;
    /**
     * src == dst messages, delivered NI-to-NI without entering the
     * fabric: a zero-cycle (minimum) latency sample, excluded from all
     * flit, link, and router counters (see DESIGN.md).
     */
    Counter localDeliveries;

    // --- per virtual network (indexed by VirtualNet) -------------------
    std::array<Counter, numVnets> vnPacketsInjected;
    std::array<Counter, numVnets> vnFlitsDelivered;
    /**
     * Cycles a head-of-line packet could not start sending because no
     * VC in its VN's reserved range was free with a credit.
     */
    std::array<Counter, numVnets> vnInjectionStalls;
    /** Peak flits simultaneously in the fabric, per VN, since reset. */
    std::array<std::uint64_t, numVnets> vnPeakFlits{};

    // --- per link class (chiplet meshes; zero elsewhere) ---------------
    /** Flit hops over interposer-class links. */
    Counter interposerFlits;
    /**
     * Peak flits simultaneously occupying downstream interposer-link
     * buffers (sent over an interposer link, credit not yet returned)
     * since reset — the congestion signal of the narrow link class.
     */
    std::uint64_t interposerPeakFlits = 0;
};

/**
 * A physical network instance. The enclosing Interconnect decides which
 * messages travel on which network and with which VC mask.
 */
class Network : public RouterEnv, public CongestionProbe
{
  public:
    Network(const NetworkParams &params, const Topology &topo);
    ~Network() override;

    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Free injection-buffer flits at a node. */
    int injectFree(NodeId node) const;

    /** Whether a packet of `flits` flits can enter the injection buffer. */
    bool canInject(NodeId node, int flits) const;

    /**
     * Queue a message for injection on the given virtual network; the
     * packet is confined to the VN's reserved VC range for its whole
     * flight. The three-argument overload classifies the message itself
     * (defaultVnet — raw-kernel users: benches, synthetic traffic).
     * @pre canInject(msg.src, flits)
     */
    void inject(const Message &msg, int flits, Cycle now, VirtualNet vn);
    void inject(const Message &msg, int flits, Cycle now)
    {
        inject(msg, flits, now, defaultVnet(msg));
    }

    /** Messages fully reassembled at a node, per logical network. */
    bool hasMessage(NodeId node, NetKind kind) const;
    const Message &peekMessage(NodeId node, NetKind kind) const;
    Message popMessage(NodeId node, NetKind kind);

    /** Advance one cycle. */
    void tick(Cycle now);

    // RouterEnv interface. These run on a worker inside the parallel
    // phases (routers call back into their Network), hence the
    // compute-phase classification.
    int routeOutput(int router, const Flit &flit) const override
        DR_COMPUTE_PHASE;
    std::uint8_t vcMaskForOutput(int router, int port,
                                 const Flit &flit) const override
        DR_COMPUTE_PHASE;
    void deliverToRouter(int router, int port, const Flit &flit,
                         Cycle when) override DR_COMPUTE_PHASE;
    void deliverToNode(NodeId node, const Flit &flit, Cycle when) override
        DR_COMPUTE_PHASE;
    int nodeEjectFree(NodeId node) const override DR_COMPUTE_PHASE;
    void nodeEjectReserve(NodeId node) override DR_COMPUTE_PHASE;
    void creditToFeeder(int router, int inputPort, int vc,
                        Cycle when) override DR_COMPUTE_PHASE;

    // CongestionProbe interface
    int freeCredits(int router, int port) const override;

    const NetworkStats &
    stats() const
    {
        DR_PHASE_ASSERT_COMMIT();
        return stats_;
    }

    const Topology &topology() const { return topo_; }

    RoutingPolicy &
    routing()
    {
        DR_PHASE_ASSERT_COMMIT();
        return routing_;
    }

    /** The VC partition this network runs with (uniform if VNs off). */
    const VnetLayout &
    vnetLayout() const
    {
        DR_PHASE_ASSERT_COMMIT();
        return routing_.layout();
    }

    /** Flits of one VN currently inside the fabric. */
    int
    vnFlitsInFabric(VirtualNet vn) const
    {
        DR_PHASE_ASSERT_COMMIT();
        return vnInFabric_[static_cast<int>(vn)];
    }

    /** Flits currently occupying downstream interposer-link buffers. */
    int
    interposerFlitsInFlight() const
    {
        DR_PHASE_ASSERT_COMMIT();
        return ipInFabric_;
    }

    /** Utilization of the node->router injection link over `cycles`. */
    double injectionLinkUtilization(NodeId node, Cycle cycles) const;
    /** Utilization of the router->node ejection link over `cycles`. */
    double ejectionLinkUtilization(NodeId node, Cycle cycles) const;
    /** Reply/data flits ejected at a node (received data rate). */
    std::uint64_t flitsEjectedAt(NodeId node) const;

    /** Flits a node's NI sent on one attach-link VC (fairness tests). */
    std::uint64_t niVcFlitsSent(NodeId node, int vc) const
    {
        return nis_[node].vcFlitsSent[vc];
    }

    /** Total buffered flits in all routers (debug/diagnostics). */
    int routerOccupancy() const;

    // --- correctness toolkit --------------------------------------------
    // Explicit conservation-law checkers. Available in every build type
    // (they only cost when called); DR_CHECKED builds additionally run
    // fine-grained assertions inline on the hot paths. Call between
    // ticks — mid-cycle the laws do not hold.

    /**
     * Flit conservation: every flit handed to a router by an NI is
     * either ejected or still in flight (router buffers, arrival queues,
     * or ejection staging). panic()s on mismatch.
     */
    void checkFlitConservation() const;

    /**
     * Credit conservation, per link and per VC: credits held upstream,
     * flits occupying the downstream buffer, and credit returns in
     * flight always sum to the configured buffer depth. Covers both
     * router-router links and NI attach links, plus ejection-buffer
     * slot accounting. panic()s on a leaked or duplicated credit.
     */
    void checkCreditConservation() const;

    /** Run every conservation checker. */
    void checkAllInvariants() const;

    /** Flits injected into / ejected from routers since construction
     *  (unaffected by resetStats — these feed the conservation law). */
    std::uint64_t
    conservedFlitsInjected() const
    {
        DR_PHASE_ASSERT_COMMIT();
        return conservInjected_;
    }

    std::uint64_t
    conservedFlitsEjected() const
    {
        DR_PHASE_ASSERT_COMMIT();
        return conservEjected_;
    }

    /** Flits currently inside the network fabric. */
    int flitsInFlight() const;

    /** Blocked input-VC heads of one router (watchdog triage). */
    std::vector<BlockedHead> blockedHeads(int router) const
    {
        return routers_[router]->blockedHeads();
    }

    /** Fault injection (tests only): leak one credit on a router link. */
    void debugLeakCredit(int router, int port, int vc)
    {
        routers_[router]->debugLeakCredit(port, vc);
    }

    /** Spatial domain that owns a router (watchdog attribution). */
    int domainOfRouter(int router) const { return routerDomain_[router]; }

    /** Spatial domain that owns a node's NI. */
    int domainOfNode(NodeId node) const { return nodeDomain_[node]; }

    /** Worker domains the engine runs with (1 = serial engine). */
    int numDomains() const { return numDomains_; }

    /**
     * All-domains quiescence: no NI or router anywhere needs per-cycle
     * service. With every endpoint watermark also in the future this
     * proves a stretch of cycles dead, enabling the idle-skip fast
     * path (DESIGN.md §13). Serial-phase read: the vote is only
     * meaningful between ticks.
     */
    bool
    quiescent() const
    {
        for (const Domain &d : domains_)
            if (d.hasWork())
                return false;
        return true;
    }

    /**
     * Seeded phase-discipline violations (tests only; see DESIGN.md
     * §12). Each mutant makes the engine break one ownership rule so
     * the DR_CHECKED stamp/phase checks can prove they catch it. The
     * hooks compile away outside DR_CHECKED builds — tests gate on
     * checkedBuild().
     */
    enum class PhaseMutant
    {
        None,
        CrossDomainWrite,   //!< compute-phase write to a foreign NI
        UnstagedCross,      //!< cross-domain flit skips the SPSC staging
        SerialInCompute,    //!< serial-only pool mutated in compute phase
        SpscOutOfOrder,     //!< staging drained in descending order
        StampBypass,        //!< write path dodging the stamp checks
    };

    void
    debugInjectPhaseMutant(PhaseMutant m)
    {
        DR_PHASE_ASSERT_COMMIT();
        debugPhaseMutant_ = m;
    }

    /** Audit every writer-domain stamp (DR_CHECKED; no-op otherwise). */
    void checkPhaseStamps() const;

    const std::string &
    name() const
    {
        DR_PHASE_ASSERT_COMMIT();
        return params_.name;
    }

    /** Per-router statistics (switch/port counters). */
    const RouterStats &routerStats(int router) const
    {
        return routers_[router]->stats();
    }

    /** Dump router and NI state for stall debugging. */
    void debugDump(std::ostream &os) const;

    /**
     * Reset all statistics (packet/flit counters, latencies, per-router
     * and per-NI event counts) without touching simulation state. Used
     * at the warmup/measurement boundary.
     */
    void resetStats();

    /** Energy-model inputs. */
    std::uint64_t totalSwitchTraversals() const;
    std::uint64_t totalBufferWrites() const;
    std::uint64_t totalLinkTraversals() const;

  private:
    struct TimedCredit
    {
        Cycle when;
        std::uint8_t vc;
    };

    struct TimedFlit
    {
        Cycle when;
        Flit flit;
    };

    /**
     * Per-node network interface. The whole structure is owned by the
     * spatial domain of the node's attach router: the parallel phases
     * only touch it from that domain's worker (validated by the
     * DR_CHECKED stamp below), and serial code (inject/popMessage,
     * between ticks) has exclusive access by construction.
     */
    struct DR_DOMAIN_OWNED Ni
    {
        DR_DOMAIN_STAMP;

        // --- injection side ---
        RingBuffer<PacketHandle> queue[2]; //!< per traffic class (Cpu, Gpu)
        int queuedFlits = 0;
        int capacity = 0;

        struct SendState
        {
            bool busy = false;
            PacketHandle pkt = invalidPacket;
            int sent = 0;
        };
        std::vector<SendState> vcSend;  //!< per VC of the attach link
        int sendRr = 0;  //!< round-robin start VC for send selection
        std::vector<std::uint64_t> vcFlitsSent;  //!< per VC, for fairness
        std::vector<int> credits;       //!< per VC downstream credits
        RingBuffer<TimedCredit> creditArrivals;
        std::uint64_t flitsInjected = 0;

        // --- ejection side ---
        int ejFree = 0;
        RingBuffer<TimedFlit> ejArrivals;
        std::vector<PacketId> assembling;     //!< per VC
        std::vector<int> assembledFlits;      //!< per VC
        std::deque<std::pair<Message, int>> ready[2];  //!< per NetKind
        std::uint64_t flitsEjected = 0;

        /** Whether the NI still needs per-cycle service. */
        bool
        busy() const
        {
            return queuedFlits > 0 || !creditArrivals.empty() ||
                   !ejArrivals.empty();
        }
    };

    // --- deterministic parallel tick engine (DESIGN.md §11) -----------

    /**
     * Tail-flit delivery recorded during the parallel phase and
     * replayed serially, in global NI order, by mergeTick(). Keeps the
     * order-sensitive effects — floating-point latency sums, the HARE
     * history EWMA, packet-pool free-list order — bit-identical to the
     * single-threaded schedule.
     */
    struct DeliveredRecord
    {
        PacketHandle slot;
        std::int16_t srcRouter;
        std::int16_t destRouter;
        DimOrder order;
        TrafficClass cls;
        bool straddler;  //!< queued before the last resetStats()
        Cycle latency;
    };

    /** Cross-domain flit hop staged for the commit phase. */
    struct StagedFlit
    {
        std::int16_t router;  //!< receiving router (global index)
        std::int16_t port;
        Cycle when;
        Flit flit;
    };

    /** Cross-domain credit return staged for the commit phase. */
    struct StagedCredit
    {
        std::int16_t router;
        std::int16_t port;
        std::uint8_t vc;
        Cycle when;
    };

    /**
     * One spatial domain: a contiguous range of routers plus the NIs
     * attached to them, ticked by one worker. Everything here is
     * written only by the owning worker during a tick; the scratch
     * counters and delivery records are drained serially, in ascending
     * domain order, by mergeTick() on the main thread.
     */
    struct DR_DOMAIN_OWNED alignas(64) Domain
    {
        DR_DOMAIN_STAMP;

        ActiveSet activeNis;      //!< NIs with pending work (own nodes)
        ActiveSet activeRouters;  //!< routers with pending work (own)
        std::vector<DeliveredRecord> delivered;
        std::uint64_t linkTraversals = 0;
        std::uint64_t conservInjected = 0;
        std::uint64_t conservEjected = 0;
        std::uint64_t flitsDelivered = 0;
        std::array<std::uint64_t, numVnets> vnFlitsDelivered{};
        std::array<std::uint64_t, numVnets> vnInjectionStalls{};
        /** This tick's running VN-occupancy delta and its max prefix. */
        std::array<int, numVnets> vnDelta{};
        std::array<int, numVnets> vnMaxPrefix{};
        /** Flit hops over interposer links this tick (chiplet meshes). */
        std::uint64_t interposerFlits = 0;
        /** Interposer-occupancy delta / max prefix (same merge pattern
         *  as vnDelta; all touches are router events, so ascending-
         *  domain composition reconstructs the serial event order). */
        int ipDelta = 0;
        int ipMaxPrefix = 0;

        bool
        hasWork() const
        {
            return !activeNis.empty() || !activeRouters.empty();
        }
    };

    void niInject(Domain &d, Ni &ni, NodeId node, Cycle now)
        DR_COMPUTE_PHASE;
    void niEject(Domain &d, Ni &ni, NodeId node, Cycle now)
        DR_COMPUTE_PHASE;
    /** Phase 1: sweep one domain's NIs and routers (parallel). */
    void tickDomain(Domain &d, Cycle now) DR_COMPUTE_PHASE;
    /** Phase 2: commit flits/credits staged for this domain (parallel). */
    void commitStaged(int consumer) DR_COMPUTE_PHASE;
    /** Merge per-domain scratch into global stats (main thread only). */
    void mergeTick() DR_COMMIT_PHASE;
    void workerLoop(int domainIdx);
    /** Apply the seeded phase-discipline mutant, if armed (DR_CHECKED
     *  tests; deliberately violates the rules the checks enforce). */
    void applyPhaseMutant(Domain &d, Cycle now)
        DR_COMPUTE_PHASE DR_PHASE_UNCHECKED;

    const Topology &topo_;
    NetworkParams params_ DR_SERIAL_ONLY;
    RoutingPolicy routing_ DR_SERIAL_ONLY;  //!< HARE EWMA mutates at merge
    std::vector<std::unique_ptr<Router>> routers_ DR_DOMAIN_OWNED;
    std::vector<Ni> nis_ DR_DOMAIN_OWNED;
    /** Slab of in-flight packets. Slot-granular ownership: a live slot
     *  belongs to the domain its packet's flits occupy (head-of-packet
     *  fields are written there); structural mutation — alloc/release,
     *  the free list — is commit-phase only (methods so annotated). */
    PacketPool pool_ DR_DOMAIN_OWNED;
    PacketId nextPktId_ DR_SERIAL_ONLY = 1;
    NetworkStats stats_ DR_SERIAL_ONLY;
    /** Live per-VN flit occupancy of the fabric (survives resetStats). */
    std::array<int, numVnets> vnInFabric_ DR_SERIAL_ONLY{};
    /** Live flits occupying downstream interposer-link buffers (sent
     *  across, credit not yet returned). Survives resetStats. */
    int ipInFabric_ DR_SERIAL_ONLY = 0;
    std::uint64_t linkTraversals_ DR_SERIAL_ONLY = 0;
    //! flits NIs handed to routers
    std::uint64_t conservInjected_ DR_SERIAL_ONLY = 0;
    //! flits NIs drained from routers
    std::uint64_t conservEjected_ DR_SERIAL_ONLY = 0;
    Cycle now_ DR_SERIAL_ONLY = 0;
    //! cycle of the last resetStats()
    Cycle statsResetAt_ DR_SERIAL_ONLY = 0;

    // --- parallel tick engine state -----------------------------------
    int numDomains_ DR_SERIAL_ONLY = 1;
    std::vector<Domain> domains_ DR_DOMAIN_OWNED;
    //! router index -> domain (fixed at construction)
    std::vector<std::int16_t> routerDomain_ DR_SERIAL_ONLY;
    //! node index -> domain (fixed at construction)
    std::vector<std::int16_t> nodeDomain_ DR_SERIAL_ONLY;
    /** SPSC staging buffers, indexed [producer * numDomains_ + consumer].
     *  The producer appends during phase 1, the consumer drains during
     *  phase 2; the barrier between the phases is the synchronization. */
    std::vector<std::vector<StagedFlit>> stagedFlits_ DR_SHARED_SPSC;
    std::vector<std::vector<StagedCredit>> stagedCredits_ DR_SHARED_SPSC;
    PhaseMutant debugPhaseMutant_ DR_SERIAL_ONLY = PhaseMutant::None;
    SpinBarrier barrier_;
    std::atomic<std::uint64_t> epoch_{0};  //!< tick-start signal
    std::atomic<bool> stop_{false};
    std::mutex epochMutex_;
    std::condition_variable epochCv_;
    std::vector<std::thread> workers_;  //!< one per domain beyond the first
};

} // namespace dr

#endif // DR_NOC_NETWORK_HPP

#ifndef DR_NOC_ACTIVE_SET_HPP
#define DR_NOC_ACTIVE_SET_HPP

/**
 * @file
 * Work list for active-set scheduling. Routers and NIs register here
 * when they receive work (flits, credits, queued packets) and are
 * swept once per cycle; entities not in the set are not ticked at all.
 * At low injection rates most of the mesh is idle, so the sweep visits
 * a small fraction of the network.
 *
 * Representation: one bit per entity, swept word-by-word with
 * count-trailing-zeros. Members are always visited in ascending index
 * order — exactly the order the old tick-everything loop used, and the
 * skipped entities were no-ops there, so schedules are bit-identical.
 * Registration is a single OR; no allocation, no sorting.
 *
 * Ownership (DESIGN.md §12): each ActiveSet instance lives inside one
 * spatial domain (Network::Domain holds per-domain router/NI sets), so
 * the whole structure is DR_DOMAIN_OWNED through its container — only
 * the owning domain's worker adds/sweeps it during a parallel phase.
 */

#include <bit>
#include <cstdint>
#include <vector>

#include "common/ownership.hpp"

namespace dr
{

class DR_DOMAIN_OWNED ActiveSet
{
  public:
    ActiveSet() = default;

    explicit ActiveSet(int count)
        : words_(static_cast<std::size_t>(count + 63) / 64, 0)
    {
    }

    /** Register an entity; idempotent while it stays in the set. */
    void
    add(int idx)
    {
        words_[static_cast<std::size_t>(idx) >> 6] |=
            std::uint64_t{1} << (idx & 63);
    }

    bool
    contains(int idx) const
    {
        return (words_[static_cast<std::size_t>(idx) >> 6] >>
                (idx & 63)) & 1;
    }

    /** True when no entity is registered (quiescence vote input). */
    bool
    empty() const
    {
        for (const std::uint64_t w : words_) {
            if (w)
                return false;
        }
        return true;
    }

    std::size_t
    size() const
    {
        std::size_t total = 0;
        for (const std::uint64_t w : words_)
            total += static_cast<std::size_t>(std::popcount(w));
        return total;
    }

    /**
     * Visit every member in ascending index order. `fn(idx)` returns
     * whether the entity still has work; entities returning false are
     * removed (and re-register via add() when new work arrives).
     * Entities woken *during* the sweep stay registered; if their index
     * is ahead of the sweep position they are visited this cycle, which
     * is harmless — their new work is timestamped for a later cycle, so
     * the visit no-ops and they remain in the set.
     */
    template <typename Fn>
    void
    sweep(Fn &&fn)
    {
        for (std::size_t w = 0; w < words_.size(); ++w) {
            std::uint64_t pending = words_[w];
            if (!pending)
                continue;
            // Clear the word up front so wakes issued by fn() — even
            // for entities in this very word — survive the merge below.
            words_[w] = 0;
            std::uint64_t keep = 0;
            const int base = static_cast<int>(w) * 64;
            while (pending) {
                const int bit = std::countr_zero(pending);
                pending &= pending - 1;
                if (fn(base + bit))
                    keep |= std::uint64_t{1} << bit;
            }
            words_[w] |= keep;
        }
    }

  private:
    std::vector<std::uint64_t> words_ DR_DOMAIN_OWNED;
};

} // namespace dr

#endif // DR_NOC_ACTIVE_SET_HPP

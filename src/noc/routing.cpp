#include "noc/routing.hpp"

#include "common/log.hpp"

namespace dr
{

RoutingPolicy::RoutingPolicy(RoutingKind kind, const Topology &topo,
                             int numVcs, std::uint64_t seed,
                             const VnetLayout &layout)
    : kind_(kind), topo_(topo), numVcs_(numVcs),
      layout_(layout.empty() ? VnetLayout::uniform(numVcs) : layout),
      rng_(seed)
{
    if (kind_ == RoutingKind::ChipletHierarchical) {
        if (topo_.kind() != TopologyKind::ChipletMesh)
            fatal("chiplet routing requires a chiplet-mesh topology");
    } else if (topo_.kind() == TopologyKind::ChipletMesh) {
        // With every boundary channel present the chiplet mesh is
        // structurally a plain mesh, so any mesh routing applies.
        // Restricted gateways leave grid holes that dimension-order /
        // BFS-table wormhole routing would deadlock on.
        if (topo_.chipletLinksPerEdge() > 0)
            fatal("a gateway-restricted chiplet mesh requires chiplet "
                  "routing");
    } else if (topo_.kind() != TopologyKind::Mesh &&
               kind_ != RoutingKind::TableMinimal) {
        fatal("only table routing is supported on non-mesh topologies");
    }
    if (layout_.numVcs != numVcs_)
        fatal("virtual-network layout covers ", layout_.numVcs,
              " VCs but the network has ", numVcs_);
    // Escape classes are carved out of each VN's reserved range, so
    // VN ranges of one VC cannot express them.
    if (kind_ == RoutingKind::ChipletHierarchical) {
        // Three monotone routing phases (E/W transit, N/S transit,
        // intra-chiplet XY), each owning a disjoint VC segment of the
        // packet's VN range — the escalation that keeps hierarchical
        // wormhole routing deadlock-free.
        for (int vn = 0; vn < numVnets; ++vn) {
            if (layout_.range[vn].count < 3) {
                fatal("chiplet routing needs at least 3 VCs in every "
                      "virtual network (one per routing phase); the ",
                      vnetName(static_cast<VirtualNet>(vn)), " VN has ",
                      static_cast<int>(layout_.range[vn].count));
            }
        }
    }
    const bool needsSplit =
        adaptive() || topo_.kind() == TopologyKind::Dragonfly;
    if (needsSplit) {
        if (numVcs_ < 2)
            fatal("adaptive routing needs at least 2 VCs (one per order)");
        for (int vn = 0; vn < numVnets; ++vn) {
            if (layout_.range[vn].count < 2) {
                fatal(adaptive() ? "adaptive routing" : "dragonfly phase "
                                                        "escalation",
                      " needs at least 2 VCs in every virtual network; "
                      "the ",
                      vnetName(static_cast<VirtualNet>(vn)),
                      " VN has ",
                      static_cast<int>(layout_.range[vn].count));
            }
        }
    }
}

bool
RoutingPolicy::adaptive() const
{
    return kind_ == RoutingKind::DyXY || kind_ == RoutingKind::Footprint ||
           kind_ == RoutingKind::Hare;
}

int
RoutingPolicy::firstHopPort(int router, int destRouter, DimOrder order) const
{
    if (router == destRouter)
        return -1;
    return meshPortToward(router, destRouter, order);
}

DimOrder
RoutingPolicy::chooseOrder(int srcRouter, int destRouter,
                           const CongestionProbe &net)
{
    switch (kind_) {
      case RoutingKind::DimOrderXY:
      case RoutingKind::TableMinimal:
      case RoutingKind::ChipletHierarchical:
        return DimOrder::XY;
      case RoutingKind::DimOrderYX:
        return DimOrder::YX;
      case RoutingKind::DyXY: {
        // Proximity congestion awareness: start in the dimension whose
        // first hop has more free buffering.
        const int px = firstHopPort(srcRouter, destRouter, DimOrder::XY);
        const int py = firstHopPort(srcRouter, destRouter, DimOrder::YX);
        if (px < 0 || py < 0 || px == py)
            return DimOrder::XY;
        const int cx = net.freeCredits(srcRouter, px);
        const int cy = net.freeCredits(srcRouter, py);
        if (cx == cy)
            return rng_.chance(0.5) ? DimOrder::XY : DimOrder::YX;
        return cx > cy ? DimOrder::XY : DimOrder::YX;
      }
      case RoutingKind::Footprint: {
        // Regulated adaptivity: keep the deterministic footprint (XY)
        // unless its first hop is fully congested.
        const int px = firstHopPort(srcRouter, destRouter, DimOrder::XY);
        if (px < 0)
            return DimOrder::XY;
        return net.freeCredits(srcRouter, px) > 0 ? DimOrder::XY
                                                  : DimOrder::YX;
      }
      case RoutingKind::Hare: {
        // History-aware: EWMA of delivered latencies per order, with a
        // small exploration probability.
        const std::uint32_t key =
            static_cast<std::uint32_t>(srcRouter) << 16 |
            static_cast<std::uint32_t>(destRouter);
        const auto it = history_.find(key);
        if (it == history_.end() || rng_.chance(1.0 / 16.0))
            return rng_.chance(0.5) ? DimOrder::XY : DimOrder::YX;
        const History &h = it->second;
        if (!h.seen[0])
            return DimOrder::XY;
        if (!h.seen[1])
            return DimOrder::YX;
        return h.lat[0] <= h.lat[1] ? DimOrder::XY : DimOrder::YX;
      }
    }
    panic("unreachable routing kind");
}

std::uint8_t
RoutingPolicy::packetMask(DimOrder order, VirtualNet vn) const
{
    const std::uint8_t all = layout_.mask(vn);
    if (!adaptive())
        return all;
    // Each order owns half the VN's reserved VCs; disjoint classes keep
    // the union of XY- and YX-routed wormhole traffic deadlock-free
    // (O1TURN), independently within every virtual network.
    const VcRange &r = layout_.range[static_cast<int>(vn)];
    const int half = r.count / 2;
    const std::uint8_t lower =
        static_cast<std::uint8_t>(((1u << half) - 1u) << r.base);
    return order == DimOrder::XY
               ? lower
               : static_cast<std::uint8_t>(all & ~lower);
}

int
RoutingPolicy::meshPortToward(int router, int destRouter,
                              DimOrder order) const
{
    const int x = topo_.xOf(router);
    const int y = topo_.yOf(router);
    const int dx = topo_.xOf(destRouter);
    const int dy = topo_.yOf(destRouter);
    const bool moveXFirst = order == DimOrder::XY;
    if (moveXFirst) {
        if (x != dx)
            return dx > x ? meshEast : meshWest;
        return dy > y ? meshSouth : meshNorth;
    }
    if (y != dy)
        return dy > y ? meshSouth : meshNorth;
    return dx > x ? meshEast : meshWest;
}

int
RoutingPolicy::chipletPhase(int router, int destRouter) const
{
    const int cx = topo_.xOf(router) / topo_.chipletSubW();
    const int cy = topo_.yOf(router) / topo_.chipletSubH();
    const int dcx = topo_.xOf(destRouter) / topo_.chipletSubW();
    const int dcy = topo_.yOf(destRouter) / topo_.chipletSubH();
    if (cx != dcx)
        return 0;
    if (cy != dcy)
        return 1;
    return 2;
}

int
RoutingPolicy::chipletPortToward(int router, int destRouter) const
{
    // Hierarchical deterministic routing in three monotone phases. The
    // gateway row/column is a pure function of the destination so every
    // hop of a packet agrees on it and consecutive destinations spread
    // over the available interposer links.
    const int subW = topo_.chipletSubW();
    const int subH = topo_.chipletSubH();
    const int x = topo_.xOf(router);
    const int y = topo_.yOf(router);
    const int cx = x / subW;
    const int cy = y / subH;
    const int dcx = topo_.xOf(destRouter) / subW;
    const int dcy = topo_.yOf(destRouter) / subH;
    if (cx != dcx) {
        // Phase 0: reach the gateway row (vertical moves stay inside
        // the chiplet), then run east/west; the crossing keeps the
        // global y, so the next chiplet is already on its gateway row.
        const auto &rows = topo_.gatewayRows();
        const int g = rows[static_cast<std::size_t>(destRouter) %
                           rows.size()];
        const int localY = y % subH;
        if (localY != g)
            return g > localY ? meshSouth : meshNorth;
        return dcx > cx ? meshEast : meshWest;
    }
    if (cy != dcy) {
        // Phase 1: reach the gateway column, then run north/south.
        const auto &cols = topo_.gatewayCols();
        const int g = cols[static_cast<std::size_t>(destRouter) %
                           cols.size()];
        const int localX = x % subW;
        if (localX != g)
            return g > localX ? meshEast : meshWest;
        return dcy > cy ? meshSouth : meshNorth;
    }
    // Phase 2: plain XY inside the destination chiplet.
    return meshPortToward(router, destRouter, DimOrder::XY);
}

int
RoutingPolicy::outputPort(int router, const Flit &flit) const
{
    if (router == flit.destRouter)
        return flit.destPort;
    if (kind_ == RoutingKind::ChipletHierarchical)
        return chipletPortToward(router, flit.destRouter);
    const bool grid = topo_.kind() == TopologyKind::Mesh ||
                      topo_.kind() == TopologyKind::ChipletMesh;
    if (grid && kind_ != RoutingKind::TableMinimal)
        return meshPortToward(router, flit.destRouter, flit.order);
    return topo_.nextPortTable(router, flit.destRouter);
}

std::uint8_t
RoutingPolicy::vcMaskForLink(int downstreamRouter, const Flit &flit) const
{
    if (kind_ == RoutingKind::ChipletHierarchical) {
        // Phase escalation: each of the three routing phases owns a
        // disjoint segment of the packet's VN range, and the phase at
        // the downstream router is monotone non-decreasing along any
        // path (E/W transit, then N/S transit, then intra-chiplet XY).
        // Per-phase acyclic turn sets + monotone VC classes keep the
        // hierarchical routes deadlock-free without borrowing another
        // VN's VCs.
        const VcRange &r = layout_.range[static_cast<int>(flit.vnet)];
        const int third = r.count / 3;
        const int phase = chipletPhase(downstreamRouter, flit.destRouter);
        const int base = r.base + phase * third;
        const int cnt = phase == 2 ? r.count - 2 * third : third;
        return static_cast<std::uint8_t>(((1u << cnt) - 1u) << base);
    }
    if (topo_.kind() != TopologyKind::Dragonfly)
        return 0xff;
    // VC phase escalation: traffic that has reached the destination
    // group moves to the upper half *of its virtual network's range*,
    // breaking the local->global->local channel dependence cycle
    // without ever borrowing another VN's VCs.
    const VcRange &r = layout_.range[static_cast<int>(flit.vnet)];
    const int half = r.count / 2;
    const std::uint8_t all = layout_.mask(flit.vnet);
    const std::uint8_t lower =
        static_cast<std::uint8_t>(((1u << half) - 1u) << r.base);
    const bool inDestGroup =
        topo_.groupOf(downstreamRouter) == topo_.groupOf(flit.destRouter);
    return inDestGroup ? static_cast<std::uint8_t>(all & ~lower) : lower;
}

void
RoutingPolicy::onDelivered(int srcRouter, int destRouter, DimOrder order,
                           Cycle latency)
{
    if (kind_ != RoutingKind::Hare)
        return;
    const std::uint32_t key = static_cast<std::uint32_t>(srcRouter) << 16 |
                              static_cast<std::uint32_t>(destRouter);
    History &h = history_[key];
    const int idx = order == DimOrder::XY ? 0 : 1;
    constexpr double alpha = 0.125;
    if (!h.seen[idx]) {
        h.lat[idx] = static_cast<double>(latency);
        h.seen[idx] = true;
    } else {
        h.lat[idx] =
            (1.0 - alpha) * h.lat[idx] + alpha * static_cast<double>(latency);
    }
}

} // namespace dr

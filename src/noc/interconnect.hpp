#ifndef DR_NOC_INTERCONNECT_HPP
#define DR_NOC_INTERCONNECT_HPP

/**
 * @file
 * Message-level interface over the physical network(s). The baseline has
 * physically separate request and reply networks; the AVCP configuration
 * (Figure 6) shares one double-width physical network and segregates
 * request and reply traffic onto disjoint VC sets. Both mappings are
 * expressed as virtual-network layouts (noc/vnet.hpp): every message is
 * classified into a VN at send() and confined to that VN's reserved VC
 * range end to end; with `noc.vnets` on, forwarded (delegated) requests
 * and core-to-core replies get their own ranges.
 */

#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/ownership.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace dr
{

/**
 * The chip interconnect. Endpoints send/receive Messages; the
 * interconnect maps them onto networks, VCs and flits.
 */
class Interconnect
{
  public:
    Interconnect(const SystemConfig &cfg,
                 const std::vector<NodeType> &nodeTypes);

    Interconnect(const Interconnect &) = delete;
    Interconnect &operator=(const Interconnect &) = delete;

    /** Flits a message occupies given the configured channel width. */
    int flitsFor(const Message &msg) const;

    /** Whether msg.src can accept the message into its injection buffer. */
    bool canSend(const Message &msg) const;

    /** Queue a message for injection. @pre canSend(msg) */
    void send(const Message &msg, Cycle now);

    /** Free injection space (flits) on the network a message would use. */
    int injectFree(NodeId node, NetKind kind) const;

    // --- endpoint staging (DESIGN.md §13) -----------------------------
    //
    // While the endpoint compute phase runs, sends must not touch
    // network-global state (packet pool, packet ids, routing RNG). In
    // staging mode send() appends to the sender's per-node outbox and
    // reserves the flits; canSend()/injectFree() subtract the node's
    // own reservations, which is exact because injection buffers are
    // per-node and only the owning endpoint sends from its node. The
    // serial merge then drains outboxes in canonical endpoint order —
    // the same order the old serial tick issued them — reproducing the
    // identical pool-slot / packet-id / routing sequence.

    /** Enter staging mode (before the endpoint compute phase). */
    void beginStaging();

    /** Real-inject one node's staged sends, in issue order (serial). */
    void drainOutbox(NodeId node, Cycle now) DR_COMMIT_PHASE;

    /** Leave staging mode. @pre every outbox has been drained */
    void endStaging();

    bool staging() const { return staging_; }

    bool hasMessage(NodeId node, NetKind kind) const;
    const Message &peekMessage(NodeId node, NetKind kind) const;
    Message popMessage(NodeId node, NetKind kind);

    void tick(Cycle now);

    const Topology &topology() const { return topo_; }

    /** The physical network carrying the given traffic kind. */
    Network &net(NetKind kind);
    const Network &net(NetKind kind) const;
    bool shared() const { return shared_; }

    /** Every physical network's all-domains quiescence vote. */
    bool quiescent() const
    {
        return request_->quiescent() && (!reply_ || reply_->quiescent());
    }

    /**
     * Virtual network a message travels on: the central classification
     * (noc/vnet.hpp) applied with this chip's node-type map, so
     * core-to-core replies (delegated remote hits, probe nacks) land on
     * the DelegatedReply VN while memory replies stay on Reply.
     */
    VirtualNet vnetFor(const Message &msg) const
    {
        return classifyMessage(msg,
                               nodeTypes_[msg.src] == NodeType::MemNode);
    }

    /** Reset statistics on all physical networks. */
    void resetStats();

    /**
     * Run the flit- and credit-conservation checkers on every physical
     * network. panic()s on the first violated law. Call between cycles.
     */
    void checkInvariants() const;

    /** Sum of energy-model event counts over all physical networks. */
    std::uint64_t totalSwitchTraversals() const;
    std::uint64_t totalBufferWrites() const;
    std::uint64_t totalLinkTraversals() const;

  private:
    /**
     * Staged sends of one node. Written only by the endpoint that owns
     * the node (its domain's worker during the compute phase), drained
     * by the serial merge — per-node exclusivity, no locking needed.
     */
    struct DR_DOMAIN_OWNED NodeOutbox
    {
        std::vector<Message> pending;
        int reservedFlits[2] = {0, 0};  //!< per NetKind
    };

    NetKind kindFor(const Message &msg) const
    {
        return onRequestNetwork(msg.type) ? NetKind::Request
                                          : NetKind::Reply;
    }

    /** Flits this node has staged against the given network. */
    int reservedFlits(NodeId node, NetKind kind) const;

    void sendNow(const Message &msg, Cycle now);

    SystemConfig cfg_;
    Topology topo_;
    bool shared_;
    std::vector<NodeType> nodeTypes_;
    std::unique_ptr<Network> request_;
    std::unique_ptr<Network> reply_;  //!< null in shared mode
    std::vector<NodeOutbox> outbox_ DR_DOMAIN_OWNED;
    bool staging_ DR_SERIAL_ONLY = false;
};

} // namespace dr

#endif // DR_NOC_INTERCONNECT_HPP

#ifndef DR_NOC_INTERCONNECT_HPP
#define DR_NOC_INTERCONNECT_HPP

/**
 * @file
 * Message-level interface over the physical network(s). The baseline has
 * physically separate request and reply networks; the AVCP configuration
 * (Figure 6) shares one double-width physical network and segregates
 * request and reply traffic onto disjoint VC sets. Both mappings are
 * expressed as virtual-network layouts (noc/vnet.hpp): every message is
 * classified into a VN at send() and confined to that VN's reserved VC
 * range end to end; with `noc.vnets` on, forwarded (delegated) requests
 * and core-to-core replies get their own ranges.
 */

#include <memory>

#include "common/config.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace dr
{

/**
 * The chip interconnect. Endpoints send/receive Messages; the
 * interconnect maps them onto networks, VCs and flits.
 */
class Interconnect
{
  public:
    Interconnect(const SystemConfig &cfg,
                 const std::vector<NodeType> &nodeTypes);

    Interconnect(const Interconnect &) = delete;
    Interconnect &operator=(const Interconnect &) = delete;

    /** Flits a message occupies given the configured channel width. */
    int flitsFor(const Message &msg) const;

    /** Whether msg.src can accept the message into its injection buffer. */
    bool canSend(const Message &msg) const;

    /** Queue a message for injection. @pre canSend(msg) */
    void send(const Message &msg, Cycle now);

    /** Free injection space (flits) on the network a message would use. */
    int injectFree(NodeId node, NetKind kind) const;

    bool hasMessage(NodeId node, NetKind kind) const;
    const Message &peekMessage(NodeId node, NetKind kind) const;
    Message popMessage(NodeId node, NetKind kind);

    void tick(Cycle now);

    const Topology &topology() const { return topo_; }

    /** The physical network carrying the given traffic kind. */
    Network &net(NetKind kind);
    const Network &net(NetKind kind) const;
    bool shared() const { return shared_; }

    /**
     * Virtual network a message travels on: the central classification
     * (noc/vnet.hpp) applied with this chip's node-type map, so
     * core-to-core replies (delegated remote hits, probe nacks) land on
     * the DelegatedReply VN while memory replies stay on Reply.
     */
    VirtualNet vnetFor(const Message &msg) const
    {
        return classifyMessage(msg,
                               nodeTypes_[msg.src] == NodeType::MemNode);
    }

    /** Reset statistics on all physical networks. */
    void resetStats();

    /**
     * Run the flit- and credit-conservation checkers on every physical
     * network. panic()s on the first violated law. Call between cycles.
     */
    void checkInvariants() const;

    /** Sum of energy-model event counts over all physical networks. */
    std::uint64_t totalSwitchTraversals() const;
    std::uint64_t totalBufferWrites() const;
    std::uint64_t totalLinkTraversals() const;

  private:
    SystemConfig cfg_;
    Topology topo_;
    bool shared_;
    std::vector<NodeType> nodeTypes_;
    std::unique_ptr<Network> request_;
    std::unique_ptr<Network> reply_;  //!< null in shared mode
};

} // namespace dr

#endif // DR_NOC_INTERCONNECT_HPP

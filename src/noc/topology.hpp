#ifndef DR_NOC_TOPOLOGY_HPP
#define DR_NOC_TOPOLOGY_HPP

/**
 * @file
 * Topology descriptions. A topology is a set of routers with typed ports:
 * a port either carries a channel to a peer router, attaches a node's
 * network interface, or is unconnected. Nodes (endpoints) map onto
 * routers; the mesh attaches one node per router while the crossbar
 * attaches all nodes to a single central switch and the flattened
 * butterfly / dragonfly concentrate several nodes per router.
 *
 * Every topology gives each endpoint exactly one injection link and one
 * ejection link — the property that makes memory-node clogging
 * topology-independent (Section III.B of the paper).
 */

#include <vector>

#include "common/invariant.hpp"
#include "common/types.hpp"

namespace dr
{

/** What a router port is wired to. */
struct PortConn
{
    enum class Kind : std::uint8_t { None, Link, Node };

    Kind kind = Kind::None;
    std::int16_t peerRouter = -1;  //!< for Kind::Link
    std::int16_t peerPort = -1;    //!< for Kind::Link
    NodeId node = invalidNode;     //!< for Kind::Node
    /**
     * Interposer link class (chiplet meshes): the channel crosses a
     * chiplet boundary over the silicon interposer, with its own width
     * (flits serialize over extra cycles) and latency. Set symmetrically
     * on both endpoints of the link.
     */
    bool interposer = false;
};

/** Mesh port numbering (port 0 is the local/node port). */
enum MeshPort : int
{
    meshLocal = 0,
    meshEast = 1,
    meshWest = 2,
    meshNorth = 3,
    meshSouth = 4,
    meshPorts = 5,
};

/**
 * An immutable topology graph plus the node-to-router attachment map.
 */
class Topology
{
  public:
    /** 2D mesh, one node per router; routers indexed row-major. */
    static Topology makeMesh(int width, int height);

    /** Central full crossbar: all nodes attach to one switch. */
    static Topology makeCrossbar(int nodes);

    /**
     * Flattened butterfly: routers in a grid with full row and column
     * connectivity and `concentration` nodes per router [41].
     */
    static Topology makeFlattenedButterfly(int nodes, int concentration);

    /**
     * Dragonfly: `groups` fully-connected groups, global links between
     * every group pair, `concentration` nodes per router [42].
     */
    static Topology makeDragonfly(int nodes, int groups,
                                  int routersPerGroup);

    /**
     * Chiplet mesh: a `chipletsX` x `chipletsY` grid of `subW` x `subH`
     * sub-mesh chiplets, one node per router, joined by interposer
     * links. `linksPerEdge` selects how many boundary channels each
     * facing chiplet edge pair carries: 0 means every boundary router
     * pair is linked (the grid is then structurally a plain mesh whose
     * boundary links are interposer-class); k in [1, subH/subW] keeps
     * only k gateway links per edge, evenly spread, and requires
     * hierarchical routing. Interposer links are tagged on both
     * endpoints (see PortConn::interposer).
     */
    static Topology makeChipletMesh(int chipletsX, int chipletsY, int subW,
                                    int subH, int linksPerEdge = 0);

    /** Build the topology selected by `kind` for `nodes` endpoints. */
    static Topology make(TopologyKind kind, int nodes, int meshWidth,
                         int meshHeight);

    TopologyKind kind() const { return kind_; }
    int routers() const { return static_cast<int>(ports_.size()); }
    int nodes() const { return static_cast<int>(attachRouter_.size()); }
    int radix(int router) const
    {
        return static_cast<int>(ports_[router].size());
    }

    const PortConn &port(int router, int p) const
    {
        return ports_[router][p];
    }

    /** Router the given node's NI attaches to. */
    int attachRouter(NodeId n) const { return attachRouter_[n]; }
    /** Port on that router that faces the node. */
    int attachPort(NodeId n) const { return attachPort_[n]; }

    /**
     * Mesh coordinates. Valid only for grid topologies (mesh, flattened
     * butterfly, chiplet mesh): a crossbar or dragonfly router has no
     * grid position and `meshWidth_` is 0 there, so the modulo below
     * would be undefined — checked builds trap the misuse instead of
     * returning a meaningless coordinate.
     */
    int xOf(int router) const
    {
        DR_ASSERT_MSG(meshWidth_ > 0,
                      "xOf on a non-grid topology");
        return router % meshWidth_;
    }
    int yOf(int router) const
    {
        DR_ASSERT_MSG(meshWidth_ > 0,
                      "yOf on a non-grid topology");
        return router / meshWidth_;
    }
    int meshWidth() const { return meshWidth_; }
    int meshHeight() const { return meshHeight_; }

    /** Chiplet grid shape (1x1 with zero sub-dims for non-chiplet). */
    int chipletsX() const { return chipletsX_; }
    int chipletsY() const { return chipletsY_; }
    int chipletSubW() const { return chipletSubW_; }
    int chipletSubH() const { return chipletSubH_; }
    /** Gateway links per facing chiplet-edge pair (0 = all boundary). */
    int chipletLinksPerEdge() const { return chipletLinksPerEdge_; }

    /** Chiplet index (row-major over the chiplet grid) of a router. */
    int chipletOf(int router) const
    {
        DR_ASSERT_MSG(kind_ == TopologyKind::ChipletMesh,
                      "chipletOf on a non-chiplet topology");
        const int cx = xOf(router) / chipletSubW_;
        const int cy = yOf(router) / chipletSubH_;
        return cy * chipletsX_ + cx;
    }

    /** True when (router, port) is an interposer-class link. */
    bool isInterposer(int router, int p) const
    {
        return ports_[router][p].interposer;
    }

    /**
     * Local sub-mesh rows carrying east/west gateway links (ascending),
     * and columns carrying north/south gateways. Equal to all rows/
     * columns when linksPerEdge is 0. Empty for non-chiplet topologies.
     */
    const std::vector<int> &gatewayRows() const { return gatewayRows_; }
    const std::vector<int> &gatewayCols() const { return gatewayCols_; }

    /** Number of interposer channels (unidirectional). */
    int interposerLinkCount() const;

    /** Group of a router (dragonfly only; 0 otherwise). */
    int groupOf(int router) const
    {
        return groups_.empty() ? 0 : groups_[router];
    }

    /**
     * Minimal next-hop port from `router` toward `destRouter`, from the
     * deterministic table built at construction. For the mesh the table
     * encodes XY order; dimension-order routing overrides it.
     */
    int nextPortTable(int router, int destRouter) const
    {
        return table_[router][destRouter];
    }

    /** Hop count along table paths. */
    int hopCount(int srcRouter, int destRouter) const;

    /** Total number of router-to-router channels (unidirectional). */
    int channelCount() const;

  private:
    Topology() = default;

    /** Wire a bidirectional link between (ra, pa) and (rb, pb). */
    void link(int ra, int pa, int rb, int pb);
    void attach(NodeId n, int router, int port);
    void buildTable();
    /** Mesh/FB dimension-ordered table: row (X) first, then column. */
    void buildGridTable();

    TopologyKind kind_ = TopologyKind::Mesh;
    int meshWidth_ = 0;
    int meshHeight_ = 0;
    int chipletsX_ = 1;
    int chipletsY_ = 1;
    int chipletSubW_ = 0;
    int chipletSubH_ = 0;
    int chipletLinksPerEdge_ = 0;
    std::vector<std::vector<PortConn>> ports_;
    std::vector<int> attachRouter_;
    std::vector<int> attachPort_;
    std::vector<int> groups_;
    std::vector<int> gatewayRows_;
    std::vector<int> gatewayCols_;
    std::vector<std::vector<std::int16_t>> table_;
};

} // namespace dr

#endif // DR_NOC_TOPOLOGY_HPP

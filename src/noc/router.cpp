#include "noc/router.hpp"

#include <ostream>

#include "common/invariant.hpp"
#include "common/log.hpp"

namespace dr
{

Router::Router(int id, int numPorts, int numVcs, int vcDepth, int stages,
               RouterEnv &env,
               const std::vector<std::uint8_t> &portIsLink,
               const std::vector<NodeId> &portNode)
    : id_(id), numPorts_(numPorts), numVcs_(numVcs), vcDepth_(vcDepth),
      stages_(stages),
      env_(env), portIsLink_(portIsLink), portNode_(portNode),
      in_(numPorts, std::vector<InVc>(numVcs)),
      arrivals_(numPorts),
      out_(numPorts, std::vector<OutVc>(numVcs)),
      creditArrivals_(numPorts),
      rrPtr_(numPorts, 0)
{
    if (numVcs_ > 8)
        fatal("at most 8 VCs supported (VC masks are 8 bits)");
    for (int p = 0; p < numPorts_; ++p) {
        for (int v = 0; v < numVcs_; ++v)
            out_[p][v].credits = vcDepth;
    }
}

void
Router::acceptFlit(int port, const Flit &flit, Cycle when)
{
    arrivals_[port].push_back({when, flit});
    ++pendingArrivals_;
}

void
Router::acceptCredit(int port, int vc, Cycle when)
{
    creditArrivals_[port].push_back({when, static_cast<std::uint8_t>(vc)});
    ++pendingCredits_;
}

void
Router::applyArrivals(Cycle now)
{
    for (int p = 0; p < numPorts_; ++p) {
        auto &credits = creditArrivals_[p];
        while (!credits.empty() && credits.front().when <= now) {
            // Credit conservation: returns can never push a VC's credit
            // count past the buffer depth (that would be a duplicated
            // credit, letting the upstream router overrun the buffer).
            DR_INVARIANT(out_[p][credits.front().vc].credits < vcDepth_,
                         "router ", id_, " port ", p, " vc ",
                         int(credits.front().vc),
                         " credit return exceeds buffer depth ", vcDepth_);
            ++out_[p][credits.front().vc].credits;
            credits.pop_front();
            --pendingCredits_;
            DR_ASSERT(pendingCredits_ >= 0);
        }
        auto &queue = arrivals_[p];
        while (!queue.empty() && queue.front().when <= now) {
            const Flit &flit = queue.front().flit;
            DR_ASSERT_MSG(flit.vc < numVcs_, "router ", id_,
                          ": arriving flit names VC ", int(flit.vc));
            DR_INVARIANT(
                static_cast<int>(in_[p][flit.vc].buf.size()) < vcDepth_,
                "router ", id_, " port ", p, " vc ", int(flit.vc),
                " input buffer overrun (upstream sent without credit)");
            in_[p][flit.vc].buf.push_back(flit);
            ++stats_.bufferWrites;
            queue.pop_front();
            --pendingArrivals_;
            ++bufferedCount_;
            DR_ASSERT(pendingArrivals_ >= 0);
        }
    }
}

void
Router::routeCompute()
{
    for (int p = 0; p < numPorts_; ++p) {
        for (int v = 0; v < numVcs_; ++v) {
            InVc &ivc = in_[p][v];
            if (ivc.routed || ivc.buf.empty())
                continue;
            const Flit &head = ivc.buf.front();
            if (!head.head)
                panic("router ", id_, ": body flit at idle VC head");
            ivc.outPort = env_.routeOutput(id_, head);
            ivc.routed = true;
        }
    }
}

void
Router::vcAllocate()
{
    // Two passes give CPU-class packets strict priority.
    for (const TrafficClass cls : {TrafficClass::Cpu, TrafficClass::Gpu}) {
        for (int p = 0; p < numPorts_; ++p) {
            for (int v = 0; v < numVcs_; ++v) {
                InVc &ivc = in_[p][v];
                if (!ivc.routed || ivc.active || ivc.buf.empty())
                    continue;
                const Flit &head = ivc.buf.front();
                if (head.cls != cls)
                    continue;
                const std::uint8_t mask =
                    head.vcMask &
                    env_.vcMaskForOutput(id_, ivc.outPort, head);
                for (int ov = 0; ov < numVcs_; ++ov) {
                    if (!(mask & (1u << ov)))
                        continue;
                    OutVc &ovc = out_[ivc.outPort][ov];
                    if (ovc.ownerIn >= 0)
                        continue;
                    ovc.ownerIn = p * numVcs_ + v;
                    ivc.outVc = ov;
                    ivc.active = true;
                    break;
                }
            }
        }
    }
}

bool
Router::outVcHasSpace(int port, int vc, NodeId node) const
{
    if (portIsLink_[port])
        return out_[port][vc].credits > 0;
    return env_.nodeEjectFree(node) > 0;
}

void
Router::switchAllocate(Cycle now)
{
    // Collect candidates per output port, then grant one crossbar
    // traversal per output and per input (separable allocation).
    std::vector<std::uint8_t> inUsed(numPorts_, 0);

    for (int i = 0; i < numPorts_; ++i) {
        const int outPort = (i + saOffset_) % numPorts_;
        int best = -1;
        bool bestCpu = false;
        int bestDist = 0;
        for (int p = 0; p < numPorts_; ++p) {
            if (inUsed[p])
                continue;
            for (int v = 0; v < numVcs_; ++v) {
                const InVc &ivc = in_[p][v];
                if (!ivc.active || ivc.outPort != outPort ||
                    ivc.buf.empty()) {
                    continue;
                }
                const Flit &flit = ivc.buf.front();
                if (!outVcHasSpace(outPort, ivc.outVc, portNode_[outPort]))
                    continue;
                const bool isCpu = flit.cls == TrafficClass::Cpu;
                const int key = p * numVcs_ + v;
                const int dist =
                    (key - rrPtr_[outPort] + numPorts_ * numVcs_) %
                    (numPorts_ * numVcs_);
                if (best < 0 || (isCpu && !bestCpu) ||
                    (isCpu == bestCpu && dist < bestDist)) {
                    best = key;
                    bestCpu = isCpu;
                    bestDist = dist;
                }
            }
        }
        if (best < 0)
            continue;

        const int p = best / numVcs_;
        const int v = best % numVcs_;
        InVc &ivc = in_[p][v];
        Flit flit = ivc.buf.front();
        ivc.buf.pop_front();
        --bufferedCount_;
        inUsed[p] = 1;
        rrPtr_[outPort] = (best + 1) % (numPorts_ * numVcs_);

        // The flit leaves on the allocated output VC after traversing
        // the remaining pipeline stages plus one cycle of link latency.
        const int outVc = ivc.outVc;
        flit.vc = static_cast<std::uint8_t>(outVc);
        const Cycle arrive = now + static_cast<Cycle>(stages_ - 1) + 1;
        ++stats_.switchTraversals;
        if (stats_.portFlitsSent.empty())
            stats_.portFlitsSent.assign(numPorts_, 0);
        ++stats_.portFlitsSent[outPort];

        if (portIsLink_[outPort]) {
            DR_INVARIANT(out_[outPort][outVc].credits > 0,
                         "router ", id_, " port ", outPort, " vc ", outVc,
                         " switch traversal without a credit");
            --out_[outPort][outVc].credits;
            env_.deliverToRouter(id_, outPort, flit, arrive);
        } else {
            env_.nodeEjectReserve(portNode_[outPort]);
            env_.deliverToNode(portNode_[outPort], flit, arrive);
        }

        // Return buffer credit to whoever feeds this input port.
        env_.creditToFeeder(id_, p, v, now + 1);

        if (flit.tail) {
            out_[outPort][outVc].ownerIn = -1;
            ivc.routed = false;
            ivc.active = false;
            ivc.outPort = -1;
            ivc.outVc = -1;
        }
    }
    saOffset_ = (saOffset_ + 1) % numPorts_;
}

void
Router::tick(Cycle now)
{
    // Idle fast path: nothing buffered and nothing arriving.
    if (pendingArrivals_ == 0 && pendingCredits_ == 0 &&
        bufferedCount_ == 0) {
        return;
    }
    applyArrivals(now);
    if (bufferedCount_ == 0)
        return;
    routeCompute();
    vcAllocate();
    switchAllocate(now);
}

int
Router::freeCredits(int port) const
{
    int total = 0;
    for (int v = 0; v < numVcs_; ++v)
        total += out_[port][v].credits;
    return total;
}

void
Router::debugDump(std::ostream &os) const
{
    for (int p = 0; p < numPorts_; ++p) {
        for (int v = 0; v < numVcs_; ++v) {
            const InVc &ivc = in_[p][v];
            if (ivc.buf.empty() && !ivc.routed)
                continue;
            os << "R" << id_ << " in[" << p << "][" << v << "] buf="
               << ivc.buf.size() << " routed=" << ivc.routed << " active="
               << ivc.active << " outPort=" << ivc.outPort << " outVc="
               << ivc.outVc;
            if (!ivc.buf.empty()) {
                os << " frontPkt=" << ivc.buf.front().pkt
                   << (ivc.buf.front().head ? "H" : "")
                   << (ivc.buf.front().tail ? "T" : "");
            }
            os << "\n";
        }
    }
    for (int p = 0; p < numPorts_; ++p) {
        os << "R" << id_ << " out[" << p << "] credits:";
        for (int v = 0; v < numVcs_; ++v)
            os << " " << out_[p][v].credits << "(o" << out_[p][v].ownerIn
               << ")";
        os << "\n";
    }
}

int
Router::bufferedFlits() const
{
    int total = 0;
    for (const auto &port : in_) {
        for (const auto &vc : port)
            total += static_cast<int>(vc.buf.size());
    }
    return total;
}

int
Router::inVcOccupancy(int port, int vc) const
{
    int total = static_cast<int>(in_[port][vc].buf.size());
    for (const auto &timed : arrivals_[port]) {
        if (timed.flit.vc == vc)
            ++total;
    }
    return total;
}

int
Router::pendingCreditsFor(int port, int vc) const
{
    int total = 0;
    for (const auto &timed : creditArrivals_[port]) {
        if (timed.vc == vc)
            ++total;
    }
    return total;
}

std::vector<BlockedHead>
Router::blockedHeads() const
{
    std::vector<BlockedHead> heads;
    for (int p = 0; p < numPorts_; ++p) {
        for (int v = 0; v < numVcs_; ++v) {
            const InVc &ivc = in_[p][v];
            if (ivc.buf.empty())
                continue;
            BlockedHead head;
            head.router = id_;
            head.inPort = p;
            head.inVc = v;
            head.outPort = ivc.routed ? ivc.outPort : -1;
            head.outVc = ivc.active ? ivc.outVc : -1;
            head.pkt = ivc.buf.front().pkt;
            head.destRouter = ivc.buf.front().destRouter;
            head.buffered = static_cast<int>(ivc.buf.size());
            heads.push_back(head);
        }
    }
    return heads;
}

void
Router::debugLeakCredit(int port, int vc)
{
    if (out_[port][vc].credits <= 0)
        panic("debugLeakCredit: no credit to leak on router ", id_,
              " port ", port, " vc ", vc);
    --out_[port][vc].credits;
}

} // namespace dr

#include "noc/router.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

#include "common/invariant.hpp"
#include "common/log.hpp"

namespace dr
{

Router::Router(int id, int numPorts, int numVcs, int vcDepth, int stages,
               RouterEnv &env,
               const std::vector<std::uint8_t> &portIsLink,
               const std::vector<NodeId> &portNode, bool vnPriority)
    : id_(id), numPorts_(numPorts), numVcs_(numVcs), vcDepth_(vcDepth),
      stages_(stages), vnPriority_(vnPriority),
      env_(env), portIsLink_(portIsLink), portNode_(portNode),
      in_(static_cast<std::size_t>(numPorts) * numVcs),
      arrivals_(numPorts),
      out_(static_cast<std::size_t>(numPorts) * numVcs),
      creditArrivals_(numPorts),
      rrPtr_(numPorts, 0),
      saInUsed_(numPorts, 0),
      saReq_(numPorts, 0),
      portInterval_(numPorts, 1),
      portNextFree_(numPorts, 0)
{
    if (numVcs_ > 8)
        fatal("at most 8 VCs supported (VC masks are 8 bits)");
    wide_ = numPorts_ * numVcs_ > 64;
    for (int p = 0; p < numPorts_; ++p) {
        for (int v = 0; v < numVcs_; ++v) {
            out_[p * numVcs_ + v].credits = vcDepth;
            in_[p * numVcs_ + v].buf.reserve(
                static_cast<std::size_t>(vcDepth));
        }
        // Arrivals are bounded by the upstream credits on the link
        // (one slot per downstream buffer entry, across all VCs).
        arrivals_[p].reserve(static_cast<std::size_t>(numVcs) *
                             static_cast<std::size_t>(vcDepth));
        creditArrivals_[p].reserve(static_cast<std::size_t>(numVcs) *
                                   static_cast<std::size_t>(vcDepth));
    }
}

void
Router::acceptFlit(int port, const Flit &flit, Cycle when)
{
    DR_STAMP_WRITE(*this);
    arrivals_[port].push_back({when, flit});
    ++pendingArrivals_;
    if (when < nextApplyCycle_)
        nextApplyCycle_ = when;
}

void
Router::acceptCredit(int port, int vc, Cycle when)
{
    DR_STAMP_WRITE(*this);
    creditArrivals_[port].push_back({when, static_cast<std::uint8_t>(vc)});
    ++pendingCredits_;
    if (when < nextApplyCycle_)
        nextApplyCycle_ = when;
}

bool
Router::applyArrivals(Cycle now)
{
    if (pendingCredits_ == 0 && pendingArrivals_ == 0)
        return false;
    if (now < nextApplyCycle_)
        return false;
    bool applied = false;
    Cycle next = ~Cycle{0};
    for (int p = 0; p < numPorts_; ++p) {
        auto &credits = creditArrivals_[p];
        while (!credits.empty() && credits.front().when <= now) {
            // Credit conservation: returns can never push a VC's credit
            // count past the buffer depth (that would be a duplicated
            // credit, letting the upstream router overrun the buffer).
            DR_INVARIANT(
                out_[p * numVcs_ + credits.front().vc].credits < vcDepth_,
                "router ", id_, " port ", p, " vc ",
                int(credits.front().vc),
                " credit return exceeds buffer depth ", vcDepth_);
            ++out_[p * numVcs_ + credits.front().vc].credits;
            credits.pop_front();
            --pendingCredits_;
            applied = true;
            DR_ASSERT(pendingCredits_ >= 0);
        }
        if (!credits.empty() && credits.front().when < next)
            next = credits.front().when;
        auto &queue = arrivals_[p];
        while (!queue.empty() && queue.front().when <= now) {
            const Flit &flit = queue.front().flit;
            DR_ASSERT_MSG(flit.vc < numVcs_, "router ", id_,
                          ": arriving flit names VC ", int(flit.vc));
            const int key = p * numVcs_ + flit.vc;
            DR_INVARIANT(
                static_cast<int>(in_[key].buf.size()) < vcDepth_,
                "router ", id_, " port ", p, " vc ", int(flit.vc),
                " input buffer overrun (upstream sent without credit)");
            in_[key].buf.push_back(flit);
            if (!wide_)
                occ_ |= std::uint64_t{1} << key;
            ++stats_.bufferWrites;
            queue.pop_front();
            --pendingArrivals_;
            ++bufferedCount_;
            applied = true;
            DR_ASSERT(pendingArrivals_ >= 0);
        }
        if (!queue.empty() && queue.front().when < next)
            next = queue.front().when;
    }
    nextApplyCycle_ = next;
    return applied;
}

bool
Router::routeComputeWide()
{
    bool routed = false;
    const int keys = numPorts_ * numVcs_;
    for (int key = 0; key < keys; ++key) {
        InVc &ivc = in_[key];
        if (ivc.routed || ivc.buf.empty())
            continue;
        const Flit &head = ivc.buf.front();
        if (!head.head)
            panic("router ", id_, ": body flit at idle VC head");
        ivc.outPort = env_.routeOutput(id_, head);
        ivc.routed = true;
        routed = true;
    }
    return routed;
}

bool
Router::routeCompute()
{
    if (wide_)
        return routeComputeWide();
    // Non-empty input VCs whose head has no output port yet.
    std::uint64_t pending = occ_ & ~routed_;
    if (!pending)
        return false;
    while (pending) {
        const int key = std::countr_zero(pending);
        pending &= pending - 1;
        InVc &ivc = in_[key];
        const Flit &head = ivc.buf.front();
        if (!head.head)
            panic("router ", id_, ": body flit at idle VC head");
        ivc.outPort = env_.routeOutput(id_, head);
        ivc.routed = true;
        routed_ |= std::uint64_t{1} << key;
    }
    return true;
}

bool
Router::vcAllocateWide()
{
    bool allocated = false;
    const int keys = numPorts_ * numVcs_;
    // Ranked passes: CPU before GPU, and within a class (vnPriority
    // mode) downstream virtual networks before upstream ones.
    for (int rank = 0; rank < arbRankCount(vnPriority_); ++rank) {
        for (int key = 0; key < keys; ++key) {
            InVc &ivc = in_[key];
            if (!ivc.routed || ivc.active || ivc.buf.empty())
                continue;
            const Flit &head = ivc.buf.front();
            if (arbRank(head.cls, head.vnet, vnPriority_) != rank)
                continue;
            const std::uint8_t mask =
                head.vcMask & env_.vcMaskForOutput(id_, ivc.outPort, head);
            for (int ov = 0; ov < numVcs_; ++ov) {
                if (!(mask & (1u << ov)))
                    continue;
                OutVc &ovc = out_[ivc.outPort * numVcs_ + ov];
                if (ovc.ownerIn >= 0)
                    continue;
                ovc.ownerIn = key;
                ivc.outVc = ov;
                ivc.active = true;
                allocated = true;
                break;
            }
        }
    }
    return allocated;
}

bool
Router::vcAllocate()
{
    if (wide_)
        return vcAllocateWide();
    // Routed, non-empty heads that still need an output VC.
    std::uint64_t cand = routed_ & ~active_ & occ_;
    if (!cand)
        return false;
    bool allocated = false;
    // Ranked passes: CPU before GPU, and within a class (vnPriority
    // mode) downstream virtual networks before upstream ones.
    for (int rank = 0; rank < arbRankCount(vnPriority_); ++rank) {
        std::uint64_t m = cand;
        while (m) {
            const int key = std::countr_zero(m);
            m &= m - 1;
            InVc &ivc = in_[key];
            const Flit &head = ivc.buf.front();
            if (arbRank(head.cls, head.vnet, vnPriority_) != rank)
                continue;
            const std::uint8_t mask =
                head.vcMask & env_.vcMaskForOutput(id_, ivc.outPort, head);
            for (int ov = 0; ov < numVcs_; ++ov) {
                if (!(mask & (1u << ov)))
                    continue;
                OutVc &ovc = out_[ivc.outPort * numVcs_ + ov];
                if (ovc.ownerIn >= 0)
                    continue;
                ovc.ownerIn = key;
                ivc.outVc = ov;
                ivc.active = true;
                active_ |= std::uint64_t{1} << key;
                cand &= ~(std::uint64_t{1} << key);
                allocated = true;
                break;
            }
        }
    }
    return allocated;
}

bool
Router::outVcHasSpace(int port, int vc, NodeId node) const
{
    if (portIsLink_[port])
        return out_[port * numVcs_ + vc].credits > 0;
    return env_.nodeEjectFree(node) > 0;
}

bool
Router::switchAllocate(Cycle now)
{
    // Grant one crossbar traversal per output and per input (separable
    // allocation). Requests are bucketed per output port up front from
    // the active-VC mask; outputs with no requesters are skipped with a
    // single test. The best-candidate comparison (arbitration rank
    // first — CPU before GPU, then VN rank when vnPriority is on —
    // then rotation distance, unique per key) is order-independent, so
    // the grants match the old exhaustive port x VC scan exactly.
    if (wide_)
        return switchAllocateWide(now);
    bool granted = false;
    const std::uint64_t req = active_ & occ_;
    if (!req) {
        saOffset_ = (saOffset_ + 1) % numPorts_;
        return false;
    }
    std::fill(saInUsed_.begin(), saInUsed_.end(), 0);
    std::fill(saReq_.begin(), saReq_.end(), 0);
    std::uint8_t *inUsed = saInUsed_.data();
    for (std::uint64_t m = req; m != 0; m &= m - 1) {
        const int key = std::countr_zero(m);
        saReq_[in_[key].outPort] |= std::uint64_t{1} << key;
    }

    for (int i = 0; i < numPorts_; ++i) {
        const int outPort = (i + saOffset_) % numPorts_;
        if (hasThrottle_ && now < portNextFree_[outPort]) {
            // Narrow link still serializing the previous flit. A pass
            // that only lost grants to throttling must stay awake: the
            // port frees by the passage of time alone.
            if (saReq_[outPort] != 0)
                throttledWait_ = true;
            continue;
        }
        int best = -1;
        int bestRank = 0;
        int bestDist = 0;
        for (std::uint64_t m = saReq_[outPort]; m != 0; m &= m - 1) {
            const int key = std::countr_zero(m);
            if (inUsed[key / numVcs_])
                continue;
            const InVc &ivc = in_[key];
            const Flit &flit = ivc.buf.front();
            if (!outVcHasSpace(outPort, ivc.outVc, portNode_[outPort]))
                continue;
            const int rank = arbRank(flit.cls, flit.vnet, vnPriority_);
            const int dist =
                (key - rrPtr_[outPort] + numPorts_ * numVcs_) %
                (numPorts_ * numVcs_);
            if (best < 0 || rank < bestRank ||
                (rank == bestRank && dist < bestDist)) {
                best = key;
                bestRank = rank;
                bestDist = dist;
            }
        }
        if (best < 0)
            continue;

        granted = true;
        inUsed[best / numVcs_] = 1;
        rrPtr_[outPort] = (best + 1) % (numPorts_ * numVcs_);
        if (hasThrottle_ && portInterval_[outPort] > 1)
            portNextFree_[outPort] =
                now + static_cast<Cycle>(portInterval_[outPort]);
        grantTraversal(best, outPort, now);
    }
    saOffset_ = (saOffset_ + 1) % numPorts_;
    return granted;
}

bool
Router::switchAllocateWide(Cycle now)
{
    bool granted = false;
    std::fill(saInUsed_.begin(), saInUsed_.end(), 0);
    std::uint8_t *inUsed = saInUsed_.data();

    for (int i = 0; i < numPorts_; ++i) {
        const int outPort = (i + saOffset_) % numPorts_;
        if (hasThrottle_ && now < portNextFree_[outPort]) {
            // Conservative: assume the skipped port had requesters so
            // the quiescent fast path never latches while throttled.
            throttledWait_ = true;
            continue;
        }
        int best = -1;
        int bestRank = 0;
        int bestDist = 0;
        for (int p = 0; p < numPorts_; ++p) {
            if (inUsed[p])
                continue;
            for (int v = 0; v < numVcs_; ++v) {
                const int key = p * numVcs_ + v;
                const InVc &ivc = in_[key];
                if (!ivc.active || ivc.outPort != outPort ||
                    ivc.buf.empty()) {
                    continue;
                }
                const Flit &flit = ivc.buf.front();
                if (!outVcHasSpace(outPort, ivc.outVc, portNode_[outPort]))
                    continue;
                const int rank =
                    arbRank(flit.cls, flit.vnet, vnPriority_);
                const int dist =
                    (key - rrPtr_[outPort] + numPorts_ * numVcs_) %
                    (numPorts_ * numVcs_);
                if (best < 0 || rank < bestRank ||
                    (rank == bestRank && dist < bestDist)) {
                    best = key;
                    bestRank = rank;
                    bestDist = dist;
                }
            }
        }
        if (best < 0)
            continue;

        granted = true;
        inUsed[best / numVcs_] = 1;
        rrPtr_[outPort] = (best + 1) % (numPorts_ * numVcs_);
        if (hasThrottle_ && portInterval_[outPort] > 1)
            portNextFree_[outPort] =
                now + static_cast<Cycle>(portInterval_[outPort]);
        grantTraversal(best, outPort, now);
    }
    saOffset_ = (saOffset_ + 1) % numPorts_;
    return granted;
}

void
Router::grantTraversal(int key, int outPort, Cycle now)
{
    InVc &ivc = in_[key];
    Flit flit = ivc.buf.front();
    ivc.buf.pop_front();
    if (!wide_ && ivc.buf.empty())
        occ_ &= ~(std::uint64_t{1} << key);
    --bufferedCount_;

    // The flit leaves on the allocated output VC after traversing
    // the remaining pipeline stages plus one cycle of link latency.
    const int outVc = ivc.outVc;
    flit.vc = static_cast<std::uint8_t>(outVc);
    const Cycle arrive = now + static_cast<Cycle>(stages_ - 1) + 1;
    ++stats_.switchTraversals;
    if (stats_.portFlitsSent.empty())
        stats_.portFlitsSent.assign(numPorts_, 0);
    ++stats_.portFlitsSent[outPort];

    if (portIsLink_[outPort]) {
        DR_INVARIANT(out_[outPort * numVcs_ + outVc].credits > 0,
                     "router ", id_, " port ", outPort, " vc ", outVc,
                     " switch traversal without a credit");
        --out_[outPort * numVcs_ + outVc].credits;
        env_.deliverToRouter(id_, outPort, flit, arrive);
    } else {
        env_.nodeEjectReserve(portNode_[outPort]);
        env_.deliverToNode(portNode_[outPort], flit, arrive);
    }

    // Return buffer credit to whoever feeds this input port.
    env_.creditToFeeder(id_, key / numVcs_, key % numVcs_, now + 1);

    if (flit.tail) {
        out_[outPort * numVcs_ + outVc].ownerIn = -1;
        ivc.routed = false;
        ivc.active = false;
        ivc.outPort = -1;
        ivc.outVc = -1;
        if (!wide_) {
            routed_ &= ~(std::uint64_t{1} << key);
            active_ &= ~(std::uint64_t{1} << key);
        }
    }
}

void
Router::tick(Cycle now)
{
    DR_STAMP_WRITE(*this);
    // Idle fast path: nothing buffered and nothing arriving.
    if (idle())
        return;
    if (applyArrivals(now))
        quiescent_ = false;
    if (bufferedCount_ == 0)
        return;
    if (quiescent_) {
        // Stalled: the last pass changed nothing and no input has
        // changed since, so this pass would also change nothing. Only
        // the rotating arbitration offset advances (as a grant-less
        // switchAllocate would have advanced it).
        saOffset_ = (saOffset_ + 1) % numPorts_;
        return;
    }
    throttledWait_ = false;
    const bool routed = routeCompute();
    const bool allocated = vcAllocate();
    const bool granted = switchAllocate(now);
    quiescent_ = !routed && !allocated && !granted && !throttledWait_;
}

void
Router::setPortSerialization(int port, int interval)
{
    if (interval < 1)
        fatal("router ", id_, ": serialization interval must be >= 1");
    portInterval_[port] = interval;
    hasThrottle_ = false;
    for (const int iv : portInterval_)
        hasThrottle_ = hasThrottle_ || iv > 1;
}

int
Router::freeCredits(int port) const
{
    int total = 0;
    for (int v = 0; v < numVcs_; ++v)
        total += out_[port * numVcs_ + v].credits;
    return total;
}

void
Router::debugDump(std::ostream &os) const
{
    for (int p = 0; p < numPorts_; ++p) {
        for (int v = 0; v < numVcs_; ++v) {
            const InVc &ivc = in_[p * numVcs_ + v];
            if (ivc.buf.empty() && !ivc.routed)
                continue;
            os << "R" << id_ << " in[" << p << "][" << v << "] buf="
               << ivc.buf.size() << " routed=" << ivc.routed << " active="
               << ivc.active << " outPort=" << ivc.outPort << " outVc="
               << ivc.outVc;
            if (!ivc.buf.empty()) {
                os << " frontPkt=" << ivc.buf.front().pkt
                   << (ivc.buf.front().head ? "H" : "")
                   << (ivc.buf.front().tail ? "T" : "");
            }
            os << "\n";
        }
    }
    for (int p = 0; p < numPorts_; ++p) {
        os << "R" << id_ << " out[" << p << "] credits:";
        for (int v = 0; v < numVcs_; ++v)
            os << " " << out_[p * numVcs_ + v].credits << "(o"
               << out_[p * numVcs_ + v].ownerIn << ")";
        os << "\n";
    }
}

int
Router::bufferedFlits() const
{
    int total = 0;
    for (const InVc &vc : in_)
        total += static_cast<int>(vc.buf.size());
    return total;
}

int
Router::inVcOccupancy(int port, int vc) const
{
    int total = static_cast<int>(in_[port * numVcs_ + vc].buf.size());
    const auto &queue = arrivals_[port];
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].flit.vc == vc)
            ++total;
    }
    return total;
}

int
Router::pendingCreditsFor(int port, int vc) const
{
    int total = 0;
    const auto &queue = creditArrivals_[port];
    for (std::size_t i = 0; i < queue.size(); ++i) {
        if (queue[i].vc == vc)
            ++total;
    }
    return total;
}

std::vector<BlockedHead>
Router::blockedHeads() const
{
    std::vector<BlockedHead> heads;
    for (int p = 0; p < numPorts_; ++p) {
        for (int v = 0; v < numVcs_; ++v) {
            const InVc &ivc = in_[p * numVcs_ + v];
            if (ivc.buf.empty())
                continue;
            BlockedHead head;
            head.router = id_;
            head.inPort = p;
            head.inVc = v;
            head.outPort = ivc.routed ? ivc.outPort : -1;
            head.outVc = ivc.active ? ivc.outVc : -1;
            head.pkt = ivc.buf.front().pkt;
            head.destRouter = ivc.buf.front().destRouter;
            head.buffered = static_cast<int>(ivc.buf.size());
            heads.push_back(head);
        }
    }
    return heads;
}

void
Router::debugLeakCredit(int port, int vc)
{
    if (out_[port * numVcs_ + vc].credits <= 0)
        panic("debugLeakCredit: no credit to leak on router ", id_,
              " port ", port, " vc ", vc);
    --out_[port * numVcs_ + vc].credits;
}

} // namespace dr

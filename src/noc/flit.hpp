#ifndef DR_NOC_FLIT_HPP
#define DR_NOC_FLIT_HPP

/**
 * @file
 * Flow-control units (flits) and packets. A message is fragmented into a
 * head flit plus zero or more body flits and a tail (the head may also be
 * the tail for single-flit packets). Wormhole flow control lets the flits
 * of one packet spread across multiple routers.
 */

#include <cstdint>

#include "common/types.hpp"
#include "noc/vnet.hpp"

namespace dr
{

/** Identifier of a packet in flight. */
using PacketId = std::uint64_t;

/**
 * Stable handle of an in-flight packet: an index into the Network's
 * PacketPool slab. Carried in every flit so the NI hot paths resolve
 * the parent packet with one array index instead of a hash lookup.
 * Handles are reused after the packet is delivered; PacketId stays
 * globally unique for diagnostics.
 */
using PacketHandle = std::int32_t;
constexpr PacketHandle invalidPacket = -1;

/**
 * One flow-control unit. Flits carry the routing state they need so that
 * routers never have to look up the parent packet.
 */
struct Flit
{
    PacketId pkt = 0;
    PacketHandle slot = invalidPacket; //!< PacketPool slot of the parent
    std::uint16_t seq = 0;        //!< position within the packet
    bool head = false;
    bool tail = false;
    std::uint8_t vc = 0;          //!< VC on the current link
    std::int16_t destRouter = -1; //!< router the destination NI attaches to
    std::int16_t destPort = -1;   //!< ejection port at that router
    TrafficClass cls = TrafficClass::Gpu;
    DimOrder order = DimOrder::XY;//!< dimension order chosen at injection
    std::uint8_t vcMask = 0xff;   //!< VCs the packet may use
    VirtualNet vnet = VirtualNet::Request; //!< message class (VN)
};

/**
 * A packet: a message plus its NoC-level framing. The Network owns the
 * packet table; flits reference packets by id.
 */
struct Packet
{
    Message msg;
    PacketId id = 0;
    int flits = 1;
    std::int16_t srcRouter = -1;
    std::int16_t destRouter = -1;
    std::int16_t destPort = -1;
    TrafficClass cls = TrafficClass::Gpu;
    DimOrder order = DimOrder::XY;
    std::uint8_t vcMask = 0xff;
    VirtualNet vnet = VirtualNet::Request; //!< message class (VN)
    Cycle injectedAt = 0;  //!< first flit left the NI
    Cycle queuedAt = 0;    //!< entered the NI injection buffer
};

} // namespace dr

#endif // DR_NOC_FLIT_HPP

#ifndef DR_NOC_SYNTHETIC_TRAFFIC_HPP
#define DR_NOC_SYNTHETIC_TRAFFIC_HPP

/**
 * @file
 * Synthetic NoC traffic generation in the BookSim / Garnet-standalone
 * tradition: classic destination patterns plus a driver that sweeps
 * injection rates and reports latency/throughput. Used to characterize
 * the network substrate independent of the memory system (and to show
 * that hotspot traffic — the clogging pattern — saturates far earlier
 * than uniform traffic on every topology).
 */

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"
#include "noc/network.hpp"

namespace dr
{

/** Classic synthetic destination patterns. */
enum class TrafficPattern : std::uint8_t
{
    UniformRandom,  //!< destination uniform over all other nodes
    Transpose,      //!< (x, y) -> (y, x) on the mesh coordinates
    BitComplement,  //!< destination = ~source (mod nodes)
    Hotspot,        //!< a fixed subset of nodes receives all traffic
    Neighbor,       //!< destination = source + 1 (ring order)
};

const char *trafficPatternName(TrafficPattern p);

/** Destination chooser for one pattern. */
class SyntheticTraffic
{
  public:
    /**
     * @param pattern destination pattern
     * @param nodes endpoint count
     * @param meshWidth width for coordinate-based patterns
     * @param hotspots receivers for TrafficPattern::Hotspot
     */
    SyntheticTraffic(TrafficPattern pattern, int nodes, int meshWidth,
                     std::vector<NodeId> hotspots = {});

    /** Destination for a packet from `src` (never `src` itself). */
    NodeId dest(NodeId src, Rng &rng) const;

    TrafficPattern pattern() const { return pattern_; }

  private:
    TrafficPattern pattern_;
    int nodes_;
    int meshWidth_;
    std::vector<NodeId> hotspots_;
};

/** Result of one synthetic-load measurement. */
struct SyntheticResult
{
    double offeredFlitsPerNode = 0.0;   //!< injection attempt rate
    double acceptedFlitsPerNode = 0.0;  //!< delivered throughput
    double avgLatency = 0.0;            //!< packet latency (cycles)
    std::uint64_t packetsDelivered = 0;
};

/**
 * Drive a fresh network of the given topology with the pattern at one
 * injection probability (packets/node/cycle) for `cycles` cycles.
 *
 * @param packetFlits flits per packet (e.g., 5 for 64 B replies)
 */
SyntheticResult runSyntheticLoad(TopologyKind topo, int nodes,
                                 int meshWidth, int meshHeight,
                                 TrafficPattern pattern,
                                 double injectionRate, int packetFlits,
                                 Cycle cycles, std::uint64_t seed = 1);

} // namespace dr

#endif // DR_NOC_SYNTHETIC_TRAFFIC_HPP

#include "cpu/cpu_profile.hpp"

#include <array>

#include "common/log.hpp"

namespace dr
{

namespace
{

// Rates/dependence chosen so the resulting NoC injection falls in the
// paper's CPU range and the latency-sensitivity ordering matches its
// discussion (vips most sensitive, dedup least).
const std::array<CpuProfile, 9> profiles = {{
    //  name          rate   dep   write  wsKB  shared  mlp
    {"blackscholes", 0.06, 0.30, 0.10, 512, 0.05, 4},
    {"bodytrack",    0.10, 0.50, 0.20, 768, 0.15, 4},
    {"canneal",      0.16, 0.45, 0.15, 4096, 0.10, 6},
    {"dedup",        0.18, 0.15, 0.30, 2048, 0.20, 8},
    {"ferret",       0.12, 0.55, 0.15, 1024, 0.15, 4},
    {"fluidanimate", 0.10, 0.40, 0.25, 1024, 0.10, 4},
    {"swaptions",    0.05, 0.25, 0.10, 256, 0.05, 4},
    {"vips",         0.14, 0.80, 0.20, 1536, 0.10, 2},
    {"x264",         0.12, 0.60, 0.25, 1024, 0.20, 3},
}};

} // namespace

const CpuProfile &
cpuProfileFor(const std::string &name)
{
    for (const auto &p : profiles) {
        if (p.name == name)
            return p;
    }
    fatal("unknown CPU benchmark '", name, "'");
}

std::vector<std::string>
cpuBenchmarkNames()
{
    std::vector<std::string> names;
    names.reserve(profiles.size());
    for (const auto &p : profiles)
        names.push_back(p.name);
    return names;
}

} // namespace dr

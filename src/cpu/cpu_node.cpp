#include "cpu/cpu_node.hpp"

#include "common/log.hpp"

namespace dr
{

namespace
{

/** Private CPU address-space bases keep cores from falsely sharing. */
constexpr Addr cpuPrivateBase = 0x40000000ull;   // 1 GB
constexpr Addr cpuPrivateStride = 0x4000000ull;  // 64 MB per core
constexpr Addr cpuSharedBase = 0x80000000ull;    // 2 GB

} // namespace

CpuNode::CpuNode(NodeId nodeId, int coreIdx, const SystemConfig &cfg,
                 const CpuProfile &profile, Interconnect &ic,
                 const AddressMap &map)
    : nodeId_(nodeId), coreIdx_(coreIdx), cfg_(cfg), profile_(profile),
      ic_(ic), map_(map),
      rng_(cfg.seed * 131 + static_cast<std::uint64_t>(nodeId)),
      l1_({cfg.cpu.l1SizeKB * 1024, cfg.cpu.l1Assoc, cfg.cpu.lineBytes}),
      nextReqId_((static_cast<std::uint64_t>(nodeId) << 48) | 1u)
{
}

Addr
CpuNode::genAddress()
{
    const Addr wsBytes =
        static_cast<Addr>(profile_.workingSetKB) * 1024;
    if (rng_.chance(profile_.sharedFraction)) {
        // CPU-shared region (read-mostly metadata, queues, ...).
        const Addr sharedBytes = wsBytes / 4 + cfg_.cpu.lineBytes;
        return cpuSharedBase + rng_.below(sharedBytes);
    }
    const Addr base = cpuPrivateBase + cpuPrivateStride * coreIdx_;
    // Mix of sequential streaming and random pointer chasing.
    if (rng_.chance(0.5)) {
        seqCursor_ = (seqCursor_ + cfg_.cpu.lineBytes) % wsBytes;
        return base + seqCursor_;
    }
    return base + rng_.below(wsBytes);
}

void
CpuNode::receive(Cycle now)
{
    while (ic_.hasMessage(nodeId_, NetKind::Reply)) {
        const Message msg = ic_.popMessage(nodeId_, NetKind::Reply);
        if (msg.type != MsgType::ReadReply && msg.type != MsgType::WriteAck)
            panic("CPU node received unexpected message type ",
                  msgTypeName(msg.type));
        auto it = inFlight_.find(msg.id);
        if (it == inFlight_.end())
            continue;
        stats_.requestLatency.sample(
            static_cast<double>(now - it->second.issued));
        if (blocked_ && msg.id == blockingReq_)
            blocked_ = false;
        inFlight_.erase(it);
    }
}

void
CpuNode::maybeAccess(Cycle now)
{
    if (!rng_.chance(profile_.accessRate))
        return;
    ++stats_.accesses;
    const Addr addr = genAddress();
    const Addr line = addr & ~static_cast<Addr>(cfg_.cpu.lineBytes - 1);
    const bool write = rng_.chance(profile_.writeFraction);

    if (l1_.access(line)) {
        ++stats_.l1Hits;
        return;  // hits cost nothing extra in the interval model
    }
    if (static_cast<int>(inFlight_.size()) >= profile_.maxOutstanding)
        return;  // MLP limit: the access re-issues later, modelled as lost

    Message req;
    req.type = write ? MsgType::WriteReq : MsgType::ReadReq;
    req.cls = TrafficClass::Cpu;
    req.addr = line;
    req.src = nodeId_;
    req.dst = map_.nodeOf(line);
    req.requester = nodeId_;
    req.id = nextReqId_++;
    req.created = now;
    if (!ic_.canSend(req))
        return;  // injection buffer full; access lost this cycle
    ic_.send(req, now);
    ++stats_.requestsSent;
    if (write)
        ++stats_.writesSent;

    const bool blocking = !write && rng_.chance(profile_.depFraction);
    inFlight_[req.id] = {now, blocking};
    if (blocking) {
        blocked_ = true;
        blockingReq_ = req.id;
    }
    if (!write)
        l1_.insert(line, {});  // allocate on (read) miss
}

void
CpuNode::tick(Cycle now)
{
    DR_PHASE_ASSERT_DOMAIN(domain_);
    receive(now);
    if (blocked_) {
        ++stats_.blockedCycles;
        return;
    }
    ++stats_.retired;
    maybeAccess(now);
}

double
CpuNode::ipc(Cycle cycles) const
{
    if (cycles == 0)
        return 0.0;
    return static_cast<double>(stats_.retired.value()) /
           static_cast<double>(cycles);
}

} // namespace dr

#ifndef DR_CPU_CPU_PROFILE_HPP
#define DR_CPU_CPU_PROFILE_HPP

/**
 * @file
 * PARSEC-like CPU workload profiles. The paper injects CPU traffic from
 * Netrace traces (Table II); offline we substitute per-benchmark
 * profiles that drive a dependency-aware injection model with the same
 * observable characteristics: low injection rates (0.013–0.084
 * flits/cycle vs 0.324–0.704 for the GPU benchmarks) and
 * benchmark-specific latency sensitivity (vips is latency-sensitive,
 * dedup is not — Figure 13's discussion).
 */

#include <string>
#include <vector>

namespace dr
{

/** Parameters of one CPU benchmark. */
struct CpuProfile
{
    std::string name;
    double accessRate = 0.1;    //!< L1 accesses per unblocked cycle
    double depFraction = 0.5;   //!< misses that stall the core (MLP⁻¹)
    double writeFraction = 0.2; //!< store ratio
    int workingSetKB = 256;     //!< per-core footprint
    double sharedFraction = 0.1;//!< accesses to the CPU-shared region
    int maxOutstanding = 8;     //!< MLP upper bound
};

/** Profile for a PARSEC benchmark name; fatal() on unknown names. */
const CpuProfile &cpuProfileFor(const std::string &name);

/** All known CPU benchmark names. */
std::vector<std::string> cpuBenchmarkNames();

} // namespace dr

#endif // DR_CPU_CPU_PROFILE_HPP

#ifndef DR_CPU_CPU_NODE_HPP
#define DR_CPU_CPU_NODE_HPP

/**
 * @file
 * A latency-sensitive CPU core endpoint. An interval model retires one
 * instruction per unblocked cycle; L1 misses become NoC requests, and a
 * profile-dependent fraction of misses are *dependent* loads that stall
 * retirement until the reply returns — which is how memory-node
 * blocking (clogging) translates into CPU slowdown.
 */

#include <deque>
#include <unordered_map>

#include "common/config.hpp"
#include "common/ownership.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "cpu/cpu_profile.hpp"
#include "mem/address_map.hpp"
#include "mem/cache.hpp"
#include "noc/interconnect.hpp"

namespace dr
{

/** CPU core statistics. */
struct CpuNodeStats
{
    Counter retired;          //!< instructions retired
    Counter accesses;
    Counter l1Hits;
    Counter requestsSent;
    Counter writesSent;
    Counter blockedCycles;    //!< retirement stalled on a dependent load
    Average requestLatency;   //!< inject to reply (network + memory)
};

/**
 * One CPU core endpoint.
 *
 * All mutable state belongs to this one core, so the object is
 * DR_DOMAIN_OWNED; tick() runs in the endpoint compute phase, pinned
 * to the domain of the node's attach router (DESIGN.md §13).
 */
class DR_DOMAIN_OWNED CpuNode
{
  public:
    CpuNode(NodeId nodeId, int coreIdx, const SystemConfig &cfg,
            const CpuProfile &profile, Interconnect &ic,
            const AddressMap &map);

    void tick(Cycle now) DR_ENDPOINT_PHASE;

    /** Endpoint compute domain (engine partition time; -1 = any). */
    void setDomain(int domain) { domain_ = domain; }

    /**
     * Earliest future cycle at which ticking this core could have any
     * effect, assuming no new reply arrives (idle-skip watermark,
     * DESIGN.md §13). An unblocked core retires every cycle, so it is
     * never skippable; a blocked core only wakes on a reply, which the
     * network quiescence vote plus the NI ready-queue check cover.
     */
    Cycle nextEventCycle(Cycle now) const
    {
        if (ic_.hasMessage(nodeId_, NetKind::Reply))
            return now + 1;
        return blocked_ ? kNeverCycle : now + 1;
    }

    /**
     * Account for `cycles` skipped idle cycles. Only a blocked core is
     * ever skipped, and a blocked tick's sole effect is the
     * blockedCycles counter — compensate it to keep skip on/off
     * bit-identical.
     */
    void onSkip(Cycle cycles)
    {
        if (blocked_)
            stats_.blockedCycles += cycles;
    }

    NodeId nodeId() const { return nodeId_; }
    const CpuNodeStats &stats() const { return stats_; }
    void resetStats() { stats_ = CpuNodeStats{}; }

    /** Retired instructions per cycle over the measured window. */
    double ipc(Cycle cycles) const;

    int outstanding() const { return static_cast<int>(inFlight_.size()); }

  private:
    struct InFlightReq
    {
        Cycle issued = 0;
        bool blocking = false;
    };

    Addr genAddress();
    void receive(Cycle now) DR_ENDPOINT_PHASE;
    void maybeAccess(Cycle now) DR_ENDPOINT_PHASE;

    NodeId nodeId_;
    int coreIdx_;
    const SystemConfig &cfg_;
    CpuProfile profile_;
    Interconnect &ic_;
    const AddressMap &map_;
    Rng rng_ DR_DOMAIN_OWNED;

    struct NoMeta
    {};
    SetAssocCache<NoMeta> l1_ DR_DOMAIN_OWNED;

    // drlint-allow(unordered-container): lookup by request id
    // only; completion order comes from reply arrival.
    std::unordered_map<std::uint64_t, InFlightReq> inFlight_ DR_DOMAIN_OWNED;
    std::uint64_t nextReqId_ DR_DOMAIN_OWNED;
    bool blocked_ DR_DOMAIN_OWNED = false;
    std::uint64_t blockingReq_ DR_DOMAIN_OWNED = 0;
    Addr seqCursor_ DR_DOMAIN_OWNED = 0;

    CpuNodeStats stats_ DR_DOMAIN_OWNED;
    int domain_ = -1;
};

} // namespace dr

#endif // DR_CPU_CPU_NODE_HPP

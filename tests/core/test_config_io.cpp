#include <gtest/gtest.h>

#include <sstream>

#include "core/config_io.hpp"

namespace dr
{
namespace
{

TEST(ConfigIo, AppliesScalarOptions)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "gpu.l1SizeKB", "64");
    applyConfigOption(cfg, "noc.bandwidthScale", "2.0");
    applyConfigOption(cfg, "sim.cycles", "12345");
    EXPECT_EQ(cfg.gpu.l1SizeKB, 64);
    EXPECT_DOUBLE_EQ(cfg.noc.bandwidthScale, 2.0);
    EXPECT_EQ(cfg.simCycles, 12345u);
}

TEST(ConfigIo, AppliesEnumOptions)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "mechanism", "delegated-replies");
    applyConfigOption(cfg, "layout", "B");
    applyConfigOption(cfg, "noc.topology", "dragonfly");
    applyConfigOption(cfg, "noc.requestRouting", "DyXY");
    applyConfigOption(cfg, "gpu.l1Org", "dyneb");
    applyConfigOption(cfg, "gpu.ctaSchedule", "distributed");
    EXPECT_EQ(cfg.mechanism, Mechanism::DelegatedReplies);
    EXPECT_EQ(cfg.layout, ChipLayout::LayoutB);
    EXPECT_EQ(cfg.noc.topology, TopologyKind::Dragonfly);
    EXPECT_EQ(cfg.noc.requestRouting, RoutingKind::DyXY);
    EXPECT_EQ(cfg.gpu.l1Org, L1Organization::DynEB);
    EXPECT_EQ(cfg.gpu.ctaSchedule, CtaSchedule::Distributed);
}

TEST(ConfigIo, AppliesNocThreads)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.noc.threads, 0);  // auto (DR_NOC_THREADS or 1)
    applyConfigOption(cfg, "noc.threads", "4");
    EXPECT_EQ(cfg.noc.threads, 4);
    cfg.validate();
    cfg.noc.threads = -1;
    EXPECT_DEATH(cfg.validate(), "noc.threads");
}

TEST(ConfigIo, AppliesBooleans)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "dr.delegateAlways", "true");
    applyConfigOption(cfg, "noc.sharedPhysical", "1");
    EXPECT_TRUE(cfg.dr.delegateAlways);
    EXPECT_TRUE(cfg.noc.sharedPhysical);
    applyConfigOption(cfg, "dr.delegateAlways", "false");
    EXPECT_FALSE(cfg.dr.delegateAlways);
}

TEST(ConfigIo, AppliesVnetOptions)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "noc.vnets", "true");
    applyConfigOption(cfg, "noc.vnetRequestVcs", "2");
    applyConfigOption(cfg, "noc.vnetForwardVcs", "2");
    applyConfigOption(cfg, "noc.vnetReplyVcs", "3");
    applyConfigOption(cfg, "noc.vnetDelegatedVcs", "1");
    EXPECT_TRUE(cfg.noc.vnets);
    EXPECT_EQ(cfg.noc.vnetRequestVcs, 2);
    EXPECT_EQ(cfg.noc.vnetForwardVcs, 2);
    EXPECT_EQ(cfg.noc.vnetReplyVcs, 3);
    EXPECT_EQ(cfg.noc.vnetDelegatedVcs, 1);
    cfg.noc.vcsPerNet = 4;
    cfg.validate();
}

TEST(ConfigIo, ParsesStreamWithCommentsAndBlanks)
{
    SystemConfig cfg = SystemConfig::makePaper();
    std::istringstream in(
        "# an experiment\n"
        "mechanism = rp   # probes\n"
        "\n"
        "  gpu.frqEntries = 16\n");
    parseConfig(cfg, in);
    EXPECT_EQ(cfg.mechanism, Mechanism::RealisticProbing);
    EXPECT_EQ(cfg.gpu.frqEntries, 16);
}

TEST(ConfigIo, AppliesDebugOptions)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "debug.watchdogCycles", "50000");
    applyConfigOption(cfg, "debug.watchdogAbort", "false");
    applyConfigOption(cfg, "debug.mshrLeakCycles", "123456");
    applyConfigOption(cfg, "debug.sweepCycles", "1024");
    EXPECT_EQ(cfg.debug.watchdogCycles, 50000u);
    EXPECT_FALSE(cfg.debug.watchdogAbort);
    EXPECT_EQ(cfg.debug.mshrLeakCycles, 123456u);
    EXPECT_EQ(cfg.debug.sweepCycles, 1024u);
}

TEST(ConfigIo, RejectsTrailingGarbageOnNumbers)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "gpu.l1SizeKB", "64k"),
                 "expects an integer");
    EXPECT_DEATH(applyConfigOption(cfg, "noc.bandwidthScale", "1.5x"),
                 "expects a number");
    EXPECT_DEATH(applyConfigOption(cfg, "gpu.l1SizeKB", ""),
                 "expects an integer");
}

TEST(ConfigIo, RejectsNegativeCycleCounts)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "debug.watchdogCycles", "-5"),
                 "non-negative cycle count");
    EXPECT_DEATH(applyConfigOption(cfg, "sim.cycles", "-1"),
                 "non-negative cycle count");
}

TEST(ConfigIoDeath, UnknownKeyIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "gpu.l1SizeMB", "1"),
                 "unknown option");
}

TEST(ConfigIoDeath, BadIntegerIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "gpu.l1SizeKB", "lots"),
                 "expects an integer");
}

TEST(ConfigIoDeath, BadEnumIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "noc.topology", "torus"),
                 "unknown topology");
}

TEST(ConfigIoDeath, MissingEqualsIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    std::istringstream in("mechanism baseline\n");
    EXPECT_DEATH(parseConfig(cfg, in), "no '='");
}

TEST(ConfigIo, RoundTripsEveryOption)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.layout = ChipLayout::LayoutC;
    cfg.noc.topology = TopologyKind::FlattenedButterfly;
    cfg.noc.requestRouting = RoutingKind::Hare;
    cfg.noc.bandwidthScale = 1.5;
    cfg.noc.sharedPhysical = true;
    cfg.gpu.l1Org = L1Organization::DcL1;
    cfg.gpu.ctaSchedule = CtaSchedule::Distributed;
    cfg.dr.delegateAlways = true;
    cfg.rp.probeCount = 4;
    cfg.seed = 99;

    std::ostringstream out;
    writeConfig(cfg, out);
    SystemConfig parsed = SystemConfig::makePaper();
    std::istringstream in(out.str());
    parseConfig(parsed, in);

    std::ostringstream out2;
    writeConfig(parsed, out2);
    EXPECT_EQ(out.str(), out2.str());
    EXPECT_EQ(parsed.mechanism, cfg.mechanism);
    EXPECT_EQ(parsed.layout, cfg.layout);
    EXPECT_EQ(parsed.noc.topology, cfg.noc.topology);
    EXPECT_EQ(parsed.rp.probeCount, cfg.rp.probeCount);
    EXPECT_DOUBLE_EQ(parsed.noc.bandwidthScale, cfg.noc.bandwidthScale);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include <sstream>

#include "core/config_io.hpp"

namespace dr
{
namespace
{

TEST(ConfigIo, AppliesScalarOptions)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "gpu.l1SizeKB", "64");
    applyConfigOption(cfg, "noc.bandwidthScale", "2.0");
    applyConfigOption(cfg, "sim.cycles", "12345");
    EXPECT_EQ(cfg.gpu.l1SizeKB, 64);
    EXPECT_DOUBLE_EQ(cfg.noc.bandwidthScale, 2.0);
    EXPECT_EQ(cfg.simCycles, 12345u);
}

TEST(ConfigIo, AppliesEnumOptions)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "mechanism", "delegated-replies");
    applyConfigOption(cfg, "layout", "B");
    applyConfigOption(cfg, "noc.topology", "dragonfly");
    applyConfigOption(cfg, "noc.requestRouting", "DyXY");
    applyConfigOption(cfg, "gpu.l1Org", "dyneb");
    applyConfigOption(cfg, "gpu.ctaSchedule", "distributed");
    EXPECT_EQ(cfg.mechanism, Mechanism::DelegatedReplies);
    EXPECT_EQ(cfg.layout, ChipLayout::LayoutB);
    EXPECT_EQ(cfg.noc.topology, TopologyKind::Dragonfly);
    EXPECT_EQ(cfg.noc.requestRouting, RoutingKind::DyXY);
    EXPECT_EQ(cfg.gpu.l1Org, L1Organization::DynEB);
    EXPECT_EQ(cfg.gpu.ctaSchedule, CtaSchedule::Distributed);
}

TEST(ConfigIo, AppliesNocThreads)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.noc.threads, 0);  // auto (DR_NOC_THREADS or 1)
    applyConfigOption(cfg, "noc.threads", "4");
    EXPECT_EQ(cfg.noc.threads, 4);
    cfg.validate();
    cfg.noc.threads = -1;
    EXPECT_DEATH(cfg.validate(), "noc.threads");
}

TEST(ConfigIo, AppliesBooleans)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "dr.delegateAlways", "true");
    applyConfigOption(cfg, "noc.sharedPhysical", "1");
    EXPECT_TRUE(cfg.dr.delegateAlways);
    EXPECT_TRUE(cfg.noc.sharedPhysical);
    applyConfigOption(cfg, "dr.delegateAlways", "false");
    EXPECT_FALSE(cfg.dr.delegateAlways);
}

TEST(ConfigIo, AppliesVnetOptions)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "noc.vnets", "true");
    applyConfigOption(cfg, "noc.vnetRequestVcs", "2");
    applyConfigOption(cfg, "noc.vnetForwardVcs", "2");
    applyConfigOption(cfg, "noc.vnetReplyVcs", "3");
    applyConfigOption(cfg, "noc.vnetDelegatedVcs", "1");
    EXPECT_TRUE(cfg.noc.vnets);
    EXPECT_EQ(cfg.noc.vnetRequestVcs, 2);
    EXPECT_EQ(cfg.noc.vnetForwardVcs, 2);
    EXPECT_EQ(cfg.noc.vnetReplyVcs, 3);
    EXPECT_EQ(cfg.noc.vnetDelegatedVcs, 1);
    cfg.noc.vcsPerNet = 4;
    cfg.validate();
}

TEST(ConfigIo, ParsesStreamWithCommentsAndBlanks)
{
    SystemConfig cfg = SystemConfig::makePaper();
    std::istringstream in(
        "# an experiment\n"
        "mechanism = rp   # probes\n"
        "\n"
        "  gpu.frqEntries = 16\n");
    parseConfig(cfg, in);
    EXPECT_EQ(cfg.mechanism, Mechanism::RealisticProbing);
    EXPECT_EQ(cfg.gpu.frqEntries, 16);
}

TEST(ConfigIo, AppliesDebugOptions)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "debug.watchdogCycles", "50000");
    applyConfigOption(cfg, "debug.watchdogAbort", "false");
    applyConfigOption(cfg, "debug.mshrLeakCycles", "123456");
    applyConfigOption(cfg, "debug.sweepCycles", "1024");
    EXPECT_EQ(cfg.debug.watchdogCycles, 50000u);
    EXPECT_FALSE(cfg.debug.watchdogAbort);
    EXPECT_EQ(cfg.debug.mshrLeakCycles, 123456u);
    EXPECT_EQ(cfg.debug.sweepCycles, 1024u);
}

TEST(ConfigIo, RejectsTrailingGarbageOnNumbers)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "gpu.l1SizeKB", "64k"),
                 "expects an integer");
    EXPECT_DEATH(applyConfigOption(cfg, "noc.bandwidthScale", "1.5x"),
                 "expects a number");
    EXPECT_DEATH(applyConfigOption(cfg, "gpu.l1SizeKB", ""),
                 "expects an integer");
}

TEST(ConfigIo, RejectsNegativeCycleCounts)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "debug.watchdogCycles", "-5"),
                 "non-negative cycle count");
    EXPECT_DEATH(applyConfigOption(cfg, "sim.cycles", "-1"),
                 "non-negative cycle count");
}

TEST(ConfigIoDeath, UnknownKeyIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "gpu.l1SizeMB", "1"),
                 "unknown option");
}

TEST(ConfigIoDeath, BadIntegerIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "gpu.l1SizeKB", "lots"),
                 "expects an integer");
}

TEST(ConfigIoDeath, BadEnumIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_DEATH(applyConfigOption(cfg, "noc.topology", "torus"),
                 "unknown topology");
}

TEST(ConfigIoDeath, MissingEqualsIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    std::istringstream in("mechanism baseline\n");
    EXPECT_DEATH(parseConfig(cfg, in), "no '='");
}

TEST(ConfigIo, RoundTripsEveryOption)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.layout = ChipLayout::LayoutC;
    cfg.noc.topology = TopologyKind::FlattenedButterfly;
    cfg.noc.requestRouting = RoutingKind::Hare;
    cfg.noc.bandwidthScale = 1.5;
    cfg.noc.sharedPhysical = true;
    cfg.gpu.l1Org = L1Organization::DcL1;
    cfg.gpu.ctaSchedule = CtaSchedule::Distributed;
    cfg.dr.delegateAlways = true;
    cfg.rp.probeCount = 4;
    cfg.seed = 99;

    std::ostringstream out;
    writeConfig(cfg, out);
    SystemConfig parsed = SystemConfig::makePaper();
    std::istringstream in(out.str());
    parseConfig(parsed, in);

    std::ostringstream out2;
    writeConfig(parsed, out2);
    EXPECT_EQ(out.str(), out2.str());
    EXPECT_EQ(parsed.mechanism, cfg.mechanism);
    EXPECT_EQ(parsed.layout, cfg.layout);
    EXPECT_EQ(parsed.noc.topology, cfg.noc.topology);
    EXPECT_EQ(parsed.rp.probeCount, cfg.rp.probeCount);
    EXPECT_DOUBLE_EQ(parsed.noc.bandwidthScale, cfg.noc.bandwidthScale);
}

TEST(ConfigIo, AppliesChipletOptions)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "noc.topology", "chiplet-mesh");
    applyConfigOption(cfg, "noc.chipletsX", "2");
    applyConfigOption(cfg, "noc.chipletsY", "2");
    applyConfigOption(cfg, "noc.chipletSubW", "4");
    applyConfigOption(cfg, "noc.chipletSubH", "4");
    applyConfigOption(cfg, "noc.chipletLinksPerEdge", "2");
    applyConfigOption(cfg, "noc.interposerChannelBytes", "8");
    applyConfigOption(cfg, "noc.interposerLatency", "6");
    applyConfigOption(cfg, "noc.requestRouting", "chiplet");
    EXPECT_EQ(cfg.noc.topology, TopologyKind::ChipletMesh);
    EXPECT_EQ(cfg.noc.chipletsX, 2);
    EXPECT_EQ(cfg.noc.chipletLinksPerEdge, 2);
    EXPECT_EQ(cfg.noc.interposerChannelBytes, 8);
    EXPECT_EQ(cfg.noc.interposerLatency, 6);
    EXPECT_EQ(cfg.noc.requestRouting, RoutingKind::ChipletHierarchical);
    // 16-byte flits over 8-byte interposer channels: 2 cycles/flit.
    EXPECT_EQ(cfg.noc.interposerSerializationCycles(), 2);
    cfg.noc.vcsPerNet = 3;
    cfg.validate();
}

TEST(ConfigIo, AppliesMemPlacementList)
{
    SystemConfig cfg = SystemConfig::makePaper();
    applyConfigOption(cfg, "mem.placement", "0, 9,18,27,36,45,54,63");
    ASSERT_EQ(cfg.mem.placement.size(), 8u);
    EXPECT_EQ(cfg.mem.placement.front(), 0);
    EXPECT_EQ(cfg.mem.placement.back(), 63);
    cfg.validate();
    applyConfigOption(cfg, "mem.placement", "");
    EXPECT_TRUE(cfg.mem.placement.empty());
}

TEST(ConfigIo, RoundTripsChipletAndPlacement)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.topology = TopologyKind::ChipletMesh;
    cfg.noc.chipletsX = 2;
    cfg.noc.chipletsY = 2;
    cfg.noc.chipletSubW = 4;
    cfg.noc.chipletSubH = 4;
    cfg.noc.chipletLinksPerEdge = 1;
    cfg.noc.interposerChannelBytes = 8;
    cfg.noc.interposerLatency = 2;
    cfg.mem.placement = {3, 11, 19, 27, 35, 43, 51, 59};

    std::ostringstream out;
    writeConfig(cfg, out);
    SystemConfig parsed = SystemConfig::makePaper();
    std::istringstream in(out.str());
    parseConfig(parsed, in);

    std::ostringstream out2;
    writeConfig(parsed, out2);
    EXPECT_EQ(out.str(), out2.str());
    EXPECT_EQ(parsed.noc.topology, TopologyKind::ChipletMesh);
    EXPECT_EQ(parsed.noc.chipletLinksPerEdge, 1);
    EXPECT_EQ(parsed.mem.placement, cfg.mem.placement);
}

TEST(ConfigIoDeath, ChipletDimensionMismatchIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.topology = TopologyKind::ChipletMesh;
    cfg.noc.chipletsX = 2;
    cfg.noc.chipletsY = 2;
    cfg.noc.chipletSubW = 3;  // 2*3 != meshWidth 8
    cfg.noc.chipletSubH = 4;
    EXPECT_DEATH(cfg.validate(), "does not compose");
}

TEST(ConfigIoDeath, MemPlacementDuplicateIsFatal)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mem.placement = {1, 1, 2, 3, 4, 5, 6, 7};
    EXPECT_DEATH(cfg.validate(), "listed twice");
}

} // namespace
} // namespace dr

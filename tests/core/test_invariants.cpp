#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/hetero_system.hpp"

namespace dr
{
namespace
{

/** Property-style invariants that must hold under every mechanism. */
class MechanismInvariants : public ::testing::TestWithParam<Mechanism>
{
  protected:
    SystemConfig
    cfg() const
    {
        SystemConfig c = SystemConfig::makePaper();
        c.mechanism = GetParam();
        c.warmupCycles = 4000;
        c.simCycles = 10000;
        return c;
    }
};

TEST_P(MechanismInvariants, EveryCoreMakesProgress)
{
    HeteroSystem sys(cfg(), "SRAD", "ferret");
    sys.run();
    for (int i = 0; i < sys.gpuCoreCount(); ++i) {
        EXPECT_GT(sys.gpuCore(i).stats().instructions.value(), 0u)
            << "GPU core " << i << " starved";
    }
    for (int i = 0; i < sys.cpuCoreCount(); ++i) {
        EXPECT_GT(sys.cpuCore(i).stats().retired.value(), 0u)
            << "CPU core " << i << " starved";
    }
}

TEST_P(MechanismInvariants, DelegationsResolveOrRemainBounded)
{
    HeteroSystem sys(cfg(), "2DCON", "canneal");
    sys.run();
    std::uint64_t delegations = 0;
    for (int i = 0; i < sys.memNodeCount(); ++i)
        delegations += sys.memNode(i).stats().delegations.value();
    std::uint64_t resolved = 0;
    int inFrq = 0;
    for (int i = 0; i < sys.gpuCoreCount(); ++i) {
        const auto &s = sys.gpuCore(i).stats();
        resolved += s.frqRemoteHits.value() + s.frqDelayedHits.value() +
                    s.frqRemoteMisses.value();
        inFrq += sys.gpuCore(i).frqOccupancy();
    }
    // Every delegated reply is eventually received and classified; the
    // difference is bounded by what is still in flight (FRQs plus
    // network capacity). Stats were reset after warmup, so warmup
    // leftovers can make resolved slightly exceed delegations.
    const std::uint64_t networkBound =
        static_cast<std::uint64_t>(sys.gpuCoreCount()) *
        (sys.config().gpu.frqEntries + 40);
    if (delegations > resolved) {
        EXPECT_LE(delegations - resolved, networkBound);
    }
}

TEST_P(MechanismInvariants, L1HitsPlusMissesEqualLoads)
{
    HeteroSystem sys(cfg(), "MM", "vips");
    sys.run();
    for (int i = 0; i < sys.gpuCoreCount(); ++i) {
        const auto &s = sys.gpuCore(i).stats();
        EXPECT_EQ(s.l1Hits.value() + s.l1Misses.value(), s.loads.value());
    }
}

TEST_P(MechanismInvariants, BlockingRatesAreProbabilities)
{
    HeteroSystem sys(cfg(), "HS", "x264");
    sys.run();
    for (int i = 0; i < sys.memNodeCount(); ++i) {
        EXPECT_GE(sys.memNode(i).blockingRate(), 0.0);
        EXPECT_LE(sys.memNode(i).blockingRate(), 1.0);
    }
}

TEST_P(MechanismInvariants, OnlyDrDelegatesOnlyRpProbes)
{
    HeteroSystem sys(cfg(), "2DCON", "dedup");
    const RunResults r = sys.run();
    switch (GetParam()) {
      case Mechanism::Baseline:
        EXPECT_EQ(r.delegations, 0u);
        EXPECT_EQ(r.probesSent, 0u);
        break;
      case Mechanism::RealisticProbing:
        EXPECT_EQ(r.delegations, 0u);
        EXPECT_GT(r.probesSent, 0u);
        break;
      case Mechanism::DelegatedReplies:
        EXPECT_GT(r.delegations, 0u);
        EXPECT_EQ(r.probesSent, 0u);
        break;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismInvariants,
    ::testing::Values(Mechanism::Baseline, Mechanism::RealisticProbing,
                      Mechanism::DelegatedReplies),
    [](const ::testing::TestParamInfo<Mechanism> &tpi) {
        return std::string(mechanismName(tpi.param));
    });

TEST(SystemStress, DragonflyDoesNotDeadlockUnderDr)
{
    // VC phase escalation must keep the dragonfly deadlock-free under
    // heavy delegated traffic: delivery must continue to the very end.
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.noc.topology = TopologyKind::Dragonfly;
    cfg.warmupCycles = 0;
    cfg.simCycles = 1;
    HeteroSystem sys(cfg, "2DCON", "canneal");
    std::uint64_t lastDelivered = 0;
    for (int chunk = 0; chunk < 10; ++chunk) {
        sys.advance(3000);
        const std::uint64_t delivered =
            sys.interconnect()
                .net(NetKind::Reply)
                .stats()
                .packetsDelivered.value();
        EXPECT_GT(delivered, lastDelivered)
            << "no reply progress in chunk " << chunk;
        lastDelivered = delivered;
    }
}

TEST(SystemStress, SharedNetworkDoesNotDeadlockUnderDr)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.noc.sharedPhysical = true;
    cfg.noc.sharedReqVcs = 1;
    cfg.noc.sharedReplyVcs = 1;
    cfg.warmupCycles = 0;
    cfg.simCycles = 1;
    HeteroSystem sys(cfg, "HS", "bodytrack");
    std::uint64_t lastDelivered = 0;
    for (int chunk = 0; chunk < 8; ++chunk) {
        sys.advance(3000);
        const std::uint64_t delivered = sys.interconnect()
                                            .net(NetKind::Reply)
                                            .stats()
                                            .packetsDelivered.value();
        EXPECT_GT(delivered, lastDelivered);
        lastDelivered = delivered;
    }
}

TEST(SystemStress, DifferentSeedsDiverge)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.warmupCycles = 2000;
    cfg.simCycles = 5000;
    cfg.seed = 1;
    const RunResults a = runWorkload(cfg, "BT", "dedup");
    cfg.seed = 2;
    const RunResults b = runWorkload(cfg, "BT", "dedup");
    // CPU traffic is stochastic per seed; the runs must not be
    // accidentally identical.
    EXPECT_NE(a.cpuLatency, b.cpuLatency);
}

TEST(SystemStress, TinyInjectionBuffersStillDrain)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.noc.memInjBufferFlits = 9;  // exactly one GPU reply
    cfg.noc.coreInjBufferFlits = 9;
    cfg.warmupCycles = 2000;
    cfg.simCycles = 6000;
    const RunResults r = runWorkload(cfg, "SRAD", "fluidanimate");
    EXPECT_GT(r.gpuIpc, 0.05);
}

TEST(SystemStress, SingleVcPerNetworkWorks)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.vcsPerNet = 1;
    cfg.warmupCycles = 2000;
    cfg.simCycles = 6000;
    const RunResults r = runWorkload(cfg, "LPS", "x264");
    EXPECT_GT(r.gpuIpc, 0.05);
}

} // namespace
} // namespace dr

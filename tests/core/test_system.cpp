#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/hetero_system.hpp"

namespace dr
{
namespace
{

SystemConfig
quickCfg(Mechanism m = Mechanism::Baseline)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = m;
    cfg.warmupCycles = 2000;
    cfg.simCycles = 6000;
    return cfg;
}

TEST(System, BaselineRunsAndProducesWork)
{
    HeteroSystem sys(quickCfg(), "HS", "blackscholes");
    const RunResults r = sys.run();
    EXPECT_GT(r.gpuIpc, 0.1);
    EXPECT_GT(r.cpuIpc, 0.05);
    EXPECT_GT(r.cpuLatency, 10.0);
    EXPECT_GT(r.l1Misses, 100u);
    EXPECT_GT(r.gpuDataRate, 0.0);
}

TEST(System, BaselineNeverDelegates)
{
    HeteroSystem sys(quickCfg(Mechanism::Baseline), "HS", "dedup");
    const RunResults r = sys.run();
    EXPECT_EQ(r.delegations, 0u);
    EXPECT_EQ(r.probesSent, 0u);
}

TEST(System, DelegatedRepliesDelegatesUnderClogging)
{
    SystemConfig cfg = quickCfg(Mechanism::DelegatedReplies);
    cfg.warmupCycles = 8000;
    cfg.simCycles = 12000;
    HeteroSystem sys(cfg, "HS", "blackscholes");
    const RunResults r = sys.run();
    EXPECT_GT(r.delegations, 50u);
    EXPECT_GT(r.frqRemoteHits, 10u);
    // Remote hit rate should be substantial (paper: 74.4%).
    EXPECT_GT(r.remoteHitRate(), 0.3);
}

TEST(System, RpProbes)
{
    HeteroSystem sys(quickCfg(Mechanism::RealisticProbing), "HS",
                     "blackscholes");
    const RunResults r = sys.run();
    EXPECT_GT(r.probesSent, 100u);
    EXPECT_EQ(r.delegations, 0u);
}

TEST(System, DeterministicForEqualSeeds)
{
    const RunResults a =
        runWorkload(quickCfg(Mechanism::DelegatedReplies), "2DCON",
                    "canneal");
    const RunResults b =
        runWorkload(quickCfg(Mechanism::DelegatedReplies), "2DCON",
                    "canneal");
    EXPECT_DOUBLE_EQ(a.gpuIpc, b.gpuIpc);
    EXPECT_DOUBLE_EQ(a.cpuLatency, b.cpuLatency);
    EXPECT_EQ(a.delegations, b.delegations);
    EXPECT_EQ(a.l1Misses, b.l1Misses);
}

TEST(System, MemNodesBlockUnderGpuFlood)
{
    // The core phenomenon: the baseline's memory nodes spend a large
    // fraction of cycles unable to inject replies.
    SystemConfig cfg = quickCfg();
    cfg.warmupCycles = 8000;
    cfg.simCycles = 12000;
    HeteroSystem sys(cfg, "2DCON", "blackscholes");
    const RunResults r = sys.run();
    EXPECT_GT(r.memBlockingRate, 0.15);
}

TEST(System, AllMechanismsRunAllTopologies)
{
    for (const TopologyKind topo :
         {TopologyKind::Mesh, TopologyKind::Crossbar,
          TopologyKind::FlattenedButterfly, TopologyKind::Dragonfly}) {
        SystemConfig cfg = quickCfg(Mechanism::DelegatedReplies);
        cfg.noc.topology = topo;
        cfg.warmupCycles = 1000;
        cfg.simCycles = 3000;
        const RunResults r = runWorkload(cfg, "SRAD", "ferret");
        EXPECT_GT(r.gpuIpc, 0.05) << topologyName(topo);
    }
}

TEST(System, AllLayoutsRun)
{
    for (const ChipLayout l :
         {ChipLayout::Baseline, ChipLayout::LayoutB, ChipLayout::LayoutC,
          ChipLayout::LayoutD}) {
        SystemConfig cfg = quickCfg(Mechanism::DelegatedReplies);
        cfg.layout = l;
        applyDefaultRouting(cfg);
        cfg.warmupCycles = 1000;
        cfg.simCycles = 3000;
        const RunResults r = runWorkload(cfg, "SRAD", "ferret");
        EXPECT_GT(r.gpuIpc, 0.05) << layoutName(l);
    }
}

TEST(System, AdaptiveRoutingRuns)
{
    for (const RoutingKind kind :
         {RoutingKind::DyXY, RoutingKind::Footprint, RoutingKind::Hare}) {
        SystemConfig cfg = quickCfg();
        cfg.noc.requestRouting = kind;
        cfg.noc.replyRouting = kind;
        cfg.warmupCycles = 1000;
        cfg.simCycles = 3000;
        const RunResults r = runWorkload(cfg, "HS", "x264");
        EXPECT_GT(r.gpuIpc, 0.05) << routingName(kind);
    }
}

TEST(System, SharedPhysicalNetworkRuns)
{
    SystemConfig cfg = quickCfg(Mechanism::DelegatedReplies);
    cfg.noc.sharedPhysical = true;
    cfg.noc.sharedReqVcs = 1;
    cfg.noc.sharedReplyVcs = 3;
    const RunResults r = runWorkload(cfg, "HS", "bodytrack");
    EXPECT_GT(r.gpuIpc, 0.1);
}

TEST(System, SharedL1OrganizationsRun)
{
    for (const L1Organization org :
         {L1Organization::DcL1, L1Organization::DynEB}) {
        SystemConfig cfg = quickCfg(Mechanism::DelegatedReplies);
        cfg.gpu.l1Org = org;
        cfg.warmupCycles = 1000;
        cfg.simCycles = 4000;
        const RunResults r = runWorkload(cfg, "LUD", "ferret");
        EXPECT_GT(r.gpuIpc, 0.05) << l1OrganizationName(org);
    }
}

TEST(System, DistributedCtaSchedulingRuns)
{
    SystemConfig cfg = quickCfg(Mechanism::DelegatedReplies);
    cfg.gpu.ctaSchedule = CtaSchedule::Distributed;
    const RunResults r = runWorkload(cfg, "2DCON", "canneal");
    EXPECT_GT(r.gpuIpc, 0.1);
}

TEST(System, DelegateAlwaysAblationDelegatesMore)
{
    SystemConfig cfg = quickCfg(Mechanism::DelegatedReplies);
    const RunResults onDemand = runWorkload(cfg, "2DCON", "canneal");
    cfg.dr.delegateAlways = true;
    const RunResults always = runWorkload(cfg, "2DCON", "canneal");
    EXPECT_GT(always.delegations, onDemand.delegations);
}

TEST(System, FrqPriorityAblationRuns)
{
    SystemConfig cfg = quickCfg(Mechanism::DelegatedReplies);
    cfg.dr.frqRemotePriority = false;
    const RunResults r = runWorkload(cfg, "HS", "blackscholes");
    EXPECT_GT(r.gpuIpc, 0.1);
}

TEST(System, MesiDirectoryActiveForCpuTraffic)
{
    SystemConfig cfg = quickCfg();
    HeteroSystem sys(cfg, "HS", "dedup");
    sys.run();
    const MesiStats mesi = sys.mesiStats();
    EXPECT_GT(mesi.reads.value() + mesi.writes.value(), 100u);
}

TEST(System, KernelBoundariesFlushCoherence)
{
    SystemConfig cfg = quickCfg();
    cfg.warmupCycles = 5000;
    cfg.simCycles = 20000;
    HeteroSystem sys(cfg, "LUD", "ferret");
    sys.run();
    EXPECT_GT(sys.coherence().flushes().value(), 0u);
}

TEST(System, DoubleBandwidthImprovesCloggedWorkload)
{
    SystemConfig cfg = quickCfg();
    cfg.warmupCycles = 6000;
    cfg.simCycles = 10000;
    const RunResults nominal = runWorkload(cfg, "2DCON", "blackscholes");
    cfg.noc.bandwidthScale = 2.0;
    const RunResults doubled = runWorkload(cfg, "2DCON", "blackscholes");
    EXPECT_GT(doubled.gpuIpc, nominal.gpuIpc * 1.05);
}

TEST(System, RunResultsDerivedMetrics)
{
    RunResults r;
    r.l1Misses = 100;
    r.missesWithRemoteCopy = 57;
    r.delegations = 50;
    r.frqRemoteHits = 30;
    r.frqDelayedHits = 7;
    r.frqRemoteMisses = 13;
    EXPECT_DOUBLE_EQ(r.remoteCopyFraction(), 0.57);
    EXPECT_DOUBLE_EQ(r.forwardedFraction(), 0.5);
    EXPECT_DOUBLE_EQ(r.remoteHitRate(), 0.74);
}

TEST(Experiment, MeansBehave)
{
    EXPECT_DOUBLE_EQ(geomean({2.0, 8.0}), 4.0);
    EXPECT_DOUBLE_EQ(harmonicMean({1.0, 1.0}), 1.0);
    EXPECT_NEAR(harmonicMean({2.0, 6.0}), 3.0, 1e-9);
    EXPECT_DOUBLE_EQ(mean({1.0, 3.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include <sstream>

#include "core/stats_report.hpp"

namespace dr
{
namespace
{

class StatsReportTest : public ::testing::Test
{
  protected:
    StatsReportTest()
    {
        SystemConfig cfg = SystemConfig::makePaper();
        cfg.mechanism = Mechanism::DelegatedReplies;
        cfg.warmupCycles = 2000;
        cfg.simCycles = 5000;
        system = std::make_unique<HeteroSystem>(cfg, "HS", "bodytrack");
        system->run();
        report = std::make_unique<StatsReport>(
            StatsReport::capture(*system, cfg.simCycles));
    }

    std::unique_ptr<HeteroSystem> system;
    std::unique_ptr<StatsReport> report;
};

TEST_F(StatsReportTest, CapturesHeadlineMetrics)
{
    EXPECT_TRUE(report->has("sim.gpuIpc"));
    EXPECT_GT(report->value("sim.gpuIpc"), 0.0);
    EXPECT_TRUE(report->has("sim.memBlockingRate"));
    EXPECT_TRUE(report->has("sim.cpuLatency"));
}

TEST_F(StatsReportTest, CapturesEveryComponent)
{
    EXPECT_TRUE(report->has("gpu0.instructions"));
    EXPECT_TRUE(report->has("gpu39.instructions"));
    EXPECT_TRUE(report->has("cpu0.retired"));
    EXPECT_TRUE(report->has("cpu15.retired"));
    EXPECT_TRUE(report->has("mem0.delegations"));
    EXPECT_TRUE(report->has("mem7.blockingRate"));
    EXPECT_TRUE(report->has("net.request.packetsInjected"));
    EXPECT_TRUE(report->has("net.reply.packetsDelivered"));
}

TEST_F(StatsReportTest, SumAggregatesPrefixes)
{
    double manual = 0.0;
    for (int i = 0; i < system->gpuCoreCount(); ++i)
        manual += static_cast<double>(
            system->gpuCore(i).stats().instructions.value());
    // sum over "gpuN." includes other stats too, so compare against a
    // tighter filter: every per-core instruction count is present.
    double viaReport = 0.0;
    for (int i = 0; i < system->gpuCoreCount(); ++i) {
        std::ostringstream path;
        path << "gpu" << i << ".instructions";
        viaReport += report->value(path.str());
    }
    EXPECT_DOUBLE_EQ(viaReport, manual);
    EXPECT_GE(report->sum("gpu0."), report->value("gpu0.instructions"));
}

TEST_F(StatsReportTest, TextFormatHasOneLinePerEntry)
{
    std::ostringstream out;
    report->writeText(out);
    std::size_t lines = 0;
    for (const char c : out.str())
        lines += c == '\n';
    EXPECT_EQ(lines, report->entries().size());
}

TEST_F(StatsReportTest, CsvHasHeader)
{
    std::ostringstream out;
    report->writeCsv(out);
    EXPECT_EQ(out.str().rfind("stat,value\n", 0), 0u);
}

TEST_F(StatsReportTest, JsonIsWellFormedEnough)
{
    std::ostringstream out;
    report->writeJson(out);
    const std::string s = out.str();
    EXPECT_EQ(s.front(), '{');
    EXPECT_EQ(s[s.size() - 2], '}');
    // Every entry quoted, no trailing comma before the brace.
    EXPECT_NE(s.find("\"sim.gpuIpc\":"), std::string::npos);
    EXPECT_EQ(s.find(",\n}"), std::string::npos);
}

TEST_F(StatsReportTest, UnknownPathIsFatal)
{
    EXPECT_DEATH((void)report->value("gpu0.flux"), "unknown path");
}

} // namespace
} // namespace dr

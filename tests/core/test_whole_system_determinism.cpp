#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/experiment.hpp"
#include "core/hetero_system.hpp"

namespace dr
{
namespace
{

/**
 * Whole-system determinism matrix (DESIGN.md §13). The endpoint tick
 * phase is partitioned across the same spatial domains as the NoC and
 * the idle-skip fast path elides provably dead cycles, so every
 * combination of worker threads and idle skipping must produce a
 * bit-identical run: same cycle counts, same counters, same
 * floating-point metrics. These tests pin that equivalence across
 * thread counts {1, 2, 4} x idleSkip {on, off} x vnets {on, off} x
 * two topologies.
 */

/** Serialize every RunResults field at full precision. */
std::string
fingerprint(const RunResults &r)
{
    std::ostringstream os;
    os.precision(17);
    os << r.cycles << '|' << r.gpuIpc << '|' << r.cpuIpc << '|'
       << r.cpuLatency << '|' << r.gpuDataRate << '|' << r.memBlockingRate
       << '|' << r.l1Misses << '|' << r.missesWithRemoteCopy << '|'
       << r.delegations << '|' << r.frqRemoteHits << '|'
       << r.frqDelayedHits << '|' << r.frqRemoteMisses << '|'
       << r.probesSent << '|' << r.probeHits << '|' << r.requestsInjected
       << '|' << r.switchTraversals << '|' << r.bufferWrites << '|'
       << r.linkTraversals << '|' << r.gpuL1MissRate << '|'
       << r.llcHitRate;
    return os.str();
}

SystemConfig
matrixCfg(TopologyKind topo, bool vnets)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.warmupCycles = 1500;
    cfg.simCycles = 3500;
    cfg.noc.topology = topo;
    cfg.noc.vnets = vnets;
    if (vnets && topo == TopologyKind::Dragonfly) {
        // Dragonfly phase escalation needs >= 2 VCs per virtual network.
        cfg.noc.vcsPerNet = 4;
        cfg.noc.vnetRequestVcs = 2;
        cfg.noc.vnetForwardVcs = 2;
        cfg.noc.vnetReplyVcs = 2;
        cfg.noc.vnetDelegatedVcs = 2;
    }
    if (topo == TopologyKind::ChipletMesh) {
        // 2x2 chiplets of 4x4 routers composing the 8x8 paper chip.
        // Restricted gateways force hierarchical routing, half-width
        // interposer channels engage the 2-cycle serialization throttle,
        // and the 3-phase VC escalation needs >= 3 VCs per VN.
        cfg.noc.chipletsX = 2;
        cfg.noc.chipletsY = 2;
        cfg.noc.chipletSubW = 4;
        cfg.noc.chipletSubH = 4;
        cfg.noc.chipletLinksPerEdge = 2;
        cfg.noc.interposerChannelBytes = 8;
        if (vnets) {
            cfg.noc.vcsPerNet = 6;
            cfg.noc.vnetRequestVcs = 3;
            cfg.noc.vnetForwardVcs = 3;
            cfg.noc.vnetReplyVcs = 3;
            cfg.noc.vnetDelegatedVcs = 3;
        } else {
            cfg.noc.vcsPerNet = 3;
        }
    }
    return cfg;
}

std::string
runFingerprint(SystemConfig cfg, int threads, bool idleSkip)
{
    cfg.noc.threads = threads;
    cfg.idleSkip = idleSkip;
    return fingerprint(runWorkload(cfg, "HS", "blackscholes"));
}

struct MatrixCase
{
    TopologyKind topo;
    bool vnets;
};

class WholeSystemDeterminism : public ::testing::TestWithParam<MatrixCase>
{
};

TEST_P(WholeSystemDeterminism, BitIdenticalAcrossThreadsAndIdleSkip)
{
    const SystemConfig cfg = matrixCfg(GetParam().topo, GetParam().vnets);
    // Golden: serial endpoint phase, every cycle ticked.
    const std::string golden = runFingerprint(cfg, 1, false);
    EXPECT_EQ(golden, runFingerprint(cfg, 1, true)) << "skip-on diverged";
    EXPECT_EQ(golden, runFingerprint(cfg, 2, true))
        << "2 threads + skip diverged";
    EXPECT_EQ(golden, runFingerprint(cfg, 4, false))
        << "4 threads diverged";
    EXPECT_EQ(golden, runFingerprint(cfg, 4, true))
        << "4 threads + skip diverged";
}

std::string
caseName(const ::testing::TestParamInfo<MatrixCase> &info)
{
    std::string name;
    for (const char c : std::string(topologyName(info.param.topo))) {
        if (c != '-')  // gtest parameter names must be alphanumeric
            name += c;
    }
    return name + (info.param.vnets ? "Vnets" : "");
}

INSTANTIATE_TEST_SUITE_P(
    TopologyMatrix, WholeSystemDeterminism,
    ::testing::Values(MatrixCase{TopologyKind::Mesh, false},
                      MatrixCase{TopologyKind::Mesh, true},
                      MatrixCase{TopologyKind::Dragonfly, false},
                      MatrixCase{TopologyKind::Dragonfly, true},
                      MatrixCase{TopologyKind::ChipletMesh, false},
                      MatrixCase{TopologyKind::ChipletMesh, true}),
    caseName);

/**
 * Scale acceptance (ISSUE 9): a 256-node chip of 4x4 chiplets, each a
 * 4x4 sub-mesh, with restricted gateways, half-width interposer
 * channels, and virtual networks on — bit-identical across worker
 * threads {1, 4} x idleSkip {on, off}. The chiplet-aligned domain
 * partition snaps to whole chiplet rows, so the 4-thread run really
 * exercises 4 domains (one per chiplet row).
 */
TEST(WholeSystemDeterminism, ChipletScale256Nodes)
{
    SystemConfig cfg = matrixCfg(TopologyKind::ChipletMesh, true);
    cfg.noc.chipletsX = 4;
    cfg.noc.chipletsY = 4;
    cfg.noc.meshWidth = 16;
    cfg.noc.meshHeight = 16;
    cfg.gpu.numCores = 176;
    cfg.cpu.numCores = 48;
    cfg.mem.numNodes = 32;
    cfg.warmupCycles = 800;
    cfg.simCycles = 1600;

    const std::string golden = runFingerprint(cfg, 1, false);
    EXPECT_EQ(golden, runFingerprint(cfg, 1, true)) << "skip-on diverged";
    EXPECT_EQ(golden, runFingerprint(cfg, 4, false))
        << "4 threads diverged";
    EXPECT_EQ(golden, runFingerprint(cfg, 4, true))
        << "4 threads + skip diverged";
}

/**
 * Shared-L1 determinism matrix (DESIGN.md §14). The DC-L1 and DynEB
 * organizations stage their cross-core effects per calling core and
 * drain them in the serial merge, which is what lets them report
 * concurrentSafe() and run the endpoint phase across multiple domains.
 * Every threads {1, 2, 4} x idleSkip {on, off} combination must stay
 * bit-identical to the serial densely-ticked golden run.
 */
class L1OrgDeterminism : public ::testing::TestWithParam<L1Organization>
{
};

TEST_P(L1OrgDeterminism, BitIdenticalAcrossThreadsAndIdleSkip)
{
    SystemConfig cfg = matrixCfg(TopologyKind::Mesh, false);
    cfg.gpu.l1Org = GetParam();
    // Golden: serial endpoint phase, every cycle ticked.
    const std::string golden = runFingerprint(cfg, 1, false);
    EXPECT_EQ(golden, runFingerprint(cfg, 1, true)) << "skip-on diverged";
    EXPECT_EQ(golden, runFingerprint(cfg, 2, false))
        << "2 threads diverged";
    EXPECT_EQ(golden, runFingerprint(cfg, 2, true))
        << "2 threads + skip diverged";
    EXPECT_EQ(golden, runFingerprint(cfg, 4, false))
        << "4 threads diverged";
    EXPECT_EQ(golden, runFingerprint(cfg, 4, true))
        << "4 threads + skip diverged";
}

std::string
l1OrgCaseName(const ::testing::TestParamInfo<L1Organization> &info)
{
    return info.param == L1Organization::DcL1 ? "shared" : "dyneb";
}

INSTANTIATE_TEST_SUITE_P(SharedOrgMatrix, L1OrgDeterminism,
                         ::testing::Values(L1Organization::DcL1,
                                           L1Organization::DynEB),
                         l1OrgCaseName);

/**
 * Skip-heavy configuration: a 2x2 chip whose two single-warp GPU cores
 * are almost always in WaitMem and whose lone CPU core runs vips (80%
 * dependent misses, so it is blocked most cycles). Whenever the tiny
 * network drains while requests sit in the LLC/DRAM, every endpoint
 * watermark lies in the future and the idle-skip fast path engages
 * (asserted below).
 */
SystemConfig
skipHeavyCfg()
{
    SystemConfig cfg = SystemConfig::makeSmall();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.noc.meshWidth = 2;
    cfg.noc.meshHeight = 2;
    cfg.gpu.numCores = 2;
    cfg.cpu.numCores = 1;
    cfg.mem.numNodes = 1;
    cfg.gpu.warpsPerCore = 1;
    cfg.debug.watchdogCycles = 1u << 20;  // armed, far from firing
    return cfg;
}

/**
 * Satellite regression (PR 7): watchdog observations are scheduled by
 * next-due cycle, so an idle skip must land on (not jump over) every
 * due observation point. The skip-on run must observe exactly as often
 * as the skip-off run while actually skipping cycles. Checked-build
 * invariant sweeps use the same next-due clamp (debug.sweepCycles);
 * the DR_CHECKED CI leg runs this test with sweeps armed.
 */
TEST(IdleSkip, WatchdogObservationScheduleSurvivesSkips)
{
    SystemConfig cfg = skipHeavyCfg();
    const Cycle span = 20000;

    cfg.idleSkip = false;
    HeteroSystem dense(cfg, "HS", "vips");
    dense.advance(span);

    cfg.idleSkip = true;
    HeteroSystem skipping(cfg, "HS", "vips");
    skipping.advance(span);

    ASSERT_NE(dense.watchdog(), nullptr);
    ASSERT_NE(skipping.watchdog(), nullptr);
    EXPECT_EQ(dense.idleSkippedCycles(), 0u);
    EXPECT_GT(skipping.idleSkippedCycles(), 0u)
        << "config no longer produces idle stretches; retune skipHeavyCfg";
    EXPECT_EQ(dense.watchdog()->observations(),
              skipping.watchdog()->observations());
    EXPECT_EQ(dense.watchdog()->lastProgressCycle(),
              skipping.watchdog()->lastProgressCycle());
    EXPECT_EQ(dense.progressSignature(), skipping.progressSignature());
    EXPECT_EQ(dense.now(), skipping.now());
}

/**
 * Stats equivalence across skipped stretches: time-integrated counters
 * (mem active/blocked cycles feeding memBlockingRate, CPU latency)
 * must account for elided cycles exactly.
 */
TEST(IdleSkip, SkippedStretchesKeepStatsEquivalent)
{
    SystemConfig cfg = skipHeavyCfg();
    cfg.warmupCycles = 2000;
    cfg.simCycles = 15000;

    cfg.idleSkip = false;
    const RunResults dense = runWorkload(cfg, "HS", "vips");
    cfg.idleSkip = true;
    const RunResults skipping = runWorkload(cfg, "HS", "vips");

    EXPECT_EQ(fingerprint(dense), fingerprint(skipping));
}

} // namespace
} // namespace dr

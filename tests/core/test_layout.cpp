#include <gtest/gtest.h>

#include "core/layout.hpp"

namespace dr
{
namespace
{

SystemConfig
paperCfg(ChipLayout layout)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.layout = layout;
    return cfg;
}

TEST(Layout, AllLayoutsProduceCorrectMix)
{
    for (const ChipLayout l :
         {ChipLayout::Baseline, ChipLayout::LayoutB, ChipLayout::LayoutC,
          ChipLayout::LayoutD}) {
        const LayoutMap map = buildLayout(paperCfg(l));
        EXPECT_EQ(map.gpuCores.size(), 40u) << layoutName(l);
        EXPECT_EQ(map.cpuCores.size(), 16u) << layoutName(l);
        EXPECT_EQ(map.memNodes.size(), 8u) << layoutName(l);
        EXPECT_EQ(map.types.size(), 64u);
    }
}

TEST(Layout, BaselineMemoryColumnBetweenCpusAndGpus)
{
    // Figure 1a: CPUs in columns 0-1, memory nodes in column 2, GPUs
    // in columns 3-7.
    const LayoutMap map = buildLayout(paperCfg(ChipLayout::Baseline));
    for (int y = 0; y < 8; ++y) {
        EXPECT_EQ(map.types[y * 8 + 0], NodeType::CpuCore);
        EXPECT_EQ(map.types[y * 8 + 1], NodeType::CpuCore);
        EXPECT_EQ(map.types[y * 8 + 2], NodeType::MemNode);
        for (int x = 3; x < 8; ++x)
            EXPECT_EQ(map.types[y * 8 + x], NodeType::GpuCore);
    }
}

TEST(Layout, LayoutBMemoryAtTopRow)
{
    const LayoutMap map = buildLayout(paperCfg(ChipLayout::LayoutB));
    for (int x = 0; x < 8; ++x)
        EXPECT_EQ(map.types[x], NodeType::MemNode);
}

TEST(Layout, LayoutCCpusClustered)
{
    // Every CPU pair must be within a small hop radius (the clustering
    // property the layout optimizes for).
    const SystemConfig cfg = paperCfg(ChipLayout::LayoutC);
    const LayoutMap map = buildLayout(cfg);
    int maxDist = 0;
    for (const NodeId a : map.cpuCores) {
        for (const NodeId b : map.cpuCores) {
            const int dist = std::abs(a % 8 - b % 8) +
                             std::abs(a / 8 - b / 8);
            maxDist = std::max(maxDist, dist);
        }
    }
    EXPECT_LE(maxDist, 6);
}

TEST(Layout, LayoutDSpreadsMemoryNodes)
{
    // Distribution: memory nodes must not be confined to one row or
    // column.
    const LayoutMap map = buildLayout(paperCfg(ChipLayout::LayoutD));
    std::set<int> rows, cols;
    for (const NodeId m : map.memNodes) {
        rows.insert(m / 8);
        cols.insert(m % 8);
    }
    EXPECT_GT(rows.size(), 2u);
    EXPECT_GT(cols.size(), 2u);
}

TEST(Layout, DefaultRoutingPerLayoutMatchesFigure9)
{
    SystemConfig cfg = paperCfg(ChipLayout::Baseline);
    applyDefaultRouting(cfg);
    EXPECT_EQ(cfg.noc.requestRouting, RoutingKind::DimOrderYX);
    EXPECT_EQ(cfg.noc.replyRouting, RoutingKind::DimOrderXY);

    cfg.layout = ChipLayout::LayoutB;
    applyDefaultRouting(cfg);
    EXPECT_EQ(cfg.noc.requestRouting, RoutingKind::DimOrderXY);
    EXPECT_EQ(cfg.noc.replyRouting, RoutingKind::DimOrderYX);

    cfg.layout = ChipLayout::LayoutD;
    applyDefaultRouting(cfg);
    EXPECT_EQ(cfg.noc.requestRouting, RoutingKind::DimOrderXY);
    EXPECT_EQ(cfg.noc.replyRouting, RoutingKind::DimOrderXY);
}

TEST(Layout, ScalesToLargerMeshes)
{
    // Figure 19's node-count sensitivity: 10x10 and 12x12 with the
    // same type proportions.
    for (const int dim : {10, 12}) {
        SystemConfig cfg = SystemConfig::makePaper();
        cfg.noc.meshWidth = dim;
        cfg.noc.meshHeight = dim;
        const int tiles = dim * dim;
        cfg.mem.numNodes = tiles / 8;
        cfg.cpu.numCores = tiles / 4;
        cfg.gpu.numCores = tiles - cfg.mem.numNodes - cfg.cpu.numCores;
        for (const ChipLayout l :
             {ChipLayout::Baseline, ChipLayout::LayoutB,
              ChipLayout::LayoutD}) {
            cfg.layout = l;
            const LayoutMap map = buildLayout(cfg);
            EXPECT_EQ(static_cast<int>(map.gpuCores.size()),
                      cfg.gpu.numCores);
        }
    }
}

TEST(Layout, SmallConfigWorks)
{
    SystemConfig cfg = SystemConfig::makeSmall();
    for (const ChipLayout l :
         {ChipLayout::Baseline, ChipLayout::LayoutB, ChipLayout::LayoutC,
          ChipLayout::LayoutD}) {
        cfg.layout = l;
        const LayoutMap map = buildLayout(cfg);
        EXPECT_EQ(map.gpuCores.size(), 10u) << layoutName(l);
    }
}

TEST(Layout, RenderShowsEveryTile)
{
    const SystemConfig cfg = paperCfg(ChipLayout::Baseline);
    const std::string art = renderLayout(cfg, buildLayout(cfg));
    int g = 0, c = 0, m = 0;
    for (const char ch : art) {
        g += ch == 'G';
        c += ch == 'C';
        m += ch == 'M';
    }
    EXPECT_EQ(g, 40);
    EXPECT_EQ(c, 16);
    EXPECT_EQ(m, 8);
}

TEST(Layout, IndexListsMatchTypes)
{
    for (const ChipLayout l :
         {ChipLayout::Baseline, ChipLayout::LayoutB, ChipLayout::LayoutC,
          ChipLayout::LayoutD}) {
        const LayoutMap map = buildLayout(paperCfg(l));
        for (const NodeId n : map.gpuCores)
            EXPECT_EQ(map.types[n], NodeType::GpuCore);
        for (const NodeId n : map.cpuCores)
            EXPECT_EQ(map.types[n], NodeType::CpuCore);
        for (const NodeId n : map.memNodes)
            EXPECT_EQ(map.types[n], NodeType::MemNode);
    }
}

} // namespace
} // namespace dr

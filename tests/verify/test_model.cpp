#include <gtest/gtest.h>

#include "verify/checker.hpp"
#include "verify/configs.hpp"
#include "verify/model.hpp"

namespace dr
{
namespace
{

TEST(VerifyModel, EncodeDecodeRoundTripsInitialState)
{
    verify::Model model(verify::standardConfig().config);
    const verify::State init = model.initialState();
    const std::string bytes = model.encode(init);
    EXPECT_EQ(model.decode(bytes), init);
}

TEST(VerifyModel, EncodeDecodeRoundTripsSuccessors)
{
    verify::Model model(verify::standardConfig().config);
    std::vector<verify::Succ> succs;
    model.successors(model.initialState(), succs);
    ASSERT_FALSE(succs.empty());
    for (const verify::Succ &s : succs) {
        const std::string bytes = model.encode(s.state);
        EXPECT_EQ(model.decode(bytes), s.state) << s.action;
    }
}

TEST(VerifyModel, SuccessorsAreDeterministic)
{
    verify::Model model(verify::standardConfig().config);
    std::vector<verify::Succ> a;
    std::vector<verify::Succ> b;
    model.successors(model.initialState(), a);
    model.successors(model.initialState(), b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].state, b[i].state);
        EXPECT_EQ(a[i].action, b[i].action);
    }
}

TEST(VerifyModel, InitialStateIsNotTerminal)
{
    verify::Model model(verify::standardConfig().config);
    EXPECT_FALSE(model.terminal(model.initialState()));
    EXPECT_FALSE(model.quiescenceViolation(model.initialState()));
}

TEST(VerifyModel, StandardConfigPassesExhaustively)
{
    verify::Model model(verify::standardConfig().config);
    const verify::CheckResult result = verify::check(model);
    EXPECT_TRUE(result.passed) << verify::formatResult(model, result,
                                                       false);
    EXPECT_FALSE(result.hitStateLimit);
    // Fixed point over a nontrivial interleaving space: the exact
    // count is pinned by the config, so a model change that silently
    // prunes interleavings shows up here.
    EXPECT_GT(result.statesExplored, 1000u);
    EXPECT_GT(result.transitions, result.statesExplored);
}

TEST(VerifyModel, SplitVnetsRoundTripsAndPasses)
{
    // splitVnets adds two more bounded networks; the encoding and the
    // standard configuration's correctness must hold there too.
    verify::ModelConfig cfg = verify::standardConfig().config;
    cfg.splitVnets = true;
    verify::Model model(cfg);
    const verify::State init = model.initialState();
    EXPECT_EQ(model.decode(model.encode(init)), init);
    const verify::CheckResult result = verify::check(model);
    EXPECT_TRUE(result.passed) << verify::formatResult(model, result,
                                                       false);
    EXPECT_FALSE(result.hitStateLimit);
}

TEST(VerifyModel, ColdTwoCoreConfigPasses)
{
    verify::ModelConfig cfg;
    cfg.numCores = 2;
    cfg.numLines = 1;
    cfg.maxReadsPerCore = 2;
    cfg.llcPresent = 0;
    verify::Model model(cfg);
    const verify::CheckResult result = verify::check(model);
    EXPECT_TRUE(result.passed) << verify::formatResult(model, result,
                                                       false);
}

TEST(VerifyModel, StateLimitReportsInconclusive)
{
    verify::Model model(verify::standardConfig().config);
    verify::CheckOptions opts;
    opts.maxStates = 16;
    const verify::CheckResult result = verify::check(model, opts);
    EXPECT_FALSE(result.passed);
    EXPECT_TRUE(result.hitStateLimit);
    EXPECT_NE(verify::formatResult(model, result, false)
                  .find("INCONCLUSIVE"),
              std::string::npos);
}

TEST(VerifyConfigs, LookupFindsEveryNamedConfig)
{
    for (const verify::NamedConfig &c : verify::allConfigs()) {
        const verify::NamedConfig *found = verify::findConfig(c.name);
        ASSERT_NE(found, nullptr) << c.name;
        EXPECT_EQ(found->expectation, c.expectation);
    }
    EXPECT_EQ(verify::findConfig("no-such-config"), nullptr);
}

} // namespace
} // namespace dr

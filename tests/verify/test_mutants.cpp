/**
 * Mutation tests: each seeded-bug configuration must make the checker
 * report exactly the property that bug breaks, with a counterexample
 * trace rooted at the initial state. This is what certifies that
 * drverify can actually detect the paper's failure modes, rather than
 * passing vacuously.
 */

#include <gtest/gtest.h>

#include "verify/checker.hpp"
#include "verify/configs.hpp"

namespace dr
{
namespace
{

verify::CheckResult
run(const verify::NamedConfig &named)
{
    verify::Model model(named.config);
    return verify::check(model);
}

TEST(VerifyMutants, StandardConfigHasNoViolation)
{
    const verify::NamedConfig std = verify::standardConfig();
    ASSERT_TRUE(std.expectation.empty());
    const verify::CheckResult result = run(std);
    verify::Model model(std.config);
    EXPECT_TRUE(result.passed) << verify::formatResult(model, result,
                                                       false);
}

TEST(VerifyMutants, EveryMutantReportsItsExpectedProperty)
{
    int mutants = 0;
    for (const verify::NamedConfig &named : verify::allConfigs()) {
        if (named.expectation.empty())
            continue;
        ++mutants;
        const verify::CheckResult result = run(named);
        verify::Model model(named.config);
        EXPECT_FALSE(result.passed) << named.name;
        EXPECT_FALSE(result.hitStateLimit) << named.name;
        EXPECT_EQ(result.violatedProperty, named.expectation)
            << named.name << ":\n"
            << verify::formatResult(model, result, false);
        // The minimal counterexample starts at the initial state and
        // has at least one transition.
        ASSERT_GE(result.trace.size(), 2u) << named.name;
        EXPECT_EQ(result.trace.front().action, "(initial state)")
            << named.name;
    }
    // One mutant per seeded bug flag, the FRQ-priority ablation, the
    // collapsed-virtual-network fan-in hazard (shared-vnet), and the
    // interposer credit leak (interposer-credit-leak).
    EXPECT_EQ(mutants, 8);
}

TEST(VerifyMutants, VnetSplitProvesSharedNetClogDeadlockFree)
{
    // The historical fan-in hazard: under the collapsed VN layout
    // (shared-vnet) the checker finds the delegation/DNF message-class
    // cycle; the same cores/lines/capacities with the virtual-network
    // split (shared-net-clog, splitVnets on) explore to a fixed point
    // with no violation.
    const verify::NamedConfig *split =
        verify::findConfig("shared-net-clog");
    ASSERT_NE(split, nullptr);
    ASSERT_TRUE(split->config.splitVnets);
    ASSERT_TRUE(split->expectation.empty());
    const verify::CheckResult good = run(*split);
    verify::Model model(split->config);
    EXPECT_TRUE(good.passed) << verify::formatResult(model, good, false);
    EXPECT_FALSE(good.hitStateLimit);

    const verify::NamedConfig *collapsed =
        verify::findConfig("shared-vnet");
    ASSERT_NE(collapsed, nullptr);
    ASSERT_FALSE(collapsed->config.splitVnets);
    // Identical protocol state space apart from the network split.
    EXPECT_EQ(collapsed->config.numCores, split->config.numCores);
    EXPECT_EQ(collapsed->config.numLines, split->config.numLines);
    EXPECT_EQ(collapsed->config.frqEntries, split->config.frqEntries);
    const verify::CheckResult bad = run(*collapsed);
    ASSERT_FALSE(bad.passed);
    EXPECT_EQ(bad.violatedProperty, verify::property::deadlockFreedom);
}

TEST(VerifyMutants, FrqPriorityAblationDeadlocksAndTraceIsBlocked)
{
    const verify::NamedConfig *named =
        verify::findConfig("no-frq-priority");
    ASSERT_NE(named, nullptr);
    const verify::CheckResult result = run(*named);
    ASSERT_FALSE(result.passed);
    EXPECT_EQ(result.violatedProperty,
              verify::property::deadlockFreedom);
    // In the deadlocked state no transition may be enabled.
    verify::Model model(named->config);
    std::vector<verify::Succ> succs;
    model.successors(result.trace.back().state, succs);
    EXPECT_TRUE(succs.empty());
    EXPECT_FALSE(model.terminal(result.trace.back().state));
}

TEST(VerifyMutants, RetryLoopMutantReportsACycle)
{
    const verify::NamedConfig *named =
        verify::findConfig("dnf-retry-loop");
    ASSERT_NE(named, nullptr);
    const verify::CheckResult result = run(*named);
    ASSERT_FALSE(result.passed);
    EXPECT_EQ(result.violatedProperty,
              verify::property::livelockFreedom);
    // The trace closes a loop: its last state revisits an earlier one.
    ASSERT_GE(result.trace.size(), 2u);
    const verify::State &closing = result.trace.back().state;
    bool revisits = false;
    for (std::size_t i = 0; i + 1 < result.trace.size(); ++i)
        revisits = revisits || result.trace[i].state == closing;
    EXPECT_TRUE(revisits);
}

TEST(VerifyMutants, ChipletSplitIsSoundAndTheCreditLeakDeadlocks)
{
    // The chiplet model bounds cross-chiplet traffic with interposer
    // credits held from injection to delivery. With the credit-return
    // discipline intact the split protocol explores to a fixed point
    // with no violation...
    const verify::NamedConfig *split = verify::findConfig("chiplet-split");
    ASSERT_NE(split, nullptr);
    ASSERT_GT(split->config.interposerCredits, 0);
    ASSERT_TRUE(split->expectation.empty());
    const verify::CheckResult good = run(*split);
    verify::Model model(split->config);
    EXPECT_TRUE(good.passed) << verify::formatResult(model, good, false);
    EXPECT_FALSE(good.hitStateLimit);

    // ...and the seeded leak drains the pool into a resource deadlock
    // whose final state really has no enabled transition.
    const verify::NamedConfig *leak =
        verify::findConfig("interposer-credit-leak");
    ASSERT_NE(leak, nullptr);
    ASSERT_TRUE(leak->config.bugInterposerCreditLeak);
    const verify::CheckResult bad = run(*leak);
    ASSERT_FALSE(bad.passed);
    EXPECT_EQ(bad.violatedProperty, verify::property::deadlockFreedom);
    verify::Model leakModel(leak->config);
    std::vector<verify::Succ> succs;
    leakModel.successors(bad.trace.back().state, succs);
    EXPECT_TRUE(succs.empty());
    EXPECT_FALSE(leakModel.terminal(bad.trace.back().state));
}

TEST(VerifyMutants, LostReplyMutantNamesTheStarvedTransaction)
{
    const verify::NamedConfig *named = verify::findConfig("lost-reply");
    ASSERT_NE(named, nullptr);
    const verify::CheckResult result = run(*named);
    ASSERT_FALSE(result.passed);
    EXPECT_EQ(result.violatedProperty, verify::property::replyDelivery);
    EXPECT_NE(result.violationDetail.find("never received a reply"),
              std::string::npos);
}

} // namespace
} // namespace dr

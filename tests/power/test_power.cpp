#include <gtest/gtest.h>

#include "power/noc_power.hpp"
#include "power/sram_area.hpp"

namespace dr
{
namespace
{

TEST(NocArea, BaselineMeshMatchesPaperCalibration)
{
    // DSENT on the Table I mesh: 2.27 mm^2 (Section III.B).
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_NEAR(nocAreaMm2(cfg), 2.27, 0.25);
}

TEST(NocArea, DoubleBandwidthIsAbout2p5x)
{
    // The paper's headline: 2x bandwidth costs 2.5x area (5.76 mm^2).
    SystemConfig cfg = SystemConfig::makePaper();
    const double nominal = nocAreaMm2(cfg);
    cfg.noc.bandwidthScale = 2.0;
    const double doubled = nocAreaMm2(cfg);
    EXPECT_NEAR(doubled, 5.76, 0.6);
    EXPECT_NEAR(doubled / nominal, 2.5, 0.3);
}

TEST(NocArea, CrossbarSwitchAreaSuperlinearInPorts)
{
    // A 64-port central crossbar costs far more than 64/5 of a 5-port
    // mesh router: the crossbar term is quadratic in port count.
    const double mesh5 = routerAreaMm2(5, 16, 2, 4);
    const double xbar64 = routerAreaMm2(64, 16, 2, 4);
    EXPECT_GT(xbar64, (64.0 / 5.0) * mesh5);
}

TEST(NocArea, RouterAreaGrowsSuperlinearlyWithWidth)
{
    const double w16 = routerAreaMm2(5, 16, 2, 4);
    const double w32 = routerAreaMm2(5, 32, 2, 4);
    EXPECT_GT(w32, 2.0 * w16);
}

TEST(NocArea, CrossbarTermQuadraticInPorts)
{
    const double p5 = routerAreaMm2(5, 16, 2, 4);
    const double p10 = routerAreaMm2(10, 16, 2, 4);
    EXPECT_GT(p10, 2.0 * p5);
}

TEST(SramArea, DrPointerAreaMatchesPaper)
{
    // CACTI 6.5: 0.08 mm^2 for the core pointers (Section IV).
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_NEAR(drPointerAreaMm2(cfg), 0.08, 0.01);
}

TEST(SramArea, FrqAreaMatchesPaper)
{
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_NEAR(drFrqAreaMm2(cfg), 0.092, 0.01);
}

TEST(SramArea, TotalDrOverheadMatchesPaper)
{
    // 0.172 mm^2 total, and ~5% of the double-bandwidth NoC's *extra*
    // area.
    SystemConfig cfg = SystemConfig::makePaper();
    const double dr = drTotalAreaMm2(cfg);
    EXPECT_NEAR(dr, 0.172, 0.02);
    const double nominal = nocAreaMm2(cfg);
    cfg.noc.bandwidthScale = 2.0;
    const double extra = nocAreaMm2(cfg) - nominal;
    EXPECT_LT(dr / extra, 0.08);
}

TEST(SramArea, BitsForCoversRanges)
{
    EXPECT_EQ(bitsFor(40), 6);
    EXPECT_EQ(bitsFor(64), 6);
    EXPECT_EQ(bitsFor(65), 7);
    EXPECT_EQ(bitsFor(2), 1);
    EXPECT_EQ(bitsFor(1), 0);
}

TEST(SramArea, PointerAreaScalesWithLlc)
{
    SystemConfig cfg = SystemConfig::makePaper();
    const double base = drPointerAreaMm2(cfg);
    cfg.mem.llcSliceKB *= 2;
    EXPECT_NEAR(drPointerAreaMm2(cfg) / base, 2.0, 0.1);
}

TEST(NocEnergy, DynamicScalesWithEvents)
{
    const NocEnergyModel model;
    const double one = model.dynamicUj(1000, 1000, 1000);
    const double two = model.dynamicUj(2000, 2000, 2000);
    EXPECT_DOUBLE_EQ(two, 2.0 * one);
    EXPECT_GT(one, 0.0);
}

TEST(NocEnergy, StaticScalesWithTimeAndRouters)
{
    const NocEnergyModel model;
    const double base = model.staticUj(64, 100000, 1.4);
    EXPECT_DOUBLE_EQ(model.staticUj(128, 100000, 1.4), 2.0 * base);
    EXPECT_DOUBLE_EQ(model.staticUj(64, 200000, 1.4), 2.0 * base);
}

} // namespace
} // namespace dr

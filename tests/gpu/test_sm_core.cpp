#include <gtest/gtest.h>

#include <deque>

#include "coherence/gpu_coherence.hpp"
#include "gpu/cta_scheduler.hpp"
#include "gpu/l1_cache.hpp"
#include "gpu/sm_core.hpp"
#include "mem/address_map.hpp"
#include "noc/interconnect.hpp"

namespace dr
{
namespace
{

/** A trivial streaming kernel for driving one SM deterministically. */
class StubKernel : public KernelAccessPattern
{
  public:
    std::string name() const override { return "stub"; }
    int ctaCount() const override { return 64; }
    int warpsPerCta() const override { return 4; }
    int accessesPerWarp() const override { return 16; }
    int computePerMem() const override { return 2; }

    MemAccess
    access(int cta, int warp, int idx) const override
    {
        const Addr base = 0x10000000ull;
        return {base + (static_cast<Addr>(cta) * 64 + warp * 16 +
                        idx) * 128,
                false};
    }
};

/**
 * Fixture: one SM core (node 5, GPU index 0) against a scripted memory
 * node at node 0.
 */
class SmCoreTest : public ::testing::Test
{
  protected:
    SmCoreTest() : cfg(SystemConfig::makeSmall())
    {
        cfg.mechanism = Mechanism::DelegatedReplies;
        types.assign(16, NodeType::GpuCore);
        types[0] = NodeType::MemNode;
        types[1] = NodeType::MemNode;
        ic = std::make_unique<Interconnect>(cfg, types);
        // All addresses map to MC 0 (single entry list keeps it easy).
        map = std::make_unique<AddressMap>(1, cfg.mem.lineBytes,
                                           std::vector<NodeId>{0},
                                           cfg.mem.mapSeed);
        coherence = std::make_unique<GpuCoherence>(cfg.gpu.numCores);
        sched = std::make_unique<CtaScheduler>(CtaSchedule::RoundRobin,
                                               kernel.ctaCount(),
                                               cfg.gpu.numCores);
        l1 = std::make_unique<PrivateL1>(cfg.gpu);
        gpuIds = {5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
        core = std::make_unique<SmCore>(5, 0, cfg, *ic, *map, *coherence,
                                        *sched, kernel, *l1, gpuIds);
    }

    /** Serve memory requests at node 0 with an immediate LLC-like echo. */
    void
    serveMemory()
    {
        while (ic->hasMessage(0, NetKind::Request)) {
            const Message req = ic->popMessage(0, NetKind::Request);
            Message reply;
            reply.type = req.type == MsgType::WriteReq ? MsgType::WriteAck
                                                       : MsgType::ReadReply;
            reply.cls = req.cls;
            reply.addr = req.addr;
            reply.src = 0;
            reply.dst = req.requester;
            reply.requester = req.requester;
            reply.id = req.id;
            pendingReplies.push_back(reply);
            served.push_back(req);
        }
        while (!pendingReplies.empty() &&
               ic->canSend(pendingReplies.front())) {
            ic->send(pendingReplies.front(), now);
            pendingReplies.pop_front();
        }
    }

    void
    step(int cycles)
    {
        for (int i = 0; i < cycles; ++i) {
            core->tick(now);
            // Serial-merge half of the cycle (the HeteroSystem runs
            // these after the endpoint compute phase): resolve staged
            // oracle queries, then refill completed CTA slots.
            core->resolveOracleQueries(now);
            core->refillCtas(now);
            serveMemory();
            ic->tick(now);
            ++now;
        }
    }

    StubKernel kernel;
    SystemConfig cfg;
    std::vector<NodeType> types;
    std::unique_ptr<Interconnect> ic;
    std::unique_ptr<AddressMap> map;
    std::unique_ptr<GpuCoherence> coherence;
    std::unique_ptr<CtaScheduler> sched;
    std::unique_ptr<PrivateL1> l1;
    std::vector<NodeId> gpuIds;
    std::unique_ptr<SmCore> core;
    std::vector<Message> served;
    std::deque<Message> pendingReplies;
    Cycle now = 0;
};

TEST_F(SmCoreTest, IssuesInstructionsAndMemoryRequests)
{
    step(4000);
    EXPECT_GT(core->stats().instructions.value(), 300u);
    EXPECT_GT(core->stats().loads.value(), 80u);
    EXPECT_GT(core->stats().llcRequests.value(), 10u);
    EXPECT_GT(core->stats().repliesReceived.value(), 10u);
}

TEST_F(SmCoreTest, L1FillsProduceHits)
{
    step(4000);
    // The streaming stub never re-reads, but MSHR merges and fills mean
    // misses must not exceed loads.
    EXPECT_LE(core->stats().l1Misses.value(),
              core->stats().loads.value());
    EXPECT_EQ(core->stats().l1Hits.value() + core->stats().l1Misses.value(),
              core->stats().loads.value());
}

TEST_F(SmCoreTest, FrqRemoteHitRepliesWithData)
{
    // Install a line in the core's L1, then deliver a delegated reply
    // for it: the core must answer with a ReadReply to the requester.
    l1->fill(0, 0x7000000);
    Message delegated;
    delegated.type = MsgType::DelegatedReq;
    delegated.cls = TrafficClass::Gpu;
    delegated.addr = 0x7000000;
    delegated.src = 0;
    delegated.dst = 5;
    delegated.requester = 9;  // the core that originally missed
    delegated.id = 4242;
    ic->send(delegated, now);
    bool got = false;
    for (int i = 0; i < 300 && !got; ++i) {
        core->tick(now);
        ic->tick(now);
        while (ic->hasMessage(9, NetKind::Reply)) {
            const Message m = ic->popMessage(9, NetKind::Reply);
            EXPECT_EQ(m.type, MsgType::ReadReply);
            EXPECT_EQ(m.addr, 0x7000000u);
            EXPECT_EQ(m.id, 4242u);
            EXPECT_EQ(m.src, 5);
            got = true;
        }
        ++now;
    }
    EXPECT_TRUE(got);
    EXPECT_EQ(core->stats().frqRemoteHits.value(), 1u);
}

TEST_F(SmCoreTest, FrqRemoteMissResendsWithDnf)
{
    // Delegate a line the core does NOT have: it must re-send the
    // request to the LLC with DNF set and the original requester.
    Message delegated;
    delegated.type = MsgType::DelegatedReq;
    delegated.cls = TrafficClass::Gpu;
    delegated.addr = 0x7000000;
    delegated.src = 0;
    delegated.dst = 5;
    delegated.requester = 9;
    delegated.id = 77;
    ic->send(delegated, now);
    bool got = false;
    for (int i = 0; i < 300 && !got; ++i) {
        core->tick(now);
        ic->tick(now);
        while (ic->hasMessage(0, NetKind::Request)) {
            // The core also issues its own workload requests; the DNF
            // re-send is the one carrying the original id.
            const Message m = ic->popMessage(0, NetKind::Request);
            if (m.id != 77u)
                continue;
            EXPECT_EQ(m.type, MsgType::ReadReq);
            EXPECT_TRUE(m.dnf);
            EXPECT_EQ(m.requester, 9);
            got = true;
        }
        ++now;
    }
    EXPECT_TRUE(got);
    EXPECT_EQ(core->stats().frqRemoteMisses.value(), 1u);
}

TEST_F(SmCoreTest, FrqCapacityBackpressuresRequestNetwork)
{
    // Stuff more delegated replies than FRQ entries without letting the
    // core process them: the extras must stay in the network, not be
    // dropped.
    const int total = cfg.gpu.frqEntries + 6;
    for (int i = 0; i < total; ++i) {
        Message delegated;
        delegated.type = MsgType::DelegatedReq;
        delegated.cls = TrafficClass::Gpu;
        delegated.addr = 0x7000000 + static_cast<Addr>(i) * 128;
        delegated.src = 0;
        delegated.dst = 5;
        delegated.requester = 9;
        delegated.id = 100 + i;
        while (!ic->canSend(delegated)) {
            ic->tick(now);
            ++now;
        }
        ic->send(delegated, now);
    }
    // Process everything; every delegated reply must eventually resolve
    // (all are misses here -> DNF re-sends to node 0). The core's own
    // workload requests are filtered out by the DNF bit.
    int resolved = 0;
    for (int i = 0; i < 5000 && resolved < total; ++i) {
        core->tick(now);
        ic->tick(now);
        while (ic->hasMessage(0, NetKind::Request)) {
            if (ic->popMessage(0, NetKind::Request).dnf)
                ++resolved;
        }
        ++now;
    }
    EXPECT_EQ(resolved, total);
    EXPECT_EQ(core->frqOccupancy(), 0);
}

TEST_F(SmCoreTest, ProbesAnsweredWithNackOnMiss)
{
    Message probe;
    probe.type = MsgType::ProbeReq;
    probe.cls = TrafficClass::Gpu;
    probe.addr = 0x9000000;
    probe.src = 6;
    probe.dst = 5;
    probe.requester = 6;
    probe.id = 31;
    ic->send(probe, now);
    bool got = false;
    for (int i = 0; i < 300 && !got; ++i) {
        core->tick(now);
        ic->tick(now);
        while (ic->hasMessage(6, NetKind::Reply)) {
            const Message m = ic->popMessage(6, NetKind::Reply);
            EXPECT_EQ(m.type, MsgType::ProbeNack);
            EXPECT_EQ(m.id, 31u);
            got = true;
        }
        ++now;
    }
    EXPECT_TRUE(got);
    EXPECT_EQ(core->stats().probeNacksServed.value(), 1u);
}

TEST_F(SmCoreTest, ProbesAnsweredWithDataOnHit)
{
    l1->fill(0, 0x9000000);
    Message probe;
    probe.type = MsgType::ProbeReq;
    probe.cls = TrafficClass::Gpu;
    probe.addr = 0x9000000;
    probe.src = 6;
    probe.dst = 5;
    probe.requester = 6;
    probe.id = 32;
    ic->send(probe, now);
    bool got = false;
    for (int i = 0; i < 300 && !got; ++i) {
        core->tick(now);
        ic->tick(now);
        while (ic->hasMessage(6, NetKind::Reply)) {
            const Message m = ic->popMessage(6, NetKind::Reply);
            EXPECT_EQ(m.type, MsgType::ReadReply);
            got = true;
        }
        ++now;
    }
    EXPECT_TRUE(got);
    EXPECT_EQ(core->stats().probeHitsServed.value(), 1u);
}

TEST_F(SmCoreTest, KernelBoundaryFlushesL1AndEpoch)
{
    const std::uint32_t epochBefore = coherence->epochOf(0);
    step(30000);  // enough to finish several kernel instances
    EXPECT_GT(coherence->epochOf(0), epochBefore);
    EXPECT_GT(core->stats().ctasCompleted.value(), 10u);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include "gpu/l1_cache.hpp"
#include "gpu/shared_l1.hpp"

namespace dr
{
namespace
{

GpuConfig
cfg()
{
    GpuConfig g;
    g.numCores = 16;
    g.l1SizeKB = 4;
    g.l1Assoc = 4;
    g.l1LineBytes = 128;
    g.dcl1CoresPerCluster = 8;
    g.dcl1Slices = 4;
    return g;
}

TEST(PrivateL1, CoresAreIsolated)
{
    PrivateL1 l1(cfg());
    l1.fill(0, 0x1000);
    EXPECT_TRUE(l1.contains(0, 0x1000));
    EXPECT_FALSE(l1.contains(1, 0x1000));
    EXPECT_EQ(l1.load(1, 0x1000, 0), L1Result::Miss);
    EXPECT_EQ(l1.load(0, 0x1000, 0), L1Result::Hit);
}

TEST(PrivateL1, FlushOnlyAffectsOneCore)
{
    PrivateL1 l1(cfg());
    l1.fill(0, 0x1000);
    l1.fill(1, 0x1000);
    l1.flush(0);
    EXPECT_FALSE(l1.contains(0, 0x1000));
    EXPECT_TRUE(l1.contains(1, 0x1000));
}

TEST(PrivateL1, WriteThroughKeepsLineValid)
{
    PrivateL1 l1(cfg());
    l1.fill(0, 0x1000);
    l1.write(0, 0x1000, 0);
    EXPECT_TRUE(l1.contains(0, 0x1000));
    EXPECT_EQ(l1.stats().writeHits.value(), 1u);
}

TEST(PrivateL1, WriteMissDoesNotAllocate)
{
    PrivateL1 l1(cfg());
    l1.write(0, 0x2000, 0);
    EXPECT_FALSE(l1.contains(0, 0x2000));
}

TEST(SharedL1, ClusterMembersShareLines)
{
    SharedL1 l1(cfg());
    l1.fill(0, 0x1000);
    // Cores 0..7 are one cluster.
    EXPECT_TRUE(l1.contains(7, 0x1000));
    // Core 8 is in the next cluster.
    EXPECT_FALSE(l1.contains(8, 0x1000));
}

TEST(SharedL1, SlicePortSerializesSameCycle)
{
    SharedL1 l1(cfg());
    l1.fill(0, 0x1000);
    l1.tick(0);
    EXPECT_EQ(l1.load(0, 0x1000, 0), L1Result::Hit);
    // Second access to the same slice in the same cycle conflicts.
    EXPECT_EQ(l1.load(1, 0x1000, 0), L1Result::PortBusy);
    EXPECT_EQ(l1.stats().portConflicts.value(), 1u);
    // Next cycle the port is free again.
    l1.tick(1);
    EXPECT_EQ(l1.load(1, 0x1000, 1), L1Result::Hit);
}

TEST(SharedL1, DifferentSlicesAccessInParallel)
{
    SharedL1 l1(cfg());
    l1.fill(0, 0x1000);
    l1.fill(0, 0x1080);  // adjacent line -> different slice
    l1.tick(0);
    EXPECT_NE(l1.sliceOf(0x1000), l1.sliceOf(0x1080));
    EXPECT_EQ(l1.load(0, 0x1000, 0), L1Result::Hit);
    EXPECT_EQ(l1.load(1, 0x1080, 0), L1Result::Hit);
}

TEST(SharedL1, CapacityEqualsClusterSum)
{
    // 8 cores x 4 KB = 32 KB per cluster: 256 lines fit without
    // eviction when spread over sets.
    SharedL1 l1(cfg());
    int evictions = 0;
    for (int i = 0; i < 256; ++i)
        evictions += l1.fill(0, static_cast<Addr>(i) * 128);
    EXPECT_EQ(evictions, 0);
}

TEST(SharedL1, HitLatencyIncludesClusterInterconnect)
{
    SharedL1 shared(cfg());
    PrivateL1 priv(cfg());
    EXPECT_GT(shared.hitLatency(), priv.hitLatency());
}

TEST(SharedL1, FlushInvalidatesWholeCluster)
{
    SharedL1 l1(cfg());
    l1.fill(0, 0x1000);
    l1.fill(3, 0x2000);
    l1.flush(1);  // any member flushes the cluster
    EXPECT_FALSE(l1.contains(0, 0x1000));
    EXPECT_FALSE(l1.contains(3, 0x2000));
}

TEST(DynEb, StartsInSharedMode)
{
    DynEbL1 l1(cfg());
    EXPECT_TRUE(l1.sharedActive());
}

TEST(DynEb, CommitsToPrivateUnderPortConflicts)
{
    // Hammer one shared line from many cores: shared mode suffers port
    // conflicts; after probing, DynEB must fall back to private.
    DynEbL1 l1(cfg());
    Cycle now = 0;
    for (int i = 0; i < 12000; ++i) {
        l1.tick(now);
        for (int core = 0; core < 8; ++core) {
            if (l1.load(core, 0x1000, now) == L1Result::Miss)
                l1.fill(core, 0x1000);
        }
        ++now;
    }
    EXPECT_FALSE(l1.sharedActive());
}

TEST(DynEb, FlushRestartsProbing)
{
    DynEbL1 l1(cfg());
    Cycle now = 0;
    for (int i = 0; i < 12000; ++i) {
        l1.tick(now);
        for (int core = 0; core < 8; ++core) {
            if (l1.load(core, 0x1000, now) == L1Result::Miss)
                l1.fill(core, 0x1000);
        }
        ++now;
    }
    ASSERT_FALSE(l1.sharedActive());
    l1.flush(0);
    EXPECT_TRUE(l1.sharedActive());  // probing again
}

TEST(Factory, BuildsConfiguredOrganization)
{
    GpuConfig g = cfg();
    g.l1Org = L1Organization::Private;
    EXPECT_NE(dynamic_cast<PrivateL1 *>(makeL1Organizer(g).get()), nullptr);
    g.l1Org = L1Organization::DcL1;
    EXPECT_NE(dynamic_cast<SharedL1 *>(makeL1Organizer(g).get()), nullptr);
    g.l1Org = L1Organization::DynEB;
    EXPECT_NE(dynamic_cast<DynEbL1 *>(makeL1Organizer(g).get()), nullptr);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include "common/invariant.hpp"
#include "common/ownership.hpp"
#include "gpu/l1_cache.hpp"
#include "gpu/shared_l1.hpp"

namespace dr
{
namespace
{

GpuConfig
cfg()
{
    GpuConfig g;
    g.numCores = 16;
    g.l1SizeKB = 4;
    g.l1Assoc = 4;
    g.l1LineBytes = 128;
    g.dcl1CoresPerCluster = 8;
    g.dcl1Slices = 4;
    return g;
}

/**
 * Drive one cycle of a staged organization the way HeteroSystem does:
 * per-cycle bookkeeping, then the caller's lookups, then the serial
 * merge that lands the staged effects (DESIGN.md §14).
 */
template <typename Fn>
void
cycle(L1Organizer &l1, Cycle now, Fn &&lookups)
{
    l1.tick(now);
    lookups();
    l1.commitCycle(now);
}

TEST(PrivateL1, CoresAreIsolated)
{
    PrivateL1 l1(cfg());
    l1.fill(0, 0x1000);
    EXPECT_TRUE(l1.contains(0, 0x1000));
    EXPECT_FALSE(l1.contains(1, 0x1000));
    EXPECT_EQ(l1.load(1, 0x1000, 0), L1Result::Miss);
    EXPECT_EQ(l1.load(0, 0x1000, 0), L1Result::Hit);
}

TEST(PrivateL1, FlushOnlyAffectsOneCore)
{
    PrivateL1 l1(cfg());
    l1.fill(0, 0x1000);
    l1.fill(1, 0x1000);
    l1.flush(0);
    EXPECT_FALSE(l1.contains(0, 0x1000));
    EXPECT_TRUE(l1.contains(1, 0x1000));
}

TEST(PrivateL1, WriteThroughKeepsLineValid)
{
    PrivateL1 l1(cfg());
    l1.fill(0, 0x1000);
    l1.write(0, 0x1000, 0);
    EXPECT_TRUE(l1.contains(0, 0x1000));
    EXPECT_EQ(l1.stats().writeHits.value(), 1u);
}

TEST(PrivateL1, WriteMissDoesNotAllocate)
{
    PrivateL1 l1(cfg());
    l1.write(0, 0x2000, 0);
    EXPECT_FALSE(l1.contains(0, 0x2000));
}

TEST(SharedL1, ClusterMembersShareLines)
{
    SharedL1 l1(cfg());
    cycle(l1, 0, [&] { l1.fill(0, 0x1000); });
    // Cores 0..7 are one cluster.
    EXPECT_TRUE(l1.contains(7, 0x1000));
    // Core 8 is in the next cluster.
    EXPECT_FALSE(l1.contains(8, 0x1000));
}

TEST(SharedL1, FillIsStagedUntilCommit)
{
    SharedL1 l1(cfg());
    l1.tick(0);
    l1.fill(0, 0x1000);
    // The fill is staged against the frozen tags: nothing is visible
    // until the serial merge lands it.
    EXPECT_FALSE(l1.contains(0, 0x1000));
    l1.commitCycle(0);
    EXPECT_TRUE(l1.contains(0, 0x1000));
}

TEST(SharedL1, SlicePortPipelinesSameCycleClaims)
{
    SharedL1 l1(cfg());
    cycle(l1, 0, [&] { l1.fill(0, 0x1000); });
    // Both same-cycle claims are admitted (the decision depends only on
    // the committed pre-cycle port state, never on in-cycle order)...
    cycle(l1, 1, [&] {
        EXPECT_EQ(l1.load(0, 0x1000, 1), L1Result::Hit);
        EXPECT_EQ(l1.load(1, 0x1000, 1), L1Result::Hit);
    });
    // ...and the pipelined port then drains one access per cycle: two
    // claims at cycle 1 keep the slice busy through cycle 2.
    cycle(l1, 2, [&] {
        EXPECT_EQ(l1.load(1, 0x1000, 2), L1Result::PortBusy);
    });
    EXPECT_EQ(l1.stats().portConflicts.value(), 1u);
    cycle(l1, 3, [&] {
        EXPECT_EQ(l1.load(1, 0x1000, 3), L1Result::Hit);
    });
}

TEST(SharedL1, SingleClaimFreesPortNextCycle)
{
    SharedL1 l1(cfg());
    cycle(l1, 0, [&] { l1.fill(0, 0x1000); });
    cycle(l1, 1, [&] {
        EXPECT_EQ(l1.load(0, 0x1000, 1), L1Result::Hit);
    });
    // One claim per cycle sustains full throughput: no conflicts.
    cycle(l1, 2, [&] {
        EXPECT_EQ(l1.load(0, 0x1000, 2), L1Result::Hit);
    });
    EXPECT_EQ(l1.stats().portConflicts.value(), 0u);
}

TEST(SharedL1, DifferentSlicesAccessInParallel)
{
    SharedL1 l1(cfg());
    cycle(l1, 0, [&] {
        l1.fill(0, 0x1000);
        l1.fill(0, 0x1080);  // adjacent line -> different slice
    });
    EXPECT_NE(l1.sliceOf(0x1000), l1.sliceOf(0x1080));
    cycle(l1, 1, [&] {
        EXPECT_EQ(l1.load(0, 0x1000, 1), L1Result::Hit);
        EXPECT_EQ(l1.load(1, 0x1080, 1), L1Result::Hit);
    });
    // Distinct slices, distinct ports: both again next cycle.
    cycle(l1, 2, [&] {
        EXPECT_EQ(l1.load(0, 0x1000, 2), L1Result::Hit);
        EXPECT_EQ(l1.load(1, 0x1080, 2), L1Result::Hit);
    });
    EXPECT_EQ(l1.stats().portConflicts.value(), 0u);
}

TEST(SharedL1, CapacityEqualsClusterSum)
{
    // 8 cores x 4 KB = 32 KB per cluster: 256 lines fit without
    // eviction when spread over sets. One fill per cycle so each
    // eviction prediction is judged against committed tags.
    SharedL1 l1(cfg());
    int evictions = 0;
    for (int i = 0; i < 256; ++i) {
        cycle(l1, static_cast<Cycle>(i), [&] {
            evictions += l1.fill(0, static_cast<Addr>(i) * 128);
        });
    }
    EXPECT_EQ(evictions, 0);
}

TEST(SharedL1, HitLatencyIncludesClusterInterconnect)
{
    SharedL1 shared(cfg());
    PrivateL1 priv(cfg());
    EXPECT_GT(shared.hitLatency(), priv.hitLatency());
}

TEST(SharedL1, FlushInvalidatesWholeCluster)
{
    SharedL1 l1(cfg());
    cycle(l1, 0, [&] {
        l1.fill(0, 0x1000);
        l1.fill(3, 0x2000);
    });
    l1.flush(1);  // any member flushes the cluster
    EXPECT_FALSE(l1.contains(0, 0x1000));
    EXPECT_FALSE(l1.contains(3, 0x2000));
}

TEST(SharedL1, FlushDropsStagedEffects)
{
    SharedL1 l1(cfg());
    l1.tick(0);
    l1.fill(0, 0x1000);
    // Flush lands between stage and commit: the staged fill must not
    // resurrect the invalidated cluster at the merge.
    l1.flush(0);
    l1.commitCycle(0);
    EXPECT_FALSE(l1.contains(0, 0x1000));
}

TEST(SharedL1, ConcurrentLookupsAreStampChecked)
{
    if (!checkedBuild())
        GTEST_SKIP() << "stamp checks need a DR_CHECKED build";
    SharedL1 l1(cfg());
    l1.setCoreDomain(0, 0);
    l1.setCoreDomain(1, 1);
    // A lookup for core 1 issued from domain 0's compute worker writes
    // core 1's staged bank cross-domain: the writer stamp must panic.
    EXPECT_DEATH(
        {
            phase::ComputeScope cs(0);
            l1.load(1, 0x1000, 0);
        },
        "phase violation");
}

TEST(DynEb, StartsInSharedMode)
{
    DynEbL1 l1(cfg());
    EXPECT_TRUE(l1.sharedActive());
}

TEST(DynEb, CommitsToPrivateUnderPortConflicts)
{
    // Hammer one shared line from many cores: shared mode suffers port
    // conflicts; after probing, DynEB must fall back to private.
    DynEbL1 l1(cfg());
    for (Cycle now = 0; now < 12000; ++now) {
        cycle(l1, now, [&] {
            for (int core = 0; core < 8; ++core) {
                if (l1.load(core, 0x1000, now) == L1Result::Miss)
                    l1.fill(core, 0x1000);
            }
        });
    }
    EXPECT_FALSE(l1.sharedActive());
}

TEST(DynEb, FlushRestartsProbing)
{
    DynEbL1 l1(cfg());
    for (Cycle now = 0; now < 12000; ++now) {
        cycle(l1, now, [&] {
            for (int core = 0; core < 8; ++core) {
                if (l1.load(core, 0x1000, now) == L1Result::Miss)
                    l1.fill(core, 0x1000);
            }
        });
    }
    ASSERT_FALSE(l1.sharedActive());
    l1.flush(0);
    EXPECT_TRUE(l1.sharedActive());  // probing again
}

TEST(Factory, BuildsConfiguredOrganization)
{
    GpuConfig g = cfg();
    g.l1Org = L1Organization::Private;
    EXPECT_NE(dynamic_cast<PrivateL1 *>(makeL1Organizer(g).get()), nullptr);
    g.l1Org = L1Organization::DcL1;
    EXPECT_NE(dynamic_cast<SharedL1 *>(makeL1Organizer(g).get()), nullptr);
    g.l1Org = L1Organization::DynEB;
    EXPECT_NE(dynamic_cast<DynEbL1 *>(makeL1Organizer(g).get()), nullptr);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include <set>

#include "gpu/realistic_probing.hpp"

namespace dr
{
namespace
{

std::vector<NodeId>
nodes(int n)
{
    std::vector<NodeId> out;
    for (int i = 0; i < n; ++i)
        out.push_back(static_cast<NodeId>(10 + i));
    return out;
}

TEST(SharingPredictor, StartsOptimistic)
{
    // RP probes aggressively by default (5.9x request inflation in the
    // paper), so fresh counters predict "probe".
    SharingPredictor pred(64);
    EXPECT_TRUE(pred.shouldProbe(0x1000));
}

TEST(SharingPredictor, NegativeTrainingDisablesProbing)
{
    SharingPredictor pred(64);
    pred.train(0x1000, false);
    pred.train(0x1000, false);
    EXPECT_FALSE(pred.shouldProbe(0x1000));
}

TEST(SharingPredictor, PositiveTrainingReenables)
{
    SharingPredictor pred(64);
    for (int i = 0; i < 3; ++i)
        pred.train(0x1000, false);
    EXPECT_FALSE(pred.shouldProbe(0x1000));
    pred.train(0x1000, true);
    pred.train(0x1000, true);
    EXPECT_TRUE(pred.shouldProbe(0x1000));
}

TEST(SharingPredictor, CountersSaturate)
{
    SharingPredictor pred(64);
    for (int i = 0; i < 10; ++i)
        pred.train(0x1000, true);
    // One negative outcome must not flip a saturated counter.
    pred.train(0x1000, false);
    EXPECT_TRUE(pred.shouldProbe(0x1000));
}

TEST(ProbeCandidates, NeverIncludesSelf)
{
    const auto ids = nodes(40);
    for (Addr line = 0; line < 64 * 128; line += 128) {
        const auto targets = probeCandidates(5, line, 2, ids);
        for (const NodeId t : targets)
            EXPECT_NE(t, ids[5]);
    }
}

TEST(ProbeCandidates, ReturnsRequestedCountDistinct)
{
    const auto ids = nodes(40);
    const auto targets = probeCandidates(0, 0x4000, 4, ids);
    EXPECT_EQ(targets.size(), 4u);
    const std::set<NodeId> unique(targets.begin(), targets.end());
    EXPECT_EQ(unique.size(), 4u);
}

TEST(ProbeCandidates, DeterministicPerLine)
{
    const auto ids = nodes(40);
    EXPECT_EQ(probeCandidates(3, 0x8000, 2, ids),
              probeCandidates(3, 0x8000, 2, ids));
}

TEST(ProbeCandidates, SpreadAcrossCores)
{
    // Hash-based selection: over many lines the candidates must cover
    // many different cores (RP searches blindly).
    const auto ids = nodes(40);
    std::set<NodeId> seen;
    for (int i = 0; i < 200; ++i) {
        for (const NodeId t :
             probeCandidates(0, static_cast<Addr>(i) * 128, 2, ids)) {
            seen.insert(t);
        }
    }
    EXPECT_GT(seen.size(), 30u);
}

TEST(ProbeCandidates, TwoCoreSystemProbesTheOther)
{
    const auto ids = nodes(2);
    const auto targets = probeCandidates(0, 0x1000, 2, ids);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], ids[1]);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include <set>

#include "gpu/cta_scheduler.hpp"

namespace dr
{
namespace
{

TEST(CtaSchedulerRR, CtaMapsToCoreModuloN)
{
    // Round-robin launch: CTA i runs on core (i mod N).
    CtaScheduler sched(CtaSchedule::RoundRobin, 40, 4);
    for (int round = 0; round < 3; ++round) {
        for (int core = 0; core < 4; ++core) {
            const CtaAssignment a = sched.next(core);
            EXPECT_EQ(a.cta % 4, core);
            EXPECT_EQ(a.cta, core + round * 4);
            EXPECT_EQ(a.kernelInstance, 0u);
        }
    }
}

TEST(CtaSchedulerRR, AdjacentCtasOnDifferentCores)
{
    CtaScheduler sched(CtaSchedule::RoundRobin, 16, 4);
    std::vector<int> coreOf(16, -1);
    for (int round = 0; round < 4; ++round) {
        for (int core = 0; core < 4; ++core)
            coreOf[sched.next(core).cta] = core;
    }
    for (int cta = 0; cta + 1 < 16; ++cta)
        EXPECT_NE(coreOf[cta], coreOf[cta + 1]);
}

TEST(CtaSchedulerRR, RelaunchBumpsInstance)
{
    CtaScheduler sched(CtaSchedule::RoundRobin, 8, 4);
    // Core 0 owns CTAs {0, 4}: after two assignments the instance
    // advances.
    EXPECT_EQ(sched.next(0).kernelInstance, 0u);
    EXPECT_EQ(sched.next(0).kernelInstance, 0u);
    const CtaAssignment third = sched.next(0);
    EXPECT_EQ(third.kernelInstance, 1u);
    EXPECT_EQ(third.cta, 0);
}

TEST(CtaSchedulerDistributed, ContiguousChunks)
{
    CtaScheduler sched(CtaSchedule::Distributed, 40, 4);
    for (int core = 0; core < 4; ++core) {
        for (int i = 0; i < 10; ++i) {
            const CtaAssignment a = sched.next(core);
            EXPECT_EQ(a.cta, core * 10 + i);
        }
    }
}

TEST(CtaSchedulerDistributed, PerCoreInstanceIndependent)
{
    CtaScheduler sched(CtaSchedule::Distributed, 8, 4);
    // Core 0 exhausts its 2-CTA chunk twice; core 1 untouched.
    sched.next(0);
    sched.next(0);
    EXPECT_EQ(sched.next(0).kernelInstance, 1u);
    EXPECT_EQ(sched.next(1).kernelInstance, 0u);
}

TEST(CtaSchedulerDistributed, MoreCoresThanCtasStillProgresses)
{
    CtaScheduler sched(CtaSchedule::Distributed, 2, 8);
    for (int core = 0; core < 8; ++core) {
        const CtaAssignment a = sched.next(core);
        EXPECT_GE(a.cta, 0);
        EXPECT_LT(a.cta, 2);
    }
}

TEST(CtaSchedulerProperty, AllCtasCoveredEachInstance)
{
    for (const CtaSchedule policy :
         {CtaSchedule::RoundRobin, CtaSchedule::Distributed}) {
        CtaScheduler sched(policy, 24, 4);
        std::set<int> seen;
        // Pull one full instance's worth per core.
        for (int core = 0; core < 4; ++core) {
            for (int i = 0; i < 6; ++i)
                seen.insert(sched.next(core).cta);
        }
        EXPECT_EQ(seen.size(), 24u) << ctaScheduleName(policy);
    }
}

} // namespace
} // namespace dr

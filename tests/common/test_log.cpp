#include <gtest/gtest.h>

#include "common/invariant.hpp"
#include "common/log.hpp"

namespace dr
{
namespace
{

TEST(LogDeath, PanicAbortsWithMessage)
{
    EXPECT_DEATH(panic("router ", 7, " lost a credit"),
                 "panic: router 7 lost a credit");
}

TEST(LogDeath, FatalExitsWithStatusOne)
{
    EXPECT_EXIT(fatal("bad config value ", 42),
                ::testing::ExitedWithCode(1),
                "fatal: bad config value 42");
}

TEST(Log, QuietSuppressesWarnAndInform)
{
    setQuiet(true);
    ::testing::internal::CaptureStderr();
    ::testing::internal::CaptureStdout();
    warn("should not appear");
    inform("should not appear");
    EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
    EXPECT_EQ(::testing::internal::GetCapturedStdout(), "");
    setQuiet(false);
}

TEST(Log, WarnAndInformPrintWhenNotQuiet)
{
    setQuiet(false);
    ::testing::internal::CaptureStderr();
    warn("buffer nearly full");
    EXPECT_NE(::testing::internal::GetCapturedStderr().find(
                  "warn: buffer nearly full"),
              std::string::npos);
    ::testing::internal::CaptureStdout();
    inform("stats reset");
    EXPECT_NE(::testing::internal::GetCapturedStdout().find(
                  "info: stats reset"),
              std::string::npos);
}

TEST(Invariant, MacrosPassOnTrueConditions)
{
    // Must be a no-op in every build type.
    DR_ASSERT(1 + 1 == 2);
    DR_ASSERT_MSG(true, "never printed");
    DR_INVARIANT(2 > 1, "never printed");
}

TEST(Invariant, CheckedBuildMatchesCompileDefinition)
{
#ifdef DR_CHECKED
    EXPECT_TRUE(checkedBuild());
#else
    EXPECT_FALSE(checkedBuild());
#endif
}

#ifdef DR_CHECKED
TEST(InvariantDeath, FailedAssertPanicsInCheckedBuilds)
{
    EXPECT_DEATH(DR_ASSERT(1 == 2), "assertion failed: 1 == 2");
}

TEST(InvariantDeath, FailedInvariantReportsMessage)
{
    const int credits = -1;
    EXPECT_DEATH(DR_INVARIANT(credits >= 0, "credits went negative: ",
                              credits),
                 "invariant violated.*credits went negative: -1");
}
#endif

} // namespace
} // namespace dr

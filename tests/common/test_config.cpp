#include <gtest/gtest.h>

#include "common/config.hpp"

namespace dr
{
namespace
{

TEST(Config, PaperDefaultsMatchTableI)
{
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.gpu.numCores, 40);
    EXPECT_EQ(cfg.cpu.numCores, 16);
    EXPECT_EQ(cfg.mem.numNodes, 8);
    EXPECT_EQ(cfg.noc.meshWidth, 8);
    EXPECT_EQ(cfg.noc.meshHeight, 8);
    EXPECT_EQ(cfg.noc.channelBytes, 16);
    EXPECT_EQ(cfg.noc.vcsPerNet, 2);
    EXPECT_EQ(cfg.noc.vcDepthFlits, 4);
    EXPECT_EQ(cfg.gpu.l1SizeKB, 48);
    EXPECT_EQ(cfg.gpu.l1LineBytes, 128);
    EXPECT_EQ(cfg.mem.llcSliceKB, 1024);
    EXPECT_EQ(cfg.mem.llcAssoc, 16);
    EXPECT_EQ(cfg.mem.tCL, 12);
    EXPECT_EQ(cfg.mem.tRC, 40);
    cfg.validate();
}

TEST(Config, SmallConfigValidates)
{
    SystemConfig::makeSmall().validate();
}

TEST(Config, GpuReplyIsNineFlits)
{
    // 128 B line / 16 B channel + 1 header = 9 flits (paper Section I).
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.flitsFor(MsgType::ReadReply, TrafficClass::Gpu), 9);
}

TEST(Config, RequestsAreSingleFlit)
{
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.flitsFor(MsgType::ReadReq, TrafficClass::Gpu), 1);
    EXPECT_EQ(cfg.flitsFor(MsgType::DelegatedReq, TrafficClass::Gpu), 1);
    EXPECT_EQ(cfg.flitsFor(MsgType::ProbeReq, TrafficClass::Gpu), 1);
    EXPECT_EQ(cfg.flitsFor(MsgType::ProbeNack, TrafficClass::Gpu), 1);
    EXPECT_EQ(cfg.flitsFor(MsgType::WriteAck, TrafficClass::Cpu), 1);
}

TEST(Config, CpuReplyUsesCpuLineSize)
{
    // 64 B CPU lines: 1 + 64/16 = 5 flits.
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.flitsFor(MsgType::ReadReply, TrafficClass::Cpu), 5);
}

TEST(Config, DoubleBandwidthHalvesDataFlits)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.bandwidthScale = 2.0;
    EXPECT_EQ(cfg.noc.effectiveChannelBytes(), 32);
    EXPECT_EQ(cfg.flitsFor(MsgType::ReadReply, TrafficClass::Gpu), 5);
}

TEST(Config, SharedPhysicalDoublesChannel)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.sharedPhysical = true;
    EXPECT_EQ(cfg.noc.effectiveChannelBytes(), 32);
}

TEST(Config, WriteCarriesPayload)
{
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_GT(cfg.flitsFor(MsgType::WriteReq, TrafficClass::Gpu), 1);
    EXPECT_LT(cfg.flitsFor(MsgType::WriteReq, TrafficClass::Gpu),
              cfg.flitsFor(MsgType::ReadReply, TrafficClass::Gpu));
}

TEST(ConfigDeath, UnbalancedNodeMixFails)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.gpu.numCores = 41;
    EXPECT_DEATH(cfg.validate(), "node mix");
}

TEST(ConfigDeath, MismatchedLineSizesFail)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.gpu.l1LineBytes = 64;
    EXPECT_DEATH(cfg.validate(), "line sizes");
}

TEST(Config, MessageToStringMentionsType)
{
    Message m;
    m.type = MsgType::DelegatedReq;
    m.id = 42;
    EXPECT_NE(m.toString().find("DelegatedReq"), std::string::npos);
}

TEST(Config, OnRequestNetworkClassification)
{
    EXPECT_TRUE(onRequestNetwork(MsgType::ReadReq));
    EXPECT_TRUE(onRequestNetwork(MsgType::WriteReq));
    EXPECT_TRUE(onRequestNetwork(MsgType::DelegatedReq));
    EXPECT_TRUE(onRequestNetwork(MsgType::ProbeReq));
    EXPECT_FALSE(onRequestNetwork(MsgType::ReadReply));
    EXPECT_FALSE(onRequestNetwork(MsgType::WriteAck));
    EXPECT_FALSE(onRequestNetwork(MsgType::ProbeNack));
}

} // namespace
} // namespace dr

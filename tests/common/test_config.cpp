#include <gtest/gtest.h>

#include "common/config.hpp"

namespace dr
{
namespace
{

TEST(Config, PaperDefaultsMatchTableI)
{
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.gpu.numCores, 40);
    EXPECT_EQ(cfg.cpu.numCores, 16);
    EXPECT_EQ(cfg.mem.numNodes, 8);
    EXPECT_EQ(cfg.noc.meshWidth, 8);
    EXPECT_EQ(cfg.noc.meshHeight, 8);
    EXPECT_EQ(cfg.noc.channelBytes, 16);
    EXPECT_EQ(cfg.noc.vcsPerNet, 2);
    EXPECT_EQ(cfg.noc.vcDepthFlits, 4);
    EXPECT_EQ(cfg.gpu.l1SizeKB, 48);
    EXPECT_EQ(cfg.gpu.l1LineBytes, 128);
    EXPECT_EQ(cfg.mem.llcSliceKB, 1024);
    EXPECT_EQ(cfg.mem.llcAssoc, 16);
    EXPECT_EQ(cfg.mem.tCL, 12);
    EXPECT_EQ(cfg.mem.tRC, 40);
    cfg.validate();
}

TEST(Config, SmallConfigValidates)
{
    SystemConfig::makeSmall().validate();
}

TEST(Config, GpuReplyIsNineFlits)
{
    // 128 B line / 16 B channel + 1 header = 9 flits (paper Section I).
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.flitsFor(MsgType::ReadReply, TrafficClass::Gpu), 9);
}

TEST(Config, RequestsAreSingleFlit)
{
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.flitsFor(MsgType::ReadReq, TrafficClass::Gpu), 1);
    EXPECT_EQ(cfg.flitsFor(MsgType::DelegatedReq, TrafficClass::Gpu), 1);
    EXPECT_EQ(cfg.flitsFor(MsgType::ProbeReq, TrafficClass::Gpu), 1);
    EXPECT_EQ(cfg.flitsFor(MsgType::ProbeNack, TrafficClass::Gpu), 1);
    EXPECT_EQ(cfg.flitsFor(MsgType::WriteAck, TrafficClass::Cpu), 1);
}

TEST(Config, CpuReplyUsesCpuLineSize)
{
    // 64 B CPU lines: 1 + 64/16 = 5 flits.
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_EQ(cfg.flitsFor(MsgType::ReadReply, TrafficClass::Cpu), 5);
}

TEST(Config, DoubleBandwidthHalvesDataFlits)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.bandwidthScale = 2.0;
    EXPECT_EQ(cfg.noc.effectiveChannelBytes(), 32);
    EXPECT_EQ(cfg.flitsFor(MsgType::ReadReply, TrafficClass::Gpu), 5);
}

TEST(Config, SharedPhysicalDoublesChannel)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.sharedPhysical = true;
    EXPECT_EQ(cfg.noc.effectiveChannelBytes(), 32);
}

TEST(Config, WriteCarriesPayload)
{
    const SystemConfig cfg = SystemConfig::makePaper();
    EXPECT_GT(cfg.flitsFor(MsgType::WriteReq, TrafficClass::Gpu), 1);
    EXPECT_LT(cfg.flitsFor(MsgType::WriteReq, TrafficClass::Gpu),
              cfg.flitsFor(MsgType::ReadReply, TrafficClass::Gpu));
}

TEST(ConfigDeath, UnbalancedNodeMixFails)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.gpu.numCores = 41;
    EXPECT_DEATH(cfg.validate(), "node mix");
}

TEST(ConfigDeath, MismatchedLineSizesFail)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.gpu.l1LineBytes = 64;
    EXPECT_DEATH(cfg.validate(), "line sizes");
}

TEST(Config, VnetPartitionValidates)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.vnets = true;
    cfg.noc.vcsPerNet = 2;  // 1 + 1 on each split network
    cfg.validate();
    cfg.noc.sharedPhysical = true;
    cfg.noc.sharedReqVcs = 2;
    cfg.noc.sharedReplyVcs = 2;
    cfg.noc.vnetRequestVcs = 1;
    cfg.noc.vnetForwardVcs = 1;
    cfg.noc.vnetReplyVcs = 1;
    cfg.noc.vnetDelegatedVcs = 1;
    cfg.validate();
}

TEST(ConfigDeath, VnetVcCountsMustSumToNetworkVcs)
{
    // A mismatched partition must be fatal, never silently clamped:
    // a clamp would quietly hand a VN fewer VCs than the experiment
    // configured and skew every result downstream.
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.vnets = true;
    cfg.noc.vcsPerNet = 4;
    cfg.noc.vnetRequestVcs = 1;
    cfg.noc.vnetForwardVcs = 1;  // 1 + 1 != 4
    EXPECT_DEATH(cfg.validate(), "must sum");

    SystemConfig rep = SystemConfig::makePaper();
    rep.noc.vnets = true;
    rep.noc.vcsPerNet = 2;
    rep.noc.vnetReplyVcs = 2;  // reply side: 2 + 1 != 2
    EXPECT_DEATH(rep.validate(), "must sum");

    SystemConfig shared = SystemConfig::makePaper();
    shared.noc.vnets = true;
    shared.noc.sharedPhysical = true;
    shared.noc.sharedReqVcs = 3;  // 1 + 1 != 3
    EXPECT_DEATH(shared.validate(), "must sum");
}

TEST(ConfigDeath, EveryVnetNeedsAVc)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.noc.vnets = true;
    cfg.noc.vcsPerNet = 2;
    cfg.noc.vnetForwardVcs = 0;
    cfg.noc.vnetRequestVcs = 2;
    EXPECT_DEATH(cfg.validate(), "at least one VC");
}

TEST(Config, MessageToStringMentionsType)
{
    Message m;
    m.type = MsgType::DelegatedReq;
    m.id = 42;
    EXPECT_NE(m.toString().find("DelegatedReq"), std::string::npos);
}

TEST(Config, OnRequestNetworkClassification)
{
    EXPECT_TRUE(onRequestNetwork(MsgType::ReadReq));
    EXPECT_TRUE(onRequestNetwork(MsgType::WriteReq));
    EXPECT_TRUE(onRequestNetwork(MsgType::DelegatedReq));
    EXPECT_TRUE(onRequestNetwork(MsgType::ProbeReq));
    EXPECT_FALSE(onRequestNetwork(MsgType::ReadReply));
    EXPECT_FALSE(onRequestNetwork(MsgType::WriteAck));
    EXPECT_FALSE(onRequestNetwork(MsgType::ProbeNack));
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include <sstream>

#include "common/stats.hpp"

namespace dr
{
namespace
{

TEST(Counter, StartsAtZeroAndCounts)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Average, EmptyMeanIsZero)
{
    Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Average, ComputesMean)
{
    Average a;
    a.sample(2.0);
    a.sample(4.0);
    a.sample(6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.sum(), 12.0);
    EXPECT_EQ(a.count(), 3u);
}

TEST(Average, ResetClears)
{
    Average a;
    a.sample(10.0);
    a.reset();
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.count(), 0u);
}

TEST(Histogram, BasicBinning)
{
    Histogram h(100, 10);
    h.sample(5);   // bin 0
    h.sample(15);  // bin 1
    h.sample(95);  // bin 9
    EXPECT_EQ(h.bins()[0], 1u);
    EXPECT_EQ(h.bins()[1], 1u);
    EXPECT_EQ(h.bins()[9], 1u);
    EXPECT_EQ(h.count(), 3u);
}

TEST(Histogram, OverflowBin)
{
    Histogram h(10, 2);
    h.sample(10);
    h.sample(1000);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.count(), 2u);
}

TEST(Histogram, TracksMinMaxMean)
{
    Histogram h(1000, 10);
    h.sample(10);
    h.sample(20);
    h.sample(60);
    EXPECT_EQ(h.minValue(), 10u);
    EXPECT_EQ(h.maxValue(), 60u);
    EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(Histogram, PercentileMonotonic)
{
    Histogram h(1000, 100);
    for (int i = 0; i < 1000; ++i)
        h.sample(i);
    EXPECT_LE(h.percentile(10), h.percentile(50));
    EXPECT_LE(h.percentile(50), h.percentile(90));
    EXPECT_NEAR(h.percentile(50), 500.0, 20.0);
}

TEST(Histogram, ResetClears)
{
    Histogram h(100, 10);
    h.sample(50);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bins()[5], 0u);
}

TEST(StatGroup, DumpsRegisteredStats)
{
    StatGroup g("router0");
    Counter c;
    c += 7;
    Average a;
    a.sample(3.0);
    double scalar = 1.5;
    g.add("flits", c);
    g.add("latency", a);
    g.addScalar("util", &scalar);

    std::ostringstream os;
    g.dump(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("router0.flits 7"), std::string::npos);
    EXPECT_NE(out.find("router0.latency 3"), std::string::npos);
    EXPECT_NE(out.find("router0.util 1.5"), std::string::npos);
}

} // namespace
} // namespace dr

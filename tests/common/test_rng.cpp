#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dr
{
namespace
{

TEST(Rng, DeterministicForEqualSeeds)
{
    Rng a(123), b(123);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversAllValues)
{
    Rng rng(5);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = rng.range(-3, 3);
        ASSERT_GE(v, -3);
        ASSERT_LE(v, 3);
        sawLo |= v == -3;
        sawHi |= v == 3;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability)
{
    Rng rng(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include "cpu/cpu_node.hpp"
#include "cpu/cpu_profile.hpp"
#include "noc/interconnect.hpp"

namespace dr
{
namespace
{

TEST(CpuProfile, AllTableIIBenchmarksExist)
{
    for (const char *name :
         {"blackscholes", "bodytrack", "canneal", "dedup", "ferret",
          "fluidanimate", "swaptions", "vips", "x264"}) {
        const CpuProfile &p = cpuProfileFor(name);
        EXPECT_EQ(p.name, name);
        EXPECT_GT(p.accessRate, 0.0);
        EXPECT_LE(p.accessRate, 1.0);
        EXPECT_GE(p.depFraction, 0.0);
        EXPECT_LE(p.depFraction, 1.0);
        EXPECT_GT(p.workingSetKB, 0);
        EXPECT_GT(p.maxOutstanding, 0);
    }
}

TEST(CpuProfile, SensitivityOrderingMatchesPaper)
{
    // Figure 13's discussion: vips is latency-sensitive, dedup is not.
    EXPECT_GT(cpuProfileFor("vips").depFraction,
              cpuProfileFor("dedup").depFraction);
}

TEST(CpuProfile, UnknownNameDies)
{
    EXPECT_DEATH(cpuProfileFor("doom"), "unknown CPU benchmark");
}

TEST(CpuProfile, NamesListMatchesProfiles)
{
    const auto names = cpuBenchmarkNames();
    EXPECT_EQ(names.size(), 9u);
    for (const auto &n : names)
        EXPECT_EQ(cpuProfileFor(n).name, n);
}

/** Fixture: one CPU node wired to a small interconnect + echo server. */
class CpuNodeTest : public ::testing::Test
{
  protected:
    CpuNodeTest()
        : cfg(SystemConfig::makeSmall()),
          types(16, NodeType::GpuCore)
    {
        types[0] = NodeType::MemNode;
        types[1] = NodeType::MemNode;
        types[5] = NodeType::CpuCore;
        types[6] = NodeType::CpuCore;
        ic = std::make_unique<Interconnect>(cfg, types);
        map = std::make_unique<AddressMap>(2, cfg.mem.lineBytes,
                                           std::vector<NodeId>{0, 1},
                                           cfg.mem.mapSeed);
        node = std::make_unique<CpuNode>(5, 0, cfg,
                                         cpuProfileFor("vips"), *ic, *map);
    }

    /** Memory nodes reply after a fixed latency. */
    void
    serveMemory(Cycle now)
    {
        for (NodeId mem : {NodeId(0), NodeId(1)}) {
            while (ic->hasMessage(mem, NetKind::Request)) {
                Message req = ic->popMessage(mem, NetKind::Request);
                Message reply;
                reply.type = req.type == MsgType::WriteReq
                                 ? MsgType::WriteAck
                                 : MsgType::ReadReply;
                reply.cls = req.cls;
                reply.addr = req.addr;
                reply.src = mem;
                reply.dst = req.requester;
                reply.requester = req.requester;
                reply.id = req.id;
                if (ic->canSend(reply))
                    ic->send(reply, now);
            }
        }
    }

    SystemConfig cfg;
    std::vector<NodeType> types;
    std::unique_ptr<Interconnect> ic;
    std::unique_ptr<AddressMap> map;
    std::unique_ptr<CpuNode> node;
};

TEST_F(CpuNodeTest, GeneratesTrafficAndRetires)
{
    for (Cycle c = 0; c < 20000; ++c) {
        node->tick(c);
        serveMemory(c);
        ic->tick(c);
    }
    EXPECT_GT(node->stats().accesses.value(), 500u);
    EXPECT_GT(node->stats().requestsSent.value(), 10u);
    EXPECT_GT(node->stats().retired.value(), 5000u);
    EXPECT_GT(node->stats().l1Hits.value(), 0u);
    EXPECT_GT(node->stats().requestLatency.count(), 0u);
    EXPECT_GT(node->ipc(20000), 0.2);
    EXPECT_LE(node->ipc(20000), 1.0);
}

TEST_F(CpuNodeTest, BlockedCyclesReduceIpc)
{
    // Without any memory service the first dependent miss stalls the
    // core forever: retirement must stop.
    for (Cycle c = 0; c < 5000; ++c) {
        node->tick(c);
        ic->tick(c);  // no serveMemory
    }
    EXPECT_GT(node->stats().blockedCycles.value(), 1000u);
    EXPECT_LT(node->ipc(5000), 1.0);
}

TEST_F(CpuNodeTest, InjectionRateInPaperRange)
{
    // Paper: CPU injection is 0.013-0.084 flits/cycle. Requests are one
    // flit (plus write payloads); verify the order of magnitude.
    for (Cycle c = 0; c < 20000; ++c) {
        node->tick(c);
        serveMemory(c);
        ic->tick(c);
    }
    const double reqPerCycle =
        static_cast<double>(node->stats().requestsSent.value()) / 20000.0;
    EXPECT_GT(reqPerCycle, 0.001);
    EXPECT_LT(reqPerCycle, 0.12);
}

TEST_F(CpuNodeTest, OutstandingBoundedByMlp)
{
    for (Cycle c = 0; c < 10000; ++c) {
        node->tick(c);
        // Never serve: outstanding must saturate at the MLP bound.
        ic->tick(c);
        EXPECT_LE(node->outstanding(),
                  cpuProfileFor("vips").maxOutstanding);
    }
}

TEST_F(CpuNodeTest, LatencySensitivityOrdering)
{
    // vips (dep 0.8) loses more IPC than dedup (dep 0.15) under equal
    // memory latency.
    CpuNode dedupNode(6, 1, cfg, cpuProfileFor("dedup"), *ic, *map);
    CpuNode vipsNode(5, 0, cfg, cpuProfileFor("vips"), *ic, *map);
    // Compare blocked fractions under the same echo-served memory.
    for (Cycle c = 0; c < 20000; ++c) {
        dedupNode.tick(c);
        vipsNode.tick(c);
        serveMemory(c);
        ic->tick(c);
    }
    const double vipsBlocked =
        static_cast<double>(vipsNode.stats().blockedCycles.value());
    const double dedupBlocked =
        static_cast<double>(dedupNode.stats().blockedCycles.value());
    EXPECT_GT(vipsBlocked, dedupBlocked);
}

} // namespace
} // namespace dr

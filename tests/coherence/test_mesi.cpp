#include <gtest/gtest.h>

#include "coherence/mesi.hpp"

namespace dr
{
namespace
{

constexpr Cycle penalty = 20;

TEST(Mesi, FirstReadGetsExclusive)
{
    MesiDirectory dir(4, penalty);
    EXPECT_EQ(dir.access(0, 0x100, false), 0u);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Exclusive);
    EXPECT_TRUE(dir.isSharer(0, 0x100));
}

TEST(Mesi, SecondReaderSharesCleanly)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, false);
    EXPECT_EQ(dir.access(1, 0x100, false), 0u);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Shared);
    EXPECT_EQ(dir.sharerCount(0x100), 2);
}

TEST(Mesi, WriteInvalidatesSharers)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, false);
    dir.access(1, 0x100, false);
    dir.access(2, 0x100, false);
    const Cycle cost = dir.access(3, 0x100, true);
    EXPECT_EQ(cost, penalty);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Modified);
    EXPECT_EQ(dir.sharerCount(0x100), 1);
    EXPECT_TRUE(dir.isSharer(3, 0x100));
    EXPECT_EQ(dir.stats().invalidations.value(), 3u);
}

TEST(Mesi, OwnWriteAfterExclusiveIsFree)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, false);
    EXPECT_EQ(dir.access(0, 0x100, true), 0u);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Modified);
}

TEST(Mesi, ReadOfModifiedDowngradesOwner)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, true);
    const Cycle cost = dir.access(1, 0x100, false);
    EXPECT_EQ(cost, penalty);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Shared);
    EXPECT_EQ(dir.stats().downgrades.value(), 1u);
    EXPECT_EQ(dir.stats().writebacks.value(), 1u);
}

TEST(Mesi, WriteOfModifiedByOtherPullsData)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, true);
    const Cycle cost = dir.access(1, 0x100, true);
    EXPECT_EQ(cost, penalty);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Modified);
    EXPECT_TRUE(dir.isSharer(1, 0x100));
    EXPECT_FALSE(dir.isSharer(0, 0x100));
}

TEST(Mesi, ModifiedOwnerRereadIsFree)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, true);
    EXPECT_EQ(dir.access(0, 0x100, false), 0u);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Modified);
}

TEST(Mesi, EvictLastSharerUntracksLine)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, false);
    dir.evict(0, 0x100);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Invalid);
    EXPECT_EQ(dir.trackedLines(), 0u);
}

TEST(Mesi, EvictModifiedWritesBack)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, true);
    dir.evict(0, 0x100);
    EXPECT_EQ(dir.stats().writebacks.value(), 1u);
}

TEST(Mesi, EvictOneOfManySharersKeepsShared)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, false);
    dir.access(1, 0x100, false);
    dir.evict(0, 0x100);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Shared);
    EXPECT_EQ(dir.sharerCount(0x100), 1);
}

TEST(Mesi, IndependentLines)
{
    MesiDirectory dir(4, penalty);
    dir.access(0, 0x100, true);
    dir.access(1, 0x200, true);
    EXPECT_EQ(dir.stateOf(0x100), MesiState::Modified);
    EXPECT_EQ(dir.stateOf(0x200), MesiState::Modified);
    EXPECT_EQ(dir.trackedLines(), 2u);
}

TEST(MesiProperty, InvariantSingleOwnerForModified)
{
    // Random access trace: Modified always implies exactly one sharer.
    MesiDirectory dir(8, penalty);
    std::uint64_t x = 999;
    for (int i = 0; i < 5000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const int core = static_cast<int>((x >> 33) % 8);
        const Addr addr = ((x >> 40) % 16) * 64;
        const bool write = (x >> 60) % 3 == 0;
        dir.access(core, addr, write);
        if (dir.stateOf(addr) == MesiState::Modified ||
            dir.stateOf(addr) == MesiState::Exclusive) {
            ASSERT_EQ(dir.sharerCount(addr), 1);
        }
    }
}

} // namespace
} // namespace dr

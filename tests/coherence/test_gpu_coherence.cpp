#include <gtest/gtest.h>

#include "coherence/gpu_coherence.hpp"

namespace dr
{
namespace
{

TEST(GpuCoherence, EpochsStartAtZero)
{
    GpuCoherence c(4);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(c.epochOf(i), 0u);
}

TEST(GpuCoherence, FlushBumpsOnlyThatCore)
{
    GpuCoherence c(4);
    c.flush(1);
    EXPECT_EQ(c.epochOf(0), 0u);
    EXPECT_EQ(c.epochOf(1), 1u);
    EXPECT_EQ(c.flushes().value(), 1u);
}

TEST(GpuCoherence, PointerValidityTracksEpoch)
{
    GpuCoherence c(2);
    const std::uint32_t epoch = c.epochOf(0);
    EXPECT_TRUE(c.pointerValid(0, epoch));
    c.flush(0);
    EXPECT_FALSE(c.pointerValid(0, epoch));
    EXPECT_TRUE(c.pointerValid(0, c.epochOf(0)));
}

TEST(GpuCoherence, ManyFlushesMonotonic)
{
    GpuCoherence c(1);
    std::uint32_t last = c.epochOf(0);
    for (int i = 0; i < 100; ++i) {
        c.flush(0);
        EXPECT_GT(c.epochOf(0), last);
        last = c.epochOf(0);
    }
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include "mem/mshr.hpp"

namespace dr
{
namespace
{

MshrTarget
target(std::uint64_t id, NodeId node = 3)
{
    return {id, node, TrafficClass::Gpu, false, false};
}

TEST(Mshr, AllocateAndRelease)
{
    MshrFile mshrs(4, 4);
    EXPECT_FALSE(mshrs.outstanding(0x100));
    mshrs.allocate(0x100, target(1));
    EXPECT_TRUE(mshrs.outstanding(0x100));
    EXPECT_EQ(mshrs.used(), 1);
    const auto targets = mshrs.release(0x100);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0].reqId, 1u);
    EXPECT_FALSE(mshrs.outstanding(0x100));
}

TEST(Mshr, FullWhenAllEntriesUsed)
{
    MshrFile mshrs(2, 4);
    mshrs.allocate(0x100, target(1));
    EXPECT_FALSE(mshrs.full());
    mshrs.allocate(0x200, target(2));
    EXPECT_TRUE(mshrs.full());
    mshrs.release(0x100);
    EXPECT_FALSE(mshrs.full());
}

TEST(Mshr, MergesTargets)
{
    MshrFile mshrs(2, 3);
    mshrs.allocate(0x100, target(1));
    EXPECT_TRUE(mshrs.addTarget(0x100, target(2)));
    EXPECT_TRUE(mshrs.addTarget(0x100, target(3)));
    // Fourth target exceeds targetsPerEntry.
    EXPECT_FALSE(mshrs.addTarget(0x100, target(4)));
    const auto targets = mshrs.release(0x100);
    EXPECT_EQ(targets.size(), 3u);
}

TEST(Mshr, RemoteTargetsPreserved)
{
    MshrFile mshrs(2, 4);
    mshrs.allocate(0x100, target(1));
    MshrTarget remote{9, 7, TrafficClass::Gpu, true, false};
    EXPECT_TRUE(mshrs.addTarget(0x100, remote));
    const auto targets = mshrs.release(0x100);
    ASSERT_EQ(targets.size(), 2u);
    EXPECT_FALSE(targets[0].remote);
    EXPECT_TRUE(targets[1].remote);
    EXPECT_EQ(targets[1].replyTo, 7);
}

TEST(Mshr, IndependentLines)
{
    MshrFile mshrs(4, 4);
    mshrs.allocate(0x100, target(1));
    mshrs.allocate(0x200, target(2));
    EXPECT_EQ(mshrs.targets(0x100).size(), 1u);
    EXPECT_EQ(mshrs.targets(0x200).size(), 1u);
    mshrs.release(0x100);
    EXPECT_TRUE(mshrs.outstanding(0x200));
}

TEST(Mshr, OldestAgeTracksAllocationCycle)
{
    MshrFile mshrs(4, 4);
    EXPECT_EQ(mshrs.oldestAge(100), 0u);
    mshrs.allocate(0x100, target(1), 100);
    mshrs.allocate(0x200, target(2), 250);
    EXPECT_EQ(mshrs.oldestAge(300), 200u);
    mshrs.release(0x100);
    EXPECT_EQ(mshrs.oldestAge(300), 50u);
}

TEST(Mshr, CheckersPassOnHealthyFile)
{
    MshrFile mshrs(4, 4);
    mshrs.allocate(0x100, target(1), 10);
    mshrs.checkNoLeaks(/*now=*/500, /*maxAge=*/1000, "test");
    mshrs.release(0x100);
    mshrs.checkDrained("test");
}

TEST(MshrDeath, LeakedEntryCaughtByAgeBound)
{
    MshrFile mshrs(4, 4);
    mshrs.allocate(0x100, target(1), 10);
    // A fill that never arrives: past the age bound this is a leak.
    EXPECT_DEATH(mshrs.checkNoLeaks(/*now=*/5000, /*maxAge=*/1000, "LLC"),
                 "LLC: MSHR leak: line 0x100");
}

TEST(MshrDeath, UndrainedEntryCaughtAtDrainPoint)
{
    MshrFile mshrs(4, 4);
    mshrs.allocate(0x2c0, target(1), 10);
    EXPECT_DEATH(mshrs.checkDrained("SM L1"),
                 "SM L1: MSHR leak: 1 entries still outstanding");
}

TEST(MshrDeath, DoubleAllocatePanics)
{
    MshrFile mshrs(4, 4);
    mshrs.allocate(0x100, target(1));
    EXPECT_DEATH(mshrs.allocate(0x100, target(2)), "already-outstanding");
}

TEST(MshrDeath, ReleaseUnknownPanics)
{
    MshrFile mshrs(4, 4);
    EXPECT_DEATH(mshrs.release(0x500), "non-outstanding");
}

} // namespace
} // namespace dr

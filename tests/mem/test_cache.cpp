#include <gtest/gtest.h>

#include "mem/cache.hpp"

namespace dr
{
namespace
{

struct Meta
{
    int tag = 0;
    bool dirty = false;
};

using Cache = SetAssocCache<Meta>;

CacheParams
smallParams()
{
    // 4 sets x 2 ways x 128 B lines.
    return {1024, 2, 128};
}

TEST(Cache, GeometryDerived)
{
    Cache c(smallParams());
    EXPECT_EQ(c.sets(), 4);
    EXPECT_EQ(c.assoc(), 2);
    EXPECT_EQ(c.lineBytes(), 128);
}

TEST(Cache, NonPowerOfTwoSetsSupported)
{
    // The 48 KB GPU L1: 96 sets.
    Cache c({48 * 1024, 4, 128});
    EXPECT_EQ(c.sets(), 96);
    c.insert(0x1000, {});
    EXPECT_NE(c.probe(0x1000), nullptr);
}

TEST(Cache, MissThenHit)
{
    Cache c(smallParams());
    EXPECT_EQ(c.access(0x0), nullptr);
    c.insert(0x0, {7, false});
    auto *line = c.access(0x0);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->meta.tag, 7);
}

TEST(Cache, LineAlignment)
{
    Cache c(smallParams());
    c.insert(0x80, {});
    EXPECT_NE(c.access(0x80), nullptr);
    // 0x80 and 0x85 share a line.
    EXPECT_EQ(c.lineAddr(0x85), 0x80u);
}

TEST(Cache, ProbeDoesNotUpdateLru)
{
    Cache c(smallParams());
    // Same set: addresses differ by sets*lineBytes = 512.
    c.insert(0x0, {1, false});
    c.insert(0x200, {2, false});
    // Probe (not access) the older line, then insert a third: the
    // probed line must still be the LRU victim.
    c.probe(0x0);
    auto evicted = c.insert(0x400, {3, false});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, 0x0u);
}

TEST(Cache, AccessUpdatesLru)
{
    Cache c(smallParams());
    c.insert(0x0, {1, false});
    c.insert(0x200, {2, false});
    c.access(0x0);  // now 0x200 is LRU
    auto evicted = c.insert(0x400, {3, false});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, 0x200u);
}

TEST(Cache, EvictionReturnsMetadata)
{
    Cache c(smallParams());
    c.insert(0x0, {42, true});
    c.insert(0x200, {1, false});
    auto evicted = c.insert(0x400, {2, false});
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->meta.tag, 42);
    EXPECT_TRUE(evicted->meta.dirty);
}

TEST(Cache, ReinsertRefreshesMetadata)
{
    Cache c(smallParams());
    c.insert(0x0, {1, false});
    auto evicted = c.insert(0x0, {2, true});
    EXPECT_FALSE(evicted.has_value());
    EXPECT_EQ(c.probe(0x0)->meta.tag, 2);
}

TEST(Cache, InvalidateRemovesLine)
{
    Cache c(smallParams());
    c.insert(0x0, {});
    EXPECT_TRUE(c.invalidate(0x0));
    EXPECT_EQ(c.probe(0x0), nullptr);
    EXPECT_FALSE(c.invalidate(0x0));
}

TEST(Cache, FlushAllEmptiesCache)
{
    Cache c(smallParams());
    for (Addr a = 0; a < 8; ++a)
        c.insert(a * 128, {});
    EXPECT_GT(c.validLines(), 0);
    c.flushAll();
    EXPECT_EQ(c.validLines(), 0);
}

TEST(Cache, ForEachLineVisitsAllValid)
{
    Cache c(smallParams());
    c.insert(0x0, {1, false});
    c.insert(0x80, {2, false});
    int count = 0;
    c.forEachLine([&](Addr addr, Meta &meta) {
        ++count;
        EXPECT_TRUE(addr == 0x0 || addr == 0x80);
        (void)meta;
    });
    EXPECT_EQ(count, 2);
}

TEST(Cache, DistinctSetsDoNotConflict)
{
    Cache c(smallParams());
    // Fill every set with both ways; nothing should evict.
    for (Addr a = 0; a < 8; ++a)
        EXPECT_FALSE(c.insert(a * 128, {}).has_value());
    EXPECT_EQ(c.validLines(), 8);
}

TEST(CacheProperty, LruIsExactOverRandomTrace)
{
    // Model: under accesses to a single set, the cache keeps exactly
    // the `assoc` most-recently-used lines.
    Cache c(smallParams());
    std::vector<Addr> mru;  // most recent first
    std::uint64_t x = 12345;
    for (int i = 0; i < 2000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        const Addr addr = ((x >> 33) % 8) * 512;  // 8 lines, one set
        if (c.probe(addr)) {
            c.access(addr);
        } else {
            c.insert(addr, {});
        }
        std::erase(mru, addr);
        mru.insert(mru.begin(), addr);
        if (mru.size() > 2)
            mru.resize(2);
        for (const Addr m : mru)
            EXPECT_NE(c.probe(m), nullptr) << "line " << m << " evicted";
    }
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "mem/dram.hpp"

namespace dr
{
namespace
{

MemConfig
cfg()
{
    return SystemConfig::makePaper().mem;
}

/** Run the channel until a completion appears; returns the cycle. */
Cycle
runUntilDone(DramChannel &dram, Cycle from, Cycle limit = 10000)
{
    for (Cycle c = from; c < from + limit; ++c) {
        dram.tick(c);
        if (dram.hasCompletion(c))
            return c;
    }
    return from + limit;
}

TEST(Dram, CompletesARead)
{
    DramChannel dram(cfg());
    dram.enqueue({0x1000, false, 42, 0}, 0);
    const Cycle done = runUntilDone(dram, 0);
    ASSERT_TRUE(dram.hasCompletion(done));
    const DramCompletion c = dram.popCompletion();
    EXPECT_EQ(c.token, 42u);
    EXPECT_EQ(c.lineAddr, 0x1000u);
    EXPECT_FALSE(c.write);
    EXPECT_EQ(dram.stats().reads.value(), 1u);
}

TEST(Dram, RowMissLatencyMatchesTimingParams)
{
    const MemConfig m = cfg();
    DramChannel dram(m);
    dram.enqueue({0x0, false, 1, 0}, 0);
    const Cycle done = runUntilDone(dram, 0);
    // Closed bank: tRCD + tCL + burst.
    EXPECT_EQ(done, static_cast<Cycle>(m.tRCD + m.tCL + m.burstCycles));
    EXPECT_EQ(dram.stats().rowMisses.value(), 1u);
}

TEST(Dram, RowHitIsFasterThanConflict)
{
    const MemConfig m = cfg();
    // Row hit: same row.
    DramChannel hitChannel(m);
    hitChannel.enqueue({0x0, false, 1, 0}, 0);
    Cycle t = runUntilDone(hitChannel, 0);
    hitChannel.popCompletion();
    hitChannel.enqueue({static_cast<Addr>(m.lineBytes * m.banksPerMc),
                        false, 2, t + 1},
                       t + 1);
    const Cycle hitDone = runUntilDone(hitChannel, t + 1) - (t + 1);

    // Row conflict: same bank, different row.
    DramChannel conflictChannel(m);
    conflictChannel.enqueue({0x0, false, 1, 0}, 0);
    t = runUntilDone(conflictChannel, 0);
    conflictChannel.popCompletion();
    const Addr otherRow = static_cast<Addr>(m.lineBytes) * m.banksPerMc *
                          16 * 4;  // same bank, far row
    conflictChannel.enqueue({otherRow, false, 2, t + 1}, t + 1);
    const Cycle conflictDone =
        runUntilDone(conflictChannel, t + 1) - (t + 1);

    EXPECT_LT(hitDone, conflictDone);
}

TEST(Dram, FrFcfsPrefersRowHits)
{
    const MemConfig m = cfg();
    DramChannel dram(m);
    // Open a row in bank 0.
    dram.enqueue({0x0, false, 1, 0}, 0);
    Cycle now = runUntilDone(dram, 0);
    dram.popCompletion();
    ++now;
    // Queue a conflict (same bank, other row) then a row hit.
    const Addr conflict =
        static_cast<Addr>(m.lineBytes) * m.banksPerMc * 16 * 4;
    const Addr rowHit = static_cast<Addr>(m.lineBytes) * m.banksPerMc;
    dram.enqueue({conflict, false, 2, now}, now);
    dram.enqueue({rowHit, false, 3, now}, now);
    // The row hit (queued second) must complete first.
    std::vector<std::uint64_t> order;
    for (Cycle c = now; c < now + 1000 && order.size() < 2; ++c) {
        dram.tick(c);
        while (dram.hasCompletion(c))
            order.push_back(dram.popCompletion().token);
    }
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[0], 3u);
    EXPECT_EQ(order[1], 2u);
}

TEST(Dram, SustainedBandwidthMatchesBusModel)
{
    // Stream row hits: throughput must approach one line per
    // burstCycles.
    const MemConfig m = cfg();
    DramChannel dram(m);
    int enqueued = 0;
    int completed = 0;
    const Cycle horizon = 3000;
    Addr next = 0;
    for (Cycle c = 0; c < horizon; ++c) {
        if (!dram.queueFull()) {
            // Sequential lines interleave banks: plenty of parallelism.
            dram.enqueue({next, false, 1, c}, c);
            next += m.lineBytes;
            ++enqueued;
        }
        dram.tick(c);
        while (dram.hasCompletion(c)) {
            dram.popCompletion();
            ++completed;
        }
    }
    const double linesPerCycle =
        static_cast<double>(completed) / static_cast<double>(horizon);
    EXPECT_GT(linesPerCycle, 0.8 / m.burstCycles);
    EXPECT_LE(linesPerCycle, 1.001 / m.burstCycles);
}

TEST(Dram, CompletionsAreTimeOrdered)
{
    const MemConfig m = cfg();
    DramChannel dram(m);
    std::uint64_t token = 1;
    Cycle lastFinish = 0;
    for (Cycle c = 0; c < 2000; ++c) {
        if (!dram.queueFull() && c % 3 == 0) {
            // Mix of banks and rows.
            const Addr addr =
                static_cast<Addr>((token * 977) % 4096) * m.lineBytes;
            dram.enqueue({addr, token % 4 == 0, token, c}, c);
            ++token;
        }
        dram.tick(c);
        while (dram.hasCompletion(c)) {
            const DramCompletion done = dram.popCompletion();
            EXPECT_GE(done.finished, lastFinish);
            lastFinish = done.finished;
        }
    }
}

TEST(Dram, QueueFullBlocksEnqueue)
{
    DramChannel dram(cfg());
    int accepted = 0;
    while (!dram.queueFull()) {
        dram.enqueue({static_cast<Addr>(accepted) * 128, false, 1, 0}, 0);
        ++accepted;
    }
    EXPECT_EQ(accepted, 64);
    EXPECT_DEATH(dram.enqueue({0, false, 1, 0}, 0), "full queue");
}

TEST(Dram, WritesCountedSeparately)
{
    DramChannel dram(cfg());
    dram.enqueue({0x0, true, 1, 0}, 0);
    runUntilDone(dram, 0);
    EXPECT_EQ(dram.stats().writes.value(), 1u);
    EXPECT_EQ(dram.stats().reads.value(), 0u);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include "coherence/gpu_coherence.hpp"
#include "common/config.hpp"
#include "mem/dram.hpp"
#include "mem/llc.hpp"

namespace dr
{
namespace
{

/** Fixture wiring an LLC slice to a private DRAM channel. */
class LlcTest : public ::testing::Test
{
  protected:
    LlcTest()
        : cfg(SystemConfig::makeSmall()), coherence(cfg.gpu.numCores),
          dram(cfg.mem),
          llc(/*nodeId=*/0, cfg, coherence, dram, gpuIds())
    {
    }

    std::vector<NodeId>
    gpuIds() const
    {
        // Nodes 2.. are GPU cores in this synthetic setup.
        std::vector<NodeId> ids;
        for (int i = 0; i < cfg.gpu.numCores; ++i)
            ids.push_back(static_cast<NodeId>(2 + i));
        return ids;
    }

    Message
    read(NodeId requester, Addr addr, bool dnf = false,
         TrafficClass cls = TrafficClass::Gpu)
    {
        Message m;
        m.type = MsgType::ReadReq;
        m.cls = cls;
        m.addr = addr;
        m.src = requester;
        m.dst = 0;
        m.requester = requester;
        m.id = nextId++;
        m.dnf = dnf;
        return m;
    }

    Message
    write(NodeId requester, Addr addr)
    {
        Message m = read(requester, addr);
        m.type = MsgType::WriteReq;
        return m;
    }

    /** Tick until a reply is available (or the limit is hit). */
    bool
    runUntilReply(Cycle limit = 2000)
    {
        for (; !llc.hasReply() && limit > 0; --limit) {
            dram.tick(now);
            llc.tick(now);
            ++now;
        }
        return llc.hasReply();
    }

    void
    drainReplies()
    {
        while (llc.hasReply())
            llc.popReply();
    }

    SystemConfig cfg;
    GpuCoherence coherence;
    DramChannel dram;
    LlcSlice llc;
    Cycle now = 0;
    std::uint64_t nextId = 1;
};

TEST_F(LlcTest, ReadMissFetchesFromDram)
{
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    const LlcReply reply = llc.popReply();
    EXPECT_EQ(reply.msg.type, MsgType::ReadReply);
    EXPECT_EQ(reply.msg.dst, 2);
    EXPECT_FALSE(reply.delegatable);
    EXPECT_EQ(llc.stats().misses.value(), 1u);
    EXPECT_EQ(dram.stats().reads.value(), 1u);
}

TEST_F(LlcTest, ReadHitAfterFill)
{
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    EXPECT_EQ(llc.stats().hits.value(), 1u);
    EXPECT_EQ(dram.stats().reads.value(), 1u);  // no second DRAM access
}

TEST_F(LlcTest, PointerTracksLastDirectReader)
{
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    EXPECT_EQ(llc.pointerOf(0x1000), 2);
    // A delegatable hit may be converted into a delegation downstream,
    // so it must NOT move the pointer: a pointer naming a still-waiting
    // requester lets delayed-hit chains form a cyclic wait (DESIGN.md
    // §10).
    llc.accept(read(3, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    EXPECT_EQ(llc.pointerOf(0x1000), 2);
    // A direct (non-delegatable, here DNF) reply to core 3 repoints.
    llc.accept(read(3, 0x1000, /*dnf=*/true), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    EXPECT_EQ(llc.pointerOf(0x1000), 3);
}

TEST_F(LlcTest, SecondReaderGetsDelegatableReply)
{
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    llc.accept(read(3, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    const LlcReply reply = llc.popReply();
    EXPECT_TRUE(reply.delegatable);
    EXPECT_EQ(reply.delegateTo, 2);
    EXPECT_EQ(llc.stats().delegatableHits.value(), 1u);
}

TEST_F(LlcTest, SameReaderNotDelegatable)
{
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    EXPECT_FALSE(llc.popReply().delegatable);
}

TEST_F(LlcTest, DnfRequestNeverDelegatesAndRepoints)
{
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    // A remote miss comes back with DNF set, requester 3.
    llc.accept(read(3, 0x1000, /*dnf=*/true), now);
    ASSERT_TRUE(runUntilReply());
    const LlcReply reply = llc.popReply();
    EXPECT_FALSE(reply.delegatable);
    EXPECT_EQ(reply.msg.dst, 3);
    EXPECT_EQ(llc.pointerOf(0x1000), 3);
    EXPECT_EQ(llc.stats().dnfRequests.value(), 1u);
}

TEST_F(LlcTest, WriteInvalidatesPointer)
{
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    EXPECT_EQ(llc.pointerOf(0x1000), 2);
    llc.accept(write(3, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    EXPECT_EQ(llc.popReply().msg.type, MsgType::WriteAck);
    EXPECT_EQ(llc.pointerOf(0x1000), invalidNode);
    EXPECT_EQ(llc.stats().pointerInvalidates.value(), 1u);
}

TEST_F(LlcTest, FlushEpochInvalidatesPointers)
{
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    EXPECT_EQ(llc.pointerOf(0x1000), 2);
    // Core 2 is GPU index 0; its L1 flush bumps the epoch and the
    // pointer becomes stale without touching the LLC.
    coherence.flush(0);
    EXPECT_EQ(llc.pointerOf(0x1000), invalidNode);
    llc.accept(read(3, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    EXPECT_FALSE(llc.popReply().delegatable);
}

TEST_F(LlcTest, MshrMergesConcurrentMisses)
{
    llc.accept(read(2, 0x1000), now);
    llc.accept(read(3, 0x1000), now);
    int replies = 0;
    for (Cycle limit = 2000; limit > 0; --limit) {
        dram.tick(now);
        llc.tick(now);
        ++now;
        while (llc.hasReply()) {
            llc.popReply();
            ++replies;
        }
        if (replies == 2)
            break;
    }
    EXPECT_EQ(replies, 2);
    EXPECT_EQ(dram.stats().reads.value(), 1u);
    EXPECT_EQ(llc.stats().mshrMerges.value(), 1u);
}

TEST_F(LlcTest, CpuReplyKeepsCpuClass)
{
    llc.accept(read(1, 0x2000, false, TrafficClass::Cpu), now);
    ASSERT_TRUE(runUntilReply());
    EXPECT_EQ(llc.popReply().msg.cls, TrafficClass::Cpu);
}

TEST_F(LlcTest, CpuReaderDoesNotSetPointer)
{
    llc.accept(read(1, 0x2000, false, TrafficClass::Cpu), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    EXPECT_EQ(llc.pointerOf(0x2000), invalidNode);
}

TEST_F(LlcTest, FullReplyQueueStallsPipeline)
{
    // Fill the line, then issue hits without draining replies.
    llc.accept(read(2, 0x1000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    for (int i = 0; i < 8; ++i) {
        if (llc.canAccept())
            llc.accept(read(3, 0x1000), now);
    }
    for (int i = 0; i < 200; ++i) {
        dram.tick(now);
        llc.tick(now);
        ++now;
    }
    // The reply queue caps at 4; the rest must be stalled, not lost.
    EXPECT_GT(llc.stats().stallCycles.value(), 0u);
    int drained = 0;
    for (int i = 0; i < 400; ++i) {
        dram.tick(now);
        llc.tick(now);
        ++now;
        while (llc.hasReply()) {
            llc.popReply();
            ++drained;
        }
    }
    EXPECT_EQ(drained, 8);
}

TEST_F(LlcTest, WriteMissAllocatesAndAcksAfterFill)
{
    // Write-allocate: the miss fetches the line, acks the writer after
    // the fill, and leaves the line dirty in the cache.
    llc.accept(write(2, 0x3000), now);
    ASSERT_TRUE(runUntilReply());
    EXPECT_EQ(llc.popReply().msg.type, MsgType::WriteAck);
    EXPECT_EQ(dram.stats().reads.value(), 1u);
    // A subsequent read hits and is NOT delegatable (write cleared the
    // pointer).
    llc.accept(read(3, 0x3000), now);
    ASSERT_TRUE(runUntilReply());
    const LlcReply reply = llc.popReply();
    EXPECT_FALSE(reply.delegatable);
    EXPECT_EQ(llc.stats().hits.value(), 1u);
}

TEST_F(LlcTest, DirtyEvictionWritesBack)
{
    // Dirty a line, then evict it by filling its set with reads: the
    // eviction must produce a DRAM write.
    llc.accept(write(2, 0x3000), now);
    ASSERT_TRUE(runUntilReply());
    drainReplies();
    const Addr setStride = static_cast<Addr>(cfg.mem.lineBytes) *
                           (cfg.mem.llcSliceKB * 1024 /
                            (cfg.mem.llcAssoc * cfg.mem.lineBytes));
    for (int w = 0; w <= cfg.mem.llcAssoc; ++w) {
        llc.accept(read(2, 0x3000 + (w + 1) * setStride), now);
        ASSERT_TRUE(runUntilReply());
        drainReplies();
    }
    for (int i = 0; i < 400; ++i) {
        dram.tick(now);
        llc.tick(now);
        ++now;
    }
    EXPECT_GE(llc.stats().writebacks.value(), 1u);
    EXPECT_GE(dram.stats().writes.value(), 1u);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include <vector>

#include "mem/address_map.hpp"

namespace dr
{
namespace
{

AddressMap
makeMap()
{
    return AddressMap(8, 128, {2, 10, 18, 26, 34, 42, 50, 58}, 0x5eed);
}

TEST(AddressMap, Deterministic)
{
    const AddressMap a = makeMap();
    const AddressMap b = makeMap();
    for (Addr addr = 0; addr < 100 * 128; addr += 128)
        EXPECT_EQ(a.mcOf(addr), b.mcOf(addr));
}

TEST(AddressMap, SameLineSameController)
{
    const AddressMap map = makeMap();
    EXPECT_EQ(map.mcOf(0x1000), map.mcOf(0x1000 + 127));
}

TEST(AddressMap, LineAlignment)
{
    const AddressMap map = makeMap();
    EXPECT_EQ(map.lineAddr(0x1085), 0x1080u);
}

TEST(AddressMap, NodeLookupMatchesMcList)
{
    const AddressMap map = makeMap();
    for (Addr addr = 0; addr < 64 * 128; addr += 128) {
        const int mc = map.mcOf(addr);
        EXPECT_EQ(map.nodeOf(addr), map.nodeOfMc(mc));
    }
}

TEST(AddressMap, BalancedOverSequentialLines)
{
    // PAE-style hashing must spread a sequential stream evenly.
    const AddressMap map = makeMap();
    std::vector<int> counts(8, 0);
    const int lines = 80000;
    for (int i = 0; i < lines; ++i)
        ++counts[map.mcOf(static_cast<Addr>(i) * 128)];
    for (const int c : counts) {
        EXPECT_GT(c, lines / 8 * 0.9);
        EXPECT_LT(c, lines / 8 * 1.1);
    }
}

TEST(AddressMap, BalancedOverPowerOfTwoStrides)
{
    // The failure mode PAE [43] fixes: large power-of-two strides must
    // not camp on one controller.
    const AddressMap map = makeMap();
    std::vector<int> counts(8, 0);
    const int n = 8000;
    for (int i = 0; i < n; ++i)
        ++counts[map.mcOf(static_cast<Addr>(i) * 4096)];
    for (const int c : counts) {
        EXPECT_GT(c, n / 8 * 0.8);
        EXPECT_LT(c, n / 8 * 1.2);
    }
}

TEST(AddressMap, DifferentSeedsGiveDifferentMappings)
{
    const AddressMap a(8, 128, {0, 1, 2, 3, 4, 5, 6, 7}, 1);
    const AddressMap b(8, 128, {0, 1, 2, 3, 4, 5, 6, 7}, 2);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += a.mcOf(static_cast<Addr>(i) * 128) ==
                b.mcOf(static_cast<Addr>(i) * 128);
    EXPECT_LT(same, 300);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include "coherence/gpu_coherence.hpp"
#include "coherence/mesi.hpp"
#include "mem/mem_node.hpp"
#include "noc/interconnect.hpp"

namespace dr
{
namespace
{

/**
 * Fixture: one memory node (node 0) on a small interconnect with
 * scripted GPU "cores" at nodes 5 and 6 and a CPU core at node 9.
 */
class MemNodeTest : public ::testing::Test
{
  protected:
    MemNodeTest() : cfg(SystemConfig::makeSmall())
    {
        cfg.mechanism = Mechanism::DelegatedReplies;
        types.assign(16, NodeType::GpuCore);
        types[0] = NodeType::MemNode;
        types[1] = NodeType::MemNode;
        types[9] = NodeType::CpuCore;
        ic = std::make_unique<Interconnect>(cfg, types);
        coherence = std::make_unique<GpuCoherence>(cfg.gpu.numCores);
        gpuIds = {5, 6, 7, 8, 10, 11, 12, 13, 14, 15};
        cpuIds = {9};
        node = std::make_unique<MemNode>(0, cfg, *ic, *coherence,
                                         gpuIds, cpuIds);
    }

    Message
    readFrom(NodeId core, Addr addr, TrafficClass cls = TrafficClass::Gpu)
    {
        Message m;
        m.type = MsgType::ReadReq;
        m.cls = cls;
        m.addr = addr;
        m.src = core;
        m.dst = 0;
        m.requester = core;
        m.id = nextId++;
        return m;
    }

    void
    step(int cycles, bool consumeAtCores = true)
    {
        for (int i = 0; i < cycles; ++i) {
            node->tick(now);
            ic->tick(now);
            if (consumeAtCores) {
                for (const NodeId n : gpuIds) {
                    while (ic->hasMessage(n, NetKind::Reply))
                        received.push_back(
                            ic->popMessage(n, NetKind::Reply));
                }
            }
            ++now;
        }
    }

    SystemConfig cfg;
    std::vector<NodeType> types;
    std::unique_ptr<Interconnect> ic;
    std::unique_ptr<GpuCoherence> coherence;
    std::vector<NodeId> gpuIds, cpuIds;
    std::unique_ptr<MemNode> node;
    std::vector<Message> received;
    Cycle now = 0;
    std::uint64_t nextId = 1;
};

TEST_F(MemNodeTest, ServesReadRequests)
{
    ic->send(readFrom(5, 0x1000), now);
    step(500);
    ASSERT_EQ(received.size(), 1u);
    EXPECT_EQ(received[0].type, MsgType::ReadReply);
    EXPECT_EQ(received[0].dst, 5);
    EXPECT_EQ(node->stats().requestsAccepted.value(), 1u);
    EXPECT_EQ(node->stats().repliesSent.value(), 1u);
}

TEST_F(MemNodeTest, NoDelegationWhenReplyNetworkFree)
{
    // Two cores read the same line with plenty of reply capacity: the
    // second reply is delegatable but must NOT be delegated (the paper
    // never delegates gratuitously).
    ic->send(readFrom(5, 0x1000), now);
    step(500);
    ic->send(readFrom(6, 0x1000), now);
    step(500);
    EXPECT_EQ(node->stats().delegations.value(), 0u);
    EXPECT_EQ(received.size(), 2u);
}

TEST_F(MemNodeTest, DelegatesWhenBlockedAndPointerRemote)
{
    // Warm the line from core 5, then alternate readers 6/5 while
    // nothing drains the cores' ejection side: every reply is
    // delegatable (pointer != requester) and once the reply path clogs
    // the node must start delegating.
    ic->send(readFrom(5, 0x1000), now);
    step(500);
    for (int i = 0; i < 120; ++i) {
        const NodeId reader = i % 2 == 0 ? 6 : 5;
        if (ic->canSend(readFrom(reader, 0x1000)))
            ic->send(readFrom(reader, 0x1000), now);
        node->tick(now);
        ic->tick(now);
        ++now;  // no consumption at cores -> reply network backs up
    }
    step(300, /*consumeAtCores=*/false);
    EXPECT_GT(node->stats().delegations.value(), 0u);
    EXPECT_GT(node->stats().blockedCycles.value(), 0u);
    // Delegated replies travel on the *request* network and carry the
    // requesting core's identity in the requester field.
    bool sawDelegated = false;
    for (const NodeId target : {NodeId(5), NodeId(6)}) {
        while (ic->hasMessage(target, NetKind::Request)) {
            const Message m = ic->popMessage(target, NetKind::Request);
            EXPECT_EQ(m.type, MsgType::DelegatedReq);
            EXPECT_NE(m.requester, target);
            sawDelegated = true;
        }
    }
    EXPECT_TRUE(sawDelegated);
}

TEST_F(MemNodeTest, BaselineNeverDelegatesEvenWhenBlocked)
{
    cfg.mechanism = Mechanism::Baseline;
    node = std::make_unique<MemNode>(0, cfg, *ic, *coherence,
                                     gpuIds, cpuIds);
    ic->send(readFrom(5, 0x1000), now);
    step(500);
    for (int i = 0; i < 400; ++i) {
        if (ic->canSend(readFrom(6, 0x1000)))
            ic->send(readFrom(6, 0x1000), now);
        node->tick(now);
        ic->tick(now);
        ++now;
    }
    EXPECT_EQ(node->stats().delegations.value(), 0u);
    EXPECT_GT(node->stats().blockedCycles.value(), 0u);
}

TEST_F(MemNodeTest, CpuRequestsPayMesiPenalty)
{
    // A write from the CPU after... first, a read to install a line.
    Message read = readFrom(9, 0x2000, TrafficClass::Cpu);
    ic->send(read, now);
    step(500);
    EXPECT_EQ(node->mesi().stats().reads.value(), 1u);
    EXPECT_EQ(node->stats().cpuPenaltyCycles.value(), 0u);
}

TEST_F(MemNodeTest, BlockingRateBounded)
{
    step(100);
    EXPECT_GE(node->blockingRate(), 0.0);
    EXPECT_LE(node->blockingRate(), 1.0);
}

TEST_F(MemNodeTest, ResetStatsClearsCounters)
{
    ic->send(readFrom(5, 0x1000), now);
    step(500);
    EXPECT_GT(node->stats().requestsAccepted.value(), 0u);
    node->resetStats();
    EXPECT_EQ(node->stats().requestsAccepted.value(), 0u);
    EXPECT_EQ(node->stats().repliesSent.value(), 0u);
}

} // namespace
} // namespace dr

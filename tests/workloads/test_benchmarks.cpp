#include <gtest/gtest.h>

#include <set>

#include "workloads/gpu_benchmarks.hpp"
#include "workloads/workload_table.hpp"

namespace dr
{
namespace
{

TEST(Benchmarks, AllElevenExist)
{
    const auto names = gpuBenchmarkNames();
    EXPECT_EQ(names.size(), 11u);
    for (const auto &name : names) {
        const auto kernel = makeGpuBenchmark(name);
        EXPECT_EQ(kernel->name(), name);
        EXPECT_GT(kernel->ctaCount(), 0);
        EXPECT_GT(kernel->warpsPerCta(), 0);
        EXPECT_GT(kernel->accessesPerWarp(), 0);
        EXPECT_GE(kernel->computePerMem(), 0);
    }
}

TEST(Benchmarks, UnknownNameDies)
{
    EXPECT_DEATH(makeGpuBenchmark("quake"), "unknown GPU benchmark");
}

TEST(Benchmarks, AccessesAreDeterministic)
{
    for (const auto &name : gpuBenchmarkNames()) {
        const auto a = makeGpuBenchmark(name);
        const auto b = makeGpuBenchmark(name);
        for (int i = 0; i < 50; ++i) {
            const MemAccess x = a->access(3, 1, i);
            const MemAccess y = b->access(3, 1, i);
            EXPECT_EQ(x.addr, y.addr);
            EXPECT_EQ(x.write, y.write);
        }
    }
}

TEST(Benchmarks, AddressesAreLineAligned)
{
    for (const auto &name : gpuBenchmarkNames()) {
        const auto kernel = makeGpuBenchmark(name);
        for (int cta : {0, 7, kernel->ctaCount() - 1}) {
            for (int w = 0; w < kernel->warpsPerCta(); ++w) {
                for (int i = 0; i < kernel->accessesPerWarp(); i += 7)
                    EXPECT_EQ(kernel->access(cta, w, i).addr % 128, 0u);
            }
        }
    }
}

TEST(Benchmarks, RegionsAreDisjoint)
{
    // Every benchmark works in its own 256 MB region, so co-running
    // experiments never falsely share.
    std::set<Addr> regions;
    for (const auto &name : gpuBenchmarkNames()) {
        const auto kernel = makeGpuBenchmark(name);
        const Addr region = kernel->access(0, 0, 0).addr >> 28;
        for (int i = 0; i < kernel->accessesPerWarp(); ++i) {
            EXPECT_EQ(kernel->access(1, 0, i).addr >> 28, region)
                << name;
        }
        EXPECT_TRUE(regions.insert(region).second)
            << name << " overlaps another benchmark's region";
    }
}

/** Fraction of CTA c's read lines also read by CTA c+1. */
double
haloOverlap(const KernelAccessPattern &kernel, int cta)
{
    std::set<Addr> mine, theirs;
    for (int w = 0; w < kernel.warpsPerCta(); ++w) {
        for (int i = 0; i < kernel.accessesPerWarp(); ++i) {
            const MemAccess a = kernel.access(cta, w, i);
            const MemAccess b = kernel.access(cta + 1, w, i);
            if (!a.write)
                mine.insert(a.addr);
            if (!b.write)
                theirs.insert(b.addr);
        }
    }
    int shared = 0;
    for (const Addr a : mine)
        shared += theirs.count(a);
    return static_cast<double>(shared) / static_cast<double>(mine.size());
}

TEST(Benchmarks, StencilsShareHaloRowsBetweenAdjacentCtas)
{
    for (const char *name : {"2DCON", "HS", "SRAD", "3DCON", "LPS"}) {
        const auto kernel = makeGpuBenchmark(name);
        EXPECT_GT(haloOverlap(*kernel, 10), 0.15) << name;
    }
}

TEST(Benchmarks, HighestLocalityIsConvolutionLike)
{
    // 2DCON reads each row from 5 CTAs (5x5 conv): over half of its
    // input lines overlap with a neighbour CTA.
    const auto kernel = makeGpuBenchmark("2DCON");
    EXPECT_GT(haloOverlap(*kernel, 10), 0.5);
}

double
writeFraction(const KernelAccessPattern &kernel)
{
    int writes = 0, total = 0;
    for (int cta : {0, 5}) {
        for (int w = 0; w < kernel.warpsPerCta(); ++w) {
            for (int i = 0; i < kernel.accessesPerWarp(); ++i) {
                writes += kernel.access(cta, w, i).write;
                ++total;
            }
        }
    }
    return static_cast<double>(writes) / total;
}

TEST(Benchmarks, BpIsWriteHeavy)
{
    // The paper: BP is write-heavy and stresses the request network
    // (Figure 6). It must be by far the most store-intensive kernel.
    const double bp = writeFraction(*makeGpuBenchmark("BP"));
    EXPECT_GT(bp, 0.35);
    for (const auto &name : gpuBenchmarkNames()) {
        if (name == "BP")
            continue;
        EXPECT_LT(writeFraction(*makeGpuBenchmark(name)), bp) << name;
    }
}

TEST(Benchmarks, BtReadsWalkTreeLevels)
{
    const auto kernel = makeGpuBenchmark("BT");
    // Level-0 accesses all hit the root line.
    const Addr root = kernel->access(0, 0, 0).addr;
    for (int q = 1; q < 10; ++q)
        EXPECT_EQ(kernel->access(3, 2, q * 4).addr, root);
    // Leaf accesses spread widely.
    std::set<Addr> leaves;
    for (int q = 0; q < 50; ++q)
        leaves.insert(kernel->access(q % 8, q % 4, q * 4 + 3).addr);
    EXPECT_GT(leaves.size(), 30u);
}

TEST(Benchmarks, NnHasSmallPerWarpFootprint)
{
    // NN's L1 miss rate is tiny (4.3% in the paper): most accesses hit
    // a small private buffer.
    const auto kernel = makeGpuBenchmark("NN");
    std::set<Addr> lines;
    for (int i = 0; i < kernel->accessesPerWarp(); ++i)
        lines.insert(kernel->access(3, 1, i).addr);
    EXPECT_LT(lines.size(), 64u);
}

TEST(Benchmarks, MmSharesRowTilesAcrossGridRow)
{
    const auto kernel = makeGpuBenchmark("MM");
    // CTAs 16 and 17 (gridX=16 -> same i, different j) share A reads.
    std::set<Addr> a16, a17;
    for (int i = 0; i < kernel->accessesPerWarp(); ++i) {
        const MemAccess x = kernel->access(16, 0, i);
        const MemAccess y = kernel->access(17, 0, i);
        if (!x.write)
            a16.insert(x.addr);
        if (!y.write)
            a17.insert(y.addr);
    }
    int shared = 0;
    for (const Addr a : a16)
        shared += a17.count(a);
    EXPECT_GT(shared, 0);
}

TEST(Benchmarks, CustomStencilRespectsSpec)
{
    StencilSpec spec;
    spec.name = "custom";
    spec.ctas = 64;
    spec.warpsPerCta = 4;
    spec.rowsPerCta = 2;
    spec.halo = 1;
    spec.rowLines = 16;
    spec.colsPerWarp = 4;
    spec.writeEvery = 4;
    const auto kernel = makeStencil(spec);
    EXPECT_EQ(kernel->ctaCount(), 64);
    EXPECT_EQ(kernel->warpsPerCta(), 4);
    EXPECT_GT(kernel->accessesPerWarp(), 0);
    // Every 4th access is a write.
    EXPECT_TRUE(kernel->access(0, 0, 3).write);
    EXPECT_FALSE(kernel->access(0, 0, 0).write);
}

TEST(WorkloadTable, MatchesTableII)
{
    const auto &table = workloadTable();
    EXPECT_EQ(table.size(), 11u);
    // Spot-check rows straight from the paper.
    EXPECT_EQ(cpuCoRunnersFor("2DCON"),
              (std::vector<std::string>{"blackscholes", "canneal",
                                        "dedup"}));
    EXPECT_EQ(cpuCoRunnersFor("BP"),
              (std::vector<std::string>{"blackscholes", "bodytrack",
                                        "ferret"}));
    // 33 heterogeneous workloads in total.
    int total = 0;
    for (const auto &mix : table)
        total += static_cast<int>(mix.cpuOptions.size());
    EXPECT_EQ(total, 33);
}

TEST(WorkloadTable, AllNamesResolvable)
{
    for (const auto &mix : workloadTable()) {
        EXPECT_NO_FATAL_FAILURE({ makeGpuBenchmark(mix.gpu); });
    }
}

TEST(WorkloadTable, UnknownGpuDies)
{
    EXPECT_DEATH(cpuCoRunnersFor("quake"), "no workload mix");
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include <sstream>

#include "core/hetero_system.hpp"
#include "workloads/trace_kernel.hpp"

namespace dr
{
namespace
{

TEST(TraceParse, ReadsRecordsWithComments)
{
    std::istringstream in(
        "# a sample trace\n"
        "R 1000\n"
        "W 2080   # store\n"
        "\n"
        "R 30c0\n");
    const auto records = parseTrace(in);
    ASSERT_EQ(records.size(), 3u);
    EXPECT_EQ(records[0].addr, 0x1000u);
    EXPECT_FALSE(records[0].write);
    EXPECT_EQ(records[1].addr, 0x2080u);
    EXPECT_TRUE(records[1].write);
    EXPECT_EQ(records[2].addr, 0x30c0u);
}

TEST(TraceParseDeath, BadOpIsFatal)
{
    std::istringstream in("X 1000\n");
    EXPECT_DEATH((void)parseTrace(in), "expected R or W");
}

TEST(TraceParseDeath, MissingAddressIsFatal)
{
    std::istringstream in("R\n");
    EXPECT_DEATH((void)parseTrace(in), "missing an address");
}

TEST(TraceParseDeath, BadAddressIsFatal)
{
    std::istringstream in("R zzz\n");
    EXPECT_DEATH((void)parseTrace(in), "bad address");
}

TEST(TraceRoundTrip, WriteThenParse)
{
    const auto original = makeSampleTrace(500, 64, 0.4, 0.2, 7);
    std::ostringstream out;
    writeTrace(original, out);
    std::istringstream in(out.str());
    const auto parsed = parseTrace(in);
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].addr, original[i].addr);
        EXPECT_EQ(parsed[i].write, original[i].write);
    }
}

TEST(SampleTrace, RespectsFractions)
{
    const auto records = makeSampleTrace(10000, 64, 0.4, 0.2, 3);
    int shared = 0, writes = 0;
    for (const auto &r : records) {
        shared += r.addr < 0x310000000ull;
        writes += r.write;
    }
    EXPECT_NEAR(shared / 10000.0, 0.4, 0.05);
    EXPECT_NEAR(writes / 10000.0, 0.2, 0.05);
}

TEST(TraceKernelTest, PartitionsTraceOverWarps)
{
    std::vector<TraceRecord> records;
    for (int i = 0; i < 1000; ++i)
        records.push_back({static_cast<Addr>(i) * 128, false});
    TraceKernel kernel("trace", records, 8, 4, 10, 2);
    // Warp 0 of CTA 0 plays records [0, 10); warp 1 plays [10, 20).
    EXPECT_EQ(kernel.access(0, 0, 0).addr, 0u);
    EXPECT_EQ(kernel.access(0, 0, 9).addr, 9u * 128);
    EXPECT_EQ(kernel.access(0, 1, 0).addr, 10u * 128);
    EXPECT_EQ(kernel.access(1, 0, 0).addr, 40u * 128);
}

TEST(TraceKernelTest, WrapsAroundShortTraces)
{
    std::vector<TraceRecord> records = {{0x100, false}, {0x200, true}};
    TraceKernel kernel("tiny", records, 4, 2, 8, 1);
    EXPECT_EQ(kernel.access(3, 1, 0).addr,
              kernel.access(0, 0, 0).addr);  // wrapped
    EXPECT_EQ(kernel.access(0, 0, 1).addr, 0x200u);
}

TEST(TraceKernelTest, RunsThroughTheFullSystem)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.warmupCycles = 1500;
    cfg.simCycles = 4000;
    auto kernel = std::make_unique<TraceKernel>(
        "sample", makeSampleTrace(60000, 512, 0.5, 0.1, 11), 512, 8, 64,
        3);
    HeteroSystem system(cfg, std::move(kernel), "dedup");
    const RunResults r = system.run();
    EXPECT_GT(r.gpuIpc, 0.1);
    EXPECT_GT(r.l1Misses, 100u);
}

TEST(TraceKernelDeath, EmptyTraceIsFatal)
{
    EXPECT_DEATH(TraceKernel("empty", {}, 4, 2, 8, 1), "empty trace");
}

} // namespace
} // namespace dr

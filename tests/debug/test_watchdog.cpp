#include <gtest/gtest.h>

#include <sstream>

#include "core/hetero_system.hpp"
#include "core/layout.hpp"
#include "debug/progress_watchdog.hpp"
#include "noc/interconnect.hpp"

namespace dr
{
namespace
{

/** A small idle interconnect for driving the watchdog directly. */
class WatchdogTest : public ::testing::Test
{
  protected:
    WatchdogTest()
        : cfg_(SystemConfig::makeSmall()),
          layout_(buildLayout(cfg_)),
          ic_(cfg_, layout_.types)
    {
    }

    SystemConfig cfg_;
    LayoutMap layout_;
    Interconnect ic_;
};

TEST_F(WatchdogTest, NoStallWhileSignatureAdvances)
{
    WatchdogParams wp;
    wp.stallCycles = 100;
    wp.abortOnStall = false;
    ProgressWatchdog dog(ic_, wp);
    for (Cycle c = 0; c < 2000; c += 64)
        EXPECT_FALSE(dog.observe(c, /*signature=*/c));
    EXPECT_EQ(dog.stallsDetected(), 0u);
}

TEST_F(WatchdogTest, DetectsStallOnConstantSignature)
{
    WatchdogParams wp;
    wp.stallCycles = 100;
    wp.abortOnStall = false;
    ProgressWatchdog dog(ic_, wp);

    EXPECT_FALSE(dog.observe(0, 7));   // seeds the signature
    EXPECT_FALSE(dog.observe(64, 7));  // within the window
    ::testing::internal::CaptureStderr();
    EXPECT_TRUE(dog.observe(128, 7));  // window exceeded
    const std::string dump = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(dump.find("watchdog: no forward progress"),
              std::string::npos);
    EXPECT_NE(dump.find("network"), std::string::npos);
    EXPECT_EQ(dog.stallsDetected(), 1u);
}

TEST_F(WatchdogTest, ReArmsAfterReportedStall)
{
    WatchdogParams wp;
    wp.stallCycles = 100;
    wp.abortOnStall = false;
    ProgressWatchdog dog(ic_, wp);
    ::testing::internal::CaptureStderr();
    dog.observe(0, 7);
    EXPECT_TRUE(dog.observe(128, 7));
    EXPECT_FALSE(dog.observe(192, 7));  // fresh window after re-arm
    EXPECT_TRUE(dog.observe(256, 7));   // stalls again
    ::testing::internal::GetCapturedStderr();
    EXPECT_EQ(dog.stallsDetected(), 2u);
}

TEST_F(WatchdogTest, ProgressResetsTheWindow)
{
    WatchdogParams wp;
    wp.stallCycles = 100;
    wp.abortOnStall = false;
    ProgressWatchdog dog(ic_, wp);
    dog.observe(0, 1);
    dog.observe(90, 1);
    dog.observe(99, 2);  // progress just before the deadline
    EXPECT_FALSE(dog.observe(190, 2));
    EXPECT_EQ(dog.lastProgressCycle(), 99u);
}

TEST_F(WatchdogTest, ExtraDumpIsAppendedToReport)
{
    WatchdogParams wp;
    wp.stallCycles = 50;
    wp.abortOnStall = false;
    ProgressWatchdog dog(ic_, wp);
    dog.setExtraDump([](std::ostream &os) { os << "frq-occupancy: 3\n"; });
    ::testing::internal::CaptureStderr();
    dog.observe(0, 1);
    EXPECT_TRUE(dog.observe(64, 1));
    EXPECT_NE(::testing::internal::GetCapturedStderr().find(
                  "frq-occupancy: 3"),
              std::string::npos);
}

TEST_F(WatchdogTest, BlockedChainDumpNamesProducingDomain)
{
    // Clog the request network: flood one destination and never pop,
    // so its ejection buffer fills and upstream heads block. The chain
    // dump must tag every router with its producing tick domain
    // (R<id>/d<domain>), localizing a stuck chain to a worker.
    const int nodes = ic_.topology().nodes();
    std::uint64_t id = 1;
    for (Cycle c = 0; c < 200; ++c) {
        for (NodeId src = 0; src < nodes - 1; ++src) {
            Message m;
            m.type = MsgType::ReadReq;
            m.cls = TrafficClass::Gpu;
            m.src = src;
            m.dst = nodes - 1;
            m.requester = src;
            m.id = id++;
            if (ic_.canSend(m))
                ic_.send(m, c);
        }
        ic_.tick(c);
    }

    WatchdogParams wp;
    wp.stallCycles = 50;
    wp.abortOnStall = false;
    ProgressWatchdog dog(ic_, wp);
    ::testing::internal::CaptureStderr();
    dog.observe(0, 1);
    EXPECT_TRUE(dog.observe(64, 1));
    const std::string dump = ::testing::internal::GetCapturedStderr();
    EXPECT_NE(dump.find("blocked-flit dependency chain"),
              std::string::npos);
    EXPECT_NE(dump.find("/d0"), std::string::npos) << dump;
}

TEST_F(WatchdogTest, AbortModePanics)
{
    WatchdogParams wp;
    wp.stallCycles = 50;
    wp.abortOnStall = true;
    ProgressWatchdog dog(ic_, wp);
    dog.observe(0, 7);
    EXPECT_DEATH(dog.observe(64, 7), "watchdog: no forward progress");
}

TEST_F(WatchdogTest, ZeroWindowIsAConfigError)
{
    WatchdogParams wp;
    wp.stallCycles = 0;
    EXPECT_EXIT(ProgressWatchdog(ic_, wp),
                ::testing::ExitedWithCode(1), "stallCycles");
}

TEST(WatchdogSystem, HealthySystemNeverTripsTheWatchdog)
{
    SystemConfig cfg = SystemConfig::makeSmall();
    cfg.debug.watchdogCycles = 2000;  // far below the run length
    cfg.warmupCycles = 1000;
    cfg.simCycles = 5000;
    HeteroSystem sys(cfg, "HS", "bodytrack");
    ASSERT_NE(sys.watchdog(), nullptr);
    sys.run();
    EXPECT_EQ(sys.watchdog()->stallsDetected(), 0u);
}

TEST(WatchdogSystem, DisabledByDefault)
{
    SystemConfig cfg = SystemConfig::makeSmall();
    HeteroSystem sys(cfg, "HS", "bodytrack");
    EXPECT_EQ(sys.watchdog(), nullptr);
}

TEST(WatchdogSystem, SignatureAdvancesWithTheSystem)
{
    SystemConfig cfg = SystemConfig::makeSmall();
    HeteroSystem sys(cfg, "HS", "bodytrack");
    const std::uint64_t before = sys.progressSignature();
    sys.advance(500);
    EXPECT_GT(sys.progressSignature(), before);
}

TEST(WatchdogSystem, FullInvariantSweepPassesAfterARun)
{
    SystemConfig cfg = SystemConfig::makeSmall();
    cfg.warmupCycles = 500;
    cfg.simCycles = 3000;
    HeteroSystem sys(cfg, "2DCON", "canneal");
    sys.run();
    sys.checkInvariants();  // flit/credit conservation + MSHR bounds
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include <set>

#include "noc/synthetic_traffic.hpp"

namespace dr
{
namespace
{

TEST(SyntheticPatterns, TransposeSwapsCoordinates)
{
    SyntheticTraffic t(TrafficPattern::Transpose, 64, 8);
    Rng rng(1);
    // (x=3, y=1) = node 11 -> (x=1, y=3) = node 25.
    EXPECT_EQ(t.dest(11, rng), 25);
    EXPECT_EQ(t.dest(25, rng), 11);
}

TEST(SyntheticPatterns, BitComplementMirrors)
{
    SyntheticTraffic t(TrafficPattern::BitComplement, 64, 8);
    Rng rng(1);
    EXPECT_EQ(t.dest(0, rng), 63);
    EXPECT_EQ(t.dest(63, rng), 0);
    EXPECT_EQ(t.dest(10, rng), 53);
}

TEST(SyntheticPatterns, NeighborIsRingSuccessor)
{
    SyntheticTraffic t(TrafficPattern::Neighbor, 16, 4);
    Rng rng(1);
    EXPECT_EQ(t.dest(5, rng), 6);
    EXPECT_EQ(t.dest(15, rng), 0);
}

TEST(SyntheticPatterns, HotspotTargetsOnlyHotspots)
{
    SyntheticTraffic t(TrafficPattern::Hotspot, 64, 8, {7, 21});
    Rng rng(3);
    for (int i = 0; i < 200; ++i) {
        const NodeId d = t.dest(3, rng);
        EXPECT_TRUE(d == 7 || d == 21);
    }
}

TEST(SyntheticPatterns, NeverSendsToSelf)
{
    for (const TrafficPattern p :
         {TrafficPattern::UniformRandom, TrafficPattern::Transpose,
          TrafficPattern::BitComplement, TrafficPattern::Neighbor}) {
        SyntheticTraffic t(p, 16, 4);
        Rng rng(5);
        for (NodeId src = 0; src < 16; ++src) {
            for (int i = 0; i < 20; ++i)
                EXPECT_NE(t.dest(src, rng), src)
                    << trafficPatternName(p);
        }
    }
}

TEST(SyntheticPatterns, UniformCoversManyDestinations)
{
    SyntheticTraffic t(TrafficPattern::UniformRandom, 64, 8);
    Rng rng(9);
    std::set<NodeId> seen;
    for (int i = 0; i < 1000; ++i)
        seen.insert(t.dest(0, rng));
    EXPECT_GT(seen.size(), 50u);
}

TEST(SyntheticLoad, LowLoadHasLowLatency)
{
    const SyntheticResult r = runSyntheticLoad(
        TopologyKind::Mesh, 16, 4, 4, TrafficPattern::UniformRandom,
        0.01, 5, 5000);
    EXPECT_GT(r.packetsDelivered, 100u);
    EXPECT_LT(r.avgLatency, 60.0);
    EXPECT_NEAR(r.acceptedFlitsPerNode, r.offeredFlitsPerNode,
                r.offeredFlitsPerNode * 0.4);
}

TEST(SyntheticLoad, ThroughputSaturates)
{
    const SyntheticResult low = runSyntheticLoad(
        TopologyKind::Mesh, 16, 4, 4, TrafficPattern::UniformRandom,
        0.02, 5, 5000);
    const SyntheticResult high = runSyntheticLoad(
        TopologyKind::Mesh, 16, 4, 4, TrafficPattern::UniformRandom,
        0.5, 5, 5000);
    EXPECT_GT(high.acceptedFlitsPerNode, low.acceptedFlitsPerNode);
    // Far beyond saturation the accepted rate is well below offered.
    EXPECT_LT(high.acceptedFlitsPerNode, high.offeredFlitsPerNode * 0.8);
    // And latency explodes relative to low load.
    EXPECT_GT(high.avgLatency, 2.0 * low.avgLatency);
}

TEST(SyntheticLoad, HotspotSaturatesBeforeUniform)
{
    // The clogging pattern: everyone sends to two nodes. Accepted
    // throughput must be far below uniform at the same offered load.
    const SyntheticResult uniform = runSyntheticLoad(
        TopologyKind::Mesh, 64, 8, 8, TrafficPattern::UniformRandom,
        0.06, 5, 6000);
    const SyntheticResult hotspot = runSyntheticLoad(
        TopologyKind::Mesh, 64, 8, 8, TrafficPattern::Hotspot, 0.06, 5,
        6000);
    EXPECT_LT(hotspot.acceptedFlitsPerNode,
              0.6 * uniform.acceptedFlitsPerNode);
}

TEST(SyntheticLoad, WorksOnAllTopologies)
{
    for (const TopologyKind topo :
         {TopologyKind::Mesh, TopologyKind::Crossbar,
          TopologyKind::FlattenedButterfly, TopologyKind::Dragonfly}) {
        const SyntheticResult r = runSyntheticLoad(
            topo, 64, 8, 8, TrafficPattern::UniformRandom, 0.02, 5,
            3000);
        EXPECT_GT(r.packetsDelivered, 100u) << topologyName(topo);
    }
}

} // namespace
} // namespace dr

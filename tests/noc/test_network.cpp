#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.hpp"
#include "noc/network.hpp"

namespace dr
{
namespace
{

NetworkParams
paramsFor(const Topology &topo, RoutingKind routing = RoutingKind::DimOrderXY)
{
    NetworkParams p;
    p.numVcs = 2;
    p.vcDepthFlits = 4;
    p.routerStages = 4;
    p.ejBufferFlits = 18;
    p.injBufferFlits.assign(topo.nodes(), 36);
    p.routing = routing;
    return p;
}

Message
makeMsg(NodeId src, NodeId dst, MsgType type = MsgType::ReadReq,
        TrafficClass cls = TrafficClass::Gpu, std::uint64_t id = 1)
{
    Message m;
    m.type = type;
    m.cls = cls;
    m.src = src;
    m.dst = dst;
    m.requester = src;
    m.id = id;
    return m;
}

/** Run the network until quiescent or maxCycles. */
Cycle
drain(Network &net, Cycle from, Cycle maxCycles)
{
    for (Cycle c = from; c < from + maxCycles; ++c)
        net.tick(c);
    return from + maxCycles;
}

TEST(Network, DeliversSingleFlitPacket)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);
    ASSERT_TRUE(net.canInject(0, 1));
    net.inject(makeMsg(0, 15), 1, 0);
    drain(net, 0, 200);
    ASSERT_TRUE(net.hasMessage(15, NetKind::Request));
    const Message got = net.popMessage(15, NetKind::Request);
    EXPECT_EQ(got.src, 0);
    EXPECT_EQ(got.dst, 15);
    EXPECT_EQ(got.id, 1u);
    EXPECT_FALSE(net.hasMessage(15, NetKind::Request));
}

TEST(Network, DeliversMultiFlitPacket)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);
    net.inject(makeMsg(3, 12, MsgType::ReadReply), 9, 0);
    drain(net, 0, 300);
    ASSERT_TRUE(net.hasMessage(12, NetKind::Reply));
    EXPECT_EQ(net.stats().flitsDelivered.value(), 9u);
}

TEST(Network, ZeroLoadLatencyMatchesPipeline)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);
    // 0 -> 1 traverses the source and destination routers: NI link (1)
    // plus two router pipelines of 4 cycles each (link included) = 9.
    net.inject(makeMsg(0, 1), 1, 0);
    Cycle delivered = 0;
    for (Cycle c = 0; c < 100 && !delivered; ++c) {
        net.tick(c);
        if (net.hasMessage(1, NetKind::Request))
            delivered = c;
    }
    ASSERT_GT(delivered, 0u);
    EXPECT_LE(delivered, 10u);
    EXPECT_NEAR(net.stats().packetLatency.mean(),
                static_cast<double>(delivered), 1.0);
}

TEST(Network, LatencyGrowsWithDistance)
{
    const Topology topo = Topology::makeMesh(8, 8);
    Network netNear(paramsFor(topo), topo);
    Network netFar(paramsFor(topo), topo);
    netNear.inject(makeMsg(0, 1), 1, 0);
    netFar.inject(makeMsg(0, 63), 1, 0);
    drain(netNear, 0, 300);
    drain(netFar, 0, 300);
    EXPECT_GT(netFar.stats().packetLatency.mean(),
              netNear.stats().packetLatency.mean());
}

TEST(Network, LocalDeliveryBypassesNetwork)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);
    net.inject(makeMsg(5, 5), 1, 0);
    EXPECT_TRUE(net.hasMessage(5, NetKind::Request));
}

TEST(Network, InjectionBufferFillsUp)
{
    const Topology topo = Topology::makeMesh(4, 4);
    NetworkParams p = paramsFor(topo);
    p.injBufferFlits.assign(topo.nodes(), 10);
    Network net(p, topo);
    EXPECT_TRUE(net.canInject(0, 9));
    net.inject(makeMsg(0, 15, MsgType::ReadReply), 9, 0);
    EXPECT_FALSE(net.canInject(0, 9));
    EXPECT_TRUE(net.canInject(0, 1));
    net.inject(makeMsg(0, 15), 1, 0);
    EXPECT_FALSE(net.canInject(0, 1));
}

TEST(Network, InjectionBufferDrains)
{
    const Topology topo = Topology::makeMesh(4, 4);
    NetworkParams p = paramsFor(topo);
    p.injBufferFlits.assign(topo.nodes(), 10);
    Network net(p, topo);
    net.inject(makeMsg(0, 15, MsgType::ReadReply), 9, 0);
    drain(net, 0, 100);
    EXPECT_TRUE(net.canInject(0, 10));
}

TEST(Network, BackpressureWhenEjectionNotConsumed)
{
    // Saturate a destination that never consumes: the finite ejection
    // buffer must stop the flood without losing packets.
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);
    Cycle now = 0;
    std::uint64_t id = 1;
    int injected = 0;
    for (; now < 2000; ++now) {
        if (net.canInject(0, 9)) {
            net.inject(makeMsg(0, 15, MsgType::ReadReply, TrafficClass::Gpu,
                               id++),
                       9, now);
            ++injected;
        }
        net.tick(now);
    }
    // The ejection buffer (18 flits) holds at most 2 complete packets;
    // everything else must be throttled inside the network.
    EXPECT_GT(injected, 4);
    EXPECT_LT(net.stats().packetsDelivered.value() * 9,
              net.stats().flitsDelivered.value() + 19);
    // Consuming restores flow: all injected packets eventually arrive.
    int received = 0;
    for (; now < 20000; ++now) {
        while (net.hasMessage(15, NetKind::Reply)) {
            net.popMessage(15, NetKind::Reply);
            ++received;
        }
        net.tick(now);
        if (received == injected && net.routerOccupancy() == 0)
            break;
    }
    EXPECT_EQ(received, injected);
}

TEST(Network, CpuPriorityLowersCpuLatency)
{
    // Moderate random GPU load plus sparse CPU packets over the same
    // links: arbitration priority must give CPU traffic lower latency.
    // (Under full saturation priority cannot help — FIFO VC buffers
    // cannot be reordered — which is exactly the paper's clogging
    // argument.)
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);
    Rng rng(1);
    std::uint64_t id = 1;
    Cycle now = 0;
    auto randomDest = [&](NodeId src) {
        NodeId dst = static_cast<NodeId>(rng.below(16));
        return dst == src ? static_cast<NodeId>((dst + 1) % 16) : dst;
    };
    for (; now < 20000; ++now) {
        for (NodeId src = 0; src < 16; ++src) {
            if (rng.chance(0.04) && net.canInject(src, 9)) {
                net.inject(makeMsg(src, randomDest(src), MsgType::ReadReply,
                                   TrafficClass::Gpu, id++),
                           9, now);
            }
            if (rng.chance(0.005) && net.canInject(src, 5)) {
                net.inject(makeMsg(src, randomDest(src), MsgType::ReadReply,
                                   TrafficClass::Cpu, id++),
                           5, now);
            }
        }
        net.tick(now);
        for (NodeId n = 0; n < 16; ++n) {
            while (net.hasMessage(n, NetKind::Reply))
                net.popMessage(n, NetKind::Reply);
        }
    }
    EXPECT_GT(net.stats().cpuPacketLatency.count(), 100u);
    EXPECT_LT(net.stats().cpuPacketLatency.mean(),
              net.stats().gpuPacketLatency.mean());
}

TEST(Network, RequestAndReplyQueuesSeparate)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);
    net.inject(makeMsg(0, 5, MsgType::ReadReq), 1, 0);
    net.inject(makeMsg(1, 5, MsgType::ProbeNack), 1, 0);
    drain(net, 0, 200);
    EXPECT_TRUE(net.hasMessage(5, NetKind::Request));
    EXPECT_TRUE(net.hasMessage(5, NetKind::Reply));
    EXPECT_EQ(net.popMessage(5, NetKind::Request).type, MsgType::ReadReq);
    EXPECT_EQ(net.popMessage(5, NetKind::Reply).type, MsgType::ProbeNack);
}

struct TopoRoutingCase
{
    TopologyKind topo;
    RoutingKind routing;
};

class NetworkSweep : public ::testing::TestWithParam<TopoRoutingCase>
{};

TEST_P(NetworkSweep, RandomTrafficConservesPackets)
{
    const auto param = GetParam();
    const Topology topo = Topology::make(param.topo, 16, 4, 4);
    Network net(paramsFor(topo, param.routing), topo);
    Rng rng(99);
    std::map<std::uint64_t, NodeId> outstanding;
    std::uint64_t id = 1;
    int received = 0;
    const int toSend = 400;
    int sent = 0;
    Cycle now = 0;
    for (; now < 100000 && received < toSend; ++now) {
        if (sent < toSend) {
            const NodeId src = static_cast<NodeId>(rng.below(16));
            NodeId dst = static_cast<NodeId>(rng.below(16));
            if (dst == src)
                dst = static_cast<NodeId>((dst + 1) % 16);
            const bool reply = rng.chance(0.4);
            const int flits = reply ? 9 : 1;
            const MsgType type =
                reply ? MsgType::ReadReply : MsgType::ReadReq;
            if (net.canInject(src, flits)) {
                net.inject(makeMsg(src, dst, type, TrafficClass::Gpu, id),
                           flits, now);
                outstanding[id] = dst;
                ++id;
                ++sent;
            }
        }
        net.tick(now);
        for (NodeId n = 0; n < 16; ++n) {
            for (const NetKind kind : {NetKind::Request, NetKind::Reply}) {
                while (net.hasMessage(n, kind)) {
                    const Message m = net.popMessage(n, kind);
                    auto it = outstanding.find(m.id);
                    ASSERT_NE(it, outstanding.end())
                        << "duplicate or unknown message";
                    EXPECT_EQ(it->second, n);
                    outstanding.erase(it);
                    ++received;
                }
            }
        }
    }
    EXPECT_EQ(received, toSend)
        << topologyName(param.topo) << "/" << routingName(param.routing);
    EXPECT_TRUE(outstanding.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologiesAndRoutings, NetworkSweep,
    ::testing::Values(
        TopoRoutingCase{TopologyKind::Mesh, RoutingKind::DimOrderXY},
        TopoRoutingCase{TopologyKind::Mesh, RoutingKind::DimOrderYX},
        TopoRoutingCase{TopologyKind::Mesh, RoutingKind::DyXY},
        TopoRoutingCase{TopologyKind::Mesh, RoutingKind::Footprint},
        TopoRoutingCase{TopologyKind::Mesh, RoutingKind::Hare},
        TopoRoutingCase{TopologyKind::Crossbar, RoutingKind::TableMinimal},
        TopoRoutingCase{TopologyKind::FlattenedButterfly,
                        RoutingKind::TableMinimal},
        TopoRoutingCase{TopologyKind::Dragonfly,
                        RoutingKind::TableMinimal}),
    [](const ::testing::TestParamInfo<TopoRoutingCase> &tpi) {
        std::string name = topologyName(tpi.param.topo);
        name += "_";
        name += routingName(tpi.param.routing);
        for (auto &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

TEST(Network, PerPairOrderingPreserved)
{
    // Messages between one (src, dst) pair with the same class and type
    // must arrive in injection order (single path, per-VC FIFO).
    const Topology topo = Topology::makeMesh(4, 4);
    NetworkParams p = paramsFor(topo);
    p.numVcs = 1;  // single VC forces strict ordering
    Network net(p, topo);
    std::uint64_t id = 1;
    Cycle now = 0;
    std::uint64_t lastSeen = 0;
    int received = 0;
    while (received < 50 && now < 20000) {
        if (id <= 50 && net.canInject(0, 1))
            net.inject(makeMsg(0, 15, MsgType::ReadReq, TrafficClass::Gpu,
                               id++),
                       1, now);
        net.tick(now);
        while (net.hasMessage(15, NetKind::Request)) {
            const Message m = net.popMessage(15, NetKind::Request);
            EXPECT_GT(m.id, lastSeen);
            lastSeen = m.id;
            ++received;
        }
        ++now;
    }
    EXPECT_EQ(received, 50);
}

TEST(Network, UtilizationStatsPopulated)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);
    Cycle now = 0;
    std::uint64_t id = 1;
    for (; now < 1000; ++now) {
        if (net.canInject(0, 9))
            net.inject(makeMsg(0, 15, MsgType::ReadReply, TrafficClass::Gpu,
                               id++),
                       9, now);
        while (net.hasMessage(15, NetKind::Reply))
            net.popMessage(15, NetKind::Reply);
        net.tick(now);
    }
    EXPECT_GT(net.injectionLinkUtilization(0, now), 0.5);
    EXPECT_GT(net.ejectionLinkUtilization(15, now), 0.5);
    EXPECT_GT(net.totalSwitchTraversals(), 100u);
    EXPECT_GT(net.totalBufferWrites(), 100u);
    EXPECT_GT(net.totalLinkTraversals(), 100u);
    EXPECT_GT(net.flitsEjectedAt(15), 100u);
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include "noc/routing.hpp"
#include "noc/topology.hpp"

namespace dr
{
namespace
{

/** Congestion stub reporting fixed per-port credit counts. */
class FixedCongestion : public CongestionProbe
{
  public:
    explicit FixedCongestion(std::vector<int> credits)
        : credits_(std::move(credits))
    {}

    int
    freeCredits(int, int port) const override
    {
        return credits_.at(port);
    }

  private:
    std::vector<int> credits_;
};

Flit
headFor(int destRouter, DimOrder order)
{
    Flit f;
    f.head = true;
    f.destRouter = static_cast<std::int16_t>(destRouter);
    f.destPort = meshLocal;
    f.order = order;
    return f;
}

TEST(RoutingXY, MovesXThenY)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DimOrderXY, t, 2, 1);
    // From router 0 (0,0) to router 15 (3,3): go east first.
    EXPECT_EQ(r.outputPort(0, headFor(15, DimOrder::XY)), meshEast);
    // From router 3 (3,0) to 15 (3,3): aligned in X, go south.
    EXPECT_EQ(r.outputPort(3, headFor(15, DimOrder::XY)), meshSouth);
}

TEST(RoutingYX, MovesYThenX)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DimOrderYX, t, 2, 1);
    EXPECT_EQ(r.outputPort(0, headFor(15, DimOrder::YX)), meshSouth);
    EXPECT_EQ(r.outputPort(12, headFor(15, DimOrder::YX)), meshEast);
}

TEST(Routing, EjectsAtDestination)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DimOrderXY, t, 2, 1);
    EXPECT_EQ(r.outputPort(15, headFor(15, DimOrder::XY)), meshLocal);
}

TEST(Routing, WestAndNorthDirections)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DimOrderXY, t, 2, 1);
    EXPECT_EQ(r.outputPort(15, headFor(0, DimOrder::XY)), meshWest);
    EXPECT_EQ(r.outputPort(12, headFor(0, DimOrder::XY)), meshNorth);
}

TEST(Routing, FullPathTerminates)
{
    const Topology t = Topology::makeMesh(8, 8);
    RoutingPolicy r(RoutingKind::DimOrderXY, t, 2, 1);
    for (int src = 0; src < 64; src += 7) {
        for (int dst = 0; dst < 64; dst += 5) {
            int cur = src;
            int hops = 0;
            while (cur != dst) {
                const int port = r.outputPort(cur, headFor(dst, DimOrder::XY));
                ASSERT_NE(port, meshLocal);
                cur = t.port(cur, port).peerRouter;
                ASSERT_LE(++hops, 14);
            }
        }
    }
}

TEST(Routing, DeterministicKindsIgnoreCongestion)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy xy(RoutingKind::DimOrderXY, t, 2, 1);
    RoutingPolicy yx(RoutingKind::DimOrderYX, t, 2, 1);
    FixedCongestion net({0, 0, 0, 0, 0});
    EXPECT_EQ(xy.chooseOrder(0, 15, net), DimOrder::XY);
    EXPECT_EQ(yx.chooseOrder(0, 15, net), DimOrder::YX);
}

TEST(Routing, DeterministicMaskAllowsAllVcs)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DimOrderXY, t, 2, 1);
    EXPECT_EQ(r.packetMask(DimOrder::XY), 0x3);
    EXPECT_EQ(r.packetMask(DimOrder::YX), 0x3);
    EXPECT_FALSE(r.adaptive());
}

TEST(RoutingDyXY, PrefersLessCongestedDimension)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DyXY, t, 2, 1);
    // Router 0 -> 15: east port is meshEast, south is meshSouth.
    FixedCongestion eastFree({0, 8, 0, 0, 1});
    EXPECT_EQ(r.chooseOrder(0, 15, eastFree), DimOrder::XY);
    FixedCongestion southFree({0, 1, 0, 0, 8});
    EXPECT_EQ(r.chooseOrder(0, 15, southFree), DimOrder::YX);
}

TEST(RoutingDyXY, AdaptiveMaskSplitsVcs)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DyXY, t, 2, 1);
    EXPECT_TRUE(r.adaptive());
    EXPECT_EQ(r.packetMask(DimOrder::XY), 0x1);
    EXPECT_EQ(r.packetMask(DimOrder::YX), 0x2);
}

TEST(RoutingDyXY, FourVcMaskSplitsInHalves)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DyXY, t, 4, 1);
    EXPECT_EQ(r.packetMask(DimOrder::XY), 0x3);
    EXPECT_EQ(r.packetMask(DimOrder::YX), 0xc);
}

TEST(RoutingFootprint, SticksToXYUnlessBlocked)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::Footprint, t, 2, 1);
    FixedCongestion open({0, 1, 0, 0, 0});
    EXPECT_EQ(r.chooseOrder(0, 15, open), DimOrder::XY);
    FixedCongestion blocked({0, 0, 0, 0, 5});
    EXPECT_EQ(r.chooseOrder(0, 15, blocked), DimOrder::YX);
}

TEST(RoutingHare, LearnsFromDeliveredLatency)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::Hare, t, 2, 1);
    FixedCongestion net({0, 0, 0, 0, 0});
    // Teach it that YX is much faster for 0 -> 15.
    for (int i = 0; i < 50; ++i) {
        r.onDelivered(0, 15, DimOrder::XY, 500);
        r.onDelivered(0, 15, DimOrder::YX, 10);
    }
    int yx = 0;
    for (int i = 0; i < 100; ++i)
        yx += r.chooseOrder(0, 15, net) == DimOrder::YX;
    // Exploration keeps a small random component.
    EXPECT_GT(yx, 80);
}

TEST(RoutingTable, NonMeshUsesTables)
{
    const Topology t = Topology::makeCrossbar(8);
    RoutingPolicy r(RoutingKind::TableMinimal, t, 2, 1);
    Flit f = headFor(0, DimOrder::XY);
    f.destPort = 5;
    EXPECT_EQ(r.outputPort(0, f), 5);
}

TEST(RoutingDragonfly, VcPhaseEscalation)
{
    const Topology t = Topology::makeDragonfly(64, 4, 4);
    RoutingPolicy r(RoutingKind::TableMinimal, t, 2, 1);
    Flit f = headFor(/*destRouter=*/14, DimOrder::XY);  // group 3
    // Link into a router in the destination group: upper VC half.
    EXPECT_EQ(r.vcMaskForLink(12, f), 0x2);
    // Link into a router outside the destination group: lower half.
    EXPECT_EQ(r.vcMaskForLink(2, f), 0x1);
}

TEST(RoutingDeath, AdaptiveOnNonMeshFails)
{
    const Topology t = Topology::makeCrossbar(8);
    EXPECT_DEATH(
        { RoutingPolicy r(RoutingKind::DyXY, t, 2, 1); (void)r; },
        "table routing");
}

/** 4 VCs: request VN on VCs 0-1, forward VN on VCs 2-3. */
VnetLayout
twoByTwoLayout()
{
    VnetLayout l;
    l.numVcs = 4;
    l.range[static_cast<int>(VirtualNet::Request)] = {0, 2};
    l.range[static_cast<int>(VirtualNet::ForwardedRequest)] = {2, 2};
    l.range[static_cast<int>(VirtualNet::Reply)] = {0, 2};
    l.range[static_cast<int>(VirtualNet::DelegatedReply)] = {2, 2};
    return l;
}

TEST(RoutingVnet, AdaptiveEscapeClassesSplitWithinEachVnRange)
{
    // O1TURN escape classes compose with the VN partition: each order
    // owns half of the *VN's* reserved range, never another VN's VCs.
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DyXY, t, 4, 1, twoByTwoLayout());
    EXPECT_EQ(r.packetMask(DimOrder::XY, VirtualNet::Request), 0x1);
    EXPECT_EQ(r.packetMask(DimOrder::YX, VirtualNet::Request), 0x2);
    EXPECT_EQ(r.packetMask(DimOrder::XY, VirtualNet::ForwardedRequest),
              0x4);
    EXPECT_EQ(r.packetMask(DimOrder::YX, VirtualNet::ForwardedRequest),
              0x8);
}

TEST(RoutingVnet, DeterministicMaskIsTheVnReservation)
{
    const Topology t = Topology::makeMesh(4, 4);
    RoutingPolicy r(RoutingKind::DimOrderXY, t, 4, 1, twoByTwoLayout());
    EXPECT_EQ(r.packetMask(DimOrder::XY, VirtualNet::Request), 0x3);
    EXPECT_EQ(r.packetMask(DimOrder::XY, VirtualNet::ForwardedRequest),
              0xc);
}

TEST(RoutingVnet, DragonflyPhaseEscalationStaysInVnRange)
{
    // Reaching the destination group escalates to the upper half of
    // the flit's own VN range — VCs of other VNs are never borrowed.
    const Topology t = Topology::makeDragonfly(64, 4, 4);
    RoutingPolicy r(RoutingKind::TableMinimal, t, 4, 1, twoByTwoLayout());
    Flit f = headFor(/*destRouter=*/14, DimOrder::XY);  // group 3
    f.vnet = VirtualNet::ForwardedRequest;
    EXPECT_EQ(r.vcMaskForLink(12, f), 0x8);  // in dest group: upper half
    EXPECT_EQ(r.vcMaskForLink(2, f), 0x4);   // elsewhere: lower half
    f.vnet = VirtualNet::Request;
    EXPECT_EQ(r.vcMaskForLink(12, f), 0x2);
    EXPECT_EQ(r.vcMaskForLink(2, f), 0x1);
}

TEST(RoutingVnetDeath, LayoutMustCoverTheNetworkVcs)
{
    const Topology t = Topology::makeMesh(4, 4);
    VnetLayout l = twoByTwoLayout();  // covers 4 VCs
    EXPECT_DEATH(
        {
            RoutingPolicy r(RoutingKind::DimOrderXY, t, 2, 1, l);
            (void)r;
        },
        "layout covers");
}

TEST(RoutingVnetDeath, AdaptiveNeedsTwoVcsPerVnet)
{
    // A 1-VC VN range cannot express the two escape classes; this must
    // be rejected at construction, not deadlock at runtime.
    const Topology t = Topology::makeMesh(4, 4);
    VnetLayout l = twoByTwoLayout();
    l.range[static_cast<int>(VirtualNet::Request)] = {0, 1};
    l.range[static_cast<int>(VirtualNet::ForwardedRequest)] = {1, 3};
    EXPECT_DEATH(
        {
            RoutingPolicy r(RoutingKind::DyXY, t, 4, 1, l);
            (void)r;
        },
        "every virtual network");
}

TEST(RoutingVnetDeath, DragonflyNeedsTwoVcsPerVnet)
{
    const Topology t = Topology::makeDragonfly(64, 4, 4);
    VnetLayout l = twoByTwoLayout();
    l.range[static_cast<int>(VirtualNet::DelegatedReply)] = {3, 1};
    EXPECT_DEATH(
        {
            RoutingPolicy r(RoutingKind::TableMinimal, t, 4, 1, l);
            (void)r;
        },
        "every virtual network");
}

/**
 * Map a chiplet vcMaskForLink mask back to its phase segment. With
 * 3 VCs and no VN layout the three phases own VCs {0}, {1}, {2}.
 */
int
phaseOfMask(std::uint8_t mask)
{
    switch (mask) {
      case 0x1: return 0;
      case 0x2: return 1;
      case 0x4: return 2;
    }
    ADD_FAILURE() << "mask " << int(mask) << " is not a phase segment";
    return -1;
}

TEST(RoutingChiplet, AllPathsTerminateWithMonotonePhases)
{
    // Gateway-restricted 2x2 chiplets of 4x4: every route must reach
    // its destination, and the VC phase class (E/W transit, N/S
    // transit, intra-chiplet XY) must never step backwards — that
    // monotonicity is the deadlock-freedom argument.
    const Topology t = Topology::makeChipletMesh(2, 2, 4, 4, 2);
    RoutingPolicy r(RoutingKind::ChipletHierarchical, t, 3, 1);
    for (int src = 0; src < t.routers(); ++src) {
        for (int dst = 0; dst < t.routers(); ++dst) {
            const Flit f = headFor(dst, DimOrder::XY);
            int cur = src;
            int hops = 0;
            int phase = 0;
            while (cur != dst) {
                const int port = r.outputPort(cur, f);
                ASSERT_NE(port, meshLocal) << src << "->" << dst;
                const PortConn &conn = t.port(cur, port);
                ASSERT_EQ(conn.kind, PortConn::Kind::Link)
                    << src << "->" << dst << " at " << cur;
                const int next = conn.peerRouter;
                const int p = phaseOfMask(r.vcMaskForLink(next, f));
                ASSERT_GE(p, phase)
                    << "phase regressed " << src << "->" << dst;
                phase = p;
                cur = next;
                ASSERT_LE(++hops, 4 * (8 + 8)) << src << "->" << dst;
            }
        }
    }
}

TEST(RoutingChiplet, CrossingDetoursToTheDestinationsGatewayRow)
{
    // Gateway rows of a 4x4 sub-mesh with 2 links per edge are {0, 2};
    // the row is hashed from the destination so all hops agree on it.
    const Topology t = Topology::makeChipletMesh(2, 2, 4, 4, 2);
    RoutingPolicy r(RoutingKind::ChipletHierarchical, t, 3, 1);
    // 0 (0,0) -> 7 (7,0): odd destination hashes to gateway row 2, so
    // phase 0 first walks south inside the chiplet...
    EXPECT_EQ(r.outputPort(0, headFor(7, DimOrder::XY)), meshSouth);
    // ...and crosses east once on the gateway row (router (0,2)).
    EXPECT_EQ(r.outputPort(2 * 8 + 0, headFor(7, DimOrder::XY)), meshEast);
    // An even destination hashes to gateway row 0: cross immediately.
    EXPECT_EQ(r.outputPort(0, headFor(6, DimOrder::XY)), meshEast);
}

TEST(RoutingChiplet, PhaseSegmentsPartitionTheVcRange)
{
    // 6 uniform VCs split into thirds: phase 0 owns {0,1}, phase 1
    // owns {2,3}, phase 2 the remainder {4,5} — disjoint and covering.
    const Topology t = Topology::makeChipletMesh(2, 2, 4, 4, 2);
    RoutingPolicy r(RoutingKind::ChipletHierarchical, t, 6, 1);
    const Flit f = headFor(63, DimOrder::XY);  // chiplet 3 at (7,7)
    EXPECT_EQ(r.vcMaskForLink(0, f), 0x03);    // chiplet 0: E/W transit
    EXPECT_EQ(r.vcMaskForLink(4, f), 0x0c);    // chiplet 1: N/S transit
    EXPECT_EQ(r.vcMaskForLink(4 * 8 + 4, f), 0x30);  // chiplet 3: XY
}

TEST(RoutingChiplet, FullGatewayMeshAcceptsPlainXY)
{
    // With every boundary channel present the chiplet mesh is
    // structurally a plain mesh, so dimension-order routing is legal.
    const Topology t = Topology::makeChipletMesh(2, 2, 2, 2, 0);
    RoutingPolicy r(RoutingKind::DimOrderXY, t, 2, 1);
    EXPECT_EQ(r.outputPort(0, headFor(15, DimOrder::XY)), meshEast);
}

TEST(RoutingChipletDeath, ConstructionGuards)
{
    const Topology mesh = Topology::makeMesh(4, 4);
    EXPECT_DEATH(
        {
            RoutingPolicy r(RoutingKind::ChipletHierarchical, mesh, 3, 1);
            (void)r;
        },
        "chiplet-mesh topology");

    const Topology restricted = Topology::makeChipletMesh(2, 2, 4, 4, 1);
    // A gateway-restricted mesh cannot fall back to XY: non-gateway
    // boundary rows have no crossing channel.
    EXPECT_DEATH(
        {
            RoutingPolicy r(RoutingKind::DimOrderXY, restricted, 3, 1);
            (void)r;
        },
        "gateway-restricted");
    // Three monotone phase classes need at least 3 VCs per VN range.
    EXPECT_DEATH(
        {
            RoutingPolicy r(RoutingKind::ChipletHierarchical, restricted,
                            2, 1);
            (void)r;
        },
        "at least 3 VCs");
}

} // namespace
} // namespace dr

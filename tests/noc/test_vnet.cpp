/**
 * @file
 * Unit tests for the virtual-network subsystem: message classification,
 * VC-range layout builders (legacy-equivalence and the noc.vnets
 * partition), and (class, VN) arbitration ranks.
 */

#include <gtest/gtest.h>

#include "common/config.hpp"
#include "noc/vnet.hpp"

namespace dr
{
namespace
{

Message
msgOf(MsgType type, bool dnf = false)
{
    Message m;
    m.type = type;
    m.cls = TrafficClass::Gpu;
    m.dnf = dnf;
    return m;
}

TEST(VnetClassify, RequestsIncludingDnfRideTheRequestVn)
{
    for (const MsgType t :
         {MsgType::ReadReq, MsgType::WriteReq, MsgType::ProbeReq}) {
        EXPECT_EQ(classifyMessage(msgOf(t), false), VirtualNet::Request);
        EXPECT_EQ(classifyMessage(msgOf(t), true), VirtualNet::Request);
    }
    // DNF re-sends deliberately stay on the Request VN (vnet.hpp):
    // sharing buffering with the delegation fan-in that produced them
    // would re-create the DESIGN.md §10 cycle.
    EXPECT_EQ(classifyMessage(msgOf(MsgType::ReadReq, /*dnf=*/true), false),
              VirtualNet::Request);
}

TEST(VnetClassify, DelegationsAndRepliesSplitBySender)
{
    EXPECT_EQ(classifyMessage(msgOf(MsgType::DelegatedReq), true),
              VirtualNet::ForwardedRequest);
    // Replies from a memory node are ordinary replies; the same types
    // sent core-to-core (delegated remote hits) are DelegatedReply.
    for (const MsgType t : {MsgType::ReadReply, MsgType::WriteAck}) {
        EXPECT_EQ(classifyMessage(msgOf(t), true), VirtualNet::Reply);
        EXPECT_EQ(classifyMessage(msgOf(t), false),
                  VirtualNet::DelegatedReply);
    }
    EXPECT_EQ(classifyMessage(msgOf(MsgType::ProbeNack), false),
              VirtualNet::DelegatedReply);
    // Raw-kernel default: replies classify as memory replies.
    EXPECT_EQ(defaultVnet(msgOf(MsgType::ReadReply)), VirtualNet::Reply);
}

TEST(VnetLayoutTest, UniformGivesEveryVnEveryVc)
{
    const VnetLayout l = VnetLayout::uniform(3);
    EXPECT_FALSE(l.empty());
    for (int vn = 0; vn < numVnets; ++vn)
        EXPECT_EQ(l.mask(static_cast<VirtualNet>(vn)), 0x7);
    EXPECT_TRUE(VnetLayout{}.empty());
}

TEST(VnetLayoutTest, LegacySplitNetworksAreUniform)
{
    NocConfig noc;
    noc.vnets = false;
    noc.vcsPerNet = 2;
    for (const VnetLayout &l :
         {requestNetLayout(noc), replyNetLayout(noc)}) {
        for (int vn = 0; vn < numVnets; ++vn)
            EXPECT_EQ(l.mask(static_cast<VirtualNet>(vn)), 0x3);
    }
}

TEST(VnetLayoutTest, LegacySharedLayoutMatchesAvcpClassMask)
{
    // The old Interconnect::classMask: requests on the first
    // sharedReqVcs VCs, replies on the rest, forwards aliased with
    // requests and delegated replies with replies.
    NocConfig noc;
    noc.vnets = false;
    noc.sharedReqVcs = 1;
    noc.sharedReplyVcs = 3;
    const VnetLayout l = sharedNetLayout(noc);
    EXPECT_EQ(l.numVcs, 4);
    EXPECT_EQ(l.mask(VirtualNet::Request), 0x1);
    EXPECT_EQ(l.mask(VirtualNet::ForwardedRequest), 0x1);
    EXPECT_EQ(l.mask(VirtualNet::Reply), 0xe);
    EXPECT_EQ(l.mask(VirtualNet::DelegatedReply), 0xe);
}

TEST(VnetLayoutTest, VnetsOnPartitionsSplitNetworks)
{
    NocConfig noc;
    noc.vnets = true;
    noc.vcsPerNet = 4;
    noc.vnetRequestVcs = 3;
    noc.vnetForwardVcs = 1;
    noc.vnetReplyVcs = 2;
    noc.vnetDelegatedVcs = 2;
    const VnetLayout req = requestNetLayout(noc);
    EXPECT_EQ(req.mask(VirtualNet::Request), 0x7);
    EXPECT_EQ(req.mask(VirtualNet::ForwardedRequest), 0x8);
    const VnetLayout rep = replyNetLayout(noc);
    EXPECT_EQ(rep.mask(VirtualNet::Reply), 0x3);
    EXPECT_EQ(rep.mask(VirtualNet::DelegatedReply), 0xc);
    // The request-side ranges are disjoint, likewise the reply side.
    EXPECT_EQ(req.mask(VirtualNet::Request) &
                  req.mask(VirtualNet::ForwardedRequest),
              0);
    EXPECT_EQ(rep.mask(VirtualNet::Reply) &
                  rep.mask(VirtualNet::DelegatedReply),
              0);
}

TEST(VnetLayoutTest, VnetsOnPartitionsSharedNetworkFourWays)
{
    NocConfig noc;
    noc.vnets = true;
    noc.sharedReqVcs = 3;
    noc.sharedReplyVcs = 3;
    noc.vnetRequestVcs = 2;
    noc.vnetForwardVcs = 1;
    noc.vnetReplyVcs = 1;
    noc.vnetDelegatedVcs = 2;
    const VnetLayout l = sharedNetLayout(noc);
    EXPECT_EQ(l.numVcs, 6);
    EXPECT_EQ(l.mask(VirtualNet::Request), 0x03);
    EXPECT_EQ(l.mask(VirtualNet::ForwardedRequest), 0x04);
    EXPECT_EQ(l.mask(VirtualNet::Reply), 0x08);
    EXPECT_EQ(l.mask(VirtualNet::DelegatedReply), 0x30);
    // All four reserved ranges are pairwise disjoint.
    std::uint8_t seen = 0;
    for (int vn = 0; vn < numVnets; ++vn) {
        const std::uint8_t m = l.mask(static_cast<VirtualNet>(vn));
        EXPECT_EQ(seen & m, 0) << vnetName(static_cast<VirtualNet>(vn));
        seen |= m;
    }
}

TEST(VnetArbitration, OffModeRanksByClassAlone)
{
    EXPECT_EQ(arbRankCount(false), 2);
    for (int vn = 0; vn < numVnets; ++vn) {
        const VirtualNet v = static_cast<VirtualNet>(vn);
        EXPECT_EQ(arbRank(TrafficClass::Cpu, v, false), 0);
        EXPECT_EQ(arbRank(TrafficClass::Gpu, v, false), 1);
    }
}

TEST(VnetArbitration, OnModeDrainsDownstreamVnsFirstWithinClass)
{
    EXPECT_EQ(arbRankCount(true), 2 * numVnets);
    // Replies before delegated replies before forwards before fresh
    // requests — and every CPU rank above every GPU rank.
    const VirtualNet order[] = {VirtualNet::Reply,
                                VirtualNet::DelegatedReply,
                                VirtualNet::ForwardedRequest,
                                VirtualNet::Request};
    int prev = -1;
    for (const VirtualNet vn : order) {
        const int r = arbRank(TrafficClass::Cpu, vn, true);
        EXPECT_GT(r, prev);
        prev = r;
    }
    for (const VirtualNet vn : order) {
        const int r = arbRank(TrafficClass::Gpu, vn, true);
        EXPECT_GT(r, prev);
        prev = r;
    }
}

TEST(VnetNames, AreDistinctAndStable)
{
    EXPECT_STREQ(vnetName(VirtualNet::Request), "request");
    EXPECT_STREQ(vnetName(VirtualNet::ForwardedRequest), "forward");
    EXPECT_STREQ(vnetName(VirtualNet::Reply), "reply");
    EXPECT_STREQ(vnetName(VirtualNet::DelegatedReply), "delegated");
}

} // namespace
} // namespace dr

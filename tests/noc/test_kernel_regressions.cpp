/**
 * @file
 * Regression tests for the hot-path kernel overhaul and the stats /
 * fairness bugfix batch:
 *  - determinism golden test: the same seed and config produce
 *    bit-identical statistics run to run (the guardrail the packet-pool
 *    and active-set refactors were verified against);
 *  - warmup-boundary fix: packets queued before resetStats() do not
 *    contaminate measured latency averages;
 *  - NI send-VC round-robin: all attach-link VCs progress under
 *    saturation instead of the lowest-index VC monopolizing the link;
 *  - local delivery (src == dst): minimum-latency sample, no flit,
 *    link, or router activity.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "noc/network.hpp"
#include "noc/synthetic_traffic.hpp"

namespace dr
{
namespace
{

NetworkParams
paramsFor(const Topology &topo, RoutingKind routing = RoutingKind::DimOrderXY)
{
    NetworkParams p;
    p.numVcs = 2;
    p.vcDepthFlits = 4;
    p.routerStages = 4;
    p.ejBufferFlits = 18;
    p.injBufferFlits.assign(topo.nodes(), 36);
    p.routing = routing;
    return p;
}

Message
makeMsg(NodeId src, NodeId dst, MsgType type = MsgType::ReadReply,
        TrafficClass cls = TrafficClass::Gpu, std::uint64_t id = 1)
{
    Message m;
    m.type = type;
    m.cls = cls;
    m.src = src;
    m.dst = dst;
    m.requester = src;
    m.id = id;
    return m;
}

void
drainReady(Network &net)
{
    for (NodeId n = 0; n < net.topology().nodes(); ++n) {
        while (net.hasMessage(n, NetKind::Request))
            net.popMessage(n, NetKind::Request);
        while (net.hasMessage(n, NetKind::Reply))
            net.popMessage(n, NetKind::Reply);
    }
}

/**
 * One fixed synthetic run; returns every aggregate statistic the
 * network exposes, formatted as one string for exact comparison.
 */
std::string
statsFingerprint(std::uint64_t seed)
{
    const int nodes = 16;
    const Topology topo = Topology::makeMesh(4, 4);
    NetworkParams params = paramsFor(topo);
    params.seed = seed;
    Network net(params, topo);

    SyntheticTraffic traffic(TrafficPattern::UniformRandom, nodes, 4, {});
    Rng rng(seed * 17 + 3);
    std::uint64_t id = 1;
    for (Cycle now = 0; now < 3000; ++now) {
        for (NodeId src = 0; src < nodes; ++src) {
            if (!rng.chance(0.08) || !net.canInject(src, 5))
                continue;
            Message m = makeMsg(src, traffic.dest(src, rng),
                                MsgType::ReadReply, TrafficClass::Gpu, id);
            m.id = id++;
            net.inject(m, 5, now);
        }
        net.tick(now);
        drainReady(net);
    }
    net.checkAllInvariants();

    const NetworkStats &s = net.stats();
    std::ostringstream os;
    os << s.packetsInjected.value() << ' ' << s.packetsDelivered.value()
       << ' ' << s.flitsDelivered.value() << ' ' << s.packetLatency.sum()
       << ' ' << s.packetLatency.count() << ' '
       << s.gpuPacketLatency.sum() << ' ' << s.warmupStraddlers.value()
       << ' ' << s.localDeliveries.value() << ' '
       << net.totalLinkTraversals() << ' ' << net.totalSwitchTraversals()
       << ' ' << net.totalBufferWrites() << ' ' << net.flitsInFlight();
    return os.str();
}

TEST(KernelDeterminism, SameSeedSameConfigGivesIdenticalStats)
{
    const std::string first = statsFingerprint(42);
    const std::string second = statsFingerprint(42);
    EXPECT_EQ(first, second);
    // And the run actually exercised the network.
    EXPECT_NE(first.find(' '), std::string::npos);
    EXPECT_NE(statsFingerprint(43), first)
        << "different seeds should not collide on every statistic";
}

/**
 * Like statsFingerprint, but with the virtual-network partition active:
 * 4 VCs, one per VN, (class, VN) arbitration on, and traffic spread
 * over all four VNs. Golden procedure: these fingerprints are computed
 * in-process and compared run to run, so a VC-schedule change (new VC
 * allocation order, arbitration rank change) never needs a committed
 * literal regenerated — see DESIGN.md §6.
 */
std::string
vnetStatsFingerprint(std::uint64_t seed)
{
    const int nodes = 16;
    const Topology topo = Topology::makeMesh(4, 4);
    NetworkParams params = paramsFor(topo);
    params.seed = seed;
    params.numVcs = 4;
    params.vnPriority = true;
    params.layout.numVcs = 4;
    for (int vn = 0; vn < numVnets; ++vn)
        params.layout.range[vn] = {static_cast<std::uint8_t>(vn), 1};
    Network net(params, topo);

    SyntheticTraffic traffic(TrafficPattern::UniformRandom, nodes, 4, {});
    Rng rng(seed * 17 + 3);
    std::uint64_t id = 1;
    for (Cycle now = 0; now < 3000; ++now) {
        for (NodeId src = 0; src < nodes; ++src) {
            if (!rng.chance(0.08) || !net.canInject(src, 5))
                continue;
            const int vn = static_cast<int>(rng.next() % numVnets);
            const VirtualNet v = static_cast<VirtualNet>(vn);
            // Request-side VNs carry 1-flit requests, reply-side VNs
            // 5-flit replies (mirrors the protocol's flit sizes).
            const bool reqSide = v == VirtualNet::Request ||
                                 v == VirtualNet::ForwardedRequest;
            Message m = makeMsg(src, traffic.dest(src, rng),
                                reqSide ? MsgType::ReadReq
                                        : MsgType::ReadReply,
                                TrafficClass::Gpu, id);
            m.id = id++;
            net.inject(m, reqSide ? 1 : 5, now, v);
        }
        net.tick(now);
        drainReady(net);
    }
    net.checkAllInvariants();

    const NetworkStats &s = net.stats();
    std::ostringstream os;
    os << s.packetsInjected.value() << ' ' << s.packetsDelivered.value()
       << ' ' << s.flitsDelivered.value() << ' ' << s.packetLatency.sum()
       << ' ' << s.packetLatency.count();
    for (int vn = 0; vn < numVnets; ++vn) {
        os << ' ' << s.vnPacketsInjected[vn].value() << ' '
           << s.vnFlitsDelivered[vn].value() << ' '
           << s.vnInjectionStalls[vn].value() << ' ' << s.vnPeakFlits[vn];
    }
    return os.str();
}

TEST(KernelDeterminism, VnetEnabledRunIsDeterministicAndUsesEveryVn)
{
    const std::string first = vnetStatsFingerprint(42);
    EXPECT_EQ(first, vnetStatsFingerprint(42));
    EXPECT_NE(vnetStatsFingerprint(43), first);

    // Re-run once more to inspect per-VN activity directly: every VN
    // carried packets and the per-VN live-occupancy gauge drained.
    const Topology topo = Topology::makeMesh(4, 4);
    NetworkParams params = paramsFor(topo);
    params.numVcs = 4;
    params.vnPriority = true;
    params.layout.numVcs = 4;
    for (int vn = 0; vn < numVnets; ++vn)
        params.layout.range[vn] = {static_cast<std::uint8_t>(vn), 1};
    Network net(params, topo);
    std::uint64_t id = 1;
    for (Cycle now = 0; now < 400; ++now) {
        for (int vn = 0; vn < numVnets; ++vn) {
            const VirtualNet v = static_cast<VirtualNet>(vn);
            const bool reqSide = v == VirtualNet::Request ||
                                 v == VirtualNet::ForwardedRequest;
            if (!net.canInject(0, 5))
                continue;
            Message m = makeMsg(0, 15,
                                reqSide ? MsgType::ReadReq
                                        : MsgType::ReadReply,
                                TrafficClass::Gpu, id);
            m.id = id++;
            net.inject(m, reqSide ? 1 : 5, now, v);
        }
        net.tick(now);
        drainReady(net);
    }
    for (Cycle now = 400; now < 600; ++now) {
        net.tick(now);
        drainReady(net);
    }
    net.checkAllInvariants();
    for (int vn = 0; vn < numVnets; ++vn) {
        EXPECT_GT(net.stats().vnPacketsInjected[vn].value(), 0u)
            << vnetName(static_cast<VirtualNet>(vn));
        EXPECT_GT(net.stats().vnFlitsDelivered[vn].value(), 0u)
            << vnetName(static_cast<VirtualNet>(vn));
        EXPECT_GT(net.stats().vnPeakFlits[vn], 0u);
        EXPECT_EQ(net.vnFlitsInFabric(static_cast<VirtualNet>(vn)), 0);
    }
}

TEST(WarmupBoundary, PacketsQueuedBeforeResetDropLatencySamples)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);

    // Queue a packet, advance a few cycles (packet still in flight),
    // then reset stats: its eventual delivery must not sample latency.
    net.inject(makeMsg(0, 15), 5, 0);
    for (Cycle c = 0; c < 3; ++c)
        net.tick(c);
    net.resetStats();
    for (Cycle c = 3; c < 200; ++c)
        net.tick(c);

    ASSERT_TRUE(net.hasMessage(15, NetKind::Reply));
    EXPECT_EQ(net.stats().warmupStraddlers.value(), 1u);
    EXPECT_EQ(net.stats().packetLatency.count(), 0u);
    EXPECT_EQ(net.stats().gpuPacketLatency.count(), 0u);
    // Delivery itself still counts toward measured throughput.
    EXPECT_EQ(net.stats().packetsDelivered.value(), 1u);
}

TEST(WarmupBoundary, PacketsQueuedAfterResetSampleNormally)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);

    net.inject(makeMsg(0, 15), 5, 0);
    for (Cycle c = 0; c < 3; ++c)
        net.tick(c);
    net.resetStats();
    net.inject(makeMsg(1, 14, MsgType::ReadReply, TrafficClass::Gpu, 2), 5,
               3);
    for (Cycle c = 3; c < 200; ++c)
        net.tick(c);

    // Straddler dropped, post-reset packet sampled.
    EXPECT_EQ(net.stats().warmupStraddlers.value(), 1u);
    EXPECT_EQ(net.stats().packetLatency.count(), 1u);
    EXPECT_GT(net.stats().packetLatency.mean(), 0.0);
    EXPECT_EQ(net.stats().packetsDelivered.value(), 2u);
}

TEST(NiVcFairness, AllSendVcsProgressUnderSaturation)
{
    // Saturate one NI with same-class multi-flit packets so several are
    // mid-flight on different attach-link VCs at once. With the fixed
    // lowest-index selection, VC0 monopolized the link whenever it held
    // a credit; the round-robin pointer must let every VC send.
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);

    std::uint64_t id = 1;
    for (Cycle c = 0; c < 600; ++c) {
        while (net.canInject(0, 4)) {
            net.inject(makeMsg(0, 15, MsgType::ReadReply,
                               TrafficClass::Gpu, id),
                       4, c);
            ++id;
        }
        net.tick(c);
        drainReady(net);
    }

    const std::uint64_t vc0 = net.niVcFlitsSent(0, 0);
    const std::uint64_t vc1 = net.niVcFlitsSent(0, 1);
    EXPECT_GT(vc0, 0u);
    EXPECT_GT(vc1, 0u);
    // Round-robin keeps the split balanced, not merely nonzero.
    const double ratio = vc0 > vc1
                             ? static_cast<double>(vc0) /
                                   static_cast<double>(vc1 ? vc1 : 1)
                             : static_cast<double>(vc1) /
                                   static_cast<double>(vc0 ? vc0 : 1);
    EXPECT_LT(ratio, 3.0) << "vc0=" << vc0 << " vc1=" << vc1;
}

TEST(LocalDelivery, SampledAtMinimumLatencyWithoutTouchingFabric)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);

    net.inject(makeMsg(5, 5, MsgType::ReadReply), 5, 10);
    // Available immediately; no ticks required.
    ASSERT_TRUE(net.hasMessage(5, NetKind::Reply));
    EXPECT_EQ(net.stats().localDeliveries.value(), 1u);
    EXPECT_EQ(net.stats().packetsDelivered.value(), 1u);
    // Minimum-latency sample: one zero-cycle observation.
    EXPECT_EQ(net.stats().packetLatency.count(), 1u);
    EXPECT_EQ(net.stats().packetLatency.sum(), 0.0);
    // No flit ever exists: flit, link, and router counters untouched.
    EXPECT_EQ(net.stats().flitsDelivered.value(), 0u);
    EXPECT_EQ(net.totalLinkTraversals(), 0u);
    EXPECT_EQ(net.totalSwitchTraversals(), 0u);
    EXPECT_EQ(net.totalBufferWrites(), 0u);

    const Message got = net.popMessage(5, NetKind::Reply);
    EXPECT_EQ(got.src, 5);
    EXPECT_EQ(got.dst, 5);
    net.checkAllInvariants();
}

TEST(LocalDelivery, DoesNotConsumeInjectionOrEjectionBuffers)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(paramsFor(topo), topo);

    const int before = net.injectFree(5);
    net.inject(makeMsg(5, 5), 5, 0);
    EXPECT_EQ(net.injectFree(5), before);
    // The ready-queue entry holds zero ejection slots.
    net.popMessage(5, NetKind::Reply);
    net.checkAllInvariants();
}

} // namespace
} // namespace dr

/**
 * @file
 * Runtime truth-checking of the phase/domain ownership model
 * (DESIGN.md §12). Each seeded PhaseMutant reproduces one ownership
 * violation the static checker (tools/drphase.py) catches textually;
 * here the DR_CHECKED stamp machinery must catch the same violation
 * dynamically — a mutant that only one side sees means the other
 * side's model has drifted from the code.
 *
 * Mutants needing a foreign domain only fire on a multi-domain engine
 * (threads >= 2); on the serial engine they are inert, which the last
 * test pins down.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "common/invariant.hpp"
#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace dr
{
namespace
{

NetworkParams
phaseParams(const Topology &topo, int threads)
{
    NetworkParams p;
    p.name = "phase-net";
    p.numVcs = 2;
    p.vcDepthFlits = 4;
    p.routerStages = 4;
    p.ejBufferFlits = 18;
    p.injBufferFlits.assign(topo.nodes(), 36);
    p.routing = RoutingKind::DimOrderXY;
    p.threads = threads;
    return p;
}

Message
phaseMsg(NodeId src, NodeId dst, std::uint64_t id)
{
    Message m;
    m.type = MsgType::ReadReq;
    m.cls = TrafficClass::Gpu;
    m.src = src;
    m.dst = dst;
    m.requester = src;
    m.id = id;
    return m;
}

/**
 * A destination in a different domain than node 0, avoiding the last
 * node (the mutants' victim, whose state must stay untouched by real
 * traffic so the stamp checks see only the seeded violation).
 */
NodeId
crossDomainDst(const Network &net)
{
    const NodeId last = net.topology().nodes() - 1;
    for (NodeId n = 0; n < last; ++n) {
        if (net.domainOfNode(n) != net.domainOfNode(0))
            return n;
    }
    return 0; // single domain: caller skips
}

/**
 * Build a two-domain 4x4 mesh, arm `mutant`, and run it with traffic
 * that crosses the domain boundary. Ends with a full invariant sweep
 * so audit-style mutants (forged stamps) are also reached.
 */
void
runMutant(Network::PhaseMutant mutant, Cycle cycles)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(phaseParams(topo, 2), topo);
    net.debugInjectPhaseMutant(mutant);
    const NodeId dst = crossDomainDst(net);
    std::uint64_t id = 1;
    for (Cycle c = 0; c < cycles; ++c) {
        if (c < 8 && dst != 0 && net.canInject(0, 1))
            net.inject(phaseMsg(0, dst, id++), 1, c);
        net.tick(c);
    }
    net.checkAllInvariants();
}

#define DR_REQUIRE_CHECKED()                                          \
    do {                                                              \
        if (!checkedBuild())                                          \
            GTEST_SKIP() << "phase mutants need a DR_CHECKED build";  \
    } while (0)

TEST(PhaseOwnership, CleanMultiDomainRunPassesAllChecks)
{
    // Baseline: the same harness with no mutant armed must be silent.
    runMutant(Network::PhaseMutant::None, 60);
}

TEST(PhaseOwnershipDeath, CrossDomainWriteTrapped)
{
    DR_REQUIRE_CHECKED();
    // Domain 0's worker calls niEject on the last domain's NI; the
    // NI's writer stamp must trap the foreign compute-phase write.
    EXPECT_DEATH(runMutant(Network::PhaseMutant::CrossDomainWrite, 10),
                 "phase violation: compute-phase write");
}

TEST(PhaseOwnershipDeath, UnstagedCrossDomainFlitTrapped)
{
    DR_REQUIRE_CHECKED();
    // A cross-domain hop bypasses the SPSC staging and commits into
    // the consumer's router from the producer's worker; the router's
    // stamp must trap it the moment a flit crosses the boundary.
    EXPECT_DEATH(runMutant(Network::PhaseMutant::UnstagedCross, 60),
                 "phase violation: compute-phase write");
}

TEST(PhaseOwnershipDeath, SerialStateTouchedInComputeTrapped)
{
    DR_REQUIRE_CHECKED();
    // The packet pool free list is serial-only; alloc() asserts the
    // serial phase and must abort when entered from a compute scope.
    EXPECT_DEATH(runMutant(Network::PhaseMutant::SerialInCompute, 10),
                 "serial-only");
}

TEST(PhaseOwnershipDeath, SpscDrainedOutOfOrderTrapped)
{
    DR_REQUIRE_CHECKED();
    // Descending producer order would replay arrivals in a different
    // order than the sequential engine; the drain assertion fires on
    // the first commit.
    EXPECT_DEATH(runMutant(Network::PhaseMutant::SpscOutOfOrder, 10),
                 "drained out of order");
}

TEST(PhaseOwnershipDeath, StampBypassCaughtByAudit)
{
    DR_REQUIRE_CHECKED();
    // The forged writer record survives (no legitimate write path
    // touches the victim) until the end-of-run audit rejects it.
    EXPECT_DEATH(runMutant(Network::PhaseMutant::StampBypass, 10),
                 "phase stamp audit");
}

TEST(PhaseOwnership, MutantsInertOnSerialEngine)
{
    // With one domain there is no ownership boundary to violate: every
    // mutant must be a no-op on the sequential engine.
    const Topology topo = Topology::makeMesh(4, 4);
    for (auto mutant : {Network::PhaseMutant::CrossDomainWrite,
                        Network::PhaseMutant::UnstagedCross,
                        Network::PhaseMutant::SerialInCompute,
                        Network::PhaseMutant::SpscOutOfOrder,
                        Network::PhaseMutant::StampBypass}) {
        Network net(phaseParams(topo, 1), topo);
        net.debugInjectPhaseMutant(mutant);
        std::uint64_t id = 1;
        for (Cycle c = 0; c < 40; ++c) {
            if (c < 8)
                net.inject(phaseMsg(0, 12, id++), 1, c);
            net.tick(c);
        }
        net.checkAllInvariants();
    }
}

} // namespace
} // namespace dr

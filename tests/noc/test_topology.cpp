#include <gtest/gtest.h>

#include "noc/topology.hpp"

namespace dr
{
namespace
{

TEST(Mesh, DimensionsAndAttachment)
{
    const Topology t = Topology::makeMesh(4, 4);
    EXPECT_EQ(t.routers(), 16);
    EXPECT_EQ(t.nodes(), 16);
    for (NodeId n = 0; n < 16; ++n) {
        EXPECT_EQ(t.attachRouter(n), n);
        EXPECT_EQ(t.attachPort(n), meshLocal);
    }
}

TEST(Mesh, CoordinatesRowMajor)
{
    const Topology t = Topology::makeMesh(4, 2);
    EXPECT_EQ(t.xOf(5), 1);
    EXPECT_EQ(t.yOf(5), 1);
    EXPECT_EQ(t.xOf(3), 3);
    EXPECT_EQ(t.yOf(3), 0);
}

TEST(Mesh, LinksAreSymmetric)
{
    const Topology t = Topology::makeMesh(3, 3);
    for (int r = 0; r < t.routers(); ++r) {
        for (int p = 0; p < t.radix(r); ++p) {
            const auto &conn = t.port(r, p);
            if (conn.kind != PortConn::Kind::Link)
                continue;
            const auto &back = t.port(conn.peerRouter, conn.peerPort);
            EXPECT_EQ(back.kind, PortConn::Kind::Link);
            EXPECT_EQ(back.peerRouter, r);
            EXPECT_EQ(back.peerPort, p);
        }
    }
}

TEST(Mesh, EdgeRoutersHaveFewerLinks)
{
    const Topology t = Topology::makeMesh(3, 3);
    // Corner router 0 has east and south links only.
    EXPECT_EQ(t.port(0, meshEast).kind, PortConn::Kind::Link);
    EXPECT_EQ(t.port(0, meshSouth).kind, PortConn::Kind::Link);
    EXPECT_EQ(t.port(0, meshWest).kind, PortConn::Kind::None);
    EXPECT_EQ(t.port(0, meshNorth).kind, PortConn::Kind::None);
}

TEST(Mesh, HopCountIsManhattanDistance)
{
    const Topology t = Topology::makeMesh(8, 8);
    EXPECT_EQ(t.hopCount(0, 63), 14);
    EXPECT_EQ(t.hopCount(0, 7), 7);
    EXPECT_EQ(t.hopCount(9, 9), 0);
    EXPECT_EQ(t.hopCount(9, 10), 1);
}

TEST(Mesh, ChannelCount)
{
    // 2 * (w-1) * h horizontal + 2 * w * (h-1) vertical unidirectional.
    const Topology t = Topology::makeMesh(4, 4);
    EXPECT_EQ(t.channelCount(), 2 * 3 * 4 + 2 * 4 * 3);
}

TEST(Crossbar, SingleSwitch)
{
    const Topology t = Topology::makeCrossbar(8);
    EXPECT_EQ(t.routers(), 1);
    EXPECT_EQ(t.nodes(), 8);
    EXPECT_EQ(t.radix(0), 8);
    for (NodeId n = 0; n < 8; ++n) {
        EXPECT_EQ(t.attachRouter(n), 0);
        EXPECT_EQ(t.attachPort(n), n);
    }
    EXPECT_EQ(t.channelCount(), 0);
}

TEST(FlattenedButterfly, RowColumnFullConnectivity)
{
    const Topology t = Topology::makeFlattenedButterfly(64, 4);
    EXPECT_EQ(t.routers(), 16);
    EXPECT_EQ(t.nodes(), 64);
    // Radix: 4 node ports + 3 row + 3 column links.
    EXPECT_EQ(t.radix(0), 10);
    // Any router pair is at most 2 hops apart.
    for (int a = 0; a < 16; ++a) {
        for (int b = 0; b < 16; ++b)
            EXPECT_LE(t.hopCount(a, b), 2);
    }
}

TEST(FlattenedButterfly, FourNodesPerRouter)
{
    const Topology t = Topology::makeFlattenedButterfly(64, 4);
    EXPECT_EQ(t.attachRouter(0), 0);
    EXPECT_EQ(t.attachRouter(3), 0);
    EXPECT_EQ(t.attachRouter(4), 1);
    EXPECT_EQ(t.attachRouter(63), 15);
}

TEST(Dragonfly, GroupsAndDiameter)
{
    const Topology t = Topology::makeDragonfly(64, 4, 4);
    EXPECT_EQ(t.routers(), 16);
    EXPECT_EQ(t.nodes(), 64);
    EXPECT_EQ(t.groupOf(0), 0);
    EXPECT_EQ(t.groupOf(15), 3);
    // Minimal paths: at most local + global + local = 3 hops.
    for (int a = 0; a < 16; ++a) {
        for (int b = 0; b < 16; ++b)
            EXPECT_LE(t.hopCount(a, b), 3);
    }
}

TEST(Dragonfly, IntraGroupSingleHop)
{
    const Topology t = Topology::makeDragonfly(64, 4, 4);
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            if (a != b) {
                EXPECT_EQ(t.hopCount(a, b), 1);
            }
        }
    }
}

TEST(TopologyFactory, MakesAllKinds)
{
    EXPECT_EQ(Topology::make(TopologyKind::Mesh, 64, 8, 8).kind(),
              TopologyKind::Mesh);
    EXPECT_EQ(Topology::make(TopologyKind::Crossbar, 64, 8, 8).kind(),
              TopologyKind::Crossbar);
    EXPECT_EQ(
        Topology::make(TopologyKind::FlattenedButterfly, 64, 8, 8).kind(),
        TopologyKind::FlattenedButterfly);
    EXPECT_EQ(Topology::make(TopologyKind::Dragonfly, 64, 8, 8).kind(),
              TopologyKind::Dragonfly);
}

TEST(TopologyProperty, EveryNodeHasExactlyOneAttachment)
{
    for (const TopologyKind kind :
         {TopologyKind::Mesh, TopologyKind::Crossbar,
          TopologyKind::FlattenedButterfly, TopologyKind::Dragonfly}) {
        const Topology t = Topology::make(kind, 64, 8, 8);
        std::vector<int> seen(64, 0);
        for (int r = 0; r < t.routers(); ++r) {
            for (int p = 0; p < t.radix(r); ++p) {
                const auto &conn = t.port(r, p);
                if (conn.kind == PortConn::Kind::Node)
                    ++seen[conn.node];
            }
        }
        for (NodeId n = 0; n < 64; ++n)
            EXPECT_EQ(seen[n], 1) << topologyName(kind) << " node " << n;
    }
}

TEST(TopologyProperty, TablesReachAllDestinations)
{
    for (const TopologyKind kind :
         {TopologyKind::Mesh, TopologyKind::FlattenedButterfly,
          TopologyKind::Dragonfly}) {
        const Topology t = Topology::make(kind, 64, 8, 8);
        for (int a = 0; a < t.routers(); ++a) {
            for (int b = 0; b < t.routers(); ++b)
                EXPECT_GE(t.hopCount(a, b), 0);
        }
    }
}

} // namespace
} // namespace dr

#include <gtest/gtest.h>

#include "noc/topology.hpp"

namespace dr
{
namespace
{

TEST(Mesh, DimensionsAndAttachment)
{
    const Topology t = Topology::makeMesh(4, 4);
    EXPECT_EQ(t.routers(), 16);
    EXPECT_EQ(t.nodes(), 16);
    for (NodeId n = 0; n < 16; ++n) {
        EXPECT_EQ(t.attachRouter(n), n);
        EXPECT_EQ(t.attachPort(n), meshLocal);
    }
}

TEST(Mesh, CoordinatesRowMajor)
{
    const Topology t = Topology::makeMesh(4, 2);
    EXPECT_EQ(t.xOf(5), 1);
    EXPECT_EQ(t.yOf(5), 1);
    EXPECT_EQ(t.xOf(3), 3);
    EXPECT_EQ(t.yOf(3), 0);
}

TEST(Mesh, LinksAreSymmetric)
{
    const Topology t = Topology::makeMesh(3, 3);
    for (int r = 0; r < t.routers(); ++r) {
        for (int p = 0; p < t.radix(r); ++p) {
            const auto &conn = t.port(r, p);
            if (conn.kind != PortConn::Kind::Link)
                continue;
            const auto &back = t.port(conn.peerRouter, conn.peerPort);
            EXPECT_EQ(back.kind, PortConn::Kind::Link);
            EXPECT_EQ(back.peerRouter, r);
            EXPECT_EQ(back.peerPort, p);
        }
    }
}

TEST(Mesh, EdgeRoutersHaveFewerLinks)
{
    const Topology t = Topology::makeMesh(3, 3);
    // Corner router 0 has east and south links only.
    EXPECT_EQ(t.port(0, meshEast).kind, PortConn::Kind::Link);
    EXPECT_EQ(t.port(0, meshSouth).kind, PortConn::Kind::Link);
    EXPECT_EQ(t.port(0, meshWest).kind, PortConn::Kind::None);
    EXPECT_EQ(t.port(0, meshNorth).kind, PortConn::Kind::None);
}

TEST(Mesh, HopCountIsManhattanDistance)
{
    const Topology t = Topology::makeMesh(8, 8);
    EXPECT_EQ(t.hopCount(0, 63), 14);
    EXPECT_EQ(t.hopCount(0, 7), 7);
    EXPECT_EQ(t.hopCount(9, 9), 0);
    EXPECT_EQ(t.hopCount(9, 10), 1);
}

TEST(Mesh, ChannelCount)
{
    // 2 * (w-1) * h horizontal + 2 * w * (h-1) vertical unidirectional.
    const Topology t = Topology::makeMesh(4, 4);
    EXPECT_EQ(t.channelCount(), 2 * 3 * 4 + 2 * 4 * 3);
}

TEST(Crossbar, SingleSwitch)
{
    const Topology t = Topology::makeCrossbar(8);
    EXPECT_EQ(t.routers(), 1);
    EXPECT_EQ(t.nodes(), 8);
    EXPECT_EQ(t.radix(0), 8);
    for (NodeId n = 0; n < 8; ++n) {
        EXPECT_EQ(t.attachRouter(n), 0);
        EXPECT_EQ(t.attachPort(n), n);
    }
    EXPECT_EQ(t.channelCount(), 0);
}

TEST(FlattenedButterfly, RowColumnFullConnectivity)
{
    const Topology t = Topology::makeFlattenedButterfly(64, 4);
    EXPECT_EQ(t.routers(), 16);
    EXPECT_EQ(t.nodes(), 64);
    // Radix: 4 node ports + 3 row + 3 column links.
    EXPECT_EQ(t.radix(0), 10);
    // Any router pair is at most 2 hops apart.
    for (int a = 0; a < 16; ++a) {
        for (int b = 0; b < 16; ++b)
            EXPECT_LE(t.hopCount(a, b), 2);
    }
}

TEST(FlattenedButterfly, FourNodesPerRouter)
{
    const Topology t = Topology::makeFlattenedButterfly(64, 4);
    EXPECT_EQ(t.attachRouter(0), 0);
    EXPECT_EQ(t.attachRouter(3), 0);
    EXPECT_EQ(t.attachRouter(4), 1);
    EXPECT_EQ(t.attachRouter(63), 15);
}

TEST(Dragonfly, GroupsAndDiameter)
{
    const Topology t = Topology::makeDragonfly(64, 4, 4);
    EXPECT_EQ(t.routers(), 16);
    EXPECT_EQ(t.nodes(), 64);
    EXPECT_EQ(t.groupOf(0), 0);
    EXPECT_EQ(t.groupOf(15), 3);
    // Minimal paths: at most local + global + local = 3 hops.
    for (int a = 0; a < 16; ++a) {
        for (int b = 0; b < 16; ++b)
            EXPECT_LE(t.hopCount(a, b), 3);
    }
}

TEST(Dragonfly, IntraGroupSingleHop)
{
    const Topology t = Topology::makeDragonfly(64, 4, 4);
    for (int a = 0; a < 4; ++a) {
        for (int b = 0; b < 4; ++b) {
            if (a != b) {
                EXPECT_EQ(t.hopCount(a, b), 1);
            }
        }
    }
}

TEST(TopologyFactory, MakesAllKinds)
{
    EXPECT_EQ(Topology::make(TopologyKind::Mesh, 64, 8, 8).kind(),
              TopologyKind::Mesh);
    EXPECT_EQ(Topology::make(TopologyKind::Crossbar, 64, 8, 8).kind(),
              TopologyKind::Crossbar);
    EXPECT_EQ(
        Topology::make(TopologyKind::FlattenedButterfly, 64, 8, 8).kind(),
        TopologyKind::FlattenedButterfly);
    EXPECT_EQ(Topology::make(TopologyKind::Dragonfly, 64, 8, 8).kind(),
              TopologyKind::Dragonfly);
}

TEST(TopologyProperty, EveryNodeHasExactlyOneAttachment)
{
    for (const TopologyKind kind :
         {TopologyKind::Mesh, TopologyKind::Crossbar,
          TopologyKind::FlattenedButterfly, TopologyKind::Dragonfly}) {
        const Topology t = Topology::make(kind, 64, 8, 8);
        std::vector<int> seen(64, 0);
        for (int r = 0; r < t.routers(); ++r) {
            for (int p = 0; p < t.radix(r); ++p) {
                const auto &conn = t.port(r, p);
                if (conn.kind == PortConn::Kind::Node)
                    ++seen[conn.node];
            }
        }
        for (NodeId n = 0; n < 64; ++n)
            EXPECT_EQ(seen[n], 1) << topologyName(kind) << " node " << n;
    }
}

TEST(TopologyProperty, TablesReachAllDestinations)
{
    for (const TopologyKind kind :
         {TopologyKind::Mesh, TopologyKind::FlattenedButterfly,
          TopologyKind::Dragonfly}) {
        const Topology t = Topology::make(kind, 64, 8, 8);
        for (int a = 0; a < t.routers(); ++a) {
            for (int b = 0; b < t.routers(); ++b)
                EXPECT_GE(t.hopCount(a, b), 0);
        }
    }
}

TEST(ChipletMesh, ComposedGridShapeAndChipletIndex)
{
    // 2x3 chiplets of 4x2 routers compose an 8x6 grid, row-major.
    const Topology t = Topology::makeChipletMesh(2, 3, 4, 2);
    EXPECT_EQ(t.kind(), TopologyKind::ChipletMesh);
    EXPECT_EQ(t.meshWidth(), 8);
    EXPECT_EQ(t.meshHeight(), 6);
    EXPECT_EQ(t.routers(), 48);
    EXPECT_EQ(t.nodes(), 48);
    EXPECT_EQ(t.chipletsX(), 2);
    EXPECT_EQ(t.chipletsY(), 3);
    EXPECT_EQ(t.chipletSubW(), 4);
    EXPECT_EQ(t.chipletSubH(), 2);
    // Chiplet index is row-major over the chiplet grid.
    EXPECT_EQ(t.chipletOf(0), 0);                // (0,0)
    EXPECT_EQ(t.chipletOf(4), 1);                // (4,0)
    EXPECT_EQ(t.chipletOf(2 * 8 + 0), 2);        // (0,2)
    EXPECT_EQ(t.chipletOf(5 * 8 + 7), 5);        // (7,5)
}

TEST(ChipletMesh, FullGatewaysAreStructurallyAPlainMesh)
{
    // linksPerEdge = 0: every boundary router pair is linked, so the
    // composed grid has exactly the channels of the equivalent mesh —
    // the boundary ones merely carry the interposer tag.
    const Topology t = Topology::makeChipletMesh(2, 2, 2, 2, 0);
    const Topology mesh = Topology::makeMesh(4, 4);
    EXPECT_EQ(t.channelCount(), mesh.channelCount());
    // One vertical and one horizontal seam, 4 boundary pairs each:
    // 8 bidirectional links = 16 unidirectional channels.
    EXPECT_EQ(t.interposerLinkCount(), 16);
    // Full gateways: every local row and column carries a crossing.
    EXPECT_EQ(t.gatewayRows(), (std::vector<int>{0, 1}));
    EXPECT_EQ(t.gatewayCols(), (std::vector<int>{0, 1}));
}

TEST(ChipletMesh, RestrictedGatewaysAndSymmetricInterposerFlags)
{
    // 2 gateway links per facing edge of a 4x4 sub-mesh: rows {0, 2}.
    const Topology t = Topology::makeChipletMesh(2, 2, 4, 4, 2);
    EXPECT_EQ(t.chipletLinksPerEdge(), 2);
    EXPECT_EQ(t.gatewayRows(), (std::vector<int>{0, 2}));
    EXPECT_EQ(t.gatewayCols(), (std::vector<int>{0, 2}));
    // Two seams x 2 facing edge pairs x 2 links, bidirectional.
    EXPECT_EQ(t.interposerLinkCount(), 16);

    int tagged = 0;
    for (int r = 0; r < t.routers(); ++r) {
        for (int p = 0; p < t.radix(r); ++p) {
            const PortConn &conn = t.port(r, p);
            if (conn.kind != PortConn::Kind::Link)
                continue;
            const PortConn &back = t.port(conn.peerRouter, conn.peerPort);
            // The interposer tag must be set on both endpoints.
            EXPECT_EQ(conn.interposer, back.interposer)
                << "router " << r << " port " << p;
            if (conn.interposer) {
                ++tagged;
                EXPECT_NE(t.chipletOf(r), t.chipletOf(conn.peerRouter));
            } else {
                EXPECT_EQ(t.chipletOf(r), t.chipletOf(conn.peerRouter));
            }
        }
    }
    EXPECT_EQ(tagged, t.interposerLinkCount());

    // A non-gateway boundary router has no crossing channel at all:
    // (3, 1) is on the vertical seam but local row 1 is not a gateway.
    EXPECT_EQ(t.port(1 * 8 + 3, meshEast).kind, PortConn::Kind::None);
    // (3, 2) is on gateway row 2 and crosses to (4, 2).
    const PortConn &gw = t.port(2 * 8 + 3, meshEast);
    ASSERT_EQ(gw.kind, PortConn::Kind::Link);
    EXPECT_TRUE(gw.interposer);
    EXPECT_EQ(gw.peerRouter, 2 * 8 + 4);
}

TEST(ChipletMesh, RestrictedTablesReachAllDestinations)
{
    // Even with a single gateway link per edge the fallback table must
    // connect every router pair (drverify/debug paths walk it).
    const Topology t = Topology::makeChipletMesh(2, 2, 4, 4, 1);
    for (int a = 0; a < t.routers(); ++a) {
        for (int b = 0; b < t.routers(); ++b)
            EXPECT_GE(t.hopCount(a, b), 0);
    }
}

TEST(ChipletMeshDeath, InvalidShapesAreFatal)
{
    EXPECT_DEATH(Topology::makeChipletMesh(1, 1, 4, 4),
                 "at least 2 chiplets");
    EXPECT_DEATH(Topology::makeChipletMesh(2, 2, 0, 4),
                 "at least 1");
    EXPECT_DEATH(Topology::makeChipletMesh(2, 2, 4, 4, 5),
                 "linksPerEdge");
    // The generic factory cannot build a chiplet mesh: it lacks the
    // chiplet grid parameters.
    EXPECT_DEATH(Topology::make(TopologyKind::ChipletMesh, 16, 4, 4),
                 "own parameters");
}

TEST(TopologyDeath, GridCoordinatesOnNonGridTrap)
{
    if (!checkedBuild())
        GTEST_SKIP() << "coordinate guards need a DR_CHECKED build";
    const Topology t = Topology::makeCrossbar(8);
    EXPECT_DEATH((void)t.xOf(0), "non-grid");
    EXPECT_DEATH((void)t.yOf(0), "non-grid");
}

} // namespace
} // namespace dr

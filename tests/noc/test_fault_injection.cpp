#include <gtest/gtest.h>

#include "noc/network.hpp"
#include "noc/topology.hpp"

namespace dr
{
namespace
{

NetworkParams
faultParams(const Topology &topo)
{
    NetworkParams p;
    p.name = "fault-net";
    p.numVcs = 2;
    p.vcDepthFlits = 4;
    p.routerStages = 4;
    p.ejBufferFlits = 18;
    p.injBufferFlits.assign(topo.nodes(), 36);
    p.routing = RoutingKind::DimOrderXY;
    return p;
}

Message
faultMsg(NodeId src, NodeId dst, std::uint64_t id,
         MsgType type = MsgType::ReadReq)
{
    Message m;
    m.type = type;
    m.cls = TrafficClass::Gpu;
    m.src = src;
    m.dst = dst;
    m.requester = src;
    m.id = id;
    return m;
}

void
tickRange(Network &net, Cycle from, Cycle cycles)
{
    for (Cycle c = from; c < from + cycles; ++c)
        net.tick(c);
}

TEST(FaultInjection, CheckersPassOnIdleNetwork)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(faultParams(topo), topo);
    net.checkAllInvariants();
    EXPECT_EQ(net.flitsInFlight(), 0);
    EXPECT_EQ(net.conservedFlitsInjected(), 0u);
}

TEST(FaultInjection, CheckersPassWithTrafficInFlight)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(faultParams(topo), topo);
    // Multi-flit replies crossing single-flit requests: enough traffic
    // to occupy buffers, arrival queues, and ejection staging at once.
    std::uint64_t id = 1;
    for (NodeId src = 0; src < 8; ++src) {
        net.inject(faultMsg(src, 15 - src, id++), 1, 0);
        net.inject(faultMsg(15 - src, src, id++, MsgType::ReadReply), 9, 0);
    }
    for (Cycle c = 0; c < 40; ++c) {
        net.tick(c);
        // Between ticks the conservation laws must hold exactly, even
        // with every flit mid-flight.
        net.checkAllInvariants();
    }
    EXPECT_GT(net.flitsInFlight(), 0);
}

TEST(FaultInjection, ConservationCountersBalanceAfterDrain)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(faultParams(topo), topo);
    net.inject(faultMsg(0, 15, 1), 1, 0);
    net.inject(faultMsg(5, 10, 2, MsgType::ReadReply), 9, 0);
    tickRange(net, 0, 400);
    net.checkAllInvariants();
    EXPECT_EQ(net.flitsInFlight(), 0);
    EXPECT_EQ(net.conservedFlitsInjected(), 10u);
    EXPECT_EQ(net.conservedFlitsEjected(), 10u);
    EXPECT_TRUE(net.hasMessage(15, NetKind::Request));
    EXPECT_TRUE(net.hasMessage(10, NetKind::Reply));
}

TEST(FaultInjection, ConservationCountersSurviveStatsReset)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(faultParams(topo), topo);
    net.inject(faultMsg(0, 15, 1), 1, 0);
    tickRange(net, 0, 200);
    net.resetStats();
    // Stats counters go to zero at the warmup boundary; the
    // conservation counters must not, or the law would report every
    // in-flight flit as lost.
    EXPECT_EQ(net.stats().packetsInjected.value(), 0u);
    EXPECT_EQ(net.conservedFlitsInjected(), 1u);
    net.checkAllInvariants();
}

TEST(FaultInjectionDeath, SeededCreditLeakIsCaught)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(faultParams(topo), topo);
    // Router 5 is interior: its east port is a router-router link.
    net.debugLeakCredit(5, meshEast, 0);
    EXPECT_DEATH(net.checkCreditConservation(),
                 "credit conservation violated");
}

TEST(FaultInjectionDeath, CreditLeakCaughtEvenUnderTraffic)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(faultParams(topo), topo);
    net.inject(faultMsg(0, 15, 1), 1, 0);
    net.inject(faultMsg(12, 3, 2, MsgType::ReadReply), 9, 0);
    tickRange(net, 0, 20);
    net.debugLeakCredit(9, meshNorth, 1);
    EXPECT_DEATH(net.checkCreditConservation(),
                 "credit conservation violated");
}

TEST(FaultInjectionDeath, LeakOnEmptyLinkPanicsImmediately)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(faultParams(topo), topo);
    net.debugLeakCredit(0, meshEast, 0);
    net.debugLeakCredit(0, meshEast, 0);
    net.debugLeakCredit(0, meshEast, 0);
    net.debugLeakCredit(0, meshEast, 0);
    // All four credits gone; a fifth leak has nothing left to take.
    EXPECT_DEATH(net.debugLeakCredit(0, meshEast, 0), "");
}

TEST(FaultInjection, FlitConservationUnaffectedByCreditLeak)
{
    const Topology topo = Topology::makeMesh(4, 4);
    Network net(faultParams(topo), topo);
    net.debugLeakCredit(5, meshEast, 0);
    // The leak starves throughput but loses no flits: the flit law must
    // still hold while the credit law is violated.
    net.checkFlitConservation();
}

} // namespace
} // namespace dr

/**
 * @file
 * Determinism proofs for the parallel tick engine (DESIGN.md §11):
 * the spatial-domain partition must be unobservable. Every test runs
 * the same seeded workload under noc.threads = 1 and under a
 * multi-domain partition and requires the full statistics fingerprint
 * — including floating-point latency sums, whose addition order the
 * serial merge must reproduce exactly — to be bit-identical across
 * all four topologies, with virtual networks off and on, and for an
 * end-to-end Delegated Replies protocol run (delegation + DNF).
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/rng.hpp"
#include "core/experiment.hpp"
#include "core/hetero_system.hpp"
#include "noc/network.hpp"
#include "noc/synthetic_traffic.hpp"

namespace dr
{
namespace
{

Message
makeMsg(NodeId src, NodeId dst, MsgType type, TrafficClass cls,
        std::uint64_t id)
{
    Message m;
    m.type = type;
    m.cls = cls;
    m.src = src;
    m.dst = dst;
    m.requester = src;
    m.id = id;
    return m;
}

void
drainReady(Network &net)
{
    for (NodeId n = 0; n < net.topology().nodes(); ++n) {
        while (net.hasMessage(n, NetKind::Request))
            net.popMessage(n, NetKind::Request);
        while (net.hasMessage(n, NetKind::Reply))
            net.popMessage(n, NetKind::Reply);
    }
}

Topology
topoFor(TopologyKind kind)
{
    switch (kind) {
      case TopologyKind::Mesh:
        return Topology::makeMesh(4, 4);
      case TopologyKind::Crossbar:
        return Topology::makeCrossbar(16);
      case TopologyKind::FlattenedButterfly:
        return Topology::makeFlattenedButterfly(16, 4);
      case TopologyKind::Dragonfly:
        return Topology::makeDragonfly(64, 4, 4);
      case TopologyKind::ChipletMesh:
        // 2x2 chiplets of 2x2 routers, one interposer link per edge:
        // gateway-restricted, so hierarchical routing is mandatory.
        return Topology::makeChipletMesh(2, 2, 2, 2, 1);
    }
    panic("unknown topology kind");
}

/**
 * One fixed synthetic run on `kind` with the given thread count;
 * returns every aggregate statistic, formatted for exact comparison.
 * With `vnets` set the VCs are partitioned one-per-VN (two-per-VN on
 * Dragonfly, which needs 2 VCs per VN for phase escalation) and
 * traffic is spread across all four virtual networks.
 */
std::string
fingerprint(TopologyKind kind, int threads, bool vnets,
            std::uint64_t seed)
{
    const Topology topo = topoFor(kind);
    const int nodes = topo.nodes();

    NetworkParams params;
    params.seed = seed;
    params.vcDepthFlits = 4;
    params.routerStages = 4;
    params.ejBufferFlits = 20;
    params.injBufferFlits.assign(nodes, 36);
    params.routing = kind == TopologyKind::Mesh
                         ? RoutingKind::DimOrderXY
                     : kind == TopologyKind::ChipletMesh
                         ? RoutingKind::ChipletHierarchical
                         : RoutingKind::TableMinimal;
    params.threads = threads;
    if (kind == TopologyKind::ChipletMesh) {
        // Exercise the interposer link class: half-width channels
        // (2-cycle serialization) plus extra hop/credit latency. The
        // throttle and occupancy bookkeeping must be as partition-
        // independent as everything else.
        params.interposerSerialization = 2;
        params.interposerLatency = 3;
    }
    const int vcsPerVn = kind == TopologyKind::Dragonfly ? 2 : 1;
    if (vnets) {
        params.numVcs = numVnets * vcsPerVn;
        params.vnPriority = true;
        params.layout.numVcs = params.numVcs;
        for (int vn = 0; vn < numVnets; ++vn) {
            params.layout.range[vn] = {
                static_cast<std::uint8_t>(vn * vcsPerVn),
                static_cast<std::uint8_t>(vcsPerVn)};
        }
    } else {
        // Chiplet routing carves three phase classes out of the
        // (uniform) VC range, so it needs at least 3 VCs.
        params.numVcs = kind == TopologyKind::ChipletMesh ? 3 : 2;
    }
    Network net(params, topo);

    SyntheticTraffic traffic(TrafficPattern::UniformRandom, nodes, 4, {});
    Rng rng(seed * 17 + 3);
    std::uint64_t id = 1;
    const Cycle horizon = 2000;
    for (Cycle now = 0; now < horizon; ++now) {
        for (NodeId src = 0; src < nodes; ++src) {
            if (!rng.chance(0.08) || !net.canInject(src, 5))
                continue;
            const VirtualNet vn =
                vnets ? static_cast<VirtualNet>(rng.next() % numVnets)
                      : VirtualNet::Reply;
            const bool reqSide = vn == VirtualNet::Request ||
                                 vn == VirtualNet::ForwardedRequest;
            Message m =
                makeMsg(src, traffic.dest(src, rng),
                        reqSide ? MsgType::ReadReq : MsgType::ReadReply,
                        (src % 3) ? TrafficClass::Gpu : TrafficClass::Cpu,
                        id);
            m.id = id++;
            net.inject(m, reqSide ? 1 : 5, now, vn);
        }
        // Mid-run stats reset: the warmup-straddler bookkeeping must
        // also be partition-independent.
        if (now == horizon / 4)
            net.resetStats();
        net.tick(now);
        drainReady(net);
    }
    net.checkAllInvariants();

    const NetworkStats &s = net.stats();
    std::ostringstream os;
    os << s.packetsInjected.value() << ' ' << s.packetsDelivered.value()
       << ' ' << s.flitsDelivered.value() << ' ' << s.packetLatency.sum()
       << ' ' << s.packetLatency.count() << ' '
       << s.cpuPacketLatency.sum() << ' ' << s.gpuPacketLatency.sum()
       << ' ' << s.warmupStraddlers.value() << ' '
       << s.localDeliveries.value() << ' ' << net.totalLinkTraversals()
       << ' ' << net.totalSwitchTraversals() << ' '
       << net.totalBufferWrites() << ' ' << net.flitsInFlight();
    for (int vn = 0; vn < numVnets; ++vn) {
        os << ' ' << s.vnPacketsInjected[vn].value() << ' '
           << s.vnFlitsDelivered[vn].value() << ' '
           << s.vnInjectionStalls[vn].value() << ' ' << s.vnPeakFlits[vn];
    }
    os << ' ' << s.interposerFlits.value() << ' ' << s.interposerPeakFlits
       << ' ' << net.interposerFlitsInFlight();
    return os.str();
}

struct PartitionCase
{
    TopologyKind kind;
    bool vnets;
};

class PartitionIndependence
    : public ::testing::TestWithParam<PartitionCase>
{
};

TEST_P(PartitionIndependence, FourThreadsMatchOneThread)
{
    const PartitionCase c = GetParam();
    const std::string serial = fingerprint(c.kind, 1, c.vnets, 42);
    EXPECT_NE(serial.find(' '), std::string::npos);
    EXPECT_EQ(serial, fingerprint(c.kind, 4, c.vnets, 42));
    // An uneven partition (3 domains over the router range) must be
    // just as unobservable as the even one.
    EXPECT_EQ(serial, fingerprint(c.kind, 3, c.vnets, 42));
    EXPECT_NE(serial, fingerprint(c.kind, 4, c.vnets, 43))
        << "different seeds should not collide on every statistic";
}

std::string
caseName(const ::testing::TestParamInfo<PartitionCase> &info)
{
    std::string name;
    switch (info.param.kind) {
      case TopologyKind::Mesh: name = "Mesh"; break;
      case TopologyKind::Crossbar: name = "Crossbar"; break;
      case TopologyKind::FlattenedButterfly: name = "Fbfly"; break;
      case TopologyKind::Dragonfly: name = "Dragonfly"; break;
      case TopologyKind::ChipletMesh: name = "Chiplet"; break;
    }
    return name + (info.param.vnets ? "Vnets" : "");
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, PartitionIndependence,
    ::testing::Values(
        PartitionCase{TopologyKind::Mesh, false},
        PartitionCase{TopologyKind::Mesh, true},
        PartitionCase{TopologyKind::Crossbar, false},
        PartitionCase{TopologyKind::Crossbar, true},
        PartitionCase{TopologyKind::FlattenedButterfly, false},
        PartitionCase{TopologyKind::FlattenedButterfly, true},
        PartitionCase{TopologyKind::Dragonfly, false},
        PartitionCase{TopologyKind::Dragonfly, true},
        // Chiplet + vnets is covered by the whole-system matrix: four
        // 3-VC phase classes do not fit the 8-VC cap of one raw kernel.
        PartitionCase{TopologyKind::ChipletMesh, false}),
    caseName);

/**
 * Chiplet meshes snap the domain partition to whole chiplet rows so a
 * domain boundary never cuts through a chiplet: interposer links are
 * the only cross-domain channels, which keeps the narrow-link staging
 * traffic off the intra-chiplet fast paths.
 */
TEST(ParallelEngine, ChipletDomainsAlignToChipletBoundaries)
{
    const Topology topo = Topology::makeChipletMesh(2, 4, 2, 2, 1);
    NetworkParams params;
    params.numVcs = 3;
    params.routing = RoutingKind::ChipletHierarchical;
    params.injBufferFlits.assign(topo.nodes(), 8);
    params.threads = 4;
    Network net(params, topo);

    EXPECT_EQ(net.numDomains(), 4);  // one per chiplet row
    std::vector<int> chipletDomain(topo.chipletsX() * topo.chipletsY(), -1);
    for (int r = 0; r < topo.routers(); ++r) {
        // Every router of a chiplet lives in that chiplet row's domain.
        EXPECT_EQ(net.domainOfRouter(r), topo.yOf(r) / topo.chipletSubH())
            << "router " << r;
        int &d = chipletDomain[topo.chipletOf(r)];
        if (d < 0)
            d = net.domainOfRouter(r);
        EXPECT_EQ(net.domainOfRouter(r), d)
            << "chiplet split across domains at router " << r;
    }
    for (NodeId n = 0; n < topo.nodes(); ++n)
        EXPECT_EQ(net.domainOfNode(n),
                  net.domainOfRouter(topo.attachRouter(n)));

    // More threads than chiplet rows must clamp, never split a chiplet.
    params.threads = 7;
    Network clamped(params, topo);
    EXPECT_EQ(clamped.numDomains(), 4);
}

/**
 * End-to-end Delegated Replies run (delegation + delegate-not-found
 * path active) through the full protocol stack: the threaded engine
 * must reproduce the single-threaded golden exactly, down to the
 * floating-point metrics.
 */
TEST(ParallelEngine, DrProtocolEndToEndMatchesSerialGolden)
{
    SystemConfig cfg = SystemConfig::makePaper();
    cfg.mechanism = Mechanism::DelegatedReplies;
    cfg.warmupCycles = 4000;
    cfg.simCycles = 8000;

    cfg.noc.threads = 1;
    const RunResults serial = runWorkload(cfg, "HS", "blackscholes");
    cfg.noc.threads = 4;
    const RunResults parallel = runWorkload(cfg, "HS", "blackscholes");

    // The run must actually exercise the DR machinery.
    EXPECT_GT(serial.delegations, 0u);
    EXPECT_GT(serial.l1Misses, 100u);

    EXPECT_EQ(serial.cycles, parallel.cycles);
    EXPECT_DOUBLE_EQ(serial.gpuIpc, parallel.gpuIpc);
    EXPECT_DOUBLE_EQ(serial.cpuIpc, parallel.cpuIpc);
    EXPECT_DOUBLE_EQ(serial.cpuLatency, parallel.cpuLatency);
    EXPECT_DOUBLE_EQ(serial.gpuDataRate, parallel.gpuDataRate);
    EXPECT_DOUBLE_EQ(serial.memBlockingRate, parallel.memBlockingRate);
    EXPECT_EQ(serial.l1Misses, parallel.l1Misses);
    EXPECT_EQ(serial.missesWithRemoteCopy, parallel.missesWithRemoteCopy);
    EXPECT_EQ(serial.delegations, parallel.delegations);
    EXPECT_EQ(serial.frqRemoteHits, parallel.frqRemoteHits);
    EXPECT_EQ(serial.frqDelayedHits, parallel.frqDelayedHits);
    EXPECT_EQ(serial.frqRemoteMisses, parallel.frqRemoteMisses);
    EXPECT_EQ(serial.requestsInjected, parallel.requestsInjected);
    EXPECT_EQ(serial.switchTraversals, parallel.switchTraversals);
    EXPECT_EQ(serial.bufferWrites, parallel.bufferWrites);
    EXPECT_EQ(serial.linkTraversals, parallel.linkTraversals);
    EXPECT_DOUBLE_EQ(serial.gpuL1MissRate, parallel.gpuL1MissRate);
    EXPECT_DOUBLE_EQ(serial.llcHitRate, parallel.llcHitRate);
}

} // namespace
} // namespace dr

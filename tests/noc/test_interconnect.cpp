#include <gtest/gtest.h>

#include "noc/interconnect.hpp"

namespace dr
{
namespace
{

std::vector<NodeType>
uniformTypes(int n, int memNodes)
{
    std::vector<NodeType> types(n, NodeType::GpuCore);
    for (int i = 0; i < memNodes; ++i)
        types[i] = NodeType::MemNode;
    return types;
}

SystemConfig
smallCfg()
{
    SystemConfig cfg = SystemConfig::makeSmall();
    return cfg;
}

Message
makeMsg(NodeId src, NodeId dst, MsgType type,
        TrafficClass cls = TrafficClass::Gpu)
{
    static std::uint64_t nextId = 1;
    Message m;
    m.type = type;
    m.cls = cls;
    m.src = src;
    m.dst = dst;
    m.requester = src;
    m.id = nextId++;
    return m;
}

TEST(Interconnect, SeparateNetworksRouteByMessageType)
{
    const SystemConfig cfg = smallCfg();
    Interconnect ic(cfg, uniformTypes(16, 2));
    EXPECT_FALSE(ic.shared());
    EXPECT_NE(&ic.net(NetKind::Request), &ic.net(NetKind::Reply));

    ic.send(makeMsg(2, 0, MsgType::ReadReq), 0);
    ic.send(makeMsg(0, 2, MsgType::ReadReply), 0);
    for (Cycle c = 0; c < 300; ++c)
        ic.tick(c);
    EXPECT_TRUE(ic.hasMessage(0, NetKind::Request));
    EXPECT_TRUE(ic.hasMessage(2, NetKind::Reply));
    EXPECT_EQ(ic.net(NetKind::Request).stats().packetsDelivered.value(), 1u);
    EXPECT_EQ(ic.net(NetKind::Reply).stats().packetsDelivered.value(), 1u);
}

TEST(Interconnect, SharedModeUsesOneNetwork)
{
    SystemConfig cfg = smallCfg();
    cfg.noc.sharedPhysical = true;
    Interconnect ic(cfg, uniformTypes(16, 2));
    EXPECT_TRUE(ic.shared());
    EXPECT_EQ(&ic.net(NetKind::Request), &ic.net(NetKind::Reply));

    ic.send(makeMsg(2, 0, MsgType::ReadReq), 0);
    ic.send(makeMsg(0, 2, MsgType::ReadReply), 0);
    for (Cycle c = 0; c < 300; ++c)
        ic.tick(c);
    EXPECT_TRUE(ic.hasMessage(0, NetKind::Request));
    EXPECT_TRUE(ic.hasMessage(2, NetKind::Reply));
}

TEST(Interconnect, SharedModeWiderChannelsShrinkReplies)
{
    SystemConfig cfg = smallCfg();
    cfg.noc.sharedPhysical = true;
    Interconnect ic(cfg, uniformTypes(16, 2));
    // 32 B effective channel: 128 B line -> 1 + 4 flits.
    EXPECT_EQ(ic.flitsFor(makeMsg(0, 2, MsgType::ReadReply)), 5);
}

TEST(Interconnect, FlitSizesFollowConfig)
{
    const SystemConfig cfg = smallCfg();
    Interconnect ic(cfg, uniformTypes(16, 2));
    EXPECT_EQ(ic.flitsFor(makeMsg(2, 0, MsgType::ReadReq)), 1);
    EXPECT_EQ(ic.flitsFor(makeMsg(0, 2, MsgType::ReadReply)), 9);
    EXPECT_EQ(ic.flitsFor(
                  makeMsg(0, 2, MsgType::ReadReply, TrafficClass::Cpu)),
              5);
}

TEST(Interconnect, CanSendReflectsBufferSpace)
{
    SystemConfig cfg = smallCfg();
    cfg.noc.memInjBufferFlits = 9;
    Interconnect ic(cfg, uniformTypes(16, 2));
    const Message reply = makeMsg(0, 2, MsgType::ReadReply);
    EXPECT_TRUE(ic.canSend(reply));
    ic.send(reply, 0);
    EXPECT_FALSE(ic.canSend(makeMsg(0, 3, MsgType::ReadReply)));
    // The request network is unaffected.
    EXPECT_TRUE(ic.canSend(makeMsg(0, 3, MsgType::DelegatedReq)));
}

TEST(Interconnect, MemNodesGetMemBufferSize)
{
    SystemConfig cfg = smallCfg();
    cfg.noc.memInjBufferFlits = 18;
    cfg.noc.coreInjBufferFlits = 9;
    Interconnect ic(cfg, uniformTypes(16, 2));
    EXPECT_EQ(ic.injectFree(0, NetKind::Reply), 18);  // mem node
    EXPECT_EQ(ic.injectFree(5, NetKind::Reply), 9);   // core
}

TEST(Interconnect, DelegatedRequestTravelsOnRequestNetwork)
{
    const SystemConfig cfg = smallCfg();
    Interconnect ic(cfg, uniformTypes(16, 2));
    ic.send(makeMsg(0, 5, MsgType::DelegatedReq), 0);
    for (Cycle c = 0; c < 300; ++c)
        ic.tick(c);
    EXPECT_TRUE(ic.hasMessage(5, NetKind::Request));
    EXPECT_EQ(ic.net(NetKind::Reply).stats().packetsInjected.value(), 0u);
}

TEST(Interconnect, NonMeshTopologiesWork)
{
    for (const TopologyKind kind :
         {TopologyKind::Crossbar, TopologyKind::FlattenedButterfly,
          TopologyKind::Dragonfly}) {
        SystemConfig cfg = smallCfg();
        cfg.noc.topology = kind;
        Interconnect ic(cfg, uniformTypes(16, 2));
        ic.send(makeMsg(3, 9, MsgType::ReadReq), 0);
        for (Cycle c = 0; c < 500; ++c)
            ic.tick(c);
        EXPECT_TRUE(ic.hasMessage(9, NetKind::Request))
            << topologyName(kind);
    }
}

TEST(Interconnect, AsymmetricVcSplit)
{
    // AVCP: 1 request VC + 3 reply VCs on the shared network.
    SystemConfig cfg = smallCfg();
    cfg.noc.sharedPhysical = true;
    cfg.noc.sharedReqVcs = 1;
    cfg.noc.sharedReplyVcs = 3;
    Interconnect ic(cfg, uniformTypes(16, 2));
    int sentReq = 0, sentRep = 0;
    int requests = 0, replies = 0;
    for (Cycle c = 0; c < 2000; ++c) {
        if (sentReq < 10) {
            const Message m = makeMsg(2, 0, MsgType::ReadReq);
            if (ic.canSend(m)) {
                ic.send(m, c);
                ++sentReq;
            }
        }
        if (sentRep < 10) {
            const Message m = makeMsg(0, 2, MsgType::ReadReply);
            if (ic.canSend(m)) {
                ic.send(m, c);
                ++sentRep;
            }
        }
        ic.tick(c);
        while (ic.hasMessage(0, NetKind::Request)) {
            ic.popMessage(0, NetKind::Request);
            ++requests;
        }
        while (ic.hasMessage(2, NetKind::Reply)) {
            ic.popMessage(2, NetKind::Reply);
            ++replies;
        }
    }
    EXPECT_EQ(requests, 10);
    EXPECT_EQ(replies, 10);
}

TEST(Interconnect, EnergyCountersAggregate)
{
    const SystemConfig cfg = smallCfg();
    Interconnect ic(cfg, uniformTypes(16, 2));
    ic.send(makeMsg(0, 15, MsgType::ReadReply), 0);
    for (Cycle c = 0; c < 300; ++c)
        ic.tick(c);
    EXPECT_GT(ic.totalSwitchTraversals(), 0u);
    EXPECT_GT(ic.totalBufferWrites(), 0u);
    EXPECT_GT(ic.totalLinkTraversals(), 0u);
}

} // namespace
} // namespace dr

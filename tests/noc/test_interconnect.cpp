#include <gtest/gtest.h>

#include "noc/interconnect.hpp"

namespace dr
{
namespace
{

std::vector<NodeType>
uniformTypes(int n, int memNodes)
{
    std::vector<NodeType> types(n, NodeType::GpuCore);
    for (int i = 0; i < memNodes; ++i)
        types[i] = NodeType::MemNode;
    return types;
}

SystemConfig
smallCfg()
{
    SystemConfig cfg = SystemConfig::makeSmall();
    return cfg;
}

Message
makeMsg(NodeId src, NodeId dst, MsgType type,
        TrafficClass cls = TrafficClass::Gpu)
{
    static std::uint64_t nextId = 1;
    Message m;
    m.type = type;
    m.cls = cls;
    m.src = src;
    m.dst = dst;
    m.requester = src;
    m.id = nextId++;
    return m;
}

TEST(Interconnect, SeparateNetworksRouteByMessageType)
{
    const SystemConfig cfg = smallCfg();
    Interconnect ic(cfg, uniformTypes(16, 2));
    EXPECT_FALSE(ic.shared());
    EXPECT_NE(&ic.net(NetKind::Request), &ic.net(NetKind::Reply));

    ic.send(makeMsg(2, 0, MsgType::ReadReq), 0);
    ic.send(makeMsg(0, 2, MsgType::ReadReply), 0);
    for (Cycle c = 0; c < 300; ++c)
        ic.tick(c);
    EXPECT_TRUE(ic.hasMessage(0, NetKind::Request));
    EXPECT_TRUE(ic.hasMessage(2, NetKind::Reply));
    EXPECT_EQ(ic.net(NetKind::Request).stats().packetsDelivered.value(), 1u);
    EXPECT_EQ(ic.net(NetKind::Reply).stats().packetsDelivered.value(), 1u);
}

TEST(Interconnect, SharedModeUsesOneNetwork)
{
    SystemConfig cfg = smallCfg();
    cfg.noc.sharedPhysical = true;
    Interconnect ic(cfg, uniformTypes(16, 2));
    EXPECT_TRUE(ic.shared());
    EXPECT_EQ(&ic.net(NetKind::Request), &ic.net(NetKind::Reply));

    ic.send(makeMsg(2, 0, MsgType::ReadReq), 0);
    ic.send(makeMsg(0, 2, MsgType::ReadReply), 0);
    for (Cycle c = 0; c < 300; ++c)
        ic.tick(c);
    EXPECT_TRUE(ic.hasMessage(0, NetKind::Request));
    EXPECT_TRUE(ic.hasMessage(2, NetKind::Reply));
}

TEST(Interconnect, SharedModeWiderChannelsShrinkReplies)
{
    SystemConfig cfg = smallCfg();
    cfg.noc.sharedPhysical = true;
    Interconnect ic(cfg, uniformTypes(16, 2));
    // 32 B effective channel: 128 B line -> 1 + 4 flits.
    EXPECT_EQ(ic.flitsFor(makeMsg(0, 2, MsgType::ReadReply)), 5);
}

TEST(Interconnect, FlitSizesFollowConfig)
{
    const SystemConfig cfg = smallCfg();
    Interconnect ic(cfg, uniformTypes(16, 2));
    EXPECT_EQ(ic.flitsFor(makeMsg(2, 0, MsgType::ReadReq)), 1);
    EXPECT_EQ(ic.flitsFor(makeMsg(0, 2, MsgType::ReadReply)), 9);
    EXPECT_EQ(ic.flitsFor(
                  makeMsg(0, 2, MsgType::ReadReply, TrafficClass::Cpu)),
              5);
}

TEST(Interconnect, CanSendReflectsBufferSpace)
{
    SystemConfig cfg = smallCfg();
    cfg.noc.memInjBufferFlits = 9;
    Interconnect ic(cfg, uniformTypes(16, 2));
    const Message reply = makeMsg(0, 2, MsgType::ReadReply);
    EXPECT_TRUE(ic.canSend(reply));
    ic.send(reply, 0);
    EXPECT_FALSE(ic.canSend(makeMsg(0, 3, MsgType::ReadReply)));
    // The request network is unaffected.
    EXPECT_TRUE(ic.canSend(makeMsg(0, 3, MsgType::DelegatedReq)));
}

TEST(Interconnect, MemNodesGetMemBufferSize)
{
    SystemConfig cfg = smallCfg();
    cfg.noc.memInjBufferFlits = 18;
    cfg.noc.coreInjBufferFlits = 9;
    Interconnect ic(cfg, uniformTypes(16, 2));
    EXPECT_EQ(ic.injectFree(0, NetKind::Reply), 18);  // mem node
    EXPECT_EQ(ic.injectFree(5, NetKind::Reply), 9);   // core
}

TEST(Interconnect, DelegatedRequestTravelsOnRequestNetwork)
{
    const SystemConfig cfg = smallCfg();
    Interconnect ic(cfg, uniformTypes(16, 2));
    ic.send(makeMsg(0, 5, MsgType::DelegatedReq), 0);
    for (Cycle c = 0; c < 300; ++c)
        ic.tick(c);
    EXPECT_TRUE(ic.hasMessage(5, NetKind::Request));
    EXPECT_EQ(ic.net(NetKind::Reply).stats().packetsInjected.value(), 0u);
}

TEST(Interconnect, NonMeshTopologiesWork)
{
    for (const TopologyKind kind :
         {TopologyKind::Crossbar, TopologyKind::FlattenedButterfly,
          TopologyKind::Dragonfly}) {
        SystemConfig cfg = smallCfg();
        cfg.noc.topology = kind;
        Interconnect ic(cfg, uniformTypes(16, 2));
        ic.send(makeMsg(3, 9, MsgType::ReadReq), 0);
        for (Cycle c = 0; c < 500; ++c)
            ic.tick(c);
        EXPECT_TRUE(ic.hasMessage(9, NetKind::Request))
            << topologyName(kind);
    }
}

TEST(Interconnect, AsymmetricVcSplit)
{
    // AVCP: 1 request VC + 3 reply VCs on the shared network.
    SystemConfig cfg = smallCfg();
    cfg.noc.sharedPhysical = true;
    cfg.noc.sharedReqVcs = 1;
    cfg.noc.sharedReplyVcs = 3;
    Interconnect ic(cfg, uniformTypes(16, 2));
    int sentReq = 0, sentRep = 0;
    int requests = 0, replies = 0;
    for (Cycle c = 0; c < 2000; ++c) {
        if (sentReq < 10) {
            const Message m = makeMsg(2, 0, MsgType::ReadReq);
            if (ic.canSend(m)) {
                ic.send(m, c);
                ++sentReq;
            }
        }
        if (sentRep < 10) {
            const Message m = makeMsg(0, 2, MsgType::ReadReply);
            if (ic.canSend(m)) {
                ic.send(m, c);
                ++sentRep;
            }
        }
        ic.tick(c);
        while (ic.hasMessage(0, NetKind::Request)) {
            ic.popMessage(0, NetKind::Request);
            ++requests;
        }
        while (ic.hasMessage(2, NetKind::Reply)) {
            ic.popMessage(2, NetKind::Reply);
            ++replies;
        }
    }
    EXPECT_EQ(requests, 10);
    EXPECT_EQ(replies, 10);
}

/** One message per VN: (msg, expected VN, carrying network). */
struct VnProbe
{
    Message msg;
    VirtualNet vn;
    NetKind kind;
};

std::vector<VnProbe>
vnProbes()
{
    // Nodes 0..1 are memory nodes, the rest GPU cores (uniformTypes).
    return {
        {makeMsg(2, 0, MsgType::ReadReq), VirtualNet::Request,
         NetKind::Request},
        {makeMsg(0, 5, MsgType::DelegatedReq),
         VirtualNet::ForwardedRequest, NetKind::Request},
        {makeMsg(0, 2, MsgType::ReadReply), VirtualNet::Reply,
         NetKind::Reply},
        {makeMsg(5, 2, MsgType::ReadReply), VirtualNet::DelegatedReply,
         NetKind::Reply},
    };
}

/** Drive one message per VN through `ic` and check counters + masks. */
void
expectVnMapping(Interconnect &ic, const char *label)
{
    for (const VnProbe &p : vnProbes()) {
        EXPECT_EQ(ic.vnetFor(p.msg), p.vn) << label;
        ASSERT_TRUE(ic.canSend(p.msg)) << label;
        ic.send(p.msg, 0);
    }
    for (Cycle c = 0; c < 1000; ++c)
        ic.tick(c);
    for (const VnProbe &p : vnProbes()) {
        EXPECT_TRUE(ic.hasMessage(p.msg.dst, p.kind)) << label;
        const Network &net = ic.net(p.kind);
        EXPECT_EQ(net.stats()
                      .vnPacketsInjected[static_cast<int>(p.vn)]
                      .value(),
                  1u)
            << label << ": " << vnetName(p.vn);
        EXPECT_GT(net.stats()
                      .vnFlitsDelivered[static_cast<int>(p.vn)]
                      .value(),
                  0u)
            << label << ": " << vnetName(p.vn);
        EXPECT_EQ(net.vnFlitsInFabric(p.vn), 0) << label;
    }
    // The reserved ranges are honoured end to end: each sender's NI
    // only used VCs inside the union of the VN masks it sent on (a
    // node may legally send on several VNs of one physical network).
    for (const VnProbe &p : vnProbes()) {
        const Network &net = ic.net(p.kind);
        std::uint8_t allowed = 0;
        for (const VnProbe &q : vnProbes()) {
            if (q.msg.src == p.msg.src && &ic.net(q.kind) == &net)
                allowed |= net.vnetLayout().mask(q.vn);
        }
        for (int vc = 0; vc < net.vnetLayout().numVcs; ++vc) {
            if ((allowed & (1u << vc)) == 0) {
                EXPECT_EQ(net.niVcFlitsSent(p.msg.src, vc), 0u)
                    << label << ": node " << p.msg.src << " used vc "
                    << vc << " outside its VNs";
            }
        }
    }
}

TEST(Interconnect, VnetMappingAcrossTopologiesSplitNetworks)
{
    for (const TopologyKind kind :
         {TopologyKind::Mesh, TopologyKind::Crossbar,
          TopologyKind::FlattenedButterfly, TopologyKind::Dragonfly}) {
        SystemConfig cfg = smallCfg();
        cfg.noc.topology = kind;
        cfg.noc.vnets = true;
        // Dragonfly phase escalation needs >= 2 VCs per VN range.
        cfg.noc.vcsPerNet = 4;
        cfg.noc.vnetRequestVcs = 2;
        cfg.noc.vnetForwardVcs = 2;
        cfg.noc.vnetReplyVcs = 2;
        cfg.noc.vnetDelegatedVcs = 2;
        cfg.validate();
        Interconnect ic(cfg, uniformTypes(16, 2));
        expectVnMapping(ic, topologyName(kind));
        // Disjoint reservation on each physical network's own side.
        const VnetLayout &req = ic.net(NetKind::Request).vnetLayout();
        EXPECT_EQ(req.mask(VirtualNet::Request) &
                      req.mask(VirtualNet::ForwardedRequest),
                  0);
        const VnetLayout &rep = ic.net(NetKind::Reply).vnetLayout();
        EXPECT_EQ(rep.mask(VirtualNet::Reply) &
                      rep.mask(VirtualNet::DelegatedReply),
                  0);
    }
}

TEST(Interconnect, VnetMappingAcrossTopologiesSharedAvcp)
{
    for (const TopologyKind kind :
         {TopologyKind::Mesh, TopologyKind::Crossbar,
          TopologyKind::FlattenedButterfly, TopologyKind::Dragonfly}) {
        SystemConfig cfg = smallCfg();
        cfg.noc.topology = kind;
        cfg.noc.sharedPhysical = true;
        cfg.noc.vnets = true;
        cfg.noc.sharedReqVcs = 4;
        cfg.noc.sharedReplyVcs = 4;
        cfg.noc.vnetRequestVcs = 2;
        cfg.noc.vnetForwardVcs = 2;
        cfg.noc.vnetReplyVcs = 2;
        cfg.noc.vnetDelegatedVcs = 2;
        cfg.validate();
        Interconnect ic(cfg, uniformTypes(16, 2));
        ASSERT_TRUE(ic.shared());
        expectVnMapping(ic, topologyName(kind));
        // All four VNs get pairwise-disjoint VCs of the one network.
        const VnetLayout &l = ic.net(NetKind::Request).vnetLayout();
        std::uint8_t seen = 0;
        for (int vn = 0; vn < numVnets; ++vn) {
            const std::uint8_t m = l.mask(static_cast<VirtualNet>(vn));
            EXPECT_EQ(seen & m, 0) << topologyName(kind);
            seen |= m;
        }
    }
}

TEST(Interconnect, VnetsComposeWithAdaptiveRouting)
{
    // VN partition x escape classes (O1TURN halves within each VN's
    // range): adaptive routing on a VN-split mesh still delivers.
    SystemConfig cfg = smallCfg();
    cfg.noc.vnets = true;
    cfg.noc.vcsPerNet = 4;
    cfg.noc.vnetRequestVcs = 2;
    cfg.noc.vnetForwardVcs = 2;
    cfg.noc.vnetReplyVcs = 2;
    cfg.noc.vnetDelegatedVcs = 2;
    cfg.noc.requestRouting = RoutingKind::DyXY;
    cfg.noc.replyRouting = RoutingKind::DyXY;
    cfg.validate();
    Interconnect ic(cfg, uniformTypes(16, 2));
    expectVnMapping(ic, "mesh+DyXY");
}

TEST(Interconnect, EnergyCountersAggregate)
{
    const SystemConfig cfg = smallCfg();
    Interconnect ic(cfg, uniformTypes(16, 2));
    ic.send(makeMsg(0, 15, MsgType::ReadReply), 0);
    for (Cycle c = 0; c < 300; ++c)
        ic.tick(c);
    EXPECT_GT(ic.totalSwitchTraversals(), 0u);
    EXPECT_GT(ic.totalBufferWrites(), 0u);
    EXPECT_GT(ic.totalLinkTraversals(), 0u);
}

} // namespace
} // namespace dr
